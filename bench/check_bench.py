#!/usr/bin/env python3
"""Bench regression gate: compare fresh BENCH_<name>.json reports against
the committed baselines in bench/baselines/.

Two kinds of invariants, checked per benchmark entry (matched by name):

  1. Allocation invariants (machine-independent, strict). Wherever the
     baseline says a benchmark runs allocation-free, it must stay that
     way:
       - pool_misses_per_op: a miss is a fresh heap slab the IoBuf pool
         had to allocate; after warmup the zero-copy paths recycle
         everything, so ~0 in the baseline must mean ~0 in the fresh run.
       - heap_allocs_per_op: counted by the replacement operator new in
         bench/heap_count.cpp; the view-mapped dispatch path claims ~0
         and CI holds it to that.

  2. Latency tolerance (machine-dependent, generous). p99_ns when both
     sides report it, ns_per_op otherwise; the fresh value may not
     exceed baseline * tolerance (default 5x — CI runners are noisy,
     this catches order-of-magnitude regressions, not jitter).

  3. Tail-retention overhead (in-run A/B, machine-independent ratio).
     When a fresh report carries BM_TailRetentionOverhead — per
     iteration, one call each into a bare world (no tracer), a
     tracing-off world (tracer with SampleMode::kNever: the always-on
     metrics layer only), and a tail-retention world, per-call
     latencies timed in-benchmark — two ratios are held:
       - tail_p50_ns / metrics_p50_ns <= CHECK_BENCH_TAIL_TOLERANCE
         (default 1.05): the tail-retention budget. Tail retention is
         a layer on top of the always-on metrics registry, so its
         overhead is measured against the tracing-off configuration
         that already runs those metrics.
       - tail_p50_ns / off_p50_ns <= CHECK_BENCH_OBS_TOLERANCE
         (default 1.20): the whole observability stack against a bare
         ORB — a coarser envelope so a regression in the metrics layer
         itself cannot hide under the tail gate.
     The tail world's counters must also show the mechanism engaged
     (tail_provisional_per_op >= 1) without promoting the healthy
     workload wholesale (tail_retained_per_op <= 0.25).

  4. Reactor serving gates (in-run A/B + structural invariant). Fresh
     entries carrying reactor_p50_ns/legacy_p50_ns (BM_ReactorVsLegacy*
     in bench_connscale, interleaved per iteration) must hold
     reactor_p50_ns / legacy_p50_ns <= CHECK_BENCH_REACTOR_TOLERANCE
     (default 1.10): event-loop serving may not tax the hot path. And
     every entry that reports connections >= 1000 must also report
     threads_in_process <= 64 — the reactor's whole point is holding
     thousands of connections with O(shards + workers) threads, so a
     thread-per-connection regression fails structurally regardless of
     how fast the machine is.

Usage:
  python3 bench/check_bench.py [--baseline-dir bench/baselines]
      [--fresh-dir .] [--tolerance 5.0] [name ...]

Names default to "dispatch marshal" (the reports the verify job
produces with HEIDI_BENCH_NAME). Exits non-zero on any violation.
"""

import argparse
import json
import os
import sys

POOL_MISS_EPS = 0.01   # "~0 misses per op" — allows stray warmup slabs
HEAP_ALLOC_EPS = 0.05  # "~0 heap allocs per op" — allows harness noise
MIN_LATENCY_NS = 50.0  # below this, ratios are timer noise; skip

TAIL_AB = "BM_TailRetentionOverhead/real_time"
TAIL_RETAINED_MAX = 0.25   # healthy calls must mostly not be promoted
TAIL_PROVISIONAL_MIN = 1.0  # every call must hit the provisional ring

REACTOR_CONN_FLOOR = 1000  # entries at/above this many connections...
REACTOR_THREAD_CAP = 64    # ...must stay under this many threads


def load_report(path):
    with open(path) as f:
        report = json.load(f)
    return {b["name"]: b for b in report.get("benchmarks", [])}


def check_report(name, baseline_path, fresh_path, tolerance):
    failures = []
    notes = []
    if not os.path.exists(baseline_path):
        return [f"{name}: missing baseline {baseline_path} "
                f"(commit one: copy the fresh report there)"], notes
    if not os.path.exists(fresh_path):
        return [f"{name}: missing fresh report {fresh_path} "
                f"(did the bench binary run?)"], notes

    baseline = load_report(baseline_path)
    fresh = load_report(fresh_path)

    for bench_name, base in baseline.items():
        got = fresh.get(bench_name)
        if got is None:
            failures.append(f"{name}: benchmark '{bench_name}' present in "
                            f"baseline but missing from fresh run")
            continue

        # Allocation invariants: zero-alloc in the baseline is a promise.
        for key, eps, what in (
                ("pool_misses_per_op", POOL_MISS_EPS, "pool misses"),
                ("heap_allocs_per_op", HEAP_ALLOC_EPS, "heap allocs")):
            base_v = base.get(key)
            got_v = got.get(key)
            if base_v is None or got_v is None:
                continue
            if base_v <= eps and got_v > eps:
                failures.append(
                    f"{name}: '{bench_name}' {what} regressed: "
                    f"{got_v:.4f}/op (baseline {base_v:.4f}, limit {eps})")

        # Latency tolerance: p99 preferred, ns_per_op fallback.
        if "p99_ns" in base and "p99_ns" in got:
            key = "p99_ns"
        else:
            key = "ns_per_op"
        base_v = base.get(key)
        got_v = got.get(key)
        if base_v is not None and got_v is not None and base_v >= MIN_LATENCY_NS:
            if got_v > base_v * tolerance:
                failures.append(
                    f"{name}: '{bench_name}' {key} regressed: "
                    f"{got_v:.0f}ns vs baseline {base_v:.0f}ns "
                    f"(tolerance {tolerance}x)")

    failures.extend(check_tail_pair(name, fresh))
    failures.extend(check_reactor_entries(name, fresh))

    extras = sorted(set(fresh) - set(baseline))
    if extras:
        notes.append(f"{name}: {len(extras)} benchmark(s) not in baseline "
                     f"(unchecked): {', '.join(extras[:5])}"
                     + ("..." if len(extras) > 5 else ""))
    return failures, notes


def check_tail_pair(name, fresh):
    """Tail-retention overhead gate on the in-run A/B entry (see §3 above).

    The ratios are p50-vs-p50 of interleaved calls from one process, so
    they are immune to machine speed and scheduler outliers; only genuine
    per-call overhead regressions trip them.
    """
    entry = fresh.get(TAIL_AB)
    if entry is None:
        return []
    failures = []
    tail_tol = float(os.environ.get("CHECK_BENCH_TAIL_TOLERANCE", "1.05"))
    obs_tol = float(os.environ.get("CHECK_BENCH_OBS_TOLERANCE", "1.20"))
    off_ns = entry.get("off_p50_ns")
    metrics_ns = entry.get("metrics_p50_ns")
    tail_ns = entry.get("tail_p50_ns")
    if metrics_ns and tail_ns and metrics_ns >= MIN_LATENCY_NS:
        ratio = tail_ns / metrics_ns
        if ratio > tail_tol:
            failures.append(
                f"{name}: tail-retention p50 overhead {ratio:.3f}x over "
                f"tracing-off/metrics-only ({tail_ns:.0f}ns vs "
                f"{metrics_ns:.0f}ns, budget {tail_tol}x)")
        else:
            print(f"ok: {name} tail-retention p50 overhead {ratio:.3f}x "
                  f"over tracing-off (budget {tail_tol}x)")
    if off_ns and tail_ns and off_ns >= MIN_LATENCY_NS:
        ratio = tail_ns / off_ns
        if ratio > obs_tol:
            failures.append(
                f"{name}: observability-stack p50 overhead {ratio:.3f}x "
                f"over bare ORB ({tail_ns:.0f}ns vs {off_ns:.0f}ns, "
                f"envelope {obs_tol}x)")
        else:
            print(f"ok: {name} observability-stack p50 overhead "
                  f"{ratio:.3f}x over bare ORB (envelope {obs_tol}x)")
    provisional = entry.get("tail_provisional_per_op")
    if provisional is not None and provisional < TAIL_PROVISIONAL_MIN:
        failures.append(
            f"{name}: tail_provisional_per_op {provisional:.3f} < "
            f"{TAIL_PROVISIONAL_MIN} — provisional recording not engaged")
    retained = entry.get("tail_retained_per_op")
    if retained is not None and retained > TAIL_RETAINED_MAX:
        failures.append(
            f"{name}: tail_retained_per_op {retained:.3f} > "
            f"{TAIL_RETAINED_MAX} — tail policy is promoting the healthy "
            f"workload wholesale")
    return failures


def check_reactor_entries(name, fresh):
    """Reactor serving gates (see §4 above).

    The latency gate is a same-process interleaved ratio, so machine
    speed cancels out. The thread gate is purely structural: many
    connections must not mean many threads.
    """
    failures = []
    reactor_tol = float(os.environ.get("CHECK_BENCH_REACTOR_TOLERANCE",
                                       "1.10"))
    for bench_name, entry in fresh.items():
        reactor_ns = entry.get("reactor_p50_ns")
        legacy_ns = entry.get("legacy_p50_ns")
        if reactor_ns and legacy_ns and legacy_ns >= MIN_LATENCY_NS:
            ratio = reactor_ns / legacy_ns
            if ratio > reactor_tol:
                failures.append(
                    f"{name}: '{bench_name}' reactor p50 {ratio:.3f}x of "
                    f"legacy ({reactor_ns:.0f}ns vs {legacy_ns:.0f}ns, "
                    f"budget {reactor_tol}x)")
            else:
                print(f"ok: {name} '{bench_name}' reactor/legacy p50 "
                      f"{ratio:.3f}x (budget {reactor_tol}x)")
        connections = entry.get("connections")
        threads = entry.get("threads_in_process")
        if connections is not None and threads is not None \
                and connections >= REACTOR_CONN_FLOOR:
            if threads > REACTOR_THREAD_CAP:
                failures.append(
                    f"{name}: '{bench_name}' holds {connections:.0f} "
                    f"connections with {threads:.0f} threads (cap "
                    f"{REACTOR_THREAD_CAP} — thread-per-connection "
                    f"regression?)")
            else:
                print(f"ok: {name} '{bench_name}' {connections:.0f} "
                      f"connections on {threads:.0f} threads (cap "
                      f"{REACTOR_THREAD_CAP})")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("names", nargs="*", default=None,
                        help="report names (BENCH_<name>.json)")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--fresh-dir", default=".")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get(
                            "CHECK_BENCH_TOLERANCE", "5.0")))
    args = parser.parse_args()
    names = args.names or ["dispatch", "marshal"]

    all_failures = []
    for name in names:
        fname = f"BENCH_{name}.json"
        failures, notes = check_report(
            name,
            os.path.join(args.baseline_dir, fname),
            os.path.join(args.fresh_dir, fname),
            args.tolerance)
        for note in notes:
            print(f"note: {note}")
        for failure in failures:
            print(f"FAIL: {failure}")
        if not failures:
            print(f"ok: {name} within baseline "
                  f"(alloc invariants strict, latency {args.tolerance}x)")
        all_failures.extend(failures)

    if all_failures:
        print(f"\n{len(all_failures)} bench regression(s); to accept "
              f"intentional changes, refresh bench/baselines/ from the "
              f"fresh reports and commit.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
