// Tentpole benchmark: serialized vs. multiplexed invocation over ONE
// cached TCP connection.
//
// The old client admitted one call at a time per connection (an exchange
// mutex around write+read). The call multiplexer instead sends under a
// short write lock and parks each caller on its own reply future, so many
// callers share the connection concurrently and the server's worker pool
// overlaps their dispatch. "Serialized" below reproduces the old behavior
// with a global mutex around each call; "Multiplexed" lets the mux do its
// job. Expected shape: near-parity at 1 caller, and a multiple (>= 2x) of
// the serialized throughput at 16 callers, bounded by the server worker
// pool's width.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "bench_report.h"
#include "demo/demo.h"
#include "orb/orb.h"

namespace {

using heidi::orb::ObjectRef;
using heidi::orb::Orb;
using heidi::orb::OrbOptions;

// An Echo whose add() holds its worker for a fixed slice of wall time, as
// a method waiting on a downstream resource (disk, another orb) would.
// That wait is what pipelining recovers: the worker pool overlaps it even
// on a single CPU. Trivial bodies would leave both configurations bounded
// by framing/loopback latency and hide the overlap; pure CPU spinning
// cannot overlap at all on one core.
class BusyEcho : public heidi::demo::EchoImpl {
 public:
  long add(long a, long b) override {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    return a + b;
  }
};

// One server/client pair shared by all benchmark threads, refcounted so
// the last thread out tears it down (thread 0 is not guaranteed to be
// last, so setup/teardown cannot key off thread_index alone).
struct SharedOrbs {
  // Observability per HEIDI_BENCH_TRACER (see bench_report.h); wire
  // protocol per HEIDI_BENCH_PROTOCOL ("text" default, "hiop" engages
  // the pooled zero-copy marshaling path so BENCH_*.json's iobuf_pool
  // counters measure allocations-per-call end to end).
  static OrbOptions Traced() {
    OrbOptions options;
    options.tracer = heidi::bench::GlobalTracer();
    if (const char* protocol = std::getenv("HEIDI_BENCH_PROTOCOL")) {
      if (*protocol != '\0') options.protocol = protocol;
    }
    return options;
  }

  Orb server{Traced()};
  Orb client{Traced()};
  BusyEcho impl;
  std::shared_ptr<HdEcho> echo;

  SharedOrbs() {
    heidi::demo::ForceDemoRegistration();
    server.ListenTcp();
    ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");
    echo = client.ResolveAs<HdEcho>(ref.ToString());
  }
  ~SharedOrbs() {
    echo.reset();
    client.Shutdown();
    server.Shutdown();
  }
};

std::mutex g_fixture_mutex;
int g_fixture_refs = 0;
SharedOrbs* g_orbs = nullptr;
std::mutex g_serialize_mutex;  // the "old design" exchange lock

SharedOrbs* AcquireOrbs() {
  std::lock_guard lock(g_fixture_mutex);
  if (g_fixture_refs++ == 0) g_orbs = new SharedOrbs();
  return g_orbs;
}

void ReleaseOrbs() {
  std::lock_guard lock(g_fixture_mutex);
  if (--g_fixture_refs == 0) {
    delete g_orbs;
    g_orbs = nullptr;
  }
}

void BM_PipelineSerialized(benchmark::State& state) {
  SharedOrbs* orbs = AcquireOrbs();
  for (auto _ : state) {
    std::lock_guard lock(g_serialize_mutex);  // one call in flight, ever
    benchmark::DoNotOptimize(orbs->echo->add(1, 2));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["connections"] = benchmark::Counter(
        static_cast<double>(orbs->client.Stats().connections_opened));
  }
  ReleaseOrbs();
}

void BM_PipelineMultiplexed(benchmark::State& state) {
  SharedOrbs* orbs = AcquireOrbs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(orbs->echo->add(1, 2));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const auto stats = orbs->client.Stats();
    state.counters["connections"] =
        benchmark::Counter(static_cast<double>(stats.connections_opened));
    state.counters["inflight_hw"] =
        benchmark::Counter(static_cast<double>(stats.inflight_highwater));
  }
  ReleaseOrbs();
}

BENCHMARK(BM_PipelineSerialized)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime();
BENCHMARK(BM_PipelineMultiplexed)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return heidi::bench::RunReported(argc, argv, {"op.add"});
}
