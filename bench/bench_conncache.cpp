// B4 (§3.1): connection caching. "Connections are cached and reused in
// HeidiRMI, and only if there is no available connection is a new
// connection opened."
//
// Expected shape: the cached configuration wins by a large factor on TCP
// (a connect handshake per call otherwise) and a clear factor even on the
// in-process transport (channel + handler-thread setup per call).
#include <benchmark/benchmark.h>

#include <atomic>

#include "demo/demo.h"
#include "orb/orb.h"

namespace {

using heidi::orb::ObjectRef;
using heidi::orb::Orb;
using heidi::orb::OrbOptions;

void RunCalls(benchmark::State& state, bool cache_connections, bool tcp) {
  heidi::demo::ForceDemoRegistration();
  static std::atomic<int> counter{0};
  int id = counter.fetch_add(1);
  OrbOptions server_options;
  OrbOptions client_options;
  client_options.cache_connections = cache_connections;
  if (!tcp) {
    server_options.inproc_name = "cc-server-" + std::to_string(id);
    client_options.inproc_name = "cc-client-" + std::to_string(id);
  }
  Orb server(server_options);
  Orb client(client_options);
  if (tcp) server.ListenTcp();
  heidi::demo::EchoImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  auto echo = client.ResolveAs<HdEcho>(ref.ToString());

  for (auto _ : state) {
    benchmark::DoNotOptimize(echo->add(1, 2));
  }
  state.counters["connections"] = benchmark::Counter(
      static_cast<double>(client.Stats().connections_opened));
  state.SetLabel(std::string(cache_connections ? "cached" : "uncached") +
                 "/" + (tcp ? "tcp" : "inproc"));
  client.Shutdown();
  server.Shutdown();
}

void BM_ConnCached(benchmark::State& state) {
  RunCalls(state, /*cache_connections=*/true, state.range(0) == 1);
}
void BM_ConnUncached(benchmark::State& state) {
  RunCalls(state, /*cache_connections=*/false, state.range(0) == 1);
}

BENCHMARK(BM_ConnCached)->Arg(0)->Arg(1)->UseRealTime();
BENCHMARK(BM_ConnUncached)->Arg(0)->Arg(1)->UseRealTime();

}  // namespace
