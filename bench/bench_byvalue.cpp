// B6 (§3.1): pass-by-value (`incopy`) vs pass-by-reference. The paper's
// rationale for incopy: an object passed by reference costs a remote
// round trip per method the receiver invokes on it; a Serializable object
// passed by value costs one marshal but every access is then local.
//
// Expected shape: by-reference wins when the receiver touches the object
// 0-1 times; by-value wins as soon as the receiver makes several
// accesses, and the crossover moves toward by-value as access count grows.
#include <benchmark/benchmark.h>

#include <atomic>

#include "demo/demo.h"
#include "orb/orb.h"
#include "orb/registry.h"

namespace {

using heidi::orb::ObjectRef;
using heidi::orb::Orb;
using heidi::orb::OrbOptions;

// A server object whose g() probes the received HdS `touches` times —
// remote round trips for a stub, local calls for a by-value copy.
class TouchingA : public virtual ::heidi::demo::AImpl {
 public:
  explicit TouchingA(int touches) : touches_(touches) {}
  void g(HdS* s) override {
    long sum = 0;
    for (int i = 0; i < touches_; ++i) sum += s->value();
    benchmark::DoNotOptimize(sum);
  }

 private:
  int touches_;
};

struct World {
  explicit World(int touches) : impl(touches) {
    heidi::demo::ForceDemoRegistration();
    static std::atomic<int> counter{0};
    int id = counter.fetch_add(1);
    OrbOptions server_options;
    server_options.inproc_name = "bv-server-" + std::to_string(id);
    OrbOptions client_options;
    client_options.inproc_name = "bv-client-" + std::to_string(id);
    server = std::make_unique<Orb>(server_options);
    client = std::make_unique<Orb>(client_options);
    ref = server->ExportObject(&impl, "IDL:Heidi/A:1.0");
    a = client->ResolveAs<HdA>(ref.ToString());
  }
  ~World() {
    client->Shutdown();
    server->Shutdown();
  }

  TouchingA impl;
  std::unique_ptr<Orb> server;
  std::unique_ptr<Orb> client;
  ObjectRef ref;
  std::shared_ptr<HdA> a;
};

void BM_IncopyByValue(benchmark::State& state) {
  World world(static_cast<int>(state.range(0)));
  heidi::demo::SerializableS value(42);  // serializable: travels by value
  for (auto _ : state) {
    world.a->g(&value);
  }
  state.SetLabel("by-value, " + std::to_string(state.range(0)) + " touches");
}
BENCHMARK(BM_IncopyByValue)->Arg(0)->Arg(1)->Arg(4)->Arg(16)->UseRealTime();

void BM_IncopyByReference(benchmark::State& state) {
  World world(static_cast<int>(state.range(0)));
  heidi::demo::SImpl plain(42);  // not serializable: falls back to by-ref
  for (auto _ : state) {
    world.a->g(&plain);
  }
  state.SetLabel("by-reference, " + std::to_string(state.range(0)) +
                 " touches");
}
BENCHMARK(BM_IncopyByReference)
    ->Arg(0)->Arg(1)->Arg(4)->Arg(16)->UseRealTime();

}  // namespace
