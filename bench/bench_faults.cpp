// Cost of the failure-handling machinery on the HAPPY path. The retry
// loop and the FaultyChannel decorator sit on every invocation an orb
// with a fault injector makes, so their no-fault overhead must be noise:
//   Baseline        — no injector, fail-fast policy (the PR 1 pipeline)
//   RetryConfigured — retry policy armed (attempts/backoff/budget), no
//                     injector: measures the retry loop's bookkeeping
//   IdleInjector    — injector attached with all rates at zero: measures
//                     the decorator (one RNG draw + stat check per op)
// A fourth case prices the UNHAPPY path end to end: every call's first
// reply read is killed, so each invocation pays disconnect + reconnect +
// resend. That number is the latency floor an application should expect
// a retried call to cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "demo/demo.h"
#include "net/fault.h"
#include "orb/orb.h"

namespace {

using heidi::net::FaultInjector;
using heidi::net::FaultPlan;
using heidi::orb::ObjectRef;
using heidi::orb::Orb;
using heidi::orb::OrbOptions;

struct BenchPair {
  Orb server;
  heidi::demo::EchoImpl impl;
  std::unique_ptr<Orb> client;
  std::shared_ptr<HdEcho> echo;
  ObjectRef ref;

  explicit BenchPair(OrbOptions client_options = {}) {
    heidi::demo::ForceDemoRegistration();
    server.ListenTcp();
    ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");
    client = std::make_unique<Orb>(std::move(client_options));
    echo = client->ResolveAs<HdEcho>(ref.ToString());
  }
  ~BenchPair() {
    echo.reset();
    client->Shutdown();
    server.Shutdown();
  }
};

void BM_InvokeBaseline(benchmark::State& state) {
  BenchPair pair;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pair.echo->add(1, 2));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InvokeRetryConfigured(benchmark::State& state) {
  OrbOptions options;
  options.retry.max_attempts = 3;
  options.retry.retry_budget = 1u << 30;
  BenchPair pair(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pair.echo->add(1, 2));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InvokeIdleInjector(benchmark::State& state) {
  OrbOptions options;
  options.retry.max_attempts = 3;
  options.fault_injector = std::make_shared<FaultInjector>(FaultPlan{});
  BenchPair pair(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pair.echo->add(1, 2));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InvokeDisconnectEveryCall(benchmark::State& state) {
  FaultPlan plan;
  plan.read_error_rate = 1.0;  // every reply read = mid-message disconnect
  OrbOptions options;
  options.fault_injector = std::make_shared<FaultInjector>(plan);
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_ms = 0;  // price reconnect+resend, not sleep
  options.retry.jitter_pct = 0;
  options.retry.retry_indeterminate = true;
  BenchPair pair(options);
  // With read_error_rate=1 the RETRIED attempt's reply read dies too, so
  // the stub path would fail; invoke by hand and accept either outcome,
  // counting only calls that actually paid a reconnect.
  for (auto _ : state) {
    auto call = pair.client->NewRequest(pair.ref, "add", false);
    call->PutLong(1);
    call->PutLong(2);
    call->SetIdempotent(true);
    try {
      benchmark::DoNotOptimize(pair.client->Invoke(pair.ref, *call));
    } catch (const heidi::NetError&) {
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const auto stats = pair.client->Stats();
    state.counters["reconnects"] =
        benchmark::Counter(static_cast<double>(stats.reconnects));
    state.counters["retries"] =
        benchmark::Counter(static_cast<double>(stats.retries));
  }
}

BENCHMARK(BM_InvokeBaseline);
BENCHMARK(BM_InvokeRetryConfigured);
BENCHMARK(BM_InvokeIdleInjector);
BENCHMARK(BM_InvokeDisconnectEveryCall);

}  // namespace
