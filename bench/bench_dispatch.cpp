// B1 (§2 "Incorporating Custom Optimizations"): skeleton dispatch cost by
// strategy. The paper: "many IDL compilers use string comparisons to
// implement the dispatching logic in the skeleton. Such a scheme can be
// very expensive for interfaces with a large number of methods with long
// names. Alternate schemes that utilize nested comparisons, or a
// hash-table can result in faster dispatching."
//
// Expected shape: linear degrades with method count and name length;
// binary degrades logarithmically; hash stays flat. Crossover vs linear
// appears at small method counts already.
#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "orb/dispatch.h"
#include "wire/text.h"

namespace {

using heidi::orb::DispatchStrategy;
using heidi::orb::DispatchTable;

std::string MethodName(int index, int name_length) {
  // Long shared prefix — the adversarial case for linear strcmp scans.
  std::string name(static_cast<size_t>(name_length), 'm');
  name += "_" + std::to_string(index);
  return name;
}

DispatchTable MakeTable(DispatchStrategy strategy, int methods,
                        int name_length) {
  DispatchTable table(strategy);
  for (int i = 0; i < methods; ++i) {
    table.Add(MethodName(i, name_length),
              [](heidi::wire::Call&, heidi::wire::Call&) {});
  }
  table.Seal();
  return table;
}

void RunDispatch(benchmark::State& state, DispatchStrategy strategy) {
  const int methods = static_cast<int>(state.range(0));
  const int name_length = static_cast<int>(state.range(1));
  DispatchTable table = MakeTable(strategy, methods, name_length);
  // Look names up in a scrambled but deterministic order.
  std::vector<std::string> probes;
  for (int i = 0; i < methods; ++i) {
    probes.push_back(MethodName((i * 7919) % methods, name_length));
  }
  heidi::wire::TextCall in{std::vector<std::string>{}};
  heidi::wire::TextCall out;
  size_t next = 0;
  for (auto _ : state) {
    const auto* handler = table.Find(probes[next]);
    benchmark::DoNotOptimize(handler);
    next = (next + 1) % probes.size();
  }
  state.SetLabel(std::string(DispatchStrategyName(strategy)));
}

void Args(benchmark::internal::Benchmark* b) {
  for (int methods : {2, 8, 32, 128}) {
    for (int name_length : {4, 16, 64}) {
      b->Args({methods, name_length});
    }
  }
}

void BM_DispatchLinear(benchmark::State& state) {
  RunDispatch(state, DispatchStrategy::kLinear);
}
void BM_DispatchBinary(benchmark::State& state) {
  RunDispatch(state, DispatchStrategy::kBinary);
}
void BM_DispatchHash(benchmark::State& state) {
  RunDispatch(state, DispatchStrategy::kHash);
}

BENCHMARK(BM_DispatchLinear)->Apply(Args);
BENCHMARK(BM_DispatchBinary)->Apply(Args);
BENCHMARK(BM_DispatchHash)->Apply(Args);

// Miss cost: a request for an unknown operation must walk the whole
// linear table before the skeleton chain can delegate (§3.1's recursive
// dispatch makes misses common on derived interfaces).
void BM_DispatchMiss(benchmark::State& state) {
  auto strategy = static_cast<DispatchStrategy>(state.range(0));
  DispatchTable table = MakeTable(strategy, 64, 16);
  std::string missing = MethodName(9999, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(missing));
  }
  state.SetLabel(std::string(DispatchStrategyName(strategy)));
}
BENCHMARK(BM_DispatchMiss)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

// Reported main: emits BENCH_<name>.json (dispatch touches no buffers,
// so pool counters double as a regression tripwire — they should stay 0).
int main(int argc, char** argv) {
  return heidi::bench::RunReported(argc, argv, {});
}
