// B1 (§2 "Incorporating Custom Optimizations"): skeleton dispatch cost by
// strategy. The paper: "many IDL compilers use string comparisons to
// implement the dispatching logic in the skeleton. Such a scheme can be
// very expensive for interfaces with a large number of methods with long
// names. Alternate schemes that utilize nested comparisons, or a
// hash-table can result in faster dispatching."
//
// Expected shape: linear degrades with method count and name length;
// binary degrades logarithmically; hash stays flat. Crossover vs linear
// appears at small method counts already.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_report.h"
#include "heap_count.h"
#include "orb/dispatch.h"
#include "support/arena.h"
#include "wire/binary.h"
#include "wire/text.h"

namespace {

using heidi::orb::DispatchStrategy;
using heidi::orb::DispatchTable;

std::string MethodName(int index, int name_length) {
  // Long shared prefix — the adversarial case for linear strcmp scans.
  std::string name(static_cast<size_t>(name_length), 'm');
  name += "_" + std::to_string(index);
  return name;
}

DispatchTable MakeTable(DispatchStrategy strategy, int methods,
                        int name_length) {
  DispatchTable table(strategy);
  for (int i = 0; i < methods; ++i) {
    table.Add(MethodName(i, name_length),
              [](heidi::wire::Call&, heidi::wire::Call&) {});
  }
  table.Seal();
  return table;
}

void RunDispatch(benchmark::State& state, DispatchStrategy strategy) {
  const int methods = static_cast<int>(state.range(0));
  const int name_length = static_cast<int>(state.range(1));
  DispatchTable table = MakeTable(strategy, methods, name_length);
  // Look names up in a scrambled but deterministic order.
  std::vector<std::string> probes;
  for (int i = 0; i < methods; ++i) {
    probes.push_back(MethodName((i * 7919) % methods, name_length));
  }
  heidi::wire::TextCall in{std::vector<std::string>{}};
  heidi::wire::TextCall out;
  size_t next = 0;
  for (auto _ : state) {
    const auto* handler = table.Find(probes[next]);
    benchmark::DoNotOptimize(handler);
    next = (next + 1) % probes.size();
  }
  state.SetLabel(std::string(DispatchStrategyName(strategy)));
}

void Args(benchmark::internal::Benchmark* b) {
  for (int methods : {2, 8, 32, 128}) {
    for (int name_length : {4, 16, 64}) {
      b->Args({methods, name_length});
    }
  }
}

void BM_DispatchLinear(benchmark::State& state) {
  RunDispatch(state, DispatchStrategy::kLinear);
}
void BM_DispatchBinary(benchmark::State& state) {
  RunDispatch(state, DispatchStrategy::kBinary);
}
void BM_DispatchHash(benchmark::State& state) {
  RunDispatch(state, DispatchStrategy::kHash);
}

BENCHMARK(BM_DispatchLinear)->Apply(Args);
BENCHMARK(BM_DispatchBinary)->Apply(Args);
BENCHMARK(BM_DispatchHash)->Apply(Args);

// Miss cost: a request for an unknown operation must walk the whole
// linear table before the skeleton chain can delegate (§3.1's recursive
// dispatch makes misses common on derived interfaces).
void BM_DispatchMiss(benchmark::State& state) {
  auto strategy = static_cast<DispatchStrategy>(state.range(0));
  DispatchTable table = MakeTable(strategy, 64, 16);
  std::string missing = MethodName(9999, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(missing));
  }
  state.SetLabel(std::string(DispatchStrategyName(strategy)));
}
BENCHMARK(BM_DispatchMiss)->Arg(0)->Arg(1)->Arg(2);

// --- full skeleton dispatch: owned vs view mapping ---------------------------
//
// Models one complete server-side HIOP dispatch the way orb.cpp runs it:
// a pooled frame slab holds the inbound payload, a dispatch arena is
// seeded from the slab's free tail, and the reply stages into the
// donated tail of the same slab. "owned" is the default IDL mapping
// (the skeleton's GetString copies the argument out of the frame);
// "view" is the --view-interfaces mapping (GetStringView hands the
// implementation a window into the frame — no copy, and in steady state
// no heap allocation at all).
//
// heap_allocs_per_op comes from the counting operator new in
// heap_count.cpp; pool_{hits,misses}_per_op come from the reporter.
// check_bench.py gates on view staying at ~0 heap allocs and ~0 pool
// misses per op after warmup.
void RunSkeletonEcho(benchmark::State& state, bool view_mapping) {
  const size_t msg_len = static_cast<size_t>(state.range(0));
  using heidi::support::Arena;
  using heidi::wire::BinaryCall;

  // The inbound frame payload: one marshaled string argument, exactly
  // what Echo_stub::echo puts on the wire.
  BinaryCall proto;
  proto.PutString(std::string(msg_len, 'm'));
  const std::string payload = proto.Payload();

  auto& pool = heidi::bytes::IoBufPool::Global();
  DispatchTable table(DispatchStrategy::kHash);
  if (view_mapping) {
    // The view-mapped Echo_skel handler: impl sees the bytes in place.
    table.Add("echo", [](heidi::wire::Call& in, heidi::wire::Call& out) {
      out.PutString(in.GetStringView());
    });
  } else {
    // The owned-mapping handler: unmarshal copies into a fresh string.
    table.Add("echo", [](heidi::wire::Call& in, heidi::wire::Call& out) {
      out.PutString(in.GetString());
    });
  }
  table.Seal();

  const std::string op = "echo";
  const auto* handler = table.Find(op);
  BinaryCall reply;  // reused: ResetWritable keeps the slice capacity
  auto run_once = [&] {
    auto slab = pool.Get(payload.size());
    std::memcpy(slab->WritePtr(), payload.data(), payload.size());
    slab->Advance(payload.size());  // what HiopProtocol::ReadCall does
    BinaryCall in(slab, 0, payload.size());
    Arena arena(in.RetainedFrame());
    in.AttachArena(&arena);
    reply.ResetWritable();
    reply.AttachArena(&arena);
    (*handler)(in, reply);
    benchmark::DoNotOptimize(reply.PayloadSize());
    in.AttachArena(nullptr);
    reply.AttachArena(nullptr);
  };

  // Warm the slab pool and the reply's slice vector so the timed loop
  // measures the steady state the CI gate asserts on.
  for (int i = 0; i < 64; ++i) run_once();

  const uint64_t heap_before = heidi::bench::HeapAllocCount();
  for (auto _ : state) run_once();
  const uint64_t heap_delta = heidi::bench::HeapAllocCount() - heap_before;

  state.counters["heap_allocs_per_op"] =
      benchmark::Counter(static_cast<double>(heap_delta) /
                         static_cast<double>(state.iterations()));
  state.SetLabel(view_mapping ? "view" : "owned");
}

void BM_SkeletonEchoOwned(benchmark::State& state) {
  RunSkeletonEcho(state, /*view_mapping=*/false);
}
void BM_SkeletonEchoView(benchmark::State& state) {
  RunSkeletonEcho(state, /*view_mapping=*/true);
}
BENCHMARK(BM_SkeletonEchoOwned)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_SkeletonEchoView)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace

// Reported main: emits BENCH_<name>.json (dispatch touches no buffers,
// so pool counters double as a regression tripwire — they should stay 0).
int main(int argc, char** argv) {
  return heidi::bench::RunReported(argc, argv, {});
}
