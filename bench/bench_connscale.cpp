// Connection-scale benchmark for the sharded epoll reactor: call latency
// with C mostly-idle connections parked on the server, plus an in-run
// reactor-vs-legacy A/B at low connection count.
//
// The headline claim is structural, not a latency number: the reactor
// holds thousands of connections with a thread count of O(shards +
// workers), where the legacy model would need one reader thread per
// connection. Each BM_ConnScaleCalls entry therefore reports
// threads_in_process (from /proc/self/status) alongside its latency
// percentiles, and check_bench.py holds the invariant connections >=
// 1000 => threads_in_process <= 64.
//
// The idle-connection sweep runs to HEIDI_CONNSCALE_MAX (default 2000,
// matching the committed baseline; the idle peers live in a forked
// child process, so HEIDI_CONNSCALE_MAX=10000 fits within a 20k fd
// rlimit — only the server-side ends land in this process. Nonstandard
// values change benchmark names, so skip check_bench then).
//
// BM_ReactorVsLegacy* time the same call against a reactor-mode and a
// legacy-mode server inside one run, interleaved per iteration, so the
// reactor_p50_ns/legacy_p50_ns ratio is immune to machine speed;
// check_bench.py bounds it at CHECK_BENCH_REACTOR_TOLERANCE (1.10x).
#include <benchmark/benchmark.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "demo/demo.h"
#include "orb/orb.h"

namespace {

using heidi::demo::EchoImpl;
using heidi::orb::ObjectRef;
using heidi::orb::Orb;
using heidi::orb::OrbOptions;
using heidi::orb::OrbStats;

int ThreadsInProcess() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return -1;
}

int MaxConns() {
  if (const char* env = std::getenv("HEIDI_CONNSCALE_MAX")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 2000;
}

double P50(std::vector<int64_t>& v) {
  if (v.empty()) return 0.0;
  auto mid = v.begin() + static_cast<long>(v.size() / 2);
  std::nth_element(v.begin(), mid, v.end());
  return static_cast<double>(*mid);
}

double P99(std::vector<int64_t>& v) {
  if (v.empty()) return 0.0;
  auto nth = v.begin() + static_cast<long>(v.size() * 99 / 100);
  if (nth == v.end()) --nth;
  std::nth_element(v.begin(), nth, v.end());
  return static_cast<double>(*nth);
}

struct World {
  std::unique_ptr<Orb> server;
  std::unique_ptr<Orb> client;
  EchoImpl impl;
  std::shared_ptr<HdEcho> echo;

  explicit World(int reactor_shards) {
    heidi::demo::ForceDemoRegistration();
    OrbOptions server_options;
    server_options.protocol = "hiop";
    server_options.reactor_shards = reactor_shards;
    server_options.server_workers = 4;
    server_options.tracer = heidi::bench::GlobalTracer();
    OrbOptions client_options;
    client_options.protocol = "hiop";
    client_options.tracer = heidi::bench::GlobalTracer();
    server = std::make_unique<Orb>(server_options);
    client = std::make_unique<Orb>(client_options);
    server->ListenTcp();
    ObjectRef ref = server->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
    echo = client->ResolveAs<HdEcho>(ref.ToString());
  }

  ~World() {
    client->Shutdown();
    server->Shutdown();
  }
};

// The idle peers live in a forked child process: the child opens
// `count` raw loopback sockets, signals readiness through a pipe, then
// parks until the parent closes its end (at which point _exit() drops
// every connection at once). Keeping the client ends out-of-process
// halves descriptor pressure — 10k connections fit inside a 20k fd
// rlimit — and makes threads_in_process measure only the serving side.
class IdleFleet {
 public:
  IdleFleet(uint16_t port, int count) {
    if (count <= 0) return;
    int ready[2];
    int hold[2];
    if (::pipe(ready) != 0 || ::pipe(hold) != 0) return;
    pid_ = ::fork();
    if (pid_ == 0) {
      ::close(ready[0]);
      ::close(hold[1]);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(port);
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      for (int i = 0; i < count; ++i) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                                sizeof(addr)) != 0) {
          ::_exit(1);  // fds leak on purpose: _exit closes them all
        }
      }
      char byte = 1;
      (void)!::write(ready[1], &byte, 1);
      char cmd;
      (void)!::read(hold[0], &cmd, 1);  // blocks until the parent closes
      ::_exit(0);
    }
    ::close(ready[1]);
    ::close(hold[0]);
    hold_fd_ = hold[1];
    char byte;
    ok_ = ::read(ready[0], &byte, 1) == 1;
    ::close(ready[0]);
  }

  ~IdleFleet() {
    if (pid_ > 0) {
      ::close(hold_fd_);
      ::waitpid(pid_, nullptr, 0);
    }
  }

  bool ok() const { return pid_ <= 0 || ok_; }

 private:
  pid_t pid_ = -1;
  int hold_fd_ = -1;
  bool ok_ = false;
};

// Call latency with state.range(0) idle connections parked on the
// server's reactor. Server-side each idle peer occupies a shard's epoll
// set and nothing else — the cost under test is exactly the
// per-connection serving overhead at scale.
void BM_ConnScaleCalls(benchmark::State& state) {
  const int idle = static_cast<int>(state.range(0));
  World world(/*reactor_shards=*/4);
  IdleFleet fleet(world.server->TcpPort(), idle);
  if (!fleet.ok()) {
    state.SkipWithError("idle fleet failed to connect");
    return;
  }
  // The child's sockets are connected; wait until every one has been
  // adopted by a reactor shard before timing anything.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (world.server->Stats().reactor_connections <
             static_cast<uint64_t>(idle) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<int64_t> call_ns;
  call_ns.reserve(1 << 16);
  long i = 0;
  for (auto _ : state) {
    int64_t t0 = heidi::obs::NowNs();
    benchmark::DoNotOptimize(world.echo->add(i, i));
    int64_t t1 = heidi::obs::NowNs();
    call_ns.push_back(t1 - t0);
    ++i;
  }
  OrbStats stats = world.server->Stats();
  uint64_t shard_max = 0;
  uint64_t shard_min = stats.reactor_shard_connections.empty()
                           ? 0
                           : stats.reactor_shard_connections[0];
  for (uint64_t n : stats.reactor_shard_connections) {
    shard_max = std::max(shard_max, n);
    shard_min = std::min(shard_min, n);
  }
  state.counters["connections"] =
      static_cast<double>(stats.reactor_connections);
  state.counters["threads_in_process"] =
      static_cast<double>(ThreadsInProcess());
  state.counters["conns_per_shard_max"] = static_cast<double>(shard_max);
  state.counters["conns_per_shard_min"] = static_cast<double>(shard_min);
  state.counters["call_p50_ns"] = P50(call_ns);
  state.counters["call_p99_ns"] = P99(call_ns);
  state.SetLabel("hiop/tcp, 4 shards, " + std::to_string(idle) +
                 " idle conns");
}
BENCHMARK(BM_ConnScaleCalls)
    ->Arg(0)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(MaxConns())
    ->UseRealTime();

// In-run A/B: the same call against a reactor-mode server and a legacy
// thread-per-connection server, interleaved per iteration. The gate:
// event-loop serving must not tax the low-connection-count hot path.
void ReactorVsLegacy(benchmark::State& state,
                     const std::function<void(World&)>& call,
                     const char* label) {
  World reactor_world(/*reactor_shards=*/4);
  World legacy_world(/*reactor_shards=*/0);
  std::vector<int64_t> reactor_ns;
  std::vector<int64_t> legacy_ns;
  reactor_ns.reserve(1 << 16);
  legacy_ns.reserve(1 << 16);
  for (auto _ : state) {
    int64_t t0 = heidi::obs::NowNs();
    call(reactor_world);
    int64_t t1 = heidi::obs::NowNs();
    call(legacy_world);
    int64_t t2 = heidi::obs::NowNs();
    reactor_ns.push_back(t1 - t0);
    legacy_ns.push_back(t2 - t1);
  }
  state.counters["reactor_p50_ns"] = P50(reactor_ns);
  state.counters["legacy_p50_ns"] = P50(legacy_ns);
  state.SetLabel(label);
}

void BM_ReactorVsLegacyAdd(benchmark::State& state) {
  ReactorVsLegacy(
      state,
      [](World& world) { benchmark::DoNotOptimize(world.echo->add(2, 40)); },
      "hiop/tcp reactor-vs-legacy interleaved");
}
BENCHMARK(BM_ReactorVsLegacyAdd)->UseRealTime();

void BM_ReactorVsLegacyEchoString(benchmark::State& state) {
  const std::string payload(64, 'x');
  ReactorVsLegacy(
      state,
      [&](World& world) { benchmark::DoNotOptimize(world.echo->echo(payload)); },
      "hiop/tcp reactor-vs-legacy interleaved, 64B string");
}
BENCHMARK(BM_ReactorVsLegacyEchoString)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return heidi::bench::RunReported(argc, argv, {"op.add", "op.echo"});
}
