// Counting replacements for the global allocation functions. Only the
// plain (alignment-unaware) forms are replaced; the over-aligned forms
// fall back to the library defaults, which is fine — nothing on the
// dispatch fast path over-aligns, and mixing is well-defined as long as
// each new form pairs with its own delete form.
#include "heap_count.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<uint64_t> g_heap_allocs{0};

void* CountedAlloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) n = 1;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

namespace heidi::bench {

uint64_t HeapAllocCount() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

}  // namespace heidi::bench

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
