// B7 (§4.1): the two-step code-generation pipeline. Stage costs (parse,
// sema, EST build, template compile, template execute), the payoff of
// compiling a template once and reusing it (the paper's step 1 "need only
// be performed once for a particular code-generation template"), and
// rebuilding the EST in-process vs re-parsing an external representation
// ("evaluating a perl program that directly rebuilds the EST... is
// certainly more efficient than parsing an external representation").
//
// Expected shape: template execution dominates compile after a handful of
// reuses; deserializing the external EST costs a significant fraction of
// a full re-parse, which is why the paper keeps the hand-off in-process.
#include <benchmark/benchmark.h>

#include <sstream>

#include "codegen/codegen.h"
#include "est/est.h"
#include "idl/idl.h"
#include "tmpl/tmpl.h"

namespace {

// Synthetic IDL: `interfaces` interfaces of `methods` methods each.
std::string SyntheticIdl(int interfaces, int methods) {
  std::ostringstream os;
  os << "module Bench {\n";
  os << "  enum Mode { On, Off };\n";
  for (int i = 0; i < interfaces; ++i) {
    os << "  interface I" << i;
    if (i > 0) os << " : I" << i - 1;
    os << " {\n";
    for (int m = 0; m < methods; ++m) {
      os << "    long method_" << i << "_" << m
         << "(in long a, in string s, in Mode m = On);\n";
    }
    os << "    readonly attribute long status" << i << ";\n";
    os << "  };\n";
  }
  os << "};\n";
  return os.str();
}

void BM_Parse(benchmark::State& state) {
  std::string idl = SyntheticIdl(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heidi::idl::Parse(idl, "bench.idl"));
  }
  state.SetBytesProcessed(state.iterations() * idl.size());
}
BENCHMARK(BM_Parse)->Arg(1)->Arg(8)->Arg(64);

void BM_ParseAndResolve(benchmark::State& state) {
  std::string idl = SyntheticIdl(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heidi::idl::ParseAndResolve(idl, "bench.idl"));
  }
  state.SetBytesProcessed(state.iterations() * idl.size());
}
BENCHMARK(BM_ParseAndResolve)->Arg(1)->Arg(8)->Arg(64);

void BM_BuildEst(benchmark::State& state) {
  std::string idl = SyntheticIdl(static_cast<int>(state.range(0)), 8);
  heidi::idl::Specification spec =
      heidi::idl::ParseAndResolve(idl, "bench.idl");
  for (auto _ : state) {
    benchmark::DoNotOptimize(heidi::est::BuildEst(spec));
  }
}
BENCHMARK(BM_BuildEst)->Arg(1)->Arg(8)->Arg(64);

void BM_EstSerialize(benchmark::State& state) {
  std::string idl = SyntheticIdl(static_cast<int>(state.range(0)), 8);
  auto est = heidi::est::BuildEst(
      heidi::idl::ParseAndResolve(idl, "bench.idl"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(heidi::est::Serialize(*est));
  }
}
BENCHMARK(BM_EstSerialize)->Arg(8)->Arg(64);

// §4.1's claim: rebuilding in-process beats parsing the external form.
void BM_EstRebuildInProcess(benchmark::State& state) {
  std::string idl = SyntheticIdl(static_cast<int>(state.range(0)), 8);
  heidi::idl::Specification spec =
      heidi::idl::ParseAndResolve(idl, "bench.idl");
  for (auto _ : state) {
    benchmark::DoNotOptimize(heidi::est::BuildEst(spec));
  }
  state.SetLabel("rebuild from resolved AST");
}
BENCHMARK(BM_EstRebuildInProcess)->Arg(8)->Arg(64);

void BM_EstParseExternal(benchmark::State& state) {
  std::string idl = SyntheticIdl(static_cast<int>(state.range(0)), 8);
  std::string text = heidi::est::Serialize(
      *heidi::est::BuildEst(heidi::idl::ParseAndResolve(idl, "bench.idl")));
  for (auto _ : state) {
    benchmark::DoNotOptimize(heidi::est::Deserialize(text));
  }
  state.SetLabel("parse external EST text");
}
BENCHMARK(BM_EstParseExternal)->Arg(8)->Arg(64);

// Template compile (step 1) vs execute (step 2).
void BM_TemplateCompile(benchmark::State& state) {
  const heidi::codegen::Mapping* mapping =
      heidi::codegen::FindBuiltinMapping("heidi_cpp");
  const std::string& text = mapping->templates[0].text;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        heidi::tmpl::CompileTemplate(text, "heidi_cpp/interface"));
  }
}
BENCHMARK(BM_TemplateCompile);

void BM_TemplateExecute(benchmark::State& state) {
  const heidi::codegen::Mapping* mapping =
      heidi::codegen::FindBuiltinMapping("heidi_cpp");
  std::string idl = SyntheticIdl(static_cast<int>(state.range(0)), 8);
  auto est = heidi::est::BuildEst(
      heidi::idl::ParseAndResolve(idl, "bench.idl"));
  heidi::tmpl::TemplateProgram program = heidi::tmpl::CompileTemplate(
      mapping->templates[0].text, "heidi_cpp/interface");
  heidi::tmpl::MapRegistry maps = heidi::tmpl::MapRegistry::Builtins();
  heidi::tmpl::ExecOptions options;
  options.globals["sourceBase"] = "bench";
  for (auto _ : state) {
    heidi::tmpl::StringSink sink;
    heidi::tmpl::Execute(program, *est, maps, sink, options);
    benchmark::DoNotOptimize(sink.FileNames());
  }
}
BENCHMARK(BM_TemplateExecute)->Arg(1)->Arg(8)->Arg(64);

// Merged comparison: recompile-template-every-run vs compile-once-reuse
// over N inputs (the paper's recompiling-the-compiler analogy).
void BM_GenerateRecompilingTemplate(benchmark::State& state) {
  const heidi::codegen::Mapping* mapping =
      heidi::codegen::FindBuiltinMapping("heidi_cpp");
  std::string idl = SyntheticIdl(8, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        heidi::codegen::GenerateFromSource(idl, "bench.idl", *mapping));
  }
  state.SetLabel("compile template per run");
}
BENCHMARK(BM_GenerateRecompilingTemplate);

void BM_GenerateReusingTemplate(benchmark::State& state) {
  const heidi::codegen::Mapping* mapping =
      heidi::codegen::FindBuiltinMapping("heidi_cpp");
  std::string idl = SyntheticIdl(8, 8);
  heidi::tmpl::TemplateProgram program = heidi::tmpl::CompileTemplate(
      mapping->templates[0].text, "heidi_cpp/interface");
  heidi::tmpl::MapRegistry maps = heidi::tmpl::MapRegistry::Builtins();
  heidi::tmpl::ExecOptions options;
  options.globals["sourceBase"] = "bench";
  for (auto _ : state) {
    auto est = heidi::est::BuildEst(
        heidi::idl::ParseAndResolve(idl, "bench.idl"));
    heidi::tmpl::StringSink sink;
    heidi::tmpl::Execute(program, *est, maps, sink, options);
    benchmark::DoNotOptimize(sink.FileNames());
  }
  state.SetLabel("reuse compiled template");
}
BENCHMARK(BM_GenerateReusingTemplate);

// Full pipeline throughput per mapping — the "same compiler, different
// template" sweep.
void BM_FullPipelinePerMapping(benchmark::State& state) {
  static const char* kNames[] = {"heidi_cpp", "corba_cpp", "java", "tcl"};
  const char* name = kNames[state.range(0)];
  const heidi::codegen::Mapping* mapping =
      heidi::codegen::FindBuiltinMapping(name);
  std::string idl = SyntheticIdl(8, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        heidi::codegen::GenerateFromSource(idl, "bench.idl", *mapping));
  }
  state.SetLabel(name);
}
BENCHMARK(BM_FullPipelinePerMapping)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
