// B3 (§3.1, Fig 4/5): end-to-end remote method invocation latency — full
// stub -> Call -> ObjectCommunicator -> skeleton -> impl -> reply path —
// for each protocol x transport, and by payload size.
//
// Expected shape: hiop beats text modestly on small calls (both dominated
// by the round trip) and clearly as payload grows; the in-memory
// transport isolates protocol cost from kernel socket cost.
#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_report.h"
#include "demo/demo.h"
#include "orb/orb.h"

namespace {

using heidi::demo::EchoImpl;
using heidi::orb::ObjectRef;
using heidi::orb::Orb;
using heidi::orb::OrbOptions;

struct World {
  World(const char* protocol, bool tcp) {
    heidi::demo::ForceDemoRegistration();
    static std::atomic<int> counter{0};
    int id = counter.fetch_add(1);
    OrbOptions server_options;
    server_options.protocol = protocol;
    // Observability per HEIDI_BENCH_TRACER: off (baseline), never
    // (histograms on, timelines sampled out), always (full timelines).
    server_options.tracer = heidi::bench::GlobalTracer();
    OrbOptions client_options = server_options;
    if (!tcp) {
      server_options.inproc_name = "bench-server-" + std::to_string(id);
      client_options.inproc_name = "bench-client-" + std::to_string(id);
    }
    server = std::make_unique<Orb>(server_options);
    client = std::make_unique<Orb>(client_options);
    if (tcp) {
      server->ListenTcp();
      client->ListenTcp();
    }
    ref = server->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
    echo = client->ResolveAs<HdEcho>(ref.ToString());
  }
  ~World() {
    client->Shutdown();
    server->Shutdown();
  }

  EchoImpl impl;
  std::unique_ptr<Orb> server;
  std::unique_ptr<Orb> client;
  ObjectRef ref;
  std::shared_ptr<HdEcho> echo;
};

void BM_CallAdd(benchmark::State& state) {
  const char* protocol = state.range(0) == 0 ? "text" : "hiop";
  const bool tcp = state.range(1) == 1;
  World world(protocol, tcp);
  long i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.echo->add(i, i));
    ++i;
  }
  state.SetLabel(std::string(protocol) + "/" + (tcp ? "tcp" : "inproc"));
}
BENCHMARK(BM_CallAdd)
    ->Args({0, 0})->Args({1, 0})
    ->Args({0, 1})->Args({1, 1})
    ->UseRealTime();

void BM_CallEchoString(benchmark::State& state) {
  const char* protocol = state.range(0) == 0 ? "text" : "hiop";
  const bool tcp = state.range(1) == 1;
  const int size = static_cast<int>(state.range(2));
  World world(protocol, tcp);
  std::string payload(static_cast<size_t>(size), 'p');
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.echo->echo(payload));
  }
  state.SetBytesProcessed(state.iterations() * size * 2);  // there and back
  state.SetLabel(std::string(protocol) + "/" + (tcp ? "tcp" : "inproc"));
}
BENCHMARK(BM_CallEchoString)
    ->Args({0, 0, 64})->Args({1, 0, 64})
    ->Args({0, 0, 65536})->Args({1, 0, 65536})
    ->Args({0, 1, 64})->Args({1, 1, 64})
    ->Args({0, 1, 65536})->Args({1, 1, 65536})
    ->UseRealTime();

void BM_CallOneway(benchmark::State& state) {
  const char* protocol = state.range(0) == 0 ? "text" : "hiop";
  World world(protocol, /*tcp=*/true);
  int posted = 0;
  for (auto _ : state) {
    world.echo->post("event");
    ++posted;
  }
  // Drain before teardown so the server is not mid-dispatch at shutdown.
  world.impl.WaitForPosts(static_cast<size_t>(posted), /*timeout_ms=*/10000);
  state.SetLabel(std::string(protocol) + "/tcp oneway");
}
BENCHMARK(BM_CallOneway)->Arg(0)->Arg(1)->UseRealTime();

// Interceptor ablation (§5 filters pattern): cost of N no-op client and
// N no-op server interceptors on the invocation path.
void BM_CallWithInterceptors(benchmark::State& state) {
  class Noop : public heidi::orb::ClientInterceptor {};
  class NoopServer : public heidi::orb::ServerInterceptor {};
  const int count = static_cast<int>(state.range(0));
  World world("text", /*tcp=*/false);
  for (int i = 0; i < count; ++i) {
    world.client->AddClientInterceptor(std::make_shared<Noop>());
    world.server->AddServerInterceptor(std::make_shared<NoopServer>());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.echo->add(1, 2));
  }
  state.SetLabel(std::to_string(count) + "+"+ std::to_string(count) +
                 " interceptors");
}
BENCHMARK(BM_CallWithInterceptors)->Arg(0)->Arg(1)->Arg(4)->UseRealTime();

// Dispatch-strategy effect on a real call (not just table lookup): the A
// interface has 9 operations across its skeleton chain.
void BM_CallDispatchStrategy(benchmark::State& state) {
  auto strategy = static_cast<heidi::orb::DispatchStrategy>(state.range(0));
  heidi::demo::ForceDemoRegistration();
  OrbOptions server_options;
  server_options.dispatch = strategy;
  server_options.tracer = heidi::bench::GlobalTracer();
  Orb server(server_options);
  server.ListenTcp();
  Orb client;
  heidi::demo::AImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/A:1.0");
  auto a = client.ResolveAs<HdA>(ref.ToString());
  for (auto _ : state) {
    a->p(1);  // found in A_skel's own table
    a->ping();  // requires delegation to S_skel (§3.1 recursive dispatch)
  }
  client.Shutdown();
  server.Shutdown();
  state.SetLabel(std::string(DispatchStrategyName(strategy)));
}
BENCHMARK(BM_CallDispatchStrategy)->Arg(0)->Arg(1)->Arg(2)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return heidi::bench::RunReported(
      argc, argv, {"op.add", "op.echo", "op.post", "op.p", "op.ping"});
}
