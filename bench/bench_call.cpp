// B3 (§3.1, Fig 4/5): end-to-end remote method invocation latency — full
// stub -> Call -> ObjectCommunicator -> skeleton -> impl -> reply path —
// for each protocol x transport, and by payload size.
//
// Expected shape: hiop beats text modestly on small calls (both dominated
// by the round trip) and clearly as payload grows; the in-memory
// transport isolates protocol cost from kernel socket cost.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "bench_report.h"
#include "demo/demo.h"
#include "orb/orb.h"

namespace {

using heidi::demo::EchoImpl;
using heidi::orb::ObjectRef;
using heidi::orb::Orb;
using heidi::orb::OrbOptions;

struct World {
  World(const char* protocol, bool tcp,
        std::shared_ptr<heidi::obs::Tracer> tracer =
            heidi::bench::GlobalTracer()) {
    heidi::demo::ForceDemoRegistration();
    static std::atomic<int> counter{0};
    int id = counter.fetch_add(1);
    OrbOptions server_options;
    server_options.protocol = protocol;
    // Observability per HEIDI_BENCH_TRACER: off (baseline), never
    // (histograms on, timelines sampled out), always (full timelines),
    // tail (provisional recording + completion-time promotion) — or an
    // explicit tracer for A/B pairs measured inside one run.
    server_options.tracer = std::move(tracer);
    OrbOptions client_options = server_options;
    if (!tcp) {
      server_options.inproc_name = "bench-server-" + std::to_string(id);
      client_options.inproc_name = "bench-client-" + std::to_string(id);
    }
    server = std::make_unique<Orb>(server_options);
    client = std::make_unique<Orb>(client_options);
    if (tcp) {
      server->ListenTcp();
      client->ListenTcp();
    }
    ref = server->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
    echo = client->ResolveAs<HdEcho>(ref.ToString());
  }
  ~World() {
    client->Shutdown();
    server->Shutdown();
  }

  EchoImpl impl;
  std::unique_ptr<Orb> server;
  std::unique_ptr<Orb> client;
  ObjectRef ref;
  std::shared_ptr<HdEcho> echo;
};

void BM_CallAdd(benchmark::State& state) {
  const char* protocol = state.range(0) == 0 ? "text" : "hiop";
  const bool tcp = state.range(1) == 1;
  World world(protocol, tcp);
  long i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.echo->add(i, i));
    ++i;
  }
  state.SetLabel(std::string(protocol) + "/" + (tcp ? "tcp" : "inproc"));
}
BENCHMARK(BM_CallAdd)
    ->Args({0, 0})->Args({1, 0})
    ->Args({0, 1})->Args({1, 1})
    ->UseRealTime();

void BM_CallEchoString(benchmark::State& state) {
  const char* protocol = state.range(0) == 0 ? "text" : "hiop";
  const bool tcp = state.range(1) == 1;
  const int size = static_cast<int>(state.range(2));
  World world(protocol, tcp);
  std::string payload(static_cast<size_t>(size), 'p');
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.echo->echo(payload));
  }
  state.SetBytesProcessed(state.iterations() * size * 2);  // there and back
  state.SetLabel(std::string(protocol) + "/" + (tcp ? "tcp" : "inproc"));
}
BENCHMARK(BM_CallEchoString)
    ->Args({0, 0, 64})->Args({1, 0, 64})
    ->Args({0, 0, 65536})->Args({1, 0, 65536})
    ->Args({0, 1, 64})->Args({1, 1, 64})
    ->Args({0, 1, 65536})->Args({1, 1, 65536})
    ->UseRealTime();

void BM_CallOneway(benchmark::State& state) {
  const char* protocol = state.range(0) == 0 ? "text" : "hiop";
  World world(protocol, /*tcp=*/true);
  int posted = 0;
  for (auto _ : state) {
    world.echo->post("event");
    ++posted;
  }
  // Drain before teardown so the server is not mid-dispatch at shutdown.
  world.impl.WaitForPosts(static_cast<size_t>(posted), /*timeout_ms=*/10000);
  state.SetLabel(std::string(protocol) + "/tcp oneway");
}
BENCHMARK(BM_CallOneway)->Arg(0)->Arg(1)->UseRealTime();

// Tail-retention overhead A/B: the same inproc add-call workload against
// three worlds — no tracer at all ("off"), a tracer with tracing off
// ("metrics": SampleMode::kNever, the always-on metrics layer that
// predates tail retention and runs regardless of retention policy), and
// a tail-retention tracer that additionally records every call into the
// provisional ring and judges it at completion ("tail"). One iteration
// makes one call into EACH world, per-call latencies are timed manually,
// and the three p50s come out as counters: interleaving cancels machine
// drift and the median cuts scheduler outliers, so check_bench.py can
// hold ratios steady even on a noisy runner.
//
// Two gated ratios (see check_bench.py):
//   tail_p50 / metrics_p50 <= 1.05 — what *tail retention* adds on top
//     of the metrics layer a tracing-off deployment already runs: the
//     provisional span machinery itself. This is the tail-retention
//     overhead budget.
//   tail_p50 / off_p50 <= 1.20 — the whole observability stack
//     (metrics + tail spans) against a bare ORB, a coarser envelope
//     guarding against regressions in the always-on layer.
//
// The tail world's own ring counters prove the mechanism engaged
// (provisional ~2/call: client + server span) without promoting the
// healthy workload (retained ~0).
void BM_TailRetentionOverhead(benchmark::State& state) {
  auto metrics_tracer =
      std::make_shared<heidi::obs::Tracer>(heidi::obs::TracerOptions{
          .mode = heidi::obs::SampleMode::kNever});
  auto tail_tracer = std::make_shared<heidi::obs::Tracer>(
      heidi::obs::TracerOptions{.retention = heidi::obs::MakeTailRetention()});
  World off_world("text", /*tcp=*/false, nullptr);
  World metrics_world("text", /*tcp=*/false, metrics_tracer);
  World tail_world("text", /*tcp=*/false, tail_tracer);
  std::vector<int64_t> off_ns;
  std::vector<int64_t> metrics_ns;
  std::vector<int64_t> tail_ns;
  off_ns.reserve(1 << 16);
  metrics_ns.reserve(1 << 16);
  tail_ns.reserve(1 << 16);
  long i = 0;
  for (auto _ : state) {
    int64_t t0 = heidi::obs::NowNs();
    benchmark::DoNotOptimize(off_world.echo->add(i, i));
    int64_t t1 = heidi::obs::NowNs();
    benchmark::DoNotOptimize(metrics_world.echo->add(i, i));
    int64_t t2 = heidi::obs::NowNs();
    benchmark::DoNotOptimize(tail_world.echo->add(i, i));
    int64_t t3 = heidi::obs::NowNs();
    off_ns.push_back(t1 - t0);
    metrics_ns.push_back(t2 - t1);
    tail_ns.push_back(t3 - t2);
    ++i;
  }
  auto p50 = [](std::vector<int64_t>& v) {
    if (v.empty()) return 0.0;
    auto mid = v.begin() + static_cast<long>(v.size() / 2);
    std::nth_element(v.begin(), mid, v.end());
    return static_cast<double>(*mid);
  };
  state.counters["off_p50_ns"] = p50(off_ns);
  state.counters["metrics_p50_ns"] = p50(metrics_ns);
  state.counters["tail_p50_ns"] = p50(tail_ns);
  double per = state.iterations() > 0
                   ? static_cast<double>(state.iterations())
                   : 1.0;
  state.counters["tail_provisional_per_op"] =
      static_cast<double>(tail_tracer->ProvisionalRing().Recorded()) / per;
  state.counters["tail_retained_per_op"] =
      static_cast<double>(tail_tracer->Ring().Recorded()) / per;
  state.SetLabel("text/inproc off-vs-metrics-vs-tail interleaved");
}
BENCHMARK(BM_TailRetentionOverhead)->UseRealTime();

// Interceptor ablation (§5 filters pattern): cost of N no-op client and
// N no-op server interceptors on the invocation path.
void BM_CallWithInterceptors(benchmark::State& state) {
  class Noop : public heidi::orb::ClientInterceptor {};
  class NoopServer : public heidi::orb::ServerInterceptor {};
  const int count = static_cast<int>(state.range(0));
  World world("text", /*tcp=*/false);
  for (int i = 0; i < count; ++i) {
    world.client->AddClientInterceptor(std::make_shared<Noop>());
    world.server->AddServerInterceptor(std::make_shared<NoopServer>());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.echo->add(1, 2));
  }
  state.SetLabel(std::to_string(count) + "+"+ std::to_string(count) +
                 " interceptors");
}
BENCHMARK(BM_CallWithInterceptors)->Arg(0)->Arg(1)->Arg(4)->UseRealTime();

// Dispatch-strategy effect on a real call (not just table lookup): the A
// interface has 9 operations across its skeleton chain.
void BM_CallDispatchStrategy(benchmark::State& state) {
  auto strategy = static_cast<heidi::orb::DispatchStrategy>(state.range(0));
  heidi::demo::ForceDemoRegistration();
  OrbOptions server_options;
  server_options.dispatch = strategy;
  server_options.tracer = heidi::bench::GlobalTracer();
  Orb server(server_options);
  server.ListenTcp();
  Orb client;
  heidi::demo::AImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/A:1.0");
  auto a = client.ResolveAs<HdA>(ref.ToString());
  for (auto _ : state) {
    a->p(1);  // found in A_skel's own table
    a->ping();  // requires delegation to S_skel (§3.1 recursive dispatch)
  }
  client.Shutdown();
  server.Shutdown();
  state.SetLabel(std::string(DispatchStrategyName(strategy)));
}
BENCHMARK(BM_CallDispatchStrategy)->Arg(0)->Arg(1)->Arg(2)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return heidi::bench::RunReported(
      argc, argv, {"op.add", "op.echo", "op.post", "op.p", "op.ping"});
}
