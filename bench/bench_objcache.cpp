// B5 (§3.1): stub/skeleton caching and lazy skeleton creation. "Both
// stubs and skeletons are cached in each address-space in order to
// minimize the overhead of their creation."
//
// Expected shape: resolving a cached stub is a map lookup vs an
// allocation + registry hit; skeleton caching removes a table-build per
// incoming call on the server.
#include <benchmark/benchmark.h>

#include <atomic>

#include "demo/demo.h"
#include "orb/orb.h"

namespace {

using heidi::orb::ObjectRef;
using heidi::orb::Orb;
using heidi::orb::OrbOptions;

void BM_ResolveStub(benchmark::State& state) {
  const bool cached = state.range(0) == 1;
  heidi::demo::ForceDemoRegistration();
  OrbOptions client_options;
  client_options.cache_stubs = cached;
  Orb server;
  server.ListenTcp();
  Orb client(client_options);
  heidi::demo::EchoImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  std::string ref_string = ref.ToString();

  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Resolve(ref_string));
  }
  state.counters["stubs_created"] = benchmark::Counter(
      static_cast<double>(client.Stats().stubs_created));
  state.SetLabel(cached ? "stub-cache on" : "stub-cache off");
  client.Shutdown();
  server.Shutdown();
}
BENCHMARK(BM_ResolveStub)->Arg(1)->Arg(0);

void BM_ServerSkeletonCache(benchmark::State& state) {
  const bool cached = state.range(0) == 1;
  heidi::demo::ForceDemoRegistration();
  OrbOptions server_options;
  server_options.cache_skeletons = cached;
  Orb server(server_options);
  server.ListenTcp();
  Orb client;
  // A_skel is the expensive one: 7 own handlers + an S_skel sub-table.
  heidi::demo::AImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/A:1.0");
  auto a = client.ResolveAs<HdA>(ref.ToString());

  for (auto _ : state) {
    a->p(7);
  }
  state.counters["skeletons_created"] = benchmark::Counter(
      static_cast<double>(server.Stats().skeletons_created));
  state.SetLabel(cached ? "skel-cache on" : "skel-cache off");
  client.Shutdown();
  server.Shutdown();
}
BENCHMARK(BM_ServerSkeletonCache)->Arg(1)->Arg(0)->UseRealTime();

// Reference-passing throughput: every a->f(&obj) marshals an object
// reference; with the stub cache the receiving side reuses one stub, and
// repeated passes of the same local object reuse one export entry.
void BM_PassReferenceRepeatedly(benchmark::State& state) {
  const bool cached = state.range(0) == 1;
  heidi::demo::ForceDemoRegistration();
  static std::atomic<int> counter{0};
  int id = counter.fetch_add(1);
  OrbOptions server_options;
  server_options.cache_stubs = cached;  // server resolves the callback stub
  server_options.inproc_name = "oc-server-" + std::to_string(id);
  OrbOptions client_options;
  client_options.inproc_name = "oc-client-" + std::to_string(id);
  Orb server(server_options);
  Orb client(client_options);
  heidi::demo::AImpl server_a;
  ObjectRef ref = server.ExportObject(&server_a, "IDL:Heidi/A:1.0");
  auto a = client.ResolveAs<HdA>(ref.ToString());
  heidi::demo::AImpl client_a;

  for (auto _ : state) {
    a->f(&client_a);  // server calls back value() through a stub
  }
  state.counters["server_stubs"] = benchmark::Counter(
      static_cast<double>(server.Stats().stubs_created));
  state.SetLabel(cached ? "stub-cache on" : "stub-cache off");
  client.Shutdown();
  server.Shutdown();
}
BENCHMARK(BM_PassReferenceRepeatedly)->Arg(1)->Arg(0)->UseRealTime();

}  // namespace
