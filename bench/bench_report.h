// Bench reporting harness for the observability-instrumented benchmark
// binaries (bench_call, bench_pipeline). Adds three things on top of the
// stock google-benchmark main:
//
//   1. A process-wide tracer selected by HEIDI_BENCH_TRACER:
//        off     (default) no tracer attached — the zero-cost baseline
//        never   tracer attached, every call sampled out: always-on
//                histograms live, span timelines off — the production
//                configuration whose overhead the <5% budget bounds
//        always  every call carries a sampled span timeline
//        tail    tail-based retention: every call recorded provisionally
//                (local span, no wire context), promoted to the retained
//                ring only when it erred/retried/timed out/was slow
//   2. BENCH_<name>.json next to the binary's cwd: per-benchmark
//      iterations and ns/op, plus call-latency p50/p99 computed from the
//      tracer's own op.* histograms (bucket-delta per benchmark run), and
//      the full metrics dump. <name> is HEIDI_BENCH_NAME or the binary's
//      basename.
//   3. HEIDI_TRACE_OUT=<path>: the tracer's span ring exported as a
//      Chrome trace_event file on exit (the CI artifact).
//
// Usage — instead of linking benchmark_main:
//
//   int main(int argc, char** argv) {
//     return heidi::bench::RunReported(argc, argv, {"op.add", "op.echo"});
//   }
//
// and attach heidi::bench::GlobalTracer() to the OrbOptions of every orb
// the benchmarks construct.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "obs/tracer.h"
#include "support/bytes.h"

namespace heidi::bench {

inline const char* TracerModeFromEnv() {
  const char* mode = std::getenv("HEIDI_BENCH_TRACER");
  if (mode == nullptr || *mode == '\0') return "off";
  return mode;
}

// The one tracer every benchmark orb attaches; nullptr when the baseline
// configuration (HEIDI_BENCH_TRACER=off / unset) is being measured.
inline const std::shared_ptr<obs::Tracer>& GlobalTracer() {
  static const std::shared_ptr<obs::Tracer> tracer = [] {
    std::string mode = TracerModeFromEnv();
    if (mode == "never") {
      return std::make_shared<obs::Tracer>(
          obs::TracerOptions{.mode = obs::SampleMode::kNever});
    }
    if (mode == "always") {
      // Benchmarks record far more spans than the default ring holds;
      // size it so the Chrome artifact keeps a useful window.
      return std::make_shared<obs::Tracer>(
          obs::TracerOptions{.mode = obs::SampleMode::kAlways,
                             .ring_capacity = 16384});
    }
    if (mode == "tail") {
      return std::make_shared<obs::Tracer>(
          obs::TracerOptions{.retention = obs::MakeTailRetention()});
    }
    return std::shared_ptr<obs::Tracer>();  // "off"
  }();
  return tracer;
}

// Console output as usual, plus a JSON record per benchmark run. The
// p50/p99 come from the watched op.* histograms: bucket counts are
// snapshotted before each run and the delta distribution — exactly the
// calls that run made — is walked for its percentiles. Buffer-pool
// hit/miss counters are snapshotted the same way, so each entry also
// carries pool_hits_per_op / pool_misses_per_op: misses are fresh heap
// slab allocations, hits are recycled slabs, and their sum per op is the
// marshaling path's allocation traffic for that benchmark.
class JsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonReporter(std::vector<std::string> watch_ops)
      : watch_ops_(std::move(watch_ops)),
        baseline_(obs::LatencyHistogram::kBucketCount, 0) {
    SnapshotBaseline();
    SnapshotPool();
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    std::vector<uint64_t> delta = TakeDelta();
    uint64_t total = 0;
    for (uint64_t n : delta) total += n;
    bytes::IoBufPool::Stats pool = bytes::IoBufPool::Global().GetStats();
    uint64_t pool_hits = pool.hits - pool_hits_base_;
    uint64_t pool_misses = pool.misses - pool_misses_base_;
    pool_hits_base_ = pool.hits;
    pool_misses_base_ = pool.misses;
    // A ReportRuns batch can carry several runs (repetitions, aggregates);
    // attribute the pool delta to the per-op rates of each real run.
    int64_t batch_iterations = 0;
    for (const Run& run : runs) {
      if (!run.error_occurred && run.iterations > 0) {
        batch_iterations += run.iterations;
      }
    }
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations <= 0) continue;
      double ns_per_op = run.real_accumulated_time * 1e9 /
                         static_cast<double>(run.iterations);
      std::string entry = "    {\"name\":\"" + JsonEscape(run.benchmark_name()) +
                          "\",\"iterations\":" + std::to_string(run.iterations) +
                          ",\"ns_per_op\":" + std::to_string(ns_per_op);
      // User counters verbatim (already per-op where the benchmark says
      // so — e.g. heap_allocs_per_op from the counting operator new).
      for (const auto& [counter_name, counter] : run.counters) {
        entry += ",\"" + JsonEscape(counter_name) +
                 "\":" + std::to_string(counter.value);
      }
      if (total > 0) {
        entry += ",\"p50_ns\":" + std::to_string(DeltaPercentile(delta, total, 50)) +
                 ",\"p99_ns\":" + std::to_string(DeltaPercentile(delta, total, 99));
      }
      if (batch_iterations > 0) {
        double per = static_cast<double>(batch_iterations);
        entry += ",\"pool_hits_per_op\":" +
                 std::to_string(static_cast<double>(pool_hits) / per) +
                 ",\"pool_misses_per_op\":" +
                 std::to_string(static_cast<double>(pool_misses) / per);
      }
      entry += "}";
      entries_.push_back(std::move(entry));
    }
  }

  // {"name":…,"tracer":…,"benchmarks":[…],"metrics":{…}}
  std::string ToJson(const std::string& name) const {
    std::string out = "{\n  \"name\":\"" + JsonEscape(name) + "\",\n";
    out += "  \"tracer\":\"" + JsonEscape(TracerModeFromEnv()) + "\",\n";
    out += "  \"benchmarks\":[\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out += entries_[i];
      if (i + 1 < entries_.size()) out += ",";
      out += "\n";
    }
    out += "  ]";
    bytes::IoBufPool::Stats pool = bytes::IoBufPool::Global().GetStats();
    out += ",\n  \"iobuf_pool\":{\"hits\":" + std::to_string(pool.hits) +
           ",\"misses\":" + std::to_string(pool.misses) +
           ",\"recycles\":" + std::to_string(pool.recycles) +
           ",\"outstanding_bufs\":" + std::to_string(pool.outstanding_bufs) +
           ",\"outstanding_bytes\":" + std::to_string(pool.outstanding_bytes) +
           "}";
    if (GlobalTracer() != nullptr) {
      // Tail-retention overhead counters: how many spans the provisional
      // ring absorbed vs how many the policy actually promoted. For a
      // healthy benchmark workload retained should be a small fraction
      // of provisional (only p99-threshold outliers survive).
      const obs::Tracer& tracer = *GlobalTracer();
      out += ",\n  \"tail\":{\"provisional_recorded\":" +
             std::to_string(tracer.ProvisionalRing().Recorded()) +
             ",\"provisional_dropped\":" +
             std::to_string(tracer.ProvisionalRing().Dropped()) +
             ",\"retained_recorded\":" +
             std::to_string(tracer.Ring().Recorded()) +
             ",\"retained_dropped\":" +
             std::to_string(tracer.Ring().Dropped()) + "}";
      out += ",\n  \"metrics\":" + tracer.Metrics().RenderJson();
    }
    out += "\n}\n";
    return out;
  }

 private:
  void SnapshotBaseline() {
    const auto& tracer = GlobalTracer();
    for (int i = 0; i < obs::LatencyHistogram::kBucketCount; ++i) {
      uint64_t sum = 0;
      if (tracer != nullptr) {
        for (const std::string& op : watch_ops_) {
          sum += tracer->Metrics().Histogram(op)->BucketCountAt(i);
        }
      }
      baseline_[static_cast<size_t>(i)] = sum;
    }
  }

  std::vector<uint64_t> TakeDelta() {
    std::vector<uint64_t> old = baseline_;
    SnapshotBaseline();
    std::vector<uint64_t> delta(baseline_.size(), 0);
    for (size_t i = 0; i < delta.size(); ++i) {
      delta[i] = baseline_[i] - old[i];
    }
    return delta;
  }

  // Same midpoint convention as LatencyHistogram::Percentile, over the
  // delta distribution (the open-ended top bucket reports its lower
  // bound; the per-run max is not recoverable from bucket deltas).
  static uint64_t DeltaPercentile(const std::vector<uint64_t>& delta,
                                  uint64_t total, double pct) {
    uint64_t rank = static_cast<uint64_t>(pct / 100.0 *
                                          static_cast<double>(total));
    if (rank == 0) rank = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < delta.size(); ++i) {
      if (delta[i] == 0) continue;
      seen += delta[i];
      if (seen >= rank) {
        int idx = static_cast<int>(i);
        uint64_t lo = obs::LatencyHistogram::BucketLow(idx);
        if (idx == obs::LatencyHistogram::kBucketCount - 1) return lo;
        uint64_t hi = obs::LatencyHistogram::BucketHigh(idx);
        return lo + (hi - lo) / 2;
      }
    }
    return 0;
  }

  static std::string JsonEscape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;
      out.push_back(c);
    }
    return out;
  }

  void SnapshotPool() {
    bytes::IoBufPool::Stats pool = bytes::IoBufPool::Global().GetStats();
    pool_hits_base_ = pool.hits;
    pool_misses_base_ = pool.misses;
  }

  std::vector<std::string> watch_ops_;
  std::vector<uint64_t> baseline_;
  std::vector<std::string> entries_;
  uint64_t pool_hits_base_ = 0;
  uint64_t pool_misses_base_ = 0;
};

// Drop-in replacement for the benchmark_main body: runs all registered
// benchmarks through the JsonReporter, writes BENCH_<name>.json, and
// exports the Chrome trace artifact when HEIDI_TRACE_OUT is set.
inline int RunReported(int argc, char** argv,
                       std::vector<std::string> watch_ops) {
  std::string name;
  if (const char* env = std::getenv("HEIDI_BENCH_NAME")) name = env;
  if (name.empty() && argc > 0) {
    name = argv[0];
    size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
  }
  if (name.empty()) name = "bench";

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonReporter reporter(std::move(watch_ops));
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::string path = "BENCH_" + name + ".json";
  obs::WriteStringToFile(path, reporter.ToJson(name));

  const auto& tracer = GlobalTracer();
  const char* trace_out = std::getenv("HEIDI_TRACE_OUT");
  if (tracer != nullptr && trace_out != nullptr && *trace_out != '\0') {
    tracer->WriteChromeTrace(trace_out);
  }
  return 0;
}

}  // namespace heidi::bench
