#!/usr/bin/env python3
"""Validate an OpenMetrics text exposition (stdlib only).

CI scrapes the demo server's /metrics endpoint and runs this over the
body; it holds the exposition to the subset of the OpenMetrics grammar a
Prometheus scraper depends on:

  * every non-comment line is `name[{labels}] value`;
  * every sample belongs to a family declared by a preceding `# TYPE`;
  * counter samples use the `_total` suffix;
  * histogram families expose `le` buckets with non-decreasing
    cumulative counts, a `+Inf` bucket, and `_sum`/`_count` samples
    where the `+Inf` bucket equals `_count`;
  * the exposition ends with exactly one `# EOF` line, and nothing
    follows it.

Usage: check_openmetrics.py [file]     (defaults to stdin)
Exits non-zero with one line per violation.
"""

import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$")
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def base_family(name, families):
    """Strip a recognized sample suffix down to its declared family."""
    for suffix in ("_total", "_bucket", "_sum", "_count", ""):
        if suffix and not name.endswith(suffix):
            continue
        family = name[:len(name) - len(suffix)] if suffix else name
        if family in families:
            return family, suffix
    return None, None


def check(text):
    errors = []
    families = {}  # name -> type
    buckets = {}   # family -> list of (le, count)
    sums = {}
    counts = {}
    eof_seen = False

    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for lineno, line in enumerate(lines, 1):
        if eof_seen:
            errors.append(f"line {lineno}: content after # EOF")
            break
        if line == "# EOF":
            eof_seen = True
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                families[parts[2]] = parts[3]
            elif len(parts) >= 2 and parts[1] in ("HELP", "UNIT"):
                pass
            else:
                errors.append(f"line {lineno}: malformed comment: {line!r}")
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: not a sample line: {line!r}")
            continue
        name = m.group("name")
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value: {line!r}")
            continue
        labels = {}
        if m.group("labels"):
            for pair in m.group("labels").split(","):
                lm = LABEL_RE.match(pair)
                if lm is None:
                    errors.append(f"line {lineno}: bad label {pair!r}")
                else:
                    labels[lm.group(1)] = lm.group(2)
        family, suffix = base_family(name, families)
        if family is None:
            errors.append(f"line {lineno}: sample {name!r} has no "
                          f"preceding # TYPE declaration")
            continue
        ftype = families[family]
        if ftype == "counter" and suffix != "_total":
            errors.append(f"line {lineno}: counter sample {name!r} "
                          f"must use the _total suffix")
        if ftype == "histogram":
            if suffix == "_bucket":
                le = labels.get("le")
                if le is None:
                    errors.append(f"line {lineno}: histogram bucket "
                                  f"without le label")
                else:
                    buckets.setdefault(family, []).append((le, value))
            elif suffix == "_sum":
                sums[family] = value
            elif suffix == "_count":
                counts[family] = value
            else:
                errors.append(f"line {lineno}: unexpected histogram "
                              f"sample {name!r}")
        if ftype in ("counter",) and value < 0:
            errors.append(f"line {lineno}: negative counter {name!r}")

    if not eof_seen:
        errors.append("exposition does not end with # EOF")

    for family, series in buckets.items():
        les = [le for le, _ in series]
        if "+Inf" not in les:
            errors.append(f"histogram {family!r}: no +Inf bucket")
        prev = -1.0
        for le, value in series:
            if value < prev:
                errors.append(f"histogram {family!r}: bucket le={le} "
                              f"count {value} below previous {prev} "
                              f"(buckets must be cumulative)")
            prev = value
        if family not in counts:
            errors.append(f"histogram {family!r}: missing _count")
        elif ("+Inf", counts[family]) not in series:
            inf = next((v for le, v in series if le == "+Inf"), None)
            if inf is not None and inf != counts[family]:
                errors.append(f"histogram {family!r}: +Inf bucket {inf} "
                              f"!= _count {counts[family]}")
        if family not in sums:
            errors.append(f"histogram {family!r}: missing _sum")

    return errors, len(families)


def main():
    if len(sys.argv) > 1:
        with open(sys.argv[1]) as f:
            text = f.read()
    else:
        text = sys.stdin.read()
    errors, nfamilies = check(text)
    for error in errors:
        print(f"FAIL: {error}")
    if nfamilies == 0:
        print("FAIL: no metric families in exposition")
        return 1
    if errors:
        return 1
    print(f"ok: valid OpenMetrics exposition ({nfamilies} families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
