// B8 (§4.2): footprint/minimality measurements behind the paper's
// experience claims — "it took us about two weeks and 700 lines of tcl
// code to build an IIOP compatible tcl ORB", and the suggestion that
// templates can generate stubs/skeletons that "only use portions of the
// ORB library to minimize the ORB footprint".
//
// These are static counts, reported through benchmark counters so they
// appear in the same harness output: generated-code size per mapping for
// the same IDL, template sizes, and the EST's size relative to the IDL
// source.
#include <benchmark/benchmark.h>

#include "codegen/codegen.h"
#include "est/est.h"
#include "idl/idl.h"

namespace {

constexpr const char* kControlIdl = R"(
module Heidi {
  interface S;
  enum Status { Start, Stop };
  typedef sequence<S> SSequence;
  interface A : S {
    void f(in A a);
    void g(incopy S s);
    void p(in long l = 0);
    void q(in Status s = Heidi::Start);
    readonly attribute Status button;
    void s(in boolean b = TRUE);
    void t(in SSequence s);
  };
  interface Receiver { void print(in string text); };
  interface Echo {
    string echo(in string msg);
    long add(in long a, in long b);
  };
};
)";

size_t CountLines(const std::string& text) {
  size_t lines = 0;
  for (char c : text) lines += c == '\n';
  return lines;
}

void BM_GeneratedFootprint(benchmark::State& state) {
  static const char* kNames[] = {"heidi_cpp", "corba_cpp", "java", "tcl"};
  const char* name = kNames[state.range(0)];
  const heidi::codegen::Mapping* mapping =
      heidi::codegen::FindBuiltinMapping(name);
  heidi::codegen::GenerateResult result;
  for (auto _ : state) {
    result = heidi::codegen::GenerateFromSource(kControlIdl, "control.idl",
                                                *mapping);
    benchmark::DoNotOptimize(result.files.size());
  }
  size_t bytes = 0, lines = 0;
  for (const auto& [path, content] : result.files) {
    bytes += content.size();
    lines += CountLines(content);
  }
  state.counters["files"] =
      benchmark::Counter(static_cast<double>(result.files.size()));
  state.counters["gen_lines"] =
      benchmark::Counter(static_cast<double>(lines));
  state.counters["gen_bytes"] =
      benchmark::Counter(static_cast<double>(bytes));
  state.SetLabel(name);
}
BENCHMARK(BM_GeneratedFootprint)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_TemplateFootprint(benchmark::State& state) {
  static const char* kNames[] = {"heidi_cpp", "corba_cpp", "java", "tcl"};
  const char* name = kNames[state.range(0)];
  const heidi::codegen::Mapping* mapping =
      heidi::codegen::FindBuiltinMapping(name);
  size_t lines = 0;
  for (auto _ : state) {
    lines = 0;
    for (const auto& t : mapping->templates) lines += CountLines(t.text);
    benchmark::DoNotOptimize(lines);
  }
  // The customization cost the paper trades against: an entire language
  // mapping is this many template lines (cf. "700 lines of tcl" for the
  // whole tcl ORB runtime).
  state.counters["template_lines"] =
      benchmark::Counter(static_cast<double>(lines));
  state.SetLabel(name);
}
BENCHMARK(BM_TemplateFootprint)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_EstFootprint(benchmark::State& state) {
  heidi::idl::Specification spec =
      heidi::idl::ParseAndResolve(kControlIdl, "control.idl");
  auto est = heidi::est::BuildEst(spec);
  std::string serialized;
  for (auto _ : state) {
    serialized = heidi::est::Serialize(*est);
    benchmark::DoNotOptimize(serialized.size());
  }
  state.counters["idl_bytes"] =
      benchmark::Counter(static_cast<double>(std::string(kControlIdl).size()));
  state.counters["est_nodes"] =
      benchmark::Counter(static_cast<double>(est->TreeSize()));
  state.counters["est_text_bytes"] =
      benchmark::Counter(static_cast<double>(serialized.size()));
}
BENCHMARK(BM_EstFootprint);

}  // namespace
