// B2 (§2, §3.1): marshaling cost, text protocol vs binary CDR, per type
// and for composites — quantifying what the paper trades for telnet
// debuggability ("such protocols are often expensive to use because they
// are designed for generality... for many applications, a simple protocol
// or messaging format may suffice"), and the USC-style bulk-copy
// optimization (PutBytes vs element-wise octets).
//
// Expected shape: binary wins everywhere; the gap is largest for numeric
// sequences (text formats/parses decimal digits) and smallest for
// strings; bulk bytes beats element-wise by an order of magnitude.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_report.h"
#include "heap_count.h"
#include "net/inmemory.h"
#include "support/arena.h"
#include "wire/binary.h"
#include "wire/protocol.h"
#include "wire/text.h"

namespace {

using heidi::wire::BinaryCall;
using heidi::wire::Call;
using heidi::wire::TextCall;

std::unique_ptr<Call> NewCall(int protocol) {
  if (protocol == 0) return std::make_unique<TextCall>();
  return std::make_unique<BinaryCall>();
}

const char* ProtoName(int protocol) { return protocol == 0 ? "text" : "hiop"; }

// Re-arms a readable clone of a written call.
std::unique_ptr<Call> Reread(int protocol, Call& written) {
  if (protocol == 0) {
    return std::make_unique<TextCall>(
        static_cast<TextCall&>(written).Tokens());
  }
  return std::make_unique<BinaryCall>(
      static_cast<BinaryCall&>(written).Payload());
}

// --- primitive marshal -------------------------------------------------------

void BM_MarshalLongs(benchmark::State& state) {
  const int protocol = static_cast<int>(state.range(0));
  const int count = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto call = NewCall(protocol);
    for (int i = 0; i < count; ++i) call->PutLong(1000000 + i);
    benchmark::DoNotOptimize(call->PayloadSize());
  }
  state.SetItemsProcessed(state.iterations() * count);
  state.SetLabel(ProtoName(protocol));
}
BENCHMARK(BM_MarshalLongs)
    ->Args({0, 16})->Args({1, 16})
    ->Args({0, 256})->Args({1, 256})
    ->Args({0, 4096})->Args({1, 4096});

void BM_MarshalDoubles(benchmark::State& state) {
  const int protocol = static_cast<int>(state.range(0));
  const int count = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto call = NewCall(protocol);
    for (int i = 0; i < count; ++i) call->PutDouble(3.14159 * i);
    benchmark::DoNotOptimize(call->PayloadSize());
  }
  state.SetItemsProcessed(state.iterations() * count);
  state.SetLabel(ProtoName(protocol));
}
BENCHMARK(BM_MarshalDoubles)->Args({0, 256})->Args({1, 256});

void BM_MarshalStrings(benchmark::State& state) {
  const int protocol = static_cast<int>(state.range(0));
  const int length = static_cast<int>(state.range(1));
  std::string value(static_cast<size_t>(length), 'v');
  for (auto _ : state) {
    auto call = NewCall(protocol);
    for (int i = 0; i < 64; ++i) call->PutString(value);
    benchmark::DoNotOptimize(call->PayloadSize());
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel(ProtoName(protocol));
}
BENCHMARK(BM_MarshalStrings)
    ->Args({0, 16})->Args({1, 16})
    ->Args({0, 1024})->Args({1, 1024});

// --- unmarshal ---------------------------------------------------------------

void BM_UnmarshalLongs(benchmark::State& state) {
  const int protocol = static_cast<int>(state.range(0));
  const int count = static_cast<int>(state.range(1));
  auto written = NewCall(protocol);
  for (int i = 0; i < count; ++i) written->PutLong(1000000 + i);
  for (auto _ : state) {
    auto call = Reread(protocol, *written);
    int64_t sum = 0;
    for (int i = 0; i < count; ++i) sum += call->GetLong();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * count);
  state.SetLabel(ProtoName(protocol));
}
BENCHMARK(BM_UnmarshalLongs)->Args({0, 256})->Args({1, 256});

// --- round trip through framing ------------------------------------------------

void BM_RoundtripFramed(benchmark::State& state) {
  const int protocol_index = static_cast<int>(state.range(0));
  const int count = static_cast<int>(state.range(1));
  const heidi::wire::Protocol* protocol =
      heidi::wire::FindProtocol(ProtoName(protocol_index));
  for (auto _ : state) {
    auto call = protocol->NewCall();
    call->SetKind(heidi::wire::CallKind::kRequest);
    call->SetTarget("@tcp:h:1#1000#IDL:Heidi/Echo:1.0");
    call->SetOperation("op");
    for (int i = 0; i < count; ++i) call->PutLong(i);
    heidi::net::ChannelPair pair = heidi::net::CreateInMemoryPair();
    protocol->WriteCall(*pair.a, *call);
    heidi::net::BufferedReader reader(*pair.b);
    auto read = protocol->ReadCall(reader);
    int64_t sum = 0;
    for (int i = 0; i < count; ++i) sum += read->GetLong();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * count);
  state.SetLabel(ProtoName(protocol_index));
}
BENCHMARK(BM_RoundtripFramed)
    ->Args({0, 4})->Args({1, 4})
    ->Args({0, 64})->Args({1, 64})
    ->Args({0, 1024})->Args({1, 1024});

// --- USC-style bulk copy (§2) ---------------------------------------------------

void BM_OctetSequenceElementwise(benchmark::State& state) {
  const int protocol = static_cast<int>(state.range(0));
  const int bytes = static_cast<int>(state.range(1));
  std::string data(static_cast<size_t>(bytes), 'x');
  for (auto _ : state) {
    auto call = NewCall(protocol);
    call->PutLength(static_cast<uint32_t>(data.size()));
    for (char c : data) call->PutOctet(static_cast<uint8_t>(c));
    benchmark::DoNotOptimize(call->PayloadSize());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
  state.SetLabel(ProtoName(protocol));
}
BENCHMARK(BM_OctetSequenceElementwise)->Args({0, 4096})->Args({1, 4096});

void BM_OctetSequenceBulk(benchmark::State& state) {
  const int protocol = static_cast<int>(state.range(0));
  const int bytes = static_cast<int>(state.range(1));
  std::string data(static_cast<size_t>(bytes), 'x');
  for (auto _ : state) {
    auto call = NewCall(protocol);
    call->PutBytes(data);
    benchmark::DoNotOptimize(call->PayloadSize());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
  state.SetLabel(ProtoName(protocol));
}
BENCHMARK(BM_OctetSequenceBulk)->Args({0, 4096})->Args({1, 4096});

// --- unmarshal under the two IDL mappings --------------------------------------
//
// The owned mapping's GetString/GetBytes copy each argument out of the
// frame into fresh std::strings; the view mapping's GetStringView /
// GetBytesView return windows into the retained frame slab. Both read
// the same prebuilt HIOP frame; heap_allocs_per_op (counting operator
// new, heap_count.cpp) is the difference the sequence-view mapping
// exists to eliminate.

// One frame slab holding `count` marshaled strings of `length` bytes.
heidi::bytes::IoBufPtr BuildStringFrame(int count, int length,
                                        size_t* payload_size) {
  BinaryCall proto;
  std::string value(static_cast<size_t>(length), 'v');
  for (int i = 0; i < count; ++i) proto.PutString(value);
  std::string payload = proto.Payload();
  auto slab = heidi::bytes::IoBufPool::Global().Get(payload.size());
  std::memcpy(slab->WritePtr(), payload.data(), payload.size());
  slab->Advance(payload.size());
  *payload_size = payload.size();
  return slab;
}

void RunUnmarshalStrings(benchmark::State& state, bool view_mapping) {
  const int count = 64;
  const int length = static_cast<int>(state.range(0));
  size_t payload_size = 0;
  auto slab = BuildStringFrame(count, length, &payload_size);

  auto run_once = [&] {
    BinaryCall call(slab, 0, payload_size);  // refcount bump, no copy
    size_t total = 0;
    if (view_mapping) {
      for (int i = 0; i < count; ++i) total += call.GetStringView().size();
    } else {
      for (int i = 0; i < count; ++i) total += call.GetString().size();
    }
    benchmark::DoNotOptimize(total);
  };
  for (int i = 0; i < 8; ++i) run_once();  // warmup

  const uint64_t heap_before = heidi::bench::HeapAllocCount();
  for (auto _ : state) run_once();
  const uint64_t heap_delta = heidi::bench::HeapAllocCount() - heap_before;

  state.counters["heap_allocs_per_op"] =
      benchmark::Counter(static_cast<double>(heap_delta) /
                         static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() * count);
  state.SetLabel(view_mapping ? "view" : "owned");
}

void BM_UnmarshalStringsOwned(benchmark::State& state) {
  RunUnmarshalStrings(state, /*view_mapping=*/false);
}
void BM_UnmarshalStringsView(benchmark::State& state) {
  RunUnmarshalStrings(state, /*view_mapping=*/true);
}
BENCHMARK(BM_UnmarshalStringsOwned)->Arg(16)->Arg(1024);
BENCHMARK(BM_UnmarshalStringsView)->Arg(16)->Arg(1024);

void RunUnmarshalBytes(benchmark::State& state, bool view_mapping) {
  const int bytes = static_cast<int>(state.range(0));
  BinaryCall proto;
  proto.PutBytes(std::string(static_cast<size_t>(bytes), 'x'));
  std::string payload = proto.Payload();
  auto slab = heidi::bytes::IoBufPool::Global().Get(payload.size());
  std::memcpy(slab->WritePtr(), payload.data(), payload.size());
  slab->Advance(payload.size());

  auto run_once = [&] {
    BinaryCall call(slab, 0, payload.size());
    if (view_mapping) {
      benchmark::DoNotOptimize(call.GetBytesView().size());
    } else {
      benchmark::DoNotOptimize(call.GetBytes().size());
    }
  };
  for (int i = 0; i < 8; ++i) run_once();

  const uint64_t heap_before = heidi::bench::HeapAllocCount();
  for (auto _ : state) run_once();
  const uint64_t heap_delta = heidi::bench::HeapAllocCount() - heap_before;

  state.counters["heap_allocs_per_op"] =
      benchmark::Counter(static_cast<double>(heap_delta) /
                         static_cast<double>(state.iterations()));
  state.SetBytesProcessed(state.iterations() * bytes);
  state.SetLabel(view_mapping ? "view" : "owned");
}

void BM_UnmarshalBytesOwned(benchmark::State& state) {
  RunUnmarshalBytes(state, /*view_mapping=*/false);
}
void BM_UnmarshalBytesView(benchmark::State& state) {
  RunUnmarshalBytes(state, /*view_mapping=*/true);
}
BENCHMARK(BM_UnmarshalBytesOwned)->Arg(4096)->Arg(65536);
BENCHMARK(BM_UnmarshalBytesView)->Arg(4096)->Arg(65536);

// --- encoded size (printed as a counter) ---------------------------------------

void BM_EncodedSize(benchmark::State& state) {
  const int protocol = static_cast<int>(state.range(0));
  const int count = static_cast<int>(state.range(1));
  size_t size = 0;
  for (auto _ : state) {
    auto call = NewCall(protocol);
    for (int i = 0; i < count; ++i) call->PutLong(1000000 + i);
    size = call->PayloadSize();
    benchmark::DoNotOptimize(size);
  }
  state.counters["payload_bytes"] =
      benchmark::Counter(static_cast<double>(size));
  state.SetLabel(ProtoName(protocol));
}
BENCHMARK(BM_EncodedSize)->Args({0, 256})->Args({1, 256});

}  // namespace

// Reported main: BENCH_<name>.json carries pool_hits_per_op /
// pool_misses_per_op so CI can watch allocations-per-call on the
// marshaling fast path (no orb here, so no op.* histograms to watch).
int main(int argc, char** argv) {
  return heidi::bench::RunReported(argc, argv, {});
}
