// Process-wide heap-allocation counter for the allocation-sensitive
// benchmarks (bench_dispatch, bench_marshal). heap_count.cpp replaces
// the global operator new/new[] with counting versions; benchmarks
// snapshot HeapAllocCount() around their timed loop and report the
// per-op delta, which is how the zero-copy dispatch path proves its
// "~0 heap allocations per op" claim (and how CI catches a regression
// that silently reintroduces copies).
#pragma once

#include <cstdint>

namespace heidi::bench {

// Number of global operator new / new[] calls since process start.
// Monotonic; relaxed atomic, so cheap enough to leave always-on.
uint64_t HeapAllocCount();

}  // namespace heidi::bench
