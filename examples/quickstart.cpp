// Quickstart: a complete HeidiRMI deployment in one process — server orb,
// client orb, a remote Echo object, and calls over real TCP loopback.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "demo/demo.h"
#include "orb/orb.h"

int main() {
  using namespace heidi;
  demo::ForceDemoRegistration();

  // --- server address space --------------------------------------------
  orb::OrbOptions server_options;
  server_options.protocol = "text";  // or "hiop" for the binary protocol
  orb::Orb server(server_options);
  server.ListenTcp();  // the bootstrap port (ephemeral)

  demo::EchoImpl echo_impl;  // a plain implementation object
  orb::ObjectRef ref = server.ExportObject(&echo_impl, "IDL:Heidi/Echo:1.0");
  std::cout << "server listening, object reference:\n  " << ref.ToString()
            << "\n\n";

  // --- client address space ----------------------------------------------
  // In a real deployment the stringified reference travels out of band
  // (config file, command line, naming service); here we just hand it over.
  orb::Orb client(server_options);
  std::shared_ptr<HdEcho> echo = client.ResolveAs<HdEcho>(ref.ToString());

  std::cout << "echo(\"hello heidi\")  -> " << echo->echo("hello heidi")
            << "\n";
  std::cout << "add(19, 23)          -> " << echo->add(19, 23) << "\n";
  std::cout << "norm(3, 4)           -> " << echo->norm(3, 4) << "\n";
  std::cout << "flip(::XTrue)          -> "
            << (echo->flip(::XTrue) ? "XTrue" : "XFalse") << "\n";
  std::cout << "blob(\"stressed\")     -> " << echo->blob("stressed") << "\n";

  echo->post("quickstart finished");  // oneway: no reply awaited
  echo_impl.WaitForPosts(1);
  std::cout << "oneway event seen by server: " << echo_impl.Events()[0]
            << "\n";

  client.Shutdown();
  server.Shutdown();
  std::cout << "\ndone.\n";
  return 0;
}
