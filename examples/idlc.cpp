// idlc — the template-driven IDL compiler as a command-line tool (Fig 6).
//
//   idlc [options] <file.idl>
//     --mapping <name>       builtin mapping (default heidi_cpp);
//                            see --list-mappings
//     --template <file.tmpl> use a template file instead of a builtin
//                            mapping (repeatable; @include resolves
//                            relative to the file)
//     --out <dir>            write generated files under <dir> (default .)
//     --emit-est             print the EST external representation instead
//                            of generating code (Fig 8's hand-off format)
//     --lint                 run the static safety checks (HLxxx) and exit
//     --lint-fatal           treat lint warnings as errors
//     --list-mappings        list builtin mappings and exit
//     --dump-templates <dir> export the builtin templates as editable
//                            .tmpl files and exit
//
// Customizing a mapping therefore never means recompiling this tool:
// dump the builtin templates, edit, and pass them back with --template.
//
// The lint pass (codegen/lint.h) also runs automatically before any code
// is generated: a mapping-contract error (view-lifetime violations,
// oneway misuse, post-mapping name collisions) aborts generation with
// file:line:col diagnostics instead of emitting unsafe bindings.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "codegen/codegen.h"
#include "support/error.h"
#include "est/est.h"
#include "idl/idl.h"
#include "tmpl/tmpl.h"

namespace {

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] <file.idl>\n"
      << "  --mapping <name>        builtin mapping (default: heidi_cpp)\n"
      << "  --template <file.tmpl>  use a template file (repeatable)\n"
      << "  --out <dir>             output directory (default: .)\n"
      << "  --view-interfaces <l>   comma-separated interfaces whose `in`\n"
      << "                          strings/octet sequences map to views\n"
      << "                          over the request frame ('*' = all;\n"
      << "                          heidi_cpp mapping)\n"
      << "  --emit-est              print the EST instead of generating\n"
      << "  --lint                  run the HLxxx static safety checks and\n"
      << "                          exit (no code generation)\n"
      << "  --lint-fatal            treat lint warnings as errors\n"
      << "  --list-mappings         list builtin mappings\n"
      << "  --dump-templates <dir>  export builtin templates as files\n";
  return 2;
}

std::string ReadFile(const std::string& path) {
  // A directory opens "successfully" but reads nothing — without the
  // explicit check, `--template <dir>` would silently behave like an
  // empty template and generate nothing with exit 0.
  if (std::filesystem::is_directory(path)) {
    throw heidi::HdError("cannot read " + path + ": is a directory");
  }
  std::ifstream in(path);
  if (!in) throw heidi::HdError("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  if (in.bad() || ss.fail()) {
    throw heidi::HdError("cannot read " + path);
  }
  return ss.str();
}

int ListMappings() {
  for (const std::string& name : heidi::codegen::BuiltinMappingNames()) {
    const heidi::codegen::Mapping* m =
        heidi::codegen::FindBuiltinMapping(name);
    std::cout << name << " — " << m->description << "\n";
    for (const auto& t : m->templates) {
      std::cout << "    template: " << t.name << "\n";
    }
  }
  return 0;
}

int DumpTemplates(const std::string& dir) {
  for (const std::string& name : heidi::codegen::BuiltinMappingNames()) {
    const heidi::codegen::Mapping* m =
        heidi::codegen::FindBuiltinMapping(name);
    for (const auto& t : m->templates) {
      std::filesystem::path path =
          std::filesystem::path(dir) / name / (t.name + ".tmpl");
      std::filesystem::create_directories(path.parent_path());
      std::ofstream out(path);
      out << t.text;
      out.flush();
      if (!out) {
        std::cerr << "idlc: cannot write " << path.string() << "\n";
        return 1;
      }
      std::cout << "wrote " << path.string() << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mapping_name = "heidi_cpp";
  std::vector<std::string> template_files;
  std::string out_dir = ".";
  std::string input;
  std::string view_interfaces;
  bool emit_est = false;
  bool lint_only = false;
  bool lint_fatal = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--mapping") {
      mapping_name = next();
    } else if (arg == "--template") {
      template_files.push_back(next());
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--view-interfaces") {
      view_interfaces = next();
    } else if (arg == "--emit-est") {
      emit_est = true;
    } else if (arg == "--lint") {
      lint_only = true;
    } else if (arg == "--lint-fatal") {
      lint_fatal = true;
    } else if (arg == "--list-mappings") {
      return ListMappings();
    } else if (arg == "--dump-templates") {
      return DumpTemplates(next());
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return Usage(argv[0]);
    } else if (input.empty()) {
      input = arg;
    } else {
      std::cerr << "multiple input files given\n";
      return Usage(argv[0]);
    }
  }
  if (input.empty()) return Usage(argv[0]);

  try {
    std::string source = ReadFile(input);
    // Parse and resolve once, batching contract violations for the lint
    // report instead of dying on the first (hard errors still throw).
    heidi::idl::Specification spec = heidi::idl::Parse(source, input);
    std::vector<heidi::idl::ContractDiag> contract_diags;
    heidi::idl::Resolve(spec, [&](const heidi::idl::ContractDiag& d) {
      contract_diags.push_back(d);
    });

    // The static safety layer runs before any code is generated; an
    // error means the mapping contract cannot hold, so nothing is
    // emitted (DESIGN.md §4g).
    heidi::codegen::LintOptions lint_options;
    lint_options.view_interfaces = view_interfaces;
    lint_options.warnings_are_errors = lint_fatal;
    heidi::codegen::LintResult lint =
        heidi::codegen::Lint(spec, lint_options, contract_diags);
    for (const heidi::codegen::LintDiag& diag : lint.diags) {
      std::cerr << heidi::codegen::FormatLintDiag(diag) << "\n";
    }
    if (lint.HasErrors()) {
      std::cerr << "idlc: lint found errors; no code generated\n";
      return 1;
    }
    if (lint_only) return 0;

    std::unique_ptr<heidi::est::Node> est = heidi::est::BuildEst(spec);

    if (emit_est) {
      std::cout << heidi::est::Serialize(*est);
      return 0;
    }

    heidi::tmpl::MapRegistry maps = heidi::tmpl::MapRegistry::Builtins();
    std::map<std::string, std::string> globals;
    if (!view_interfaces.empty()) {
      globals["viewInterfaces"] = view_interfaces;
    }
    heidi::codegen::GenerateResult result;
    if (!template_files.empty()) {
      // Explicit template files form an ad-hoc mapping.
      heidi::codegen::Mapping mapping;
      mapping.name = "custom";
      for (const std::string& file : template_files) {
        mapping.templates.push_back({file, ReadFile(file)});
      }
      result = heidi::codegen::Generate(*est, mapping, maps, globals);
    } else {
      const heidi::codegen::Mapping* mapping =
          heidi::codegen::FindBuiltinMapping(mapping_name);
      if (mapping == nullptr) {
        std::cerr << "unknown mapping '" << mapping_name
                  << "' (see --list-mappings)\n";
        return 2;
      }
      result = heidi::codegen::Generate(*est, *mapping, maps, globals);
    }

    for (const auto& [path, content] : result.files) {
      if (path.empty()) {
        std::cout << content;  // template wrote to the default stream
        continue;
      }
      std::filesystem::path full = std::filesystem::path(out_dir) / path;
      if (full.has_parent_path()) {
        std::filesystem::create_directories(full.parent_path());
      }
      std::ofstream out(full);
      out << content;
      out.flush();
      // An unwritable path must be a hard error, not a cheerful
      // "generated" line over a zero-byte (or missing) file.
      if (!out) {
        throw heidi::HdError("cannot write " + full.string());
      }
      std::cout << "generated " << full.string() << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "idlc: " << e.what() << "\n";
    return 1;
  }
}
