// The paper's thesis, as a user exercise: define a BRAND-NEW IDL mapping
// for your own code conventions — without touching the compiler. Here a
// fictional team with an "Acme" C coding standard (snake_case free
// functions, opaque handle structs) gets a C-language mapping from ~30
// template lines and one custom name-mapping function.
#include <iostream>

#include "codegen/codegen.h"
#include "est/est.h"
#include "idl/idl.h"
#include "tmpl/tmpl.h"

namespace {

constexpr const char* kIdl = R"(
module Acme {
  enum Grade { Good, Bad };
  interface Widget {
    void spin(in long speed);
    long poll();
    string label(in Grade g);
  };
};
)";

// The custom mapping template: IDL interface -> C header with an opaque
// handle and snake_case functions.
constexpr const char* kCHeaderTemplate =
    R"(@// Acme C mapping: opaque handles + snake_case functions.
@foreach interfaceList -map interfaceName Acme::Snake
@openfile acme_${interfaceName}.h
/* acme_${interfaceName}.h — generated; Acme C coding standard. */
#ifndef ACME_${interfaceName}_H
#define ACME_${interfaceName}_H

typedef struct acme_${interfaceName}* acme_${interfaceName}_t;

/* ${repoId} */
@foreach methodList -map returnType Acme::CType
@set params ''
@foreach paramList -ifMore ', ' -map paramType Acme::CType
@set params '${params}${paramType} ${paramName}${ifMore}'
@end paramList
@if ${params} == ''
${returnType} acme_${interfaceName}_${methodName}(acme_${interfaceName}_t self);
@else
${returnType} acme_${interfaceName}_${methodName}(acme_${interfaceName}_t self, ${params});
@fi
@end methodList

#endif
@end interfaceList
)";

// snake_case the last name component: "Acme::Widget" -> "widget".
std::string Snake(const std::string& scoped, const heidi::tmpl::MapContext&) {
  size_t pos = scoped.rfind("::");
  std::string name = pos == std::string::npos ? scoped : scoped.substr(pos + 2);
  std::string out;
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    if (std::isupper(static_cast<unsigned char>(c))) {
      if (i != 0) out.push_back('_');
      out.push_back(static_cast<char>(std::tolower(c)));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string CType(const std::string& spelling,
                  const heidi::tmpl::MapContext& ctx) {
  if (spelling == "void") return "void";
  if (spelling == "long") return "int32_t";
  if (spelling == "boolean") return "int";
  if (spelling == "string") return "const char*";
  const heidi::tmpl::TypeEntry* entry =
      ctx.types != nullptr ? ctx.types->Find(spelling) : nullptr;
  if (entry != nullptr && entry->tag == "enum") return "int";
  return "void*";  // handles and everything else
}

}  // namespace

int main() {
  // 1. Register the team's own map functions next to the builtins.
  heidi::tmpl::MapRegistry maps = heidi::tmpl::MapRegistry::Builtins();
  maps.Register("Acme::Snake", Snake);
  maps.Register("Acme::CType", CType);

  // 2. Compile the IDL to an EST and run the custom template over it —
  //    the same parser and engine that produced the HeidiRMI mapping.
  heidi::idl::Specification spec =
      heidi::idl::ParseAndResolve(kIdl, "widget.idl");
  auto est = heidi::est::BuildEst(spec);
  heidi::codegen::Mapping mapping{
      "acme_c", "Acme C coding standard", {{"header", kCHeaderTemplate}}};
  heidi::codegen::GenerateResult result =
      heidi::codegen::Generate(*est, mapping, maps);

  for (const auto& [path, content] : result.files) {
    std::cout << "----- " << path << "\n" << content << "\n";
  }
  std::cout << "A new language mapping, zero compiler changes.\n";
  return 0;
}
