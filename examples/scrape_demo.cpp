// Scrape demo — a demo server with the OpenMetrics endpoint enabled
// (OrbOptions::metrics_listen), used by CI's scrape smoke test and as
// the minimal "how do I hook this up to Prometheus" reference.
//
// Usage: scrape_demo [metrics_port] [seconds]
//
// Starts a text-protocol Echo server with a tail-retention tracer, runs
// a burst of local traffic (some of it intentionally slow/erroring so
// the scrape shows non-trivial numbers), prints
//
//   METRICS_PORT=<port>
//
// on stdout, and keeps serving scrapes for <seconds> (default 10).
// While it is up:
//
//   curl http://127.0.0.1:<port>/metrics   # OpenMetrics exposition
//   curl http://127.0.0.1:<port>/flight    # flight-recorder JSONL
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "demo/demo.h"
#include "obs/retention.h"
#include "obs/tracer.h"
#include "orb/orb.h"

using namespace heidi;

int main(int argc, char** argv) {
  demo::ForceDemoRegistration();
  int metrics_port = argc > 1 ? std::atoi(argv[1]) : 0;
  int seconds = argc > 2 ? std::atoi(argv[2]) : 10;

  auto tracer = std::make_shared<obs::Tracer>();
  orb::OrbOptions options;
  options.tracer = tracer;
  options.retention = obs::MakeTailRetention();
  options.metrics_listen = metrics_port;
  orb::Orb server(options);
  server.ListenTcp();
  demo::EchoImpl impl;
  orb::ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  demo::ThrowingEcho bad;
  orb::ObjectRef bad_ref = server.ExportObject(&bad, "IDL:Heidi/Echo:1.0");

  // Local traffic so the exposition carries real counters/histograms.
  {
    orb::OrbOptions client_options;
    client_options.tracer = tracer;
    client_options.retention = obs::MakeTailRetention();
    orb::Orb client(client_options);
    auto echo = client.ResolveAs<HdEcho>(ref.ToString());
    for (int i = 0; i < 200; ++i) {
      echo->echo("scrape me " + std::to_string(i));
      echo->add(i, i + 1);
    }
    // A few erroring calls so tail retention has something to keep.
    auto thrower = client.ResolveAs<HdEcho>(bad_ref.ToString());
    for (int i = 0; i < 3; ++i) {
      try {
        thrower->add(1, 2);
      } catch (const std::exception&) {
      }
    }
    client.Shutdown();
  }

  std::cout << "METRICS_PORT=" << server.MetricsPort() << std::endl;
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  server.Shutdown();
  return 0;
}
