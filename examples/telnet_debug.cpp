// The §4.2 war story, reproduced: "Utilizing such a text-based protocol
// permitted a 'human' client to telnet into the bootstrap port of a Heidi
// application and type in simple HeidiRMI requests to debug the system."
//
// This example starts a text-protocol server, then plays the human: it
// opens a raw TCP connection to the bootstrap port and writes request
// lines exactly as one would type them into telnet, printing the raw
// bytes both ways.
#include <iostream>

#include "demo/demo.h"
#include "net/buffered.h"
#include "net/tcp.h"
#include "orb/orb.h"

int main() {
  using namespace heidi;
  demo::ForceDemoRegistration();

  orb::Orb server;  // default protocol is the newline-terminated text one
  server.ListenTcp();
  demo::EchoImpl impl;
  orb::ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  std::cout << "server up. You could now literally run:\n"
            << "  telnet 127.0.0.1 " << server.TcpPort() << "\n"
            << "and type the lines below by hand.\n\n";

  auto raw = net::TcpConnect("127.0.0.1", server.TcpPort());
  net::BufferedReader reader(*raw);

  auto type_line = [&](const std::string& line) {
    std::cout << "you type > " << line << "\n";
    std::string wire = line + "\r\n";  // exactly what telnet sends
    raw->WriteAll(wire.data(), wire.size());
    std::string reply;
    if (reader.ReadLine(reply)) {
      std::cout << "server    < " << reply << "\n\n";
    }
  };

  std::string target = ref.ToString();
  // A request line: REQ <id> <W=wait for reply> <target> <op> <args...>.
  type_line("REQ 1 W " + target + " echo s:hello%20operator");
  type_line("REQ 2 W " + target + " add i:19 i:23");
  type_line("REQ 3 W " + target + " flip b:T");
  // Typos are survivable and the error is legible too:
  type_line("REQ 4 W " + target + " no_such_method");

  raw->Close();
  server.Shutdown();
  std::cout << "done.\n";
  return 0;
}
