// The §4.2 war story, reproduced: "Utilizing such a text-based protocol
// permitted a 'human' client to telnet into the bootstrap port of a Heidi
// application and type in simple HeidiRMI requests to debug the system."
//
// This example starts a text-protocol server, then plays the human: it
// opens a raw TCP connection to the bootstrap port and writes request
// lines exactly as one would type them into telnet, printing the raw
// bytes both ways.
//
// New in this version: the server exports a hand-written *debug servant*
// ("IDL:Heidi/Debug:1.0") wired to the orb's observability policy, so the
// human can interrogate a live system:
//
//   stats           orb counters (calls, retries, spans recorded, ...)
//   metrics         per-operation / per-stage latency histograms
//   trace i:<n>     the last <n> span timelines from the trace ring
//   pool            zero-copy buffer pool state (hits, misses, retained)
//   flight          black-box flight recorder (JSONL event journal)
//
// and — because trace context is itself a text header line — the human
// can hand-type a `trace:` line to inject a sampled trace context and
// then watch their own call show up in `trace`.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "demo/demo.h"
#include "net/buffered.h"
#include "net/tcp.h"
#include "obs/tracer.h"
#include "orb/orb.h"
#include "support/bytes.h"

namespace {

using namespace heidi;

// The debug servant: a legacy-style implementation object that renders
// orb and tracer state as strings. It is deliberately interface-free —
// no IDL, no stub — because its only client is a human with telnet.
class DebugImpl : public virtual HdObject {
 public:
  DebugImpl(orb::Orb* orb, std::shared_ptr<obs::Tracer> tracer)
      : orb_(orb), tracer_(std::move(tracer)) {}

  std::string Stats() const {
    orb::OrbStats s = orb_->Stats();
    std::ostringstream out;
    out << "requests_served=" << s.requests_served
        << " calls_sent=" << s.calls_sent
        << " connections_opened=" << s.connections_opened
        << " retries=" << s.retries
        << " spans_recorded=" << s.spans_recorded
        << " spans_dropped=" << s.spans_dropped
        << " dispatch_queue_highwater=" << s.dispatch_queue_highwater;
    return out.str();
  }

  std::string Metrics() const { return tracer_->Metrics().Render(); }

  std::string Pool() const {
    bytes::IoBufPool::Stats s = bytes::IoBufPool::Global().GetStats();
    std::ostringstream out;
    out << "iobuf_pool hits=" << s.hits << " misses=" << s.misses
        << " recycles=" << s.recycles
        << " outstanding_bufs=" << s.outstanding_bufs
        << " outstanding_bytes=" << s.outstanding_bytes;
    return out.str();
  }

  // The black-box journal (connection lifecycle, retries, fault
  // triggers, pressure events) as JSONL — what you read first when a
  // server died and all you have is a telnet prompt.
  std::string Flight() const { return orb_->DumpFlightRecorder(); }

  std::string Trace(long n) const {
    std::vector<obs::SpanRecord> spans = tracer_->Snapshot();
    size_t count = n < 0 ? 0 : static_cast<size_t>(n);
    size_t begin = spans.size() > count ? spans.size() - count : 0;
    std::ostringstream out;
    for (size_t i = begin; i < spans.size(); ++i) {
      const obs::SpanRecord& s = spans[i];
      char ids[64];
      std::snprintf(ids, sizeof ids, "%016llx%016llx/%016llx",
                    static_cast<unsigned long long>(s.ctx.trace_hi),
                    static_cast<unsigned long long>(s.ctx.trace_lo),
                    static_cast<unsigned long long>(s.ctx.span_id));
      out << ids << " " << obs::SpanKindName(s.kind) << " " << s.operation
          << " " << (s.end_ns - s.start_ns) / 1000 << "us";
      if (!s.error.empty()) out << " error=" << s.error;
      out << "\n";
    }
    return out.str();
  }

 private:
  orb::Orb* orb_;
  std::shared_ptr<obs::Tracer> tracer_;
};

class Debug_skel : public orb::HdSkeleton {
 public:
  Debug_skel(orb::Orb& o, HdObject* impl)
      : orb::HdSkeleton(o, impl), table_(o.Options().dispatch) {
    obj_ = dynamic_cast<DebugImpl*>(impl);
    if (obj_ == nullptr) {
      throw DispatchError("implementation object is not a DebugImpl");
    }
    table_.Add("stats", [this](wire::Call&, wire::Call& out) {
      out.PutString(obj_->Stats());
    });
    table_.Add("metrics", [this](wire::Call&, wire::Call& out) {
      out.PutString(obj_->Metrics());
    });
    table_.Add("trace", [this](wire::Call& in, wire::Call& out) {
      out.PutString(obj_->Trace(in.GetLong()));
    });
    table_.Add("pool", [this](wire::Call&, wire::Call& out) {
      out.PutString(obj_->Pool());
    });
    table_.Add("flight", [this](wire::Call&, wire::Call& out) {
      out.PutString(obj_->Flight());
    });
    table_.Seal();
  }

  bool Dispatch(const std::string& op, wire::Call& in,
                wire::Call& out) override {
    if (const auto* handler = table_.Find(op)) {
      (*handler)(in, out);
      return true;
    }
    return false;
  }

 private:
  DebugImpl* obj_;
  orb::DispatchTable table_;
};

// Skeleton only — nobody resolves a stub for the debug interface.
orb::RegisterInterface kRegisterDebug{
    "IDL:Heidi/Debug:1.0",
    [](orb::Orb& o, HdObject* impl) {
      return std::make_unique<Debug_skel>(o, impl);
    },
    nullptr};

}  // namespace

int main() {
  demo::ForceDemoRegistration();

  // Observability as policy: attach a tracer that samples everything so
  // the debug servant has timelines to show.
  auto tracer = std::make_shared<obs::Tracer>(
      obs::TracerOptions{.mode = obs::SampleMode::kAlways});
  orb::OrbOptions options;  // default protocol is the text one
  options.tracer = tracer;
  orb::Orb server(options);
  server.ListenTcp();
  demo::EchoImpl impl;
  orb::ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  DebugImpl debug(&server, tracer);
  orb::ObjectRef dbg = server.ExportObject(&debug, "IDL:Heidi/Debug:1.0");

  std::cout << "server up. You could now literally run:\n"
            << "  telnet 127.0.0.1 " << server.TcpPort() << "\n"
            << "and type the lines below by hand.\n\n";

  auto raw = net::TcpConnect("127.0.0.1", server.TcpPort());
  net::BufferedReader reader(*raw);

  auto type_line = [&](const std::string& line) {
    std::cout << "you type > " << line << "\n";
    std::string wire = line + "\r\n";  // exactly what telnet sends
    raw->WriteAll(wire.data(), wire.size());
    if (line.rfind("trace:", 0) == 0) return;  // header line: no reply yet
    // A traced call's reply is prefixed by its own `trace:` header line;
    // keep reading until the REP line itself arrives.
    std::string reply;
    while (reader.ReadLine(reply)) {
      std::cout << "server    < " << reply << "\n";
      if (reply.rfind("trace:", 0) != 0) break;
    }
    std::cout << "\n";
  };

  std::string target = ref.ToString();
  // A request line: REQ <id> <W=wait for reply> <target> <op> <args...>.
  type_line("REQ 1 W " + target + " echo s:hello%20operator");
  type_line("REQ 2 W " + target + " add i:19 i:23");
  type_line("REQ 3 W " + target + " flip b:T");
  // Typos are survivable and the error is legible too:
  type_line("REQ 4 W " + target + " no_such_method");

  // Trace context is one more text header line — typed by hand, it makes
  // the *next* request a sampled member of trace 0xdeb9. The reply echoes
  // the context back (with the server's own span id).
  type_line("trace: 00000000000000000000000000000deb-00000000000000a1-"
            "0000000000000000-01");
  type_line("REQ 5 W " + target + " echo s:follow%20the%20trace");

  // Now interrogate the live system through the debug servant.
  std::string dbg_target = dbg.ToString();
  type_line("REQ 6 W " + dbg_target + " stats");
  type_line("REQ 7 W " + dbg_target + " trace i:4");
  type_line("REQ 8 W " + dbg_target + " metrics");
  type_line("REQ 9 W " + dbg_target + " pool");
  type_line("REQ 10 W " + dbg_target + " flight");

  raw->Close();
  server.Shutdown();
  std::cout << "done.\n";
  return 0;
}
