// Runs the template-driven compiler on the paper's A.idl (Fig 3) with all
// four builtin mappings and prints every generated file — Fig 3 (heidi_cpp),
// the CORBA-prescribed shape (Fig 1 / Table 1), the Java mapping (§4.2),
// and Fig 10's tcl stubs/skeletons for the Receiver interface.
#include <iostream>

#include "codegen/codegen.h"

namespace {

constexpr const char* kFig3Idl = R"(/* File A.idl */
module Heidi {
  // External declaration of Heidi::S
  interface S;
  // Heidi::Status
  enum Status {Start, Stop};
  // Heidi::SSequence
  typedef sequence<S> SSequence;
  // Heidi::A
  interface A : S
  {
    void f(in A a);
    void g(incopy S s);
    void p(in long l = 0);
    void q(in Status s = Heidi::Start);
    readonly attribute Status button;
    void s(in boolean b = TRUE);
    void t(in SSequence s);
  };
};
)";

constexpr const char* kReceiverIdl =
    "interface Receiver { void print(in string text); };";

void Show(const char* mapping_name, const char* idl, const char* source) {
  const heidi::codegen::Mapping* mapping =
      heidi::codegen::FindBuiltinMapping(mapping_name);
  heidi::codegen::GenerateResult result =
      heidi::codegen::GenerateFromSource(idl, source, *mapping);
  std::cout << "================= mapping: " << mapping_name << " ("
            << mapping->description << ")\n";
  for (const auto& [path, content] : result.files) {
    std::cout << "----- " << (path.empty() ? "<stdout>" : path) << "\n"
              << content << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "input IDL (paper Fig 3):\n" << kFig3Idl << "\n";
  Show("heidi_cpp", kFig3Idl, "A.idl");
  Show("corba_cpp", kFig3Idl, "A.idl");
  Show("java", kFig3Idl, "A.idl");
  std::cout << "input IDL (paper Fig 10):\n" << kReceiverIdl << "\n\n";
  Show("tcl", kReceiverIdl, "Receiver.idl");
  return 0;
}
