// The paper's motivating scenario (§3): control messaging for a
// distributed multimedia prototype. A "player engine" process exposes the
// Heidi::A control interface; a "controller" process drives it using the
// full HeidiRMI parameter vocabulary:
//
//   - default parameters        a->p(); a->q();
//   - enums over the wire       a->q(Stop);
//   - incopy pass-by-value      a->g(&config)   (config is Serializable)
//   - object refs + callbacks   a->f(&monitor)  (engine calls monitor back)
//   - sequences of object refs  a->t(&sources)
//   - readonly attribute        a->GetButton()
//
// Both "processes" are orbs in this binary, talking over TCP loopback.
#include <iostream>

#include "demo/demo.h"
#include "orb/orb.h"

namespace {

// The controller-side monitor the engine calls back into.
class Monitor : public heidi::demo::AImpl {};

}  // namespace

int main() {
  using namespace heidi;
  demo::ForceDemoRegistration();

  // --- engine process ----------------------------------------------------
  orb::Orb engine_orb;
  engine_orb.ListenTcp();
  demo::AImpl engine;  // the engine's control surface
  engine.SetButtonState(Start);
  orb::ObjectRef engine_ref =
      engine_orb.ExportObject(&engine, "IDL:Heidi/A:1.0");
  std::cout << "engine control interface at " << engine_ref.ToString()
            << "\n\n";

  // --- controller process --------------------------------------------------
  orb::Orb controller_orb;
  controller_orb.ListenTcp();  // reachable for callbacks
  auto control = controller_orb.ResolveAs<HdA>(engine_ref.ToString());

  std::cout << "button attribute: "
            << (control->GetButton() == Start ? "Start" : "Stop") << "\n";

  // Defaults apply at the call site, exactly like C++ defaults (§3.1).
  control->p();        // p(0)
  control->p(250);     // seek position
  control->q();        // q(Start)
  control->q(Stop);
  control->s();        // s(XTrue)

  // A serializable configuration object travels BY VALUE (incopy).
  demo::SerializableS config(48000 /* sample rate */);
  control->g(&config);

  // A monitor object travels BY REFERENCE: the engine calls back.
  Monitor monitor;
  control->f(&monitor);

  // A set of media sources as a sequence of object references.
  demo::SImpl camera(1), microphone(2), screen(3);
  HdSSequence sources;
  sources.Append(&camera);
  sources.Append(&microphone);
  sources.Append(&screen);
  control->t(&sources);

  // --- what the engine observed -------------------------------------------
  auto seen = engine.Snapshot();
  std::cout << "\nengine observed:\n";
  std::cout << "  p values: ";
  for (long v : seen.p_values) std::cout << v << " ";
  std::cout << "\n  q values: ";
  for (HdStatus s : seen.q_values)
    std::cout << (s == Start ? "Start " : "Stop ");
  std::cout << "\n  config (by value): sample rate " << seen.last_g_value
            << "\n";
  std::cout << "  monitor (by reference): value() -> " << seen.last_f_value
            << " fetched via callback into the controller\n";
  std::cout << "  sources: ";
  for (long v : seen.t_sequences.back()) std::cout << v << " ";
  std::cout << "\n";

  controller_orb.Shutdown();
  engine_orb.Shutdown();
  std::cout << "\ndone.\n";
  return 0;
}
