// A name service for HeidiRMI, defined in IDL and served through its own
// generated bindings (naming_rmi.cc is produced by idlc at build time —
// see examples/CMakeLists.txt). Three address spaces in one binary:
//
//   registry  — runs the NameService object
//   provider  — exports an Echo object and binds it as "echo-service"
//   consumer  — knows ONLY the registry's reference; resolves the name,
//               then calls the provider
//
// The paper's object references are plain strings, which makes a naming
// layer a ~40-line IDL interface: bind/resolve strings.
#include <iostream>
#include <map>
#include <mutex>

#include "demo/demo.h"
#include "naming_rmi.hh"  // generated from examples/idl/naming.idl
#include "orb/orb.h"

namespace {

class NameServiceImpl : public virtual HdNameService {
 public:
  void bind(HdString name, HdString ref) override {
    std::lock_guard lock(mutex_);
    table_[name] = ref;
  }
  HdString resolve(HdString name) override {
    std::lock_guard lock(mutex_);
    auto it = table_.find(name);
    if (it == table_.end()) {
      throw heidi::HdError("no binding for '" + name + "'");
    }
    return it->second;
  }
  XBool unbind(HdString name) override {
    std::lock_guard lock(mutex_);
    return XBool(table_.erase(name) > 0);
  }
  long size() override {
    std::lock_guard lock(mutex_);
    return static_cast<long>(table_.size());
  }
  HdString name_at(long index) override {
    std::lock_guard lock(mutex_);
    long i = 0;
    for (const auto& [name, ref] : table_) {
      if (i++ == index) return name;
    }
    throw heidi::HdError("index out of range");
  }

 private:
  std::mutex mutex_;
  std::map<HdString, HdString> table_;
};

}  // namespace

int main() {
  using namespace heidi;
  demo::ForceDemoRegistration();

  // --- registry address space ---------------------------------------------
  orb::Orb registry_orb;
  registry_orb.ListenTcp();
  NameServiceImpl registry;
  orb::ObjectRef registry_ref =
      registry_orb.ExportObject(&registry, "IDL:Naming/NameService:1.0");
  std::cout << "name service at " << registry_ref.ToString() << "\n";

  // --- provider address space -----------------------------------------------
  orb::Orb provider_orb;
  provider_orb.ListenTcp();
  demo::EchoImpl echo_impl;
  orb::ObjectRef echo_ref =
      provider_orb.ExportObject(&echo_impl, "IDL:Heidi/Echo:1.0");
  {
    auto naming =
        provider_orb.ResolveAs<HdNameService>(registry_ref.ToString());
    naming->bind("echo-service", echo_ref.ToString());
    std::cout << "provider bound 'echo-service'\n";
  }

  // --- consumer address space -------------------------------------------------
  orb::Orb consumer_orb;
  auto naming = consumer_orb.ResolveAs<HdNameService>(registry_ref.ToString());
  std::cout << "registry holds " << naming->size() << " binding(s): "
            << naming->name_at(0) << "\n";
  auto echo =
      consumer_orb.ResolveAs<HdEcho>(naming->resolve("echo-service"));
  std::cout << "resolved and called: add(40, 2) -> " << echo->add(40, 2)
            << "\n";

  try {
    naming->resolve("no-such-service");
  } catch (const RemoteError& e) {
    std::cout << "unknown name reported remotely: " << e.what() << "\n";
  }
  std::cout << "unbind: " << (naming->unbind("echo-service") ? "ok" : "?")
            << ", registry now holds " << naming->size() << "\n";

  consumer_orb.Shutdown();
  provider_orb.Shutdown();
  registry_orb.Shutdown();
  std::cout << "done.\n";
  return 0;
}
