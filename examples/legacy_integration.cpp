// Table 2 of the paper, live: integrating LEGACY code that uses plain C++
// conventions — `A a; A* p; void f(A& r);` — which the CORBA-prescribed
// mapping forbids (it requires A_var/A_ptr and fixed inheritance).
//
// The legacy class below predates the ORB: it uses Heidi types, knows
// nothing about CORBA or HeidiRMI, and cannot be restructured. The custom
// mapping + delegation skeleton (Fig 2) make it remotely accessible
// WITHOUT modification: we wrap it in a thin adapter implementing the
// generated abstract interface, and the skeleton delegates to that.
#include <iostream>

#include "demo/demo.h"
#include "orb/orb.h"

namespace legacy {

// ===== pre-existing Heidi application code (unmodifiable) ==================
// Note the Table 2 usages: instances by value, raw pointers, references.
class VolumeControl {
 public:
  void SetLevel(long level) { level_ = level; }
  long Level() const { return level_; }
  void Nudge() { ++level_; }

 private:
  long level_ = 10;
};

void CalibrateByReference(VolumeControl& control) {  // void f(A& r);
  control.SetLevel(50);
}
// ===========================================================================

// The adapter: implements the *generated* abstract interface (HdS here)
// by delegating to the untouched legacy object. This is the only new code
// the custom mapping requires — no legacy class was edited, no
// inheritance was imposed on it (the tie/delegation point of §3).
class VolumeAdapter : public virtual HdS {
 public:
  explicit VolumeAdapter(VolumeControl* legacy) : legacy_(legacy) {}
  void ping() override { legacy_->Nudge(); }
  long value() override { return legacy_->Level(); }

 private:
  VolumeControl* legacy_;
};

}  // namespace legacy

int main() {
  using namespace heidi;
  demo::ForceDemoRegistration();

  // Legacy objects living their legacy life, by value and by reference.
  legacy::VolumeControl volume;        // A a;       (not A_var a;)
  legacy::VolumeControl* p = &volume;  // A* p;      (not A_ptr p;)
  legacy::CalibrateByReference(*p);    // void f(A&) (non-compliant in CORBA)
  std::cout << "legacy object calibrated to level " << volume.Level()
            << "\n";

  // Make the same object remote-accessible through the adapter.
  orb::Orb server;
  server.ListenTcp();
  legacy::VolumeAdapter adapter(&volume);
  orb::ObjectRef ref = server.ExportObject(&adapter, "IDL:Heidi/S:1.0");
  std::cout << "exported as " << ref.ToString() << "\n";

  orb::Orb client;
  auto remote = client.ResolveAs<HdS>(ref.ToString());
  std::cout << "remote value()  -> " << remote->value() << "\n";
  remote->ping();  // nudges the legacy object through the adapter
  remote->ping();
  std::cout << "after two pings -> " << remote->value() << "\n";
  std::cout << "legacy object saw them directly: " << volume.Level()
            << "\n";

  client.Shutdown();
  server.Shutdown();
  std::cout << "done.\n";
  return 0;
}
