#include "net/buffered.h"

#include <gtest/gtest.h>

#include <thread>

#include "net/fault.h"
#include "net/inmemory.h"
#include "support/bytes.h"
#include "support/error.h"

namespace heidi::net {
namespace {

TEST(BufferedReader, ReadsLines) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("one\ntwo\n\nthree\n", 15);
  BufferedReader reader(*pair.b);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "one");
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "two");
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "");  // blank line preserved
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "three");
}

TEST(BufferedReader, EofBetweenLines) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("done\n", 5);
  pair.a->Close();
  BufferedReader reader(*pair.b);
  std::string line;
  EXPECT_TRUE(reader.ReadLine(line));
  EXPECT_FALSE(reader.ReadLine(line));
}

TEST(BufferedReader, MidLineEofThrows) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("partial", 7);
  pair.a->Close();
  BufferedReader reader(*pair.b);
  std::string line;
  EXPECT_THROW(reader.ReadLine(line), NetError);
}

TEST(BufferedReader, LineSpanningChunks) {
  ChannelPair pair = CreateInMemoryPair();
  // 200 KiB line crosses the 64 KiB internal chunk size several times.
  std::string big(200 * 1024, 'a');
  std::thread writer([&] {
    pair.a->WriteAll(big.data(), big.size());
    pair.a->WriteAll("\n", 1);
  });
  BufferedReader reader(*pair.b);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(line));
  writer.join();
  EXPECT_EQ(line, big);
}

TEST(BufferedReader, MixedLineAndExactReads) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("header\nBINARY12rest\n", 20);
  BufferedReader reader(*pair.b);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "header");
  char buf[8];
  ASSERT_TRUE(reader.ReadExact(buf, 8));
  EXPECT_EQ(std::string(buf, 8), "BINARY12");
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "rest");
}

TEST(BufferedReader, ReadExactEofAtBoundary) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("abcd", 4);
  pair.a->Close();
  BufferedReader reader(*pair.b);
  char buf[4];
  EXPECT_TRUE(reader.ReadExact(buf, 4));
  EXPECT_FALSE(reader.ReadExact(buf, 4));
}

TEST(BufferedReader, ReadExactMidMessageEofThrows) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("ab", 2);
  pair.a->Close();
  BufferedReader reader(*pair.b);
  char buf[4];
  EXPECT_THROW(reader.ReadExact(buf, 4), NetError);
}

TEST(BufferedReader, ReadExactZeroLength) {
  ChannelPair pair = CreateInMemoryPair();
  BufferedReader reader(*pair.b);
  // A zero-length read succeeds without touching the channel — even
  // with nothing buffered and nothing written (a blocking Read here
  // would hang this test).
  EXPECT_TRUE(reader.ReadExact(nullptr, 0));
  pair.a->WriteAll("ab", 2);
  pair.a->Close();
  char buf[2];
  EXPECT_TRUE(reader.ReadExact(buf, 2));
  // And at EOF it still succeeds — zero bytes are always available.
  EXPECT_TRUE(reader.ReadExact(nullptr, 0));
  EXPECT_FALSE(reader.ReadExact(buf, 2));
}

TEST(BufferedReader, ReadExactDrainsBufferThenReadsDirect) {
  ChannelPair pair = CreateInMemoryPair();
  // ReadLine buffers past the newline; the following large ReadExact
  // must splice the buffered prefix with direct channel reads.
  std::string payload(200 * 1024, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('A' + (i % 26));
  }
  std::thread writer([&] {
    pair.a->WriteAll("header\n", 7);
    pair.a->WriteAll(payload.data(), payload.size());
  });
  BufferedReader reader(*pair.b);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "header");
  std::string got(payload.size(), '?');
  ASSERT_TRUE(reader.ReadExact(got.data(), got.size()));
  writer.join();
  EXPECT_EQ(got, payload);
}

TEST(BufferedReader, ReadExactEofMidLargeFrameThrows) {
  ChannelPair pair = CreateInMemoryPair();
  // The peer promised a large frame but died partway: several slabs'
  // worth arrive, then EOF. The partial data must surface as NetError,
  // not as a short success.
  std::string partial(64 * 1024, 'p');
  pair.a->WriteAll(partial.data(), partial.size());
  pair.a->Close();
  BufferedReader reader(*pair.b);
  std::string buf(128 * 1024, '\0');
  EXPECT_THROW(reader.ReadExact(buf.data(), buf.size()), NetError);
}

// --- WritevAll ---------------------------------------------------------------

bytes::BufferChain MakeTestChain() {
  bytes::BufferChain chain;
  chain.Append("frame-header|");
  bytes::BufferChain payload;
  payload.Append(std::string(40 * 1024, 'q'));  // splits across slabs
  chain.AppendChain(payload);
  chain.Append("|trailer");
  return chain;
}

TEST(WritevAll, MatchesByteForByteWrites) {
  bytes::BufferChain chain = MakeTestChain();
  std::string expected = chain.ToString();

  ChannelPair pair = CreateInMemoryPair();
  pair.a->WritevAll(chain);
  pair.a->Close();
  BufferedReader reader(*pair.b);
  std::string got(expected.size(), '\0');
  ASSERT_TRUE(reader.ReadExact(got.data(), got.size()));
  EXPECT_EQ(got, expected);
  char extra;
  EXPECT_FALSE(reader.ReadExact(&extra, 1));  // nothing beyond the chain
}

TEST(WritevAll, CleanFaultyChannelPassesThrough) {
  bytes::BufferChain chain = MakeTestChain();
  std::string expected = chain.ToString();

  ChannelPair pair = CreateInMemoryPair();
  auto injector = std::make_shared<FaultInjector>(FaultPlan{.seed = 42});
  auto faulty = WrapFaulty(std::move(pair.a), injector);
  faulty->WritevAll(chain);
  faulty->Close();
  BufferedReader reader(*pair.b);
  std::string got(expected.size(), '\0');
  ASSERT_TRUE(reader.ReadExact(got.data(), got.size()));
  EXPECT_EQ(got, expected);
}

TEST(WritevAll, ScriptedWriteFaultIsAMidMessageDisconnect) {
  bytes::BufferChain chain = MakeTestChain();
  std::string expected = chain.ToString();

  ChannelPair pair = CreateInMemoryPair();
  FaultPlan plan;
  plan.seed = 7;
  plan.fail_write_at = 1;  // the very first gathered frame fails
  auto injector = std::make_shared<FaultInjector>(plan);
  auto faulty = WrapFaulty(std::move(pair.a), injector);
  EXPECT_THROW(faulty->WritevAll(chain), NetError);
  EXPECT_EQ(injector->Stats().writes_failed, 1u);

  // The fault writes a prefix then closes — the reader sees exactly the
  // torn frame a real mid-message disconnect produces.
  BufferedReader reader(*pair.b);
  std::string got(chain.Size() / 2, '\0');
  ASSERT_TRUE(reader.ReadExact(got.data(), got.size()));
  EXPECT_EQ(got, expected.substr(0, got.size()));
  char extra;
  EXPECT_FALSE(reader.ReadExact(&extra, 1));  // then EOF
}

}  // namespace
}  // namespace heidi::net
