#include "net/buffered.h"

#include <gtest/gtest.h>

#include <thread>

#include "net/inmemory.h"
#include "support/error.h"

namespace heidi::net {
namespace {

TEST(BufferedReader, ReadsLines) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("one\ntwo\n\nthree\n", 15);
  BufferedReader reader(*pair.b);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "one");
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "two");
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "");  // blank line preserved
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "three");
}

TEST(BufferedReader, EofBetweenLines) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("done\n", 5);
  pair.a->Close();
  BufferedReader reader(*pair.b);
  std::string line;
  EXPECT_TRUE(reader.ReadLine(line));
  EXPECT_FALSE(reader.ReadLine(line));
}

TEST(BufferedReader, MidLineEofThrows) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("partial", 7);
  pair.a->Close();
  BufferedReader reader(*pair.b);
  std::string line;
  EXPECT_THROW(reader.ReadLine(line), NetError);
}

TEST(BufferedReader, LineSpanningChunks) {
  ChannelPair pair = CreateInMemoryPair();
  // 200 KiB line crosses the 64 KiB internal chunk size several times.
  std::string big(200 * 1024, 'a');
  std::thread writer([&] {
    pair.a->WriteAll(big.data(), big.size());
    pair.a->WriteAll("\n", 1);
  });
  BufferedReader reader(*pair.b);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(line));
  writer.join();
  EXPECT_EQ(line, big);
}

TEST(BufferedReader, MixedLineAndExactReads) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("header\nBINARY12rest\n", 20);
  BufferedReader reader(*pair.b);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "header");
  char buf[8];
  ASSERT_TRUE(reader.ReadExact(buf, 8));
  EXPECT_EQ(std::string(buf, 8), "BINARY12");
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "rest");
}

TEST(BufferedReader, ReadExactEofAtBoundary) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("abcd", 4);
  pair.a->Close();
  BufferedReader reader(*pair.b);
  char buf[4];
  EXPECT_TRUE(reader.ReadExact(buf, 4));
  EXPECT_FALSE(reader.ReadExact(buf, 4));
}

TEST(BufferedReader, ReadExactMidMessageEofThrows) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("ab", 2);
  pair.a->Close();
  BufferedReader reader(*pair.b);
  char buf[4];
  EXPECT_THROW(reader.ReadExact(buf, 4), NetError);
}

}  // namespace
}  // namespace heidi::net
