#include "net/tcp.h"

#include <gtest/gtest.h>

#include <thread>

#include "support/error.h"

namespace heidi::net {
namespace {

TEST(Tcp, EphemeralPortAssigned) {
  TcpAcceptor acceptor;
  EXPECT_GT(acceptor.Port(), 0);
}

TEST(Tcp, ConnectAcceptRoundTrip) {
  TcpAcceptor acceptor;
  std::unique_ptr<ByteChannel> server_side;
  std::thread accepter([&] { server_side = acceptor.Accept(); });
  auto client = TcpConnect("127.0.0.1", acceptor.Port());
  accepter.join();
  ASSERT_NE(server_side, nullptr);

  client->WriteAll("hello", 5);
  char buf[8];
  ASSERT_TRUE(ReadExact(*server_side, buf, 5));
  EXPECT_EQ(std::string(buf, 5), "hello");

  server_side->WriteAll("world!", 6);
  ASSERT_TRUE(ReadExact(*client, buf, 6));
  EXPECT_EQ(std::string(buf, 6), "world!");
}

TEST(Tcp, PeerCloseGivesEof) {
  TcpAcceptor acceptor;
  std::unique_ptr<ByteChannel> server_side;
  std::thread accepter([&] { server_side = acceptor.Accept(); });
  auto client = TcpConnect("localhost", acceptor.Port());
  accepter.join();
  client->Close();
  char buf[4];
  EXPECT_EQ(server_side->Read(buf, sizeof buf), 0u);
}

TEST(Tcp, AcceptorCloseUnblocksAccept) {
  TcpAcceptor acceptor;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    acceptor.Close();
  });
  EXPECT_EQ(acceptor.Accept(), nullptr);
  closer.join();
}

TEST(Tcp, ConnectToClosedPortThrows) {
  uint16_t dead_port;
  {
    TcpAcceptor temp;
    dead_port = temp.Port();
  }  // closed again
  EXPECT_THROW(TcpConnect("127.0.0.1", dead_port), NetError);
}

TEST(Tcp, ResolveFailureThrows) {
  EXPECT_THROW(TcpConnect("no-such-host.invalid", 1), NetError);
}

TEST(Tcp, LargeTransfer) {
  TcpAcceptor acceptor;
  std::unique_ptr<ByteChannel> server_side;
  std::thread accepter([&] { server_side = acceptor.Accept(); });
  auto client = TcpConnect("127.0.0.1", acceptor.Port());
  accepter.join();

  const std::string payload(1 << 20, 'x');  // 1 MiB forces partial writes
  std::thread writer([&] { client->WriteAll(payload.data(), payload.size()); });
  std::string received(payload.size(), '\0');
  ASSERT_TRUE(ReadExact(*server_side, received.data(), received.size()));
  writer.join();
  EXPECT_EQ(received, payload);
}

TEST(Tcp, PeerNameLooksLikeHostPort) {
  TcpAcceptor acceptor;
  std::unique_ptr<ByteChannel> server_side;
  std::thread accepter([&] { server_side = acceptor.Accept(); });
  auto client = TcpConnect("127.0.0.1", acceptor.Port());
  accepter.join();
  EXPECT_NE(client->PeerName().find("127.0.0.1"), std::string::npos);
  EXPECT_NE(server_side->PeerName().find(":"), std::string::npos);
}

}  // namespace
}  // namespace heidi::net
