// The fault-injection layer itself: scripted triggers fire exactly where
// the plan says, probabilistic schedules are reproducible from the seed,
// and injected failures look like real transport failures to the layers
// above (closed channel, partial frames, corrupted bytes).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/buffered.h"
#include "net/fault.h"
#include "net/inmemory.h"
#include "net/tcp.h"
#include "support/error.h"

namespace heidi::net {
namespace {

using Clock = std::chrono::steady_clock;

std::shared_ptr<FaultInjector> MakeInjector(const FaultPlan& plan) {
  return std::make_shared<FaultInjector>(plan);
}

TEST(FaultInjector, ScriptedReadFailureDisconnects) {
  FaultPlan plan;
  plan.fail_read_at = 2;
  auto injector = MakeInjector(plan);
  ChannelPair pair = CreateInMemoryPair();
  auto faulty = WrapFaulty(std::move(pair.a), injector);

  std::string hello = "hello";
  pair.b->WriteAll(hello.data(), hello.size());
  char buf[16];
  EXPECT_EQ(faulty->Read(buf, sizeof buf), hello.size());  // read #1 fine
  EXPECT_THROW(faulty->Read(buf, sizeof buf), NetError);   // read #2 dies
  EXPECT_EQ(injector->Stats().reads_failed, 1u);
  // The injected disconnect closed the channel: the peer sees EOF, like
  // a real mid-message connection loss.
  EXPECT_EQ(pair.b->Read(buf, sizeof buf), 0u);
}

TEST(FaultInjector, ScriptedWriteFailureLeavesPartialFrame) {
  FaultPlan plan;
  plan.fail_write_at = 1;
  auto injector = MakeInjector(plan);
  ChannelPair pair = CreateInMemoryPair();
  auto faulty = WrapFaulty(std::move(pair.a), injector);

  std::string frame = "0123456789";
  EXPECT_THROW(faulty->WriteAll(frame.data(), frame.size()), NetError);
  EXPECT_EQ(injector->Stats().writes_failed, 1u);
  // Half the frame reached the peer before the "disconnect" — the
  // indeterminate-failure shape the retry gate exists for.
  char buf[16];
  size_t got = pair.b->Read(buf, sizeof buf);
  EXPECT_GT(got, 0u);
  EXPECT_LT(got, frame.size());
  EXPECT_EQ(std::string(buf, got), frame.substr(0, got));
}

TEST(FaultInjector, ScriptedCorruptionFlipsOneByte) {
  FaultPlan plan;
  plan.corrupt_read_at = 1;
  auto injector = MakeInjector(plan);
  ChannelPair pair = CreateInMemoryPair();
  auto faulty = WrapFaulty(std::move(pair.a), injector);

  std::string data = "AAAA";
  pair.b->WriteAll(data.data(), data.size());
  char buf[16];
  size_t got = faulty->Read(buf, sizeof buf);
  ASSERT_EQ(got, data.size());
  EXPECT_NE(buf[0], 'A');
  EXPECT_EQ(buf[1], 'A');
  EXPECT_EQ(injector->Stats().bytes_corrupted, 1u);
}

TEST(FaultInjector, ScriptedConnectRefusalIsDeterminate) {
  FaultPlan plan;
  plan.refuse_connect_at = 1;
  auto injector = MakeInjector(plan);
  EXPECT_THROW(injector->OnConnect(), ConnectError);
  EXPECT_NO_THROW(injector->OnConnect());  // only the scripted one refuses
  EXPECT_EQ(injector->Stats().connects_refused, 1u);
}

TEST(FaultInjector, InjectedLatencyDelaysReads) {
  FaultPlan plan;
  plan.delay_rate = 1.0;
  plan.delay_ms = 30;
  auto injector = MakeInjector(plan);
  ChannelPair pair = CreateInMemoryPair();
  auto faulty = WrapFaulty(std::move(pair.a), injector);

  std::string data = "x";
  pair.b->WriteAll(data.data(), data.size());
  auto start = Clock::now();
  char buf[4];
  EXPECT_EQ(faulty->Read(buf, sizeof buf), 1u);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     Clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 25);
  EXPECT_GE(injector->Stats().delays_injected, 1u);
}

TEST(FaultInjector, ShortReadsStillDeliverEverythingThroughBufferedReader) {
  FaultPlan plan;
  plan.short_read_rate = 1.0;  // every read returns at most one byte
  auto injector = MakeInjector(plan);
  ChannelPair pair = CreateInMemoryPair();
  auto faulty = WrapFaulty(std::move(pair.a), injector);

  std::string line = "short reads exercise the reassembly path\n";
  pair.b->WriteAll(line.data(), line.size());
  BufferedReader reader(*faulty);
  std::string got;
  ASSERT_TRUE(reader.ReadLine(got));
  EXPECT_EQ(got + "\n", line);
  EXPECT_GE(injector->Stats().short_reads, line.size());
}

TEST(FaultInjector, SameSeedSameSchedule) {
  // Two injectors with the same plan+seed make identical decisions for
  // the same operation sequence — the reproducibility CI relies on.
  FaultPlan plan;
  plan.seed = 42;
  plan.read_error_rate = 0.3;
  plan.corrupt_rate = 0.2;
  plan.connect_refuse_rate = 0.25;
  auto a = MakeInjector(plan);
  auto b = MakeInjector(plan);
  for (int i = 0; i < 200; ++i) {
    FaultInjector::ReadDecision da = a->OnRead();
    FaultInjector::ReadDecision db = b->OnRead();
    EXPECT_EQ(da.fail, db.fail) << "read decision diverged at op " << i;
    EXPECT_EQ(da.corrupt, db.corrupt) << "corrupt diverged at op " << i;
  }
  int refusals_a = 0;
  int refusals_b = 0;
  for (int i = 0; i < 100; ++i) {
    try {
      a->OnConnect();
    } catch (const ConnectError&) {
      refusals_a++;
    }
    try {
      b->OnConnect();
    } catch (const ConnectError&) {
      refusals_b++;
    }
  }
  EXPECT_EQ(refusals_a, refusals_b);
  EXPECT_GT(refusals_a, 0);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultPlan plan_a;
  plan_a.seed = 1;
  plan_a.read_error_rate = 0.5;
  FaultPlan plan_b = plan_a;
  plan_b.seed = 2;
  auto a = MakeInjector(plan_a);
  auto b = MakeInjector(plan_b);
  int diverged = 0;
  for (int i = 0; i < 200; ++i) {
    if (a->OnRead().fail != b->OnRead().fail) ++diverged;
  }
  EXPECT_GT(diverged, 0);
}

TEST(FaultyAcceptor, WrapsAcceptedChannelsAndRefusesScripted) {
  FaultPlan plan;
  plan.refuse_connect_at = 1;   // first inbound connection is dropped
  plan.corrupt_read_at = 1;     // first server-side read is corrupted
  auto injector = MakeInjector(plan);
  FaultyAcceptor acceptor(0, injector);

  std::unique_ptr<ByteChannel> accepted;
  std::thread server([&] { accepted = acceptor.Accept(); });

  // Connection #1 is refused: the client observes EOF.
  auto refused = TcpConnect("127.0.0.1", acceptor.Port());
  char buf[8];
  EXPECT_EQ(refused->Read(buf, sizeof buf), 0u);

  // Connection #2 is accepted, wrapped in the faulty decorator.
  auto ok = TcpConnect("127.0.0.1", acceptor.Port());
  server.join();
  ASSERT_NE(accepted, nullptr);
  std::string data = "ZZZZ";
  ok->WriteAll(data.data(), data.size());
  size_t got = accepted->Read(buf, sizeof buf);
  ASSERT_GT(got, 0u);
  EXPECT_NE(buf[0], 'Z');  // server-side corruption injected
  EXPECT_EQ(injector->Stats().connects_refused, 1u);
  EXPECT_EQ(injector->Stats().bytes_corrupted, 1u);
  acceptor.Close();
}

TEST(BufferedReader, LineCapKillsRunawayLines) {
  ChannelPair pair = CreateInMemoryPair();
  std::string noise(4096, 'x');  // no newline anywhere
  pair.b->WriteAll(noise.data(), noise.size());
  BufferedReader reader(*pair.a);
  std::string line;
  EXPECT_THROW(reader.ReadLine(line, 1024), NetError);
}

}  // namespace
}  // namespace heidi::net
