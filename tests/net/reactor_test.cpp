// Unit tests for the sharded epoll reactor: adoption and echo round
// trips, round-robin shard balance, peer-close reaping, SO_REUSEPORT
// sharded listeners, write-queue backpressure, and loop-stall detection.
// The handlers here speak raw bytes (echo) — frame parsing is the
// orb's layer and is covered by the orb/adversarial tests.
#include "net/reactor.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "net/tcp.h"
#include "support/bytes.h"

namespace heidi::net {
namespace {

void SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << "send failed: " << errno;
    off += static_cast<size_t>(n);
  }
}

// Reads exactly n bytes; shorter result means EOF (or error) first.
std::string RecvUpTo(int fd, size_t n) {
  std::string out(n, '\0');
  size_t off = 0;
  while (off < n) {
    ssize_t r = ::recv(fd, out.data() + off, n - off, 0);
    if (r <= 0) break;
    off += static_cast<size_t>(r);
  }
  out.resize(off);
  return out;
}

bool WaitFor(const std::function<bool()>& cond, int timeout_ms = 5000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

Reactor::Handlers EchoHandlers() {
  Reactor::Handlers handlers;
  handlers.on_data = [](ReactorConn& conn) {
    IncomingBuffer& in = conn.Inbound();
    size_t n = in.Available();
    if (n == 0) return true;
    bytes::BufferChain chain;
    chain.Append(in.Data(), n);
    in.Consume(n);
    conn.QueueWrite(std::move(chain));
    return true;
  };
  return handlers;
}

// Hands one end of a fresh socketpair to the reactor, returns the other.
int AdoptPairEnd(Reactor& reactor) {
  int sv[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  reactor.Adopt(sv[0], "pair-peer");
  return sv[1];
}

TEST(ReactorTest, EchoRoundTrip) {
  ReactorOptions options;
  options.shards = 2;
  Reactor reactor(options, EchoHandlers());
  int fd = AdoptPairEnd(reactor);
  std::string msg = "hello, shard";
  SendAll(fd, msg);
  EXPECT_EQ(RecvUpTo(fd, msg.size()), msg);
  // A second burst exercises the steady-state (registered) path.
  std::string big(64 * 1024, 'x');
  SendAll(fd, big);
  EXPECT_EQ(RecvUpTo(fd, big.size()), big);
  ::close(fd);
  reactor.Stop();
}

TEST(ReactorTest, RoundRobinBalance) {
  ReactorOptions options;
  options.shards = 3;
  Reactor reactor(options, EchoHandlers());
  std::vector<int> fds;
  for (int i = 0; i < 8; ++i) fds.push_back(AdoptPairEnd(reactor));
  ASSERT_TRUE(WaitFor([&] { return reactor.ConnectionCount() == 8; }));
  std::vector<uint64_t> per_shard = reactor.ConnectionsPerShard();
  ASSERT_EQ(per_shard.size(), 3u);
  EXPECT_EQ(per_shard[0], 3u);
  EXPECT_EQ(per_shard[1], 3u);
  EXPECT_EQ(per_shard[2], 2u);
  for (int fd : fds) ::close(fd);
  EXPECT_TRUE(WaitFor([&] { return reactor.ConnectionCount() == 0; }));
  reactor.Stop();
}

TEST(ReactorTest, PeerCloseReapsConnection) {
  Reactor reactor(ReactorOptions{}, EchoHandlers());
  int fd = AdoptPairEnd(reactor);
  ASSERT_TRUE(WaitFor([&] { return reactor.ConnectionCount() == 1; }));
  ::close(fd);
  EXPECT_TRUE(WaitFor([&] { return reactor.ConnectionCount() == 0; }));
  ReactorStats stats = reactor.Stats();
  EXPECT_EQ(stats.connections_adopted, 1u);
  EXPECT_EQ(stats.connections_closed, 1u);
  reactor.Stop();
}

TEST(ReactorTest, ReusePortShardedListeners) {
  ReactorOptions options;
  options.shards = 2;
  Reactor reactor(options, EchoHandlers());
  uint16_t port = reactor.ListenReusePort(0);
  ASSERT_NE(port, 0);
  // Several connections; the kernel picks the shard per connection.
  std::vector<int> fds;
  for (int i = 0; i < 4; ++i) {
    std::unique_ptr<ByteChannel> channel = TcpConnect("127.0.0.1", port);
    int fd = channel->ReleaseFd();
    ASSERT_GE(fd, 0);
    fds.push_back(fd);
  }
  for (size_t i = 0; i < fds.size(); ++i) {
    std::string msg = "conn-" + std::to_string(i);
    SendAll(fds[i], msg);
    EXPECT_EQ(RecvUpTo(fds[i], msg.size()), msg);
  }
  ASSERT_TRUE(WaitFor([&] { return reactor.ConnectionCount() == 4; }));
  for (int fd : fds) ::close(fd);
  reactor.Stop();
  EXPECT_EQ(reactor.ConnectionCount(), 0u);
}

TEST(ReactorTest, BackpressureSuspendsAndResumes) {
  ReactorOptions options;
  options.shards = 1;
  options.write_high_water = 64 * 1024;
  options.write_low_water = 16 * 1024;
  // Amplifier: every received byte becomes a 4 KiB reply, so a client
  // that stalls its read side quickly crosses the high-water mark.
  Reactor::Handlers handlers;
  handlers.on_data = [](ReactorConn& conn) {
    IncomingBuffer& in = conn.Inbound();
    size_t n = in.Available();
    if (n == 0) return true;
    in.Consume(n);
    for (size_t i = 0; i < n; ++i) {
      bytes::BufferChain chain;
      chain.AppendZeros(4096);
      conn.QueueWrite(std::move(chain));
    }
    return true;
  };
  Reactor reactor(options, std::move(handlers));
  int fd = AdoptPairEnd(reactor);
  constexpr size_t kBytesSent = 256;
  constexpr size_t kExpected = kBytesSent * 4096;
  SendAll(fd, std::string(kBytesSent, 'a'));
  // Stall until the server reports a suspend, then drain everything.
  ASSERT_TRUE(
      WaitFor([&] { return reactor.Stats().backpressure_suspends > 0; }));
  EXPECT_EQ(RecvUpTo(fd, kExpected).size(), kExpected);
  ReactorStats stats = reactor.Stats();
  EXPECT_GE(stats.backpressure_suspends, 1u);
  EXPECT_GE(stats.backpressure_resumes, 1u);
  EXPECT_GE(stats.bytes_written, kExpected);
  ::close(fd);
  reactor.Stop();
}

TEST(ReactorTest, LoopStallDetection) {
  ReactorOptions options;
  options.stall_threshold_ns = 10'000'000;  // 10 ms
  Reactor::Handlers handlers;
  handlers.on_data = [](ReactorConn& conn) {
    conn.Inbound().Consume(conn.Inbound().Available());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return true;
  };
  Reactor reactor(options, std::move(handlers));
  int fd = AdoptPairEnd(reactor);
  SendAll(fd, "stall");
  EXPECT_TRUE(WaitFor([&] { return reactor.Stats().loop_stalls > 0; }));
  ::close(fd);
  reactor.Stop();
}

TEST(ReactorTest, StopIsIdempotentAndAdoptAfterStopCloses) {
  auto reactor = std::make_unique<Reactor>(ReactorOptions{}, EchoHandlers());
  int fd = AdoptPairEnd(*reactor);
  reactor->Stop();
  reactor->Stop();
  // The adopted peer sees EOF once Stop closed its connection.
  EXPECT_EQ(RecvUpTo(fd, 1).size(), 0u);
  ::close(fd);
  // Adopting after Stop must not leak the descriptor (closed inline).
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  reactor->Adopt(sv[0], "late");
  EXPECT_EQ(RecvUpTo(sv[1], 1).size(), 0u);
  ::close(sv[1]);
}

}  // namespace
}  // namespace heidi::net
