// Deadline-aware reads: WaitReadable on both transports, BufferedReader
// read timeouts, and the TcpConnect deadline parameter.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/buffered.h"
#include "net/inmemory.h"
#include "net/tcp.h"
#include "support/error.h"

namespace heidi::net {
namespace {

using Clock = std::chrono::steady_clock;

int ElapsedMs(Clock::time_point since) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - since)
                              .count());
}

TEST(InMemoryDeadline, WaitReadableTimesOutWithoutData) {
  ChannelPair pair = CreateInMemoryPair();
  auto start = Clock::now();
  EXPECT_FALSE(pair.a->WaitReadable(50));
  EXPECT_GE(ElapsedMs(start), 45);
}

TEST(InMemoryDeadline, WaitReadableSeesData) {
  ChannelPair pair = CreateInMemoryPair();
  pair.b->WriteAll("x", 1);
  EXPECT_TRUE(pair.a->WaitReadable(0));
  EXPECT_TRUE(pair.a->WaitReadable(1000));  // returns at once, no wait
}

TEST(InMemoryDeadline, WaitReadableSeesClose) {
  ChannelPair pair = CreateInMemoryPair();
  pair.b->Close();
  EXPECT_TRUE(pair.a->WaitReadable(1000));  // Read would return EOF now
  char buf[1];
  EXPECT_EQ(pair.a->Read(buf, 1), 0u);
}

TEST(TcpDeadline, WaitReadableTimesOutThenSeesData) {
  TcpAcceptor acceptor;
  auto client = TcpConnect("127.0.0.1", acceptor.Port());
  auto served = acceptor.Accept();
  ASSERT_NE(served, nullptr);

  EXPECT_FALSE(client->WaitReadable(50));
  served->WriteAll("hi", 2);
  EXPECT_TRUE(client->WaitReadable(1000));
  char buf[2];
  EXPECT_EQ(client->Read(buf, 2), 2u);
}

TEST(TcpDeadline, WaitReadableSeesPeerShutdown) {
  TcpAcceptor acceptor;
  auto client = TcpConnect("127.0.0.1", acceptor.Port());
  auto served = acceptor.Accept();
  served->Close();
  EXPECT_TRUE(client->WaitReadable(1000));
  char buf[1];
  EXPECT_EQ(client->Read(buf, 1), 0u);
}

TEST(TcpDeadline, ConnectWithDeadlineToLiveServerSucceeds) {
  TcpAcceptor acceptor;
  auto client = TcpConnect("127.0.0.1", acceptor.Port(), 1000);
  ASSERT_NE(client, nullptr);
  auto served = acceptor.Accept();
  client->WriteAll("ok", 2);
  char buf[2];
  ASSERT_TRUE(ReadExact(*served, buf, 2));
}

TEST(BufferedDeadline, ReadLineThrowsTimeoutWhenChannelIdle) {
  ChannelPair pair = CreateInMemoryPair();
  BufferedReader reader(*pair.a);
  reader.SetReadTimeout(50);
  std::string line;
  auto start = Clock::now();
  EXPECT_THROW(reader.ReadLine(line), TimeoutError);
  EXPECT_GE(ElapsedMs(start), 45);
  // The deadline abandons the read, not the channel: data arriving later
  // is still delivered.
  pair.b->WriteAll("hello\n", 6);
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "hello");
}

TEST(BufferedDeadline, ReadExactThrowsTimeoutMidMessage) {
  ChannelPair pair = CreateInMemoryPair();
  BufferedReader reader(*pair.a);
  reader.SetReadTimeout(50);
  pair.b->WriteAll("ab", 2);
  char buf[4];
  EXPECT_THROW(reader.ReadExact(buf, 4), TimeoutError);
}

TEST(BufferedDeadline, BufferedBytesSatisfyReadsWithoutPolling) {
  ChannelPair pair = CreateInMemoryPair();
  BufferedReader reader(*pair.a);
  pair.b->WriteAll("one\ntwo\n", 8);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(line));
  reader.SetReadTimeout(0);  // would fail instantly if Fill() were needed
  EXPECT_TRUE(reader.HasBuffered());
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(line, "two");
}

TEST(BufferedDeadline, TimeoutErrorIsANetError) {
  // Catch sites keyed on NetError keep working; the invocation path
  // catches TimeoutError first to keep the connection alive.
  ChannelPair pair = CreateInMemoryPair();
  BufferedReader reader(*pair.a);
  reader.SetReadTimeout(10);
  std::string line;
  EXPECT_THROW(reader.ReadLine(line), NetError);
}

}  // namespace
}  // namespace heidi::net
