#include "net/inmemory.h"

#include <gtest/gtest.h>

#include <thread>

#include "support/error.h"

namespace heidi::net {
namespace {

TEST(InMemory, RoundTripBothDirections) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("ping", 4);
  char buf[8] = {};
  EXPECT_EQ(pair.b->Read(buf, sizeof buf), 4u);
  EXPECT_EQ(std::string(buf, 4), "ping");

  pair.b->WriteAll("pong!", 5);
  EXPECT_EQ(pair.a->Read(buf, sizeof buf), 5u);
  EXPECT_EQ(std::string(buf, 5), "pong!");
}

TEST(InMemory, PartialReads) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("abcdef", 6);
  char buf[4];
  EXPECT_EQ(pair.b->Read(buf, 2), 2u);
  EXPECT_EQ(std::string(buf, 2), "ab");
  EXPECT_EQ(pair.b->Read(buf, 4), 4u);
  EXPECT_EQ(std::string(buf, 4), "cdef");
}

TEST(InMemory, CloseGivesEofAfterDrain) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("xy", 2);
  pair.a->Close();
  char buf[8];
  EXPECT_EQ(pair.b->Read(buf, sizeof buf), 2u);  // buffered data still read
  EXPECT_EQ(pair.b->Read(buf, sizeof buf), 0u);  // then EOF
}

TEST(InMemory, WriteAfterCloseThrows) {
  ChannelPair pair = CreateInMemoryPair();
  pair.b->Close();
  EXPECT_THROW(pair.a->WriteAll("x", 1), NetError);
}

TEST(InMemory, CloseUnblocksPendingRead) {
  ChannelPair pair = CreateInMemoryPair();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pair.a->Close();
  });
  char buf[4];
  EXPECT_EQ(pair.b->Read(buf, sizeof buf), 0u);
  closer.join();
}

TEST(InMemory, ThreadedProducerConsumer) {
  ChannelPair pair = CreateInMemoryPair();
  constexpr int kBytes = 100000;
  std::thread producer([&] {
    std::string chunk(1000, 'z');
    for (int i = 0; i < kBytes / 1000; ++i) {
      pair.a->WriteAll(chunk.data(), chunk.size());
    }
    pair.a->Close();
  });
  size_t total = 0;
  char buf[4096];
  while (true) {
    size_t r = pair.b->Read(buf, sizeof buf);
    if (r == 0) break;
    total += r;
  }
  producer.join();
  EXPECT_EQ(total, static_cast<size_t>(kBytes));
}

TEST(ReadExact, ExactAndEof) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("abcd", 4);
  char buf[4];
  EXPECT_TRUE(ReadExact(*pair.b, buf, 4));
  pair.a->Close();
  EXPECT_FALSE(ReadExact(*pair.b, buf, 4));  // clean EOF at boundary
}

TEST(ReadExact, MidMessageEofThrows) {
  ChannelPair pair = CreateInMemoryPair();
  pair.a->WriteAll("ab", 2);
  pair.a->Close();
  char buf[4];
  EXPECT_THROW(ReadExact(*pair.b, buf, 4), NetError);
}

}  // namespace
}  // namespace heidi::net
