// BufSlice::View() is HEIDI_LIFETIMEBOUND: the window is only good
// while the slice holds its slab reference. Taking a view off a
// temporary slice drops that reference at the end of the full
// expression — the view dangles immediately.
// STATIC-REQUIRES: clang
// STATIC-EXPECT: dangling|full-expression|temporary
#include <string_view>

#include "support/bytes.h"

heidi::bytes::BufSlice FirstSlice();

std::string_view PeekFirst() {
  std::string_view v = FirstSlice().View();  // slice dies, view survives
  return v;
}
