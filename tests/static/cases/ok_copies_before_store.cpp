// Positive control: the *correct* servant patterns must stay warning-
// free under the exact flags the failing cases use — copy a view into
// owned storage before keeping it, consume every view, keep the arena
// alive as long as its storage.
// STATIC-OK
#include <string>

#include "orb/heidi_types.h"
#include "support/arena.h"
#include "wire/call.h"

class CopyingServant {
 public:
  void Remember(HEIDI_VIEW_PARAM HdStringView v) { last_ = HdString(v); }
  const HdString& last() const { return last_; }

 private:
  HdString last_;  // owned: outlives every dispatch by construction
};

std::string ConsumeView(heidi::wire::Call& call) {
  return std::string(call.GetStringView());  // copied before it escapes
}

std::string_view ViewIntoLiveArena(heidi::support::Arena& arena,
                                   std::string_view s) {
  return arena.CopyString(s);  // caller owns the arena: view stays valid
}

char* ScratchFromLiveArena(heidi::support::Arena& arena) {
  char* p = arena.AllocateChars(16);
  p[0] = '\0';
  return p;
}
