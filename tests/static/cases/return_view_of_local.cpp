// A view-mode servant method returning a view of its own local string —
// the canonical escape: the HdString dies with the stack frame, the
// caller reads freed memory. HdStringView is a std::string_view alias
// ([[gsl::Pointer]]), so clang's statement-local lifetime analysis
// rejects the return.
// STATIC-REQUIRES: clang
// STATIC-EXPECT: dangling|stack|temporary
#include "orb/heidi_types.h"

HdStringView EchoUpper(HEIDI_VIEW_PARAM HdStringView msg) {
  HdString owned(msg);
  for (char& c : owned) c = static_cast<char>(c & ~0x20);
  return owned;  // view of a local — must not compile
}
