// Storing dispatch data by reference member, bound to a temporary that
// dies when the constructor exits. Both GCC (-Wextra) and clang
// (-Wdangling-field) reject this under -Werror, so the case runs on
// every toolchain the library builds with.
// STATIC-EXPECT: temporary
#include "orb/heidi_types.h"

class RefServant {
 public:
  RefServant() : label_(HdString("boom")) {}  // dies at ctor exit
  const HdString& label() const { return label_; }

 private:
  const HdString& label_;
};
