// A servant "copying" a view parameter into a member — via a temporary
// HdString that dies before the constructor body runs, leaving the
// stored view pointing at freed memory. clang's -Wdangling-field
// rejects initializing a gsl::Pointer member from a temporary owner.
// STATIC-REQUIRES: clang
// STATIC-EXPECT: dangling|temporary
#include "orb/heidi_types.h"

class StickyServant {
 public:
  explicit StickyServant(HEIDI_VIEW_PARAM HdStringView v)
      : last_(HdString(v)) {}  // view of a temporary copy — must not compile
  HdStringView last() const { return last_; }

 private:
  HdStringView last_;
};
