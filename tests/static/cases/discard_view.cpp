// Get*View is HEIDI_NODISCARD: a discarded view still pays its retain
// (an arena copy or a deque entry), so ignoring the result is always a
// bug — either dead code or a misunderstood unmarshal. clang-only: GCC
// 12 does not diagnose a discarded call to a *virtual* nodiscard member
// (non-virtual ones warn fine — see discard_donate_tail.cpp).
// STATIC-REQUIRES: clang
// STATIC-EXPECT: nodiscard|ignoring return value|unused result
#include "wire/call.h"

void SkipStringArg(heidi::wire::Call& call) {
  call.GetStringView();  // paid for a view, threw it away
}
