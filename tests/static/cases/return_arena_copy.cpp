// Arena::CopyString is HEIDI_LIFETIMEBOUND: the returned view lives
// exactly as long as the arena. Returning it past a local arena is the
// same bug the runtime's 0xDD poisoning catches at dispatch end — here
// it must already fail to compile.
// STATIC-REQUIRES: clang
// STATIC-EXPECT: dangling|stack|address
#include <string_view>

#include "support/arena.h"

std::string_view LeakArenaCopy(std::string_view s) {
  heidi::support::Arena arena;
  return arena.CopyString(s);  // view into a dying arena
}
