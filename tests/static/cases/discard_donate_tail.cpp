// Arena::DonateTail is HEIDI_NODISCARD and one-shot: dropping the
// returned slab forfeits the donated region for the whole dispatch —
// the reply silently falls back to pool traffic the caller thought it
// had eliminated.
// STATIC-EXPECT: nodiscard|ignoring return value|unused result
#include "support/arena.h"

void DropTail(heidi::support::Arena& arena) {
  arena.DonateTail();  // the zero-copy reply path just evaporated
}
