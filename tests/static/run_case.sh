#!/usr/bin/env bash
# Negative-compilation runner: compiles one case file against the real
# runtime headers and asserts the *compiler* enforces the view-lifetime
# contract (DESIGN.md §4g).
#
# Case files are self-describing through comment directives:
#
#   // STATIC-OK                    positive control — must compile clean
#   // STATIC-REQUIRES: clang      skip (exit 77) unless the compiler
#                                   matches; lifetimebound/dangling
#                                   analysis is clang-only
#   // STATIC-EXPECT: <ERE>        compilation must FAIL, and stderr
#                                   must match this extended regex
#                                   (repeatable; all must match)
#
# Usage: run_case.sh <cxx> <cxx-id> <repo-root> <case.cpp>
# Exit: 0 pass, 77 skipped (ctest SKIP_RETURN_CODE), 1 fail.
set -u

CXX="$1"
CXX_ID="$2"
ROOT="$3"
CASE="$4"

req="$(sed -n 's/.*STATIC-REQUIRES:[[:space:]]*\([A-Za-z+]*\).*/\1/p' "$CASE" | head -1)"
if [[ -n "$req" ]]; then
  case "$(printf '%s' "$CXX_ID" | tr '[:upper:]' '[:lower:]')" in
    *"$(printf '%s' "$req" | tr '[:upper:]' '[:lower:]')"*) ;;
    *)
      echo "SKIP: case requires '$req', compiler is '$CXX_ID' ($CXX)"
      exit 77
      ;;
  esac
fi

# Same dialect and warning floor as the library build (-Wall -Wextra),
# plus -Werror: the contract holds only if the diagnostic is fatal.
out="$("$CXX" -std=c++20 -fsyntax-only -I"$ROOT/src" \
        -Wall -Wextra -Werror "$CASE" 2>&1)"
status=$?

if grep -q 'STATIC-OK' "$CASE"; then
  if [[ $status -ne 0 ]]; then
    echo "FAIL: positive control did not compile:"
    printf '%s\n' "$out"
    exit 1
  fi
  echo "PASS: compiled clean"
  exit 0
fi

if [[ $status -eq 0 ]]; then
  echo "FAIL: known-bad code compiled — the static contract has a hole"
  exit 1
fi

failed=0
while IFS= read -r pattern; do
  [[ -z "$pattern" ]] && continue
  if ! printf '%s\n' "$out" | grep -Eq -- "$pattern"; then
    echo "FAIL: compiler output does not match /$pattern/"
    failed=1
  fi
done < <(sed -n 's/.*STATIC-EXPECT:[[:space:]]*//p' "$CASE")

if [[ $failed -ne 0 ]]; then
  printf '%s\n' "$out"
  exit 1
fi

echo "PASS: rejected with the expected diagnostic"
exit 0
