// Integration tests for the idlc command-line tool itself: flag handling,
// file output, --emit-est, template files, exit codes. The binary path is
// injected by CMake as IDLC_BINARY.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code;
  std::string output;  // stdout + stderr merged
};

RunResult RunIdlc(const std::string& args) {
  std::string command = std::string(IDLC_BINARY) + " " + args + " 2>&1";
  std::array<char, 4096> buffer;
  std::string output;
  FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  size_t n;
  while ((n = ::fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    output.append(buffer.data(), n);
  }
  int status = ::pclose(pipe);
  return {WIFEXITED(status) ? WEXITSTATUS(status) : -1, output};
}

class IdlcCli : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("idlc_cli_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    idl_path_ = (dir_ / "thing.idl").string();
    std::ofstream(idl_path_) << "interface Thing { long poke(in long x); };\n";
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Slurp(const fs::path& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  fs::path dir_;
  std::string idl_path_;
};

TEST_F(IdlcCli, NoArgsPrintsUsage) {
  RunResult r = RunIdlc("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST_F(IdlcCli, ListMappings) {
  RunResult r = RunIdlc("--list-mappings");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* name : {"heidi_cpp", "corba_cpp", "java", "tcl"}) {
    EXPECT_NE(r.output.find(name), std::string::npos) << name;
  }
}

TEST_F(IdlcCli, GeneratesFilesIntoOutDir) {
  RunResult r = RunIdlc("--mapping heidi_cpp --out " + dir_.string() + " " +
                        idl_path_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(Slurp(dir_ / "thing.hh").find("class HdThing"),
            std::string::npos);
  EXPECT_NE(Slurp(dir_ / "thing_rmi.hh").find("class HdThing_stub"),
            std::string::npos);
  EXPECT_NE(Slurp(dir_ / "thing_rmi.cc").find("hd_register_Thing"),
            std::string::npos);
}

TEST_F(IdlcCli, EmitEstPrintsExternalForm) {
  RunResult r = RunIdlc("--emit-est " + idl_path_);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("EST 1"), std::string::npos);
  EXPECT_NE(r.output.find("N Interface Thing"), std::string::npos);
  EXPECT_NE(r.output.find("P repoId IDL:Thing:1.0"), std::string::npos);
}

TEST_F(IdlcCli, CustomTemplateFile) {
  fs::path tmpl = dir_ / "names.tmpl";
  std::ofstream(tmpl) << "@foreach interfaceList\n${repoId}\n@end\n";
  RunResult r = RunIdlc("--template " + tmpl.string() + " " + idl_path_);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("IDL:Thing:1.0"), std::string::npos);
}

TEST_F(IdlcCli, ParseErrorsExitNonZeroWithPosition) {
  std::ofstream(idl_path_) << "interface Broken {\n  void f(;\n};\n";
  RunResult r = RunIdlc(idl_path_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("thing.idl:2"), std::string::npos);
}

TEST_F(IdlcCli, UnknownMappingRejected) {
  RunResult r = RunIdlc("--mapping cobol " + idl_path_);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown mapping"), std::string::npos);
}

TEST_F(IdlcCli, UnknownFlagRejected) {
  RunResult r = RunIdlc("--frobnicate " + idl_path_);
  EXPECT_EQ(r.exit_code, 2);
}

TEST_F(IdlcCli, MissingInputFileReported) {
  RunResult r = RunIdlc(dir_.string() + "/nonexistent.idl");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos);
}

TEST_F(IdlcCli, MalformedTemplateReportsPositionAndExitsNonZero) {
  fs::path tmpl = dir_ / "broken.tmpl";
  std::ofstream(tmpl) << "@foreach interfaceList\n${interfaceName}\n";
  RunResult r = RunIdlc("--template " + tmpl.string() + " " + idl_path_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("broken.tmpl:2"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("missing @end"), std::string::npos) << r.output;
}

TEST_F(IdlcCli, UnknownMapFunctionReported) {
  fs::path tmpl = dir_ / "badmap.tmpl";
  std::ofstream(tmpl) << "@foreach interfaceList\n"
                         "@map y NoSuch::Func interfaceName\n"
                         "${y}\n@end\n";
  RunResult r = RunIdlc("--template " + tmpl.string() + " " + idl_path_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown map function 'NoSuch::Func'"),
            std::string::npos)
      << r.output;
}

TEST_F(IdlcCli, UnknownDirectiveReported) {
  fs::path tmpl = dir_ / "garbage.tmpl";
  std::ofstream(tmpl) << "@garbage directive\n";
  RunResult r = RunIdlc("--template " + tmpl.string() + " " + idl_path_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown directive"), std::string::npos)
      << r.output;
}

TEST_F(IdlcCli, TemplateDirectoryRejected) {
  // A directory "opens" and reads as empty — it must not silently act
  // as an empty template.
  RunResult r = RunIdlc("--template " + dir_.string() + " " + idl_path_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("is a directory"), std::string::npos) << r.output;
}

TEST_F(IdlcCli, UnwritableOutputIsAHardError) {
  // thing.hh exists as a *directory*, so the generated file cannot be
  // opened — idlc must fail instead of printing "generated" over it.
  fs::create_directories(dir_ / "thing.hh");
  RunResult r = RunIdlc("--out " + dir_.string() + " " + idl_path_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cannot write"), std::string::npos) << r.output;
}

TEST_F(IdlcCli, LintCleanFileExitsZeroSilently) {
  RunResult r = RunIdlc("--lint " + idl_path_);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(r.output.empty()) << r.output;
  // --lint generates nothing even on success.
  EXPECT_FALSE(fs::exists(dir_ / "thing.hh"));
}

TEST_F(IdlcCli, LintReportsStructuredDiagnostics) {
  std::ofstream(idl_path_)
      << "interface Thing {\n"
         "  void f(out string s);\n"
         "  oneway long g(in long x);\n"
         "};\n";
  RunResult r = RunIdlc("--lint --view-interfaces Thing " + idl_path_);
  EXPECT_EQ(r.exit_code, 1);
  // file:line:col: severity: message [code] — the GCC diagnostic shape.
  EXPECT_NE(r.output.find("thing.idl:2:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[HL001]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[HL002]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("no code generated"), std::string::npos);
}

TEST_F(IdlcCli, LintFatalPromotesWarnings) {
  std::ofstream(idl_path_)
      << "interface Thing { attribute string label; };\n";
  const std::string args = "--view-interfaces Thing " + idl_path_;
  RunResult lenient = RunIdlc("--lint " + args);
  EXPECT_EQ(lenient.exit_code, 0) << lenient.output;
  EXPECT_NE(lenient.output.find("warning"), std::string::npos);
  EXPECT_NE(lenient.output.find("[HL003]"), std::string::npos);
  RunResult fatal = RunIdlc("--lint --lint-fatal " + args);
  EXPECT_EQ(fatal.exit_code, 1);
  EXPECT_NE(fatal.output.find("error"), std::string::npos);
}

TEST_F(IdlcCli, LintGatesCodeGeneration) {
  // No --lint flag: the safety layer still runs before codegen and a
  // contract error aborts generation entirely.
  std::ofstream(idl_path_)
      << "interface Thing { void f(out string s); };\n";
  RunResult r = RunIdlc("--view-interfaces Thing --out " + dir_.string() +
                        " " + idl_path_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("[HL001]"), std::string::npos) << r.output;
  EXPECT_FALSE(fs::exists(dir_ / "thing.hh"));
  EXPECT_FALSE(fs::exists(dir_ / "thing_rmi.cc"));
  // The same file is fine under the owned mapping: the gate is about
  // the mapping contract, not the IDL alone.
  RunResult owned = RunIdlc("--out " + dir_.string() + " " + idl_path_);
  EXPECT_EQ(owned.exit_code, 0) << owned.output;
  EXPECT_TRUE(fs::exists(dir_ / "thing.hh"));
}

TEST_F(IdlcCli, DumpTemplatesWritesFiles) {
  RunResult r = RunIdlc("--dump-templates " + (dir_ / "tmpl").string());
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(fs::exists(dir_ / "tmpl/heidi_cpp/interface.tmpl"));
  EXPECT_TRUE(fs::exists(dir_ / "tmpl/tcl/stubskel.tmpl"));
  // Round trip: the dumped template reproduces the builtin output.
  RunResult builtin = RunIdlc("--emit-est " + idl_path_);
  RunResult from_file =
      RunIdlc("--template " + (dir_ / "tmpl/java/interface.tmpl").string() +
              " --out " + (dir_ / "gen").string() + " " + idl_path_);
  EXPECT_EQ(from_file.exit_code, 0);
  EXPECT_NE(Slurp(dir_ / "gen/Thing.java").find("public interface Thing"),
            std::string::npos);
  (void)builtin;
}

}  // namespace
