// Golden test for Fig 3: the paper's A.idl compiled with the heidi_cpp
// mapping must reproduce the generated C++ interface class. Documented
// deviations from the figure (EXPERIMENTS.md): a #pragma once / include
// header for compilability, HdList<HdS*> instead of the figure's
// (uncompilable for abstract classes) HdList<HdS>, and a space before the
// inheritance colon.
#include <gtest/gtest.h>

#include "codegen/codegen.h"

namespace heidi::codegen {
namespace {

constexpr const char* kFig3Idl = R"(
/* File A.idl */
module Heidi {
  // External declaration of Heidi::S
  interface S;
  // Heidi::Status
  enum Status {Start, Stop};
  // Heidi::SSequence
  typedef sequence<S> SSequence;
  // Heidi::A
  interface A : S
  {
    void f(in A a);
    void g(incopy S s);
    void p(in long l = 0);
    void q(in Status s = Heidi::Start);
    readonly attribute Status button;
    void s(in boolean b = TRUE);
    void t(in SSequence s);
  };
};
)";

constexpr const char* kFig3Expected =
    R"(/* File A.hh */
#pragma once
#include "orb/heidi_types.h"

class HdS;
class HdA;

// IDL:Heidi/Status:1.0
enum HdStatus { Start, Stop };

// IDL:Heidi/SSequence:1.0
typedef HdList<HdS*> HdSSequence;
typedef HdListIterator<HdS*> HdSSequenceIter;

// IDL:Heidi/A:1.0
class HdA : virtual public HdS
{
public:
  virtual void f(HdA*) = 0;
  virtual void g(HdS*) = 0;
  virtual void p(long l = 0) = 0;
  virtual void q(HdStatus s = Start) = 0;
  virtual void s(XBool b = XTrue) = 0;
  virtual void t(HdSSequence*) = 0;
  virtual HdStatus GetButton() = 0;
  virtual ~HdA() { }
};

)";

GenerateResult Fig3() {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  EXPECT_NE(mapping, nullptr);
  return GenerateFromSource(kFig3Idl, "A.idl", *mapping);
}

TEST(HeidiMapping, Fig3GoldenOutput) {
  GenerateResult result = Fig3();
  ASSERT_TRUE(result.files.count("A.hh"));
  EXPECT_EQ(result.files.at("A.hh"), kFig3Expected);
}

TEST(HeidiMapping, OutputFilesNamedAfterIdlSource) {
  GenerateResult result = Fig3();
  // interface header + stub/skeleton header and implementation.
  EXPECT_EQ(result.files.size(), 3u);
  EXPECT_TRUE(result.files.count("A.hh"));
  EXPECT_TRUE(result.files.count("A_rmi.hh"));
  EXPECT_TRUE(result.files.count("A_rmi.cc"));
}

TEST(HeidiMapping, RootlessInterfaceDerivesHdObject) {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  GenerateResult result = GenerateFromSource(
      "interface Lone { void f(); };", "lone.idl", *mapping);
  const std::string& out = result.files.at("lone.hh");
  EXPECT_NE(out.find("class HdLone : virtual public ::heidi::HdObject"),
            std::string::npos);
}

TEST(HeidiMapping, WritableAttributeGetsSetter) {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  GenerateResult result = GenerateFromSource(
      "interface I { attribute long knob; };", "i.idl", *mapping);
  const std::string& out = result.files.at("i.hh");
  EXPECT_NE(out.find("virtual long GetKnob() = 0;"), std::string::npos);
  EXPECT_NE(out.find("virtual void SetKnob(long) = 0;"), std::string::npos);
}

TEST(HeidiMapping, ReadonlyAttributeHasNoSetter) {
  GenerateResult result = Fig3();
  EXPECT_EQ(result.files.at("A.hh").find("SetButton"), std::string::npos);
}

TEST(HeidiMapping, MultipleInheritanceJoined) {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  GenerateResult result = GenerateFromSource(R"(
    interface X { void x(); };
    interface Y { void y(); };
    interface Z : X, Y { void z(); };
  )",
                                             "z.idl", *mapping);
  EXPECT_NE(result.files.at("z.hh").find(
                "class HdZ : virtual public HdX, virtual public HdY"),
            std::string::npos);
}

TEST(HeidiMapping, StructEmitted) {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  GenerateResult result = GenerateFromSource(
      "struct Point { double x, y; string label; };", "p.idl", *mapping);
  const std::string& out = result.files.at("p.hh");
  EXPECT_NE(out.find("struct HdPoint"), std::string::npos);
  EXPECT_NE(out.find("  double x;"), std::string::npos);
  EXPECT_NE(out.find("  HdString label;"), std::string::npos);
}

TEST(HeidiMapping, NonSequenceAlias) {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  GenerateResult result =
      GenerateFromSource("typedef long Counter;", "c.idl", *mapping);
  EXPECT_NE(result.files.at("c.hh").find("typedef long HdCounter;"),
            std::string::npos);
}

TEST(HeidiMapping, StringDefaultPreserved) {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  GenerateResult result = GenerateFromSource(
      "interface I { void f(in string s = \"hi\"); };", "i.idl", *mapping);
  EXPECT_NE(
      result.files.at("i.hh").find("f(HdString s = \"hi\")"),
      std::string::npos);
}

}  // namespace
}  // namespace heidi::codegen
