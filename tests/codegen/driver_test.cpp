#include "codegen/driver.h"

#include <gtest/gtest.h>

#include "est/builder.h"
#include "idl/sema.h"
#include "support/error.h"

namespace heidi::codegen {
namespace {

TEST(SourceBase, StripsDirectoryAndExtension) {
  EXPECT_EQ(SourceBase("A.idl"), "A");
  EXPECT_EQ(SourceBase("path/to/A.idl"), "A");
  EXPECT_EQ(SourceBase("noext"), "noext");
  EXPECT_EQ(SourceBase("dir.with.dots/file.v2.idl"), "file.v2");
  EXPECT_EQ(SourceBase(".hidden"), ".hidden");
}

TEST(Generate, GlobalsReachTemplates) {
  idl::Specification spec = idl::ParseAndResolve("interface I {};", "x.idl");
  auto root = est::BuildEst(spec);
  Mapping mapping{"custom", "", {{"t", "base=${sourceBase} who=${who}\n"}}};
  tmpl::MapRegistry maps = tmpl::MapRegistry::Builtins();
  GenerateResult result = Generate(*root, mapping, maps, {{"who", "me"}});
  EXPECT_EQ(result.files.at(""), "base=x who=me\n");
}

TEST(Generate, MultipleTemplatesMergeFiles) {
  idl::Specification spec = idl::ParseAndResolve("interface I {};", "x.idl");
  auto root = est::BuildEst(spec);
  Mapping mapping{"custom",
                  "",
                  {{"one", "@openfile a.txt\nfrom one\n"},
                   {"two", "@openfile b.txt\nfrom two\n"}}};
  tmpl::MapRegistry maps = tmpl::MapRegistry::Builtins();
  GenerateResult result = Generate(*root, mapping, maps);
  EXPECT_EQ(result.files.at("a.txt"), "from one\n");
  EXPECT_EQ(result.files.at("b.txt"), "from two\n");
  EXPECT_FALSE(result.files.count(""));  // empty default stream dropped
}

TEST(Generate, TemplatesAppendToSameFile) {
  idl::Specification spec = idl::ParseAndResolve("interface I {};", "x.idl");
  auto root = est::BuildEst(spec);
  Mapping mapping{"custom",
                  "",
                  {{"one", "@openfile out.txt\nhead\n"},
                   {"two", "@openfile out.txt\ntail\n"}}};
  tmpl::MapRegistry maps = tmpl::MapRegistry::Builtins();
  GenerateResult result = Generate(*root, mapping, maps);
  EXPECT_EQ(result.files.at("out.txt"), "head\ntail\n");
}

TEST(GenerateFromSource, BadIdlThrowsParseError) {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  EXPECT_THROW(GenerateFromSource("interface {", "bad.idl", *mapping),
               ParseError);
}

TEST(GenerateFromSource, BadTemplateThrowsTemplateError) {
  Mapping mapping{"broken", "", {{"t", "@bogus\n"}}};
  EXPECT_THROW(GenerateFromSource("interface I {};", "x.idl", mapping),
               TemplateError);
}

TEST(Generate, CustomMapFunctionUsableFromTemplate) {
  // The paper's extension story: an application registers its own naming
  // convention without recompiling the compiler.
  idl::Specification spec =
      idl::ParseAndResolve("interface Player {};", "p.idl");
  auto root = est::BuildEst(spec);
  tmpl::MapRegistry maps = tmpl::MapRegistry::Builtins();
  maps.Register("Acme::Prefix",
                [](const std::string& v, const tmpl::MapContext&) {
                  return "Acme" + v;
                });
  Mapping mapping{
      "acme", "", {{"t",
                    "@foreach interfaceList -map name Acme::Prefix\n"
                    "class ${name};\n"
                    "@end\n"}}};
  GenerateResult result = Generate(*root, mapping, maps);
  EXPECT_EQ(result.files.at(""), "class AcmePlayer;\n");
}

}  // namespace
}  // namespace heidi::codegen
