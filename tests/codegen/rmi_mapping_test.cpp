// Structural tests on the generated stub/skeleton code (the rmi_header /
// rmi_impl templates + CPPGen statement generators). Full behavioural
// coverage lives in generated_runtime_test.cpp, which compiles and drives
// the build-time-generated bindings.
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "support/error.h"

namespace heidi::codegen {
namespace {

constexpr const char* kPlayerIdl = R"(
module Media {
  interface Source { long id(); };
  enum Mode { Playing, Paused, Stopped };
  typedef sequence<Source> SourceList;
  interface Player : Source {
    void play(in string uri, in long position = 0);
    long seek(in long position, out long actual);
    string describe(in Mode m, in boolean verbose = FALSE);
    void attach(in Source other);
    void mix(in SourceList sources);
    oneway void log(in string line);
    readonly attribute Mode mode;
    attribute long volume;
  };
};
)";

GenerateResult GenPlayer() {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  return GenerateFromSource(kPlayerIdl, "player.idl", *mapping);
}

TEST(RmiMapping, EmitsThreeFiles) {
  GenerateResult result = GenPlayer();
  EXPECT_TRUE(result.files.count("player.hh"));
  EXPECT_TRUE(result.files.count("player_rmi.hh"));
  EXPECT_TRUE(result.files.count("player_rmi.cc"));
}

TEST(RmiMapping, StubMirrorsIdlInheritance) {
  // §3.1: "the stub A_stub for the IDL interface A inherits functionality
  // from the stub S_stub for the IDL interface S".
  std::string hh = GenPlayer().files.at("player_rmi.hh");
  EXPECT_NE(hh.find("class HdPlayer_stub : public virtual HdPlayer, "
                    "public HdSource_stub"),
            std::string::npos);
  EXPECT_NE(hh.find("class HdSource_stub : public virtual HdSource, "
                    "public virtual ::heidi::orb::HdStub"),
            std::string::npos);
}

TEST(RmiMapping, SkeletonDelegatesNotInherits) {
  // Fig 2: the skeleton has no inheritance relation with the interface
  // class; it holds a pointer to the implementation.
  std::string hh = GenPlayer().files.at("player_rmi.hh");
  EXPECT_EQ(hh.find("class HdPlayer_skel : public virtual HdPlayer"),
            std::string::npos);
  EXPECT_NE(hh.find("class HdPlayer_skel : public HdSource_skel"),
            std::string::npos);
  EXPECT_NE(hh.find("HdPlayer* hd_obj_"), std::string::npos);
}

TEST(RmiMapping, SkeletonDispatchDelegatesUpward) {
  std::string cc = GenPlayer().files.at("player_rmi.cc");
  EXPECT_NE(
      cc.find("if (HdSource_skel::Dispatch(hd_op, hd_in, hd_out)) return "
              "true;"),
      std::string::npos);
}

TEST(RmiMapping, OnewayUsesInvokeOneway) {
  std::string cc = GenPlayer().files.at("player_rmi.cc");
  EXPECT_NE(cc.find("NewCall(\"log\", true)"), std::string::npos);
  EXPECT_NE(cc.find("InvokeOneway(std::move(hd_call));"), std::string::npos);
}

TEST(RmiMapping, OutParamReadAfterResult) {
  std::string cc = GenPlayer().files.at("player_rmi.cc");
  size_t method = cc.find("HdPlayer_stub::seek(");
  ASSERT_NE(method, std::string::npos);
  size_t result_pos = cc.find("auto hd_result = hd_reply->GetLong();", method);
  size_t out_pos = cc.find("actual = hd_reply->GetLong();", method);
  size_t return_pos = cc.find("return hd_result;", method);
  ASSERT_NE(result_pos, std::string::npos);
  ASSERT_NE(out_pos, std::string::npos);
  ASSERT_NE(return_pos, std::string::npos);
  EXPECT_LT(result_pos, out_pos);   // wire order: result then outs
  EXPECT_LT(out_pos, return_pos);   // return last
}

TEST(RmiMapping, ObjectParamsCarryRepositoryIds) {
  std::string cc = GenPlayer().files.at("player_rmi.cc");
  EXPECT_NE(cc.find("GetOrb().PutObject(*hd_call, other, "
                    "\"IDL:Media/Source:1.0\", false);"),
            std::string::npos);
}

TEST(RmiMapping, IncopyParamsMarkedTrue) {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  GenerateResult result = GenerateFromSource(
      "interface V { void put(incopy V v); };", "v.idl", *mapping);
  EXPECT_NE(result.files.at("v_rmi.cc").find("\"IDL:V:1.0\", true);"),
            std::string::npos);
}

TEST(RmiMapping, SequenceParamsLoopOverElements) {
  std::string cc = GenPlayer().files.at("player_rmi.cc");
  EXPECT_NE(cc.find("hd_call->PutLength(sources == nullptr"),
            std::string::npos);
  EXPECT_NE(cc.find("hd_p_sources_val.Append"), std::string::npos);
}

TEST(RmiMapping, AttributesBecomeGetSetOperations) {
  std::string cc = GenPlayer().files.at("player_rmi.cc");
  EXPECT_NE(cc.find("NewCall(\"_get_mode\")"), std::string::npos);
  EXPECT_NE(cc.find("NewCall(\"_set_volume\")"), std::string::npos);
  EXPECT_NE(cc.find("hd_table_.Add(\"_get_volume\""), std::string::npos);
  // readonly: no setter generated.
  EXPECT_EQ(cc.find("_set_mode"), std::string::npos);
}

TEST(RmiMapping, RegistrationUsesRepositoryId) {
  std::string cc = GenPlayer().files.at("player_rmi.cc");
  EXPECT_NE(cc.find("hd_register_Media_Player{\n    "
                    "\"IDL:Media/Player:1.0\","),
            std::string::npos);
}

TEST(RmiMapping, StubTypeInfoMirrorsInheritance) {
  std::string cc = GenPlayer().files.at("player_rmi.cc");
  EXPECT_NE(cc.find("HD_DEFINE_TYPE(HdPlayer_stub, \"IDL:Media/Player:1.0\", "
                    "&HdSource_stub::TypeInfo())"),
            std::string::npos);
}

TEST(RmiMapping, MultipleInheritanceDelegatesToEachBaseInOrder) {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  GenerateResult result = GenerateFromSource(R"(
    interface L { void left(); };
    interface R { void right(); };
    interface D : L, R { void both(); };
  )",
                                             "d.idl", *mapping);
  const std::string& cc = result.files.at("d_rmi.cc");
  size_t l = cc.find("if (HdL_skel::Dispatch(hd_op, hd_in, hd_out))");
  size_t r = cc.find("if (HdR_skel::Dispatch(hd_op, hd_in, hd_out))");
  ASSERT_NE(l, std::string::npos);
  ASSERT_NE(r, std::string::npos);
  EXPECT_LT(l, r);  // "delegated to each of the skeleton super-classes in order"
  EXPECT_NE(result.files.at("d_rmi.hh")
                .find("class HdD_skel : public HdL_skel, public HdR_skel"),
            std::string::npos);
}

// --- generator limits are loud, not silent ---------------------------------

TEST(RmiMappingErrors, StructParamsRejected) {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  EXPECT_THROW(GenerateFromSource(R"(
    struct P { long x; };
    interface I { void f(in P p); };
  )",
                                  "i.idl", *mapping),
               TemplateError);
}

TEST(RmiMappingErrors, OutObjectParamsRejected) {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  EXPECT_THROW(GenerateFromSource(
                   "interface I { void f(out I other); };", "i.idl", *mapping),
               TemplateError);
}

TEST(RmiMappingErrors, NestedSequencesRejected) {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  EXPECT_THROW(GenerateFromSource(R"(
    typedef sequence<sequence<long>> Matrix;
    interface I { void f(in Matrix m); };
  )",
                                  "i.idl", *mapping),
               TemplateError);
}

TEST(RmiMappingErrors, SequenceResultRejected) {
  const Mapping* mapping = FindBuiltinMapping("heidi_cpp");
  EXPECT_THROW(GenerateFromSource(R"(
    typedef sequence<long> Row;
    interface I { Row get(); };
  )",
                                  "i.idl", *mapping),
               TemplateError);
}

}  // namespace
}  // namespace heidi::codegen
