// Golden test for Fig 10 (the tcl stub/skeleton) and structural tests for
// the corba_cpp and java mappings — the "same compiler, different
// template" claim of §4.
#include <gtest/gtest.h>

#include "codegen/codegen.h"

namespace heidi::codegen {
namespace {

GenerateResult Gen(const char* mapping_name, const char* idl,
                   const char* source = "in.idl") {
  const Mapping* mapping = FindBuiltinMapping(mapping_name);
  EXPECT_NE(mapping, nullptr);
  return GenerateFromSource(idl, source, *mapping);
}

// --- tcl (Fig 10) -----------------------------------------------------------

constexpr const char* kReceiverIdl =
    "interface Receiver { void print(in string text); };";

constexpr const char* kFig10Expected =
    R"(if {[info vars "IDL:Receiver:1.0"] != ""} return
set IDL:Receiver:1.0 1
BOA::addIdlMapping ::Receiver "IDL:Receiver:1.0"
class ReceiverStub {
  inherit Stub
  constructor {ior connector} {
    Stub::constructor $ior $connector
  } {}
  public method print {text} {
    set c [$pb_connector_ getRequestCall $this "print" 0]
    $c insertString $text
    $c send
    # void return
    $c release
  }
}
class ReceiverSkel {
  inherit Skel
  constructor {implObj} {
    Skel::constructor $implObj
  } {}
  public method print {c} {
    set text [$c extractString]
    $pb_obj_ print $text
    # void return
  }
}
)";

TEST(TclMapping, Fig10GoldenOutput) {
  GenerateResult result = Gen("tcl", kReceiverIdl, "Receiver.idl");
  ASSERT_TRUE(result.files.count("Receiver.tcl"));
  EXPECT_EQ(result.files.at("Receiver.tcl"), kFig10Expected);
}

TEST(TclMapping, NonVoidReturn) {
  GenerateResult result =
      Gen("tcl", "interface Calc { long add(in long a, in long b); };");
  const std::string& out = result.files.at("Calc.tcl");
  EXPECT_NE(out.find("$c insertLong $a"), std::string::npos);
  EXPECT_NE(out.find("set ret [$c extractLong]"), std::string::npos);
  EXPECT_NE(out.find("return $ret"), std::string::npos);
  // Skeleton side marshals the return value back.
  EXPECT_NE(out.find("set ret [$pb_obj_ add $a $b]"), std::string::npos);
  EXPECT_NE(out.find("$c insertLong $ret"), std::string::npos);
}

TEST(TclMapping, OneFilePerInterface) {
  GenerateResult result =
      Gen("tcl", "interface P { void a(); }; interface Q { void b(); };");
  EXPECT_TRUE(result.files.count("P.tcl"));
  EXPECT_TRUE(result.files.count("Q.tcl"));
}

// --- corba_cpp ---------------------------------------------------------------

constexpr const char* kCorbaIdl = R"(
module Heidi {
  enum Status { Start, Stop };
  interface S { void ping(); };
  interface A : S {
    void f(in A a);
    void p(in long l);
    readonly attribute Status button;
    void s(in boolean b);
  };
};
)";

TEST(CorbaMapping, PrescribedTypesUsed) {
  GenerateResult result = Gen("corba_cpp", kCorbaIdl, "A.idl");
  const std::string& out = result.files.at("A.hh");
  // Table 1, prescribed column.
  EXPECT_NE(out.find("CORBA::Long"), std::string::npos);
  EXPECT_NE(out.find("CORBA::Boolean"), std::string::npos);
  // Object references via _ptr; _var helper typedef emitted.
  EXPECT_NE(out.find("virtual void f(Heidi::A_ptr a) = 0;"),
            std::string::npos);
  EXPECT_NE(out.find("typedef A* A_ptr;"), std::string::npos);
  EXPECT_NE(out.find("A_var"), std::string::npos);
}

TEST(CorbaMapping, InheritanceHierarchyOfFig1) {
  GenerateResult result = Gen("corba_cpp", kCorbaIdl, "A.idl");
  const std::string& out = result.files.at("A.hh");
  // Rootless interfaces derive CORBA::Object; A derives S.
  EXPECT_NE(out.find("class S : virtual public CORBA::Object"),
            std::string::npos);
  EXPECT_NE(out.find("class A : virtual public S"), std::string::npos);
  EXPECT_NE(out.find("static A_ptr _narrow(CORBA::Object_ptr obj);"),
            std::string::npos);
}

TEST(CorbaMapping, AttributesUseOverloadedAccessors) {
  GenerateResult result = Gen("corba_cpp", kCorbaIdl, "A.idl");
  const std::string& out = result.files.at("A.hh");
  // CORBA style: attribute name as both getter and setter, readonly has
  // only the getter.
  EXPECT_NE(out.find("virtual Heidi::Status button() = 0;"),
            std::string::npos);
  EXPECT_EQ(out.find("void button("), std::string::npos);
}

TEST(CorbaMapping, NoDefaultParameters) {
  // The CORBA mapping cannot express defaults; they are dropped.
  GenerateResult result = Gen(
      "corba_cpp", "interface I { void f(in long l = 3); };", "i.idl");
  EXPECT_EQ(result.files.at("i.hh").find("= 3"), std::string::npos);
}

// --- java ---------------------------------------------------------------------

constexpr const char* kJavaIdl = R"(
module Heidi {
  interface S { void ping(); };
  interface T { void pong(); };
  interface A : S, T {
    void p(in long l = 0);
    string name(in string prefix);
    readonly attribute long size;
  };
};
)";

TEST(JavaMapping, OneFilePerInterface) {
  GenerateResult result = Gen("java", kJavaIdl, "A.idl");
  EXPECT_TRUE(result.files.count("A.java"));
  EXPECT_TRUE(result.files.count("S.java"));
  EXPECT_TRUE(result.files.count("T.java"));
}

TEST(JavaMapping, ExtendsAllBases) {
  GenerateResult result = Gen("java", kJavaIdl, "A.idl");
  EXPECT_NE(result.files.at("A.java").find(
                "public interface A extends S, T {"),
            std::string::npos);
}

TEST(JavaMapping, TypesAndAccessors) {
  GenerateResult result = Gen("java", kJavaIdl, "A.idl");
  const std::string& out = result.files.at("A.java");
  EXPECT_NE(out.find("String name(String prefix);"), std::string::npos);
  EXPECT_NE(out.find("int getSize();"), std::string::npos);
}

TEST(JavaMapping, DefaultParametersDroppedPerPaper) {
  // §4.2: "The IDL-Java mapping we implemented also does not support
  // default parameters".
  GenerateResult result = Gen("java", kJavaIdl, "A.idl");
  const std::string& out = result.files.at("A.java");
  EXPECT_NE(out.find("void p(int l);"), std::string::npos);
  EXPECT_EQ(out.find("= 0"), std::string::npos);
}

TEST(Mappings, BuiltinInventory) {
  std::vector<std::string> names = BuiltinMappingNames();
  EXPECT_EQ(names.size(), 4u);
  EXPECT_NE(FindBuiltinMapping("heidi_cpp"), nullptr);
  EXPECT_NE(FindBuiltinMapping("corba_cpp"), nullptr);
  EXPECT_NE(FindBuiltinMapping("java"), nullptr);
  EXPECT_NE(FindBuiltinMapping("tcl"), nullptr);
  EXPECT_EQ(FindBuiltinMapping("cobol"), nullptr);
}

}  // namespace
}  // namespace heidi::codegen
