#!/usr/bin/env bash
# Codegen golden check: idlc output for demo.idl under both the default
# (owned) mapping and the view mapping (--view-interfaces Echo) must
# match the checked-in goldens byte for byte. A diff here means the
# generator's output changed — if the change is intentional, regenerate:
#
#   build/examples/idlc --out tests/codegen/goldens/demo/owned src/demo/demo.idl
#   build/examples/idlc --view-interfaces Echo \
#       --out tests/codegen/goldens/demo/view src/demo/demo.idl
#
# Usage: check_goldens.sh [path-to-idlc]   (default: build/examples/idlc)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
IDLC="${1:-$ROOT/build/examples/idlc}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$IDLC" --out "$TMP/owned" "$ROOT/src/demo/demo.idl" >/dev/null
"$IDLC" --view-interfaces Echo --out "$TMP/view" \
    "$ROOT/src/demo/demo.idl" >/dev/null

diff -ru "$ROOT/tests/codegen/goldens/demo/owned" "$TMP/owned"
diff -ru "$ROOT/tests/codegen/goldens/demo/view" "$TMP/view"
echo "codegen goldens OK"
