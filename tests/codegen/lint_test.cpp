// Unit tests for the static safety layer (codegen/lint.h): one suite
// per HLxxx code, plus the formatting/severity machinery. These go
// through LintSource (parse + resolve-with-sink + lint) so they also
// cover the ContractSink path that lets sema report oneway violations
// without aborting the compile.
#include "codegen/lint.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace heidi::codegen {
namespace {

LintResult LintIdl(std::string_view source, std::string view_interfaces = "",
                   bool fatal = false) {
  LintOptions options;
  options.view_interfaces = std::move(view_interfaces);
  options.warnings_are_errors = fatal;
  return LintSource(source, "test.idl", options);
}

std::vector<std::string> Codes(const LintResult& result) {
  std::vector<std::string> codes;
  for (const LintDiag& d : result.diags) codes.push_back(d.code);
  return codes;
}

bool HasCode(const LintResult& result, std::string_view code) {
  for (const LintDiag& d : result.diags) {
    if (d.code == code) return true;
  }
  return false;
}

// --- HL001: view-mapped out/inout parameters ------------------------------

TEST(LintHL001, OutStringParamInViewInterfaceIsError) {
  LintResult r = LintIdl("interface V { void f(out string s); };", "V");
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].code, "HL001");
  EXPECT_EQ(r.diags[0].severity, LintSeverity::kError);
  EXPECT_EQ(r.diags[0].line, 1);
  EXPECT_GT(r.diags[0].column, 0);
  EXPECT_TRUE(r.HasErrors());
}

TEST(LintHL001, InoutOctetSequenceThroughTypedefIsError) {
  LintResult r = LintIdl(
      "typedef sequence<octet> Blob;\n"
      "interface V { void f(inout Blob b); };",
      "V");
  EXPECT_EQ(Codes(r), std::vector<std::string>{"HL001"});
  EXPECT_EQ(r.diags[0].line, 2);
}

TEST(LintHL001, SilentWithoutViewMapping) {
  EXPECT_TRUE(LintIdl("interface V { void f(out string s); };").diags.empty());
}

TEST(LintHL001, SilentForNonViewableTypes) {
  // out long is fine: only strings/octet sequences map to views.
  EXPECT_TRUE(
      LintIdl("interface V { void f(out long n); };", "V").diags.empty());
}

TEST(LintHL001, StarSelectsEveryInterface) {
  LintResult r = LintIdl("interface V { void f(out string s); };", "*");
  EXPECT_EQ(Codes(r), std::vector<std::string>{"HL001"});
}

TEST(LintHL001, ScopedAndFlatSpellingsSelect) {
  const char* idl = "module M { interface V { void f(out string s); }; };";
  EXPECT_TRUE(HasCode(LintIdl(idl, "M::V"), "HL001"));
  EXPECT_TRUE(HasCode(LintIdl(idl, "M_V"), "HL001"));
  EXPECT_TRUE(HasCode(LintIdl(idl, "V"), "HL001"));
}

// --- HL002: oneway contract (batched from sema's ContractSink) ------------

TEST(LintHL002, OnewayWithNonVoidResultIsError) {
  LintResult r = LintIdl("interface V { oneway long f(in long x); };");
  EXPECT_EQ(Codes(r), std::vector<std::string>{"HL002"});
  EXPECT_TRUE(r.HasErrors());
}

TEST(LintHL002, OnewayWithOutParamIsError) {
  LintResult r = LintIdl("interface V { oneway void f(out long x); };");
  EXPECT_EQ(Codes(r), std::vector<std::string>{"HL002"});
}

TEST(LintHL002, OnewayWithRaisesIsError) {
  LintResult r = LintIdl(
      "exception E { long code; };\n"
      "interface V { oneway void f(in long x) raises (E); };");
  EXPECT_EQ(Codes(r), std::vector<std::string>{"HL002"});
}

TEST(LintHL002, AllOnewayViolationsAreBatched) {
  // Three independent violations arrive in one report — the sink keeps
  // sema resolving instead of throwing on the first.
  LintResult r = LintIdl(
      "interface V {\n"
      "  oneway long a(in long x);\n"
      "  oneway void b(out long x);\n"
      "  oneway long c(inout long x);\n"
      "};");
  EXPECT_EQ(Codes(r),
            (std::vector<std::string>{"HL002", "HL002", "HL002", "HL002"}));
}

// --- HL003: settable attributes on view-mapped interfaces -----------------

TEST(LintHL003, SettableStringAttributeIsWarning) {
  LintResult r = LintIdl("interface V { attribute string label; };", "V");
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].code, "HL003");
  EXPECT_EQ(r.diags[0].severity, LintSeverity::kWarning);
  EXPECT_FALSE(r.HasErrors());
  EXPECT_TRUE(r.HasWarnings());
}

TEST(LintHL003, ReadonlyAttributeIsSilent) {
  EXPECT_TRUE(
      LintIdl("interface V { readonly attribute string label; };", "V")
          .diags.empty());
}

TEST(LintHL003, SettableSequenceAttributeIsWarning) {
  LintResult r = LintIdl(
      "typedef sequence<long> Longs;\n"
      "interface V { attribute Longs data; };",
      "V");
  EXPECT_EQ(Codes(r), std::vector<std::string>{"HL003"});
}

TEST(LintHL003, SettableScalarAttributeIsSilent) {
  EXPECT_TRUE(
      LintIdl("interface V { attribute long count; };", "V").diags.empty());
}

// --- HL004: post-mapping name collisions ----------------------------------

TEST(LintHL004, OperationCollidesWithGeneratedGetter) {
  LintResult r = LintIdl(
      "interface V { readonly attribute long button; void GetButton(); };");
  EXPECT_EQ(Codes(r), std::vector<std::string>{"HL004"});
  EXPECT_TRUE(r.HasErrors());
}

TEST(LintHL004, OperationCollidesWithGeneratedSetter) {
  LintResult r = LintIdl(
      "interface V { attribute long button; void SetButton(in long b); };");
  EXPECT_EQ(Codes(r), std::vector<std::string>{"HL004"});
}

TEST(LintHL004, ReadonlyAttributeGeneratesNoSetter) {
  EXPECT_TRUE(LintIdl("interface V { readonly attribute long button; "
                      "void SetButton(in long b); };")
                  .diags.empty());
}

TEST(LintHL004, InheritedGetterCollides) {
  LintResult r = LintIdl(
      "interface Base { readonly attribute long tag; };\n"
      "interface V : Base { void GetTag(); };");
  ASSERT_EQ(Codes(r), std::vector<std::string>{"HL004"});
  // Blame lands on the derived operation, not the inherited attribute.
  EXPECT_EQ(r.diags[0].line, 2);
}

TEST(LintHL004, TwoAttributesCollidingByCapitalization) {
  // `button` and `Button` survive sema (distinct raw names) but both
  // map their getter to GetButton.
  LintResult r = LintIdl(
      "interface V { readonly attribute long button; "
      "readonly attribute long Button; };");
  EXPECT_EQ(Codes(r), std::vector<std::string>{"HL004"});
}

TEST(LintHL004, DistinctNamesAreSilent) {
  EXPECT_TRUE(LintIdl("interface V { readonly attribute long button; "
                      "void Press(); };")
                  .diags.empty());
}

// --- HL005: incopy parameters under the view mapping ----------------------

TEST(LintHL005, IncopyStringInViewInterfaceIsError) {
  LintResult r = LintIdl("interface V { void f(incopy string s); };", "V");
  ASSERT_EQ(Codes(r), std::vector<std::string>{"HL005"});
  EXPECT_EQ(r.diags[0].severity, LintSeverity::kError);
}

TEST(LintHL005, IncopyIsFineWithoutViewMapping) {
  EXPECT_TRUE(
      LintIdl("interface V { void f(incopy string s); };").diags.empty());
}

// --- HL006: --view-interfaces configuration drift -------------------------

TEST(LintHL006, UnknownViewInterfaceIsWarning) {
  LintResult r = LintIdl("interface V { void f(in string s); };", "V,Ghost");
  ASSERT_EQ(Codes(r), std::vector<std::string>{"HL006"});
  EXPECT_EQ(r.diags[0].severity, LintSeverity::kWarning);
  EXPECT_EQ(r.diags[0].line, 0);  // no source anchor: it is a flag problem
}

TEST(LintHL006, StarNeverWarns) {
  EXPECT_TRUE(
      LintIdl("interface V { void f(in string s); };", "*").diags.empty());
}

// --- severity machinery ---------------------------------------------------

TEST(LintSeverityTest, LintFatalPromotesWarningsToErrors) {
  const char* idl = "interface V { attribute string label; };";
  EXPECT_FALSE(LintIdl(idl, "V").HasErrors());
  LintResult fatal = LintIdl(idl, "V", /*fatal=*/true);
  EXPECT_TRUE(fatal.HasErrors());
  EXPECT_FALSE(fatal.HasWarnings());
}

TEST(LintSeverityTest, DiagsAreSortedBySourcePosition) {
  LintResult r = LintIdl(
      "interface V {\n"
      "  oneway long z(in long x);\n"
      "  void f(out string s);\n"
      "  attribute string label;\n"
      "};",
      "V");
  ASSERT_EQ(r.diags.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      r.diags.begin(), r.diags.end(),
      [](const LintDiag& a, const LintDiag& b) { return a.line < b.line; }));
  EXPECT_EQ(Codes(r), (std::vector<std::string>{"HL002", "HL001", "HL003"}));
}

TEST(LintFormatTest, DiagnosticShapeIsGccLike) {
  LintDiag diag{"HL001", LintSeverity::kError, "a.idl", 3, 14, "boom"};
  EXPECT_EQ(FormatLintDiag(diag), "a.idl:3:14: error: boom [HL001]");
  LintDiag flag{"HL006", LintSeverity::kWarning, "a.idl", 0, 0, "drift"};
  EXPECT_EQ(FormatLintDiag(flag), "a.idl: warning: drift [HL006]");
}

TEST(LintFormatTest, SeverityNames) {
  EXPECT_EQ(LintSeverityName(LintSeverity::kError), "error");
  EXPECT_EQ(LintSeverityName(LintSeverity::kWarning), "warning");
}

// A fully clean interface stays clean under every option combination.
TEST(LintCleanTest, ViewFriendlyInterfaceIsSilent) {
  const char* idl =
      "typedef sequence<octet> Payload;\n"
      "interface Echo {\n"
      "  string echo(in string msg);\n"
      "  string blob(in Payload data);\n"
      "  oneway void post(in string event);\n"
      "  readonly attribute string name;\n"
      "};";
  EXPECT_TRUE(LintIdl(idl).diags.empty());
  EXPECT_TRUE(LintIdl(idl, "Echo").diags.empty());
  EXPECT_TRUE(LintIdl(idl, "Echo", /*fatal=*/true).diags.empty());
}

}  // namespace
}  // namespace heidi::codegen
