/* File demo.hh */
#pragma once
#include "orb/heidi_types.h"

class HdS;
class HdA;
class HdEcho;

// IDL:Heidi/Status:1.0
enum HdStatus { Start, Stop };

// IDL:Heidi/SSequence:1.0
typedef HdList<HdS*> HdSSequence;
typedef HdListIterator<HdS*> HdSSequenceIter;

// IDL:Heidi/Payload:1.0
typedef HdList<unsigned char> HdPayload;
typedef HdListIterator<unsigned char> HdPayloadIter;

// IDL:Heidi/S:1.0
class HdS : virtual public ::heidi::HdObject
{
public:
  virtual void ping() = 0;
  virtual long value() = 0;
  virtual ~HdS() { }
};

// IDL:Heidi/A:1.0
class HdA : virtual public HdS
{
public:
  virtual void f(HdA*) = 0;
  virtual void g(HdS*) = 0;
  virtual void p(long l = 0) = 0;
  virtual void q(HdStatus s = Start) = 0;
  virtual void s(XBool b = XTrue) = 0;
  virtual void t(HdSSequence*) = 0;
  virtual HdStatus GetButton() = 0;
  virtual ~HdA() { }
};

// IDL:Heidi/Echo:1.0
class HdEcho : virtual public ::heidi::HdObject
{
public:
  virtual HdString echo(HEIDI_VIEW_PARAM HdStringView) = 0;
  virtual long add(long, long) = 0;
  virtual double norm(double, double) = 0;
  virtual XBool flip(XBool) = 0;
  virtual void post(HEIDI_VIEW_PARAM HdStringView) = 0;
  virtual HdString blob(HEIDI_VIEW_PARAM HdBytesView) = 0;
  virtual ~HdEcho() { }
};

