#!/usr/bin/env bash
# Lint golden check: `idlc --lint` over the deliberately unsafe corpus
# (bad.idl) must produce goldens/lint/bad.txt byte for byte and exit 1,
# and a clean file (src/demo/demo.idl, under its real view selection)
# must stay silent and exit 0. A diff here means a diagnostic's
# spelling, order, or line:col anchor changed — if intentional,
# regenerate:
#
#   (cd tests/codegen && ../../build/examples/idlc --lint \
#       --view-interfaces Bad,Phantom bad.idl > goldens/lint/bad.txt 2>&1)
#
# Usage: check_lint.sh [path-to-idlc]   (default: build/examples/idlc)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
IDLC="${1:-$ROOT/build/examples/idlc}"
# Resolve to an absolute path: the checks below cd into tests/codegen,
# which would break a caller-relative binary path.
case "$IDLC" in /*) ;; *) IDLC="$(pwd)/$IDLC" ;; esac

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Run from tests/codegen so diagnostics print the bare file name the
# golden pins (the path in each diagnostic is the path idlc was given).
cd "$ROOT/tests/codegen"

status=0
"$IDLC" --lint --view-interfaces Bad,Phantom bad.idl \
    > "$TMP/bad.txt" 2>&1 || status=$?
if [[ "$status" -ne 1 ]]; then
  echo "FAIL: lint of bad.idl exited $status, want 1" >&2
  cat "$TMP/bad.txt" >&2
  exit 1
fi
diff -u goldens/lint/bad.txt "$TMP/bad.txt"

# --lint-fatal promotes the HL003/HL006 warnings: same corpus minus the
# errors must flip from exit 0 to exit 1.
status=0
"$IDLC" --lint "$ROOT/src/demo/demo.idl" > "$TMP/clean.txt" 2>&1 || status=$?
if [[ "$status" -ne 0 || -s "$TMP/clean.txt" ]]; then
  echo "FAIL: lint of demo.idl exited $status with output:" >&2
  cat "$TMP/clean.txt" >&2
  exit 1
fi

status=0
"$IDLC" --lint --view-interfaces Echo "$ROOT/src/demo/demo.idl" \
    > "$TMP/clean_view.txt" 2>&1 || status=$?
if [[ "$status" -ne 0 || -s "$TMP/clean_view.txt" ]]; then
  echo "FAIL: view-mapped lint of demo.idl exited $status with output:" >&2
  cat "$TMP/clean_view.txt" >&2
  exit 1
fi

echo "lint goldens OK"
