#include "tmpl/interp.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>

#include "support/error.h"
#include "tmpl/program.h"

namespace heidi::tmpl {
namespace {

// A small EST by hand: Root with an interfaceList of two interfaces, the
// first holding a methodList.
std::unique_ptr<est::Node> MakeTree() {
  auto root = std::make_unique<est::Node>("Root", "demo");
  root->SetProp("sourceName", "demo.idl");
  est::Node& a = root->NewChild("interfaceList", "Interface", "A");
  a.SetProp("interfaceName", "Heidi::A");
  a.SetProp("flag", "yes");
  est::Node& f = a.NewChild("methodList", "Operation", "f");
  f.SetProp("methodName", "f");
  est::Node& g = a.NewChild("methodList", "Operation", "g");
  g.SetProp("methodName", "g");
  est::Node& b = root->NewChild("interfaceList", "Interface", "B");
  b.SetProp("interfaceName", "Heidi::B");
  b.SetProp("flag", "");
  return root;
}

std::string RunTmpl(const std::string& tmpl_text,
                const ExecOptions& options = {}) {
  auto tree = MakeTree();
  TemplateProgram program = CompileTemplate(tmpl_text, "t");
  MapRegistry maps = MapRegistry::Builtins();
  return ExecuteToString(program, *tree, maps, options);
}

TEST(Interp, LiteralLines) {
  EXPECT_EQ(RunTmpl("hello\nworld\n"), "hello\nworld\n");
}

TEST(Interp, RootPropsVisible) {
  EXPECT_EQ(RunTmpl("src=${sourceName}\n"), "src=demo.idl\n");
}

TEST(Interp, GlobalsVisible) {
  ExecOptions options;
  options.globals["who"] = "tester";
  EXPECT_EQ(RunTmpl("hi ${who}\n", options), "hi tester\n");
}

TEST(Interp, UnknownVariableThrows) {
  EXPECT_THROW(RunTmpl("${nope}\n"), TemplateError);
}

TEST(Interp, ForeachIteratesList) {
  EXPECT_EQ(RunTmpl("@foreach interfaceList\n${interfaceName}\n@end\n"),
            "Heidi::A\nHeidi::B\n");
}

TEST(Interp, ForeachAbsentListIsEmpty) {
  EXPECT_EQ(RunTmpl("@foreach ghostList\nnever\n@end\n"), "");
}

TEST(Interp, NestedForeachUsesInnerNode) {
  EXPECT_EQ(
      RunTmpl("@foreach interfaceList\n"
          "@foreach methodList\n"
          "${interfaceName}.${methodName}\n"
          "@end methodList\n"
          "@end interfaceList\n"),
      "Heidi::A.f\nHeidi::A.g\n");  // B has no methodList
}

TEST(Interp, IfMoreSeparator) {
  EXPECT_EQ(
      RunTmpl("@foreach interfaceList -ifMore ','\n${interfaceName}${ifMore}\n"
          "@end\n"),
      "Heidi::A,\nHeidi::B\n");
}

TEST(Interp, LoopSpecials) {
  EXPECT_EQ(RunTmpl("@foreach interfaceList\n"
                "${index}/${index1} first=${isFirst} last=${isLast}\n"
                "@end\n"),
            "0/1 first=true last=\n1/2 first= last=true\n");
}

TEST(Interp, MapOptionRewritesVariable) {
  EXPECT_EQ(
      RunTmpl("@foreach interfaceList -map interfaceName CPP::MapClassName\n"
          "${interfaceName}\n@end\n"),
      "HdA\nHdB\n");
}

TEST(Interp, UnknownMapFunctionThrows) {
  EXPECT_THROW(
      RunTmpl("@foreach interfaceList -map interfaceName No::Such\nx\n@end\n"),
      TemplateError);
}

TEST(Interp, MapMissingPropertyThrows) {
  EXPECT_THROW(RunTmpl("@foreach interfaceList -map ghost Upper\nx\n@end\n"),
               TemplateError);
}

TEST(Interp, IfBranches) {
  EXPECT_EQ(RunTmpl("@foreach interfaceList\n"
                "@if ${flag} == yes\nY:${interfaceName}\n"
                "@else\nN:${interfaceName}\n@fi\n"
                "@end\n"),
            "Y:Heidi::A\nN:Heidi::B\n");
}

TEST(Interp, IfNegated) {
  EXPECT_EQ(RunTmpl("@foreach interfaceList\n"
                "@if ${flag} != yes\nN\n@fi\n"
                "@end\n"),
            "N\n");
}

TEST(Interp, SetCreatesInCurrentScopeAndAssignsOuter) {
  // The accumulator pattern: @set in the outer scope, appended inside the
  // loop, visible after the loop.
  EXPECT_EQ(RunTmpl("@set acc ''\n"
                "@foreach interfaceList -ifMore ', '\n"
                "@map short CPP::MapClassName interfaceName\n"
                "@set acc '${acc}${short}${ifMore}'\n"
                "@end\n"
                "joined: ${acc}\n"),
            "joined: HdA, HdB\n");
}

TEST(Interp, SetScopeDiesWithLoopFrame) {
  // A variable first @set inside a loop body does not leak out.
  EXPECT_THROW(RunTmpl("@foreach interfaceList\n"
                   "@set inner x\n"
                   "@end\n"
                   "${inner}\n"),
               TemplateError);
}

TEST(Interp, MapDirective) {
  EXPECT_EQ(RunTmpl("@set v heidi\n@map u Upper v\n${u} ${v}\n"),
            "HEIDI heidi\n");
}

TEST(Interp, DollarEscapeInOutput) {
  EXPECT_EQ(RunTmpl("price $$10\n"), "price $10\n");
}

TEST(Interp, OpenFileRoutesOutput) {
  auto tree = MakeTree();
  TemplateProgram program = CompileTemplate(
      "before\n"
      "@foreach interfaceList -map interfaceName CPP::MapClassName\n"
      "@openfile ${interfaceName}.hh\n"
      "content of ${interfaceName}\n"
      "@end\n",
      "t");
  MapRegistry maps = MapRegistry::Builtins();
  StringSink sink;
  Execute(program, *tree, maps, sink);
  EXPECT_EQ(sink.File(""), "before\n");
  EXPECT_EQ(sink.File("HdA.hh"), "content of HdA\n");
  EXPECT_EQ(sink.File("HdB.hh"), "content of HdB\n");
  EXPECT_EQ(sink.FileNames().size(), 3u);
}

TEST(Interp, OuterListReachableFromInnerFrame) {
  // interfaceList lives on Root; from inside an interface frame a foreach
  // over interfaceList still resolves (outward list lookup).
  EXPECT_EQ(RunTmpl("@foreach interfaceList\n"
                "@foreach interfaceList\n"
                "x\n"
                "@end interfaceList\n"
                "@end interfaceList\n"),
            "x\nx\nx\nx\n");
}

TEST(Interp, ErrorsCarryLineNumbers) {
  try {
    RunTmpl("fine\n${missing}\n");
    FAIL() << "expected TemplateError";
  } catch (const TemplateError& e) {
    EXPECT_NE(std::string(e.what()).find("t:2"), std::string::npos);
  }
}

TEST(FileSink, WritesFilesUnderRoot) {
  std::string dir =
      ::testing::TempDir() + "/heidi_filesink_" +
      std::to_string(::getpid());
  {
    FileSink sink(dir);
    sink.Open("sub/a.txt");
    sink.Write("hello\n");
    sink.Open("b.txt");
    sink.Write("world\n");
  }
  std::ifstream a(dir + "/sub/a.txt");
  std::string line;
  ASSERT_TRUE(std::getline(a, line));
  EXPECT_EQ(line, "hello");
  std::ifstream b(dir + "/b.txt");
  ASSERT_TRUE(std::getline(b, line));
  EXPECT_EQ(line, "world");
}

}  // namespace
}  // namespace heidi::tmpl
