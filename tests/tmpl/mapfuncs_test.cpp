// Table 1 of the paper side by side: the prescribed CORBA C++ mapping and
// the alternate (HeidiRMI) mapping, plus the Java and wire-suffix maps.
#include "tmpl/mapfuncs.h"

#include <gtest/gtest.h>

#include "est/builder.h"
#include "idl/sema.h"

namespace heidi::tmpl {
namespace {

class MapFuncsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    idl::Specification spec = idl::ParseAndResolve(R"(
      module Heidi {
        interface S;
        enum Status { Start, Stop };
        typedef sequence<S> SSequence;
        typedef long Counter;
        struct Point { double x, y; };
        interface A : S { void f(); };
      };
    )");
    root_ = est::BuildEst(spec);
    index_ = std::make_unique<TypeIndex>(*root_);
    ctx_.root = root_.get();
    ctx_.types = index_.get();
  }

  std::string Heidi(std::string_view s) { return HeidiMapType(s, ctx_); }
  std::string Corba(std::string_view s) { return CorbaMapType(s, ctx_); }
  std::string Java(std::string_view s) { return JavaMapType(s, ctx_); }
  std::string Wire(std::string_view s) { return WireCallKind(s, ctx_); }

  std::unique_ptr<est::Node> root_;
  std::unique_ptr<TypeIndex> index_;
  MapContext ctx_;
};

TEST_F(MapFuncsTest, TypeIndexClassifies) {
  const TypeEntry* a = index_->Find("Heidi::A");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->tag, "objref");
  EXPECT_EQ(a->flat_name, "Heidi_A");
  EXPECT_EQ(index_->Find("Heidi::Status")->tag, "enum");
  EXPECT_EQ(index_->Find("Heidi::Point")->tag, "struct");
  const TypeEntry* seq = index_->Find("Heidi::SSequence");
  ASSERT_NE(seq, nullptr);
  EXPECT_EQ(seq->tag, "alias");
  EXPECT_TRUE(seq->is_variable);
  EXPECT_FALSE(index_->Find("Heidi::Counter")->is_variable);
  EXPECT_EQ(index_->Find("Heidi_A")->tag, "objref");  // flat key too
  EXPECT_EQ(index_->Find("No::Such"), nullptr);
}

// --- Table 1: alternate (HeidiRMI) column ---------------------------------

TEST_F(MapFuncsTest, HeidiPrimitives) {
  EXPECT_EQ(Heidi("long"), "long");        // Table 1: long -> long
  EXPECT_EQ(Heidi("boolean"), "XBool");    // Table 1: boolean -> XBool
  EXPECT_EQ(Heidi("float"), "float");      // Table 1: float -> float
  EXPECT_EQ(Heidi("void"), "void");
  EXPECT_EQ(Heidi("unsigned long"), "unsigned long");
  EXPECT_EQ(Heidi("octet"), "unsigned char");
  EXPECT_EQ(Heidi("string"), "HdString");
  EXPECT_EQ(Heidi("string<16>"), "HdString");
}

TEST_F(MapFuncsTest, HeidiClassNames) {
  EXPECT_EQ(HeidiMapClassName("Heidi::A"), "HdA");
  EXPECT_EQ(HeidiMapClassName("Heidi::Status"), "HdStatus");
  EXPECT_EQ(HeidiMapClassName("A"), "HdA");
  EXPECT_EQ(HeidiMapClassName("HdAlready"), "HdAlready");
  EXPECT_EQ(HeidiMapClassName(""), "");
}

TEST_F(MapFuncsTest, HeidiNamedTypes) {
  EXPECT_EQ(Heidi("Heidi::A"), "HdA*");          // objref -> pointer
  EXPECT_EQ(Heidi("Heidi::Status"), "HdStatus"); // enum -> value
  EXPECT_EQ(Heidi("Heidi::SSequence"), "HdSSequence*");  // variable alias
  EXPECT_EQ(Heidi("Heidi::Counter"), "HdCounter");       // fixed alias
  EXPECT_EQ(Heidi("Heidi::Point"), "HdPoint*");
  EXPECT_EQ(Heidi("Heidi::S"), "HdS*");  // external interface: objref
}

TEST_F(MapFuncsTest, HeidiSequences) {
  EXPECT_EQ(Heidi("sequence<Heidi::S>"), "HdList<HdS*>*");
  EXPECT_EQ(Heidi("sequence<long>"), "HdList<long>*");
  EXPECT_EQ(Heidi("sequence<boolean,4>"), "HdList<XBool>*");
  EXPECT_EQ(Heidi("sequence<sequence<long>>"), "HdList<HdList<long>>*");
  EXPECT_EQ(HeidiMapElemType("Heidi::Status", ctx_), "HdStatus");
}

// --- Table 1: prescribed CORBA column --------------------------------------

TEST_F(MapFuncsTest, CorbaPrimitives) {
  EXPECT_EQ(Corba("long"), "CORBA::Long");      // Table 1
  EXPECT_EQ(Corba("boolean"), "CORBA::Boolean");  // Table 1
  EXPECT_EQ(Corba("float"), "CORBA::Float");    // Table 1
  EXPECT_EQ(Corba("double"), "CORBA::Double");
  EXPECT_EQ(Corba("unsigned short"), "CORBA::UShort");
  EXPECT_EQ(Corba("string"), "const char*");
}

TEST_F(MapFuncsTest, CorbaNamedTypes) {
  EXPECT_EQ(Corba("Heidi::A"), "Heidi::A_ptr");
  EXPECT_EQ(Corba("Heidi::Status"), "Heidi::Status");
  EXPECT_EQ(Corba("Heidi::Point"), "const Heidi::Point&");
  EXPECT_EQ(Corba("Heidi::SSequence"), "const Heidi::SSequence&");
  EXPECT_EQ(Corba("Heidi::Counter"), "Heidi::Counter");
}

// --- Java mapping (§4.2) ----------------------------------------------------

TEST_F(MapFuncsTest, JavaTypes) {
  EXPECT_EQ(Java("long"), "int");  // IDL long is 32-bit
  EXPECT_EQ(Java("long long"), "long");
  EXPECT_EQ(Java("boolean"), "boolean");
  EXPECT_EQ(Java("octet"), "byte");
  EXPECT_EQ(Java("string"), "String");
  EXPECT_EQ(Java("Heidi::A"), "A");
  EXPECT_EQ(Java("Heidi::Status"), "int");  // pre-Java-5 enums
  EXPECT_EQ(Java("sequence<Heidi::S>"), "S[]");
  EXPECT_EQ(Java("Heidi::SSequence"), "S[]");  // alias resolves through
}

// --- Wire call-kind suffixes -------------------------------------------------

TEST_F(MapFuncsTest, WireCallKinds) {
  EXPECT_EQ(Wire("long"), "Long");
  EXPECT_EQ(Wire("unsigned long"), "ULong");
  EXPECT_EQ(Wire("boolean"), "Boolean");
  EXPECT_EQ(Wire("string"), "String");
  EXPECT_EQ(Wire("void"), "Void");
  EXPECT_EQ(Wire("Heidi::Status"), "Enum");
  EXPECT_EQ(Wire("Heidi::A"), "Object");
  EXPECT_EQ(Wire("Heidi::SSequence"), "Sequence");  // alias of sequence
  EXPECT_EQ(Wire("Heidi::Counter"), "Long");        // alias of long
  EXPECT_EQ(Wire("Heidi::Point"), "Struct");
}

// --- registry ----------------------------------------------------------------

TEST_F(MapFuncsTest, BuiltinRegistryComplete) {
  MapRegistry reg = MapRegistry::Builtins();
  for (const char* name :
       {"Ident", "Upper", "Lower", "Capitalize", "Flat", "CPP::MapClassName",
        "CPP::MapType", "CPP::MapReturnType", "CPP::MapElemType",
        "CPP::MapLiteral", "CORBA::MapType", "CORBA::MapReturnType",
        "CORBA::MapLiteral", "Java::MapType", "Java::MapClassName",
        "Wire::MapCallKind", "Tcl::MapClassName"}) {
    EXPECT_NE(reg.Find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.Find("Nope"), nullptr);
}

TEST_F(MapFuncsTest, GenericHelpers) {
  MapRegistry reg = MapRegistry::Builtins();
  EXPECT_EQ((*reg.Find("Upper"))("abc", ctx_), "ABC");
  EXPECT_EQ((*reg.Find("Capitalize"))("button", ctx_), "Button");
  EXPECT_EQ((*reg.Find("Flat"))("A::B::C", ctx_), "A_B_C");
  EXPECT_EQ((*reg.Find("Ident"))("x", ctx_), "x");
}

TEST_F(MapFuncsTest, LiteralMaps) {
  MapRegistry reg = MapRegistry::Builtins();
  EXPECT_EQ((*reg.Find("CPP::MapLiteral"))("TRUE", ctx_), "XTrue");
  EXPECT_EQ((*reg.Find("CPP::MapLiteral"))("FALSE", ctx_), "XFalse");
  EXPECT_EQ((*reg.Find("CPP::MapLiteral"))("0", ctx_), "0");
  EXPECT_EQ((*reg.Find("CORBA::MapLiteral"))("TRUE", ctx_), "true");
  EXPECT_EQ((*reg.Find("Java::MapLiteral"))("FALSE", ctx_), "false");
}

TEST_F(MapFuncsTest, CorbaReturnTypeStripsConstRef) {
  MapRegistry reg = MapRegistry::Builtins();
  EXPECT_EQ((*reg.Find("CORBA::MapReturnType"))("Heidi::Point", ctx_),
            "Heidi::Point");
  EXPECT_EQ((*reg.Find("CORBA::MapReturnType"))("string", ctx_), "char*");
}

TEST_F(MapFuncsTest, UserRegisteredFunction) {
  MapRegistry reg = MapRegistry::Builtins();
  reg.Register("My::Reverse", [](const std::string& v, const MapContext&) {
    return std::string(v.rbegin(), v.rend());
  });
  EXPECT_EQ((*reg.Find("My::Reverse"))("abc", ctx_), "cba");
}

}  // namespace
}  // namespace heidi::tmpl
