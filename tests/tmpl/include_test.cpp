// @include: compile-time splicing of template fragments, resolved
// relative to the including file — how multi-file mapping sets share
// common pieces.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "est/node.h"
#include "support/error.h"
#include "tmpl/interp.h"
#include "tmpl/program.h"

namespace heidi::tmpl {
namespace {

namespace fs = std::filesystem;

class IncludeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tmpl_include_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_ / "sub");
  }
  void TearDown() override { fs::remove_all(dir_); }

  void WriteFile(const std::string& name, const std::string& text) {
    std::ofstream(dir_ / name) << text;
  }

  std::string Run(const std::string& main_name) {
    TemplateProgram program =
        CompileTemplateFile((dir_ / main_name).string());
    est::Node root("Root", "");
    root.SetProp("who", "world");
    MapRegistry maps = MapRegistry::Builtins();
    return ExecuteToString(program, root, maps);
  }

  fs::path dir_;
};

TEST_F(IncludeTest, SplicesFragment) {
  WriteFile("frag.tmpl", "hello ${who}\n");
  WriteFile("main.tmpl", "before\n@include frag.tmpl\nafter\n");
  EXPECT_EQ(Run("main.tmpl"), "before\nhello world\nafter\n");
}

TEST_F(IncludeTest, NestedIncludes) {
  WriteFile("inner.tmpl", "deep\n");
  WriteFile("mid.tmpl", "@include inner.tmpl\nmid\n");
  WriteFile("main.tmpl", "@include mid.tmpl\ntop\n");
  EXPECT_EQ(Run("main.tmpl"), "deep\nmid\ntop\n");
}

TEST_F(IncludeTest, RelativeToIncludingFile) {
  WriteFile("sub/frag.tmpl", "from sub\n");
  WriteFile("main.tmpl", "@include sub/frag.tmpl\n");
  EXPECT_EQ(Run("main.tmpl"), "from sub\n");
}

TEST_F(IncludeTest, IncludedDirectivesWork) {
  WriteFile("frag.tmpl", "@set v included\n");
  WriteFile("main.tmpl", "@include frag.tmpl\nvalue=${v}\n");
  EXPECT_EQ(Run("main.tmpl"), "value=included\n");
}

TEST_F(IncludeTest, MissingFileThrowsWithPosition) {
  WriteFile("main.tmpl", "ok\n@include ghost.tmpl\n");
  try {
    Run("main.tmpl");
    FAIL() << "expected TemplateError";
  } catch (const TemplateError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("cannot open"), std::string::npos);
    EXPECT_NE(what.find(":2"), std::string::npos);
  }
}

TEST_F(IncludeTest, ErrorsInsideFragmentNameTheFragment) {
  WriteFile("frag.tmpl", "@bogus\n");
  WriteFile("main.tmpl", "@include frag.tmpl\n");
  try {
    Run("main.tmpl");
    FAIL() << "expected TemplateError";
  } catch (const TemplateError& e) {
    EXPECT_NE(std::string(e.what()).find("frag.tmpl:1"), std::string::npos);
  }
}

TEST_F(IncludeTest, MissingTemplateFileThrows) {
  EXPECT_THROW(CompileTemplateFile((dir_ / "nope.tmpl").string()),
               TemplateError);
}

}  // namespace
}  // namespace heidi::tmpl
