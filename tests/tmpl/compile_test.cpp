#include <gtest/gtest.h>

#include "support/error.h"
#include "tmpl/program.h"

namespace heidi::tmpl {
namespace {

TEST(ParseSegments, PlainText) {
  SegmentList segs = ParseSegments("hello world", "t");
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].kind, Segment::Kind::kLiteral);
  EXPECT_EQ(segs[0].text, "hello world");
}

TEST(ParseSegments, Variables) {
  SegmentList segs = ParseSegments("a ${x} b ${y}", "t");
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_EQ(segs[1].kind, Segment::Kind::kVar);
  EXPECT_EQ(segs[1].text, "x");
  EXPECT_EQ(segs[3].text, "y");
}

TEST(ParseSegments, DollarEscape) {
  SegmentList segs = ParseSegments("cost $$5 ${v}", "t");
  EXPECT_EQ(segs[0].text, "cost $5 ");
  EXPECT_EQ(segs[1].text, "v");
}

TEST(ParseSegments, AdjacentVars) {
  SegmentList segs = ParseSegments("${a}${b}", "t");
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].text, "a");
  EXPECT_EQ(segs[1].text, "b");
}

TEST(ParseSegments, UnterminatedThrows) {
  EXPECT_THROW(ParseSegments("${oops", "t"), TemplateError);
  EXPECT_THROW(ParseSegments("${}", "t"), TemplateError);
}

TEST(Compile, PlainLinesBecomeTextOps) {
  TemplateProgram p = CompileTemplate("line one\nline two\n", "t");
  ASSERT_EQ(p.Ops().size(), 2u);
  EXPECT_EQ(p.Ops()[0].kind, Op::Kind::kText);
}

TEST(Compile, NoTrailingEmptyLineFromFinalNewline) {
  TemplateProgram with = CompileTemplate("a\n", "t");
  TemplateProgram without = CompileTemplate("a", "t");
  EXPECT_EQ(with.Ops().size(), 1u);
  EXPECT_EQ(without.Ops().size(), 1u);
}

TEST(Compile, Foreach) {
  TemplateProgram p = CompileTemplate(
      "@foreach methodList -ifMore ', ' -map returnType CPP::MapType\n"
      "  body ${methodName}\n"
      "@end methodList\n",
      "t");
  ASSERT_EQ(p.Ops().size(), 1u);
  const Op& op = p.Ops()[0];
  EXPECT_EQ(op.kind, Op::Kind::kForeach);
  EXPECT_EQ(op.foreach_opts.list, "methodList");
  EXPECT_TRUE(op.foreach_opts.has_if_more);
  EXPECT_EQ(op.foreach_opts.if_more_sep, ", ");
  ASSERT_EQ(op.foreach_opts.maps.size(), 1u);
  EXPECT_EQ(op.foreach_opts.maps[0].first, "returnType");
  EXPECT_EQ(op.foreach_opts.maps[0].second, "CPP::MapType");
  EXPECT_EQ(op.body.size(), 1u);
}

TEST(Compile, ForeachEndNameMismatchThrows) {
  EXPECT_THROW(
      CompileTemplate("@foreach a\nx\n@end b\n", "t"), TemplateError);
}

TEST(Compile, ForeachBareEndAccepted) {
  TemplateProgram p = CompileTemplate("@foreach a\nx\n@end\n", "t");
  EXPECT_EQ(p.Ops().size(), 1u);
}

TEST(Compile, MissingEndThrows) {
  EXPECT_THROW(CompileTemplate("@foreach a\nx\n", "t"), TemplateError);
}

TEST(Compile, IfElseFi) {
  TemplateProgram p = CompileTemplate(
      "@if ${x} == yes\nthen-line\n@else\nelse-line\n@fi\n", "t");
  const Op& op = p.Ops()[0];
  EXPECT_EQ(op.kind, Op::Kind::kIf);
  EXPECT_FALSE(op.cond.negated);
  EXPECT_EQ(op.body.size(), 1u);
  EXPECT_EQ(op.else_body.size(), 1u);
}

TEST(Compile, IfNotEquals) {
  TemplateProgram p =
      CompileTemplate("@if ${q} != readonly\nx\n@fi\n", "t");
  EXPECT_TRUE(p.Ops()[0].cond.negated);
}

TEST(Compile, IfQuotedEmptyOperand) {
  TemplateProgram p = CompileTemplate("@if ${d} == ''\nx\n@fi\n", "t");
  EXPECT_TRUE(p.Ops()[0].cond.rhs.empty());
}

TEST(Compile, MalformedIfThrows) {
  EXPECT_THROW(CompileTemplate("@if ${x} yes\nz\n@fi\n", "t"),
               TemplateError);
  EXPECT_THROW(CompileTemplate("@if ${x} < 3\nz\n@fi\n", "t"),
               TemplateError);
}

TEST(Compile, UnmatchedElseThrows) {
  EXPECT_THROW(CompileTemplate("@else\n", "t"), TemplateError);
  EXPECT_THROW(CompileTemplate("@fi\n", "t"), TemplateError);
  EXPECT_THROW(CompileTemplate("@end x\n", "t"), TemplateError);
}

TEST(Compile, NestedStructures) {
  TemplateProgram p = CompileTemplate(
      "@foreach outer\n"
      "@if ${a} == b\n"
      "@foreach inner\n"
      "deep\n"
      "@end inner\n"
      "@fi\n"
      "@end outer\n",
      "t");
  // foreach + if + inner foreach + text line.
  EXPECT_EQ(p.OpCount(), 4u);
}

TEST(Compile, OpenFileSetMapDirectives) {
  TemplateProgram p = CompileTemplate(
      "@openfile ${name}.hh\n"
      "@set v 'a b'\n"
      "@map w Upper v\n",
      "t");
  ASSERT_EQ(p.Ops().size(), 3u);
  EXPECT_EQ(p.Ops()[0].kind, Op::Kind::kOpenFile);
  EXPECT_EQ(p.Ops()[1].kind, Op::Kind::kSet);
  const Op& map = p.Ops()[2];
  EXPECT_EQ(map.kind, Op::Kind::kMap);
  EXPECT_EQ(map.var, "w");
  EXPECT_EQ(map.func, "Upper");
  EXPECT_EQ(map.source_var, "v");
}

TEST(Compile, MapDefaultsSourceToVar) {
  TemplateProgram p = CompileTemplate("@map v Upper\n", "t");
  EXPECT_EQ(p.Ops()[0].source_var, "v");
}

TEST(Compile, CommentsDiscarded) {
  TemplateProgram p = CompileTemplate("@// a comment\nreal\n", "t");
  EXPECT_EQ(p.Ops().size(), 1u);
}

TEST(Compile, AtAtEscape) {
  TemplateProgram p = CompileTemplate("@@foreach literal\n", "t");
  ASSERT_EQ(p.Ops().size(), 1u);
  EXPECT_EQ(p.Ops()[0].kind, Op::Kind::kText);
  EXPECT_EQ(p.Ops()[0].segments[0].text, "@foreach literal");
}

TEST(Compile, UnknownDirectiveThrows) {
  EXPECT_THROW(CompileTemplate("@frobnicate x\n", "t"), TemplateError);
}

TEST(Compile, ErrorsCarryTemplateNameAndLine) {
  try {
    CompileTemplate("ok\n@bogus\n", "mytmpl");
    FAIL() << "expected TemplateError";
  } catch (const TemplateError& e) {
    EXPECT_NE(std::string(e.what()).find("mytmpl:2"), std::string::npos);
  }
}

TEST(Compile, UnterminatedQuoteThrows) {
  EXPECT_THROW(CompileTemplate("@set v 'oops\n", "t"), TemplateError);
}

TEST(Compile, IncludeUnavailableWithoutDir) {
  EXPECT_THROW(CompileTemplate("@include other.tmpl\n", "t"),
               TemplateError);
}

TEST(Compile, CarriageReturnsStripped) {
  TemplateProgram p = CompileTemplate("a\r\nb\r\n", "t");
  EXPECT_EQ(p.Ops()[0].segments[0].text, "a");
}

}  // namespace
}  // namespace heidi::tmpl
