// Property test: randomized value sequences marshal, frame, unframe and
// unmarshal identically through BOTH protocols — the "same Call surface,
// interchangeable encodings" invariant the configurable-protocol design
// rests on.
#include <gtest/gtest.h>

#include <random>
#include <variant>

#include "net/inmemory.h"
#include "wire/protocol.h"

namespace heidi::wire {
namespace {

struct Value {
  enum Kind {
    kBool,
    kChar,
    kOctet,
    kShort,
    kUShort,
    kLong,
    kULong,
    kLongLong,
    kULongLong,
    kFloat,
    kDouble,
    kString,
    kBytes,
    kEnum,
  } kind;
  int64_t i = 0;
  uint64_t u = 0;
  double d = 0;
  std::string s;
};

Value RandomValue(std::mt19937& rng) {
  std::uniform_int_distribution<int> kind_dist(0, 13);
  Value v;
  v.kind = static_cast<Value::Kind>(kind_dist(rng));
  std::uniform_int_distribution<int64_t> i64;
  std::uniform_int_distribution<uint64_t> u64;
  v.i = i64(rng);
  v.u = u64(rng);
  v.d = std::uniform_real_distribution<double>(-1e12, 1e12)(rng);
  std::uniform_int_distribution<int> len(0, 32);
  std::uniform_int_distribution<int> byte(0, 255);
  int n = len(rng);
  for (int k = 0; k < n; ++k) v.s.push_back(static_cast<char>(byte(rng)));
  return v;
}

void Put(Call& call, const Value& v) {
  switch (v.kind) {
    case Value::kBool: call.PutBoolean(v.u % 2 == 0); break;
    case Value::kChar: call.PutChar(static_cast<char>(v.u & 0xFF)); break;
    case Value::kOctet: call.PutOctet(static_cast<uint8_t>(v.u)); break;
    case Value::kShort: call.PutShort(static_cast<int16_t>(v.i)); break;
    case Value::kUShort: call.PutUShort(static_cast<uint16_t>(v.u)); break;
    case Value::kLong: call.PutLong(static_cast<int32_t>(v.i)); break;
    case Value::kULong: call.PutULong(static_cast<uint32_t>(v.u)); break;
    case Value::kLongLong: call.PutLongLong(v.i); break;
    case Value::kULongLong: call.PutULongLong(v.u); break;
    case Value::kFloat: call.PutFloat(static_cast<float>(v.d)); break;
    case Value::kDouble: call.PutDouble(v.d); break;
    case Value::kString: call.PutString(v.s); break;
    case Value::kBytes: call.PutBytes(v.s); break;
    case Value::kEnum: call.PutEnum(static_cast<int32_t>(v.u & 0xFFFF)); break;
  }
}

void Check(Call& call, const Value& v) {
  switch (v.kind) {
    case Value::kBool: EXPECT_EQ(call.GetBoolean(), v.u % 2 == 0); break;
    case Value::kChar:
      EXPECT_EQ(call.GetChar(), static_cast<char>(v.u & 0xFF));
      break;
    case Value::kOctet:
      EXPECT_EQ(call.GetOctet(), static_cast<uint8_t>(v.u));
      break;
    case Value::kShort:
      EXPECT_EQ(call.GetShort(), static_cast<int16_t>(v.i));
      break;
    case Value::kUShort:
      EXPECT_EQ(call.GetUShort(), static_cast<uint16_t>(v.u));
      break;
    case Value::kLong:
      EXPECT_EQ(call.GetLong(), static_cast<int32_t>(v.i));
      break;
    case Value::kULong:
      EXPECT_EQ(call.GetULong(), static_cast<uint32_t>(v.u));
      break;
    case Value::kLongLong: EXPECT_EQ(call.GetLongLong(), v.i); break;
    case Value::kULongLong: EXPECT_EQ(call.GetULongLong(), v.u); break;
    case Value::kFloat:
      EXPECT_EQ(call.GetFloat(), static_cast<float>(v.d));
      break;
    case Value::kDouble: EXPECT_EQ(call.GetDouble(), v.d); break;
    case Value::kString: EXPECT_EQ(call.GetString(), v.s); break;
    case Value::kBytes: EXPECT_EQ(call.GetBytes(), v.s); break;
    case Value::kEnum:
      EXPECT_EQ(call.GetEnum(), static_cast<int32_t>(v.u & 0xFFFF));
      break;
  }
}

struct CaseParams {
  const char* protocol;
  int seed;
};

class RoundtripProperty : public ::testing::TestWithParam<CaseParams> {};

TEST_P(RoundtripProperty, FramedValueSequences) {
  const Protocol* protocol = FindProtocol(GetParam().protocol);
  ASSERT_NE(protocol, nullptr);
  std::mt19937 rng(GetParam().seed);
  std::uniform_int_distribution<int> count_dist(0, 24);

  for (int iter = 0; iter < 40; ++iter) {
    std::vector<Value> values;
    int count = count_dist(rng);
    for (int i = 0; i < count; ++i) values.push_back(RandomValue(rng));

    auto call = protocol->NewCall();
    call->SetKind(CallKind::kRequest);
    call->SetCallId(static_cast<uint64_t>(iter));
    call->SetTarget("@tcp:h:1#1#IDL:T:1.0");
    call->SetOperation("op");
    for (const Value& v : values) Put(*call, v);

    net::ChannelPair pair = net::CreateInMemoryPair();
    protocol->WriteCall(*pair.a, *call);
    net::BufferedReader reader(*pair.b);
    auto read = protocol->ReadCall(reader);
    ASSERT_NE(read, nullptr);
    EXPECT_EQ(read->CallId(), static_cast<uint64_t>(iter));
    for (const Value& v : values) Check(*read, v);
    EXPECT_FALSE(read->HasMore());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundtripProperty,
    ::testing::Values(CaseParams{"text", 1}, CaseParams{"text", 2},
                      CaseParams{"text", 3}, CaseParams{"text", 4},
                      CaseParams{"hiop", 1}, CaseParams{"hiop", 2},
                      CaseParams{"hiop", 3}, CaseParams{"hiop", 4}),
    [](const ::testing::TestParamInfo<CaseParams>& param_info) {
      return std::string(param_info.param.protocol) + "_seed" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace heidi::wire
