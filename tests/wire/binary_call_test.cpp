#include "wire/binary.h"

#include <gtest/gtest.h>

#include <limits>

#include "support/error.h"

namespace heidi::wire {
namespace {

BinaryCall Reread(const BinaryCall& written) {
  return BinaryCall(written.Payload());
}

TEST(BinaryCall, PrimitiveRoundTrip) {
  BinaryCall w;
  w.PutBoolean(true);
  w.PutChar('q');
  w.PutOctet(200);
  w.PutShort(-32768);
  w.PutUShort(65535);
  w.PutLong(-1);
  w.PutULong(0xDEADBEEF);
  w.PutLongLong(std::numeric_limits<int64_t>::max());
  w.PutULongLong(0xFFFFFFFFFFFFFFFFull);
  w.PutFloat(-2.5f);
  w.PutDouble(6.02214076e23);
  w.PutString("binary");
  w.PutBytes(std::string("\x00\x01\x02", 3));

  BinaryCall r = Reread(w);
  EXPECT_TRUE(r.GetBoolean());
  EXPECT_EQ(r.GetChar(), 'q');
  EXPECT_EQ(r.GetOctet(), 200);
  EXPECT_EQ(r.GetShort(), -32768);
  EXPECT_EQ(r.GetUShort(), 65535);
  EXPECT_EQ(r.GetLong(), -1);
  EXPECT_EQ(r.GetULong(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetLongLong(), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(r.GetULongLong(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_FLOAT_EQ(r.GetFloat(), -2.5f);
  EXPECT_DOUBLE_EQ(r.GetDouble(), 6.02214076e23);
  EXPECT_EQ(r.GetString(), "binary");
  EXPECT_EQ(r.GetBytes(), std::string("\x00\x01\x02", 3));
  EXPECT_FALSE(r.HasMore());
}

TEST(BinaryCall, CdrAlignment) {
  // octet then long: CDR inserts 3 bytes of padding before the long.
  BinaryCall w;
  w.PutOctet(1);
  w.PutLong(0x01020304);
  EXPECT_EQ(w.Payload().size(), 8u);
  // octet then double: 7 bytes of padding.
  BinaryCall w2;
  w2.PutOctet(1);
  w2.PutDouble(1.0);
  EXPECT_EQ(w2.Payload().size(), 16u);
  // Reading applies the same alignment.
  BinaryCall r = Reread(w);
  EXPECT_EQ(r.GetOctet(), 1);
  EXPECT_EQ(r.GetLong(), 0x01020304);
}

TEST(BinaryCall, StringsAreNulTerminatedWithLength) {
  BinaryCall w;
  w.PutString("ab");
  // u32 len=3, 'a', 'b', NUL.
  ASSERT_EQ(w.Payload().size(), 7u);
  EXPECT_EQ(w.Payload()[0], 3);
  EXPECT_EQ(w.Payload()[6], '\0');
}

TEST(BinaryCall, StringWithEmbeddedBytes) {
  BinaryCall w;
  w.PutString(std::string("a\x01b", 3));
  BinaryCall r = Reread(w);
  EXPECT_EQ(r.GetString(), std::string("a\x01b", 3));
}

TEST(BinaryCall, EmptyString) {
  BinaryCall w;
  w.PutString("");
  BinaryCall r = Reread(w);
  EXPECT_EQ(r.GetString(), "");
}

TEST(BinaryCall, BeginEndAreNoOps) {
  BinaryCall w;
  w.Begin("seq");
  w.PutLong(7);
  w.End();
  EXPECT_EQ(w.Payload().size(), 4u);  // no group marker bytes
  BinaryCall r = Reread(w);
  r.Begin("anything");
  EXPECT_EQ(r.GetLong(), 7);
  r.End();
}

TEST(BinaryCall, TruncationThrows) {
  BinaryCall w;
  w.PutLong(1);
  std::string partial = w.Payload().substr(0, 2);
  BinaryCall r(std::move(partial));
  EXPECT_THROW(r.GetLong(), MarshalError);
}

TEST(BinaryCall, TruncatedStringThrows) {
  BinaryCall w;
  w.PutString("hello");
  std::string partial = w.Payload().substr(0, 6);
  BinaryCall r(std::move(partial));
  EXPECT_THROW(r.GetString(), MarshalError);
}

TEST(BinaryCall, ZeroLengthStringHeaderRejected) {
  // CDR strings always contain at least the NUL, so length 0 is corrupt.
  std::string payload(4, '\0');
  BinaryCall r(std::move(payload));
  EXPECT_THROW(r.GetString(), MarshalError);
}

TEST(BinaryCall, MalformedBooleanRejected) {
  std::string payload(1, '\x05');
  BinaryCall r(std::move(payload));
  EXPECT_THROW(r.GetBoolean(), MarshalError);
}

TEST(BinaryCall, PutOnReadableThrows) {
  BinaryCall r(std::string{});
  EXPECT_THROW(r.PutLong(1), MarshalError);
}

TEST(BinaryCall, GetOnWritableThrows) {
  BinaryCall w;
  EXPECT_THROW(w.GetLong(), MarshalError);
}

TEST(BinaryCall, PayloadSmallerThanText) {
  // The motivation for the binary protocol: numeric data is denser.
  BinaryCall b;
  wire::BinaryCall dummy;
  for (int i = 0; i < 100; ++i) b.PutLong(1000000 + i);
  EXPECT_EQ(b.PayloadSize(), 400u);
}

}  // namespace
}  // namespace heidi::wire
