#include "wire/text.h"

#include <gtest/gtest.h>

#include <limits>

#include "support/error.h"

namespace heidi::wire {
namespace {

// Builds a readable call holding the writable call's payload.
TextCall Reread(const TextCall& written) {
  return TextCall(written.Tokens());
}

TEST(TextCall, PrimitiveRoundTrip) {
  TextCall w;
  w.PutBoolean(true);
  w.PutBoolean(false);
  w.PutChar('x');
  w.PutOctet(255);
  w.PutShort(-123);
  w.PutUShort(60000);
  w.PutLong(-2000000000);
  w.PutULong(4000000000u);
  w.PutLongLong(std::numeric_limits<int64_t>::min());
  w.PutULongLong(std::numeric_limits<uint64_t>::max());
  w.PutFloat(1.5f);
  w.PutDouble(3.141592653589793);
  w.PutString("hello world");
  w.PutEnum(2);
  w.PutBytes(std::string("\x00\x01\xff", 3));

  TextCall r = Reread(w);
  EXPECT_TRUE(r.GetBoolean());
  EXPECT_FALSE(r.GetBoolean());
  EXPECT_EQ(r.GetChar(), 'x');
  EXPECT_EQ(r.GetOctet(), 255);
  EXPECT_EQ(r.GetShort(), -123);
  EXPECT_EQ(r.GetUShort(), 60000);
  EXPECT_EQ(r.GetLong(), -2000000000);
  EXPECT_EQ(r.GetULong(), 4000000000u);
  EXPECT_EQ(r.GetLongLong(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(r.GetULongLong(), std::numeric_limits<uint64_t>::max());
  EXPECT_FLOAT_EQ(r.GetFloat(), 1.5f);
  EXPECT_DOUBLE_EQ(r.GetDouble(), 3.141592653589793);
  EXPECT_EQ(r.GetString(), "hello world");
  EXPECT_EQ(r.GetEnum(), 2);
  EXPECT_EQ(r.GetBytes(), std::string("\x00\x01\xff", 3));
  EXPECT_FALSE(r.HasMore());
}

TEST(TextCall, TokensAreHumanReadable) {
  // The §4.2 telnet story: the encoding must be legible ASCII.
  TextCall w;
  w.PutLong(42);
  w.PutString("go");
  ASSERT_EQ(w.Tokens().size(), 2u);
  EXPECT_EQ(w.Tokens()[0], "i:42");
  EXPECT_EQ(w.Tokens()[1], "s:go");
}

TEST(TextCall, StringWithSpacesAndNewlines) {
  TextCall w;
  w.PutString("a b\nc%d");
  TextCall r = Reread(w);
  EXPECT_EQ(r.GetString(), "a b\nc%d");
  // The token itself must not contain raw demarcation bytes.
  EXPECT_EQ(w.Tokens()[0].find(' '), std::string::npos);
  EXPECT_EQ(w.Tokens()[0].find('\n'), std::string::npos);
}

TEST(TextCall, EmptyString) {
  TextCall w;
  w.PutString("");
  TextCall r = Reread(w);
  EXPECT_EQ(r.GetString(), "");
}

TEST(TextCall, BeginEndGroups) {
  TextCall w;
  w.Begin("seq");
  w.PutLong(1);
  w.Begin("inner");
  w.PutLong(2);
  w.End();
  w.End();

  TextCall r = Reread(w);
  r.Begin("seq");
  EXPECT_EQ(r.GetLong(), 1);
  r.Begin("inner");
  EXPECT_EQ(r.GetLong(), 2);
  r.End();
  r.End();
  EXPECT_FALSE(r.HasMore());
}

TEST(TextCall, GroupLabelMismatchThrows) {
  TextCall w;
  w.Begin("seq");
  w.End();
  TextCall r = Reread(w);
  EXPECT_THROW(r.Begin("other"), MarshalError);
}

TEST(TextCall, MissingEndThrows) {
  TextCall w;
  w.Begin("seq");
  w.PutLong(1);
  w.End();
  TextCall r = Reread(w);
  r.Begin("seq");
  EXPECT_THROW(r.End(), MarshalError);  // next token is the long, not ']'
}

TEST(TextCall, TypeMismatchThrows) {
  TextCall w;
  w.PutLong(5);
  TextCall r = Reread(w);
  EXPECT_THROW(r.GetString(), MarshalError);
}

TEST(TextCall, ExhaustionThrows) {
  TextCall r((std::vector<std::string>()));
  EXPECT_THROW(r.GetLong(), MarshalError);
}

TEST(TextCall, RangeCheckingOnRead) {
  // A short token holding a long-sized value must be rejected.
  TextCall r(std::vector<std::string>{"i:70000"});
  EXPECT_THROW(r.GetShort(), MarshalError);
  TextCall r2(std::vector<std::string>{"u:4294967296"});
  EXPECT_THROW(r2.GetULong(), MarshalError);
  TextCall r3(std::vector<std::string>{"o:256"});
  EXPECT_THROW(r3.GetOctet(), MarshalError);
}

TEST(TextCall, MalformedTokensThrow) {
  EXPECT_THROW(TextCall(std::vector<std::string>{"i:abc"}).GetLong(),
               MarshalError);
  EXPECT_THROW(TextCall(std::vector<std::string>{"b:Q"}).GetBoolean(),
               MarshalError);
  EXPECT_THROW(TextCall(std::vector<std::string>{"x"}).GetLong(),
               MarshalError);
  EXPECT_THROW(TextCall(std::vector<std::string>{"u:-1"}).GetULong(),
               MarshalError);
}

TEST(TextCall, PutOnReadableThrows) {
  TextCall r(std::vector<std::string>{});
  EXPECT_THROW(r.PutLong(1), MarshalError);
}

TEST(TextCall, GetOnWritableThrows) {
  TextCall w;
  w.PutLong(1);
  EXPECT_THROW(w.GetLong(), MarshalError);
}

TEST(TextCall, FloatPrecisionSurvives) {
  TextCall w;
  w.PutDouble(1.0 / 3.0);
  w.PutFloat(0.1f);
  TextCall r = Reread(w);
  EXPECT_DOUBLE_EQ(r.GetDouble(), 1.0 / 3.0);  // %.17g round-trips exactly
  EXPECT_FLOAT_EQ(r.GetFloat(), 0.1f);
}

TEST(TextCall, HeaderFields) {
  TextCall w;
  w.SetKind(CallKind::kRequest);
  w.SetCallId(77);
  w.SetTarget("@tcp:h:1#2#IDL:X:1.0");
  w.SetOperation("f");
  w.SetOneway(true);
  EXPECT_EQ(w.CallId(), 77u);
  EXPECT_EQ(w.Operation(), "f");
  EXPECT_TRUE(w.Oneway());
}

TEST(TextCall, PayloadSizeCountsTokens) {
  TextCall w;
  EXPECT_EQ(w.PayloadSize(), 0u);
  w.PutLong(1);
  EXPECT_GT(w.PayloadSize(), 0u);
}

}  // namespace
}  // namespace heidi::wire
