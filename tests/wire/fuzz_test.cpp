// Robustness property tests: random garbage fed to both protocol readers
// must produce a clean exception or EOF — never a crash, hang, or silent
// success — and a live server must survive a garbage-spewing peer.
#include <gtest/gtest.h>

#include <random>

#include "demo/demo.h"
#include "net/inmemory.h"
#include "net/tcp.h"
#include "orb/orb.h"
#include "support/error.h"
#include "wire/protocol.h"

namespace heidi::wire {
namespace {

struct FuzzParams {
  const char* protocol;
  int seed;
};

class ProtocolFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(ProtocolFuzz, RandomBytesNeverCrashTheReader) {
  const Protocol* protocol = FindProtocol(GetParam().protocol);
  std::mt19937 rng(GetParam().seed);
  std::uniform_int_distribution<int> len_dist(0, 512);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int iter = 0; iter < 200; ++iter) {
    std::string junk;
    int len = len_dist(rng);
    for (int i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(byte_dist(rng)));
    }
    net::ChannelPair pair = net::CreateInMemoryPair();
    pair.a->WriteAll(junk.data(), junk.size());
    pair.a->Close();
    net::BufferedReader reader(*pair.b);
    try {
      // Drain: every frame must decode or throw; EOF ends the loop.
      while (protocol->ReadCall(reader) != nullptr) {
      }
    } catch (const HdError&) {
      // Expected for malformed input.
    }
  }
}

TEST_P(ProtocolFuzz, TruncatedValidFramesThrowOrEof) {
  const Protocol* protocol = FindProtocol(GetParam().protocol);
  // Build one valid frame, then replay every strict prefix of it.
  auto call = protocol->NewCall();
  call->SetKind(CallKind::kRequest);
  call->SetCallId(7);
  call->SetTarget("@tcp:host:1234#1000#IDL:Heidi/Echo:1.0");
  call->SetOperation("echo");
  call->PutString("payload with some length to it");
  call->PutLong(12345);
  net::ChannelPair capture = net::CreateInMemoryPair();
  protocol->WriteCall(*capture.a, *call);
  std::string frame(8192, '\0');
  size_t n = capture.b->Read(frame.data(), frame.size());
  frame.resize(n);

  for (size_t cut = 0; cut < frame.size(); cut += 7) {
    net::ChannelPair pair = net::CreateInMemoryPair();
    pair.a->WriteAll(frame.data(), cut);
    pair.a->Close();
    net::BufferedReader reader(*pair.b);
    try {
      std::unique_ptr<Call> read = protocol->ReadCall(reader);
      // A successful read of a *prefix* is only acceptable at cut==0
      // (clean EOF -> nullptr).
      EXPECT_TRUE(read == nullptr) << "prefix of " << cut
                                   << " bytes decoded as a full frame";
    } catch (const HdError&) {
      // Truncation detected — correct.
    }
  }
}

TEST_P(ProtocolFuzz, BitFlippedFramesNeverCrash) {
  const Protocol* protocol = FindProtocol(GetParam().protocol);
  auto call = protocol->NewCall();
  call->SetKind(CallKind::kRequest);
  call->SetCallId(9);
  call->SetTarget("@tcp:h:1#1#IDL:T:1.0");
  call->SetOperation("op");
  call->PutString("abc");
  call->PutDouble(2.5);
  net::ChannelPair capture = net::CreateInMemoryPair();
  protocol->WriteCall(*capture.a, *call);
  std::string frame(4096, '\0');
  frame.resize(capture.b->Read(frame.data(), frame.size()));

  std::mt19937 rng(GetParam().seed);
  std::uniform_int_distribution<size_t> pos_dist(0, frame.size() - 1);
  std::uniform_int_distribution<int> bit_dist(0, 7);
  for (int iter = 0; iter < 200; ++iter) {
    std::string mutated = frame;
    mutated[pos_dist(rng)] ^= static_cast<char>(1 << bit_dist(rng));
    net::ChannelPair pair = net::CreateInMemoryPair();
    pair.a->WriteAll(mutated.data(), mutated.size());
    pair.a->Close();
    net::BufferedReader reader(*pair.b);
    try {
      auto read = protocol->ReadCall(reader);
      if (read != nullptr && read->Kind() == CallKind::kRequest) {
        // Header survived; payload reads must still be bounded.
        try {
          (void)read->GetString();
          (void)read->GetDouble();
        } catch (const MarshalError&) {
        }
      }
    } catch (const HdError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ProtocolFuzz,
    ::testing::Values(FuzzParams{"text", 11}, FuzzParams{"text", 12},
                      FuzzParams{"hiop", 11}, FuzzParams{"hiop", 12}),
    [](const ::testing::TestParamInfo<FuzzParams>& param_info) {
      return std::string(param_info.param.protocol) + "_seed" +
             std::to_string(param_info.param.seed);
    });

TEST(ServerFuzz, GarbageSpewingPeersDoNotTakeTheServerDown) {
  heidi::demo::ForceDemoRegistration();
  heidi::orb::Orb server;
  server.ListenTcp();
  heidi::demo::EchoImpl impl;
  auto ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  std::mt19937 rng(99);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int conn = 0; conn < 20; ++conn) {
    auto raw = net::TcpConnect("127.0.0.1", server.TcpPort());
    std::string junk;
    for (int i = 0; i < 256; ++i) {
      junk.push_back(static_cast<char>(byte_dist(rng)));
    }
    try {
      raw->WriteAll(junk.data(), junk.size());
    } catch (const NetError&) {
      // Server may already have slammed the door — fine.
    }
    raw->Close();
  }

  // A well-behaved client still gets service.
  heidi::orb::Orb client;
  auto echo = client.ResolveAs<HdEcho>(ref.ToString());
  EXPECT_EQ(echo->add(2, 3), 5);
  client.Shutdown();
  server.Shutdown();
}

}  // namespace
}  // namespace heidi::wire
