#include "wire/protocol.h"

#include <gtest/gtest.h>

#include "net/inmemory.h"
#include "obs/trace.h"
#include "support/error.h"
#include "wire/binary.h"
#include "wire/text.h"

namespace heidi::wire {
namespace {

class ProtocolTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    protocol_ = FindProtocol(GetParam());
    ASSERT_NE(protocol_, nullptr);
    pair_ = net::CreateInMemoryPair();
    reader_ = std::make_unique<net::BufferedReader>(*pair_.b);
  }

  const Protocol* protocol_;
  net::ChannelPair pair_;
  std::unique_ptr<net::BufferedReader> reader_;
};

TEST_P(ProtocolTest, RequestHeaderAndPayloadSurvivesFraming) {
  auto call = protocol_->NewCall();
  call->SetKind(CallKind::kRequest);
  call->SetCallId(42);
  call->SetTarget("@tcp:host:9#1000#IDL:Heidi/A:1.0");
  call->SetOperation("frobnicate");
  call->SetOneway(false);
  call->PutLong(7);
  call->PutString("payload data");
  protocol_->WriteCall(*pair_.a, *call);

  auto read = protocol_->ReadCall(*reader_);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->Kind(), CallKind::kRequest);
  EXPECT_EQ(read->CallId(), 42u);
  EXPECT_EQ(read->Target(), "@tcp:host:9#1000#IDL:Heidi/A:1.0");
  EXPECT_EQ(read->Operation(), "frobnicate");
  EXPECT_FALSE(read->Oneway());
  EXPECT_EQ(read->GetLong(), 7);
  EXPECT_EQ(read->GetString(), "payload data");
}

TEST_P(ProtocolTest, ReplyHeaderSurvivesFraming) {
  auto reply = protocol_->NewCall();
  reply->SetKind(CallKind::kReply);
  reply->SetCallId(9);
  reply->SetStatus(CallStatus::kUserException);
  reply->SetErrorText("something bad happened");
  protocol_->WriteCall(*pair_.a, *reply);

  auto read = protocol_->ReadCall(*reader_);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->Kind(), CallKind::kReply);
  EXPECT_EQ(read->CallId(), 9u);
  EXPECT_EQ(read->Status(), CallStatus::kUserException);
  EXPECT_EQ(read->ErrorText(), "something bad happened");
}

TEST_P(ProtocolTest, TimeoutStatusSurvivesFraming) {
  // The mux's "call timed out / connection dying" frame must be relayable
  // through either protocol, not just synthesized locally.
  auto reply = protocol_->NewCall();
  reply->SetKind(CallKind::kReply);
  reply->SetCallId(77);
  reply->SetStatus(CallStatus::kTimeout);
  reply->SetErrorText("deadline exceeded");
  protocol_->WriteCall(*pair_.a, *reply);

  auto read = protocol_->ReadCall(*reader_);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->Kind(), CallKind::kReply);
  EXPECT_EQ(read->CallId(), 77u);
  EXPECT_EQ(read->Status(), CallStatus::kTimeout);
  EXPECT_EQ(read->ErrorText(), "deadline exceeded");
}

TEST_P(ProtocolTest, ReplyCorrelationIdsSurviveOutOfOrder) {
  // Call ids are the mux's correlation field: frames written in one order
  // must come back with their ids intact so replies can be matched out of
  // order.
  for (uint64_t id : {31u, 7u, 1003u}) {
    auto reply = protocol_->NewCall();
    reply->SetKind(CallKind::kReply);
    reply->SetCallId(id);
    reply->SetStatus(CallStatus::kOk);
    protocol_->WriteCall(*pair_.a, *reply);
  }
  for (uint64_t id : {31u, 7u, 1003u}) {
    auto read = protocol_->ReadCall(*reader_);
    ASSERT_NE(read, nullptr);
    EXPECT_EQ(read->CallId(), id);
  }
}

TEST_P(ProtocolTest, OnewayFlagSurvives) {
  auto call = protocol_->NewCall();
  call->SetKind(CallKind::kRequest);
  call->SetTarget("@tcp:h:1#2#IDL:T:1.0");
  call->SetOperation("fire");
  call->SetOneway(true);
  protocol_->WriteCall(*pair_.a, *call);
  auto read = protocol_->ReadCall(*reader_);
  EXPECT_TRUE(read->Oneway());
}

TEST_P(ProtocolTest, BackToBackCallsAreDemarcated) {
  for (int i = 0; i < 3; ++i) {
    auto call = protocol_->NewCall();
    call->SetKind(CallKind::kRequest);
    call->SetCallId(static_cast<uint64_t>(i));
    call->SetTarget("@tcp:h:1#2#IDL:T:1.0");
    call->SetOperation("op" + std::to_string(i));
    call->PutLong(i * 10);
    protocol_->WriteCall(*pair_.a, *call);
  }
  for (int i = 0; i < 3; ++i) {
    auto read = protocol_->ReadCall(*reader_);
    ASSERT_NE(read, nullptr);
    EXPECT_EQ(read->CallId(), static_cast<uint64_t>(i));
    EXPECT_EQ(read->Operation(), "op" + std::to_string(i));
    EXPECT_EQ(read->GetLong(), i * 10);
  }
}

TEST_P(ProtocolTest, CleanEofGivesNull) {
  pair_.a->Close();
  EXPECT_EQ(protocol_->ReadCall(*reader_), nullptr);
}

TEST_P(ProtocolTest, HeaderFieldsWithSpecialCharacters) {
  auto call = protocol_->NewCall();
  call->SetKind(CallKind::kReply);
  call->SetErrorText("line one\nline two with spaces % and #");
  protocol_->WriteCall(*pair_.a, *call);
  auto read = protocol_->ReadCall(*reader_);
  EXPECT_EQ(read->ErrorText(), "line one\nline two with spaces % and #");
}

TEST_P(ProtocolTest, TraceContextSurvivesRequestFraming) {
  obs::TraceContext ctx;
  ctx.trace_hi = 0x0123456789abcdefULL;
  ctx.trace_lo = 0xfedcba9876543210ULL;
  ctx.span_id = 0x1111222233334444ULL;
  ctx.parent_span_id = 0x5555666677778888ULL;
  ctx.sampled = true;

  auto call = protocol_->NewCall();
  call->SetKind(CallKind::kRequest);
  call->SetCallId(7);
  call->SetTarget("@tcp:host:9#1000#IDL:Heidi/A:1.0");
  call->SetOperation("op");
  call->SetTrace(ctx);
  call->PutString("arg");
  protocol_->WriteCall(*pair_.a, *call);

  auto read = protocol_->ReadCall(*reader_);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->Trace(), ctx);
  EXPECT_EQ(read->Operation(), "op");
  EXPECT_EQ(read->GetString(), "arg");  // payload framing undisturbed
}

TEST_P(ProtocolTest, TraceContextSurvivesReplyFraming) {
  obs::TraceContext ctx = obs::NewRootContext(false);
  ctx.parent_span_id = 42;

  auto reply = protocol_->NewCall();
  reply->SetKind(CallKind::kReply);
  reply->SetCallId(9);
  reply->SetStatus(CallStatus::kOk);
  reply->SetTrace(ctx);
  reply->PutLong(1);
  protocol_->WriteCall(*pair_.a, *reply);

  auto read = protocol_->ReadCall(*reader_);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->Trace(), ctx);
  EXPECT_FALSE(read->Trace().sampled);
  EXPECT_EQ(read->GetLong(), 1);
}

TEST_P(ProtocolTest, UntracedCallsDecodeWithInvalidContext) {
  // Version tolerance, old-peer half: a frame written without a trace
  // context (exactly what a pre-trace peer sends) decodes to an invalid
  // (all-zero) context, not an error.
  auto call = protocol_->NewCall();
  call->SetKind(CallKind::kRequest);
  call->SetCallId(1);
  call->SetTarget("@tcp:host:9#1000#IDL:Heidi/A:1.0");
  call->SetOperation("op");
  protocol_->WriteCall(*pair_.a, *call);

  auto read = protocol_->ReadCall(*reader_);
  ASSERT_NE(read, nullptr);
  EXPECT_FALSE(read->Trace().Valid());
}

TEST_P(ProtocolTest, TracedAndUntracedCallsInterleave) {
  // New-peer-to-old-frame and back again on one stream: the trace header
  // must apply to exactly the call it precedes, never leak to the next.
  obs::TraceContext ctx = obs::NewRootContext(true);
  auto traced = protocol_->NewCall();
  traced->SetKind(CallKind::kRequest);
  traced->SetCallId(1);
  traced->SetTarget("@tcp:host:9#1000#IDL:Heidi/A:1.0");
  traced->SetOperation("first");
  traced->SetTrace(ctx);
  auto untraced = protocol_->NewCall();
  untraced->SetKind(CallKind::kRequest);
  untraced->SetCallId(2);
  untraced->SetTarget("@tcp:host:9#1000#IDL:Heidi/A:1.0");
  untraced->SetOperation("second");
  protocol_->WriteCall(*pair_.a, *traced);
  protocol_->WriteCall(*pair_.a, *untraced);

  auto first = protocol_->ReadCall(*reader_);
  auto second = protocol_->ReadCall(*reader_);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->Trace(), ctx);
  EXPECT_FALSE(second->Trace().Valid());
}

INSTANTIATE_TEST_SUITE_P(Protocols, ProtocolTest,
                         ::testing::Values("text", "hiop"));

// --- text-protocol specifics -------------------------------------------------

TEST(TextProtocol, HandTypedRequestParses) {
  // The §4.2 telnet scenario: a human types a request line by hand.
  const Protocol* text = FindProtocol("text");
  net::ChannelPair pair = net::CreateInMemoryPair();
  std::string line =
      "REQ 1 W @tcp:localhost:99#1000#IDL:Heidi/Echo:1.0 echo s:hi\r\n";
  pair.a->WriteAll(line.data(), line.size());
  net::BufferedReader reader(*pair.b);
  auto call = text->ReadCall(reader);
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->Operation(), "echo");
  EXPECT_EQ(call->GetString(), "hi");
}

TEST(TextProtocol, MalformedLinesThrow) {
  const Protocol* text = FindProtocol("text");
  for (const char* bad : {"GARBAGE 1 2 3\n", "REQ 1\n", "REP 1\n",
                          "REQ 1 X target op\n", "REP 1 WAT err\n"}) {
    net::ChannelPair pair = net::CreateInMemoryPair();
    pair.a->WriteAll(bad, strlen(bad));
    net::BufferedReader reader(*pair.b);
    EXPECT_THROW(text->ReadCall(reader), MarshalError) << bad;
  }
}

TEST(TextProtocol, MalformedTraceHeaderThrows) {
  const Protocol* protocol = FindProtocol("text");
  net::ChannelPair pair = net::CreateInMemoryPair();
  net::BufferedReader reader(*pair.b);
  std::string line = "trace: not-a-context\nREQ 1 W t op\n";
  pair.a->WriteAll(line.data(), line.size());
  EXPECT_THROW(protocol->ReadCall(reader), MarshalError);
}

TEST(TextProtocol, HandTypedTraceHeaderParses) {
  // The textual context is human-writable, so a telnet user can join a
  // trace by hand.
  const Protocol* protocol = FindProtocol("text");
  net::ChannelPair pair = net::CreateInMemoryPair();
  net::BufferedReader reader(*pair.b);
  std::string line =
      "trace: 0123456789abcdef0123456789abcdef-00000000000000aa-"
      "0000000000000000-01\nREQ 7 W target echo s:hi\n";
  pair.a->WriteAll(line.data(), line.size());
  auto read = protocol->ReadCall(reader);
  ASSERT_NE(read, nullptr);
  EXPECT_TRUE(read->Trace().Valid());
  EXPECT_TRUE(read->Trace().sampled);
  EXPECT_EQ(read->Trace().span_id, 0xaau);
}

TEST(TextProtocol, WrongCallTypeRejected) {
  const Protocol* text = FindProtocol("text");
  BinaryCall binary;
  net::ChannelPair pair = net::CreateInMemoryPair();
  EXPECT_THROW(text->WriteCall(*pair.a, binary), MarshalError);
}

// --- hiop specifics -----------------------------------------------------------

TEST(HiopProtocol, BadMagicThrows) {
  const Protocol* hiop = FindProtocol("hiop");
  net::ChannelPair pair = net::CreateInMemoryPair();
  std::string junk = "NOPE............";
  pair.a->WriteAll(junk.data(), junk.size());
  net::BufferedReader reader(*pair.b);
  EXPECT_THROW(hiop->ReadCall(reader), MarshalError);
}

TEST(HiopProtocol, OversizedFrameRejected) {
  const Protocol* hiop = FindProtocol("hiop");
  net::ChannelPair pair = net::CreateInMemoryPair();
  std::string header = "HIOP";
  header.push_back(1);   // version
  header.push_back(1);   // request
  header.append(2, 0);
  uint32_t head_len = 0xFFFFFFFF, payload_len = 0;
  header.append(reinterpret_cast<char*>(&head_len), 4);
  header.append(reinterpret_cast<char*>(&payload_len), 4);
  pair.a->WriteAll(header.data(), header.size());
  net::BufferedReader reader(*pair.b);
  EXPECT_THROW(hiop->ReadCall(reader), MarshalError);
}

TEST(HiopProtocol, TruncatedFrameThrows) {
  const Protocol* hiop = FindProtocol("hiop");
  net::ChannelPair pair = net::CreateInMemoryPair();
  auto call = hiop->NewCall();
  call->SetKind(CallKind::kRequest);
  call->SetTarget("@tcp:h:1#2#IDL:T:1.0");
  call->SetOperation("op");
  call->PutString("some payload");
  // Capture a full frame, then deliver only part of it.
  net::ChannelPair capture = net::CreateInMemoryPair();
  hiop->WriteCall(*capture.a, *call);
  std::string frame(4096, '\0');
  size_t n = capture.b->Read(frame.data(), frame.size());
  frame.resize(n);
  pair.a->WriteAll(frame.data(), frame.size() - 5);
  pair.a->Close();
  net::BufferedReader reader(*pair.b);
  EXPECT_THROW(hiop->ReadCall(reader), NetError);
}

// --- registry -----------------------------------------------------------------

TEST(ProtocolRegistry, BuiltinsPresent) {
  EXPECT_NE(FindProtocol("text"), nullptr);
  EXPECT_NE(FindProtocol("hiop"), nullptr);
  EXPECT_EQ(FindProtocol("giop"), nullptr);
  auto names = ProtocolNames();
  EXPECT_GE(names.size(), 2u);
}

TEST(ProtocolRegistry, DuplicateRegistrationThrows) {
  const Protocol* text = FindProtocol("text");
  EXPECT_THROW(RegisterProtocol(text), HdError);
}

}  // namespace
}  // namespace heidi::wire
