// Zero-copy unmarshaling and encode caching: readable calls hand out
// string_views that stay valid for the call's lifetime (backed by the
// retained inbound frame slab for HIOP, by the token vector or retained
// unescape storage for text), and a TextCall re-sent unchanged reuses its
// rendered frame byte-for-byte.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/buffered.h"
#include "net/inmemory.h"
#include "wire/binary.h"
#include "wire/protocol.h"
#include "wire/text.h"

namespace heidi::wire {
namespace {

std::unique_ptr<Call> Roundtrip(const Protocol* protocol,
                                const std::unique_ptr<Call>& call) {
  net::ChannelPair pair = net::CreateInMemoryPair();
  protocol->WriteCall(*pair.a, *call);
  net::BufferedReader reader(*pair.b);
  return protocol->ReadCall(reader);
}

class ZeroCopyViews : public ::testing::TestWithParam<const char*> {};

TEST_P(ZeroCopyViews, ViewsMatchCopyingGettersAndOutliveTheDecode) {
  const Protocol* protocol = FindProtocol(GetParam());
  ASSERT_NE(protocol, nullptr);
  auto request = protocol->NewCall();
  request->SetKind(CallKind::kRequest);
  request->SetCallId(77);
  request->SetTarget("@tcp:h:1#42#IDL:Heidi/Echo:1.0");
  request->SetOperation("echo");
  request->PutString("plain");
  request->PutString("needs escaping: spaces\nand\tcontrol");
  request->PutBytes(std::string("\x00\x01\x02 raw", 8));
  request->PutLong(1234);

  auto read = Roundtrip(protocol, request);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->CallId(), 77u);
  EXPECT_EQ(read->Operation(), "echo");

  std::string_view s1 = read->GetStringView();
  std::string_view s2 = read->GetStringView();
  std::string_view b = read->GetBytesView();
  // Views survive further decoding — they reference retained storage,
  // not a cursor that later Gets move.
  EXPECT_EQ(read->GetLong(), 1234);
  EXPECT_EQ(s1, "plain");
  EXPECT_EQ(s2, "needs escaping: spaces\nand\tcontrol");
  EXPECT_EQ(b, std::string_view("\x00\x01\x02 raw", 8));
  EXPECT_FALSE(read->HasMore());
}

TEST_P(ZeroCopyViews, ViewAndCopyGettersDecodeIdentically) {
  const Protocol* protocol = FindProtocol(GetParam());
  ASSERT_NE(protocol, nullptr);
  auto request = protocol->NewCall();
  request->SetKind(CallKind::kRequest);
  request->SetTarget("@tcp:h:1#1#IDL:T:1.0");
  request->SetOperation("op");
  request->PutString("alpha");
  request->PutBytes("beta-bytes");

  auto via_copy = Roundtrip(protocol, request);
  auto via_view = Roundtrip(protocol, request);
  EXPECT_EQ(via_copy->GetString(), via_view->GetStringView());
  EXPECT_EQ(via_copy->GetBytes(), via_view->GetBytesView());
}

INSTANTIATE_TEST_SUITE_P(Protocols, ZeroCopyViews,
                         ::testing::Values("text", "hiop"));

// --- HIOP: views are windows into the retained frame slab -------------------

TEST(HiopZeroCopy, StringViewPointsIntoRetainedFrame) {
  const Protocol* protocol = FindProtocol("hiop");
  auto request = protocol->NewCall();
  request->SetKind(CallKind::kRequest);
  request->SetTarget("@tcp:h:1#1#IDL:T:1.0");
  request->SetOperation("op");
  std::string big(4096, 'z');
  request->PutString(big);

  auto read = Roundtrip(protocol, request);
  auto* bin = dynamic_cast<BinaryCall*>(read.get());
  ASSERT_NE(bin, nullptr);
  std::string_view view = bin->GetStringView();
  EXPECT_EQ(view, big);
  // Zero-copy means the view lives inside the call's payload image, not
  // in a heap string of its own.
  std::string payload = bin->Payload();
  EXPECT_NE(payload.find(big), std::string::npos);
}

// --- text: escaped tokens fall back to retained unescapes -------------------

TEST(TextZeroCopy, UnescapedTokenViewIsInPlace) {
  TextCall call{std::vector<std::string>{"s:inplace", "s:two%20words"}};
  std::string_view plain = call.GetStringView();
  std::string_view escaped = call.GetStringView();
  EXPECT_EQ(plain, "inplace");
  EXPECT_EQ(escaped, "two words");
  // The in-place view aliases the token storage itself.
  EXPECT_EQ(static_cast<const void*>(plain.data()),
            static_cast<const void*>(call.Tokens()[0].data() + 2));
}

// --- text: the encode cache -------------------------------------------------

TEST(TextEncodeCache, UnchangedCallReusesItsRenderedFrame) {
  const Protocol* protocol = FindProtocol("text");
  TextCall call;
  call.SetKind(CallKind::kRequest);
  call.SetCallId(5);
  call.SetTarget("@tcp:h:1#1#IDL:T:1.0");
  call.SetOperation("retry_me");
  call.PutString("same payload");

  net::ChannelPair pair = net::CreateInMemoryPair();
  protocol->WriteCall(*pair.a, call);
  EXPECT_TRUE(call.EncodingValidFor(call.Revision()));
  const char* cached_data = call.Encoding().data();
  protocol->WriteCall(*pair.a, call);  // a retry resending the same call
  // Same storage, not a re-render.
  EXPECT_EQ(call.Encoding().data(), cached_data);

  net::BufferedReader reader(*pair.b);
  std::string first, second;
  ASSERT_TRUE(reader.ReadLine(first));
  ASSERT_TRUE(reader.ReadLine(second));
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("retry_me"), std::string::npos);
}

TEST(TextEncodeCache, AnyMutationInvalidatesTheCache) {
  const Protocol* protocol = FindProtocol("text");
  TextCall call;
  call.SetKind(CallKind::kRequest);
  call.SetCallId(1);
  call.SetTarget("@tcp:h:1#1#IDL:T:1.0");
  call.SetOperation("op");

  net::ChannelPair pair = net::CreateInMemoryPair();
  protocol->WriteCall(*pair.a, call);
  ASSERT_TRUE(call.EncodingValidFor(call.Revision()));

  call.SetCallId(2);  // header mutation bumps the revision
  EXPECT_FALSE(call.EncodingValidFor(call.Revision()));
  protocol->WriteCall(*pair.a, call);

  call.PutString("late arg");  // payload mutation does too
  EXPECT_FALSE(call.EncodingValidFor(call.Revision()));
  protocol->WriteCall(*pair.a, call);

  net::BufferedReader reader(*pair.b);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_NE(line.find("REQ 1"), std::string::npos);
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_NE(line.find("REQ 2"), std::string::npos);
  EXPECT_EQ(line.find("late"), std::string::npos);
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_NE(line.find("REQ 2"), std::string::npos);
  EXPECT_NE(line.find("late%20arg"), std::string::npos);
}

// --- base-class fallback for custom Call subclasses -------------------------

// A deliberately minimal Call: only strings and bytes, stored decoded.
// It does NOT override the view getters, so Call's copy-and-retain
// fallback must make them correct anyway.
class MiniCall final : public Call {
 public:
  void PutBoolean(bool) override {}
  void PutChar(char) override {}
  void PutOctet(uint8_t) override {}
  void PutShort(int16_t) override {}
  void PutUShort(uint16_t) override {}
  void PutLong(int32_t) override {}
  void PutULong(uint32_t) override {}
  void PutLongLong(int64_t) override {}
  void PutULongLong(uint64_t) override {}
  void PutFloat(float) override {}
  void PutDouble(double) override {}
  void PutString(std::string_view v) override { values_.emplace_back(v); }
  void PutBytes(std::string_view v) override { values_.emplace_back(v); }
  bool GetBoolean() override { return false; }
  char GetChar() override { return 0; }
  uint8_t GetOctet() override { return 0; }
  int16_t GetShort() override { return 0; }
  uint16_t GetUShort() override { return 0; }
  int32_t GetLong() override { return 0; }
  uint32_t GetULong() override { return 0; }
  int64_t GetLongLong() override { return 0; }
  uint64_t GetULongLong() override { return 0; }
  float GetFloat() override { return 0; }
  double GetDouble() override { return 0; }
  std::string GetString() override { return values_.at(cursor_++); }
  std::string GetBytes() override { return values_.at(cursor_++); }
  void Begin(std::string_view) override {}
  void End() override {}
  bool HasMore() const override { return cursor_ < values_.size(); }
  size_t PayloadSize() const override { return values_.size(); }

 private:
  std::vector<std::string> values_;
  size_t cursor_ = 0;
};

TEST(CallViewFallback, BaseClassRetainsCopiesForViews) {
  MiniCall call;
  call.PutString("fallback string");
  call.PutBytes("fallback bytes");
  std::string_view s = call.GetStringView();
  std::string_view b = call.GetBytesView();
  // Both views stay valid together — retained storage never reallocates
  // out from under an earlier view.
  EXPECT_EQ(s, "fallback string");
  EXPECT_EQ(b, "fallback bytes");
  EXPECT_FALSE(call.HasMore());
}

}  // namespace
}  // namespace heidi::wire
