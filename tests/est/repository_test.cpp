#include "est/repository.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace heidi::est {
namespace {

constexpr const char* kSourceA = R"(
module Heidi {
  enum Status { Start, Stop };
  interface A { void f(in Status s); };
};
)";

constexpr const char* kSourceB = R"(
module Media {
  interface Player { void play(in string uri); };
  typedef sequence<Player> Players;
};
)";

TEST(InterfaceRepository, StartsEmpty) {
  InterfaceRepository ir;
  EXPECT_EQ(ir.SourceCount(), 0u);
  EXPECT_EQ(ir.FindByRepoId("IDL:Heidi/A:1.0"), nullptr);
  EXPECT_TRUE(ir.AllInterfaces().empty());
}

TEST(InterfaceRepository, AddSourceAndQuery) {
  InterfaceRepository ir;
  ir.AddSource(kSourceA, "a.idl");
  ir.AddSource(kSourceB, "b.idl");
  EXPECT_EQ(ir.SourceCount(), 2u);
  EXPECT_EQ(ir.SourceNames(), (std::vector<std::string>{"a.idl", "b.idl"}));

  const Node* a = ir.FindByRepoId("IDL:Heidi/A:1.0");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->Kind(), "Interface");
  EXPECT_EQ(a->Name(), "A");

  const Node* status = ir.FindByRepoId("IDL:Heidi/Status:1.0");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->Kind(), "Enum");

  const Node* players = ir.FindByRepoId("IDL:Media/Players:1.0");
  ASSERT_NE(players, nullptr);
  EXPECT_EQ(players->Kind(), "Alias");

  EXPECT_EQ(ir.FindByRepoId("IDL:No/Such:1.0"), nullptr);
}

TEST(InterfaceRepository, AllInterfacesSpansSources) {
  InterfaceRepository ir;
  ir.AddSource(kSourceA, "a.idl");
  ir.AddSource(kSourceB, "b.idl");
  auto interfaces = ir.AllInterfaces();
  ASSERT_EQ(interfaces.size(), 2u);
}

TEST(InterfaceRepository, ReplacingASourceReindexes) {
  InterfaceRepository ir;
  ir.AddSource("interface Old {};", "x.idl");
  ASSERT_NE(ir.FindByRepoId("IDL:Old:1.0"), nullptr);
  ir.AddSource("interface New {};", "x.idl");
  EXPECT_EQ(ir.SourceCount(), 1u);
  EXPECT_EQ(ir.FindByRepoId("IDL:Old:1.0"), nullptr);
  EXPECT_NE(ir.FindByRepoId("IDL:New:1.0"), nullptr);
}

TEST(InterfaceRepository, FindSource) {
  InterfaceRepository ir;
  ir.AddSource(kSourceA, "a.idl");
  const Node* root = ir.FindSource("a.idl");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->Kind(), "Root");
  EXPECT_EQ(ir.FindSource("missing.idl"), nullptr);
}

TEST(InterfaceRepository, SaveLoadRoundTrip) {
  InterfaceRepository ir;
  ir.AddSource(kSourceA, "a.idl");
  ir.AddSource(kSourceB, "b.idl");
  std::string blob = ir.Save();

  InterfaceRepository restored;
  restored.Load(blob);
  EXPECT_EQ(restored.SourceCount(), 2u);
  const Node* a = restored.FindByRepoId("IDL:Heidi/A:1.0");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(DeepEquals(*ir.FindSource("a.idl"), *restored.FindSource("a.idl")));
  // A second save is byte-identical (fixpoint).
  EXPECT_EQ(restored.Save(), blob);
}

TEST(InterfaceRepository, LoadReplacesContents) {
  InterfaceRepository ir;
  ir.AddSource(kSourceA, "a.idl");
  InterfaceRepository other;
  other.AddSource(kSourceB, "b.idl");
  ir.Load(other.Save());
  EXPECT_EQ(ir.SourceCount(), 1u);
  EXPECT_EQ(ir.FindByRepoId("IDL:Heidi/A:1.0"), nullptr);
  EXPECT_NE(ir.FindByRepoId("IDL:Media/Player:1.0"), nullptr);
}

TEST(InterfaceRepository, LoadRejectsGarbage) {
  InterfaceRepository ir;
  EXPECT_THROW(ir.Load("not a repository"), ParseError);
  EXPECT_THROW(ir.Load("IR 2 0\n"), ParseError);
  EXPECT_THROW(ir.Load("IR 1 1\nSOURCE x.idl\nEST 1\nN Root x\nX\n"),
               ParseError);  // missing ENDSOURCE
}

TEST(InterfaceRepository, SourceNamesWithSpacesSurvive) {
  InterfaceRepository ir;
  ir.AddSource("interface I {};", "dir with space/i.idl");
  InterfaceRepository restored;
  restored.Load(ir.Save());
  EXPECT_NE(restored.FindSource("dir with space/i.idl"), nullptr);
}

TEST(InterfaceRepository, BadSourceIdlPropagatesParseError) {
  InterfaceRepository ir;
  EXPECT_THROW(ir.AddSource("interface {", "bad.idl"), ParseError);
  EXPECT_EQ(ir.SourceCount(), 0u);
}

}  // namespace
}  // namespace heidi::est
