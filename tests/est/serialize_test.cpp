#include "est/serialize.h"

#include <gtest/gtest.h>

#include "est/builder.h"
#include "idl/sema.h"
#include "support/error.h"

namespace heidi::est {
namespace {

TEST(EstSerialize, SimpleNode) {
  Node n("Root", "r");
  n.SetProp("key", "value");
  std::string text = Serialize(n);
  EXPECT_EQ(text, "EST 1\nN Root r\nP key value\nX\n");
}

TEST(EstSerialize, EscapesSpacesAndNewlines) {
  Node n("K", "a b");
  n.SetProp("p", "line1\nline2");
  std::string text = Serialize(n);
  EXPECT_EQ(text.find("a b\n"), std::string::npos);
  auto round = Deserialize(text);
  EXPECT_EQ(round->Name(), "a b");
  EXPECT_EQ(round->GetProp("p"), "line1\nline2");
}

TEST(EstSerialize, RoundTripIsFixpoint) {
  Node n("Root", "");
  n.SetProp("a", "1");
  Node& child = n.NewChild("listOne", "Kid", "x");
  child.SetProp("deep", "yes");
  child.NewChild("inner", "Leaf", "l1");
  n.NewChild("listOne", "Kid", "y");
  n.NewChild("listTwo", "Other", "");

  std::string text = Serialize(n);
  auto round = Deserialize(text);
  EXPECT_TRUE(DeepEquals(n, *round));
  // Serializing the rebuilt tree gives identical text.
  EXPECT_EQ(Serialize(*round), text);
}

TEST(EstSerialize, RealEstRoundTrip) {
  idl::Specification spec = idl::ParseAndResolve(R"(
    module Heidi {
      enum Status { Start, Stop };
      interface S { void ping(); };
      typedef sequence<S> SSequence;
      interface A : S {
        void q(in Status s = Heidi::Start);
        readonly attribute Status button;
      };
    };
  )",
                                                 "A.idl");
  auto est = BuildEst(spec);
  auto round = Deserialize(Serialize(*est));
  EXPECT_TRUE(DeepEquals(*est, *round));
  EXPECT_EQ(est->TreeSize(), round->TreeSize());
}

TEST(EstDeserialize, RejectsMissingHeader) {
  EXPECT_THROW(Deserialize("N Root r\nX\n"), ParseError);
}

TEST(EstDeserialize, RejectsWrongVersion) {
  EXPECT_THROW(Deserialize("EST 9\nN Root r\nX\n"), ParseError);
}

TEST(EstDeserialize, RejectsUnterminatedNode) {
  EXPECT_THROW(Deserialize("EST 1\nN Root r\n"), ParseError);
}

TEST(EstDeserialize, RejectsPropOutsideNode) {
  EXPECT_THROW(Deserialize("EST 1\nP a b\n"), ParseError);
}

TEST(EstDeserialize, RejectsNodeOutsideList) {
  EXPECT_THROW(Deserialize("EST 1\nN Root r\nN Kid k\nX\nX\n"), ParseError);
}

TEST(EstDeserialize, RejectsUnclosedList) {
  EXPECT_THROW(Deserialize("EST 1\nN Root r\nL kids\nX\n"), ParseError);
}

TEST(EstDeserialize, RejectsMultipleRoots) {
  EXPECT_THROW(Deserialize("EST 1\nN A a\nX\nN B b\nX\n"), ParseError);
}

TEST(EstDeserialize, RejectsUnknownOpcode) {
  EXPECT_THROW(Deserialize("EST 1\nQ what\n"), ParseError);
}

TEST(EstDeserialize, ToleratesBlankLines) {
  auto n = Deserialize("EST 1\n\nN Root r\n\nX\n\n");
  EXPECT_EQ(n->Kind(), "Root");
}

}  // namespace
}  // namespace heidi::est
