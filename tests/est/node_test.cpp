#include "est/node.h"

#include <gtest/gtest.h>

namespace heidi::est {
namespace {

TEST(Node, KindAndName) {
  Node n("Interface", "A");
  EXPECT_EQ(n.Kind(), "Interface");
  EXPECT_EQ(n.Name(), "A");
}

TEST(Node, PropsInsertionOrderedAndOverwriting) {
  Node n("X", "");
  n.SetProp("b", "1");
  n.SetProp("a", "2");
  n.SetProp("b", "3");  // overwrite keeps position
  ASSERT_EQ(n.Props().size(), 2u);
  EXPECT_EQ(n.Props()[0].first, "b");
  EXPECT_EQ(n.Props()[0].second, "3");
  EXPECT_EQ(n.GetProp("a"), "2");
  EXPECT_EQ(n.GetProp("missing", "dflt"), "dflt");
  EXPECT_EQ(n.FindProp("missing"), nullptr);
  EXPECT_TRUE(n.HasProp("a"));
}

TEST(Node, ListsGroupChildren) {
  Node n("Interface", "A");
  n.NewChild("methodList", "Operation", "f");
  n.NewChild("attributeList", "Attribute", "button");
  n.NewChild("methodList", "Operation", "g");
  ASSERT_TRUE(n.HasList("methodList"));
  const auto* methods = n.FindList("methodList");
  ASSERT_EQ(methods->size(), 2u);
  EXPECT_EQ((*methods)[0]->Name(), "f");
  EXPECT_EQ((*methods)[1]->Name(), "g");
  EXPECT_EQ(n.FindList("attributeList")->size(), 1u);
  EXPECT_EQ(n.FindList("nope"), nullptr);
}

TEST(Node, ListNamesInsertionOrdered) {
  Node n("X", "");
  n.NewChild("bList", "K", "");
  n.NewChild("aList", "K", "");
  EXPECT_EQ(n.ListNames(), (std::vector<std::string>{"bList", "aList"}));
}

TEST(Node, TreeSize) {
  Node n("Root", "");
  Node& child = n.NewChild("l", "K", "c");
  child.NewChild("m", "K", "gc");
  EXPECT_EQ(n.TreeSize(), 3u);
}

TEST(Node, DeepEqualsAndClone) {
  Node n("Root", "r");
  n.SetProp("k", "v");
  Node& c = n.NewChild("l", "K", "c");
  c.SetProp("x", "y");

  auto clone = n.Clone();
  EXPECT_TRUE(DeepEquals(n, *clone));

  clone->SetProp("k", "other");
  EXPECT_FALSE(DeepEquals(n, *clone));
}

TEST(Node, DeepEqualsDiscriminates) {
  Node a("K", "n");
  Node b("K", "n");
  EXPECT_TRUE(DeepEquals(a, b));
  b.NewChild("l", "K", "c");
  EXPECT_FALSE(DeepEquals(a, b));
  a.NewChild("l", "K", "different");
  EXPECT_FALSE(DeepEquals(a, b));
}

}  // namespace
}  // namespace heidi::est
