// Validates the EST structure of Fig 7: like nodes are grouped into lists
// (the button attribute sits in attributeList, not between methods), and
// nodes carry the Fig 8 properties (type/typeName/IsVariable/Parent).
#include "est/builder.h"

#include <gtest/gtest.h>

#include "idl/sema.h"

namespace heidi::est {
namespace {

constexpr const char* kFig3Idl = R"(
module Heidi {
  // External declaration of Heidi::S
  interface S;
  // Heidi::Status
  enum Status {Start, Stop};
  // Heidi::SSequence
  typedef sequence<S> SSequence;
  // Heidi::A
  interface A : S
  {
    void f(in A a);
    void g(incopy S s);
    void p(in long l = 0);
    void q(in Status s = Heidi::Start);
    readonly attribute Status button;
    void s(in boolean b = TRUE);
    void t(in SSequence s);
  };
};
)";

std::unique_ptr<Node> BuildFig3() {
  idl::Specification spec = idl::ParseAndResolve(kFig3Idl, "A.idl");
  return BuildEst(spec);
}

const Node& Only(const Node& parent, std::string_view list) {
  const auto* nodes = parent.FindList(list);
  EXPECT_NE(nodes, nullptr) << "missing list " << list;
  EXPECT_EQ(nodes->size(), 1u);
  return *nodes->front();
}

TEST(EstBuilder, RootProps) {
  auto root = BuildFig3();
  EXPECT_EQ(root->Kind(), "Root");
  EXPECT_EQ(root->GetProp("sourceName"), "A.idl");
}

TEST(EstBuilder, FlattenedRootLists) {
  auto root = BuildFig3();
  // Module contents are mirrored into flattened root lists.
  EXPECT_EQ(root->FindList("interfaceList")->size(), 1u);  // A (not fwd S)
  EXPECT_EQ(root->FindList("enumList")->size(), 1u);
  EXPECT_EQ(root->FindList("aliasList")->size(), 1u);
  EXPECT_EQ(root->FindList("moduleList")->size(), 1u);
}

TEST(EstBuilder, ModuleNodeHasDirectChildren) {
  auto root = BuildFig3();
  const Node& mod = Only(*root, "moduleList");
  EXPECT_EQ(mod.Kind(), "Module");
  EXPECT_EQ(mod.GetProp("moduleName"), "Heidi");
  EXPECT_EQ(mod.FindList("interfaceList")->size(), 1u);
  EXPECT_EQ(mod.FindList("enumList")->size(), 1u);
}

TEST(EstBuilder, InterfaceNodeProps) {
  auto root = BuildFig3();
  const Node& a = Only(*root, "interfaceList");
  EXPECT_EQ(a.Kind(), "Interface");
  EXPECT_EQ(a.Name(), "A");
  EXPECT_EQ(a.GetProp("interfaceName"), "Heidi::A");
  EXPECT_EQ(a.GetProp("flatName"), "Heidi_A");
  EXPECT_EQ(a.GetProp("repoId"), "IDL:Heidi/A:1.0");
  // Fig 8: $n2->AddProp("Parent", "Heidi_S").
  EXPECT_EQ(a.GetProp("Parent"), "Heidi_S");
  EXPECT_EQ(a.GetProp("hasBases"), "true");
}

TEST(EstBuilder, InheritedListMarksExternalBases) {
  auto root = BuildFig3();
  const Node& a = Only(*root, "interfaceList");
  const Node& base = Only(a, "inheritedList");
  EXPECT_EQ(base.GetProp("inheritedName"), "Heidi::S");
  EXPECT_EQ(base.GetProp("flatName"), "Heidi_S");
  EXPECT_EQ(base.GetProp("external"), "true");
}

TEST(EstBuilder, MethodsGroupedDespiteInterleavedAttribute) {
  // The Fig 7 point: button appears between q and s in source, but the
  // EST keeps all six methods contiguous in methodList.
  auto root = BuildFig3();
  const Node& a = Only(*root, "interfaceList");
  const auto* methods = a.FindList("methodList");
  ASSERT_EQ(methods->size(), 6u);
  std::vector<std::string> names;
  for (const auto& m : *methods) names.push_back(m->Name());
  EXPECT_EQ(names,
            (std::vector<std::string>{"f", "g", "p", "q", "s", "t"}));
  const auto* attrs = a.FindList("attributeList");
  ASSERT_EQ(attrs->size(), 1u);
  EXPECT_EQ(attrs->front()->Name(), "button");
}

TEST(EstBuilder, ParamPropsMatchFig8) {
  auto root = BuildFig3();
  const Node& a = Only(*root, "interfaceList");
  const Node& f = *a.FindList("methodList")->at(0);
  EXPECT_EQ(f.GetProp("type"), "void");  // Fig 8: return type tag
  const Node& param = Only(f, "paramList");
  EXPECT_EQ(param.GetProp("paramName"), "a");
  EXPECT_EQ(param.GetProp("type"), "objref");
  EXPECT_EQ(param.GetProp("typeName"), "Heidi_A");
  EXPECT_EQ(param.GetProp("paramType"), "Heidi::A");
  EXPECT_EQ(param.GetProp("IsVariable"), "true");
  EXPECT_EQ(param.GetProp("direction"), "in");
  EXPECT_EQ(param.GetProp("defaultParam"), "");
}

TEST(EstBuilder, IncopyDirectionRecorded) {
  auto root = BuildFig3();
  const Node& a = Only(*root, "interfaceList");
  const Node& g = *a.FindList("methodList")->at(1);
  EXPECT_EQ(Only(g, "paramList").GetProp("direction"), "incopy");
}

TEST(EstBuilder, DefaultParamSpellings) {
  auto root = BuildFig3();
  const Node& a = Only(*root, "interfaceList");
  const auto* methods = a.FindList("methodList");
  EXPECT_EQ(Only(*methods->at(2), "paramList").GetProp("defaultParam"), "0");
  EXPECT_EQ(Only(*methods->at(3), "paramList").GetProp("defaultParam"),
            "Start");
  EXPECT_EQ(Only(*methods->at(4), "paramList").GetProp("defaultParam"),
            "TRUE");
}

TEST(EstBuilder, AttributeProps) {
  auto root = BuildFig3();
  const Node& a = Only(*root, "interfaceList");
  const Node& button = Only(a, "attributeList");
  EXPECT_EQ(button.GetProp("attributeQualifier"), "readonly");
  EXPECT_EQ(button.GetProp("attributeType"), "Heidi::Status");
  EXPECT_EQ(button.GetProp("type"), "enum");
  EXPECT_EQ(button.GetProp("typeName"), "Heidi_Status");
}

TEST(EstBuilder, AliasNodeMatchesFig8) {
  auto root = BuildFig3();
  const Node& alias = Only(*root, "aliasList");
  EXPECT_EQ(alias.Kind(), "Alias");
  EXPECT_EQ(alias.Name(), "SSequence");
  EXPECT_EQ(alias.GetProp("type"), "sequence");  // Fig 8
  const Node& seq = Only(alias, "sequenceList");
  EXPECT_EQ(seq.Kind(), "Sequence");
  EXPECT_EQ(seq.GetProp("type"), "objref");         // Fig 8
  EXPECT_EQ(seq.GetProp("typeName"), "Heidi_S");    // Fig 8
  EXPECT_EQ(seq.GetProp("IsVariable"), "true");     // Fig 8
  EXPECT_EQ(seq.GetProp("bound"), "0");
}

TEST(EstBuilder, EnumNode) {
  auto root = BuildFig3();
  const Node& en = Only(*root, "enumList");
  EXPECT_EQ(en.GetProp("members"), "Start,Stop");  // Fig 8 members array
  const auto* members = en.FindList("memberList");
  ASSERT_EQ(members->size(), 2u);
  EXPECT_EQ((*members)[0]->GetProp("memberName"), "Start");
}

TEST(EstBuilder, AllMethodListIncludesInheritedDefinedBases) {
  idl::Specification spec = idl::ParseAndResolve(R"(
    interface Base { void alpha(); };
    interface Mid : Base { void beta(); };
    interface Leaf : Mid { void gamma(); };
  )");
  auto root = BuildEst(spec);
  const Node& leaf = *root->FindList("interfaceList")->at(2);
  const auto* all = leaf.FindList("allMethodList");
  ASSERT_EQ(all->size(), 3u);
  EXPECT_EQ((*all)[0]->Name(), "alpha");
  EXPECT_EQ((*all)[0]->GetProp("definedIn"), "Base");
  EXPECT_EQ((*all)[2]->Name(), "gamma");
  EXPECT_EQ((*all)[2]->GetProp("definedIn"), "Leaf");
}

TEST(EstBuilder, DiamondBasesVisitedOnce) {
  idl::Specification spec = idl::ParseAndResolve(R"(
    interface R { void r(); };
    interface L : R { void l(); };
    interface Rt : R { void rt(); };
    interface D : L, Rt { void d(); };
  )");
  auto root = BuildEst(spec);
  const Node& d = *root->FindList("interfaceList")->at(3);
  EXPECT_EQ(d.FindList("allMethodList")->size(), 4u);  // r once
}

TEST(EstBuilder, StructAndConstNodes) {
  idl::Specification spec = idl::ParseAndResolve(R"(
    struct Point { double x; string label; };
    const long MAX = 42;
  )");
  auto root = BuildEst(spec);
  const Node& st = *root->FindList("structList")->front();
  EXPECT_EQ(st.GetProp("IsVariable"), "true");  // has a string field
  const auto* fields = st.FindList("fieldList");
  ASSERT_EQ(fields->size(), 2u);
  EXPECT_EQ((*fields)[0]->GetProp("fieldType"), "double");
  const Node& c = *root->FindList("constList")->front();
  EXPECT_EQ(c.GetProp("constValue"), "42");
  EXPECT_EQ(c.GetProp("constType"), "long");
}

TEST(SpellType, Spellings) {
  idl::TypeRef t = idl::TypeRef::Primitive(idl::PrimKind::kULong);
  EXPECT_EQ(SpellType(t), "unsigned long");
  idl::TypeRef seq = idl::TypeRef::Sequence(
      idl::TypeRef::Primitive(idl::PrimKind::kString), 8);
  EXPECT_EQ(SpellType(seq), "sequence<string,8>");
  idl::TypeRef bounded = idl::TypeRef::Primitive(idl::PrimKind::kString);
  bounded.string_bound = 16;
  EXPECT_EQ(SpellType(bounded), "string<16>");
}

TEST(SpellLiteral, Spellings) {
  idl::Literal lit;
  lit.kind = idl::Literal::Kind::kInt;
  lit.int_value = -5;
  EXPECT_EQ(SpellLiteral(lit), "-5");
  lit.kind = idl::Literal::Kind::kBool;
  lit.bool_value = true;
  EXPECT_EQ(SpellLiteral(lit), "TRUE");
  lit.kind = idl::Literal::Kind::kString;
  lit.text = "a\"b";
  EXPECT_EQ(SpellLiteral(lit), "\"a\\\"b\"");
  lit.kind = idl::Literal::Kind::kChar;
  lit.text = "\n";
  EXPECT_EQ(SpellLiteral(lit), "'\\n'");
}

}  // namespace
}  // namespace heidi::est
