// Failure injection: malformed frames, bad references, unknown objects
// and operations, dead endpoints, mid-call shutdown.
#include <gtest/gtest.h>

#include <thread>

#include "demo/demo.h"
#include "net/tcp.h"
#include "orb/orb.h"

namespace heidi::orb {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    demo::ForceDemoRegistration();
    server_ = std::make_unique<Orb>();
    server_->ListenTcp();
    client_ = std::make_unique<Orb>();
  }

  void TearDown() override {
    client_->Shutdown();
    server_->Shutdown();
  }

  std::unique_ptr<Orb> server_;
  std::unique_ptr<Orb> client_;
};

TEST_F(FailureTest, UnknownObjectIdIsSystemError) {
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  ref.object_id = 999999;  // forge a reference to a nonexistent object
  auto echo = client_->ResolveAs<HdEcho>(ref.ToString());
  try {
    echo->echo("x");
    FAIL() << "expected DispatchError";
  } catch (const DispatchError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown object"),
              std::string::npos);
  }
}

TEST_F(FailureTest, UnknownOperationIsSystemError) {
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  auto call = client_->NewRequest(ref, "no_such_operation", false);
  EXPECT_THROW(client_->Invoke(ref, *call), DispatchError);
}

TEST_F(FailureTest, UnregisteredRepoIdOnExportFailsAtDispatch) {
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Unknown/Type:1.0");
  auto call = client_->NewRequest(ref, "echo", false);
  try {
    client_->Invoke(ref, *call);
    FAIL() << "expected DispatchError";
  } catch (const DispatchError& e) {
    EXPECT_NE(std::string(e.what()).find("no skeleton factory"),
              std::string::npos);
  }
}

TEST_F(FailureTest, ResolveUnregisteredRepoIdThrows) {
  EXPECT_THROW(client_->Resolve("@tcp:127.0.0.1:1#1#IDL:No/Stub:1.0"),
               RefError);
}

TEST_F(FailureTest, NarrowToWrongInterfaceThrows) {
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  EXPECT_THROW(client_->ResolveAs<HdA>(ref.ToString()), RefError);
}

TEST_F(FailureTest, ResolveNilThrows) {
  EXPECT_THROW(client_->Resolve("@nil"), RefError);
}

TEST_F(FailureTest, ConnectToDeadEndpointThrows) {
  uint16_t dead_port;
  {
    net::TcpAcceptor temp;
    dead_port = temp.Port();
  }
  std::string ref =
      "@tcp:127.0.0.1:" + std::to_string(dead_port) + "#1#IDL:Heidi/Echo:1.0";
  auto echo = client_->ResolveAs<HdEcho>(ref);  // resolving is lazy...
  EXPECT_THROW(echo->echo("x"), NetError);      // ...connecting is not
}

TEST_F(FailureTest, GarbageOnTheWireClosesConnectionNotServer) {
  // A peer that sends garbage gets dropped; the server keeps serving
  // well-behaved clients.
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  auto raw = net::TcpConnect("127.0.0.1", server_->TcpPort());
  std::string garbage = "THIS IS NOT A VALID REQUEST LINE\n";
  raw->WriteAll(garbage.data(), garbage.size());
  char buf[64];
  EXPECT_EQ(raw->Read(buf, sizeof buf), 0u);  // server closed on us

  auto echo = client_->ResolveAs<HdEcho>(ref.ToString());
  EXPECT_EQ(echo->echo("fine"), "fine");
}

TEST_F(FailureTest, TruncatedRequestLineDropped) {
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  auto raw = net::TcpConnect("127.0.0.1", server_->TcpPort());
  std::string partial = "REQ 1 W ";  // no newline, then hang up
  raw->WriteAll(partial.data(), partial.size());
  raw->Close();
  // The server must survive; prove it with a real call.
  auto echo = client_->ResolveAs<HdEcho>(ref.ToString());
  EXPECT_EQ(echo->add(1, 2), 3);
}

TEST_F(FailureTest, MalformedArgumentsAreUserVisibleError) {
  // Hand-build a request whose payload does not match the signature.
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  auto call = client_->NewRequest(ref, "add", false);
  call->PutString("not a number");  // add() expects two longs
  EXPECT_THROW(client_->Invoke(ref, *call), HdError);
  // Connection and server still healthy.
  auto echo = client_->ResolveAs<HdEcho>(ref.ToString());
  EXPECT_EQ(echo->add(3, 4), 7);
}

TEST_F(FailureTest, StaleLocalReferenceReported) {
  demo::AImpl a_impl;
  ObjectRef aref = server_->ExportObject(&a_impl, "IDL:Heidi/A:1.0");
  demo::SImpl s_impl(1);
  ObjectRef sref = server_->ExportObject(&s_impl, "IDL:Heidi/S:1.0");
  server_->UnexportObject(&s_impl);  // now stale

  auto a = client_->ResolveAs<HdA>(aref.ToString());
  auto s_stub = client_->ResolveAs<HdS>(sref.ToString());
  // Passing the stale reference back to the server fails inside g().
  EXPECT_THROW(a->g(s_stub.get()), HdError);
}

TEST_F(FailureTest, CallAfterServerShutdownThrows) {
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  auto echo = client_->ResolveAs<HdEcho>(ref.ToString());
  EXPECT_EQ(echo->echo("up"), "up");
  server_->Shutdown();
  EXPECT_THROW(echo->echo("down"), NetError);
}

TEST_F(FailureTest, ExportWithoutEndpointThrows) {
  Orb endpointless;
  demo::EchoImpl impl;
  EXPECT_THROW(endpointless.ExportObject(&impl, "IDL:Heidi/Echo:1.0"),
               HdError);
}

TEST_F(FailureTest, ExportNullThrows) {
  EXPECT_THROW(server_->ExportObject(nullptr, "IDL:Heidi/Echo:1.0"),
               HdError);
}

TEST_F(FailureTest, UnknownProtocolOptionThrows) {
  OrbOptions options;
  options.protocol = "carrier-pigeon";
  EXPECT_THROW(Orb bad(options), HdError);
}

TEST_F(FailureTest, UnknownInprocTargetThrows) {
  auto echo =
      client_->ResolveAs<HdEcho>("@inproc:ghost:0#1#IDL:Heidi/Echo:1.0");
  EXPECT_THROW(echo->echo("x"), NetError);
}

TEST_F(FailureTest, DuplicateInprocNameThrows) {
  OrbOptions options;
  options.inproc_name = "dup-name-test";
  Orb first(options);
  EXPECT_THROW(Orb second(options), HdError);
}

TEST_F(FailureTest, DoubleListenThrows) {
  EXPECT_THROW(server_->ListenTcp(), HdError);
}

TEST_F(FailureTest, ShutdownIsIdempotent) {
  server_->Shutdown();
  server_->Shutdown();
  SUCCEED();
}

}  // namespace
}  // namespace heidi::orb
