// The paper's headline claim — "all aspects of the underlying ORB can be
// configured" — exercised for the wire protocol: an application-defined
// protocol, registered at runtime, carries real remote calls between orbs
// that merely name it in OrbOptions. The protocol here is deliberately
// silly (ROT13-obfuscated text lines) to prove the point that the ORB
// core has no opinion about bytes on the wire.
#include <gtest/gtest.h>

#include "demo/demo.h"
#include "net/inmemory.h"
#include "orb/orb.h"
#include "support/strings.h"
#include "wire/protocol.h"
#include "wire/text.h"

namespace heidi::orb {
namespace {

char Rot13(char c) {
  if (c >= 'a' && c <= 'z') return static_cast<char>('a' + (c - 'a' + 13) % 26);
  if (c >= 'A' && c <= 'Z') return static_cast<char>('A' + (c - 'A' + 13) % 26);
  return c;
}

std::string Rot13(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = Rot13(c);
  return out;
}

// A complete wire protocol built purely on the public API: TextCall for
// payload encoding, one obfuscated line per call.
class Rot13Protocol final : public wire::Protocol {
 public:
  std::string_view Name() const override { return "rot13"; }

  std::unique_ptr<wire::Call> NewCall() const override {
    return std::make_unique<wire::TextCall>();
  }

  void WriteCall(net::ByteChannel& channel,
                 const wire::Call& call) const override {
    const auto& text = dynamic_cast<const wire::TextCall&>(call);
    std::string line;
    if (call.Kind() == wire::CallKind::kRequest) {
      line = "Q " + std::to_string(call.CallId()) + " " +
             (call.Oneway() ? "1" : "0") + " " +
             str::EscapeToken(call.Target()) + " " +
             str::EscapeToken(call.Operation());
    } else {
      line = "P " + std::to_string(call.CallId()) + " " +
             std::to_string(static_cast<int>(call.Status())) + " " +
             str::EscapeToken(call.ErrorText());
    }
    for (const std::string& token : text.Tokens()) line += " " + token;
    line = Rot13(line);
    line += "\n";
    channel.WriteAll(line.data(), line.size());
  }

  std::unique_ptr<wire::Call> ReadCall(
      net::BufferedReader& reader) const override {
    std::string line;
    if (!reader.ReadLine(line)) return nullptr;
    line = Rot13(line);  // rot13 is its own inverse
    auto fields = str::Split(line, ' ');
    if (fields.size() < 2) throw MarshalError("short rot13 line");
    bool is_request = fields[0] == "Q";
    if (!is_request && fields[0] != "P") {
      throw MarshalError("bad rot13 verb");
    }
    size_t header_fields = is_request ? 5 : 4;
    if (fields.size() < header_fields) {
      throw MarshalError("short rot13 header");
    }
    auto call = std::make_unique<wire::TextCall>(std::vector<std::string>(
        fields.begin() + static_cast<long>(header_fields), fields.end()));
    call->SetCallId(std::strtoull(fields[1].c_str(), nullptr, 10));
    if (is_request) {
      call->SetKind(wire::CallKind::kRequest);
      call->SetOneway(fields[2] == "1");
      call->SetTarget(str::UnescapeToken(fields[3]));
      call->SetOperation(str::UnescapeToken(fields[4]));
    } else {
      call->SetKind(wire::CallKind::kReply);
      call->SetStatus(static_cast<wire::CallStatus>(std::stoi(fields[2])));
      call->SetErrorText(str::UnescapeToken(fields[3]));
    }
    return call;
  }
};

const wire::Protocol* EnsureRegistered() {
  static Rot13Protocol protocol;
  static bool registered = [] {
    wire::RegisterProtocol(&protocol);
    return true;
  }();
  (void)registered;
  return &protocol;
}

TEST(CustomProtocol, RegistersAndIsDiscoverable) {
  EnsureRegistered();
  EXPECT_EQ(wire::FindProtocol("rot13"), EnsureRegistered());
}

TEST(CustomProtocol, CarriesRealRemoteCalls) {
  EnsureRegistered();
  demo::ForceDemoRegistration();
  OrbOptions options;
  options.protocol = "rot13";
  Orb server(options);
  server.ListenTcp();
  Orb client(options);
  demo::EchoImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  auto echo = client.ResolveAs<HdEcho>(ref.ToString());

  EXPECT_EQ(echo->add(20, 22), 42);
  EXPECT_EQ(echo->echo("mixed Case and 123"), "mixed Case and 123");
  echo->post("oneway over rot13");
  EXPECT_TRUE(impl.WaitForPosts(1));

  demo::ThrowingEcho bad;
  ObjectRef bad_ref = server.ExportObject(&bad, "IDL:Heidi/Echo:1.0");
  auto bad_echo = client.ResolveAs<HdEcho>(bad_ref.ToString());
  EXPECT_THROW(bad_echo->add(1, 1), RemoteError);

  client.Shutdown();
  server.Shutdown();
}

TEST(CustomProtocol, WireBytesAreActuallyObfuscated) {
  EnsureRegistered();
  const wire::Protocol* protocol = wire::FindProtocol("rot13");
  auto call = protocol->NewCall();
  call->SetKind(wire::CallKind::kRequest);
  call->SetTarget("@tcp:h:1#1#IDL:T:1.0");
  call->SetOperation("frobnicate");
  net::ChannelPair pair = net::CreateInMemoryPair();
  protocol->WriteCall(*pair.a, *call);
  std::string raw(512, '\0');
  raw.resize(pair.b->Read(raw.data(), raw.size()));
  EXPECT_EQ(raw.find("frobnicate"), std::string::npos);  // obfuscated
  EXPECT_NE(raw.find("seboavpngr"), std::string::npos);  // rot13 of it
}

}  // namespace
}  // namespace heidi::orb
