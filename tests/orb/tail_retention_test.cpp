// Tail-based retention end-to-end, under the same seeded FaultPlan
// machinery as the CI fault matrix, across both wire protocols:
//
//   * every call that errored, retried, or had an injected fault in its
//     window is promoted to the retained ring — anomalies are never
//     sampled away;
//   * the healthy workload stays mostly un-promoted (bounded fraction);
//   * no call — healthy or not — ever carries a wire trace context:
//     tail retention's head decision is "never", so the wire stays
//     clean and promotion happens purely at completion, locally.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "demo/demo.h"
#include "net/fault.h"
#include "obs/retention.h"
#include "obs/span.h"
#include "obs/tracer.h"
#include "orb/interceptor.h"
#include "orb/orb.h"
#include "support/error.h"

namespace heidi::orb {
namespace {

uint64_t TailSeedFromEnv() {
  const char* env = std::getenv("HEIDI_FAULT_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

// Counts requests and asserts none of them carries a wire trace context.
class WireContextAuditor : public ServerInterceptor {
 public:
  void PreDispatch(const wire::Call& request) override {
    seen_.fetch_add(1, std::memory_order_relaxed);
    if (request.Trace().Valid()) {
      stamped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  uint64_t Seen() const { return seen_.load(std::memory_order_relaxed); }
  uint64_t Stamped() const {
    return stamped_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> seen_{0};
  std::atomic<uint64_t> stamped_{0};
};

class TailRetentionMatrixTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    demo::ForceDemoRegistration();
    // Extra ring shards: client and server spans of the same call commit
    // near-simultaneously, and the retained ring's try-lock drops on
    // contention by design — more shards make a collision (and thus a
    // dropped anomaly, which would fail the 100%-retained assertion
    // below) vanishingly unlikely.
    tracer_ = std::make_shared<obs::Tracer>(obs::TracerOptions{
        .ring_shards = 64, .retention = obs::MakeTailRetention()});
    auditor_ = std::make_shared<WireContextAuditor>();
    OrbOptions server_options;
    server_options.protocol = GetParam();
    server_options.tracer = tracer_;
    server_ = std::make_unique<Orb>(server_options);
    server_->AddServerInterceptor(auditor_);
    server_->ListenTcp();
    ref_ = server_->ExportObject(&impl_, "IDL:Heidi/Echo:1.0");
  }

  void TearDown() override {
    if (client_ != nullptr) client_->Shutdown();
    server_->Shutdown();
  }

  Orb& Client(const net::FaultPlan* plan) {
    OrbOptions options;
    options.protocol = GetParam();
    options.tracer = tracer_;
    if (plan != nullptr) {
      options.fault_injector = std::make_shared<net::FaultInjector>(*plan);
    }
    options.retry.max_attempts = 6;
    options.retry.initial_backoff_ms = 1;
    options.retry.max_backoff_ms = 20;
    options.call_timeout_ms = 5000;
    client_ = std::make_unique<Orb>(options);
    return *client_;
  }

  // Client-kind retained spans whose record shows an anomaly.
  size_t RetainedAnomalousClientSpans() const {
    size_t n = 0;
    for (const obs::SpanRecord& span : tracer_->Ring().Snapshot()) {
      if (span.kind != obs::SpanKind::kClient) continue;
      if (!span.error.empty() || span.flags != 0) ++n;
    }
    return n;
  }

  std::shared_ptr<obs::Tracer> tracer_;
  std::shared_ptr<WireContextAuditor> auditor_;
  demo::EchoImpl impl_;
  std::unique_ptr<Orb> server_;
  std::unique_ptr<Orb> client_;
  ObjectRef ref_;
};

TEST_P(TailRetentionMatrixTest, EveryAnomalousCallIsRetained) {
  net::FaultPlan plan;
  plan.seed = TailSeedFromEnv();
  plan.read_error_rate = 0.05;
  plan.write_error_rate = 0.05;
  plan.connect_refuse_rate = 0.05;
  Orb& client = Client(&plan);

  constexpr int kCalls = 100;
  int anomalous = 0;
  for (int i = 0; i < kCalls; ++i) {
    OrbStats before = client.Stats();
    auto call = client.NewRequest(ref_, "add", false);
    call->PutLong(i);
    call->PutLong(1);
    call->SetIdempotent(true);
    bool errored = false;
    try {
      EXPECT_EQ(client.Invoke(ref_, *call)->GetLong(), i + 1);
    } catch (const NetError&) {
      errored = true;  // retries exhausted: clean transport failure
    }
    OrbStats after = client.Stats();
    // The same signals FinishInvokeTrace uses to flag the span: an
    // error surfaced, a retry happened, or a fault fired in the window.
    if (errored || after.retries > before.retries ||
        after.faults_injected > before.faults_injected) {
      ++anomalous;
    }
  }
  ASSERT_GT(anomalous, 0) << "fault plan injected nothing; raise rates";

  // Invoke() commits the client span before returning, so by here every
  // anomalous call must already sit in the retained ring. (The tracer
  // errs on keeping too much — a fault can tag a neighboring call — so
  // >= is the exact contract, not an approximation.)
  EXPECT_GE(RetainedAnomalousClientSpans(), static_cast<size_t>(anomalous));
  EXPECT_EQ(tracer_->Ring().Dropped(), 0u);
}

TEST_P(TailRetentionMatrixTest, HealthyWorkloadStaysMostlyUnpromoted) {
  Orb& client = Client(nullptr);  // no faults: a healthy workload
  constexpr int kCalls = 200;
  for (int i = 0; i < kCalls; ++i) {
    auto call = client.NewRequest(ref_, "add", false);
    call->PutLong(i);
    call->PutLong(2);
    EXPECT_EQ(client.Invoke(ref_, *call)->GetLong(), i + 2);
  }
  // Every call was recorded provisionally (client span at minimum)...
  EXPECT_GE(tracer_->ProvisionalRing().Recorded(),
            static_cast<uint64_t>(kCalls));
  // ...but only latency outliers may have been promoted: the bound
  // matches the bench gate's tail_retained_per_op <= 0.25 (scheduler
  // hiccups above the 1ms floor are possible on a loaded runner, a
  // wholesale promotion is not).
  size_t retained_client = 0;
  for (const obs::SpanRecord& span : tracer_->Ring().Snapshot()) {
    if (span.kind == obs::SpanKind::kClient) ++retained_client;
  }
  EXPECT_LE(retained_client, static_cast<size_t>(kCalls / 4));
}

TEST_P(TailRetentionMatrixTest, NoCallCarriesWireContext) {
  net::FaultPlan plan;
  plan.seed = TailSeedFromEnv();
  plan.read_error_rate = 0.04;
  Orb& client = Client(&plan);

  constexpr int kCalls = 60;
  for (int i = 0; i < kCalls; ++i) {
    auto call = client.NewRequest(ref_, "add", false);
    call->PutLong(i);
    call->PutLong(3);
    call->SetIdempotent(true);
    try {
      EXPECT_EQ(client.Invoke(ref_, *call)->GetLong(), i + 3);
    } catch (const NetError&) {
      // Acceptable: the wire-context invariant is what's under test.
    }
  }
  // The server saw real traffic, and not one request — healthy, retried,
  // or faulted — was stamped with a propagating trace context.
  EXPECT_GT(auditor_->Seen(), 0u);
  EXPECT_EQ(auditor_->Stamped(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, TailRetentionMatrixTest, ::testing::Values("text", "hiop"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

}  // namespace
}  // namespace heidi::orb
