// Concurrency stress: many client orbs, many connections, interleaved
// call shapes, servers calling back into clients — the traffic pattern of
// a real Heidi control plane, at small scale but full concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "demo/demo.h"
#include "orb/orb.h"

namespace heidi::orb {
namespace {

TEST(Stress, ManyClientsManyConnections) {
  demo::ForceDemoRegistration();
  Orb server;
  server.ListenTcp();
  demo::EchoImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  constexpr int kClients = 6;
  constexpr int kCallsPerClient = 120;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        Orb client;  // separate orb => separate connection
        auto echo = client.ResolveAs<HdEcho>(ref.ToString());
        for (int i = 0; i < kCallsPerClient; ++i) {
          switch (i % 3) {
            case 0:
              if (echo->add(c, i) != c + i) failures.fetch_add(1);
              break;
            case 1:
              if (echo->echo("c" + std::to_string(i)) !=
                  "c" + std::to_string(i)) {
                failures.fetch_add(1);
              }
              break;
            case 2:
              if (static_cast<bool>(echo->flip(::XFalse)) != true) {
                failures.fetch_add(1);
              }
              break;
          }
        }
        client.Shutdown();
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.Stats().requests_served,
            static_cast<uint64_t>(kClients * kCallsPerClient));
  server.Shutdown();
}

TEST(Stress, BidirectionalCallbacksUnderConcurrency) {
  demo::ForceDemoRegistration();
  Orb server;
  server.ListenTcp();
  demo::AImpl server_a;
  ObjectRef ref = server.ExportObject(&server_a, "IDL:Heidi/A:1.0");

  constexpr int kThreads = 4;
  constexpr int kCalls = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        Orb client;
        client.ListenTcp();  // reachable for callbacks
        auto a = client.ResolveAs<HdA>(ref.ToString());
        demo::AImpl local;
        for (int i = 0; i < kCalls; ++i) {
          a->f(&local);  // server calls back local.value()
        }
        client.Shutdown();
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_a.Snapshot().f_calls, kThreads * kCalls);
  server.Shutdown();
}

TEST(Stress, ShutdownWhileClientsHammer) {
  demo::ForceDemoRegistration();
  auto server = std::make_unique<Orb>();
  server->ListenTcp();
  demo::EchoImpl impl;
  ObjectRef ref = server->ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  std::atomic<bool> stop{false};
  std::atomic<int> crashes{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      try {
        Orb client;
        auto echo = client.ResolveAs<HdEcho>(ref.ToString());
        while (!stop.load()) {
          try {
            echo->add(1, 1);
          } catch (const HdError&) {
            // Expected once the server goes away.
            break;
          }
        }
        client.Shutdown();
      } catch (...) {
        crashes.fetch_add(1);
      }
    });
  }
  // Let traffic flow, then yank the server out from under the clients.
  while (server->Stats().requests_served < 50) {
    std::this_thread::yield();
  }
  server->Shutdown();
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(crashes.load(), 0);
}

TEST(Stress, ManySmallObjectsExportedAndCalled) {
  demo::ForceDemoRegistration();
  Orb server;
  server.ListenTcp();
  constexpr int kObjects = 100;
  std::vector<std::unique_ptr<demo::SImpl>> impls;
  std::vector<std::string> refs;
  for (int i = 0; i < kObjects; ++i) {
    impls.push_back(std::make_unique<demo::SImpl>(i));
    refs.push_back(
        server.ExportObject(impls.back().get(), "IDL:Heidi/S:1.0")
            .ToString());
  }
  Orb client;
  for (int i = 0; i < kObjects; ++i) {
    auto s = client.ResolveAs<HdS>(refs[static_cast<size_t>(i)]);
    EXPECT_EQ(s->value(), i);
  }
  EXPECT_EQ(server.ExportedCount(), static_cast<size_t>(kObjects));
  EXPECT_EQ(client.Stats().connections_opened, 1u);  // one endpoint
  client.Shutdown();
  server.Shutdown();
}

}  // namespace
}  // namespace heidi::orb
