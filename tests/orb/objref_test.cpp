#include "orb/objref.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace heidi::orb {
namespace {

TEST(ObjectRef, ParsesPaperExample) {
  // §3.1: @tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0
  ObjectRef ref = ObjectRef::Parse("@tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0");
  EXPECT_EQ(ref.protocol, "tcp");
  EXPECT_EQ(ref.host, "galaxy.nec.com");
  EXPECT_EQ(ref.port, 1234);
  EXPECT_EQ(ref.object_id, 9876u);
  EXPECT_EQ(ref.repo_id, "IDL:Heidi/A:1.0");
}

TEST(ObjectRef, StringifyParseFixpoint) {
  ObjectRef ref;
  ref.protocol = "tcp";
  ref.host = "127.0.0.1";
  ref.port = 65535;
  ref.object_id = 18446744073709551615ull;
  ref.repo_id = "IDL:X/Y:1.0";
  EXPECT_EQ(ObjectRef::Parse(ref.ToString()), ref);
}

TEST(ObjectRef, RepoIdMayContainHash) {
  // SplitN(3) keeps everything after the second '#' as the repo id.
  ObjectRef ref = ObjectRef::Parse("@tcp:h:1#2#IDL:Odd#Name:1.0");
  EXPECT_EQ(ref.repo_id, "IDL:Odd#Name:1.0");
}

TEST(ObjectRef, InprocForm) {
  ObjectRef ref = ObjectRef::Parse("@inproc:myorb:0#5#IDL:T:1.0");
  EXPECT_EQ(ref.protocol, "inproc");
  EXPECT_EQ(ref.host, "myorb");
  EXPECT_EQ(ref.port, 0);
}

TEST(ObjectRef, NilForms) {
  EXPECT_TRUE(ObjectRef::Parse("@nil").IsNil());
  EXPECT_TRUE(ObjectRef::Parse("").IsNil());
  EXPECT_TRUE(ObjectRef::Nil().IsNil());
  EXPECT_EQ(ObjectRef::Nil().ToString(), "@nil");
}

TEST(ObjectRef, Endpoint) {
  ObjectRef ref = ObjectRef::Parse("@tcp:a.b:9#1#IDL:T:1.0");
  EXPECT_EQ(ref.Endpoint(), "tcp:a.b:9");
}

TEST(ObjectRef, MalformedThrows) {
  for (const char* bad : {
           "tcp:h:1#2#IDL:T:1.0",     // missing @
           "@tcp:h:1#2",              // missing type
           "@tcp:h#2#IDL:T:1.0",      // missing port
           "@tcp:h:xx#2#IDL:T:1.0",   // bad port
           "@tcp:h:99999#2#IDL:T:1.0",  // port out of range
           "@tcp:h:1#abc#IDL:T:1.0",  // bad object id
           "@tcp:h:1#2#",             // empty type
           "@:h:1#2#IDL:T:1.0",       // empty protocol
       }) {
    EXPECT_THROW(ObjectRef::Parse(bad), RefError) << bad;
  }
}

TEST(ObjectRef, Equality) {
  ObjectRef a = ObjectRef::Parse("@tcp:h:1#2#IDL:T:1.0");
  ObjectRef b = ObjectRef::Parse("@tcp:h:1#2#IDL:T:1.0");
  EXPECT_EQ(a, b);
  b.object_id = 3;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace heidi::orb
