// The multiplexed invocation pipeline: many threads (and many logical
// calls) share one cached connection, replies are matched out of order by
// call id, deadlines fail single calls without condemning the connection,
// and the server worker pool overlaps pipelined twoways while preserving
// oneway submission order.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "demo/demo.h"
#include "net/buffered.h"
#include "net/tcp.h"
#include "orb/orb.h"
#include "support/strings.h"

namespace heidi::orb {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

int ElapsedMs(Clock::time_point since) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - since)
                              .count());
}

// An Echo whose echo() holds its worker for `delay`; add() stays fast, so
// tests can prove calls overlap on one connection.
class SlowEcho : public demo::EchoImpl {
 public:
  explicit SlowEcho(std::chrono::milliseconds delay) : delay_(delay) {}
  HdString echo(HdStringView msg) override {
    std::this_thread::sleep_for(delay_);
    return HdString(msg);
  }

 private:
  std::chrono::milliseconds delay_;
};

TEST(CallMux, ManyThreadsShareOneConnectionWithoutInterleaving) {
  demo::ForceDemoRegistration();
  Orb server;
  server.ListenTcp();
  demo::EchoImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  Orb client;
  auto echo = client.ResolveAs<HdEcho>(ref.ToString());
  constexpr int kThreads = 8;
  constexpr int kCalls = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCalls; ++i) {
        std::string msg = "t" + std::to_string(t) + "i" + std::to_string(i);
        if (echo->echo(msg) != msg) failures.fetch_add(1);
        if (echo->add(t, i) != t + i) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // All 800 calls shared ONE cached connection — the old design would
  // have admitted them one at a time; the mux interleaves them safely.
  EXPECT_EQ(client.Stats().connections_opened, 1u);
  EXPECT_EQ(server.Stats().requests_served,
            static_cast<uint64_t>(kThreads * kCalls * 2));
  client.Shutdown();
  server.Shutdown();
}

TEST(CallMux, AsyncCallsPipelineAndOverlapOnOneConnection) {
  demo::ForceDemoRegistration();
  Orb server;
  server.ListenTcp();
  SlowEcho impl(300ms);
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  Orb client;
  auto echo = client.ResolveAs<HdEcho>(ref.ToString());
  auto start = Clock::now();
  constexpr int kInFlight = 4;
  std::vector<ReplyHandle> handles;
  for (int i = 0; i < kInFlight; ++i) {
    auto call = client.NewRequest(ref, "echo", false);
    call->PutString("m" + std::to_string(i));
    handles.push_back(client.InvokeAsync(ref, *call));
  }
  for (int i = 0; i < kInFlight; ++i) {
    auto reply = handles[static_cast<size_t>(i)].Get();
    EXPECT_EQ(reply->GetString(), "m" + std::to_string(i));
  }
  // Four 300ms calls pipelined over one connection into the server's
  // worker pool: far less than the 1200ms the serialized path needed.
  EXPECT_LT(ElapsedMs(start), 900);
  EXPECT_EQ(client.Stats().connections_opened, 1u);
  EXPECT_GE(client.Stats().inflight_highwater, 2u);
  client.Shutdown();
  server.Shutdown();
}

TEST(CallMux, DeadlineExpiryFailsOneCallNotTheConnection) {
  demo::ForceDemoRegistration();
  Orb server;
  server.ListenTcp();
  SlowEcho impl(2000ms);
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  Orb client;
  auto call = client.NewRequest(ref, "echo", false);
  call->PutString("slow");
  auto start = Clock::now();
  EXPECT_THROW(client.Invoke(ref, *call, /*timeout_ms=*/500), TimeoutError);
  // Acceptance bound: the timeout error lands within 2x the deadline.
  EXPECT_LT(ElapsedMs(start), 1000);
  EXPECT_EQ(client.Stats().calls_timed_out, 1u);

  // The connection is NOT condemned: a fast call on the same cached
  // connection succeeds while the abandoned one is still cooking
  // server-side (the worker pool lets it through).
  auto add = client.NewRequest(ref, "add", false);
  add->PutLong(20);
  add->PutLong(22);
  auto reply = client.Invoke(ref, *add, /*timeout_ms=*/-1);
  EXPECT_EQ(reply->GetLong(), 42);
  EXPECT_EQ(client.Stats().connections_opened, 1u);

  // When the abandoned call's reply finally arrives, the demux thread
  // drains and drops it instead of corrupting the stream.
  auto wait_start = Clock::now();
  while (client.Stats().stale_replies_dropped < 1 &&
         ElapsedMs(wait_start) < 5000) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(client.Stats().stale_replies_dropped, 1u);
  client.Shutdown();
  server.Shutdown();
}

TEST(CallMux, PerOrbDefaultDeadlineApplies) {
  demo::ForceDemoRegistration();
  Orb server;
  server.ListenTcp();
  SlowEcho impl(2000ms);
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  OrbOptions client_options;
  client_options.call_timeout_ms = 300;  // transmission policy, per-orb
  Orb client(client_options);
  auto echo = client.ResolveAs<HdEcho>(ref.ToString());
  EXPECT_THROW(echo->echo("slow"), TimeoutError);  // stub path, orb default
  EXPECT_EQ(echo->add(1, 2), 3);                   // fast ops unaffected
  client.Shutdown();
  server.Shutdown();
}

TEST(CallMux, AbandonedAsyncHandleDoesNotWedgeTheConnection) {
  demo::ForceDemoRegistration();
  Orb server;
  server.ListenTcp();
  demo::EchoImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  Orb client;
  {
    auto call = client.NewRequest(ref, "echo", false);
    call->PutString("never collected");
    ReplyHandle dropped = client.InvokeAsync(ref, *call);
    // Handle destroyed without Get(): the call is abandoned.
  }
  auto echo = client.ResolveAs<HdEcho>(ref.ToString());
  EXPECT_EQ(echo->echo("still fine"), "still fine");
  client.Shutdown();
  server.Shutdown();
}

TEST(CallMux, StaleReplyIsDrainedAndResynced) {
  // Regression for the old drop-everything behavior: a peer that emits a
  // reply with an unknown call id before the real one must not wedge or
  // kill the connection — the stale frame is drained, the real reply is
  // matched.
  net::TcpAcceptor acceptor;
  std::thread fake_server([&] {
    auto channel = acceptor.Accept();
    ASSERT_NE(channel, nullptr);
    net::BufferedReader reader(*channel);
    std::string line;
    ASSERT_TRUE(reader.ReadLine(line));
    std::vector<std::string> fields = str::Split(line, ' ');
    ASSERT_GE(fields.size(), 2u);
    // REP grammar: REP <id> <status> <error> <payload...>; the empty
    // error token between OK and the payload is deliberate.
    std::string stale = "REP 999999 OK  s:stale\n";
    std::string good = "REP " + fields[1] + " OK  s:pong\n";
    channel->WriteAll(stale.data(), stale.size());
    channel->WriteAll(good.data(), good.size());
    // Hold the connection open until the client is done with it.
    char buf[16];
    while (channel->Read(buf, sizeof buf) != 0) {
    }
  });

  Orb client;
  ObjectRef ref = ObjectRef::Parse(
      "@tcp:127.0.0.1:" + std::to_string(acceptor.Port()) +
      "#1#IDL:Heidi/Echo:1.0");
  auto call = client.NewRequest(ref, "ping", false);
  auto reply = client.Invoke(ref, *call);
  EXPECT_EQ(reply->GetString(), "pong");
  EXPECT_EQ(client.Stats().stale_replies_dropped, 1u);
  client.Shutdown();
  fake_server.join();
}

TEST(CallMux, RemoteTimeoutStatusSurfacesAsTimeoutError) {
  // A TMO reply frame (e.g. relayed by a gateway that gave up) maps to
  // TimeoutError at the caller, same as a locally-expired deadline.
  net::TcpAcceptor acceptor;
  std::thread fake_server([&] {
    auto channel = acceptor.Accept();
    ASSERT_NE(channel, nullptr);
    net::BufferedReader reader(*channel);
    std::string line;
    ASSERT_TRUE(reader.ReadLine(line));
    std::vector<std::string> fields = str::Split(line, ' ');
    std::string reply = "REP " + fields[1] + " TMO upstream%20gave%20up\n";
    channel->WriteAll(reply.data(), reply.size());
    char buf[16];
    while (channel->Read(buf, sizeof buf) != 0) {
    }
  });

  Orb client;
  ObjectRef ref = ObjectRef::Parse(
      "@tcp:127.0.0.1:" + std::to_string(acceptor.Port()) +
      "#1#IDL:Heidi/Echo:1.0");
  auto call = client.NewRequest(ref, "ping", false);
  EXPECT_THROW(client.Invoke(ref, *call), TimeoutError);
  client.Shutdown();
  fake_server.join();
}

TEST(CallMux, TransportFailureFailsAllPendingCalls) {
  demo::ForceDemoRegistration();
  auto server = std::make_unique<Orb>();
  server->ListenTcp();
  SlowEcho impl(1000ms);
  ObjectRef ref = server->ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  Orb client;
  std::vector<ReplyHandle> handles;
  for (int i = 0; i < 3; ++i) {
    auto call = client.NewRequest(ref, "echo", false);
    call->PutString("doomed");
    handles.push_back(client.InvokeAsync(ref, *call));
  }
  server->Shutdown();  // connection dies with three calls parked
  for (auto& handle : handles) {
    EXPECT_THROW(handle.Get(), NetError);
  }
  client.Shutdown();
}

TEST(WorkerPool, OnewayOrderIsPreserved) {
  demo::ForceDemoRegistration();
  Orb server;  // default worker pool active
  server.ListenTcp();
  demo::EchoImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  Orb client;
  auto echo = client.ResolveAs<HdEcho>(ref.ToString());
  constexpr int kPosts = 100;
  for (int i = 0; i < kPosts; ++i) {
    echo->post("event-" + std::to_string(i));
  }
  // Oneways dispatch inline on the reader thread, so by the time this
  // twoway's reply is back every earlier oneway has fully executed.
  echo->echo("barrier");
  std::vector<HdString> events = impl.Events();
  ASSERT_EQ(events.size(), static_cast<size_t>(kPosts));
  for (int i = 0; i < kPosts; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)], "event-" + std::to_string(i));
  }
  client.Shutdown();
  server.Shutdown();
}

TEST(WorkerPool, DisabledPoolFallsBackToInlineDispatch) {
  demo::ForceDemoRegistration();
  OrbOptions server_options;
  server_options.server_workers = 0;  // strict per-connection ordering
  Orb server(server_options);
  server.ListenTcp();
  demo::EchoImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  Orb client;
  auto echo = client.ResolveAs<HdEcho>(ref.ToString());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(echo->add(i, i), 2 * i);
  }
  client.Shutdown();
  server.Shutdown();
}

}  // namespace
}  // namespace heidi::orb
