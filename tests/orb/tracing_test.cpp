// End-to-end tracing through live orbs: one trace id spanning the client
// and server halves of a TCP call on both wire protocols, attempt
// sub-spans sharing the trace across a retry, error tagging when the
// dispatch path rejects a request, and always-on metrics with sampling
// off. The tracer here is exactly the OrbOptions::tracer policy object a
// deployment would attach.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "demo/demo.h"
#include "net/fault.h"
#include "obs/tracer.h"
#include "orb/orb.h"
#include "orb/tracing.h"

namespace heidi::orb {
namespace {

using obs::SpanKind;
using obs::SpanRecord;

std::vector<SpanRecord> SpansOfKind(const std::vector<SpanRecord>& spans,
                                    SpanKind kind) {
  std::vector<SpanRecord> out;
  for (const SpanRecord& s : spans) {
    if (s.kind == kind) out.push_back(s);
  }
  return out;
}

// The server span commits to the ring *after* the reply is written, so
// the client can observe its reply before the span lands: poll briefly.
template <typename Pred>
bool WaitFor(Pred pred, int timeout_ms = 2000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

bool HasStage(const SpanRecord& span, const std::string& name) {
  for (int i = 0; i < span.stage_count; ++i) {
    if (name == span.stages[i].name) return true;
  }
  return false;
}

class TracingTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    demo::ForceDemoRegistration();
    // Client and server share one tracer: their spans land in one ring,
    // so the snapshot is the merged end-to-end timeline.
    tracer_ = std::make_shared<obs::Tracer>();
    OrbOptions options;
    options.protocol = GetParam();
    options.tracer = tracer_;
    server_ = std::make_unique<Orb>(options);
    server_->ListenTcp();
    client_ = std::make_unique<Orb>(options);
    ref_ = server_->ExportObject(&impl_, "IDL:Heidi/Echo:1.0");
  }

  void TearDown() override {
    client_->Shutdown();
    server_->Shutdown();
  }

  std::shared_ptr<obs::Tracer> tracer_;
  demo::EchoImpl impl_;
  std::unique_ptr<Orb> server_;
  std::unique_ptr<Orb> client_;
  ObjectRef ref_;
};

TEST_P(TracingTest, OneTraceIdSpansClientAndServer) {
  auto echo = client_->ResolveAs<HdEcho>(ref_.ToString());
  EXPECT_EQ(echo->echo("traced"), "traced");
  ASSERT_TRUE(WaitFor([this] {
    return !SpansOfKind(tracer_->Snapshot(), SpanKind::kServer).empty();
  }));

  std::vector<SpanRecord> spans = tracer_->Snapshot();
  std::vector<SpanRecord> clients = SpansOfKind(spans, SpanKind::kClient);
  std::vector<SpanRecord> servers = SpansOfKind(spans, SpanKind::kServer);
  ASSERT_EQ(clients.size(), 1u);
  ASSERT_EQ(servers.size(), 1u);
  const SpanRecord& client = clients[0];
  const SpanRecord& server = servers[0];

  EXPECT_EQ(client.operation, "echo");
  EXPECT_EQ(server.operation, "echo");
  // Same 128-bit trace id on both sides of the wire.
  EXPECT_EQ(client.ctx.trace_hi, server.ctx.trace_hi);
  EXPECT_EQ(client.ctx.trace_lo, server.ctx.trace_lo);
  // The server span is a child of the client span, not a sibling.
  EXPECT_EQ(server.ctx.parent_span_id, client.ctx.span_id);
  EXPECT_NE(server.ctx.span_id, client.ctx.span_id);
  EXPECT_TRUE(client.error.empty());
  EXPECT_TRUE(server.error.empty());

  // Stage timelines on both halves.
  EXPECT_TRUE(HasStage(client, "send"));
  EXPECT_TRUE(HasStage(client, "wait"));
  EXPECT_TRUE(HasStage(server, "exec"));
  EXPECT_TRUE(HasStage(server, "reply"));
}

TEST_P(TracingTest, ChromeExportContainsTheSharedTraceId) {
  auto echo = client_->ResolveAs<HdEcho>(ref_.ToString());
  EXPECT_EQ(echo->add(40, 2), 42);
  ASSERT_TRUE(WaitFor([this] {
    return !SpansOfKind(tracer_->Snapshot(), SpanKind::kServer).empty();
  }));

  std::vector<SpanRecord> clients =
      SpansOfKind(tracer_->Snapshot(), SpanKind::kClient);
  ASSERT_FALSE(clients.empty());
  char trace_hex[33];
  std::snprintf(trace_hex, sizeof trace_hex, "%016llx%016llx",
                static_cast<unsigned long long>(clients[0].ctx.trace_hi),
                static_cast<unsigned long long>(clients[0].ctx.trace_lo));

  std::string chrome = tracer_->ExportChromeTrace();
  // The id appears at least twice: once under the client lane (pid 1),
  // once under the server lane (pid 2).
  size_t first = chrome.find(trace_hex);
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(chrome.find(trace_hex, first + 1), std::string::npos);
  EXPECT_NE(chrome.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(chrome.find("\"pid\":2"), std::string::npos);

  std::string jsonl = tracer_->ExportJsonl();
  EXPECT_NE(jsonl.find(trace_hex), std::string::npos);
}

TEST_P(TracingTest, MetricsRecordWhenSampledOut) {
  // A kNever tracer records no timelines but every histogram: the
  // always-on half must not depend on the sampling decision.
  auto never = std::make_shared<obs::Tracer>(obs::TracerOptions{
      .mode = obs::SampleMode::kNever});
  OrbOptions options;
  options.protocol = GetParam();
  options.tracer = never;
  Orb client(options);
  auto echo = client.ResolveAs<HdEcho>(ref_.ToString());
  EXPECT_EQ(echo->echo("quiet"), "quiet");

  EXPECT_TRUE(never->Snapshot().empty());
  EXPECT_EQ(never->Metrics().GetCounter("client.calls")->Value(), 1u);
  EXPECT_EQ(never->Metrics().Histogram("op.echo")->Count(), 1u);
  EXPECT_GE(never->Metrics().Histogram("stage.client.wait")->Count(), 1u);
  client.Shutdown();
}

TEST_P(TracingTest, OrbStatsExposeSpanCounters) {
  auto echo = client_->ResolveAs<HdEcho>(ref_.ToString());
  echo->echo("counted");
  // Client and server share the tracer, so either orb's stats see both
  // halves of the call land in the ring.
  ASSERT_TRUE(
      WaitFor([this] { return client_->Stats().spans_recorded >= 2; }));
  EXPECT_EQ(client_->Stats().spans_dropped, 0u);
}

TEST_P(TracingTest, InterceptorsCountPerOperation) {
  client_->AddClientInterceptor(
      std::make_shared<TracingClientInterceptor>(tracer_));
  server_->AddServerInterceptor(
      std::make_shared<TracingServerInterceptor>(tracer_));
  auto echo = client_->ResolveAs<HdEcho>(ref_.ToString());
  echo->echo("a");
  echo->echo("b");
  EXPECT_EQ(tracer_->Metrics().GetCounter("icpt.req.echo")->Value(), 2u);
  EXPECT_EQ(tracer_->Metrics().GetCounter("icpt.dispatch.echo")->Value(), 2u);
  EXPECT_EQ(tracer_->Metrics().GetCounter("icpt.rep")->Value(), 2u);
}

TEST_P(TracingTest, RetryAttemptsShareTheTraceId) {
  // First reply read dies mid-message (indeterminate); the idempotent
  // call is resent and succeeds. The timeline must show the client span
  // plus per-attempt sub-spans, all on one trace.
  net::FaultPlan plan;
  plan.fail_read_at = 1;
  auto tracer = std::make_shared<obs::Tracer>();
  OrbOptions options;
  options.protocol = GetParam();
  options.tracer = tracer;
  options.fault_injector = std::make_shared<net::FaultInjector>(plan);
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 1;
  Orb client(options);

  auto call = client.NewRequest(ref_, "add", false);
  call->PutLong(20);
  call->PutLong(22);
  call->SetIdempotent(true);
  EXPECT_EQ(client.Invoke(ref_, *call)->GetLong(), 42);
  EXPECT_EQ(client.Stats().retries, 1u);
  client.Shutdown();

  std::vector<SpanRecord> spans = tracer->Snapshot();
  std::vector<SpanRecord> clients = SpansOfKind(spans, SpanKind::kClient);
  std::vector<SpanRecord> attempts = SpansOfKind(spans, SpanKind::kAttempt);
  ASSERT_EQ(clients.size(), 1u);
  ASSERT_EQ(attempts.size(), 2u);  // the failed first try + the resend
  const SpanRecord& root = clients[0];
  EXPECT_TRUE(root.error.empty());  // the invocation succeeded overall
  int failed = 0;
  for (const SpanRecord& attempt : attempts) {
    EXPECT_EQ(attempt.ctx.trace_hi, root.ctx.trace_hi);
    EXPECT_EQ(attempt.ctx.trace_lo, root.ctx.trace_lo);
    EXPECT_EQ(attempt.ctx.parent_span_id, root.ctx.span_id);
    failed += attempt.error.empty() ? 0 : 1;
  }
  EXPECT_EQ(failed, 1);  // exactly the first attempt carries the error tag
}

class ThrowingPreDispatch : public ServerInterceptor {
 public:
  void PreDispatch(const wire::Call&) override {
    throw std::runtime_error("rejected by policy");
  }
};

TEST_P(TracingTest, ThrowingPreDispatchClosesServerSpanWithErrorTag) {
  server_->AddServerInterceptor(std::make_shared<ThrowingPreDispatch>());
  auto echo = client_->ResolveAs<HdEcho>(ref_.ToString());
  EXPECT_THROW(echo->echo("doomed"), RemoteError);
  ASSERT_TRUE(WaitFor([this] {
    return !SpansOfKind(tracer_->Snapshot(), SpanKind::kServer).empty();
  }));

  std::vector<SpanRecord> servers =
      SpansOfKind(tracer_->Snapshot(), SpanKind::kServer);
  ASSERT_EQ(servers.size(), 1u);
  const SpanRecord& server = servers[0];
  // The span was closed (End ran: end_ns stamped after start) and tagged
  // with the rejection, even though the skeleton never executed.
  EXPECT_GE(server.end_ns, server.start_ns);
  EXPECT_NE(server.error.find("rejected by policy"), std::string::npos);
  EXPECT_FALSE(HasStage(server, "predispatch"));  // it threw

  // The client half is tagged too.
  std::vector<SpanRecord> clients =
      SpansOfKind(tracer_->Snapshot(), SpanKind::kClient);
  ASSERT_EQ(clients.size(), 1u);
  EXPECT_FALSE(clients[0].error.empty());
}

TEST_P(TracingTest, NestedInvocationJoinsTheInboundTrace) {
  // An implementation that calls back out through an orb while serving a
  // request: the nested client span must share the inbound trace id and
  // parent on the server span (the ambient-context mechanism).
  class Relay : public demo::EchoImpl {
   public:
    Relay(Orb* orb, std::string next_ref) : orb_(orb), next_(next_ref) {}
    HdString echo(HdStringView msg) override {
      auto downstream = orb_->ResolveAs<HdEcho>(next_);
      return downstream->echo(msg);
    }

   private:
    Orb* orb_;
    std::string next_;
  };

  Relay relay(server_.get(), ref_.ToString());
  ObjectRef relay_ref = server_->ExportObject(&relay, "IDL:Heidi/Echo:1.0");
  auto echo = client_->ResolveAs<HdEcho>(relay_ref.ToString());
  EXPECT_EQ(echo->echo("hop"), "hop");
  ASSERT_TRUE(WaitFor([this] {
    return SpansOfKind(tracer_->Snapshot(), SpanKind::kServer).size() >= 2;
  }));

  std::vector<SpanRecord> spans = tracer_->Snapshot();
  std::vector<SpanRecord> clients = SpansOfKind(spans, SpanKind::kClient);
  std::vector<SpanRecord> servers = SpansOfKind(spans, SpanKind::kServer);
  ASSERT_EQ(clients.size(), 2u);  // outer call + nested call
  ASSERT_EQ(servers.size(), 2u);  // relay dispatch + echo dispatch
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.ctx.trace_hi, clients[0].ctx.trace_hi);
    EXPECT_EQ(s.ctx.trace_lo, clients[0].ctx.trace_lo);
  }
  // One of the client spans is parented on one of the server spans: the
  // nested hop hangs off the relay's server-side span.
  int nested = 0;
  for (const SpanRecord& c : clients) {
    for (const SpanRecord& s : servers) {
      if (c.ctx.parent_span_id == s.ctx.span_id) ++nested;
    }
  }
  EXPECT_EQ(nested, 1);
}

INSTANTIATE_TEST_SUITE_P(Protocols, TracingTest,
                         ::testing::Values("text", "hiop"));

}  // namespace
}  // namespace heidi::orb
