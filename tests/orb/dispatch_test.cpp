#include "orb/dispatch.h"

#include <gtest/gtest.h>

#include "support/error.h"
#include "support/strings.h"
#include "wire/text.h"

namespace heidi::orb {
namespace {

class DispatchStrategies
    : public ::testing::TestWithParam<DispatchStrategy> {};

TEST_P(DispatchStrategies, FindsEveryRegisteredName) {
  DispatchTable table(GetParam());
  std::vector<std::string> names;
  for (int i = 0; i < 50; ++i) {
    names.push_back("operation_number_" + std::to_string(i));
  }
  for (const std::string& name : names) {
    table.Add(name, [name](wire::Call&, wire::Call& out) {
      out.PutString(name);
    });
  }
  table.Seal();
  EXPECT_EQ(table.Size(), 50u);

  for (const std::string& name : names) {
    const auto* handler = table.Find(name);
    ASSERT_NE(handler, nullptr) << name;
    wire::TextCall in{std::vector<std::string>{}};
    wire::TextCall out;
    (*handler)(in, out);
    EXPECT_EQ(out.Tokens()[0], "s:" + str::EscapeToken(name));
  }
}

TEST_P(DispatchStrategies, UnknownNameIsNull) {
  DispatchTable table(GetParam());
  table.Add("known", [](wire::Call&, wire::Call&) {});
  table.Seal();
  EXPECT_EQ(table.Find("unknown"), nullptr);
  EXPECT_EQ(table.Find(""), nullptr);
  EXPECT_EQ(table.Find("know"), nullptr);   // prefix
  EXPECT_EQ(table.Find("knownx"), nullptr); // extension
}

TEST_P(DispatchStrategies, EmptyTable) {
  DispatchTable table(GetParam());
  table.Seal();
  EXPECT_EQ(table.Find("anything"), nullptr);
}

TEST_P(DispatchStrategies, SimilarLongNamesDisambiguated) {
  // §2's motivating case: many methods with long, similar names.
  DispatchTable table(GetParam());
  std::string prefix(64, 'm');
  for (int i = 0; i < 20; ++i) {
    table.Add(prefix + std::to_string(i), [](wire::Call&, wire::Call&) {});
  }
  table.Seal();
  EXPECT_NE(table.Find(prefix + "7"), nullptr);
  EXPECT_NE(table.Find(prefix + "19"), nullptr);
  EXPECT_EQ(table.Find(prefix), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, DispatchStrategies,
    ::testing::Values(DispatchStrategy::kLinear, DispatchStrategy::kBinary,
                      DispatchStrategy::kHash),
    [](const ::testing::TestParamInfo<DispatchStrategy>& param_info) {
      return std::string(DispatchStrategyName(param_info.param));
    });

TEST(DispatchTable, DuplicateNameThrows) {
  DispatchTable table;
  table.Add("f", [](wire::Call&, wire::Call&) {});
  EXPECT_THROW(table.Add("f", [](wire::Call&, wire::Call&) {}), HdError);
}

TEST(DispatchTable, AddAfterSealThrows) {
  DispatchTable table;
  table.Seal();
  EXPECT_THROW(table.Add("late", [](wire::Call&, wire::Call&) {}), HdError);
}

TEST(DispatchTable, FindBeforeSealThrows) {
  DispatchTable table;
  table.Add("f", [](wire::Call&, wire::Call&) {});
  EXPECT_THROW(table.Find("f"), HdError);
}

TEST(DispatchTable, SealIdempotent) {
  DispatchTable table;
  table.Add("f", [](wire::Call&, wire::Call&) {});
  table.Seal();
  table.Seal();
  EXPECT_NE(table.Find("f"), nullptr);
}

TEST(DispatchTable, StrategyNames) {
  EXPECT_EQ(DispatchStrategyName(DispatchStrategy::kLinear), "linear");
  EXPECT_EQ(DispatchStrategyName(DispatchStrategy::kBinary), "binary");
  EXPECT_EQ(DispatchStrategyName(DispatchStrategy::kHash), "hash");
}

}  // namespace
}  // namespace heidi::orb
