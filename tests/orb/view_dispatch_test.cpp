// View-mapping dispatch tests: a view-mapped skeleton must see the
// request bytes *in place* (a window into the retained frame slab, not a
// copy), the frame slab's release must be deferred while anything still
// points into it (the dispatch, then the staged reply), and in debug
// builds a view that escapes its dispatch must read poison instead of
// stale data.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "demo/impls.h"
#include "demo/skels.h"
#include "net/inmemory.h"
#include "orb/orb.h"
#include "support/arena.h"
#include "support/bytes.h"
#include "wire/binary.h"
#include "wire/protocol.h"

namespace heidi::orb {
namespace {

// An Echo that records where its view argument pointed, so tests can
// check the bytes were handed over in place.
class CapturingEcho : public demo::EchoImpl {
 public:
  HdString echo(HdStringView msg) override {
    seen_data = msg.data();
    seen_size = msg.size();
    seen_value = HdString(msg);
    return HdString(msg);
  }

  const char* seen_data = nullptr;
  size_t seen_size = 0;
  HdString seen_value;
};

// Round-trips an echo request through real protocol framing and returns
// the readable server-side call (for hiop: a zero-copy view over the
// retained frame slab, exactly what Orb::HandleRequest dispatches).
std::unique_ptr<wire::Call> FrameRequest(const wire::Protocol* protocol,
                                         const std::string& msg) {
  auto call = protocol->NewCall();
  call->SetKind(wire::CallKind::kRequest);
  call->SetTarget("@tcp:h:1#1000#IDL:Heidi/Echo:1.0");
  call->SetOperation("echo");
  call->PutString(msg);
  net::ChannelPair pair = net::CreateInMemoryPair();
  protocol->WriteCall(*pair.a, *call);
  net::BufferedReader reader(*pair.b);
  return protocol->ReadCall(reader);
}

TEST(ViewDispatchTest, HiopViewPointsIntoFrameSlab) {
  const wire::Protocol* protocol = wire::FindProtocol("hiop");
  ASSERT_NE(protocol, nullptr);
  const std::string msg = "view-mapped argument, long enough to matter";
  auto request = FrameRequest(protocol, msg);

  bytes::IoBufPtr slab = request->RetainedFrame();
  ASSERT_TRUE(slab);

  Orb orb;
  CapturingEcho impl;
  demo::Echo_skel skel(orb, &impl);

  support::Arena arena(request->RetainedFrame());
  request->AttachArena(&arena);
  auto reply = protocol->NewCall();
  reply->AttachArena(&arena);
  ASSERT_TRUE(skel.Dispatch("echo", *request, *reply));

  // The implementation saw the marshaled bytes where the kernel left
  // them: inside the frame slab, within the frame's written extent.
  ASSERT_NE(impl.seen_data, nullptr);
  EXPECT_EQ(impl.seen_value, msg);
  EXPECT_GE(impl.seen_data, slab->Data());
  EXPECT_LE(impl.seen_data + impl.seen_size, slab->Data() + slab->Size());

  // And the reply unmarshals to the echoed string.
  wire::BinaryCall reread(
      static_cast<wire::BinaryCall&>(*reply).Payload());
  EXPECT_EQ(reread.GetString(), msg);
}

TEST(ViewDispatchTest, FrameReleaseDeferredUntilReplyDrops) {
  const wire::Protocol* protocol = wire::FindProtocol("hiop");
  bytes::IoBufPtr slab;
  {
    auto request = FrameRequest(protocol, "deferred release probe");
    slab = request->RetainedFrame();
    ASSERT_TRUE(slab);

    Orb orb;
    CapturingEcho impl;
    demo::Echo_skel skel(orb, &impl);

    support::Arena arena(request->RetainedFrame());
    request->AttachArena(&arena);
    auto reply = protocol->NewCall();
    reply->AttachArena(&arena);
    ASSERT_TRUE(skel.Dispatch("echo", *request, *reply));

    // During/after dispatch the slab is pinned by the request, the
    // arena's seed, our test handle — and the staged reply, which
    // adopted the slab's donated tail.
    EXPECT_GE(slab->RefCount(), 4u);

    // Dropping the request must NOT free the frame: the staged reply's
    // slices still point into the slab.
    request.reset();
    EXPECT_GE(slab->RefCount(), 2u);
  }
  // Reply, arena, and request are gone; only the test handle remains.
  EXPECT_EQ(slab->RefCount(), 1u);
}

#ifndef NDEBUG
TEST(ViewDispatchTest, EscapedViewReadsPoisonAfterInvalidate) {
  const wire::Protocol* protocol = wire::FindProtocol("hiop");
  const std::string msg = "this view must not escape the dispatch";
  auto request = FrameRequest(protocol, msg);
  bytes::IoBufPtr slab = request->RetainedFrame();  // keeps memory valid

  Orb orb;
  CapturingEcho impl;
  demo::Echo_skel skel(orb, &impl);

  support::Arena arena(request->RetainedFrame());
  request->AttachArena(&arena);
  auto reply = protocol->NewCall();
  reply->AttachArena(&arena);
  ASSERT_TRUE(skel.Dispatch("echo", *request, *reply));
  ASSERT_NE(impl.seen_data, nullptr);
  EXPECT_EQ(impl.seen_data[0], msg[0]);

  // What Orb::HandleRequest does after the dispatch returns: an
  // implementation that squirreled the view away now reads 0xDD, not
  // stale (or recycled) request bytes.
  request->InvalidateViews();
  EXPECT_EQ(static_cast<unsigned char>(impl.seen_data[0]), 0xDD);
  EXPECT_EQ(static_cast<unsigned char>(impl.seen_data[impl.seen_size - 1]),
            0xDD);
}
#endif  // NDEBUG

#ifndef NDEBUG
TEST(ViewDispatchTest, TextEscapedViewReadsPoisonAfterInvalidate) {
  // Same contract as the hiop escape test, on the other protocol: a
  // text-protocol view points into the call's token storage, and
  // InvalidateViews poisons that storage when the dispatch ends.
  const wire::Protocol* protocol = wire::FindProtocol("text");
  ASSERT_NE(protocol, nullptr);
  const std::string msg = "plain token view that must not escape";
  auto request = FrameRequest(protocol, msg);

  Orb orb;
  CapturingEcho impl;
  demo::Echo_skel skel(orb, &impl);

  support::Arena arena;
  request->AttachArena(&arena);
  auto reply = protocol->NewCall();
  reply->AttachArena(&arena);
  ASSERT_TRUE(skel.Dispatch("echo", *request, *reply));
  ASSERT_NE(impl.seen_data, nullptr);
  EXPECT_EQ(impl.seen_data[0], msg[0]);

  request->InvalidateViews();
  EXPECT_EQ(static_cast<unsigned char>(impl.seen_data[0]), 0xDD);
  EXPECT_EQ(static_cast<unsigned char>(impl.seen_data[impl.seen_size - 1]),
            0xDD);
}

TEST(ViewDispatchTest, TextArenaBackedViewReadsPoisonAfterArenaReset) {
  // An escaped payload ('%' forms) unescapes into the dispatch arena;
  // the arena poisons its scratch on Reset, so a view stored past the
  // dispatch reads 0xDD from this path too.
  const wire::Protocol* protocol = wire::FindProtocol("text");
  const std::string msg = "100% escaped\ttoken\nthat must not escape";
  auto request = FrameRequest(protocol, msg);

  Orb orb;
  CapturingEcho impl;
  demo::Echo_skel skel(orb, &impl);

  support::Arena arena;
  request->AttachArena(&arena);
  auto reply = protocol->NewCall();
  reply->AttachArena(&arena);
  ASSERT_TRUE(skel.Dispatch("echo", *request, *reply));
  ASSERT_NE(impl.seen_data, nullptr);
  EXPECT_EQ(impl.seen_value, msg);
  EXPECT_EQ(impl.seen_data[0], msg[0]);

  // Detach before the arena goes away, as the dispatch loop does.
  request->AttachArena(nullptr);
  reply->AttachArena(nullptr);
  arena.Reset();
  EXPECT_EQ(static_cast<unsigned char>(impl.seen_data[0]), 0xDD);
}
#endif  // NDEBUG

TEST(ViewDispatchTest, TextProtocolUnescapesIntoArena) {
  // The text protocol has no retained frame; escaped tokens ('%' forms)
  // unescape into the dispatch arena instead of a per-call heap deque.
  const wire::Protocol* protocol = wire::FindProtocol("text");
  ASSERT_NE(protocol, nullptr);
  const std::string msg = "100% escaped\ttoken\nwith specials";
  auto request = FrameRequest(protocol, msg);
  EXPECT_FALSE(request->RetainedFrame());

  Orb orb;
  CapturingEcho impl;
  demo::Echo_skel skel(orb, &impl);

  support::Arena arena(request->RetainedFrame());  // no seed: pool-backed
  request->AttachArena(&arena);
  auto reply = protocol->NewCall();
  reply->AttachArena(&arena);
  ASSERT_TRUE(skel.Dispatch("echo", *request, *reply));
  EXPECT_EQ(impl.seen_value, msg);
}

}  // namespace
}  // namespace heidi::orb
