// Adversarial-client tests: peers that half-close mid-call, trickle a
// frame in one-byte writes (slow loris), or pump requests while never
// reading their replies (backpressure). Every scenario runs across both
// wire protocols and both serving modes — the sharded epoll reactor and
// the legacy thread-per-connection loop — because the contracts are the
// same: requests already read are answered, partial frames are resumed
// not rejected, and a non-draining client must not wedge the server.
//
// The clients here are deliberately raw sockets (not orb stubs): the
// misbehaviors under test are exactly the ones a well-behaved stub
// cannot produce. Replies are counted by feeding the received bytes
// through the protocol's own incremental FrameDecoder.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "demo/demo.h"
#include "net/inbound.h"
#include "net/tcp.h"
#include "orb/orb.h"
#include "support/bytes.h"
#include "wire/protocol.h"

namespace heidi::orb {
namespace {

struct Mode {
  const char* protocol;
  int shards;  // 0 = legacy thread-per-connection
};

std::string ModeName(const ::testing::TestParamInfo<Mode>& info) {
  return std::string(info.param.protocol) +
         (info.param.shards > 0 ? "Reactor" : "Legacy");
}

// An echo whose reply size the client chooses: echo("16384") returns
// 16 KiB of 'x'. Lets a small request amplify into enough reply volume
// to fill socket buffers and cross the write-queue high-water mark.
class AmplifyingEcho : public demo::EchoImpl {
 public:
  HdString echo(HdStringView msg) override {
    return HdString(static_cast<size_t>(std::stoul(std::string(msg))), 'x');
  }
};

int RawConnect(uint16_t port) {
  std::unique_ptr<net::ByteChannel> channel =
      net::TcpConnect("127.0.0.1", port);
  int fd = channel->ReleaseFd();
  EXPECT_GE(fd, 0);
  return fd;
}

void SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << "send failed: " << errno;
    off += static_cast<size_t>(n);
  }
}

// Client-side reply parser: the protocol's own incremental decoder over
// an IncomingBuffer, fed whatever recv() returns.
class ReplyReader {
 public:
  explicit ReplyReader(const wire::Protocol* protocol)
      : decoder_(protocol->NewFrameDecoder()) {}

  // Reads until `n` replies arrived; returns fewer only on EOF/error.
  std::vector<std::unique_ptr<wire::Call>> ReadReplies(int fd, size_t n) {
    std::vector<std::unique_ptr<wire::Call>> replies;
    char buf[4096];
    while (replies.size() < n) {
      while (replies.size() < n) {
        std::unique_ptr<wire::Call> call = decoder_->TryParseFrame(in_);
        if (call == nullptr) break;
        replies.push_back(std::move(call));
      }
      if (replies.size() >= n) break;
      ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
      if (r <= 0) break;  // EOF (or error): caller asserts on the count
      std::memcpy(in_.WritePtr(static_cast<size_t>(r)), buf,
                  static_cast<size_t>(r));
      in_.CommitWrite(static_cast<size_t>(r));
    }
    return replies;
  }

  // True when the peer has closed (a clean zero-byte read).
  bool ReadEof(int fd) {
    char byte;
    return ::recv(fd, &byte, 1, 0) == 0;
  }

 private:
  net::IncomingBuffer in_;
  std::unique_ptr<wire::FrameDecoder> decoder_;
};

class Adversarial : public ::testing::TestWithParam<Mode> {
 protected:
  void SetUp() override { demo::ForceDemoRegistration(); }

  OrbOptions ServerOptions() const {
    OrbOptions options;
    options.protocol = GetParam().protocol;
    options.reactor_shards = GetParam().shards;
    return options;
  }

  static std::string EncodeRequest(const Orb& orb, const ObjectRef& ref,
                                   uint64_t call_id, std::string_view op,
                                   const std::vector<int32_t>& longs,
                                   std::string_view str = {}) {
    const wire::Protocol& protocol = orb.Protocol();
    std::unique_ptr<wire::Call> call = protocol.NewCall();
    call->SetKind(wire::CallKind::kRequest);
    call->SetCallId(call_id);
    call->SetTarget(ref.ToString());
    call->SetOperation(std::string(op));
    for (int32_t v : longs) call->PutLong(v);
    if (!str.empty()) call->PutString(str);
    bytes::BufferChain chain;
    protocol.EncodeCall(chain, *call);
    return chain.ToString();
  }
};

// The peer sends a pipelined burst, then shuts down its write side
// before any reply came back. Half-close contract: every request the
// server read must still be answered, after which the server closes.
TEST_P(Adversarial, HalfCloseMidCall) {
  Orb server(ServerOptions());
  server.ListenTcp();
  demo::EchoImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  int fd = RawConnect(server.TcpPort());
  constexpr int kCalls = 8;
  std::string burst;
  for (int i = 1; i <= kCalls; ++i) {
    burst += EncodeRequest(server, ref, static_cast<uint64_t>(i), "add",
                           {i, 34});
  }
  SendAll(fd, burst);
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

  ReplyReader reader(&server.Protocol());
  std::vector<std::unique_ptr<wire::Call>> replies =
      reader.ReadReplies(fd, kCalls);
  ASSERT_EQ(replies.size(), static_cast<size_t>(kCalls));
  std::map<uint64_t, int32_t> results;  // replies may complete out of order
  for (std::unique_ptr<wire::Call>& reply : replies) {
    ASSERT_EQ(reply->Kind(), wire::CallKind::kReply);
    ASSERT_EQ(reply->Status(), wire::CallStatus::kOk);
    results[reply->CallId()] = reply->GetLong();
  }
  for (int i = 1; i <= kCalls; ++i) {
    EXPECT_EQ(results[static_cast<uint64_t>(i)], i + 34);
  }
  // ...and the server tears the connection down once it has answered.
  EXPECT_TRUE(reader.ReadEof(fd));
  ::close(fd);
  server.Shutdown();
}

// One byte per write: the frame assembles across ~a hundred reads. The
// decoder must resume mid-frame every time and the connection must not
// be condemned for short reads.
TEST_P(Adversarial, SlowLorisOneByteAtATime) {
  Orb server(ServerOptions());
  server.ListenTcp();
  demo::EchoImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  int fd = RawConnect(server.TcpPort());
  std::string frame = EncodeRequest(server, ref, 7, "add", {40, 2});
  for (char byte : frame) {
    SendAll(fd, std::string_view(&byte, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ReplyReader reader(&server.Protocol());
  std::vector<std::unique_ptr<wire::Call>> replies = reader.ReadReplies(fd, 1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0]->Status(), wire::CallStatus::kOk);
  EXPECT_EQ(replies[0]->GetLong(), 42);
  // The connection is still healthy: a whole frame right after works.
  SendAll(fd, EncodeRequest(server, ref, 8, "add", {1, 2}));
  replies = reader.ReadReplies(fd, 1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0]->GetLong(), 3);
  ::close(fd);
  server.Shutdown();
}

// The peer pumps amplifying requests and refuses to read replies. In
// reactor mode the write queue crosses its (deliberately tiny) high-
// water mark, the server suspends reading from this client, and resumes
// once the client finally drains — all replies intact. In legacy mode
// the blocking reply send is the natural backpressure; the same drain
// must still produce every reply.
TEST_P(Adversarial, ClientNeverReadsReplies) {
  OrbOptions options = ServerOptions();
  options.reactor_write_high_water = 32 * 1024;
  options.tcp_sndbuf = 16 * 1024;  // small kernel buffer → queue fills fast
  Orb server(options);
  server.ListenTcp();
  AmplifyingEcho impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  int fd = RawConnect(server.TcpPort());
  constexpr int kCalls = 64;
  constexpr size_t kReplyPayload = 16 * 1024;
  for (int i = 1; i <= kCalls; ++i) {
    SendAll(fd, EncodeRequest(server, ref, static_cast<uint64_t>(i), "echo",
                              {}, "16384"));
  }
  if (GetParam().shards > 0) {
    // Stall until the server provably suspended this client.
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server.Stats().reactor_backpressure_suspends == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(server.Stats().reactor_backpressure_suspends, 1u);
  } else {
    // Legacy: just hold the stall long enough for the workers to wedge
    // against the full socket before the drain begins.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ReplyReader reader(&server.Protocol());
  std::vector<std::unique_ptr<wire::Call>> replies =
      reader.ReadReplies(fd, kCalls);
  ASSERT_EQ(replies.size(), static_cast<size_t>(kCalls));
  for (std::unique_ptr<wire::Call>& reply : replies) {
    ASSERT_EQ(reply->Status(), wire::CallStatus::kOk);
    EXPECT_EQ(reply->GetString().size(), kReplyPayload);
  }
  if (GetParam().shards > 0) {
    EXPECT_GE(server.Stats().reactor_backpressure_resumes, 1u);
  }
  ::close(fd);
  server.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(Modes, Adversarial,
                         ::testing::Values(Mode{"text", 2}, Mode{"hiop", 2},
                                           Mode{"text", 0}, Mode{"hiop", 0}),
                         ModeName);

}  // namespace
}  // namespace heidi::orb
