// The CI fault matrix: the same fault schedule runs against both wire
// protocols, with the master seed taken from HEIDI_FAULT_SEED so the CI
// job sweeps seeds without recompiling. Run one protocol's slice with
//   HEIDI_FAULT_SEED=3 ./fault_tests --gtest_filter='*hiop*'
//
// The probabilistic chaos test asserts *invariants*, not exact schedules:
// every call either returns the correct result or fails with a clean
// transport error, the orb keeps recovering (reconnect + retry), and
// nothing hangs. Mid-stream corruption is exercised only by the scripted
// tests: neither protocol carries a checksum, so a byte flipped deep in a
// frame body is undetectable by design (see DESIGN.md, fault model) —
// only frame-boundary corruption (magic/verb) has a defined outcome.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "demo/demo.h"
#include "net/fault.h"
#include "orb/orb.h"
#include "support/error.h"

namespace heidi::orb {
namespace {

uint64_t SeedFromEnv() {
  const char* env = std::getenv("HEIDI_FAULT_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

class FaultMatrixTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    demo::ForceDemoRegistration();
    OrbOptions server_options;
    server_options.protocol = GetParam();
    server_ = std::make_unique<Orb>(server_options);
    server_->ListenTcp();
    ref_ = server_->ExportObject(&impl_, "IDL:Heidi/Echo:1.0");
  }

  void TearDown() override {
    if (client_ != nullptr) client_->Shutdown();
    server_->Shutdown();
  }

  // A client whose every outbound connection runs through `plan`.
  Orb& Client(const net::FaultPlan& plan) {
    OrbOptions options;
    options.protocol = GetParam();
    options.fault_injector = std::make_shared<net::FaultInjector>(plan);
    options.retry.max_attempts = 6;
    options.retry.initial_backoff_ms = 1;
    options.retry.max_backoff_ms = 20;
    options.call_timeout_ms = 5000;  // bounds every attempt: no hangs
    client_ = std::make_unique<Orb>(options);
    return *client_;
  }

  demo::EchoImpl impl_;
  std::unique_ptr<Orb> server_;
  std::unique_ptr<Orb> client_;
  ObjectRef ref_;
};

TEST_P(FaultMatrixTest, ScriptedDisconnectIsSurvivedByRetry) {
  net::FaultPlan plan;
  plan.seed = SeedFromEnv();
  plan.fail_read_at = 1;  // first reply read = mid-message disconnect
  Orb& client = Client(plan);

  auto call = client.NewRequest(ref_, "add", false);
  call->PutLong(40);
  call->PutLong(2);
  call->SetIdempotent(true);
  EXPECT_EQ(client.Invoke(ref_, *call)->GetLong(), 42);
  OrbStats stats = client.Stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.reconnects, 1u);
  EXPECT_EQ(stats.connections_broken, 1u);
  EXPECT_GE(stats.faults_injected, 1u);
}

TEST_P(FaultMatrixTest, ScriptedFrameCorruptionCondemnsAndRecovers) {
  // The first reply's leading byte is flipped: bad verb (text) or bad
  // magic (hiop). Either way the demux thread must reject the frame,
  // condemn the connection, and let the retry reconnect.
  net::FaultPlan plan;
  plan.seed = SeedFromEnv();
  plan.corrupt_read_at = 1;
  Orb& client = Client(plan);

  auto call = client.NewRequest(ref_, "add", false);
  call->PutLong(6);
  call->PutLong(7);
  call->SetIdempotent(true);
  EXPECT_EQ(client.Invoke(ref_, *call)->GetLong(), 13);
  OrbStats stats = client.Stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.connections_broken, 1u);
  EXPECT_EQ(stats.reconnects, 1u);
}

TEST_P(FaultMatrixTest, ScriptedWriteFailureRetriesIdempotentCall) {
  net::FaultPlan plan;
  plan.seed = SeedFromEnv();
  plan.fail_write_at = 1;  // first request dies mid-write (indeterminate)
  Orb& client = Client(plan);

  auto call = client.NewRequest(ref_, "add", false);
  call->PutLong(10);
  call->PutLong(5);
  call->SetIdempotent(true);
  EXPECT_EQ(client.Invoke(ref_, *call)->GetLong(), 15);
  EXPECT_EQ(client.Stats().retries, 1u);
}

TEST_P(FaultMatrixTest, ChaosCallsSucceedOrFailCleanly) {
  net::FaultPlan plan;
  plan.seed = SeedFromEnv();
  plan.read_error_rate = 0.04;
  plan.write_error_rate = 0.04;
  plan.short_read_rate = 0.15;
  plan.delay_rate = 0.05;
  plan.delay_ms = 1;
  plan.connect_refuse_rate = 0.08;
  Orb& client = Client(plan);

  constexpr int kCalls = 120;
  int successes = 0;
  int clean_failures = 0;
  for (int i = 0; i < kCalls; ++i) {
    auto call = client.NewRequest(ref_, "add", false);
    call->PutLong(i);
    call->PutLong(7);
    call->SetIdempotent(true);
    try {
      // Correct-or-clean-error: a survived call must carry the right
      // answer — fault injection must never silently corrupt results.
      EXPECT_EQ(client.Invoke(ref_, *call)->GetLong(), i + 7) << "call " << i;
      ++successes;
    } catch (const NetError&) {
      ++clean_failures;  // retries exhausted; surfaced as transport error
    }
  }
  EXPECT_EQ(successes + clean_failures, kCalls);
  EXPECT_GT(successes, 0);
  OrbStats stats = client.Stats();
  EXPECT_GT(stats.faults_injected, 0u);
  // The orb kept recovering rather than wedging on the first fault.
  if (stats.connections_broken > 0) {
    EXPECT_GT(stats.reconnects, 0u);
  }

  // And it is still healthy once the storm has statistics to show.
  auto barrier = client.NewRequest(ref_, "add", false);
  barrier->PutLong(1);
  barrier->PutLong(1);
  barrier->SetIdempotent(true);
  for (int attempt = 0; attempt < 20; ++attempt) {
    try {
      EXPECT_EQ(client.Invoke(ref_, *barrier)->GetLong(), 2);
      return;
    } catch (const NetError&) {
      continue;  // injector still rolling faults; try again
    }
  }
  FAIL() << "orb did not recover after " << kCalls << " chaos calls";
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, FaultMatrixTest, ::testing::Values("text", "hiop"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

}  // namespace
}  // namespace heidi::orb
