// Interceptors (§5 filters pattern): observation, rejection, ordering,
// oneway behaviour, and error replies passing through PostInvoke.
#include "orb/interceptor.h"

#include <gtest/gtest.h>

#include <atomic>

#include "demo/demo.h"
#include "orb/orb.h"

namespace heidi::orb {
namespace {

class CountingClient : public ClientInterceptor {
 public:
  void PreInvoke(const ObjectRef&, const wire::Call& request) override {
    ++pre;
    last_operation = request.Operation();
  }
  void PostInvoke(const ObjectRef&, const wire::Call& reply) override {
    ++post;
    last_status = reply.Status();
  }
  std::atomic<int> pre{0};
  std::atomic<int> post{0};
  std::string last_operation;
  wire::CallStatus last_status = wire::CallStatus::kOk;
};

class CountingServer : public ServerInterceptor {
 public:
  void PreDispatch(const wire::Call& request) override {
    ++pre;
    last_operation = request.Operation();
  }
  void PostDispatch(const wire::Call&, const wire::Call& reply) override {
    ++post;
    last_status = reply.Status();
  }
  std::atomic<int> pre{0};
  std::atomic<int> post{0};
  std::string last_operation;
  wire::CallStatus last_status = wire::CallStatus::kOk;
};

// Rejects every operation whose name is in the deny list (Orbix-filter
// style admission control).
class DenyList : public ServerInterceptor {
 public:
  explicit DenyList(std::string op) : denied_(std::move(op)) {}
  void PreDispatch(const wire::Call& request) override {
    if (request.Operation() == denied_) {
      throw HdError("operation '" + denied_ + "' denied by policy");
    }
  }

 private:
  std::string denied_;
};

class InterceptorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    demo::ForceDemoRegistration();
    server_ = std::make_unique<Orb>();
    server_->ListenTcp();
    client_ = std::make_unique<Orb>();
    ref_ = server_->ExportObject(&impl_, "IDL:Heidi/Echo:1.0");
    echo_ = client_->ResolveAs<HdEcho>(ref_.ToString());
  }
  void TearDown() override {
    client_->Shutdown();
    server_->Shutdown();
  }

  demo::EchoImpl impl_;
  std::unique_ptr<Orb> server_;
  std::unique_ptr<Orb> client_;
  ObjectRef ref_;
  std::shared_ptr<HdEcho> echo_;
};

TEST_F(InterceptorTest, ClientHooksObserveEveryCall) {
  auto counting = std::make_shared<CountingClient>();
  client_->AddClientInterceptor(counting);
  echo_->add(1, 2);
  echo_->echo("x");
  EXPECT_EQ(counting->pre.load(), 2);
  EXPECT_EQ(counting->post.load(), 2);
  EXPECT_EQ(counting->last_operation, "echo");
  EXPECT_EQ(counting->last_status, wire::CallStatus::kOk);
}

TEST_F(InterceptorTest, ServerHooksObserveEveryRequest) {
  auto counting = std::make_shared<CountingServer>();
  server_->AddServerInterceptor(counting);
  echo_->add(1, 2);
  EXPECT_EQ(counting->pre.load(), 1);
  EXPECT_EQ(counting->post.load(), 1);
  EXPECT_EQ(counting->last_operation, "add");
}

TEST_F(InterceptorTest, PreDispatchRejectionReachesClientAsRemoteError) {
  server_->AddServerInterceptor(std::make_shared<DenyList>("add"));
  try {
    echo_->add(1, 2);
    FAIL() << "expected rejection";
  } catch (const RemoteError& e) {
    EXPECT_NE(std::string(e.what()).find("denied by policy"),
              std::string::npos);
  }
  // Undeniied operations keep working, and the skeleton never ran for
  // the rejected one.
  EXPECT_EQ(echo_->echo("ok"), "ok");
}

TEST_F(InterceptorTest, RejectionSkipsSkeletonCreation) {
  server_->AddServerInterceptor(std::make_shared<DenyList>("echo"));
  EXPECT_THROW(echo_->echo("no"), RemoteError);
  EXPECT_EQ(server_->Stats().skeletons_created, 0u);
}

TEST_F(InterceptorTest, PreInvokeThrowAbortsBeforeSending) {
  class Abort : public ClientInterceptor {
   public:
    void PreInvoke(const ObjectRef&, const wire::Call&) override {
      throw HdError("client-side policy");
    }
  };
  client_->AddClientInterceptor(std::make_shared<Abort>());
  EXPECT_THROW(echo_->add(1, 2), HdError);
  EXPECT_EQ(server_->Stats().requests_served, 0u);
  EXPECT_EQ(client_->Stats().calls_sent, 0u);
}

TEST_F(InterceptorTest, PostInvokeSeesErrorReplies) {
  auto counting = std::make_shared<CountingClient>();
  client_->AddClientInterceptor(counting);
  demo::ThrowingEcho bad;
  ObjectRef bad_ref = server_->ExportObject(&bad, "IDL:Heidi/Echo:1.0");
  auto bad_echo = client_->ResolveAs<HdEcho>(bad_ref.ToString());
  EXPECT_THROW(bad_echo->add(1, 1), RemoteError);
  EXPECT_EQ(counting->post.load(), 1);
  EXPECT_EQ(counting->last_status, wire::CallStatus::kUserException);
}

TEST_F(InterceptorTest, OnewayRunsPreButNotPost) {
  auto counting = std::make_shared<CountingClient>();
  client_->AddClientInterceptor(counting);
  echo_->post("event");
  ASSERT_TRUE(impl_.WaitForPosts(1));
  EXPECT_EQ(counting->pre.load(), 1);
  EXPECT_EQ(counting->post.load(), 0);  // no reply for oneway
}

TEST_F(InterceptorTest, OrderingPreInOrderPostInReverse) {
  class Tracer : public ClientInterceptor {
   public:
    Tracer(std::vector<std::string>* log, std::string name)
        : log_(log), name_(std::move(name)) {}
    void PreInvoke(const ObjectRef&, const wire::Call&) override {
      log_->push_back("pre:" + name_);
    }
    void PostInvoke(const ObjectRef&, const wire::Call&) override {
      log_->push_back("post:" + name_);
    }

   private:
    std::vector<std::string>* log_;
    std::string name_;
  };
  std::vector<std::string> log;
  client_->AddClientInterceptor(std::make_shared<Tracer>(&log, "first"));
  client_->AddClientInterceptor(std::make_shared<Tracer>(&log, "second"));
  echo_->add(1, 2);
  EXPECT_EQ(log, (std::vector<std::string>{"pre:first", "pre:second",
                                           "post:second", "post:first"}));
}

TEST_F(InterceptorTest, ThrowingPostHooksAreContained) {
  class BadPost : public ClientInterceptor {
   public:
    void PostInvoke(const ObjectRef&, const wire::Call&) override {
      throw HdError("post boom");
    }
  };
  class BadPostServer : public ServerInterceptor {
   public:
    void PostDispatch(const wire::Call&, const wire::Call&) override {
      throw HdError("server post boom");
    }
  };
  client_->AddClientInterceptor(std::make_shared<BadPost>());
  server_->AddServerInterceptor(std::make_shared<BadPostServer>());
  // Post-hook failures are logged, not propagated: the call succeeds.
  EXPECT_EQ(echo_->add(20, 22), 42);
}

TEST_F(InterceptorTest, NullInterceptorIgnored) {
  client_->AddClientInterceptor(nullptr);
  server_->AddServerInterceptor(nullptr);
  EXPECT_EQ(echo_->add(1, 1), 2);
}

}  // namespace
}  // namespace heidi::orb
