// The §3.1 caching story, with each cache switchable: connections are
// cached and reused, stubs and skeletons are cached per address space, and
// turning a cache off is observable in the orb's counters.
#include <gtest/gtest.h>

#include "demo/demo.h"
#include "orb/orb.h"

namespace heidi::orb {
namespace {

struct Fixture {
  explicit Fixture(OrbOptions client_options = {},
                   OrbOptions server_options = {}) {
    demo::ForceDemoRegistration();
    server = std::make_unique<Orb>(server_options);
    server->ListenTcp();
    client = std::make_unique<Orb>(client_options);
    ref = server->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  }
  ~Fixture() {
    client->Shutdown();
    server->Shutdown();
  }

  demo::EchoImpl impl;
  std::unique_ptr<Orb> server;
  std::unique_ptr<Orb> client;
  ObjectRef ref;
};

TEST(ConnectionCache, ReusedAcrossCalls) {
  Fixture fx;
  auto echo = fx.client->ResolveAs<HdEcho>(fx.ref.ToString());
  for (int i = 0; i < 10; ++i) echo->echo("x");
  EXPECT_EQ(fx.client->Stats().connections_opened, 1u);
}

TEST(ConnectionCache, DisabledOpensPerCall) {
  OrbOptions client_options;
  client_options.cache_connections = false;
  Fixture fx(client_options);
  auto echo = fx.client->ResolveAs<HdEcho>(fx.ref.ToString());
  for (int i = 0; i < 10; ++i) echo->echo("x");
  EXPECT_EQ(fx.client->Stats().connections_opened, 10u);
}

TEST(ConnectionCache, DroppedOnFailureThenReestablished) {
  Fixture fx;
  auto echo = fx.client->ResolveAs<HdEcho>(fx.ref.ToString());
  echo->echo("a");
  uint16_t port = fx.server->TcpPort();
  fx.server->Shutdown();
  EXPECT_THROW(echo->echo("b"), NetError);
  // Bring a fresh server up on the same port with the same object id.
  OrbOptions server_options;
  Orb revived(server_options);
  revived.ListenTcp(port);
  demo::EchoImpl impl2;
  ObjectRef ref2 = revived.ExportObject(&impl2, "IDL:Heidi/Echo:1.0");
  ASSERT_EQ(ref2.object_id, fx.ref.object_id);  // fresh orbs start at 1000
  EXPECT_EQ(echo->echo("c"), "c");  // reconnects transparently
  revived.Shutdown();
}

TEST(StubCache, SameStubForSameReference) {
  Fixture fx;
  auto a = fx.client->Resolve(fx.ref.ToString());
  auto b = fx.client->Resolve(fx.ref.ToString());
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(fx.client->Stats().stubs_created, 1u);
}

TEST(StubCache, DisabledCreatesFreshStubs) {
  OrbOptions client_options;
  client_options.cache_stubs = false;
  Fixture fx(client_options);
  auto a = fx.client->Resolve(fx.ref.ToString());
  auto b = fx.client->Resolve(fx.ref.ToString());
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(fx.client->Stats().stubs_created, 2u);
}

TEST(StubCache, DifferentReferencesGetDifferentStubs) {
  Fixture fx;
  demo::EchoImpl other;
  ObjectRef other_ref = fx.server->ExportObject(&other, "IDL:Heidi/Echo:1.0");
  auto a = fx.client->Resolve(fx.ref.ToString());
  auto b = fx.client->Resolve(other_ref.ToString());
  EXPECT_NE(a.get(), b.get());
}

TEST(SkeletonCache, OnePerObjectWhenEnabled) {
  Fixture fx;
  auto echo = fx.client->ResolveAs<HdEcho>(fx.ref.ToString());
  for (int i = 0; i < 5; ++i) echo->echo("x");
  EXPECT_EQ(fx.server->Stats().skeletons_created, 1u);
}

TEST(SkeletonCache, DisabledRebuildsPerCall) {
  OrbOptions server_options;
  server_options.cache_skeletons = false;
  Fixture fx({}, server_options);
  auto echo = fx.client->ResolveAs<HdEcho>(fx.ref.ToString());
  for (int i = 0; i < 5; ++i) echo->echo("x");
  EXPECT_EQ(fx.server->Stats().skeletons_created, 5u);
}

TEST(SkeletonCache, LazyUntilFirstRequest) {
  Fixture fx;
  EXPECT_EQ(fx.server->Stats().skeletons_created, 0u);
  // Even resolving a stub on the client does not build a skeleton.
  auto echo = fx.client->ResolveAs<HdEcho>(fx.ref.ToString());
  EXPECT_EQ(fx.server->Stats().skeletons_created, 0u);
  echo->echo("now");
  EXPECT_EQ(fx.server->Stats().skeletons_created, 1u);
}

}  // namespace
}  // namespace heidi::orb
