// End-to-end remote method invocation (Fig 4 client side, Fig 5 server
// side) across every protocol x transport combination, exercising the
// paper's full parameter-passing story: primitives, defaults, enums,
// sequences of object references, `incopy` pass-by-value, callbacks, and
// attribute access.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "demo/demo.h"
#include "orb/orb.h"

namespace heidi::orb {
namespace {

struct Combo {
  const char* protocol;
  const char* transport;  // "tcp" | "inproc"
};

class Integration : public ::testing::TestWithParam<Combo> {
 protected:
  void SetUp() override {
    demo::ForceDemoRegistration();
    OrbOptions server_options;
    server_options.protocol = GetParam().protocol;
    OrbOptions client_options = server_options;
    if (std::string(GetParam().transport) == "inproc") {
      server_options.inproc_name = UniqueName("server");
      client_options.inproc_name = UniqueName("client");
    }
    server_ = std::make_unique<Orb>(server_options);
    client_ = std::make_unique<Orb>(client_options);
    if (std::string(GetParam().transport) == "tcp") {
      server_->ListenTcp();
      client_->ListenTcp();  // client must be reachable for callbacks
    }
  }

  void TearDown() override {
    client_->Shutdown();
    server_->Shutdown();
  }

  static std::string UniqueName(const char* role) {
    static std::atomic<int> counter{0};
    return std::string(role) + "-" + std::to_string(counter.fetch_add(1));
  }

  std::unique_ptr<Orb> server_;
  std::unique_ptr<Orb> client_;
};

TEST_P(Integration, PrimitiveEcho) {
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  auto echo = client_->ResolveAs<HdEcho>(ref.ToString());
  EXPECT_EQ(echo->echo("hello"), "hello");
  EXPECT_EQ(echo->echo(""), "");
  EXPECT_EQ(echo->add(2, 40), 42);
  EXPECT_EQ(echo->add(-5, 5), 0);
  EXPECT_DOUBLE_EQ(echo->norm(3, 4), 5.0);
  EXPECT_EQ(static_cast<bool>(echo->flip(::XTrue)), false);
  EXPECT_EQ(echo->blob("abc"), "cba");
}

TEST_P(Integration, StringsWithHostileCharacters) {
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  auto echo = client_->ResolveAs<HdEcho>(ref.ToString());
  std::string hostile = "spaces and\nnewlines % # ] [: \t done";
  EXPECT_EQ(echo->echo(hostile), hostile);
  std::string binary;
  for (int i = 1; i < 256; ++i) binary.push_back(static_cast<char>(i));
  EXPECT_EQ(echo->blob(binary), std::string(binary.rbegin(), binary.rend()));
}

TEST_P(Integration, LargePayload) {
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  auto echo = client_->ResolveAs<HdEcho>(ref.ToString());
  std::string big(300 * 1024, 'b');
  EXPECT_EQ(echo->echo(big), big);
}

TEST_P(Integration, DefaultParametersApplyAtTheCallSite) {
  demo::AImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/A:1.0");
  auto a = client_->ResolveAs<HdA>(ref.ToString());
  a->p();      // default l = 0
  a->p(123);
  a->q();      // default s = Start
  a->q(Stop);
  a->s();      // default b = XTrue
  a->s(::XFalse);
  auto obs = impl.Snapshot();
  EXPECT_EQ(obs.p_values, (std::vector<long>{0, 123}));
  ASSERT_EQ(obs.q_values.size(), 2u);
  EXPECT_EQ(obs.q_values[0], Start);
  EXPECT_EQ(obs.q_values[1], Stop);
  EXPECT_EQ(obs.s_values, (std::vector<bool>{true, false}));
}

TEST_P(Integration, ReadonlyAttribute) {
  demo::AImpl impl;
  impl.SetButtonState(Stop);
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/A:1.0");
  auto a = client_->ResolveAs<HdA>(ref.ToString());
  EXPECT_EQ(a->GetButton(), Stop);
  impl.SetButtonState(Start);
  EXPECT_EQ(a->GetButton(), Start);
}

TEST_P(Integration, ObjectReferenceParameterWithCallback) {
  // Client passes its own object by reference; the server's f() calls
  // value() on it, which travels back to the client.
  demo::AImpl server_a;
  ObjectRef ref = server_->ExportObject(&server_a, "IDL:Heidi/A:1.0");
  auto a = client_->ResolveAs<HdA>(ref.ToString());

  demo::AImpl client_a;  // lives in the client address space
  a->f(&client_a);
  auto obs = server_a.Snapshot();
  EXPECT_EQ(obs.f_calls, 1);
  EXPECT_FALSE(obs.last_f_null);
  EXPECT_EQ(obs.last_f_value, 7000);  // fetched via callback
}

TEST_P(Integration, NullObjectReference) {
  demo::AImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/A:1.0");
  auto a = client_->ResolveAs<HdA>(ref.ToString());
  a->f(nullptr);
  EXPECT_TRUE(impl.Snapshot().last_f_null);
}

TEST_P(Integration, IncopyPassesSerializableByValue) {
  demo::AImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/A:1.0");
  auto a = client_->ResolveAs<HdA>(ref.ToString());

  demo::SerializableS value(42);
  a->g(&value);
  auto obs = impl.Snapshot();
  EXPECT_EQ(obs.g_calls, 1);
  EXPECT_EQ(obs.last_g_value, 42);
  // By value: the server saw a *copy*, not the client's object.
  EXPECT_NE(obs.last_g_pointer, static_cast<const void*>(&value));
  // And the client's object was never exported by the incopy pass.
  EXPECT_EQ(client_->ExportedCount(), 0u);
}

TEST_P(Integration, IncopyFallsBackToReferenceForNonSerializable) {
  // §3.1: incopy degrades to by-reference when the object does not
  // implement HdSerializable.
  demo::AImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/A:1.0");
  auto a = client_->ResolveAs<HdA>(ref.ToString());

  demo::SImpl plain(99);
  a->g(&plain);
  auto obs = impl.Snapshot();
  EXPECT_EQ(obs.last_g_value, 99);       // via callback
  EXPECT_EQ(client_->ExportedCount(), 1u);  // ref pass exported it
}

TEST_P(Integration, SequencesOfObjectReferences) {
  demo::AImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/A:1.0");
  auto a = client_->ResolveAs<HdA>(ref.ToString());

  demo::SImpl s1(11), s2(22), s3(33);
  HdSSequence seq;
  seq.Append(&s1);
  seq.Append(&s2);
  seq.Append(&s3);
  a->t(&seq);
  HdSSequence empty;
  a->t(&empty);
  auto obs = impl.Snapshot();
  ASSERT_EQ(obs.t_sequences.size(), 2u);
  EXPECT_EQ(obs.t_sequences[0], (std::vector<long>{11, 22, 33}));
  EXPECT_TRUE(obs.t_sequences[1].empty());
}

TEST_P(Integration, LocalPassthroughReturnsImplementationItself) {
  // A reference that points back into the receiving orb short-circuits to
  // the implementation object (no stub in the middle).
  demo::AImpl impl;
  ObjectRef aref = server_->ExportObject(&impl, "IDL:Heidi/A:1.0");
  demo::SImpl local(5);
  ObjectRef sref = server_->ExportObject(&local, "IDL:Heidi/S:1.0");
  auto a = client_->ResolveAs<HdA>(aref.ToString());

  // Resolve the server-side S on the *client*, then pass it to the
  // server: the server should unwrap it to its own SImpl.
  auto s_stub = client_->ResolveAs<HdS>(sref.ToString());
  a->g(s_stub.get());
  auto obs = impl.Snapshot();
  EXPECT_EQ(obs.last_g_value, 5);
  EXPECT_EQ(obs.last_g_pointer, static_cast<const void*>(&local));
}

TEST_P(Integration, OnewayDeliveredAsynchronously) {
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  auto echo = client_->ResolveAs<HdEcho>(ref.ToString());
  echo->post("one");
  echo->post("two");
  ASSERT_TRUE(impl.WaitForPosts(2));
  EXPECT_EQ(impl.Events(), (std::vector<HdString>{"one", "two"}));
}

TEST_P(Integration, RemoteExceptionRelayed) {
  demo::ThrowingEcho impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  auto echo = client_->ResolveAs<HdEcho>(ref.ToString());
  try {
    echo->add(1, 1);
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_NE(std::string(e.what()).find("add exploded"), std::string::npos);
  }
  // The connection survives the exception: other methods still work.
  EXPECT_EQ(echo->echo("still alive"), "still alive");
}

TEST_P(Integration, SkeletonDispatchDelegatesToBase) {
  // ping() and value() are declared on S; calling them through an A stub
  // exercises A_skel -> S_skel dispatch delegation (§3.1).
  demo::AImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/A:1.0");
  auto a = client_->ResolveAs<HdA>(ref.ToString());
  a->ping();
  EXPECT_EQ(a->value(), 7000);
}

TEST_P(Integration, StubsAreCachedPerReference) {
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  auto first = client_->Resolve(ref.ToString());
  auto second = client_->Resolve(ref.ToString());
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(client_->Stats().stubs_created, 1u);
}

TEST_P(Integration, ExportIsIdempotentPerObject) {
  demo::EchoImpl impl;
  ObjectRef first = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  ObjectRef second = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  EXPECT_EQ(first, second);
  EXPECT_EQ(server_->ExportedCount(), 1u);
}

TEST_P(Integration, SkeletonCreatedLazilyOnFirstCall) {
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  EXPECT_EQ(server_->Stats().skeletons_created, 0u);  // export alone: none
  auto echo = client_->ResolveAs<HdEcho>(ref.ToString());
  echo->echo("x");
  EXPECT_EQ(server_->Stats().skeletons_created, 1u);
  echo->echo("y");
  EXPECT_EQ(server_->Stats().skeletons_created, 1u);  // cached
}

TEST_P(Integration, ConnectionsAreCachedPerEndpoint) {
  demo::EchoImpl impl;
  demo::AImpl a_impl;
  ObjectRef ref1 = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  ObjectRef ref2 = server_->ExportObject(&a_impl, "IDL:Heidi/A:1.0");
  auto echo = client_->ResolveAs<HdEcho>(ref1.ToString());
  auto a = client_->ResolveAs<HdA>(ref2.ToString());
  for (int i = 0; i < 5; ++i) echo->echo("x");
  a->p(1);
  // One endpoint, many calls, two objects: exactly one connection.
  EXPECT_EQ(client_->Stats().connections_opened, 1u);
}

TEST_P(Integration, ManySequentialCalls) {
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  auto echo = client_->ResolveAs<HdEcho>(ref.ToString());
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(echo->add(i, i), 2 * i);
  }
  EXPECT_EQ(server_->Stats().requests_served, 500u);
}

TEST_P(Integration, ConcurrentClientThreadsShareOneConnection) {
  demo::EchoImpl impl;
  ObjectRef ref = server_->ExportObject(&impl, "IDL:Heidi/Echo:1.0");
  auto echo = client_->ResolveAs<HdEcho>(ref.ToString());
  constexpr int kThreads = 4, kCalls = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCalls; ++i) {
        if (echo->add(t, i) != t + i) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->Stats().requests_served,
            static_cast<uint64_t>(kThreads * kCalls));
}

INSTANTIATE_TEST_SUITE_P(
    Combos, Integration,
    ::testing::Values(Combo{"text", "tcp"}, Combo{"text", "inproc"},
                      Combo{"hiop", "tcp"}, Combo{"hiop", "inproc"}),
    [](const ::testing::TestParamInfo<Combo>& param_info) {
      return std::string(param_info.param.protocol) + "_" +
             param_info.param.transport;
    });

}  // namespace
}  // namespace heidi::orb
