// Transport-failure semantics of the invocation path: which failures are
// retried (determinate always, indeterminate only behind the idempotency
// gate), how the connection cache is invalidated and transparently
// re-resolved, and how backoff defers to the per-call deadline. The
// OrbStats retry counters prove each behavior rather than inferring it
// from timing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "demo/demo.h"
#include "net/buffered.h"
#include "net/fault.h"
#include "net/tcp.h"
#include "orb/orb.h"
#include "support/strings.h"

namespace heidi::orb {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

int ElapsedMs(Clock::time_point since) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - since)
                              .count());
}

class SlowEcho : public demo::EchoImpl {
 public:
  explicit SlowEcho(std::chrono::milliseconds delay) : delay_(delay) {}
  HdString echo(HdStringView msg) override {
    std::this_thread::sleep_for(delay_);
    return HdString(msg);
  }

 private:
  std::chrono::milliseconds delay_;
};

// Grabs an ephemeral port nothing listens on: connects to it are refused
// by the kernel immediately (determinate failure, zero bytes sent).
uint16_t DeadPort() {
  net::TcpAcceptor acceptor;
  uint16_t port = acceptor.Port();
  acceptor.Close();
  return port;
}

// The acceptance-criteria demo: a twoway invocation survives an injected
// mid-reply disconnect because the orb invalidates the cached connection,
// reconnects, and resends — and the stats counters prove every step.
TEST(Retry, InvocationSurvivesInjectedDisconnect) {
  demo::ForceDemoRegistration();
  Orb server;
  server.ListenTcp();
  demo::EchoImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  net::FaultPlan plan;
  plan.fail_read_at = 1;  // the first reply read dies mid-message
  OrbOptions options;
  options.fault_injector = std::make_shared<net::FaultInjector>(plan);
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 1;
  Orb client(options);

  auto call = client.NewRequest(ref, "add", false);
  call->PutLong(20);
  call->PutLong(22);
  call->SetIdempotent(true);  // indeterminate failures may resend
  auto reply = client.Invoke(ref, *call);
  EXPECT_EQ(reply->GetLong(), 42);

  OrbStats stats = client.Stats();
  EXPECT_EQ(stats.connections_broken, 1u);  // injected disconnect condemned it
  EXPECT_EQ(stats.reconnects, 1u);          // cache entry was re-resolved
  EXPECT_EQ(stats.retries, 1u);             // the request was resent once
  EXPECT_EQ(stats.retry_give_ups, 0u);
  EXPECT_EQ(stats.connections_opened, 2u);
  EXPECT_GE(stats.faults_injected, 1u);
  client.Shutdown();
  server.Shutdown();
}

TEST(Retry, MidReplyDisconnectFailsOnlyAffectedPendingCalls) {
  demo::ForceDemoRegistration();
  auto doomed_server = std::make_unique<Orb>();
  doomed_server->ListenTcp();
  SlowEcho doomed_impl(1500ms);  // still cooking when the plug is pulled
  ObjectRef doomed_ref =
      doomed_server->ExportObject(&doomed_impl, "IDL:Heidi/Echo:1.0");

  Orb healthy_server;
  healthy_server.ListenTcp();
  SlowEcho healthy_impl(300ms);
  ObjectRef healthy_ref =
      healthy_server.ExportObject(&healthy_impl, "IDL:Heidi/Echo:1.0");

  Orb client;  // default policy: fail fast, no retries
  auto doomed_call = client.NewRequest(doomed_ref, "echo", false);
  doomed_call->PutString("never");
  ReplyHandle doomed = client.InvokeAsync(doomed_ref, *doomed_call);
  auto healthy_call = client.NewRequest(healthy_ref, "echo", false);
  healthy_call->PutString("fine");
  ReplyHandle healthy = client.InvokeAsync(healthy_ref, *healthy_call);

  doomed_server->Shutdown();  // disconnect with both calls in flight
  EXPECT_THROW(doomed.Get(), NetError);
  // The other connection's pending call is untouched by the disconnect.
  EXPECT_EQ(healthy.Get()->GetString(), "fine");
  EXPECT_EQ(client.Stats().connections_broken, 1u);
  client.Shutdown();
  healthy_server.Shutdown();
}

TEST(Retry, RetriedOnewayIsNotDuplicatedWhenRequestNeverLeft) {
  // A oneway submitted to a broken connection fails determinately (the
  // bytes provably never left this process), so the retry resends it —
  // and the server must observe the request EXACTLY once. The injected
  // connect refusal forces an actual retry (a plain reconnect-on-broken
  // would not bump `retries`).
  net::TcpAcceptor acceptor;
  std::atomic<int> posts_seen{0};
  std::thread fake_server([&] {
    {  // connection #1: answer one call, then drop the connection
      auto channel = acceptor.Accept();
      ASSERT_NE(channel, nullptr);
      net::BufferedReader reader(*channel);
      std::string line;
      ASSERT_TRUE(reader.ReadLine(line));
      std::vector<std::string> fields = str::Split(line, ' ');
      ASSERT_GE(fields.size(), 5u);
      std::string reply = "REP " + fields[1] + " OK  s:pong\n";
      channel->WriteAll(reply.data(), reply.size());
    }  // channel destroyed: client's demux sees EOF and condemns the mux
    {  // connection #2: count oneways until the barrier twoway arrives
      auto channel = acceptor.Accept();
      ASSERT_NE(channel, nullptr);
      net::BufferedReader reader(*channel);
      std::string line;
      while (reader.ReadLine(line)) {
        std::vector<std::string> fields = str::Split(line, ' ');
        ASSERT_GE(fields.size(), 5u);
        if (fields[4] == "post") {
          EXPECT_EQ(fields[2], "O");
          posts_seen.fetch_add(1);
          continue;
        }
        ASSERT_EQ(fields[4], "echo");
        std::string reply = "REP " + fields[1] + " OK  s:done\n";
        channel->WriteAll(reply.data(), reply.size());
        break;
      }
      char buf[16];
      while (channel->Read(buf, sizeof buf) != 0) {
      }
    }
  });

  net::FaultPlan plan;
  plan.refuse_connect_at = 2;  // the reconnect's first attempt is refused
  OrbOptions options;
  options.fault_injector = std::make_shared<net::FaultInjector>(plan);
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 1;
  Orb client(options);
  ObjectRef ref = ObjectRef::Parse("@tcp:127.0.0.1:" +
                                   std::to_string(acceptor.Port()) +
                                   "#1#IDL:Heidi/Echo:1.0");

  auto ping = client.NewRequest(ref, "ping", false);
  EXPECT_EQ(client.Invoke(ref, *ping)->GetString(), "pong");

  // Wait until the client has noticed the dropped connection, so the
  // oneway deterministically hits a broken mux.
  auto wait_start = Clock::now();
  while (client.Stats().connections_broken < 1 && ElapsedMs(wait_start) < 5000) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(client.Stats().connections_broken, 1u);

  auto post = client.NewRequest(ref, "post", true);
  post->PutString("only-once");
  client.InvokeOneway(ref, *post);

  auto barrier = client.NewRequest(ref, "echo", false);
  barrier->PutString("barrier");
  EXPECT_EQ(client.Invoke(ref, *barrier)->GetString(), "done");

  OrbStats stats = client.Stats();
  EXPECT_EQ(stats.retries, 1u);             // the refused connect was retried
  EXPECT_EQ(stats.reconnects, 1u);          // broken entry replaced once
  EXPECT_EQ(stats.connections_opened, 2u);  // refused attempt never counted
  EXPECT_EQ(stats.retry_give_ups, 0u);
  client.Shutdown();  // closes connection #2: the fake server sees EOF
  fake_server.join();
  EXPECT_EQ(posts_seen.load(), 1);  // retried, yet delivered exactly once
}

TEST(Retry, BackoffRespectsPerCallDeadline) {
  // The configured backoff (60s) dwarfs the call's 300ms deadline: rather
  // than sleeping past the deadline and timing out anyway, the policy
  // gives up immediately.
  OrbOptions options;
  options.retry.max_attempts = 5;
  options.retry.initial_backoff_ms = 60000;
  options.retry.max_backoff_ms = 60000;  // don't let the cap rescue it
  Orb client(options);
  ObjectRef ref = ObjectRef::Parse("@tcp:127.0.0.1:" +
                                   std::to_string(DeadPort()) +
                                   "#1#IDL:Heidi/Echo:1.0");
  auto call = client.NewRequest(ref, "ping", false);
  auto start = Clock::now();
  EXPECT_THROW(client.Invoke(ref, *call, /*timeout_ms=*/300), NetError);
  EXPECT_LT(ElapsedMs(start), 2000);  // did NOT serve the 60s backoff
  OrbStats stats = client.Stats();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.retry_give_ups, 1u);
  client.Shutdown();
}

TEST(Retry, RetryBudgetBoundsTotalRetries) {
  OrbOptions options;
  options.retry.max_attempts = 10;
  options.retry.initial_backoff_ms = 1;
  options.retry.retry_budget = 2;  // orb-wide, across all invocations
  Orb client(options);
  ObjectRef ref = ObjectRef::Parse("@tcp:127.0.0.1:" +
                                   std::to_string(DeadPort()) +
                                   "#1#IDL:Heidi/Echo:1.0");
  auto call = client.NewRequest(ref, "ping", false);
  EXPECT_THROW(client.Invoke(ref, *call), NetError);
  OrbStats stats = client.Stats();
  EXPECT_EQ(stats.retries, 2u);  // budget spent, then the failure surfaced
  EXPECT_EQ(stats.retry_give_ups, 1u);
  client.Shutdown();
}

TEST(Retry, IndeterminateFailureIsNotRetriedWithoutIdempotencyMark) {
  // A mid-call disconnect leaves the call's fate unknown: the request may
  // have executed server-side. An unmarked twoway must NOT be resent —
  // but the condemned connection is still replaced, so the *next* call
  // transparently reconnects.
  demo::ForceDemoRegistration();
  Orb server;
  server.ListenTcp();
  demo::EchoImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  net::FaultPlan plan;
  plan.fail_read_at = 1;
  OrbOptions options;
  options.fault_injector = std::make_shared<net::FaultInjector>(plan);
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 1;
  Orb client(options);

  auto call = client.NewRequest(ref, "add", false);
  call->PutLong(1);
  call->PutLong(2);
  EXPECT_THROW(client.Invoke(ref, *call), NetError);
  OrbStats stats = client.Stats();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.retry_give_ups, 1u);  // retryable policy, gated call

  // The cache entry was invalidated: a fresh call reconnects and works.
  auto again = client.NewRequest(ref, "add", false);
  again->PutLong(1);
  again->PutLong(2);
  EXPECT_EQ(client.Invoke(ref, *again)->GetLong(), 3);
  stats = client.Stats();
  EXPECT_EQ(stats.reconnects, 1u);
  EXPECT_EQ(stats.connections_opened, 2u);
  client.Shutdown();
  server.Shutdown();
}

TEST(Retry, RetryIndeterminateOptInRetriesUnmarkedTwoway) {
  demo::ForceDemoRegistration();
  Orb server;
  server.ListenTcp();
  demo::EchoImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  net::FaultPlan plan;
  plan.fail_read_at = 1;
  OrbOptions options;
  options.fault_injector = std::make_shared<net::FaultInjector>(plan);
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 1;
  options.retry.retry_indeterminate = true;  // caller accepts at-least-once
  Orb client(options);

  auto call = client.NewRequest(ref, "add", false);
  call->PutLong(20);
  call->PutLong(1);
  EXPECT_EQ(client.Invoke(ref, *call)->GetLong(), 21);
  EXPECT_EQ(client.Stats().retries, 1u);
  client.Shutdown();
  server.Shutdown();
}

TEST(Retry, DeterminateRefusalRetriedThroughTheStubPath) {
  // ConnectError means the request never left, so even a plain
  // non-idempotent stub call retries — transparently, inside the stub's
  // normal Invoke.
  demo::ForceDemoRegistration();
  Orb server;
  server.ListenTcp();
  demo::EchoImpl impl;
  ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  net::FaultPlan plan;
  plan.refuse_connect_at = 1;  // very first connect refused
  OrbOptions options;
  options.fault_injector = std::make_shared<net::FaultInjector>(plan);
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_ms = 1;
  Orb client(options);

  auto echo = client.ResolveAs<HdEcho>(ref.ToString());
  EXPECT_EQ(echo->echo("through the storm"), "through the storm");
  OrbStats stats = client.Stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.connections_opened, 1u);  // only the successful connect
  EXPECT_GE(stats.faults_injected, 1u);
  client.Shutdown();
  server.Shutdown();
}

}  // namespace
}  // namespace heidi::orb
