#include "support/bytes.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace heidi::bytes {
namespace {

// --- pool accounting ---------------------------------------------------------

TEST(IoBufPool, FirstGetIsAMissReleaseRecycles) {
  IoBufPool pool;
  {
    IoBufPtr buf = pool.Get();
    ASSERT_TRUE(buf);
    EXPECT_EQ(buf->Capacity(), IoBufPool::kSlabBytes);
    EXPECT_EQ(buf->Size(), 0u);
    IoBufPool::Stats s = pool.GetStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.outstanding_bufs, 1u);
    EXPECT_EQ(s.outstanding_bytes, IoBufPool::kSlabBytes);
  }
  IoBufPool::Stats s = pool.GetStats();
  EXPECT_EQ(s.recycles, 1u);
  EXPECT_EQ(s.outstanding_bufs, 0u);
  EXPECT_EQ(s.outstanding_bytes, 0u);
}

TEST(IoBufPool, SecondGetOnSameThreadIsAHit) {
  IoBufPool pool;
  { IoBufPtr buf = pool.Get(); }
  IoBufPtr again = pool.Get();
  IoBufPool::Stats s = pool.GetStats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  // A recycled slab comes back reset, ready for exclusive appends.
  EXPECT_EQ(again->Size(), 0u);
}

TEST(IoBufPool, OversizeGetIsServedButNeverRecycled) {
  IoBufPool pool;
  constexpr size_t kBig = IoBufPool::kSlabBytes * 4;
  {
    IoBufPtr buf = pool.Get(kBig);
    EXPECT_GE(buf->Capacity(), kBig);
    EXPECT_EQ(pool.GetStats().outstanding_bytes, kBig);
  }
  IoBufPool::Stats s = pool.GetStats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.recycles, 0u);  // freed: the free list stays homogeneous
  EXPECT_EQ(s.outstanding_bufs, 0u);
  // The next standard Get cannot be served by the freed oversize slab.
  IoBufPtr small = pool.Get();
  EXPECT_EQ(pool.GetStats().misses, 2u);
}

TEST(IoBufPool, SharedReferencesKeepTheSlabAlive) {
  IoBufPool pool;
  IoBufPtr a = pool.Get();
  std::memcpy(a->WritePtr(), "hold", 4);
  a->Advance(4);
  IoBufPtr b = a;  // refcount 2
  a.reset();
  EXPECT_EQ(pool.GetStats().outstanding_bufs, 1u);
  EXPECT_EQ(std::string_view(b->Data(), 4), "hold");
  b.reset();
  EXPECT_EQ(pool.GetStats().outstanding_bufs, 0u);
  EXPECT_EQ(pool.GetStats().recycles, 1u);
}

TEST(IoBufPool, ConcurrentGetReleaseBalances) {
  IoBufPool pool;
  constexpr int kThreads = 8;
  constexpr int kRounds = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < kRounds; ++i) {
        IoBufPtr buf = pool.Get();
        std::memset(buf->WritePtr(), 0x5a, 64);
        buf->Advance(64);
        IoBufPtr shared = buf;  // exercise cross-reference release
        buf.reset();
      }
    });
  }
  for (auto& t : threads) t.join();
  IoBufPool::Stats s = pool.GetStats();
  EXPECT_EQ(s.hits + s.misses, static_cast<uint64_t>(kThreads) * kRounds);
  EXPECT_EQ(s.outstanding_bufs, 0u);
  EXPECT_EQ(s.outstanding_bytes, 0u);
}

// --- chain append ------------------------------------------------------------

TEST(BufferChain, AppendAccumulatesInOneSlab) {
  IoBufPool pool;
  BufferChain chain(&pool);
  chain.Append("hello ");
  chain.Append("world");
  EXPECT_EQ(chain.Size(), 11u);
  ASSERT_EQ(chain.Slices().size(), 1u);  // both appends share the tail slab
  EXPECT_EQ(chain.ToString(), "hello world");
}

TEST(BufferChain, AppendSplitsAcrossSlabs) {
  IoBufPool pool;
  BufferChain chain(&pool);
  // Three slabs' worth in one call must split, preserving byte order.
  std::string big(IoBufPool::kSlabBytes * 3 + 17, '\0');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 23));
  }
  chain.Append(big);
  EXPECT_EQ(chain.Size(), big.size());
  EXPECT_GE(chain.Slices().size(), 3u);
  EXPECT_EQ(chain.ToString(), big);
}

TEST(BufferChain, AppendZerosPads) {
  IoBufPool pool;
  BufferChain chain(&pool);
  chain.Append("x");
  chain.AppendZeros(3);
  chain.Append("y");
  EXPECT_EQ(chain.ToString(), std::string("x\0\0\0y", 5));
}

TEST(BufferChain, CopyToMatchesToString) {
  IoBufPool pool;
  BufferChain chain(&pool);
  chain.Append("scatter");
  chain.Append("gather");
  std::string out(chain.Size(), '?');
  chain.CopyTo(out.data());
  EXPECT_EQ(out, chain.ToString());
}

// --- chain sharing -----------------------------------------------------------

TEST(BufferChain, AppendChainSharesWithoutCopying) {
  IoBufPool pool;
  BufferChain source(&pool);
  source.Append("payload-bytes");
  BufferChain frame(&pool);
  frame.Append("header|");
  frame.AppendChain(source);
  EXPECT_EQ(frame.ToString(), "header|payload-bytes");
  // Shared, not copied: both chains reference the same slab.
  ASSERT_FALSE(source.Slices().empty());
  EXPECT_EQ(frame.Slices().back().buf.get(), source.Slices().front().buf.get());
}

TEST(BufferChain, SharedBytesSurviveSourceClear) {
  IoBufPool pool;
  BufferChain frame(&pool);
  {
    BufferChain source(&pool);
    source.Append("outlives the source chain");
    frame.AppendChain(source);
    source.Clear();
  }
  EXPECT_EQ(frame.ToString(), "outlives the source chain");
  frame.Clear();
  EXPECT_EQ(pool.GetStats().outstanding_bufs, 0u);
}

TEST(BufferChain, AppendAfterSharingNeverWritesSharedSlab) {
  IoBufPool pool;
  BufferChain source(&pool);
  source.Append("stable");
  BufferChain frame(&pool);
  frame.AppendChain(source);
  // Growing the consumer must not scribble into the shared slab's tail
  // (the source chain may still be growing there).
  frame.Append("-suffix");
  source.Append("-more");
  EXPECT_EQ(frame.ToString(), "stable-suffix");
  EXPECT_EQ(source.ToString(), "stable-more");
}

TEST(BufferChain, AppendSliceWindowsIntoASlab) {
  IoBufPool pool;
  IoBufPtr buf = pool.Get();
  std::memcpy(buf->WritePtr(), "0123456789", 10);
  buf->Advance(10);
  BufferChain chain(&pool);
  chain.AppendSlice(buf, 2, 5);
  EXPECT_EQ(chain.ToString(), "23456");
}

TEST(BufferChain, MoveTransfersOwnership) {
  IoBufPool pool;
  BufferChain a(&pool);
  a.Append("moved");
  BufferChain b = std::move(a);
  EXPECT_EQ(b.ToString(), "moved");
  EXPECT_TRUE(a.Empty());  // NOLINT(bugprone-use-after-move): post-move state is specified
  a.Append("reused");
  EXPECT_EQ(a.ToString(), "reused");
}

}  // namespace
}  // namespace heidi::bytes
