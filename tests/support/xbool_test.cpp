#include "support/xbool.h"

#include <gtest/gtest.h>

namespace heidi {
namespace {

TEST(XBool, DefaultIsFalse) {
  XBool b;
  EXPECT_FALSE(static_cast<bool>(b));
}

TEST(XBool, ConstantsMatchBools) {
  EXPECT_TRUE(static_cast<bool>(XTrue));
  EXPECT_FALSE(static_cast<bool>(XFalse));
}

TEST(XBool, ImplicitConversionFromBool) {
  XBool b = true;
  EXPECT_TRUE(static_cast<bool>(b));
  b = false;
  EXPECT_FALSE(static_cast<bool>(b));
}

TEST(XBool, Equality) {
  EXPECT_EQ(XTrue, XBool(true));
  EXPECT_EQ(XFalse, XBool(false));
  EXPECT_NE(XTrue, XFalse);
}

TEST(XBool, UsableInConditions) {
  XBool b = XTrue;
  int taken = 0;
  if (b) taken = 1;
  EXPECT_EQ(taken, 1);
}

TEST(XBool, ConstexprUsable) {
  static_assert(XTrue == XBool(true));
  static_assert(XFalse != XTrue);
  SUCCEED();
}

}  // namespace
}  // namespace heidi
