#include "support/typeinfo.h"

#include <gtest/gtest.h>

namespace heidi {
namespace {

// A diamond: Base <- Left, Base <- Right, Left+Right <- Most.
class Base : public virtual HdObject {
 public:
  HD_DECLARE_TYPE();
};
class Left : public virtual Base {
 public:
  HD_DECLARE_TYPE();
};
class Right : public virtual Base {
 public:
  HD_DECLARE_TYPE();
};
class Most : public Left, public Right {
 public:
  HD_DECLARE_TYPE();
};

HD_DEFINE_TYPE(Base, "IDL:Test/Base:1.0", &HdObject::TypeInfo())
HD_DEFINE_TYPE(Left, "IDL:Test/Left:1.0", &Base::TypeInfo())
HD_DEFINE_TYPE(Right, "IDL:Test/Right:1.0", &Base::TypeInfo())
HD_DEFINE_TYPE(Most, "IDL:Test/Most:1.0", &Left::TypeInfo(),
               &Right::TypeInfo())

TEST(HdTypeInfo, IsAReflexive) {
  EXPECT_TRUE(Base::TypeInfo().IsA(Base::TypeInfo()));
  EXPECT_TRUE(Base::TypeInfo().IsA("IDL:Test/Base:1.0"));
}

TEST(HdTypeInfo, IsATransitiveThroughDiamond) {
  const HdTypeInfo& most = Most::TypeInfo();
  EXPECT_TRUE(most.IsA("IDL:Test/Left:1.0"));
  EXPECT_TRUE(most.IsA("IDL:Test/Right:1.0"));
  EXPECT_TRUE(most.IsA("IDL:Test/Base:1.0"));
  EXPECT_TRUE(most.IsA(HdObject::TypeInfo()));
}

TEST(HdTypeInfo, IsANotSymmetric) {
  EXPECT_FALSE(Base::TypeInfo().IsA("IDL:Test/Most:1.0"));
  EXPECT_FALSE(Left::TypeInfo().IsA("IDL:Test/Right:1.0"));
}

TEST(HdTypeInfo, LocalName) {
  EXPECT_EQ(Most::TypeInfo().LocalName(), "Most");
  HdTypeInfo deep{"IDL:Mod/Sub/Deep:1.0", {}};
  EXPECT_EQ(deep.LocalName(), "Deep");
  HdTypeInfo bare{"IDL:Solo:1.0", {}};
  EXPECT_EQ(bare.LocalName(), "Solo");
}

TEST(HdObject, DynamicTypeIsMostDerived) {
  Most m;
  HdObject* obj = &m;
  EXPECT_EQ(&obj->DynamicType(), &Most::TypeInfo());
  EXPECT_TRUE(obj->IsA("IDL:Test/Base:1.0"));
  EXPECT_FALSE(obj->IsA("IDL:Test/Unknown:1.0"));
}

TEST(HdObject, BaseObjectType) {
  class Plain : public HdObject {};
  Plain p;
  EXPECT_EQ(p.DynamicType().RepoId(), "IDL:Heidi/Object:1.0");
}

TEST(HdTypeRegistry, FindsRegisteredTypes) {
  (void)Most::TypeInfo();  // force registration
  const HdTypeInfo* found =
      HdTypeRegistry::Instance().Find("IDL:Test/Most:1.0");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, &Most::TypeInfo());
}

TEST(HdTypeRegistry, UnknownReturnsNull) {
  EXPECT_EQ(HdTypeRegistry::Instance().Find("IDL:No/Such:1.0"), nullptr);
}

TEST(HdTypeRegistry, ReregistrationIsIdempotent) {
  (void)Most::TypeInfo();  // ensure the whole parent chain is registered
  size_t before = HdTypeRegistry::Instance().Size();
  HdTypeRegistry::Instance().Register(&Most::TypeInfo());
  HdTypeRegistry::Instance().Register(&Most::TypeInfo());
  EXPECT_EQ(HdTypeRegistry::Instance().Size(), before);
}

}  // namespace
}  // namespace heidi
