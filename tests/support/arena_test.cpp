// Dispatch-arena unit tests: bump allocation out of the seed slab's
// tail, reset/reuse, pool-backed overflow when the seed is exhausted,
// oversize fallback, and the one-shot DonateTail handoff to reply
// staging.
#include "support/arena.h"

#include <gtest/gtest.h>

#include <cstring>

#include "support/bytes.h"

namespace heidi::support {
namespace {

constexpr size_t kSlab = bytes::IoBufPool::kSlabBytes;

bool InSlab(const void* p, const bytes::IoBufPtr& slab) {
  const char* c = static_cast<const char*>(p);
  return c >= slab->Data() && c < slab->Data() + slab->Capacity();
}

// A seed slab with `frame_bytes` already written — the shape a retained
// HIOP frame has when Orb::HandleRequest seeds the dispatch arena.
bytes::IoBufPtr MakeFrame(bytes::IoBufPool& pool, size_t frame_bytes) {
  auto slab = pool.Get();
  std::memset(slab->WritePtr(), 'F', frame_bytes);
  slab->Advance(frame_bytes);
  return slab;
}

TEST(ArenaTest, SeedTailServesAllocations) {
  bytes::IoBufPool pool;
  auto slab = MakeFrame(pool, 100);
  Arena arena(slab, &pool);
  ASSERT_TRUE(arena.HasSeed());

  void* p = arena.Allocate(64);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(InSlab(p, slab));
  // Scratch starts after the frame bytes, never inside them.
  EXPECT_GE(static_cast<char*>(p), slab->Data() + 100);
  // The arena bumps privately: the slab's own high-water mark is
  // untouched until DonateTail.
  EXPECT_EQ(slab->Size(), 100u);
  // No extra pool traffic for an allocation that fits the tail.
  EXPECT_EQ(arena.GetStats().slab_refills, 0u);
  EXPECT_EQ(pool.GetStats().misses, 1u);  // just the seed itself
}

TEST(ArenaTest, AlignmentIsOnThePointer) {
  bytes::IoBufPool pool;
  // Odd frame size so the scratch base is misaligned on purpose.
  auto slab = MakeFrame(pool, 33);
  Arena arena(slab, &pool);
  (void)arena.AllocateChars(1);
  void* p = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
  void* q = arena.Allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(q) % 16, 0u);
}

TEST(ArenaTest, CopyStringLandsInSeedSlab) {
  bytes::IoBufPool pool;
  auto slab = MakeFrame(pool, 50);
  Arena arena(slab, &pool);
  std::string original = "the quick brown fox";
  std::string_view copy = arena.CopyString(original);
  EXPECT_EQ(copy, original);
  EXPECT_NE(copy.data(), original.data());
  EXPECT_TRUE(InSlab(copy.data(), slab));
}

TEST(ArenaTest, NoSeedFallsBackToPool) {
  bytes::IoBufPool pool;
  Arena arena({}, &pool);
  EXPECT_FALSE(arena.HasSeed());
  void* p = arena.Allocate(128);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.GetStats().slab_refills, 1u);
  std::memset(p, 0xAB, 128);  // must be writable (ASan checks this)
}

TEST(ArenaTest, ExhaustedSeedOverflowsToPool) {
  bytes::IoBufPool pool;
  // Nearly-full seed: only 8 bytes of tail left.
  auto slab = MakeFrame(pool, kSlab - 8);
  Arena arena(slab, &pool);
  void* p = arena.Allocate(256);
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(InSlab(p, slab));  // didn't fit: served by a fresh slab
  EXPECT_EQ(arena.GetStats().slab_refills, 1u);
  std::memset(p, 0xAB, 256);
}

TEST(ArenaTest, OversizeGetsDedicatedBuffer) {
  bytes::IoBufPool pool;
  Arena arena({}, &pool);
  void* p = arena.Allocate(2 * kSlab);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.GetStats().oversize_allocations, 1u);
  std::memset(p, 0xAB, 2 * kSlab);
}

TEST(ArenaTest, ResetRewindsAndReleasesOverflow) {
  bytes::IoBufPool pool;
  auto slab = MakeFrame(pool, 100);
  Arena arena(slab, &pool);

  void* first = arena.Allocate(64, 8);
  // Burn through the seed tail to force pooled overflow slabs.
  for (int i = 0; i < 3; ++i) (void)arena.Allocate(kSlab / 2);
  EXPECT_GE(arena.GetStats().slab_refills, 1u);
  uint64_t recycles_before = pool.GetStats().recycles;
  arena.Reset();
  EXPECT_EQ(arena.GetStats().resets, 1u);
  // Overflow went back to the pool; the seed stays retained.
  EXPECT_GT(pool.GetStats().recycles, recycles_before);

  // The seed region reopened: same bytes get handed out again.
  void* again = arena.Allocate(64, 8);
  EXPECT_EQ(again, first);
}

TEST(ArenaTest, DonateTailSyncsSlabAndIsOneShot) {
  bytes::IoBufPool pool;
  auto slab = MakeFrame(pool, 200);
  Arena arena(slab, &pool);
  std::string_view scratch = arena.CopyString("scratch bytes");

  bytes::IoBufPtr tail = arena.DonateTail();
  ASSERT_TRUE(tail);
  EXPECT_EQ(tail.get(), slab.get());
  EXPECT_TRUE(arena.TailDonated());
  // The slab's Size() moved past both the frame and the arena scratch,
  // so reply staging appends after — never over — the scratch bytes.
  EXPECT_GE(slab->Size(), 200u + scratch.size());
  EXPECT_LE(slab->Data() + 200, scratch.data());
  EXPECT_LE(scratch.data() + scratch.size(), slab->Data() + slab->Size());

  // One-shot: a second donation yields nothing.
  EXPECT_FALSE(arena.DonateTail());

  // Post-donation allocations leave the slab's high-water mark alone
  // (they must not interleave with the donated append region).
  size_t size_after_donation = slab->Size();
  (void)arena.Allocate(512);
  EXPECT_EQ(slab->Size(), size_after_donation);
}

TEST(ArenaTest, DonateTailWithoutSeedOrSpaceReturnsNull) {
  bytes::IoBufPool pool;
  Arena no_seed({}, &pool);
  EXPECT_FALSE(no_seed.DonateTail());

  auto full = MakeFrame(pool, kSlab);  // no free tail at all
  Arena arena(full, &pool);
  EXPECT_FALSE(arena.DonateTail());
}

TEST(ArenaTest, ManySmallAllocationsStayStable) {
  // Pointer stability across refills: earlier allocations must survive
  // later ones (views handed to a skeleton outlive further unescapes).
  bytes::IoBufPool pool;
  auto slab = MakeFrame(pool, kSlab / 2);
  Arena arena(slab, &pool);
  std::vector<std::pair<char*, char>> marks;
  for (int i = 0; i < 200; ++i) {
    char* p = arena.AllocateChars(257);
    char mark = static_cast<char>('a' + (i % 26));
    std::memset(p, mark, 257);
    marks.emplace_back(p, mark);
  }
  EXPECT_GE(arena.GetStats().slab_refills, 1u);
  for (auto& [p, mark] : marks) {
    EXPECT_EQ(p[0], mark);
    EXPECT_EQ(p[256], mark);
  }
}

}  // namespace
}  // namespace heidi::support
