#include "support/hdlist.h"

#include <gtest/gtest.h>

#include <string>

namespace heidi {
namespace {

TEST(HdList, StartsEmpty) {
  HdList<int> list;
  EXPECT_TRUE(list.IsEmpty());
  EXPECT_EQ(list.Size(), 0u);
}

TEST(HdList, AppendAndIndex) {
  HdList<int> list;
  list.Append(1);
  list.Append(2);
  list.Append(3);
  EXPECT_EQ(list.Size(), 3u);
  EXPECT_EQ(list[0], 1);
  EXPECT_EQ(list.At(2), 3);
}

TEST(HdList, Prepend) {
  HdList<int> list{2, 3};
  list.Prepend(1);
  EXPECT_EQ(list[0], 1);
  EXPECT_EQ(list.Size(), 3u);
}

TEST(HdList, RemoveFirstMatchOnly) {
  HdList<int> list{1, 2, 1};
  EXPECT_TRUE(list.Remove(1));
  EXPECT_EQ(list, (HdList<int>{2, 1}));
  EXPECT_FALSE(list.Remove(9));
}

TEST(HdList, AtThrowsOutOfRange) {
  HdList<int> list{1};
  EXPECT_THROW(list.At(1), std::out_of_range);
  const HdList<int>& clist = list;
  EXPECT_THROW(clist.At(5), std::out_of_range);
}

TEST(HdList, Clear) {
  HdList<std::string> list{"a", "b"};
  list.Clear();
  EXPECT_TRUE(list.IsEmpty());
}

TEST(HdList, Equality) {
  EXPECT_EQ((HdList<int>{1, 2}), (HdList<int>{1, 2}));
  EXPECT_NE((HdList<int>{1, 2}), (HdList<int>{2, 1}));
  EXPECT_NE((HdList<int>{1}), (HdList<int>{1, 1}));
}

TEST(HdList, RangeForIteration) {
  HdList<int> list{1, 2, 3};
  int sum = 0;
  for (int v : list) sum += v;
  EXPECT_EQ(sum, 6);
}

TEST(HdListIterator, LegacyProtocol) {
  HdList<std::string> list{"x", "y", "z"};
  std::string joined;
  for (HdListIterator<std::string> it(list); it.More(); it.Next()) {
    joined += it.Item();
  }
  EXPECT_EQ(joined, "xyz");
}

TEST(HdListIterator, EmptyListNeverMore) {
  HdList<int> list;
  HdListIterator<int> it(list);
  EXPECT_FALSE(it.More());
}

TEST(HdListIterator, Reset) {
  HdList<int> list{1, 2};
  HdListIterator<int> it(list);
  it.Next();
  it.Next();
  EXPECT_FALSE(it.More());
  it.Reset();
  EXPECT_TRUE(it.More());
  EXPECT_EQ(it.Item(), 1);
}

TEST(HdList, SizedConstructor) {
  HdList<int> list(4);
  EXPECT_EQ(list.Size(), 4u);
  EXPECT_EQ(list[3], 0);
}

}  // namespace
}  // namespace heidi
