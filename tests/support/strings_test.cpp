#include "support/strings.h"

#include <gtest/gtest.h>

#include <random>

#include "support/error.h"

namespace heidi::str {
namespace {

TEST(Split, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, AdjacentSeparatorsYieldEmptyElements) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Split, EmptyInputYieldsOneEmptyElement) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(Split, NoSeparator) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitN, StopsAtLimit) {
  EXPECT_EQ(SplitN("a:b:c:d", ':', 2),
            (std::vector<std::string>{"a", "b:c:d"}));
  EXPECT_EQ(SplitN("a:b:c:d", ':', 3),
            (std::vector<std::string>{"a", "b", "c:d"}));
}

TEST(SplitN, FewerPartsThanLimit) {
  EXPECT_EQ(SplitN("a:b", ':', 5), (std::vector<std::string>{"a", "b"}));
}

TEST(Join, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(JoinSplit, Fixpoint) {
  std::vector<std::string> parts{"x", "yy", "", "zzz"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(Trim, Basic) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\n x \r\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("ab"), "ab");
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(ReplaceAll, Basic) {
  EXPECT_EQ(ReplaceAll("a::b::c", "::", "_"), "a_b_c");
  EXPECT_EQ(ReplaceAll("aaa", "a", "aa"), "aaaaaa");
  EXPECT_EQ(ReplaceAll("abc", "x", "y"), "abc");
  EXPECT_EQ(ReplaceAll("", "x", "y"), "");
}

TEST(CaseConversion, Basic) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("AbC1"), "ABC1");
}

TEST(IsIdentifier, Accepts) {
  EXPECT_TRUE(IsIdentifier("abc"));
  EXPECT_TRUE(IsIdentifier("_a1"));
  EXPECT_TRUE(IsIdentifier("A_B_9"));
}

TEST(IsIdentifier, Rejects) {
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("1a"));
  EXPECT_FALSE(IsIdentifier("a-b"));
  EXPECT_FALSE(IsIdentifier("a b"));
}

TEST(EscapeToken, EscapesDemarcationBytes) {
  EXPECT_EQ(EscapeToken("a b"), "a%20b");
  EXPECT_EQ(EscapeToken("a\nb"), "a%0Ab");
  EXPECT_EQ(EscapeToken("a%b"), "a%25b");
  EXPECT_EQ(EscapeToken("plain"), "plain");
}

TEST(UnescapeToken, Reverses) {
  EXPECT_EQ(UnescapeToken("a%20b"), "a b");
  EXPECT_EQ(UnescapeToken("a%0ab"), "a\nb");  // lowercase hex accepted
}

TEST(UnescapeToken, MalformedThrows) {
  EXPECT_THROW(UnescapeToken("abc%"), MarshalError);
  EXPECT_THROW(UnescapeToken("abc%2"), MarshalError);
  EXPECT_THROW(UnescapeToken("abc%zz"), MarshalError);
}

// Property: escape/unescape round-trips arbitrary byte strings, and the
// escaped form never contains demarcation bytes.
class EscapeRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(EscapeRoundtrip, RandomBytes) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> len_dist(0, 64);
  std::uniform_int_distribution<int> byte_dist(1, 255);  // NUL escaped too
  for (int iter = 0; iter < 100; ++iter) {
    std::string s;
    int len = len_dist(rng);
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(byte_dist(rng)));
    }
    std::string escaped = EscapeToken(s);
    EXPECT_EQ(escaped.find(' '), std::string::npos);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    EXPECT_EQ(escaped.find('\r'), std::string::npos);
    EXPECT_EQ(UnescapeToken(escaped), s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EscapeRoundtrip, ::testing::Range(1, 9));

}  // namespace
}  // namespace heidi::str
