// FlightRecorder unit tests: bounded sharded journal, JSONL dump, detail
// truncation, and the async-signal-safe fd dump path (driven here from a
// normal thread — the formatting and write(2) loop are what matter).
#include "obs/flight.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

namespace heidi::obs {
namespace {

TEST(FlightRecorderTest, RecordsAndSnapshotsOldestFirst) {
  FlightRecorder recorder(/*capacity=*/64, /*shards=*/4);
  recorder.Record(FlightEventType::kListen, 4242);
  recorder.Record(FlightEventType::kConnOpened, 1, 0, "127.0.0.1:9");
  recorder.Record(FlightEventType::kShutdown);
  EXPECT_EQ(recorder.Recorded(), 3u);
  EXPECT_EQ(recorder.Dropped(), 0u);

  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, FlightEventType::kListen);
  EXPECT_EQ(events[0].a, 4242u);
  EXPECT_EQ(events[1].type, FlightEventType::kConnOpened);
  EXPECT_STREQ(events[1].detail, "127.0.0.1:9");
  EXPECT_EQ(events[2].type, FlightEventType::kShutdown);
  // Timestamps are monotone oldest-first.
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_LE(events[1].ts_ns, events[2].ts_ns);
}

TEST(FlightRecorderTest, CapacityBoundsTheJournal) {
  FlightRecorder recorder(/*capacity=*/8, /*shards=*/1);
  for (int i = 0; i < 100; ++i) {
    recorder.Record(FlightEventType::kRetry, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(recorder.Recorded(), 100u);
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The ring keeps the newest history: 92..99.
  EXPECT_EQ(events.front().a, 92u);
  EXPECT_EQ(events.back().a, 99u);
}

TEST(FlightRecorderTest, DetailIsTruncatedNotOverflowed) {
  FlightRecorder recorder(16, 1);
  std::string long_detail(100, 'x');
  recorder.Record(FlightEventType::kConnBroken, 0, 0, long_detail);
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  // 31 chars + NUL fit the fixed 32-byte field.
  EXPECT_EQ(std::string(events[0].detail), std::string(31, 'x'));
}

TEST(FlightRecorderTest, DumpJsonlRendersOneObjectPerLine) {
  FlightRecorder recorder(16, 2);
  recorder.Record(FlightEventType::kConnBroken, 3, 0, "read: injected");
  recorder.Record(FlightEventType::kQueueHighWater, 17);
  std::string jsonl = recorder.DumpJsonl();
  EXPECT_NE(jsonl.find("\"type\":\"conn_broken\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"detail\":\"read: injected\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"queue_high_water\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"a\":17"), std::string::npos);
  // Exactly one line per event, each a JSON object.
  size_t lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(jsonl.front(), '{');
}

TEST(FlightRecorderTest, SignalSafeDumpWritesParseableLines) {
  FlightRecorder recorder(16, 2);
  recorder.Record(FlightEventType::kFaultInjected, 1, 0, "read_error");
  recorder.Record(FlightEventType::kFatalSignal, 11);

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  size_t written = recorder.DumpToFdSignalSafe(fds[1]);
  close(fds[1]);
  EXPECT_GT(written, 0u);

  std::string out;
  char buf[4096];
  ssize_t r;
  while ((r = read(fds[0], buf, sizeof buf)) > 0) out.append(buf, r);
  close(fds[0]);
  EXPECT_EQ(out.size(), written);
  EXPECT_NE(out.find("fault_injected"), std::string::npos);
  EXPECT_NE(out.find("fatal_signal"), std::string::npos);
  EXPECT_NE(out.find("read_error"), std::string::npos);
  // Every line the dump emits is terminated.
  EXPECT_EQ(out.back(), '\n');
}

TEST(FlightRecorderTest, GlobalIsOneProcessWideInstance) {
  FlightRecorder& a = FlightRecorder::Global();
  FlightRecorder& b = FlightRecorder::Global();
  EXPECT_EQ(&a, &b);
  uint64_t before = a.Recorded();
  a.Record(FlightEventType::kListen, 1);
  EXPECT_EQ(b.Recorded(), before + 1);
}

TEST(FlightRecorderTest, EventTypeNamesAreStable) {
  EXPECT_STREQ(FlightEventTypeName(FlightEventType::kConnOpened),
               "conn_opened");
  EXPECT_STREQ(FlightEventTypeName(FlightEventType::kRetryGiveUp),
               "retry_give_up");
  EXPECT_STREQ(FlightEventTypeName(FlightEventType::kShutdown), "shutdown");
}

}  // namespace
}  // namespace heidi::obs
