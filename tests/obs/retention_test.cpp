// RetentionPolicy unit tests: the degenerate head policies, and the tail
// policy's promotion rules — anomaly flags always win, the latency
// criterion follows max(p99 × multiplier, floor) with a cold-histogram
// guard, and healthy_every keeps a 1-in-N baseline corpus.
#include "obs/retention.h"

#include <gtest/gtest.h>

#include <memory>

#include "obs/histogram.h"

namespace heidi::obs {
namespace {

TailSignals Healthy(uint64_t latency_ns,
                    const LatencyHistogram* history = nullptr) {
  TailSignals s;
  s.operation = "op.add";
  s.latency_ns = latency_ns;
  s.history = history;
  return s;
}

TEST(RetentionPolicyTest, AlwaysSamplesEveryHeadAndKeepsEverything) {
  auto policy = MakeAlwaysRetention();
  EXPECT_STREQ(policy->Name(), "always");
  EXPECT_FALSE(policy->RecordProvisional());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(policy->SampleHead());
  EXPECT_TRUE(policy->KeepTail(Healthy(1)));
}

TEST(RetentionPolicyTest, NeverSamplesNoHeadAndKeepsNothing) {
  auto policy = MakeNeverRetention();
  EXPECT_STREQ(policy->Name(), "never");
  EXPECT_FALSE(policy->RecordProvisional());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(policy->SampleHead());
  EXPECT_FALSE(policy->KeepTail(Healthy(1)));
}

TEST(RetentionPolicyTest, RatioSamplesOneInN) {
  auto policy = MakeRatioRetention(4);
  EXPECT_STREQ(policy->Name(), "ratio");
  EXPECT_FALSE(policy->RecordProvisional());
  int sampled = 0;
  for (int i = 0; i < 400; ++i) {
    if (policy->SampleHead()) ++sampled;
  }
  EXPECT_EQ(sampled, 100);
}

TEST(RetentionPolicyTest, RatioZeroMeansEveryCall) {
  auto policy = MakeRatioRetention(0);  // degenerate N: clamped to 1
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(policy->SampleHead());
}

TEST(TailRetentionTest, NeverHeadSamplesButRecordsProvisionally) {
  auto policy = MakeTailRetention();
  EXPECT_STREQ(policy->Name(), "tail");
  EXPECT_TRUE(policy->RecordProvisional());
  // The whole point: healthy calls never carry a wire context.
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(policy->SampleHead());
}

TEST(TailRetentionTest, AnomalyFlagsAlwaysPromote) {
  auto policy = MakeTailRetention();
  TailSignals s = Healthy(1);  // 1ns: far under any latency threshold
  s.errored = true;
  EXPECT_TRUE(policy->KeepTail(s));
  s = Healthy(1);
  s.retried = true;
  EXPECT_TRUE(policy->KeepTail(s));
  s = Healthy(1);
  s.timed_out = true;
  EXPECT_TRUE(policy->KeepTail(s));
  s = Healthy(1);
  s.faulted = true;
  EXPECT_TRUE(policy->KeepTail(s));
}

TEST(TailRetentionTest, FloorAppliesWithoutHistory) {
  TailRetentionOptions options;
  options.floor_ns = 1000;
  auto policy = MakeTailRetention(options);
  EXPECT_FALSE(policy->KeepTail(Healthy(999)));
  EXPECT_TRUE(policy->KeepTail(Healthy(1000)));
  EXPECT_TRUE(policy->KeepTail(Healthy(5000)));
}

TEST(TailRetentionTest, ColdHistogramUsesFloorOnly) {
  TailRetentionOptions options;
  options.floor_ns = 10'000;
  options.min_history = 100;
  options.refresh_every = 1;  // recompute the threshold on every consult
  auto policy = MakeTailRetention(options);
  LatencyHistogram history;
  // 99 samples at 10ns: a warm p99×2 would be ~20ns, but the histogram
  // is below min_history, so only the floor applies.
  for (int i = 0; i < 99; ++i) history.Record(10);
  EXPECT_FALSE(policy->KeepTail(Healthy(9'999, &history)));
  EXPECT_TRUE(policy->KeepTail(Healthy(10'000, &history)));
}

TEST(TailRetentionTest, WarmHistogramPromotesAboveP99Multiple) {
  TailRetentionOptions options;
  options.p99_multiplier = 2.0;
  options.floor_ns = 1;  // out of the way: the p99 criterion decides
  options.min_history = 100;
  options.refresh_every = 1;
  auto policy = MakeTailRetention(options);
  LatencyHistogram history;
  for (int i = 0; i < 1000; ++i) history.Record(1000);
  uint64_t p99 = history.Percentile(99);
  ASSERT_GT(p99, 0u);
  EXPECT_FALSE(policy->KeepTail(Healthy(p99, &history)));
  EXPECT_TRUE(policy->KeepTail(Healthy(p99 * 2 + 1, &history)));
}

TEST(TailRetentionTest, ThresholdRefreshIsAmortized) {
  TailRetentionOptions options;
  options.p99_multiplier = 1.0;
  options.floor_ns = 1;
  options.min_history = 1;
  options.refresh_every = 100;  // the cached threshold survives 100 consults
  auto policy = MakeTailRetention(options);
  LatencyHistogram history;
  history.Record(100);
  // First consult computes a threshold around 100ns.
  EXPECT_FALSE(policy->KeepTail(Healthy(10, &history)));
  // The operation gets drastically slower — but the cached threshold
  // holds until the refresh tick, so a 10ns call still stays unkept
  // and a 1ms call is promoted against the *old* threshold.
  for (int i = 0; i < 50; ++i) history.Record(1'000'000);
  EXPECT_TRUE(policy->KeepTail(Healthy(1'000'000, &history)));
}

TEST(TailRetentionTest, HealthyEveryKeepsBaselineCorpus) {
  TailRetentionOptions options;
  options.floor_ns = 1'000'000;
  options.healthy_every = 10;
  auto policy = MakeTailRetention(options);
  int kept = 0;
  for (int i = 0; i < 200; ++i) {
    if (policy->KeepTail(Healthy(100))) ++kept;
  }
  EXPECT_EQ(kept, 20);
}

TEST(TailRetentionTest, DistinctHistogramsGetDistinctThresholds) {
  TailRetentionOptions options;
  options.p99_multiplier = 1.0;
  options.floor_ns = 1;
  options.min_history = 1;
  options.refresh_every = 1;
  auto policy = MakeTailRetention(options);
  LatencyHistogram fast, slow;
  for (int i = 0; i < 100; ++i) fast.Record(100);
  for (int i = 0; i < 100; ++i) slow.Record(1'000'000);
  // 50µs: anomalous for the fast operation, routine for the slow one.
  EXPECT_TRUE(policy->KeepTail(Healthy(50'000, &fast)));
  EXPECT_FALSE(policy->KeepTail(Healthy(50'000, &slow)));
}

}  // namespace
}  // namespace heidi::obs
