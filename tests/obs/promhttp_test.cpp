// PromHttpServer + OpenMetrics exposition tests: an in-process scrape
// over a real TCP connection, route/method handling, and the grammar of
// RenderOpenMetrics (typed families, _total counters, cumulative le
// buckets, trailing # EOF) that a Prometheus scraper depends on.
#include "obs/promhttp.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "demo/demo.h"
#include "net/channel.h"
#include "net/tcp.h"
#include "obs/metrics.h"
#include "orb/orb.h"

namespace heidi::obs {
namespace {

// One-shot HTTP/1.0 exchange: send the request verbatim, read to EOF.
std::string Exchange(uint16_t port, const std::string& request) {
  std::unique_ptr<net::ByteChannel> channel =
      net::TcpConnect("127.0.0.1", port, /*timeout_ms=*/2000);
  channel->WriteAll(request.data(), request.size());
  std::string response;
  char buf[4096];
  size_t r;
  while ((r = channel->Read(buf, sizeof buf)) > 0) response.append(buf, r);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return Exchange(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(PromHttpServerTest, ServesRegisteredPage) {
  PromHttpServer server(0);
  PromHttpServer::Page page;
  page.render = [] { return std::string("hello scrape\n"); };
  server.Handle("/metrics", page);
  server.Start();
  ASSERT_GT(server.Port(), 0);

  std::string response = Get(server.Port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 13"), std::string::npos);
  EXPECT_EQ(Body(response), "hello scrape\n");
  server.Stop();
}

TEST(PromHttpServerTest, UnknownPathIs404) {
  PromHttpServer server(0);
  PromHttpServer::Page page;
  page.render = [] { return std::string("ok"); };
  server.Handle("/metrics", page);
  server.Start();
  std::string response = Get(server.Port(), "/nope");
  EXPECT_NE(response.find("404 Not Found"), std::string::npos);
  server.Stop();
}

TEST(PromHttpServerTest, NonGetIs405) {
  PromHttpServer server(0);
  PromHttpServer::Page page;
  page.render = [] { return std::string("ok"); };
  server.Handle("/metrics", page);
  server.Start();
  std::string response =
      Exchange(server.Port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("405 Method Not Allowed"), std::string::npos);
  server.Stop();
}

TEST(PromHttpServerTest, PageRendersFreshPerScrape) {
  PromHttpServer server(0);
  int scrapes = 0;
  PromHttpServer::Page page;
  page.render = [&scrapes] {
    return "scrape " + std::to_string(++scrapes) + "\n";
  };
  server.Handle("/metrics", page);
  server.Start();
  EXPECT_EQ(Body(Get(server.Port(), "/metrics")), "scrape 1\n");
  EXPECT_EQ(Body(Get(server.Port(), "/metrics")), "scrape 2\n");
  server.Stop();
}

TEST(OpenMetricsTest, ExpositionGrammar) {
  MetricsRegistry registry;
  registry.GetCounter("client.calls")->Add(7);
  registry.GetGauge("pool.bytes")->Set(4096);
  LatencyHistogram* hist = registry.Histogram("op.add");
  hist->Record(1'000);
  hist->Record(2'000'000);

  std::string text = registry.RenderOpenMetrics();
  // Counters: TYPE line + _total sample, sanitized and prefixed.
  EXPECT_NE(text.find("# TYPE heidi_client_calls counter"),
            std::string::npos);
  EXPECT_NE(text.find("heidi_client_calls_total 7"), std::string::npos);
  // Gauges render once touched.
  EXPECT_NE(text.find("# TYPE heidi_pool_bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("heidi_pool_bytes 4096"), std::string::npos);
  // Histograms: cumulative le buckets in seconds, +Inf, _sum/_count.
  EXPECT_NE(text.find("# TYPE heidi_op_add histogram"), std::string::npos);
  EXPECT_NE(text.find("heidi_op_add_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("heidi_op_add_count 2"), std::string::npos);
  // Terminated exactly once, at the end.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  EXPECT_EQ(text.find("# EOF"), text.size() - 6);
}

TEST(OpenMetricsTest, ContentTypeIsOpenMetrics) {
  EXPECT_NE(std::string(MetricsRegistry::OpenMetricsContentType())
                .find("application/openmetrics-text"),
            std::string::npos);
}

// The orb-level wiring: OrbOptions::metrics_listen brings up the scrape
// endpoint, /metrics exposes the orb's synced stats, /flight serves the
// flight-recorder journal.
TEST(OrbScrapeTest, MetricsListenServesOrbPages) {
  demo::ForceDemoRegistration();
  orb::OrbOptions server_options;
  server_options.metrics_listen = 0;
  orb::Orb server(server_options);
  server.ListenTcp();
  ASSERT_GT(server.MetricsPort(), 0);
  demo::EchoImpl impl;
  orb::ObjectRef ref = server.ExportObject(&impl, "IDL:Heidi/Echo:1.0");

  orb::Orb client;
  auto echo = client.ResolveAs<HdEcho>(ref.ToString());
  for (int i = 0; i < 3; ++i) EXPECT_EQ(echo->add(i, 1), i + 1);

  // Zero-valued counters don't render; the served calls make these real.
  std::string metrics = Body(Get(server.MetricsPort(), "/metrics"));
  EXPECT_NE(metrics.find("# TYPE heidi_orb_requests_served counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("heidi_orb_requests_served_total"),
            std::string::npos);
  ASSERT_GE(metrics.size(), 6u);
  EXPECT_EQ(metrics.substr(metrics.size() - 6), "# EOF\n");

  std::string response = Get(server.MetricsPort(), "/flight");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  // The journal saw this very server come up and accept the client.
  EXPECT_NE(Body(response).find("\"type\":\"listen\""), std::string::npos);
  client.Shutdown();
  server.Shutdown();
}

}  // namespace
}  // namespace heidi::obs
