#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace heidi::obs {
namespace {

using Hist = LatencyHistogram;

// --- bucket math -----------------------------------------------------------

TEST(HistogramBuckets, LinearRegionIsExact) {
  // Values below 2^kSubBits get one bucket each.
  for (uint64_t v = 0; v < Hist::kSubCount; ++v) {
    EXPECT_EQ(Hist::BucketIndex(v), static_cast<int>(v)) << "v=" << v;
    EXPECT_EQ(Hist::BucketLow(static_cast<int>(v)), v);
    EXPECT_EQ(Hist::BucketHigh(static_cast<int>(v)), v);
  }
}

TEST(HistogramBuckets, BoundsBracketEveryProbe) {
  // For a spread of values: the value must lie within [low, high] of its
  // own bucket, and the neighbouring buckets must not contain it.
  std::vector<uint64_t> probes;
  for (uint64_t v = 0; v < 64; ++v) probes.push_back(v);
  for (int shift = 6; shift < 40; ++shift) {
    uint64_t base = uint64_t{1} << shift;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + base / 3);
  }
  for (uint64_t v : probes) {
    int idx = Hist::BucketIndex(v);
    EXPECT_GE(v, Hist::BucketLow(idx)) << "v=" << v;
    EXPECT_LE(v, Hist::BucketHigh(idx)) << "v=" << v;
    if (idx > 0) {
      EXPECT_LT(Hist::BucketHigh(idx - 1), v) << "v=" << v;
    }
    if (idx < Hist::kBucketCount - 1) {
      EXPECT_GT(Hist::BucketLow(idx + 1), v) << "v=" << v;
    }
  }
}

TEST(HistogramBuckets, BucketsTileTheRangeWithoutGaps) {
  for (int idx = 1; idx < Hist::kBucketCount - 1; ++idx) {
    EXPECT_EQ(Hist::BucketLow(idx + 1), Hist::BucketHigh(idx) + 1)
        << "gap after bucket " << idx;
  }
}

TEST(HistogramBuckets, RelativeErrorIsBounded) {
  // The log-linear design promise: bucket width / bucket low <= 1/2^kSubBits
  // everywhere above the linear region (except the clamp bucket).
  for (int idx = Hist::kSubCount * 2; idx < Hist::kBucketCount - 1; ++idx) {
    uint64_t low = Hist::BucketLow(idx);
    uint64_t width = Hist::BucketHigh(idx) - low + 1;
    EXPECT_LE(width * Hist::kSubCount, low * 2)
        << "bucket " << idx << " wider than ~12.5% of its value";
  }
}

TEST(HistogramBuckets, OversizeValuesClampToTopBucket) {
  EXPECT_EQ(Hist::BucketIndex(UINT64_MAX), Hist::kBucketCount - 1);
  EXPECT_EQ(Hist::BucketHigh(Hist::kBucketCount - 1), UINT64_MAX);
}

// --- recording and percentiles --------------------------------------------

TEST(Histogram, CountSumMaxMean) {
  Hist h;
  EXPECT_EQ(h.Percentile(50), 0u);  // empty
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 60u);
  EXPECT_EQ(h.Max(), 30u);
  EXPECT_EQ(h.Mean(), 20u);
}

TEST(Histogram, PercentilesLandInTheRightBucket) {
  Hist h;
  // 90 fast samples, 10 slow ones: p50 must look fast, p99 slow.
  for (int i = 0; i < 90; ++i) h.Record(1000);
  for (int i = 0; i < 10; ++i) h.Record(1'000'000);
  uint64_t p50 = h.Percentile(50);
  uint64_t p99 = h.Percentile(99);
  EXPECT_EQ(Hist::BucketIndex(p50), Hist::BucketIndex(1000));
  EXPECT_EQ(Hist::BucketIndex(p99), Hist::BucketIndex(1'000'000));
  EXPECT_EQ(h.Percentile(100), h.Max());
}

TEST(Histogram, PercentileWithinRelativeErrorBound) {
  Hist h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<uint64_t>(i) * 977);
  // True p50 = 500 * 977; the bucket midpoint must be within ~12.5%.
  double p50 = static_cast<double>(h.Percentile(50));
  double truth = 500.0 * 977.0;
  EXPECT_NEAR(p50 / truth, 1.0, 0.13);
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  Hist h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(static_cast<uint64_t>(i));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.Max(), static_cast<uint64_t>(kPerThread - 1));
}

// --- metrics registry ------------------------------------------------------

TEST(MetricsRegistry, PointersAreStableAndShared) {
  MetricsRegistry reg;
  LatencyHistogram* a = reg.Histogram("op.echo");
  LatencyHistogram* b = reg.Histogram("op.echo");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.Histogram("op.add"));
  Counter* c = reg.GetCounter("calls");
  c->Add(41);
  c->Add(1);
  EXPECT_EQ(reg.GetCounter("calls")->Value(), 42u);
}

TEST(MetricsRegistry, RenderListsRecordedMetrics) {
  MetricsRegistry reg;
  reg.Histogram("op.echo")->Record(1000);
  reg.GetCounter("calls")->Add(7);
  std::string text = reg.Render();
  EXPECT_NE(text.find("op.echo"), std::string::npos);
  EXPECT_NE(text.find("calls"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"op.echo\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\":7"), std::string::npos);
}

TEST(MetricsRegistry, OverflowSharesOneSinkInsteadOfFailing) {
  MetricsRegistry reg;
  // Exhaust the table, then one more: the overflow entry absorbs it.
  for (size_t i = 0; i < MetricsRegistry::kSlots + 10; ++i) {
    ASSERT_NE(reg.Histogram("key." + std::to_string(i)), nullptr);
  }
  LatencyHistogram* extra1 = reg.Histogram("definitely.new.1");
  LatencyHistogram* extra2 = reg.Histogram("definitely.new.2");
  ASSERT_NE(extra1, nullptr);
  EXPECT_EQ(extra1, extra2);  // both land on "(overflow)"
}

// --- trace context ---------------------------------------------------------

TEST(TraceContext, TextualRoundTrip) {
  TraceContext ctx = NewRootContext(true);
  ctx.parent_span_id = 0x1234;
  std::string s = ctx.ToString();
  TraceContext back;
  ASSERT_TRUE(TraceContext::Parse(s, &back));
  EXPECT_EQ(back, ctx);
}

TEST(TraceContext, ParseRejectsGarbage) {
  TraceContext out;
  EXPECT_FALSE(TraceContext::Parse("", &out));
  EXPECT_FALSE(TraceContext::Parse("not-a-trace", &out));
  EXPECT_FALSE(TraceContext::Parse(
      "0123456789abcdef0123456789abcdef-0123456789abcdef-0123456789abcdef",
      &out));  // missing flags
  EXPECT_FALSE(TraceContext::Parse(
      "0123456789abcdeX0123456789abcdef-0123456789abcdef-0123456789abcdef-01",
      &out));  // bad hex
}

TEST(TraceContext, ChildKeepsTraceAndParentsOnSender) {
  TraceContext root = NewRootContext(true);
  TraceContext child = ChildContext(root);
  EXPECT_EQ(child.trace_hi, root.trace_hi);
  EXPECT_EQ(child.trace_lo, root.trace_lo);
  EXPECT_EQ(child.parent_span_id, root.span_id);
  EXPECT_NE(child.span_id, root.span_id);
  EXPECT_TRUE(child.sampled);
}

TEST(TraceContext, AmbientScopeRestores) {
  EXPECT_FALSE(CurrentContext().Valid());
  TraceContext ctx = NewRootContext(false);
  {
    ScopedContext scope(ctx);
    EXPECT_TRUE(CurrentContext().Valid());
    EXPECT_EQ(CurrentContext(), ctx);
  }
  EXPECT_FALSE(CurrentContext().Valid());
}

}  // namespace
}  // namespace heidi::obs
