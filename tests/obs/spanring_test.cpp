#include "obs/span.h"

#include <gtest/gtest.h>

#include <thread>

#include "obs/tracer.h"

namespace heidi::obs {
namespace {

SpanRecord MakeSpan(uint64_t span_id, int64_t start_ns) {
  SpanRecord rec;
  rec.ctx = NewRootContext(true);
  rec.ctx.span_id = span_id;
  rec.operation = "op" + std::to_string(span_id);
  rec.start_ns = start_ns;
  rec.end_ns = start_ns + 100;
  return rec;
}

TEST(SpanRing, KeepsEverythingBelowCapacity) {
  SpanRing ring(64, 4);
  for (uint64_t i = 0; i < 40; ++i) {
    ring.Record(MakeSpan(i, static_cast<int64_t>(i)));
  }
  EXPECT_EQ(ring.Recorded(), 40u);
  EXPECT_EQ(ring.Dropped(), 0u);
  EXPECT_EQ(ring.Snapshot().size(), 40u);
}

TEST(SpanRing, SnapshotIsOldestFirst) {
  SpanRing ring(64, 4);
  for (uint64_t i = 0; i < 20; ++i) {
    ring.Record(MakeSpan(i, static_cast<int64_t>(1000 - i)));  // reversed
  }
  std::vector<SpanRecord> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 20u);
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_ns, spans[i].start_ns);
  }
}

TEST(SpanRing, BoundedAndOverwritesOldest) {
  SpanRing ring(8, 1);  // one shard: strict FIFO eviction
  ASSERT_EQ(ring.Capacity(), 8u);
  for (uint64_t i = 0; i < 20; ++i) {
    ring.Record(MakeSpan(/*span_id=*/1, static_cast<int64_t>(i)));
  }
  std::vector<SpanRecord> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 8u);  // bounded
  // The *newest* history is retained: starts 12..19 survive.
  EXPECT_EQ(spans.front().start_ns, 12);
  EXPECT_EQ(spans.back().start_ns, 19);
  EXPECT_EQ(ring.Recorded(), 20u);
  EXPECT_EQ(ring.Dropped(), 0u);  // overwrite is not a drop
}

TEST(SpanRing, ContendedShardDropsInsteadOfBlocking) {
  SpanRing ring(64, 4);
  // Span ids pick the shard via span_id % shards; hold shard 2's lock and
  // record into it from another thread — the try_lock must fail, the
  // record must be counted dropped, and Record() must not block.
  ring.WithShardLockedForTest(2, [&ring] {
    std::thread writer([&ring] {
      ring.Record(MakeSpan(/*span_id=*/2, 1));       // shard 2: dropped
      ring.Record(MakeSpan(/*span_id=*/6, 2));       // also shard 2: dropped
      ring.Record(MakeSpan(/*span_id=*/3, 3));       // shard 3: lands
    });
    writer.join();  // joining inside proves Record never blocked
  });
  EXPECT_EQ(ring.Dropped(), 2u);
  EXPECT_EQ(ring.Recorded(), 1u);
  EXPECT_EQ(ring.Snapshot().size(), 1u);
}

TEST(SpanRing, DropsAreInvisibleToSnapshot) {
  SpanRing ring(16, 2);
  ring.WithShardLockedForTest(0, [&ring] {
    std::thread writer([&ring] {
      ring.Record(MakeSpan(/*span_id=*/4, 1));  // shard 0: dropped
    });
    writer.join();
  });
  EXPECT_TRUE(ring.Snapshot().empty());
  // The shard lock is released again: recording works normally now.
  ring.Record(MakeSpan(/*span_id=*/4, 2));
  EXPECT_EQ(ring.Snapshot().size(), 1u);
}

// --- tracer-level behaviour -------------------------------------------------

TEST(Tracer, SamplingModes) {
  TracerOptions never;
  never.mode = SampleMode::kNever;
  Tracer t_never(never);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(t_never.SampleNext());

  TracerOptions always;
  always.mode = SampleMode::kAlways;
  Tracer t_always(always);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(t_always.SampleNext());

  TracerOptions ratio;
  ratio.mode = SampleMode::kRatio;
  ratio.sample_every = 4;
  Tracer t_ratio(ratio);
  int sampled = 0;
  for (int i = 0; i < 100; ++i) sampled += t_ratio.SampleNext() ? 1 : 0;
  EXPECT_EQ(sampled, 25);
}

TEST(Tracer, SpanEndCommitsToRing) {
  Tracer tracer;
  auto span = tracer.StartSpan(SpanKind::kClient, "echo", NewRootContext(true));
  span->AddStageInterval("send", 100, 200);
  span->End();
  span->End();  // idempotent
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].operation, "echo");
  ASSERT_EQ(spans[0].stage_count, 1);
  EXPECT_STREQ(spans[0].stages[0].name, "send");
}

TEST(Tracer, AbandonedSpanIsClosedAndTagged) {
  Tracer tracer;
  {
    auto span =
        tracer.StartSpan(SpanKind::kClient, "echo", NewRootContext(true));
    // dropped without End(): the destructor must still commit it
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].error, "abandoned");
  EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
}

TEST(Tracer, ExportersEmitTraceIds) {
  Tracer tracer;
  TraceContext ctx = NewRootContext(true);
  auto span = tracer.StartSpan(SpanKind::kClient, "echo", ctx);
  span->AddStageInterval("send", 100, 200);
  span->End();

  std::string jsonl = tracer.ExportJsonl();
  std::string chrome = tracer.ExportChromeTrace();
  char trace_hex[33];
  std::snprintf(trace_hex, sizeof trace_hex, "%016llx%016llx",
                static_cast<unsigned long long>(ctx.trace_hi),
                static_cast<unsigned long long>(ctx.trace_lo));
  EXPECT_NE(jsonl.find(trace_hex), std::string::npos);
  EXPECT_NE(chrome.find(trace_hex), std::string::npos);
  // Chrome trace must be a complete-event JSON array.
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace heidi::obs
