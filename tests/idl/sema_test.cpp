#include "idl/sema.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace heidi::idl {
namespace {

const InterfaceDecl& FirstInterface(const Specification& spec) {
  for (const auto& d : spec.decls) {
    if (d->decl_kind == DeclKind::kInterface) {
      return static_cast<const InterfaceDecl&>(*d);
    }
  }
  throw std::runtime_error("no interface");
}

TEST(Sema, RepoIdsFollowScopes) {
  Specification spec = ParseAndResolve(
      "module Heidi { interface A {}; module Inner { enum E { X }; }; };");
  const auto& mod = static_cast<const ModuleDecl&>(*spec.decls[0]);
  EXPECT_EQ(mod.repo_id, "IDL:Heidi:1.0");
  EXPECT_EQ(mod.decls[0]->repo_id, "IDL:Heidi/A:1.0");
  const auto& inner = static_cast<const ModuleDecl&>(*mod.decls[1]);
  EXPECT_EQ(inner.decls[0]->repo_id, "IDL:Heidi/Inner/E:1.0");
}

TEST(Sema, PragmaPrefixInRepoIds) {
  Specification spec =
      ParseAndResolve("#pragma prefix \"nec.com\"\ninterface A {};");
  EXPECT_EQ(spec.decls[0]->repo_id, "IDL:nec.com/A:1.0");
}

TEST(Sema, ScopedAndFlatNames) {
  Specification spec =
      ParseAndResolve("module M { module N { interface I {}; }; };");
  const auto& m = static_cast<const ModuleDecl&>(*spec.decls[0]);
  const auto& n = static_cast<const ModuleDecl&>(*m.decls[0]);
  EXPECT_EQ(n.decls[0]->ScopedName(), "M::N::I");
  EXPECT_EQ(n.decls[0]->FlatName(), "M_N_I");
}

TEST(Sema, ResolvesNamedTypesThroughScopes) {
  Specification spec = ParseAndResolve(R"(
    module M {
      enum E { A };
      interface I { void f(in E e); };
    };
  )");
  const auto& m = static_cast<const ModuleDecl&>(*spec.decls[0]);
  const auto& iface = static_cast<const InterfaceDecl&>(*m.decls[1]);
  const TypeRef& param = iface.operations[0].params[0].type;
  ASSERT_NE(param.resolved, nullptr);
  EXPECT_EQ(param.resolved->name, "E");
}

TEST(Sema, AbsoluteScopedName) {
  Specification spec = ParseAndResolve(R"(
    enum G { X };
    module M { interface I { void f(in ::G g); }; };
  )");
  const auto& m = static_cast<const ModuleDecl&>(*spec.decls[1]);
  const auto& iface = static_cast<const InterfaceDecl&>(*m.decls[0]);
  EXPECT_NE(iface.operations[0].params[0].type.resolved, nullptr);
}

TEST(Sema, InnerScopeShadowsOuter) {
  Specification spec = ParseAndResolve(R"(
    enum E { Outer };
    module M {
      enum E { Inner };
      interface I { void f(in E e); };
    };
  )");
  const auto& m = static_cast<const ModuleDecl&>(*spec.decls[1]);
  const auto& iface = static_cast<const InterfaceDecl&>(*m.decls[1]);
  EXPECT_EQ(iface.operations[0].params[0].type.resolved->ScopedName(),
            "M::E");
}

TEST(Sema, UnresolvedTypeThrows) {
  EXPECT_THROW(ParseAndResolve("interface I { void f(in Nope n); };"),
               ParseError);
}

TEST(Sema, ForwardDeclLinksToDefinition) {
  Specification spec = ParseAndResolve("interface S; interface S {};");
  const auto& fwd = static_cast<const ForwardInterfaceDecl&>(*spec.decls[0]);
  EXPECT_EQ(fwd.definition,
            static_cast<const InterfaceDecl*>(spec.decls[1].get()));
}

TEST(Sema, ExternalForwardInterfaceAsBase) {
  // Fig 3: interface A : S where S is only externally declared.
  Specification spec =
      ParseAndResolve("module H { interface S; interface A : S {}; };");
  const auto& mod = static_cast<const ModuleDecl&>(*spec.decls[0]);
  const auto& a = static_cast<const InterfaceDecl&>(*mod.decls[1]);
  ASSERT_EQ(a.bases.size(), 1u);
  EXPECT_EQ(a.bases[0]->decl_kind, DeclKind::kForwardInterface);
  EXPECT_EQ(a.bases[0]->repo_id, "IDL:H/S:1.0");
}

TEST(Sema, ExternalForwardInterfaceAsParamType) {
  Specification spec =
      ParseAndResolve("interface S; interface I { void f(in S s); };");
  const auto& iface = static_cast<const InterfaceDecl&>(*spec.decls[1]);
  EXPECT_EQ(iface.operations[0].params[0].type.resolved->decl_kind,
            DeclKind::kForwardInterface);
}

TEST(Sema, MultipleInheritance) {
  Specification spec = ParseAndResolve(
      "interface A {}; interface B {}; interface C : A, B {};");
  const auto& c = static_cast<const InterfaceDecl&>(*spec.decls[2]);
  EXPECT_EQ(c.bases.size(), 2u);
}

TEST(Sema, DuplicateBaseThrows) {
  EXPECT_THROW(
      ParseAndResolve("interface A {}; interface C : A, A {};"), ParseError);
}

TEST(Sema, SelfInheritanceThrows) {
  EXPECT_THROW(ParseAndResolve("interface A : A {};"), ParseError);
}

TEST(Sema, NonInterfaceBaseThrows) {
  EXPECT_THROW(ParseAndResolve("enum E { X }; interface A : E {};"),
               ParseError);
}

TEST(Sema, RedefiningInheritedMemberThrows) {
  EXPECT_THROW(ParseAndResolve(R"(
    interface A { void f(); };
    interface B : A { void f(); };
  )"),
               ParseError);
}

TEST(Sema, DuplicateMemberThrows) {
  EXPECT_THROW(
      ParseAndResolve("interface A { void f(); long f(in long x); };"),
      ParseError);
}

TEST(Sema, DuplicateDeclarationThrows) {
  EXPECT_THROW(ParseAndResolve("enum E { A }; enum E { B };"), ParseError);
}

TEST(Sema, ModuleReopeningAllowed) {
  Specification spec = ParseAndResolve(R"(
    module M { enum E1 { A }; };
    module M { interface I { void f(in E1 e); }; };
  )");
  EXPECT_EQ(spec.decls.size(), 2u);
}

TEST(Sema, EnumMembersLiveInEnclosingScope) {
  // Fig 3 writes `in Status s = Heidi::Start` — the member is scoped to
  // the module, not to the enum.
  Specification spec = ParseAndResolve(R"(
    module Heidi {
      enum Status { Start, Stop };
      interface A { void q(in Status s = Heidi::Start); };
    };
  )");
  const auto& mod = static_cast<const ModuleDecl&>(*spec.decls[0]);
  const auto& a = static_cast<const InterfaceDecl&>(*mod.decls[1]);
  const Literal& def = a.operations[0].params[0].default_value;
  EXPECT_EQ(def.kind, Literal::Kind::kScoped);
  EXPECT_EQ(def.text, "Start");  // normalized to the unscoped member name
  EXPECT_EQ(def.int_value, 0);   // member index
}

TEST(Sema, DefaultFromWrongEnumThrows) {
  EXPECT_THROW(ParseAndResolve(R"(
    enum Color { Red };
    enum Status { Start };
    interface A { void q(in Status s = Red); };
  )"),
               ParseError);
}

TEST(Sema, NonTrailingDefaultThrows) {
  EXPECT_THROW(ParseAndResolve(
                   "interface A { void f(in long a = 1, in long b); };"),
               ParseError);
}

TEST(Sema, DefaultOnOutParamThrows) {
  EXPECT_THROW(
      ParseAndResolve("interface A { void f(out long a = 1); };"),
      ParseError);
}

TEST(Sema, DefaultTypeMismatchThrows) {
  EXPECT_THROW(
      ParseAndResolve("interface A { void f(in string s = 42); };"),
      ParseError);
  EXPECT_THROW(
      ParseAndResolve("interface A { void f(in long l = \"x\"); };"),
      ParseError);
  EXPECT_THROW(
      ParseAndResolve("interface A { void f(in boolean b = 1); };"),
      ParseError);
}

TEST(Sema, IntDefaultAllowedForFloatParam) {
  Specification spec =
      ParseAndResolve("interface A { void f(in double d = 0); };");
  EXPECT_EQ(FirstInterface(spec).operations[0].params[0].default_value.kind,
            Literal::Kind::kInt);
}

TEST(Sema, DefaultReferencingConstAllowed) {
  Specification spec = ParseAndResolve(R"(
    const long MAX = 16;
    interface A { void f(in long n = MAX); };
  )");
  EXPECT_EQ(FirstInterface(spec).operations[0].params[0].default_value.kind,
            Literal::Kind::kScoped);
}

TEST(Sema, OnewayMustReturnVoid) {
  EXPECT_THROW(ParseAndResolve("interface A { oneway long f(); };"),
               ParseError);
}

TEST(Sema, OnewayRejectsOutParams) {
  EXPECT_THROW(
      ParseAndResolve("interface A { oneway void f(out long x); };"),
      ParseError);
}

TEST(Sema, OnewayAllowsIncopy) {
  Specification spec = ParseAndResolve(
      "interface S {}; interface A { oneway void f(incopy S s); };");
  EXPECT_TRUE(static_cast<const InterfaceDecl&>(*spec.decls[1])
                  .operations[0]
                  .oneway);
}

TEST(Sema, RaisesMustNameException) {
  EXPECT_THROW(ParseAndResolve(R"(
    struct NotEx { long x; };
    interface A { void f() raises (NotEx); };
  )"),
               ParseError);
}

TEST(Sema, RaisesResolved) {
  Specification spec = ParseAndResolve(R"(
    exception Oops { string what; };
    interface A { void f() raises (Oops); };
  )");
  const auto& a = static_cast<const InterfaceDecl&>(*spec.decls[1]);
  ASSERT_EQ(a.operations[0].raises_resolved.size(), 1u);
  EXPECT_EQ(a.operations[0].raises_resolved[0]->name, "Oops");
}

// --- type classification helpers -------------------------------------------

TEST(TypeHelpers, UnaliasFollowsChains) {
  Specification spec = ParseAndResolve(R"(
    typedef long T1;
    typedef T1 T2;
    interface I { void f(in T2 x); };
  )");
  const auto& iface = static_cast<const InterfaceDecl&>(*spec.decls[2]);
  const TypeRef& t = UnaliasType(iface.operations[0].params[0].type);
  EXPECT_EQ(t.kind, TypeRef::Kind::kPrimitive);
  EXPECT_EQ(t.prim, PrimKind::kLong);
}

TEST(TypeHelpers, TypeTags) {
  Specification spec = ParseAndResolve(R"(
    enum E { A };
    struct St { long x; };
    typedef sequence<long> Seq;
    interface I {
      void f(in E e, in St s, in Seq q, in I i, in string str, in long l);
    };
  )");
  const auto& iface = static_cast<const InterfaceDecl&>(*spec.decls[3]);
  const auto& params = iface.operations[0].params;
  EXPECT_EQ(TypeTag(params[0].type), "enum");
  EXPECT_EQ(TypeTag(params[1].type), "struct");
  EXPECT_EQ(TypeTag(params[2].type), "alias");
  EXPECT_EQ(TypeTag(params[3].type), "objref");
  EXPECT_EQ(TypeTag(params[4].type), "string");
  EXPECT_EQ(TypeTag(params[5].type), "long");
}

TEST(TypeHelpers, IsVariable) {
  Specification spec = ParseAndResolve(R"(
    enum E { A };
    struct Fixed { long x; E e; };
    struct Var { string s; };
    struct Nested { Var v; };
    typedef sequence<long> Seq;
    interface I {
      void f(in Fixed a, in Var b, in Nested c, in Seq d, in E e, in I i);
    };
  )");
  const auto& iface = static_cast<const InterfaceDecl&>(*spec.decls[5]);
  const auto& params = iface.operations[0].params;
  EXPECT_FALSE(IsVariableType(params[0].type));
  EXPECT_TRUE(IsVariableType(params[1].type));
  EXPECT_TRUE(IsVariableType(params[2].type));  // struct containing string
  EXPECT_TRUE(IsVariableType(params[3].type));
  EXPECT_FALSE(IsVariableType(params[4].type));
  EXPECT_TRUE(IsVariableType(params[5].type));
}

}  // namespace
}  // namespace heidi::idl
