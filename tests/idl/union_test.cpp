// IDL discriminated unions: parsing, semantic checks, EST structure, and
// the heidi_cpp mapping's tagged-struct emission.
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "est/builder.h"
#include "idl/sema.h"
#include "support/error.h"

namespace heidi::idl {
namespace {

constexpr const char* kUnionIdl = R"(
module Media {
  enum Kind { Audio, Video, Data };
  union Payload switch (Kind) {
    case Audio: short samples;
    case Video: string codec;
    case Data: default: sequence<octet> bytes;
  };
};
)";

TEST(UnionParse, Basic) {
  Specification spec = ParseAndResolve(kUnionIdl);
  const auto& mod = static_cast<const ModuleDecl&>(*spec.decls[0]);
  const auto& un = static_cast<const UnionDecl&>(*mod.decls[1]);
  EXPECT_EQ(un.name, "Payload");
  EXPECT_EQ(un.repo_id, "IDL:Media/Payload:1.0");
  ASSERT_EQ(un.cases.size(), 3u);
  EXPECT_EQ(un.cases[0].name, "samples");
  EXPECT_EQ(un.cases[1].type.prim, PrimKind::kString);
  EXPECT_TRUE(un.cases[2].is_default);
  EXPECT_EQ(un.cases[2].labels.size(), 1u);  // case Data + default combined
}

TEST(UnionParse, IntegerDiscriminator) {
  Specification spec = ParseAndResolve(R"(
    union U switch (long) {
      case 1: long a;
      case 2: case 3: string b;
      default: boolean c;
    };
  )");
  const auto& un = static_cast<const UnionDecl&>(*spec.decls[0]);
  EXPECT_EQ(un.cases[1].labels.size(), 2u);
  EXPECT_EQ(un.cases[1].labels[1].int_value, 3);
}

TEST(UnionParse, BooleanAndCharDiscriminators) {
  EXPECT_NO_THROW(ParseAndResolve(
      "union B switch (boolean) { case TRUE: long t; case FALSE: long f; };"));
  EXPECT_NO_THROW(ParseAndResolve(
      "union C switch (char) { case 'a': long a; default: long z; };"));
}

TEST(UnionParse, NestedInInterface) {
  Specification spec = ParseAndResolve(R"(
    interface I {
      union Inner switch (long) { case 0: long zero; };
      void f(in Inner i);
    };
  )");
  const auto& iface = static_cast<const InterfaceDecl&>(*spec.decls[0]);
  EXPECT_EQ(iface.nested.size(), 1u);
  EXPECT_EQ(TypeTag(iface.operations[0].params[0].type), "union");
}

TEST(UnionSema, RejectsBadDiscriminators) {
  EXPECT_THROW(ParseAndResolve(
                   "union U switch (string) { case \"x\": long a; };"),
               ParseError);
  EXPECT_THROW(ParseAndResolve(
                   "union U switch (float) { case 1: long a; };"),
               ParseError);
  EXPECT_THROW(ParseAndResolve(R"(
    struct S { long x; };
    union U switch (S) { case 1: long a; };
  )"),
               ParseError);
}

TEST(UnionSema, RejectsDuplicateLabels) {
  EXPECT_THROW(ParseAndResolve(R"(
    union U switch (long) { case 1: long a; case 1: string b; };
  )"),
               ParseError);
  EXPECT_THROW(ParseAndResolve(R"(
    enum E { X, Y };
    union U switch (E) { case X: long a; case X: string b; };
  )"),
               ParseError);
}

TEST(UnionSema, RejectsMultipleDefaults) {
  EXPECT_THROW(ParseAndResolve(R"(
    union U switch (long) { default: long a; default: string b; };
  )"),
               ParseError);
}

TEST(UnionSema, RejectsLabelTypeMismatch) {
  EXPECT_THROW(ParseAndResolve(R"(
    union U switch (long) { case TRUE: long a; };
  )"),
               ParseError);
  EXPECT_THROW(ParseAndResolve(R"(
    enum E { X };
    enum F { Z };
    union U switch (E) { case Z: long a; };
  )"),
               ParseError);
}

TEST(UnionSema, RejectsDuplicateMemberNames) {
  EXPECT_THROW(ParseAndResolve(R"(
    union U switch (long) { case 1: long a; case 2: string a; };
  )"),
               ParseError);
}

TEST(UnionSema, EmptyUnionRejected) {
  EXPECT_THROW(ParseAndResolve("union U switch (long) { };"), ParseError);
}

TEST(UnionSema, VariabilityFollowsMembers) {
  Specification spec = ParseAndResolve(R"(
    union Fixed switch (long) { case 1: long a; case 2: boolean b; };
    union Var switch (long) { case 1: string s; };
    interface I { void f(in Fixed x, in Var y); };
  )");
  const auto& iface = static_cast<const InterfaceDecl&>(*spec.decls[2]);
  EXPECT_FALSE(IsVariableType(iface.operations[0].params[0].type));
  EXPECT_TRUE(IsVariableType(iface.operations[0].params[1].type));
}

TEST(UnionEst, NodeStructure) {
  Specification spec = ParseAndResolve(kUnionIdl);
  auto root = est::BuildEst(spec);
  const auto* unions = root->FindList("unionList");
  ASSERT_NE(unions, nullptr);
  ASSERT_EQ(unions->size(), 1u);
  const est::Node& un = *unions->front();
  EXPECT_EQ(un.Kind(), "Union");
  EXPECT_EQ(un.GetProp("unionName"), "Media::Payload");
  EXPECT_EQ(un.GetProp("discriminatorType"), "Media::Kind");
  EXPECT_EQ(un.GetProp("IsVariable"), "true");
  const auto* cases = un.FindList("caseList");
  ASSERT_EQ(cases->size(), 3u);
  EXPECT_EQ((*cases)[0]->GetProp("labels"), "Audio");
  EXPECT_EQ((*cases)[1]->GetProp("caseType"), "string");
  EXPECT_EQ((*cases)[2]->GetProp("isDefault"), "true");
  EXPECT_EQ((*cases)[2]->GetProp("labels"), "Data");
}

TEST(UnionMapping, HeidiTaggedStruct) {
  const codegen::Mapping* mapping = codegen::FindBuiltinMapping("heidi_cpp");
  codegen::GenerateResult result =
      codegen::GenerateFromSource(kUnionIdl, "payload.idl", *mapping);
  const std::string& out = result.files.at("payload.hh");
  EXPECT_NE(out.find("struct HdPayload"), std::string::npos);
  EXPECT_NE(out.find("HdKind hd_d;"), std::string::npos);
  EXPECT_NE(out.find("short samples;  // case Audio"), std::string::npos);
  EXPECT_NE(out.find("HdString codec;  // case Video"), std::string::npos);
  EXPECT_NE(out.find("// default"), std::string::npos);
}

TEST(UnionMapping, GeneratorRejectsUnionParamsLoudly) {
  const codegen::Mapping* mapping = codegen::FindBuiltinMapping("heidi_cpp");
  EXPECT_THROW(codegen::GenerateFromSource(R"(
    union U switch (long) { case 1: long a; };
    interface I { void f(in U u); };
  )",
                                           "u.idl", *mapping),
               TemplateError);
}

}  // namespace
}  // namespace heidi::idl
