#include "idl/parser.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace heidi::idl {
namespace {

template <typename T>
const T& As(const Decl& decl) {
  const T* typed = dynamic_cast<const T*>(&decl);
  EXPECT_NE(typed, nullptr);
  return *typed;
}

TEST(Parser, EmptySpecification) {
  Specification spec = Parse("");
  EXPECT_TRUE(spec.decls.empty());
}

TEST(Parser, Module) {
  Specification spec = Parse("module M { enum E { A, B }; };");
  ASSERT_EQ(spec.decls.size(), 1u);
  const auto& mod = As<ModuleDecl>(*spec.decls[0]);
  EXPECT_EQ(mod.name, "M");
  ASSERT_EQ(mod.decls.size(), 1u);
  EXPECT_EQ(mod.decls[0]->name, "E");
}

TEST(Parser, NestedModules) {
  Specification spec = Parse("module A { module B { interface I {}; }; };");
  const auto& a = As<ModuleDecl>(*spec.decls[0]);
  const auto& b = As<ModuleDecl>(*a.decls[0]);
  EXPECT_EQ(b.decls[0]->name, "I");
}

TEST(Parser, ForwardInterface) {
  Specification spec = Parse("interface S;");
  EXPECT_EQ(spec.decls[0]->decl_kind, DeclKind::kForwardInterface);
}

TEST(Parser, InterfaceWithBases) {
  Specification spec =
      Parse("interface A {}; interface B {}; interface C : A, ::B {};");
  const auto& c = As<InterfaceDecl>(*spec.decls[2]);
  ASSERT_EQ(c.base_names.size(), 2u);
  EXPECT_EQ(c.base_names[0], "A");
  EXPECT_EQ(c.base_names[1], "::B");
}

TEST(Parser, OperationsAndParams) {
  Specification spec = Parse(R"(
    interface I {
      long f(in long a, out string b, inout double c);
    };
  )");
  const auto& iface = As<InterfaceDecl>(*spec.decls[0]);
  ASSERT_EQ(iface.operations.size(), 1u);
  const OperationDecl& op = iface.operations[0];
  EXPECT_EQ(op.name, "f");
  ASSERT_EQ(op.params.size(), 3u);
  EXPECT_EQ(op.params[0].direction, ParamDir::kIn);
  EXPECT_EQ(op.params[1].direction, ParamDir::kOut);
  EXPECT_EQ(op.params[2].direction, ParamDir::kInOut);
  EXPECT_EQ(op.params[1].type.prim, PrimKind::kString);
}

TEST(Parser, IncopyDirection) {
  Specification spec = Parse("interface I { void f(incopy I x); };");
  const auto& iface = As<InterfaceDecl>(*spec.decls[0]);
  EXPECT_EQ(iface.operations[0].params[0].direction, ParamDir::kInCopy);
}

TEST(Parser, DefaultParameterValues) {
  Specification spec = Parse(R"(
    enum Status { Start, Stop };
    interface I {
      void f(in long a = 0, in boolean b = TRUE, in Status s = Start,
             in string t = "hi", in double d = 1.5);
    };
  )");
  const auto& iface = As<InterfaceDecl>(*spec.decls[1]);
  const auto& params = iface.operations[0].params;
  EXPECT_EQ(params[0].default_value.kind, Literal::Kind::kInt);
  EXPECT_EQ(params[0].default_value.int_value, 0);
  EXPECT_EQ(params[1].default_value.kind, Literal::Kind::kBool);
  EXPECT_TRUE(params[1].default_value.bool_value);
  EXPECT_EQ(params[2].default_value.kind, Literal::Kind::kScoped);
  EXPECT_EQ(params[3].default_value.kind, Literal::Kind::kString);
  EXPECT_EQ(params[3].default_value.text, "hi");
  EXPECT_EQ(params[4].default_value.kind, Literal::Kind::kFloat);
  EXPECT_DOUBLE_EQ(params[4].default_value.float_value, 1.5);
}

TEST(Parser, NegativeDefaults) {
  Specification spec = Parse("interface I { void f(in long a = -3); };");
  const auto& iface = As<InterfaceDecl>(*spec.decls[0]);
  EXPECT_EQ(iface.operations[0].params[0].default_value.int_value, -3);
}

TEST(Parser, Attributes) {
  Specification spec = Parse(R"(
    enum Status { Start, Stop };
    interface I {
      readonly attribute Status button;
      attribute long knob, dial;
    };
  )");
  const auto& iface = As<InterfaceDecl>(*spec.decls[1]);
  ASSERT_EQ(iface.attributes.size(), 3u);
  EXPECT_TRUE(iface.attributes[0].readonly);
  EXPECT_EQ(iface.attributes[1].name, "knob");
  EXPECT_FALSE(iface.attributes[2].readonly);
  EXPECT_EQ(iface.attributes[2].name, "dial");
}

TEST(Parser, MemberOrderPreservesInterleaving) {
  // Fig 3 interleaves the attribute between methods q and s.
  Specification spec = Parse(R"(
    interface I {
      void q();
      readonly attribute long button;
      void s();
    };
  )");
  const auto& iface = As<InterfaceDecl>(*spec.decls[0]);
  ASSERT_EQ(iface.member_order.size(), 3u);
  EXPECT_EQ(iface.member_order[0].kind, InterfaceMember::Kind::kOperation);
  EXPECT_EQ(iface.member_order[1].kind, InterfaceMember::Kind::kAttribute);
  EXPECT_EQ(iface.member_order[2].kind, InterfaceMember::Kind::kOperation);
}

TEST(Parser, OnewayAndRaises) {
  Specification spec = Parse(R"(
    exception Oops { string reason; };
    interface I {
      oneway void fire(in string evt);
      void risky() raises (Oops);
    };
  )");
  const auto& iface = As<InterfaceDecl>(*spec.decls[1]);
  EXPECT_TRUE(iface.operations[0].oneway);
  ASSERT_EQ(iface.operations[1].raises.size(), 1u);
  EXPECT_EQ(iface.operations[1].raises[0], "Oops");
}

TEST(Parser, SequencesAndBounds) {
  Specification spec = Parse(R"(
    typedef sequence<long> L1;
    typedef sequence<long, 8> L2;
    typedef sequence<sequence<string>> L3;
    typedef string<16> Name;
  )");
  const auto& l1 = As<TypedefDecl>(*spec.decls[0]);
  EXPECT_EQ(l1.type.kind, TypeRef::Kind::kSequence);
  EXPECT_EQ(l1.type.bound, 0u);
  const auto& l2 = As<TypedefDecl>(*spec.decls[1]);
  EXPECT_EQ(l2.type.bound, 8u);
  const auto& l3 = As<TypedefDecl>(*spec.decls[2]);
  EXPECT_EQ(l3.type.element->kind, TypeRef::Kind::kSequence);
  const auto& name = As<TypedefDecl>(*spec.decls[3]);
  EXPECT_EQ(name.type.string_bound, 16u);
}

TEST(Parser, IntegerTypeSpellings) {
  Specification spec = Parse(R"(
    interface I {
      void f(in unsigned long a, in unsigned short b, in long long c,
             in unsigned long long d, in octet e);
    };
  )");
  const auto& params =
      As<InterfaceDecl>(*spec.decls[0]).operations[0].params;
  EXPECT_EQ(params[0].type.prim, PrimKind::kULong);
  EXPECT_EQ(params[1].type.prim, PrimKind::kUShort);
  EXPECT_EQ(params[2].type.prim, PrimKind::kLongLong);
  EXPECT_EQ(params[3].type.prim, PrimKind::kULongLong);
  EXPECT_EQ(params[4].type.prim, PrimKind::kOctet);
}

TEST(Parser, StructAndException) {
  Specification spec = Parse(R"(
    struct Point { double x, y; };
    exception Bad { long code; string what; };
  )");
  const auto& point = As<StructDecl>(*spec.decls[0]);
  ASSERT_EQ(point.fields.size(), 2u);
  EXPECT_EQ(point.fields[1].name, "y");
  const auto& bad = As<ExceptionDecl>(*spec.decls[1]);
  EXPECT_EQ(bad.fields.size(), 2u);
}

TEST(Parser, Consts) {
  Specification spec = Parse(R"(
    const long MAX = 10;
    const string NAME = "heidi";
    const boolean ON = TRUE;
  )");
  EXPECT_EQ(As<ConstDecl>(*spec.decls[0]).value.int_value, 10);
  EXPECT_EQ(As<ConstDecl>(*spec.decls[1]).value.text, "heidi");
  EXPECT_TRUE(As<ConstDecl>(*spec.decls[2]).value.bool_value);
}

TEST(Parser, NestedTypesInInterface) {
  Specification spec = Parse(R"(
    interface I {
      enum Mode { On, Off };
      typedef sequence<long> Codes;
      void f(in Mode m);
    };
  )");
  const auto& iface = As<InterfaceDecl>(*spec.decls[0]);
  EXPECT_EQ(iface.nested.size(), 2u);
}

// --- error cases -----------------------------------------------------------

TEST(ParserErrors, MissingSemicolon) {
  EXPECT_THROW(Parse("module M { }"), ParseError);
}

TEST(ParserErrors, VoidParameter) {
  EXPECT_THROW(Parse("interface I { void f(in void v); };"), ParseError);
}

TEST(ParserErrors, EmptyStruct) {
  EXPECT_THROW(Parse("struct S { };"), ParseError);
}

TEST(ParserErrors, ArrayTypedefUnsupported) {
  EXPECT_THROW(Parse("typedef long arr[4];"), ParseError);
}

TEST(ParserErrors, MissingDirection) {
  EXPECT_THROW(Parse("interface I { void f(long a); };"), ParseError);
}

TEST(ParserErrors, UnterminatedInterface) {
  EXPECT_THROW(Parse("interface I { void f();"), ParseError);
}

TEST(ParserErrors, ReportsLineNumbers) {
  try {
    Parse("interface I {\n  void f(;\n};", "t.idl");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("t.idl:2"), std::string::npos);
  }
}

TEST(ParserErrors, NegatedBooleanDefault) {
  EXPECT_THROW(Parse("interface I { void f(in boolean b = -TRUE); };"),
               ParseError);
}

TEST(Parser, TrailingEnumCommaTolerated) {
  Specification spec = Parse("enum E { A, B, };");
  EXPECT_EQ(As<EnumDecl>(*spec.decls[0]).members.size(), 2u);
}

}  // namespace
}  // namespace heidi::idl
