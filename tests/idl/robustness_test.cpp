// Pathological inputs the front-end must reject (or at least terminate
// on): typedef cycles, deep nesting, absurd-but-legal shapes.
#include <gtest/gtest.h>

#include <sstream>

#include "est/builder.h"
#include "idl/sema.h"
#include "support/error.h"

namespace heidi::idl {
namespace {

TEST(Robustness, SelfReferentialTypedefTerminates) {
  // `typedef Foo Foo;` resolves to itself; UnaliasType must not spin.
  Specification spec = ParseAndResolve("typedef long A; typedef A A2;");
  EXPECT_EQ(spec.decls.size(), 2u);
  // Direct self-reference: the name resolves to the typedef being
  // declared. Unaliasing terminates (depth cap) and downstream consumers
  // survive.
  Specification self = ParseAndResolve("typedef B B;");
  const auto& td = static_cast<const TypedefDecl&>(*self.decls[0]);
  const TypeRef& u = UnaliasType(td.type);
  (void)u;
  EXPECT_NO_THROW((void)est::BuildEst(self));
}

TEST(Robustness, MutuallyRecursiveTypedefsTerminate) {
  // A resolves to B which (by reopened lookup) resolves back; the depth
  // cap must keep every consumer finite.
  EXPECT_NO_THROW(ParseAndResolve("typedef X2 X; typedef X X2;"));
}

TEST(Robustness, DeeplyNestedModules) {
  std::ostringstream os;
  constexpr int kDepth = 64;
  for (int i = 0; i < kDepth; ++i) os << "module M" << i << " { ";
  os << "interface Leaf { void f(); };";
  for (int i = 0; i < kDepth; ++i) os << " };";
  Specification spec = ParseAndResolve(os.str());
  auto est = est::BuildEst(spec);
  const auto* interfaces = est->FindList("interfaceList");
  ASSERT_EQ(interfaces->size(), 1u);
  // Scoped name has all 64 components.
  std::string scoped = interfaces->front()->GetProp("interfaceName");
  EXPECT_NE(scoped.find("M0::"), std::string::npos);
  EXPECT_NE(scoped.find("M63::Leaf"), std::string::npos);
}

TEST(Robustness, LongInheritanceChain) {
  std::ostringstream os;
  os << "interface I0 { void m0(); };";
  constexpr int kDepth = 40;
  for (int i = 1; i < kDepth; ++i) {
    os << "interface I" << i << " : I" << i - 1 << " { void m" << i
       << "(); };";
  }
  Specification spec = ParseAndResolve(os.str());
  auto est = est::BuildEst(spec);
  const auto* interfaces = est->FindList("interfaceList");
  const est::Node& leaf = *interfaces->back();
  EXPECT_EQ(leaf.FindList("allMethodList")->size(),
            static_cast<size_t>(kDepth));
}

TEST(Robustness, ManyParameters) {
  std::ostringstream os;
  os << "interface I { void f(";
  for (int i = 0; i < 100; ++i) {
    if (i != 0) os << ", ";
    os << "in long p" << i;
  }
  os << "); };";
  Specification spec = ParseAndResolve(os.str());
  const auto& iface = static_cast<const InterfaceDecl&>(*spec.decls[0]);
  EXPECT_EQ(iface.operations[0].params.size(), 100u);
}

TEST(Robustness, HugeEnum) {
  std::ostringstream os;
  os << "enum Big { V0";
  for (int i = 1; i < 500; ++i) os << ", V" << i;
  os << " };";
  Specification spec = ParseAndResolve(os.str());
  EXPECT_EQ(static_cast<const EnumDecl&>(*spec.decls[0]).members.size(),
            500u);
}

TEST(Robustness, GarbageInputsAlwaysThrowCleanly) {
  for (const char* garbage : {
           "}{",
           ";;;;",
           "interface",
           "module { };",
           "interface I : {};",
           "typedef sequence<> X;",
           "enum E {};",
           "interface I { void f(in long); };",  // missing param name
           "const long X;",
           "union U switch () { case 1: long a; };",
       }) {
    EXPECT_THROW(ParseAndResolve(garbage), ParseError) << garbage;
  }
}

TEST(Robustness, CommentsEverywhere) {
  Specification spec = ParseAndResolve(R"(
    /* header */ module /* name? */ M { // trailing
      /* before */ interface I /* mid */ { void /* deep */ f(); };
    }; // done
  )");
  EXPECT_EQ(spec.decls.size(), 1u);
}

}  // namespace
}  // namespace heidi::idl
