#include "idl/lexer.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace heidi::idl {
namespace {

std::vector<Tok> Kinds(std::string_view src) {
  Lexer lexer(src);
  std::vector<Tok> out;
  for (const Token& t : lexer.Tokenize()) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInput) {
  EXPECT_EQ(Kinds(""), (std::vector<Tok>{Tok::kEof}));
  EXPECT_EQ(Kinds("   \n\t "), (std::vector<Tok>{Tok::kEof}));
}

TEST(Lexer, KeywordsVsIdentifiers) {
  EXPECT_EQ(Kinds("module interface foo"),
            (std::vector<Tok>{Tok::kKwModule, Tok::kKwInterface,
                              Tok::kIdentifier, Tok::kEof}));
  // IDL keywords are case-sensitive.
  EXPECT_EQ(Kinds("Module")[0], Tok::kIdentifier);
}

TEST(Lexer, IncopyExtensionKeyword) {
  EXPECT_EQ(Kinds("incopy")[0], Tok::kKwIncopy);
}

TEST(Lexer, TrueFalseAreUppercase) {
  EXPECT_EQ(Kinds("TRUE FALSE"),
            (std::vector<Tok>{Tok::kKwTrue, Tok::kKwFalse, Tok::kEof}));
  EXPECT_EQ(Kinds("true")[0], Tok::kIdentifier);
}

TEST(Lexer, Punctuation) {
  EXPECT_EQ(Kinds("{ } ( ) < > , ; = ::"),
            (std::vector<Tok>{Tok::kLBrace, Tok::kRBrace, Tok::kLParen,
                              Tok::kRParen, Tok::kLess, Tok::kGreater,
                              Tok::kComma, Tok::kSemicolon, Tok::kEquals,
                              Tok::kScope, Tok::kEof}));
}

TEST(Lexer, ScopeVsColon) {
  EXPECT_EQ(Kinds("a::b"),
            (std::vector<Tok>{Tok::kIdentifier, Tok::kScope, Tok::kIdentifier,
                              Tok::kEof}));
  EXPECT_EQ(Kinds("a : b")[1], Tok::kColon);
}

TEST(Lexer, IntegerLiterals) {
  Lexer lexer("42 0x1F 0");
  auto tokens = lexer.Tokenize();
  EXPECT_EQ(tokens[0].kind, Tok::kIntLit);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].kind, Tok::kIntLit);
  EXPECT_EQ(tokens[1].text, "0x1F");
  EXPECT_EQ(tokens[2].text, "0");
}

TEST(Lexer, FloatLiterals) {
  Lexer lexer("1.5 2e10 3.25e-2");
  auto tokens = lexer.Tokenize();
  EXPECT_EQ(tokens[0].kind, Tok::kFloatLit);
  EXPECT_EQ(tokens[1].kind, Tok::kFloatLit);
  EXPECT_EQ(tokens[2].kind, Tok::kFloatLit);
  EXPECT_EQ(tokens[2].text, "3.25e-2");
}

TEST(Lexer, IntegerFollowedByDotMember) {
  // "1." without a digit after the dot is not a float in our subset.
  Lexer lexer("1 .");
  EXPECT_EQ(lexer.Next().kind, Tok::kIntLit);
  EXPECT_THROW(lexer.Next(), ParseError);  // bare '.' is not a token
}

TEST(Lexer, StringLiterals) {
  Lexer lexer(R"("hello" "a\nb" "q\"q")");
  auto tokens = lexer.Tokenize();
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "a\nb");
  EXPECT_EQ(tokens[2].text, "q\"q");
}

TEST(Lexer, CharLiterals) {
  Lexer lexer(R"('a' '\n' '\'')");
  auto tokens = lexer.Tokenize();
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "\n");
  EXPECT_EQ(tokens[2].text, "'");
}

TEST(Lexer, UnterminatedStringThrows) {
  Lexer lexer("\"abc");
  EXPECT_THROW(lexer.Tokenize(), ParseError);
}

TEST(Lexer, LineComments) {
  EXPECT_EQ(Kinds("a // comment\nb"),
            (std::vector<Tok>{Tok::kIdentifier, Tok::kIdentifier, Tok::kEof}));
}

TEST(Lexer, BlockComments) {
  EXPECT_EQ(Kinds("a /* x\ny */ b"),
            (std::vector<Tok>{Tok::kIdentifier, Tok::kIdentifier, Tok::kEof}));
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(Kinds("a /* never closed"), ParseError);
}

TEST(Lexer, PragmaPrefix) {
  Lexer lexer("#pragma prefix \"nec.com\"\ninterface A;");
  lexer.Tokenize();
  EXPECT_EQ(lexer.PragmaPrefix(), "nec.com");
}

TEST(Lexer, UnknownPreprocessorDirectiveThrows) {
  Lexer lexer("#include <x.idl>\n");
  EXPECT_THROW(lexer.Tokenize(), ParseError);
}

TEST(Lexer, PositionsAreTracked) {
  Lexer lexer("a\n  b");
  Token a = lexer.Next();
  Token b = lexer.Next();
  EXPECT_EQ(a.line, 1);
  EXPECT_EQ(a.column, 1);
  EXPECT_EQ(b.line, 2);
  EXPECT_EQ(b.column, 3);
}

TEST(Lexer, ErrorMentionsSourceName) {
  Lexer lexer("$", "myfile.idl");
  try {
    lexer.Next();
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("myfile.idl"), std::string::npos);
  }
}

}  // namespace
}  // namespace heidi::idl
