// CallMux: the client half of a multiplexed connection (the transmission-
// policy axis of §3.1 — synchrony and deadlines are configurable without
// touching the mapping). Many threads share one cached connection: a
// sender registers its request's call id in a pending-call table, writes
// the frame under a short write lock, and parks on a per-call future; a
// per-connection demux thread reads reply frames and completes the
// matching promise, in whatever order the replies arrive.
//
// Failure policy: a transport error (EOF, reset, malformed frame) fails
// *all* pending calls with NetError and marks the mux broken — the orb
// then drops the cached connection and the next invocation reconnects. A
// deadline expiry fails only its own call: the waiter abandons its table
// entry, and the late reply, when it eventually arrives, is drained and
// dropped as stale (counted, never corrupting the stream).
//
// Buffer flow (see support/bytes.h): outbound frames are BufferChains
// scatter-gathered by the channel under the write lock, and the demux
// thread's ReadCall decodes each reply into a pooled slab it pops from
// its thread-affine pool shard — the slabs this connection's replies
// retire come straight back on its next frames, so a busy mux recycles
// the same few slabs for its whole lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/buffered.h"
#include "net/channel.h"
#include "wire/call.h"
#include "wire/protocol.h"

namespace heidi::orb {

// Mux counters, shared across every connection of one orb so OrbStats can
// report them without chasing communicators (monotonic, best-effort).
struct MuxCounters {
  std::atomic<uint64_t> inflight_highwater{0};
  std::atomic<uint64_t> timeouts{0};
  std::atomic<uint64_t> wakeups{0};
  std::atomic<uint64_t> stale_replies{0};
  std::atomic<uint64_t> connections_broken{0};  // FailAll condemnations
};

class CallMux {
 public:
  // The mux borrows the channel/reader/protocol from its communicator,
  // which must outlive it. `counters` may be nullptr (standalone use).
  CallMux(net::ByteChannel& channel, net::BufferedReader& reader,
          const wire::Protocol& protocol, MuxCounters* counters);
  ~CallMux();

  CallMux(const CallMux&) = delete;
  CallMux& operator=(const CallMux&) = delete;

  // Starts the demux thread; idempotent.
  void Start();

  // Registers the request's call id and sends the frame (short write
  // lock). Returns the future the reply will arrive on. Throws
  // ConnectError if the connection is already broken (nothing was
  // transmitted — a determinate failure); a write failure breaks the
  // connection and throws plain NetError (the peer's stream position is
  // unknowable mid-frame, so the failure is indeterminate).
  std::future<std::unique_ptr<wire::Call>> Submit(const wire::Call& request);

  // Blocks on `future` for up to `timeout_ms` (< 0 = forever). On expiry
  // abandons call `id` — the connection stays usable, the late reply is
  // dropped — and throws TimeoutError. Rethrows the mux failure (NetError)
  // if the connection died while waiting.
  std::unique_ptr<wire::Call> Await(
      uint64_t id, std::future<std::unique_ptr<wire::Call>>& future,
      int timeout_ms);

  // Frame write without a pending-table entry (oneways, raw sends).
  void SendOneway(const wire::Call& call);

  // True once a transport error has condemned the connection.
  bool Broken() const { return broken_.load(std::memory_order_acquire); }

  // Joins the demux thread. The channel must be closed first (that is
  // what unblocks the demux read). Called by the destructor.
  void Stop();

 private:
  void DemuxLoop();
  // Fails every pending call with NetError(reason) and marks broken.
  void FailAll(const std::string& reason);

  net::ByteChannel& channel_;
  net::BufferedReader& reader_;
  const wire::Protocol& protocol_;
  MuxCounters* counters_;

  std::mutex write_mutex_;  // frame writes are atomic per call

  std::mutex pending_mutex_;
  std::map<uint64_t, std::promise<std::unique_ptr<wire::Call>>> pending_;
  bool started_ = false;
  std::string failure_;  // reason, once broken
  std::atomic<bool> broken_{false};

  std::thread demux_thread_;
};

}  // namespace heidi::orb
