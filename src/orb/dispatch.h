// Skeleton dispatch tables with selectable strategy.
//
// §2 of the paper observes that many IDL compilers implement skeleton
// dispatch with linear string comparisons, which is expensive for
// interfaces with many long-named methods, and that nested comparisons
// (Flick) or a hash table dispatch faster. All three are implemented here
// and selectable per ORB; bench_dispatch reproduces the comparison.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "wire/call.h"

namespace heidi::orb {

enum class DispatchStrategy {
  kLinear,  // scan + full string compare (the naive generated code)
  kBinary,  // sorted table + binary search (Flick-style nested comparison)
  kHash,    // hash table
};

std::string_view DispatchStrategyName(DispatchStrategy strategy);

class DispatchTable {
 public:
  // in = request call positioned at the first argument; out = reply call.
  using Handler = std::function<void(wire::Call& in, wire::Call& out)>;

  explicit DispatchTable(DispatchStrategy strategy = DispatchStrategy::kHash)
      : strategy_(strategy) {}

  // Duplicate names throw HdError. Add after Seal() throws.
  void Add(std::string name, Handler handler);

  // Freezes the table and builds the strategy's lookup structure.
  void Seal();

  // nullptr if unknown. Must be sealed.
  const Handler* Find(std::string_view name) const;

  size_t Size() const { return entries_.size(); }
  DispatchStrategy Strategy() const { return strategy_; }
  const std::vector<std::string>& Names() const { return names_; }

 private:
  struct Entry {
    std::string name;
    Handler handler;
  };

  DispatchStrategy strategy_;
  bool sealed_ = false;
  std::vector<Entry> entries_;
  std::vector<std::string> names_;
  // kHash only.
  std::unordered_map<std::string_view, const Handler*> hash_;
};

}  // namespace heidi::orb
