// Stringified object references (§3.1): three parts joined by '#' —
// bootstrap URL (protocol:host:port), object identifier, object type:
//
//   @tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0
//
// The bootstrap URL says how to open a channel to the object's address
// space; the object id identifies the object within it; the repository id
// lets the receiving side pick the right stub/skeleton. The nil reference
// is the literal "@nil". Supported protocols: "tcp" and "inproc" (the
// in-process transport; host is the inproc name, port is 0). IPv6
// numeric hosts are not supported in the string form (the ':' separator
// predates them — a faithful period limitation).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace heidi::orb {

struct ObjectRef {
  std::string protocol;  // "tcp" | "inproc"
  std::string host;      // hostname/IP, or inproc name
  uint16_t port = 0;
  uint64_t object_id = 0;
  std::string repo_id;  // "IDL:Heidi/A:1.0"

  bool IsNil() const { return protocol.empty(); }

  // "proto:host:port" — the connection-cache key.
  std::string Endpoint() const;

  std::string ToString() const;

  // Caches the stringified form so ToStringShared() is allocation-free.
  // Call while the ref is still thread-private (Parse and the stub
  // constructor do); the identity fields must not change afterwards —
  // copies of an interned ref share the cached string.
  void Intern() { interned_ = std::make_shared<const std::string>(ToString()); }

  // The interned stringified form, shared by every Call addressed at
  // this ref (wire::Call::SetTarget's zero-copy overload). Falls back to
  // a fresh string when Intern() was never called, so hand-built refs
  // stay correct — merely not zero-copy.
  std::shared_ptr<const std::string> ToStringShared() const {
    if (interned_ != nullptr) return interned_;
    return std::make_shared<const std::string>(ToString());
  }

  // Throws RefError on malformed input. Accepts "@nil" and "".
  static ObjectRef Parse(std::string_view text);

  static ObjectRef Nil() { return ObjectRef{}; }

  friend bool operator==(const ObjectRef& a, const ObjectRef& b) {
    return a.protocol == b.protocol && a.host == b.host && a.port == b.port &&
           a.object_id == b.object_id && a.repo_id == b.repo_id;
  }

 private:
  std::shared_ptr<const std::string> interned_;
};

}  // namespace heidi::orb
