#include "orb/workpool.h"

#include <utility>

#include "obs/flight.h"

namespace heidi::orb {

bool WorkPool::Post(Task task) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_ || target_threads_ <= 0) return false;
    if (workers_.empty()) {
      workers_.reserve(static_cast<size_t>(target_threads_));
      for (int i = 0; i < target_threads_; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
      }
    }
    queue_.push_back(std::move(task));
    ++stats_.posted;
    if (queue_.size() > stats_.queue_highwater) {
      stats_.queue_highwater = queue_.size();
      // Journal the new high-water mark: a queue that keeps climbing is
      // the canonical "server falling behind" black-box breadcrumb.
      obs::FlightRecorder::Global().Record(
          obs::FlightEventType::kQueueHighWater, stats_.queue_highwater,
          static_cast<uint64_t>(target_threads_));
    }
  }
  cv_.notify_one();
  return true;
}

size_t WorkPool::QueueDepth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

WorkPool::Stats WorkPool::GetStats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void WorkPool::Stop() {
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

void WorkPool::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      // Drain even when stopping: queued requests already have a client
      // parked on their reply.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      ++stats_.executed;
    }
  }
}

}  // namespace heidi::orb
