// Umbrella header for the HeidiRMI runtime: Orb, object references,
// stubs/skeletons, dispatch, communicators, interface registry.
#pragma once

#include "orb/communicator.h"  // IWYU pragma: export
#include "orb/dispatch.h"      // IWYU pragma: export
#include "orb/gencode.h"       // IWYU pragma: export
#include "orb/heidi_types.h"   // IWYU pragma: export
#include "orb/interceptor.h"   // IWYU pragma: export
#include "orb/objref.h"        // IWYU pragma: export
#include "orb/orb.h"           // IWYU pragma: export
#include "orb/registry.h"      // IWYU pragma: export
#include "orb/skeleton.h"      // IWYU pragma: export
#include "orb/stub.h"          // IWYU pragma: export
