// Bridge header included by code generated with the heidi_cpp mapping.
//
// The HeidiRMI mapping only utilizes Heidi-defined data types (§3), and
// legacy Heidi spelled them unscoped: XBool, HdList<T>, HdString. This
// header reproduces those global names as aliases of the library types —
// exactly the kind of existing-code-base convention the custom mapping
// exists to accommodate. New code should prefer the heidi:: names.
#pragma once

#include <string>
#include <string_view>

#include "support/annotations.h"  // HEIDI_VIEW_PARAM in generated signatures
#include "support/error.h"  // RemoteError: base of generated exceptions
#include "support/hdlist.h"
#include "support/typeinfo.h"
#include "support/xbool.h"

using XBool = ::heidi::XBool;                 // NOLINT(misc-unused-using-decls)
inline constexpr XBool XTrue = ::heidi::XTrue;
inline constexpr XBool XFalse = ::heidi::XFalse;

template <typename T>
using HdList = ::heidi::HdList<T>;
template <typename T>
using HdListIterator = ::heidi::HdListIterator<T>;

using HdString = std::string;

// View-mapping types (idlc --view-interfaces): non-owning windows over
// the retained request frame, valid only for the duration of the
// dispatch that produced them — implementations copy what they keep.
// As std::string_view aliases they are [[gsl::Pointer]] types, so
// clang's -Wdangling-gsl already rejects statement-local escapes;
// generated signatures additionally tag each view parameter with
// HEIDI_VIEW_PARAM (support/annotations.h) for external tooling.
using HdStringView = std::string_view;
using HdBytesView = std::string_view;
