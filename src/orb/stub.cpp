#include "orb/stub.h"

#include "orb/orb.h"

namespace heidi::orb {

HdStub::HdStub(Orb& orb, ObjectRef ref) : orb_(&orb), ref_(std::move(ref)) {
  // Every NewCall through this stub shares the one interned target
  // string instead of re-stringifying the ref per request.
  ref_.Intern();
}

std::unique_ptr<wire::Call> HdStub::NewCall(std::string_view op,
                                            bool oneway) const {
  return orb_->NewRequest(ref_, op, oneway);
}

std::unique_ptr<wire::Call> HdStub::Invoke(std::unique_ptr<wire::Call> call,
                                           int timeout_ms) const {
  return orb_->Invoke(ref_, *call, timeout_ms);
}

ReplyHandle HdStub::InvokeAsync(std::unique_ptr<wire::Call> call,
                                int timeout_ms) const {
  return orb_->InvokeAsync(ref_, *call, timeout_ms);
}

void HdStub::InvokeOneway(std::unique_ptr<wire::Call> call) const {
  orb_->InvokeOneway(ref_, *call);
}

}  // namespace heidi::orb
