#include "orb/orb.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <random>
#include <thread>

#include "net/inmemory.h"
#include "obs/flight.h"
#include "obs/promhttp.h"
#include "support/arena.h"
#include "support/bytes.h"
#include "support/logging.h"
#include "support/strings.h"

namespace heidi::orb {

// ---------------------------------------------------------------------------
// In-process transport registry

namespace {

std::mutex& InprocMutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, Orb*>& InprocOrbs() {
  static std::map<std::string, Orb*> orbs;
  return orbs;
}

void InprocRegister(const std::string& name, Orb* orb) {
  if (name.empty()) return;
  std::lock_guard lock(InprocMutex());
  auto [it, inserted] = InprocOrbs().emplace(name, orb);
  if (!inserted) {
    throw HdError("inproc name '" + name + "' already in use");
  }
}

void InprocUnregister(const std::string& name, Orb* orb) {
  if (name.empty()) return;
  std::lock_guard lock(InprocMutex());
  auto it = InprocOrbs().find(name);
  if (it != InprocOrbs().end() && it->second == orb) InprocOrbs().erase(it);
}

Orb* InprocFind(const std::string& name) {
  std::lock_guard lock(InprocMutex());
  auto it = InprocOrbs().find(name);
  return it == InprocOrbs().end() ? nullptr : it->second;
}

using Clock = std::chrono::steady_clock;

// Remaining milliseconds of the invocation's deadline (clamped at 0 so an
// overdue attempt fails fast with TimeoutError instead of blocking); -1
// when there is no deadline.
int RemainingMs(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

// Exponential backoff for the retry that follows failed attempt number
// `attempt` (1-based), with bounded uniform jitter on top.
int BackoffDelayMs(const RetryPolicy& policy, int attempt) {
  double base = policy.initial_backoff_ms;
  for (int i = 1; i < attempt; ++i) base *= policy.backoff_multiplier;
  base = std::min(base, static_cast<double>(policy.max_backoff_ms));
  if (base <= 0) return 0;
  int jitter = 0;
  int bound = static_cast<int>(base * policy.jitter_pct / 100.0);
  if (bound > 0) {
    thread_local std::mt19937 rng{std::random_device{}()};
    jitter = std::uniform_int_distribution<int>(0, bound)(rng);
  }
  return static_cast<int>(base) + jitter;
}

// Operation names form a tiny closed set per process (the IDL's method
// names), so intern them: every request of one operation shares a single
// immortal string instead of copying the name per call. The table is
// never pruned — hostile callers can at worst grow it by their distinct
// operation names, which the dispatch layer already bounds interest in.
std::shared_ptr<const std::string> InternedOperation(std::string_view op) {
  static std::mutex mutex;
  static std::map<std::string, std::shared_ptr<const std::string>,
                  std::less<>>& table =
      *new std::map<std::string, std::shared_ptr<const std::string>,
                    std::less<>>();  // immortal: calls may outlive statics
  std::lock_guard lock(mutex);
  auto it = table.find(op);
  if (it == table.end()) {
    it = table
             .emplace(std::string(op),
                      std::make_shared<const std::string>(op))
             .first;
  }
  return it->second;
}

// Stage names must outlive their span (StageRecord keeps the pointer),
// so attempt stages draw from a static table.
const char* AttemptStageName(int attempt) {
  static const char* const kNames[] = {"attempt.1", "attempt.2", "attempt.3",
                                       "attempt.4", "attempt.5", "attempt.6",
                                       "attempt.7", "attempt.8"};
  if (attempt >= 1 && attempt <= 8) return kNames[attempt - 1];
  return "attempt.n";
}

// Flight-recorder feeders for the layers below the orb. Support and net
// expose function-pointer hooks (they must not link heidi_obs); the orb
// — which links everything — points them at the global black box. The
// hooks are process-wide, matching the recorder: installed once, by
// whichever orb constructs first.
void FlightPoolPressureHook(uint64_t outstanding_bytes,
                            uint64_t outstanding_bufs) {
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kPoolPressure,
                                       outstanding_bytes, outstanding_bufs);
}

void FlightArenaOversizeHook(uint64_t bytes) {
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kArenaOversize,
                                       bytes);
}

void FlightFaultTriggerHook(const char* kind, uint64_t total) {
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kFaultInjected,
                                       total, 0, kind);
}

void FlightReactorEventHook(net::Reactor::Event event, uint64_t a, int shard) {
  switch (event) {
    case net::Reactor::Event::kBackpressureSuspend:
      obs::FlightRecorder::Global().Record(obs::FlightEventType::kBackpressure,
                                           a, static_cast<uint64_t>(shard));
      break;
    case net::Reactor::Event::kBackpressureResume:
      // The resume edge is only a counter (ReactorStats); the suspend is
      // the incident worth a black-box entry.
      break;
    case net::Reactor::Event::kLoopStall:
      obs::FlightRecorder::Global().Record(obs::FlightEventType::kLoopStall,
                                           a, static_cast<uint64_t>(shard));
      break;
  }
}

void InstallFlightHooksOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    bytes::IoBufPool::Global().BindPressureHook(&FlightPoolPressureHook);
    support::Arena::SetOversizeHook(&FlightArenaOversizeHook);
    net::FaultInjector::SetTriggerHook(&FlightFaultTriggerHook);
    net::Reactor::SetEventHook(&FlightReactorEventHook);
  });
}

// Per-connection reactor state, parked in ReactorConn::UserState: the
// protocol's incremental frame decoder (it carries cross-fragment state,
// so it must live exactly as long as the connection).
struct ReactorConnState {
  std::unique_ptr<wire::FrameDecoder> decoder;
};

}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle

Orb::Orb(OrbOptions options) : options_(std::move(options)) {
  retry_budget_left_.store(options_.retry.retry_budget,
                           std::memory_order_relaxed);
  protocol_ = wire::FindProtocol(options_.protocol);
  if (protocol_ == nullptr) {
    throw HdError("unknown wire protocol '" + options_.protocol + "'");
  }
  if (options_.server_workers > 0) {
    worker_pool_ = std::make_unique<WorkPool>(options_.server_workers);
  }
  if (options_.tracer != nullptr) {
    // Stage keys are fixed, so resolve their histogram slots once here —
    // MetricsRegistry hands out stable pointers — and keep the hot path
    // free of registry lookups (per-operation keys are looked up per
    // call; short names stay within std::string's SSO buffer).
    obs::MetricsRegistry& metrics = options_.tracer->Metrics();
    stage_client_acquire_ = metrics.Histogram("stage.client.acquire");
    stage_client_send_ = metrics.Histogram("stage.client.send");
    stage_client_wait_ = metrics.Histogram("stage.client.wait");
    stage_client_unmarshal_ = metrics.Histogram("stage.client.unmarshal");
    stage_server_queue_ = metrics.Histogram("stage.server.queue");
    stage_server_exec_ = metrics.Histogram("stage.server.exec");
    stage_server_reply_ = metrics.Histogram("stage.server.reply");
    ctr_calls_ = metrics.GetCounter("client.calls");
    ctr_call_errors_ = metrics.GetCounter("client.errors");
    ctr_requests_ = metrics.GetCounter("server.requests");
    ctr_request_errors_ = metrics.GetCounter("server.errors");
    // Mirror the global buffer pool's hit/miss/recycle events into this
    // tracer's registry so bench/CI reports can compute allocations per
    // call from metric deltas. (The pool is process-global; last tracer
    // bound wins, which is fine — bench binaries attach exactly one.)
    bytes::IoBufPool::Global().BindMetrics(metrics);
    // Retention overrides the tracer's sampling mode (the tracer may be
    // shared; the last orb's policy wins, like BindMetrics above).
    if (options_.retention != nullptr) {
      options_.tracer->SetRetention(options_.retention);
    }
  }
  InstallFlightHooksOnce();
  if (options_.metrics_listen >= 0) {
    // The scrape pages render from the tracer's registry; an orb without
    // a tracer still gets counters/gauges through a registry of its own.
    if (options_.tracer == nullptr) {
      own_metrics_ = std::make_unique<obs::MetricsRegistry>();
    }
    metrics_server_ = std::make_unique<obs::PromHttpServer>(
        static_cast<uint16_t>(options_.metrics_listen));
    obs::PromHttpServer::Page metrics_page;
    metrics_page.render = [this] {
      SyncStatsToMetrics();
      return ScrapeRegistry()->RenderOpenMetrics();
    };
    metrics_page.content_type = obs::MetricsRegistry::OpenMetricsContentType();
    metrics_server_->Handle("/metrics", std::move(metrics_page));
    obs::PromHttpServer::Page flight_page;
    flight_page.render = [] {
      return obs::FlightRecorder::Global().DumpJsonl();
    };
    metrics_server_->Handle("/flight", std::move(flight_page));
    metrics_server_->Start();
  }
  InprocRegister(options_.inproc_name, this);
}

Orb::~Orb() {
  InprocUnregister(options_.inproc_name, this);
  Shutdown();
}

void Orb::ListenTcp(uint16_t port) {
  std::lock_guard lock(server_mutex_);
  if (acceptor_ != nullptr || reactor_ != nullptr) {
    throw HdError("orb is already listening");
  }
  int shards = options_.reactor_shards;
  if (shards < 0) {
    unsigned hw = std::thread::hardware_concurrency();
    shards = hw > 0 ? static_cast<int>(hw) : 4;
  }
  net::TcpTuning tuning;
  tuning.nodelay = options_.tcp_nodelay;
  tuning.rcvbuf = options_.tcp_rcvbuf;
  tuning.sndbuf = options_.tcp_sndbuf;
  // Reactor serving needs the protocol's incremental decoder; a custom
  // protocol without one falls back to thread-per-connection, unchanged.
  bool use_reactor = shards > 0 && protocol_->NewFrameDecoder() != nullptr;
  if (use_reactor) {
    net::ReactorOptions ropts;
    ropts.shards = shards;
    ropts.write_high_water = options_.reactor_write_high_water;
    ropts.write_low_water = options_.reactor_write_high_water / 4;
    ropts.tuning = tuning;
    net::Reactor::Handlers handlers;
    handlers.on_data = [this](net::ReactorConn& conn) {
      return OnReactorData(conn);
    };
    reactor_ = std::make_unique<net::Reactor>(ropts, std::move(handlers));
    if (options_.reactor_reuseport) {
      // Sharded accept: the kernel delivers connections straight to each
      // shard's listener — no accept thread at all.
      listen_port_ = reactor_->ListenReusePort(port);
      obs::FlightRecorder::Global().Record(obs::FlightEventType::kListen,
                                           listen_port_);
      return;
    }
  }
  acceptor_ = std::make_unique<net::TcpAcceptor>(port, tuning);
  listen_port_ = acceptor_->Port();
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kListen,
                                       listen_port_);
  accept_thread_ = std::thread([this] {
    while (true) {
      std::unique_ptr<net::ByteChannel> channel = acceptor_->Accept();
      if (channel == nullptr) return;  // acceptor closed
      if (reactor_ != nullptr) {
        // Hand the raw descriptor to a shard; the channel wrapper is
        // done. (ReleaseFd < 0 means the channel type cannot surrender
        // its fd — serve it the legacy way below.)
        std::string peer = channel->PeerName();
        int fd = channel->ReleaseFd();
        if (fd >= 0) {
          obs::FlightRecorder::Global().Record(
              obs::FlightEventType::kConnAccepted, 0, 0, peer);
          reactor_->Adopt(fd, std::move(peer));
          continue;
        }
      }
      try {
        ServeChannel(std::move(channel));
      } catch (const HdError& e) {
        HD_LOG_WARN << "dropping inbound connection: " << e.what();
      }
    }
  });
}

uint16_t Orb::TcpPort() const {
  std::lock_guard lock(server_mutex_);
  return listen_port_;
}

void Orb::ServeChannel(std::unique_ptr<net::ByteChannel> channel) {
  auto comm =
      std::make_shared<ObjectCommunicator>(std::move(channel), protocol_);
  std::lock_guard lock(server_mutex_);
  if (shutting_down_) {
    comm->Close();
    return;
  }
  server_comms_.push_back(comm);
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kConnAccepted, 0,
                                       0, comm->PeerName());
  handler_threads_.emplace_back([this, comm] { HandlerLoop(comm); });
}

void Orb::Shutdown() {
  bool first_shutdown;
  {
    std::lock_guard lock(server_mutex_);
    first_shutdown = !shutting_down_;
    shutting_down_ = true;
    if (acceptor_ != nullptr) acceptor_->Close();
    for (auto& comm : server_comms_) comm->Close();
  }
  if (first_shutdown) {
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kShutdown);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Reactor: closes every adopted connection and reuseport listener,
  // joins the shard threads. Runs after the accept thread is gone (a
  // racing Adopt on a stopped reactor just closes the fd) and before the
  // worker pool drains — in-flight tasks hold their ReactorConn by
  // shared_ptr and their late QueueWrite degrades to a no-op.
  if (reactor_ != nullptr) reactor_->Stop();
  // Handler threads exit once their connection EOFs (we closed them all).
  std::vector<std::thread> handlers;
  {
    std::lock_guard lock(server_mutex_);
    handlers.swap(handler_threads_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  // Drain the dispatch pool after the reader threads are gone: queued
  // tasks run to completion (their reply Send fails harmlessly on the
  // closed connection), then the workers join.
  if (worker_pool_ != nullptr) worker_pool_->Stop();
  {
    std::lock_guard lock(client_mutex_);
    for (auto& [endpoint, comm] : connections_) comm->Close();
    connections_.clear();
    // Safe even if a straggler is mid-connect: it owns its lock via
    // shared_ptr and caches its connection into the cleared (empty) map.
    connect_locks_.clear();
    stubs_.clear();
  }
  // The scrape endpoint outlives the connections (a collector may read
  // the final counters mid-shutdown) but not the orb: stop it last.
  if (metrics_server_ != nullptr) metrics_server_->Stop();
  // Shutdown trace flush — the tail-retention story's exit hatch: the
  // spans the policy promoted survive the process as JSONL / Chrome
  // trace files. Once per orb, env vars as the no-recompile fallback.
  std::call_once(trace_flush_once_, [this] {
    if (options_.tracer == nullptr) return;
    std::string jsonl = options_.trace_jsonl_out;
    if (jsonl.empty()) {
      if (const char* env = std::getenv("HEIDI_TRACE_JSONL_OUT")) jsonl = env;
    }
    std::string chrome = options_.trace_chrome_out;
    if (chrome.empty()) {
      if (const char* env = std::getenv("HEIDI_TRACE_CHROME_OUT")) {
        chrome = env;
      }
    }
    if (!jsonl.empty()) {
      obs::WriteStringToFile(jsonl, options_.tracer->ExportJsonl());
    }
    if (!chrome.empty()) options_.tracer->WriteChromeTrace(chrome);
  });
}

std::string Orb::MyEndpoint() const {
  {
    std::lock_guard lock(server_mutex_);
    if (listen_port_ != 0) {
      return "tcp:" + options_.advertise_host + ":" +
             std::to_string(listen_port_);
    }
  }
  if (!options_.inproc_name.empty()) {
    return "inproc:" + options_.inproc_name + ":0";
  }
  throw HdError(
      "orb has no endpoint: call ListenTcp() or set OrbOptions::inproc_name");
}

bool Orb::IsLocalEndpoint(const ObjectRef& ref) const {
  if (ref.protocol == "inproc") {
    return !options_.inproc_name.empty() && ref.host == options_.inproc_name;
  }
  if (ref.protocol == "tcp") {
    std::lock_guard lock(server_mutex_);
    return listen_port_ != 0 && ref.port == listen_port_ &&
           ref.host == options_.advertise_host;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Object table

ObjectRef Orb::ExportObject(HdObject* impl, std::string_view repo_id) {
  if (impl == nullptr) throw HdError("cannot export a null object");
  std::string endpoint = MyEndpoint();  // throws if no transport is active
  std::lock_guard lock(table_mutex_);
  uint64_t id;
  auto existing = object_ids_.find(impl);
  if (existing != object_ids_.end()) {
    id = existing->second;
  } else {
    id = next_object_id_++;
    object_ids_[impl] = id;
    ObjectEntry entry;
    entry.impl = impl;
    entry.repo_id = std::string(repo_id);
    objects_[id] = std::move(entry);
  }
  ObjectRef ref;
  auto url = str::Split(endpoint, ':');
  ref.protocol = url[0];
  ref.host = url[1];
  ref.port = static_cast<uint16_t>(std::stoul(url[2]));
  ref.object_id = id;
  ref.repo_id = objects_[id].repo_id;
  return ref;
}

void Orb::UnexportObject(HdObject* impl) {
  std::lock_guard lock(table_mutex_);
  auto it = object_ids_.find(impl);
  if (it == object_ids_.end()) return;
  objects_.erase(it->second);
  object_ids_.erase(it);
}

size_t Orb::ExportedCount() const {
  std::lock_guard lock(table_mutex_);
  return objects_.size();
}

// ---------------------------------------------------------------------------
// Server: request handling

void Orb::HandlerLoop(std::shared_ptr<ObjectCommunicator> comm) {
  obs::Tracer* tracer = options_.tracer.get();
  // Half-close contract: requests already read must still be answered.
  // A peer may shutdown(SHUT_WR) right after its last pipelined request;
  // the clean-EOF path below then waits for this connection's in-flight
  // pool tasks before closing the channel, so their replies still reach
  // the (still-reading) peer.
  struct Pending {
    std::mutex m;
    std::condition_variable cv;
    int n = 0;
  };
  auto pending = std::make_shared<Pending>();
  bool clean_eof = false;
  while (true) {
    std::unique_ptr<wire::Call> request;
    int64_t t_read = tracer != nullptr ? obs::NowNs() : 0;
    try {
      request = comm->ReadCall();
    } catch (const HdError& e) {
      HD_LOG_DEBUG << "connection " << comm->PeerName() << ": " << e.what();
      break;
    }
    if (request == nullptr) {  // orderly close
      clean_eof = true;
      break;
    }
    if (request->Kind() != wire::CallKind::kRequest) {
      HD_LOG_WARN << "peer " << comm->PeerName()
                  << " sent a reply where a request was expected; closing";
      break;
    }
    // The server span's "read" stage spans the wire read, which on an
    // idle connection includes time spent waiting for the request to
    // arrive — interpretable on a timeline, so it is deliberately kept
    // off the always-on stage histograms.
    std::shared_ptr<obs::Span> span = StartServerSpan(*request, t_read);
    if (request->Oneway()) {
      // Inline on the reader thread: oneways from one connection execute
      // in submission order, whatever the pool's workers are doing.
      if (span != nullptr) span->AddStage("read", t_read);
      HandleRequest(*request, span.get());
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      if (span != nullptr) span->End();
      continue;
    }
    // Twoway: dispatch on the pool so calls pipelined on this connection
    // overlap. Send is thread-safe; replies go out in completion order
    // and the client's mux matches them by call id.
    std::shared_ptr<wire::Call> shared_request(std::move(request));
    int64_t t_queued = tracer != nullptr ? obs::NowNs() : 0;
    if (span != nullptr) span->AddStageInterval("read", t_read, t_queued);
    {
      std::lock_guard plock(pending->m);
      ++pending->n;
    }
    auto task = [this, comm, shared_request, span, t_queued, tracer,
                 pending] {
      if (tracer != nullptr) {
        // Queue wait: from Post() to a pool worker picking the task up
        // (zero-ish when dispatching inline on the reader thread).
        int64_t t_start = obs::NowNs();
        stage_server_queue_->Record(static_cast<uint64_t>(t_start - t_queued));
        if (span != nullptr) span->AddStageInterval("queue", t_queued, t_start);
      }
      std::unique_ptr<wire::Call> reply =
          HandleRequest(*shared_request, span.get());
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      int64_t t_reply = tracer != nullptr ? obs::NowNs() : 0;
      try {
        comm->Send(*reply);
      } catch (const HdError& e) {
        HD_LOG_DEBUG << "reply to " << comm->PeerName()
                     << " failed: " << e.what();
        if (span != nullptr) span->SetError(e.what());
      }
      if (tracer != nullptr) {
        int64_t t_done = obs::NowNs();
        stage_server_reply_->Record(static_cast<uint64_t>(t_done - t_reply));
        if (span != nullptr) {
          span->AddStageInterval("reply", t_reply, t_done);
          span->End(t_done);
        }
      }
      {
        std::lock_guard plock(pending->m);
        --pending->n;
      }
      pending->cv.notify_all();
    };
    if (worker_pool_ == nullptr || !worker_pool_->Post(task)) task();
  }
  if (clean_eof) {
    // Error paths skip the wait: the transport is dead, so queued
    // replies could not be delivered anyway (they run to completion on
    // the pool and their Send fails harmlessly).
    std::unique_lock plock(pending->m);
    pending->cv.wait(plock, [&] { return pending->n == 0; });
  }
  comm->Close();
  // Drop the orb's reference so the channel (and its descriptor) is
  // reclaimed once the last in-flight worker task releases its copy —
  // without this, a long-lived server accretes one dead comm per
  // connection it ever served.
  std::lock_guard lock(server_mutex_);
  server_comms_.erase(
      std::remove(server_comms_.begin(), server_comms_.end(), comm),
      server_comms_.end());
}

// The server span continues the inbound trace: same trace id, fresh span
// id, parented on the client's wire-propagated span. Created only when
// the client sampled the call — except under tail retention, where the
// client sent no context (it was not head-sampled) but the policy wants
// every dispatch judged at completion: the span then gets a local,
// unsampled root identity that never propagates.
std::shared_ptr<obs::Span> Orb::StartServerSpan(const wire::Call& request,
                                                int64_t t_read) {
  obs::Tracer* tracer = options_.tracer.get();
  if (tracer == nullptr) return nullptr;
  bool inbound_sampled = request.Trace().Valid() && request.Trace().sampled;
  if (!inbound_sampled && !tracer->RecordsAllCalls()) return nullptr;
  obs::TraceContext ctx;
  if (request.Trace().Valid()) {
    ctx = request.Trace();
    ctx.parent_span_id = ctx.span_id;
    ctx.span_id = obs::NewSpanId();
  } else {
    ctx = obs::NewRootContext(false);
  }
  return tracer->StartSpan(obs::SpanKind::kServer, request.Operation(), ctx,
                           t_read);
}

// Runs on a reactor shard's loop thread whenever bytes landed in the
// connection's inbound buffer (and once more after EOF). Drains every
// complete frame: oneways dispatch inline — preserving per-connection
// submission order, exactly like the legacy reader thread — and twoways
// go to the worker pool, pinning the connection so a teardown racing the
// reply degrades QueueWrite to a silent no-op. Dispatches are bracketed
// with Begin/EndDispatch so a half-closing peer still gets the replies
// to requests it already sent.
bool Orb::OnReactorData(net::ReactorConn& conn) {
  auto state = std::static_pointer_cast<ReactorConnState>(conn.UserState());
  if (state == nullptr) {
    state = std::make_shared<ReactorConnState>();
    state->decoder = protocol_->NewFrameDecoder();
    conn.UserState() = state;
  }
  obs::Tracer* tracer = options_.tracer.get();
  while (true) {
    std::unique_ptr<wire::Call> request;
    int64_t t_read = tracer != nullptr ? obs::NowNs() : 0;
    try {
      request = state->decoder->TryParseFrame(conn.Inbound());
    } catch (const HdError& e) {
      HD_LOG_DEBUG << "connection " << conn.PeerName() << ": " << e.what();
      return false;
    }
    if (request == nullptr) {
      if (conn.ReadClosed() && conn.Inbound().Available() > 0) {
        HD_LOG_DEBUG << "connection " << conn.PeerName()
                     << ": EOF inside a frame (" << conn.Inbound().Available()
                     << " bytes unparsed)";
      }
      return true;  // need more bytes
    }
    if (request->Kind() != wire::CallKind::kRequest) {
      HD_LOG_WARN << "peer " << conn.PeerName()
                  << " sent a reply where a request was expected; closing";
      return false;
    }
    std::shared_ptr<obs::Span> span = StartServerSpan(*request, t_read);
    if (request->Oneway()) {
      // Inline on the shard loop: oneways from one connection execute in
      // submission order, whatever the pool's workers are doing.
      if (span != nullptr) span->AddStage("read", t_read);
      HandleRequest(*request, span.get());
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      if (span != nullptr) span->End();
      continue;
    }
    // Twoway: dispatch on the pool so calls pipelined on this connection
    // overlap. Replies queue in completion order; the client's mux
    // matches them by call id.
    std::shared_ptr<wire::Call> shared_request(std::move(request));
    int64_t t_queued = tracer != nullptr ? obs::NowNs() : 0;
    if (span != nullptr) span->AddStageInterval("read", t_read, t_queued);
    conn.BeginDispatch();
    std::shared_ptr<net::ReactorConn> pinned = conn.shared_from_this();
    auto task = [this, pinned, shared_request, span, t_queued, tracer] {
      if (tracer != nullptr) {
        int64_t t_start = obs::NowNs();
        stage_server_queue_->Record(static_cast<uint64_t>(t_start - t_queued));
        if (span != nullptr) span->AddStageInterval("queue", t_queued, t_start);
      }
      std::unique_ptr<wire::Call> reply =
          HandleRequest(*shared_request, span.get());
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      int64_t t_reply = tracer != nullptr ? obs::NowNs() : 0;
      try {
        // Encode into a chain (sharing the reply's marshaled slabs by
        // refcount) and hand it to the connection's write queue — the
        // common case flushes right here on the worker thread with one
        // non-blocking sendmsg.
        bytes::BufferChain frame;
        protocol_->EncodeCall(frame, *reply);
        pinned->QueueWrite(std::move(frame));
      } catch (const HdError& e) {
        HD_LOG_DEBUG << "reply to " << pinned->PeerName()
                     << " failed: " << e.what();
        if (span != nullptr) span->SetError(e.what());
      }
      if (tracer != nullptr) {
        int64_t t_done = obs::NowNs();
        stage_server_reply_->Record(static_cast<uint64_t>(t_done - t_reply));
        if (span != nullptr) {
          span->AddStageInterval("reply", t_reply, t_done);
          span->End(t_done);
        }
      }
      pinned->EndDispatch();
    };
    if (worker_pool_ == nullptr || !worker_pool_->Post(task)) task();
  }
}

std::unique_ptr<wire::Call> Orb::HandleRequest(wire::Call& request,
                                               obs::Span* span) {
  obs::Tracer* tracer = options_.tracer.get();
  int64_t t_enter = tracer != nullptr ? obs::NowNs() : 0;
  int64_t t_exec = 0;
  // Nested invocations made by the implementation (or interceptors) on
  // this thread join the inbound trace as children of the server span —
  // or, when the call was not sampled, silently continue its trace id.
  // The local-only spans tail retention creates (valid ctx, sampled ==
  // false) must NOT become ambient: nothing about them may leak onto a
  // nested outbound call's wire.
  obs::TraceContext ambient = span != nullptr && request.Trace().Valid()
                                  ? span->Context()
                                  : request.Trace();
  obs::ScopedContext trace_scope(ambient);
  // Per-dispatch scratch arena, seeded from the request's retained frame
  // slab (HIOP) or pool-backed (text / owned decodes): unescape buffers,
  // view-retention copies, and reply staging bump-allocate from it
  // instead of the global heap. Stack-owned — detached before return.
  support::Arena arena(request.RetainedFrame());
  request.AttachArena(&arena);
  std::unique_ptr<wire::Call> reply = protocol_->NewCall();
  reply->SetKind(wire::CallKind::kReply);
  reply->SetCallId(request.CallId());
  reply->AttachArena(&arena);
  try {
    {
      std::lock_guard lock(interceptor_mutex_);
      // A throwing PreDispatch rejects the request (filter semantics).
      for (const auto& interceptor : server_interceptors_) {
        interceptor->PreDispatch(request);
      }
    }
    if (span != nullptr) span->AddStage("predispatch", t_enter);
    t_exec = tracer != nullptr ? obs::NowNs() : 0;
    ObjectRef target = ObjectRef::Parse(request.Target());
    HdSkeleton* skeleton = nullptr;
    std::unique_ptr<HdSkeleton> transient;
    {
      std::lock_guard lock(table_mutex_);
      auto it = objects_.find(target.object_id);
      if (it == objects_.end()) {
        throw DispatchError("unknown object id " +
                            std::to_string(target.object_id));
      }
      ObjectEntry& entry = it->second;
      if (entry.skeleton == nullptr) {
        const InterfaceInfo* info =
            InterfaceRegistry::Instance().Find(entry.repo_id);
        if (info == nullptr || !info->make_skel) {
          throw DispatchError("no skeleton factory registered for '" +
                              entry.repo_id + "'");
        }
        std::unique_ptr<HdSkeleton> skel = info->make_skel(*this, entry.impl);
        skeletons_created_.fetch_add(1, std::memory_order_relaxed);
        if (options_.cache_skeletons) {
          entry.skeleton = std::move(skel);
          skeleton = entry.skeleton.get();
        } else {
          transient = std::move(skel);
          skeleton = transient.get();
        }
      } else {
        skeleton = entry.skeleton.get();
      }
    }
    // Dispatch outside the table lock so implementations can export
    // objects / issue nested calls. Unexporting an object while a call on
    // it is in flight is undefined, as it was in the original system.
    if (!skeleton->Dispatch(request.Operation(), request, *reply)) {
      throw DispatchError("interface '" + target.repo_id +
                          "' has no operation '" + request.Operation() + "'");
    }
    reply->SetStatus(wire::CallStatus::kOk);
  } catch (const UserExceptionPending& e) {
    // The skeleton already marshaled the exception fields into the reply
    // payload; keep it and tag the reply with the exception's repo id.
    reply->SetStatus(wire::CallStatus::kUserException);
    reply->SetErrorText(e.RepoId());
  } catch (const DispatchError& e) {
    reply = protocol_->NewCall();
    reply->SetKind(wire::CallKind::kReply);
    reply->SetCallId(request.CallId());
    reply->SetStatus(wire::CallStatus::kSystemError);
    reply->SetErrorText(e.what());
    reply->AttachArena(&arena);
  } catch (const RefError& e) {
    reply = protocol_->NewCall();
    reply->SetKind(wire::CallKind::kReply);
    reply->SetCallId(request.CallId());
    reply->SetStatus(wire::CallStatus::kSystemError);
    reply->SetErrorText(e.what());
    reply->AttachArena(&arena);
  } catch (const std::exception& e) {
    // Implementation-raised: relayed as a user exception.
    reply = protocol_->NewCall();
    reply->SetKind(wire::CallKind::kReply);
    reply->SetCallId(request.CallId());
    reply->SetStatus(wire::CallStatus::kUserException);
    reply->SetErrorText(e.what());
    reply->AttachArena(&arena);
  }
  {
    std::lock_guard lock(interceptor_mutex_);
    for (auto it = server_interceptors_.rbegin();
         it != server_interceptors_.rend(); ++it) {
      try {
        (*it)->PostDispatch(request, *reply);
      } catch (const std::exception& e) {
        HD_LOG_WARN << "server interceptor PostDispatch threw: " << e.what();
      }
    }
  }
  // The reply relays the trace context so the caller's wire peer can
  // correlate frames; the span id is the server span's when one exists.
  if (request.Trace().Valid()) {
    reply->SetTrace(span != nullptr ? span->Context() : request.Trace());
  }
  if (tracer != nullptr) {
    int64_t t_done = obs::NowNs();
    if (t_exec == 0) t_exec = t_enter;  // PreDispatch rejected the request
    stage_server_exec_->Record(static_cast<uint64_t>(t_done - t_exec));
    int64_t served = t_done - t_enter;
    obs::LatencyHistogram* op_history =
        tracer->Metrics().Histogram("srv." + request.Operation());
    op_history->Record(static_cast<uint64_t>(served > 0 ? served : 0));
    ctr_requests_->Add(1);
    bool failed = reply->Status() != wire::CallStatus::kOk;
    if (failed) ctr_request_errors_->Add(1);
    if (span != nullptr) {
      span->AddStageInterval("exec", t_exec, t_done);
      if (failed) span->SetError(reply->ErrorText());
      span->SetHistoryHint(op_history);
    }
  }
  // End of dispatch scope: the stack arena dies here, so both calls must
  // drop their borrowed pointer, and every view handed out during the
  // dispatch is dead. In debug builds the request's view storage is
  // poisoned so an escaped view fails loudly (the staged reply bytes in
  // the same slab are outside the poisoned window and survive the send).
  request.AttachArena(nullptr);
  reply->AttachArena(nullptr);
#ifndef NDEBUG
  request.InvalidateViews();
#endif
  return reply;
}

void Orb::AddClientInterceptor(
    std::shared_ptr<ClientInterceptor> interceptor) {
  if (interceptor == nullptr) return;
  std::lock_guard lock(interceptor_mutex_);
  client_interceptors_.push_back(std::move(interceptor));
}

void Orb::AddServerInterceptor(
    std::shared_ptr<ServerInterceptor> interceptor) {
  if (interceptor == nullptr) return;
  std::lock_guard lock(interceptor_mutex_);
  server_interceptors_.push_back(std::move(interceptor));
}

void Orb::RunPreInvoke(const ObjectRef& target, const wire::Call& request) {
  std::lock_guard lock(interceptor_mutex_);
  for (const auto& interceptor : client_interceptors_) {
    interceptor->PreInvoke(target, request);
  }
}

void Orb::RunPostInvoke(const ObjectRef& target, const wire::Call& reply) {
  std::lock_guard lock(interceptor_mutex_);
  for (auto it = client_interceptors_.rbegin();
       it != client_interceptors_.rend(); ++it) {
    try {
      (*it)->PostInvoke(target, reply);
    } catch (const std::exception& e) {
      HD_LOG_WARN << "client interceptor PostInvoke threw: " << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// Client: connections and invocation

std::unique_ptr<net::ByteChannel> Orb::ConnectTo(const ObjectRef& ref) {
  std::unique_ptr<net::ByteChannel> channel;
  if (ref.protocol == "tcp") {
    net::TcpTuning tuning;
    tuning.nodelay = options_.tcp_nodelay;
    tuning.rcvbuf = options_.tcp_rcvbuf;
    tuning.sndbuf = options_.tcp_sndbuf;
    try {
      // The fault-injection connect (a test path) keeps default tuning.
      channel = options_.fault_injector != nullptr
                    ? net::FaultyTcpConnect(ref.host, ref.port,
                                            options_.fault_injector)
                    : net::TcpConnect(ref.host, ref.port, /*timeout_ms=*/-1,
                                      tuning);
    } catch (const TimeoutError&) {
      throw;
    } catch (const ConnectError&) {
      throw;
    } catch (const NetError& e) {
      // Nothing was transmitted: a connect failure is determinate, so
      // the retry policy may resend any operation.
      throw ConnectError(e.what());
    }
  } else if (ref.protocol == "inproc") {
    Orb* target = InprocFind(ref.host);
    if (target == nullptr) {
      throw ConnectError("no in-process orb named '" + ref.host + "'");
    }
    if (options_.fault_injector != nullptr) {
      options_.fault_injector->OnConnect();  // may refuse (ConnectError)
    }
    net::ChannelPair pair = net::CreateInMemoryPair();
    target->ServeChannel(std::move(pair.b));
    channel = net::WrapFaulty(std::move(pair.a), options_.fault_injector);
  } else {
    throw NetError("unknown transport protocol '" + ref.protocol + "'");
  }
  connections_opened_.fetch_add(1, std::memory_order_relaxed);
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kConnOpened, 0, 0,
                                       ref.Endpoint());
  return channel;
}

std::shared_ptr<ObjectCommunicator> Orb::GetCommunicator(
    const ObjectRef& ref) {
  if (!options_.cache_connections) {
    return std::make_shared<ObjectCommunicator>(ConnectTo(ref), protocol_,
                                                &mux_counters_);
  }
  std::string endpoint = ref.Endpoint();
  // Establishment is serialized per endpoint: racing callers would each
  // open (and then discard all but one of) their own socket, which wastes
  // connects and makes `connections_opened`/`reconnects` nondeterministic.
  // The per-endpoint lock lets exactly one thread connect while the rest
  // park and pick up the cached entry on recheck; connects to *different*
  // endpoints still proceed concurrently, and client_mutex_ is never held
  // across a (potentially slow) connect.
  std::shared_ptr<std::mutex> connect_lock;
  {
    std::lock_guard lock(client_mutex_);
    auto it = connections_.find(endpoint);
    if (it != connections_.end() && !it->second->Broken()) return it->second;
    auto& slot = connect_locks_[endpoint];
    if (slot == nullptr) slot = std::make_shared<std::mutex>();
    connect_lock = slot;
  }
  std::lock_guard establishing(*connect_lock);
  {
    // Recheck: the thread that held the connect lock before us has
    // usually cached a fresh connection by now.
    std::lock_guard lock(client_mutex_);
    auto it = connections_.find(endpoint);
    if (it != connections_.end()) {
      // A broken connection (transport error already failed its pending
      // calls) is replaced eagerly instead of failing one more call.
      if (!it->second->Broken()) return it->second;
      it->second->Close();
      connections_.erase(it);
      pending_reconnect_.insert(endpoint);
    }
  }
  auto comm = std::make_shared<ObjectCommunicator>(ConnectTo(ref), protocol_,
                                                   &mux_counters_);
  std::lock_guard lock(client_mutex_);
  if (pending_reconnect_.erase(endpoint) > 0) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kReconnect, 0,
                                         0, endpoint);
  }
  connections_[endpoint] = comm;  // sole owner of the connect lock: no race
  return comm;
}

void Orb::DropCachedCommunicator(const std::string& endpoint) {
  std::lock_guard lock(client_mutex_);
  auto it = connections_.find(endpoint);
  if (it != connections_.end()) {
    it->second->Close();
    connections_.erase(it);
    // The entry died of a transport error; the next connect to this
    // endpoint is a reconnect.
    pending_reconnect_.insert(endpoint);
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kConnBroken, 0,
                                         0, endpoint);
  }
}

std::unique_ptr<wire::Call> Orb::NewRequest(const ObjectRef& target,
                                            std::string_view op,
                                            bool oneway) {
  std::unique_ptr<wire::Call> call = protocol_->NewCall();
  call->SetKind(wire::CallKind::kRequest);
  call->SetCallId(next_call_id_.fetch_add(1, std::memory_order_relaxed));
  // Interned header fields: the target string is shared with the ref
  // (stubs intern at construction) and the operation name with every
  // other call of the same operation — no per-request copies of either.
  call->SetTarget(target.ToStringShared());
  call->SetOperation(InternedOperation(op));
  call->SetOneway(oneway);
  if (options_.tracer != nullptr) {
    // Trace ids are stamped at request birth (Invoke only sees a const
    // Call). A request created while a traced dispatch is executing on
    // this thread joins the inbound trace as a child — that is how
    // nested invocations end up on one end-to-end timeline; otherwise a
    // fresh root is started only when the tracer samples this call. A
    // sampled-out call gets NO context at all: nothing would ever read
    // it, and keeping it off the wire is what holds the sampled-out
    // overhead inside the <5% budget (the text protocol in particular
    // pays a whole formatted header line per propagated context). The
    // always-on histograms never depend on a context being present.
    const obs::TraceContext& ambient = obs::CurrentContext();
    if (ambient.Valid()) {
      call->SetTrace(obs::ChildContext(ambient));
    } else if (options_.tracer->SampleNext()) {
      call->SetTrace(obs::NewRootContext(true));
    }
    call->SetBornNs(obs::NowNs());
  }
  return call;
}

bool Orb::PrepareRetry(const wire::Call& request, bool indeterminate,
                       int attempt, bool has_deadline,
                       Clock::time_point deadline) {
  const RetryPolicy& policy = options_.retry;
  if (policy.max_attempts <= 1) return false;  // retrying not configured
  auto give_up = [this, &request, attempt] {
    retry_give_ups_.fetch_add(1, std::memory_order_relaxed);
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kRetryGiveUp,
                                         static_cast<uint64_t>(attempt), 0,
                                         request.Operation());
    return false;
  };
  if (attempt >= policy.max_attempts) return give_up();
  // The idempotency gate: after an indeterminate failure the server may
  // already have executed the request, so only operations that tolerate
  // re-execution are resent.
  if (indeterminate && !request.Oneway() && !request.Idempotent() &&
      !policy.retry_indeterminate) {
    return give_up();
  }
  if (policy.retry_budget >= 0) {
    if (retry_budget_left_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      retry_budget_left_.fetch_add(1, std::memory_order_relaxed);
      return give_up();
    }
  }
  int delay_ms = BackoffDelayMs(policy, attempt);
  if (has_deadline && delay_ms >= RemainingMs(true, deadline)) {
    // Backoff respects the call's deadline: if sleeping would overrun
    // it, the invocation gives up now instead of timing out later.
    return give_up();
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  retries_.fetch_add(1, std::memory_order_relaxed);
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kRetry,
                                       static_cast<uint64_t>(attempt),
                                       static_cast<uint64_t>(delay_ms),
                                       request.Operation());
  return true;
}

// ---------------------------------------------------------------------------
// Client-side observability plumbing. All three helpers are cheap no-ops
// (one branch) when no tracer is attached.

InvokeTrace Orb::BeginInvokeTrace(const wire::Call& request) {
  InvokeTrace trace;
  if (options_.tracer == nullptr) return trace;
  trace.tracer = options_.tracer.get();
  trace.start_ns = obs::NowNs();
  trace.operation = request.Operation();
  const obs::TraceContext& ctx = request.Trace();
  bool sampled = ctx.Valid() && ctx.sampled;
  if (sampled || trace.tracer->RecordsAllCalls()) {
    // Head-sampled calls get the wire context they were stamped with; a
    // tail-retention call (no wire context) gets a local, unsampled root
    // identity — the span exists so the policy can judge it at finish,
    // but nothing about it ever reaches the wire.
    trace.span = trace.tracer->StartSpan(
        obs::SpanKind::kClient, request.Operation(),
        ctx.Valid() ? ctx : obs::NewRootContext(false), trace.start_ns);
    // Backdate the span to the request's creation so the marshal stage
    // (NewRequest -> Invoke: the stub's Put* calls) is on the timeline.
    if (request.BornNs() != 0 && request.BornNs() < trace.start_ns) {
      trace.span->SetStart(request.BornNs());
      trace.span->AddStageInterval("marshal", request.BornNs(),
                                   trace.start_ns);
    }
    if (options_.fault_injector != nullptr) {
      trace.faults_before = options_.fault_injector->Stats().Total();
    }
  }
  return trace;
}

void Orb::RecordAttemptSpan(InvokeTrace& trace, int attempt,
                            int64_t attempt_start_ns, const char* error) {
  // Attempt sub-spans exist only once the attempt structure is
  // interesting — a failure, or a success that needed retries — so the
  // common single-attempt timeline stays one span deep.
  if (trace.span == nullptr) return;
  if (error == nullptr && attempt <= 1) return;
  obs::TraceContext ctx = obs::ChildContext(trace.span->Context());
  auto sub = trace.tracer->StartSpan(obs::SpanKind::kAttempt,
                                     trace.operation, ctx);
  sub->SetStart(attempt_start_ns);
  sub->AddStageInterval(AttemptStageName(attempt), attempt_start_ns,
                        obs::NowNs());
  if (error != nullptr) sub->SetError(error);
  sub->End();
}

void Orb::FinishInvokeTrace(InvokeTrace& trace, const char* error) {
  if (trace.tracer == nullptr) return;
  int64_t t_done = obs::NowNs();
  int64_t elapsed = t_done - trace.start_ns;
  obs::LatencyHistogram* op_history =
      trace.tracer->Metrics().Histogram("op." + trace.operation);
  op_history->Record(static_cast<uint64_t>(elapsed > 0 ? elapsed : 0));
  ctr_calls_->Add(1);
  if (error != nullptr) ctr_call_errors_->Add(1);
  if (trace.span != nullptr) {
    trace.span->SetHistoryHint(op_history);
    if (error != nullptr) trace.span->SetError(error);
    // An injected fault fired somewhere in this call's window — flag the
    // span so tail retention promotes it even if a retry masked the
    // fault into a clean result. (The injector is shared, so a
    // concurrent call's fault can tag a neighbor; retention errs on
    // keeping too much, never too little.)
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->Stats().Total() > trace.faults_before) {
      trace.span->SetFlag(obs::kSpanFlagFaulted);
    }
    trace.span->End(t_done);
    trace.span.reset();
  }
  trace.tracer = nullptr;  // finished: the handle/caller must not re-run
}

std::unique_ptr<wire::Call> Orb::Invoke(const ObjectRef& target,
                                        const wire::Call& request,
                                        int timeout_ms) {
  int effective = timeout_ms < 0 ? options_.call_timeout_ms : timeout_ms;
  bool has_deadline = effective >= 0;
  Clock::time_point deadline =
      has_deadline ? Clock::now() + std::chrono::milliseconds(effective)
                   : Clock::time_point();
  InvokeTrace trace = BeginInvokeTrace(request);
  int attempt = 0;
  try {
    for (;;) {
      ++attempt;
      // Attempt 1 starts at the trace start; a fresh timestamp is only
      // needed for retries (attempt sub-spans never exist otherwise).
      int64_t attempt_start = attempt > 1 && trace.span != nullptr
                                  ? obs::NowNs()
                                  : trace.start_ns;
      std::exception_ptr failure;
      bool indeterminate = false;
      try {
        ReplyHandle handle = InvokeAsyncOnce(
            target, request, RemainingMs(has_deadline, deadline),
            trace.span.get());
        std::unique_ptr<wire::Call> reply = handle.Get();
        RecordAttemptSpan(trace, attempt, attempt_start, nullptr);
        FinishInvokeTrace(trace, nullptr);
        return reply;
      } catch (const TimeoutError&) {
        if (trace.span != nullptr) {
          trace.span->SetFlag(obs::kSpanFlagTimedOut);
        }
        throw;  // the call's time is spent; a retry could not finish either
      } catch (const ConnectError& e) {
        failure = std::current_exception();  // determinate: never sent
        RecordAttemptSpan(trace, attempt, attempt_start, e.what());
      } catch (const NetError& e) {
        failure = std::current_exception();
        indeterminate = true;  // bytes may have reached the server
        RecordAttemptSpan(trace, attempt, attempt_start, e.what());
      }
      if (!PrepareRetry(request, indeterminate, attempt, has_deadline,
                        deadline)) {
        std::rethrow_exception(failure);
      }
      if (trace.span != nullptr) trace.span->SetFlag(obs::kSpanFlagRetried);
    }
  } catch (const std::exception& e) {
    // Covers the retry exhaustion above plus errors that bypass the
    // retry loop entirely (deadline expiry, remote system errors / user
    // exceptions out of Get): the client span always closes, tagged.
    FinishInvokeTrace(trace, e.what());
    throw;
  }
}

ReplyHandle Orb::InvokeAsync(const ObjectRef& target,
                             const wire::Call& request, int timeout_ms) {
  int effective = timeout_ms < 0 ? options_.call_timeout_ms : timeout_ms;
  bool has_deadline = effective >= 0;
  Clock::time_point deadline =
      has_deadline ? Clock::now() + std::chrono::milliseconds(effective)
                   : Clock::time_point();
  InvokeTrace trace = BeginInvokeTrace(request);
  int attempt = 0;
  for (;;) {
    ++attempt;
    int64_t attempt_start = attempt > 1 && trace.span != nullptr
                                ? obs::NowNs()
                                : trace.start_ns;
    std::exception_ptr failure;
    bool indeterminate = false;
    try {
      ReplyHandle handle = InvokeAsyncOnce(
          target, request, RemainingMs(has_deadline, deadline),
          trace.span.get());
      // The handle finishes the trace when Get() resolves (or never, if
      // the caller abandons it — the span's destructor then closes it
      // tagged "abandoned", which is the truth).
      handle.trace_ = std::move(trace);
      handle.borrowed_span_ = nullptr;
      return handle;
    } catch (const TimeoutError& e) {
      if (trace.span != nullptr) trace.span->SetFlag(obs::kSpanFlagTimedOut);
      FinishInvokeTrace(trace, e.what());
      throw;
    } catch (const ConnectError& e) {
      failure = std::current_exception();
      RecordAttemptSpan(trace, attempt, attempt_start, e.what());
    } catch (const NetError& e) {
      failure = std::current_exception();
      indeterminate = true;
      RecordAttemptSpan(trace, attempt, attempt_start, e.what());
    }
    if (!PrepareRetry(request, indeterminate, attempt, has_deadline,
                      deadline)) {
      try {
        std::rethrow_exception(failure);
      } catch (const std::exception& e) {
        FinishInvokeTrace(trace, e.what());
        throw;
      }
    }
    if (trace.span != nullptr) trace.span->SetFlag(obs::kSpanFlagRetried);
  }
}

ReplyHandle Orb::InvokeAsyncOnce(const ObjectRef& target,
                                 const wire::Call& request, int timeout_ms,
                                 obs::Span* span) {
  obs::Tracer* tracer = options_.tracer.get();
  RunPreInvoke(target, request);
  int64_t t_acquire = tracer != nullptr ? obs::NowNs() : 0;
  std::shared_ptr<ObjectCommunicator> comm = GetCommunicator(target);
  int64_t t_send = tracer != nullptr ? obs::NowNs() : 0;
  calls_sent_.fetch_add(1, std::memory_order_relaxed);
  ReplyHandle handle;
  handle.orb_ = this;
  handle.target_ = target;
  handle.comm_ = std::move(comm);
  handle.call_id_ = request.CallId();
  handle.timeout_ms_ = timeout_ms < 0 ? options_.call_timeout_ms : timeout_ms;
  handle.borrowed_span_ = span;
  try {
    handle.future_ = handle.comm_->SubmitCall(request);
  } catch (const NetError&) {
    DropCachedCommunicator(target.Endpoint());
    throw;
  }
  if (tracer != nullptr) {
    int64_t t_done = obs::NowNs();
    stage_client_acquire_->Record(static_cast<uint64_t>(t_send - t_acquire));
    stage_client_send_->Record(static_cast<uint64_t>(t_done - t_send));
    if (span != nullptr) {
      span->AddStageInterval("acquire", t_acquire, t_send);
      span->AddStageInterval("send", t_send, t_done);
    }
  }
  return handle;
}

std::unique_ptr<wire::Call> ReplyHandle::Get() {
  // Sync path: the span is borrowed from Invoke's InvokeTrace (which
  // also finishes it). Async path: this handle owns the whole trace and
  // finishes it here.
  obs::Span* span =
      trace_.span != nullptr ? trace_.span.get() : borrowed_span_;
  obs::Tracer* tracer = orb_->options_.tracer.get();
  try {
    std::unique_ptr<wire::Call> reply;
    int64_t t_wait = tracer != nullptr ? obs::NowNs() : 0;
    try {
      reply = comm_->AwaitReply(call_id_, future_, timeout_ms_);
    } catch (const TimeoutError&) {
      // The deadline expired but the connection is healthy: keep it cached
      // (the late reply is drained by the demux thread), fail only this
      // call.
      if (span != nullptr) span->SetFlag(obs::kSpanFlagTimedOut);
      throw;
    } catch (const NetError&) {
      orb_->DropCachedCommunicator(target_.Endpoint());
      throw;
    }
    int64_t t_unmarshal = tracer != nullptr ? obs::NowNs() : 0;
    if (!orb_->options_.cache_connections) comm_->Close();
    orb_->RunPostInvoke(target_, *reply);
    std::unique_ptr<wire::Call> result =
        orb_->CheckReplyStatus(target_, std::move(reply));
    if (tracer != nullptr) {
      // "wait" covers the round trip including the demux thread's frame
      // decode; "unmarshal" is the local tail (interceptors + status
      // checks — the stub's Get* calls read an already-decoded buffer).
      int64_t t_done = obs::NowNs();
      orb_->stage_client_wait_->Record(
          static_cast<uint64_t>(t_unmarshal - t_wait));
      orb_->stage_client_unmarshal_->Record(
          static_cast<uint64_t>(t_done - t_unmarshal));
      if (span != nullptr) {
        span->AddStageInterval("wait", t_wait, t_unmarshal);
        span->AddStageInterval("unmarshal", t_unmarshal, t_done);
      }
    }
    orb_->FinishInvokeTrace(trace_, nullptr);  // no-op for the sync path
    return result;
  } catch (const std::exception& e) {
    orb_->FinishInvokeTrace(trace_, e.what());
    throw;
  }
}

std::unique_ptr<wire::Call> Orb::CheckReplyStatus(
    const ObjectRef& target, std::unique_ptr<wire::Call> reply) {
  switch (reply->Status()) {
    case wire::CallStatus::kOk:
      return reply;
    case wire::CallStatus::kSystemError:
      throw DispatchError("remote system error from " + target.Endpoint() +
                          ": " + reply->ErrorText());
    case wire::CallStatus::kTimeout:
      // A deadline expired downstream (e.g. relayed by an intermediary);
      // surface it like a locally-expired deadline.
      throw TimeoutError("remote timeout from " + target.Endpoint() + ": " +
                         reply->ErrorText());
    case wire::CallStatus::kUserException: {
      // Typed raises-exceptions: the error text is a repository id with a
      // registered thrower, which unmarshals the reply payload and throws
      // the generated exception class. Anything else is a plain relay.
      const ExceptionThrower* thrower =
          ExceptionRegistry::Instance().Find(reply->ErrorText());
      if (thrower != nullptr) {
        (*thrower)(*reply);
        throw RemoteError("exception thrower for '" + reply->ErrorText() +
                          "' returned instead of throwing");
      }
      throw RemoteError(reply->ErrorText());
    }
  }
  throw MarshalError("corrupt reply status");
}

void Orb::InvokeOneway(const ObjectRef& target, const wire::Call& request) {
  InvokeTrace trace = BeginInvokeTrace(request);
  int attempt = 0;
  for (;;) {
    ++attempt;
    int64_t attempt_start = attempt > 1 && trace.span != nullptr
                                ? obs::NowNs()
                                : trace.start_ns;
    std::exception_ptr failure;
    bool indeterminate = false;
    try {
      RunPreInvoke(target, request);
      int64_t t_acquire = trace.tracer != nullptr ? obs::NowNs() : 0;
      std::shared_ptr<ObjectCommunicator> comm = GetCommunicator(target);
      int64_t t_send = trace.tracer != nullptr ? obs::NowNs() : 0;
      calls_sent_.fetch_add(1, std::memory_order_relaxed);
      try {
        comm->Send(request);
      } catch (const NetError&) {
        DropCachedCommunicator(target.Endpoint());
        throw;
      }
      if (!options_.cache_connections) comm->Close();
      if (trace.tracer != nullptr) {
        int64_t t_done = obs::NowNs();
        stage_client_acquire_->Record(
            static_cast<uint64_t>(t_send - t_acquire));
        stage_client_send_->Record(static_cast<uint64_t>(t_done - t_send));
        if (trace.span != nullptr) {
          trace.span->AddStageInterval("acquire", t_acquire, t_send);
          trace.span->AddStageInterval("send", t_send, t_done);
        }
        RecordAttemptSpan(trace, attempt, attempt_start, nullptr);
        FinishInvokeTrace(trace, nullptr);
      }
      return;
    } catch (const TimeoutError& e) {
      if (trace.span != nullptr) trace.span->SetFlag(obs::kSpanFlagTimedOut);
      FinishInvokeTrace(trace, e.what());
      throw;
    } catch (const ConnectError& e) {
      failure = std::current_exception();
      RecordAttemptSpan(trace, attempt, attempt_start, e.what());
    } catch (const NetError& e) {
      failure = std::current_exception();
      indeterminate = true;
      RecordAttemptSpan(trace, attempt, attempt_start, e.what());
    }
    // A oneway request passes the idempotency gate either way:
    // fire-and-forget semantics accept a possible duplicate over a
    // silent loss.
    if (!PrepareRetry(request, indeterminate, attempt,
                      /*has_deadline=*/false, Clock::time_point())) {
      try {
        std::rethrow_exception(failure);
      } catch (const std::exception& e) {
        FinishInvokeTrace(trace, e.what());
        throw;
      }
    }
    if (trace.span != nullptr) trace.span->SetFlag(obs::kSpanFlagRetried);
  }
}

// ---------------------------------------------------------------------------
// Stubs

std::shared_ptr<HdStub> Orb::Resolve(std::string_view ref_string) {
  return Resolve(ObjectRef::Parse(ref_string));
}

std::shared_ptr<HdStub> Orb::Resolve(const ObjectRef& ref) {
  if (ref.IsNil()) throw RefError("cannot resolve the nil reference");
  std::string key = ref.ToString();
  if (options_.cache_stubs) {
    std::lock_guard lock(client_mutex_);
    auto it = stubs_.find(key);
    if (it != stubs_.end()) return it->second;
  }
  const InterfaceInfo* info = InterfaceRegistry::Instance().Find(ref.repo_id);
  if (info == nullptr || !info->make_stub) {
    throw RefError("no stub factory registered for '" + ref.repo_id + "'");
  }
  std::shared_ptr<HdStub> stub = info->make_stub(*this, ref);
  stubs_created_.fetch_add(1, std::memory_order_relaxed);
  if (options_.cache_stubs) {
    std::lock_guard lock(client_mutex_);
    auto [it, inserted] = stubs_.emplace(key, stub);
    return it->second;
  }
  return stub;
}

// ---------------------------------------------------------------------------
// Object parameter passing

void Orb::PutObject(wire::Call& call, HdObject* obj, std::string_view repo_id,
                    bool incopy) {
  if (obj == nullptr) {
    call.PutString("N");
    return;
  }
  if (incopy && obj->IsA(wire::HdSerializable::kRepoId)) {
    const auto* serializable = dynamic_cast<const wire::HdSerializable*>(obj);
    if (serializable != nullptr) {
      call.PutString("V");
      call.PutString(obj->DynamicType().RepoId());
      call.Begin("val");
      serializable->MarshalState(call);
      call.End();
      return;
    }
  }
  // Pass by reference. If the object is already a stub for a remote
  // object, relay its reference instead of re-exporting the stub.
  if (auto* stub = dynamic_cast<HdStub*>(obj)) {
    call.PutString("R");
    call.PutString(stub->Ref().ToString());
    return;
  }
  // Prefer the most-derived type when a factory for it exists, so the
  // receiving side builds the most capable stub.
  std::string dynamic_id = obj->DynamicType().RepoId();
  std::string_view export_id =
      InterfaceRegistry::Instance().Find(dynamic_id) != nullptr
          ? std::string_view(dynamic_id)
          : repo_id;
  ObjectRef ref = ExportObject(obj, export_id);
  call.PutString("R");
  call.PutString(ref.ToString());
}

std::shared_ptr<HdObject> Orb::GetObject(wire::Call& call) {
  std::string tag = call.GetString();
  if (tag == "N") return nullptr;
  if (tag == "V") {
    std::string repo_id = call.GetString();
    const InterfaceInfo* info = InterfaceRegistry::Instance().Find(repo_id);
    if (info == nullptr || !info->make_value) {
      throw MarshalError("no pass-by-value factory registered for '" +
                         repo_id + "'");
    }
    std::shared_ptr<HdObject> obj = info->make_value();
    auto* serializable = dynamic_cast<wire::HdSerializable*>(obj.get());
    if (serializable == nullptr) {
      throw MarshalError("value factory for '" + repo_id +
                         "' produced a non-serializable object");
    }
    call.Begin("val");
    serializable->UnmarshalState(call);
    call.End();
    return obj;
  }
  if (tag == "R") {
    std::string ref_string = call.GetString();
    ObjectRef ref = ObjectRef::Parse(ref_string);
    if (ref.IsNil()) return nullptr;
    if (IsLocalEndpoint(ref)) {
      std::lock_guard lock(table_mutex_);
      auto it = objects_.find(ref.object_id);
      if (it != objects_.end()) {
        // Local shortcut: hand back the implementation itself. Aliasing
        // shared_ptr — the object table (application) owns the object.
        return std::shared_ptr<HdObject>(std::shared_ptr<void>(),
                                         it->second.impl);
      }
      // Reference to this orb but unknown id: the object was unexported.
      throw RefError("stale local reference " + ref_string);
    }
    return Resolve(ref);
  }
  throw MarshalError("malformed object parameter tag '" + tag + "'");
}

OrbStats Orb::Stats() const {
  OrbStats stats;
  stats.connections_opened =
      connections_opened_.load(std::memory_order_relaxed);
  stats.calls_sent = calls_sent_.load(std::memory_order_relaxed);
  stats.requests_served = requests_served_.load(std::memory_order_relaxed);
  stats.skeletons_created =
      skeletons_created_.load(std::memory_order_relaxed);
  stats.stubs_created = stubs_created_.load(std::memory_order_relaxed);
  stats.inflight_highwater =
      mux_counters_.inflight_highwater.load(std::memory_order_relaxed);
  stats.calls_timed_out =
      mux_counters_.timeouts.load(std::memory_order_relaxed);
  stats.mux_wakeups = mux_counters_.wakeups.load(std::memory_order_relaxed);
  stats.stale_replies_dropped =
      mux_counters_.stale_replies.load(std::memory_order_relaxed);
  stats.connections_broken =
      mux_counters_.connections_broken.load(std::memory_order_relaxed);
  stats.reconnects = reconnects_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.retry_give_ups = retry_give_ups_.load(std::memory_order_relaxed);
  if (options_.fault_injector != nullptr) {
    stats.faults_injected = options_.fault_injector->Stats().Total();
  }
  if (options_.tracer != nullptr) {
    stats.spans_recorded = options_.tracer->Ring().Recorded();
    stats.spans_dropped = options_.tracer->Ring().Dropped();
  }
  if (worker_pool_ != nullptr) {
    stats.dispatch_queue_highwater = worker_pool_->GetStats().queue_highwater;
  }
  bytes::IoBufPool::Stats pool = bytes::IoBufPool::Global().GetStats();
  stats.iobuf_pool_hits = pool.hits;
  stats.iobuf_pool_misses = pool.misses;
  stats.iobuf_bytes_retained = pool.outstanding_bytes;
  {
    std::lock_guard lock(server_mutex_);
    if (reactor_ != nullptr) {
      net::ReactorStats reactor = reactor_->Stats();
      stats.reactor_connections = reactor_->ConnectionCount();
      stats.reactor_epoll_wakeups = reactor.epoll_wakeups;
      stats.reactor_eventfd_wakeups = reactor.eventfd_wakeups;
      stats.reactor_backpressure_suspends = reactor.backpressure_suspends;
      stats.reactor_backpressure_resumes = reactor.backpressure_resumes;
      stats.reactor_loop_stalls = reactor.loop_stalls;
      stats.reactor_shard_connections = reactor_->ConnectionsPerShard();
    }
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Scrape endpoint plumbing

std::string Orb::DumpFlightRecorder() const {
  return obs::FlightRecorder::Global().DumpJsonl();
}

uint16_t Orb::MetricsPort() const {
  return metrics_server_ != nullptr ? metrics_server_->Port() : 0;
}

obs::MetricsRegistry* Orb::ScrapeRegistry() const {
  if (options_.tracer != nullptr) return &options_.tracer->Metrics();
  return own_metrics_.get();
}

void Orb::SyncStatsToMetrics() const {
  obs::MetricsRegistry* metrics = ScrapeRegistry();
  if (metrics == nullptr) return;
  // Counters: every OrbStats field is mirrored under a stable orb.*
  // name. Store (not Add) — OrbStats is the source of truth and already
  // monotonic; the scrape just snapshots it.
  OrbStats stats = Stats();
  metrics->GetCounter("orb.connections_opened")
      ->Store(stats.connections_opened);
  metrics->GetCounter("orb.calls_sent")->Store(stats.calls_sent);
  metrics->GetCounter("orb.requests_served")->Store(stats.requests_served);
  metrics->GetCounter("orb.skeletons_created")
      ->Store(stats.skeletons_created);
  metrics->GetCounter("orb.stubs_created")->Store(stats.stubs_created);
  metrics->GetCounter("orb.calls_timed_out")->Store(stats.calls_timed_out);
  metrics->GetCounter("orb.mux_wakeups")->Store(stats.mux_wakeups);
  metrics->GetCounter("orb.stale_replies_dropped")
      ->Store(stats.stale_replies_dropped);
  metrics->GetCounter("orb.connections_broken")
      ->Store(stats.connections_broken);
  metrics->GetCounter("orb.reconnects")->Store(stats.reconnects);
  metrics->GetCounter("orb.retries")->Store(stats.retries);
  metrics->GetCounter("orb.retry_give_ups")->Store(stats.retry_give_ups);
  metrics->GetCounter("orb.faults_injected")->Store(stats.faults_injected);
  metrics->GetCounter("orb.spans_recorded")->Store(stats.spans_recorded);
  metrics->GetCounter("orb.spans_dropped")->Store(stats.spans_dropped);
  metrics->GetCounter("orb.reactor.epoll_wakeups")
      ->Store(stats.reactor_epoll_wakeups);
  metrics->GetCounter("orb.reactor.eventfd_wakeups")
      ->Store(stats.reactor_eventfd_wakeups);
  metrics->GetCounter("orb.reactor.backpressure_suspends")
      ->Store(stats.reactor_backpressure_suspends);
  metrics->GetCounter("orb.reactor.backpressure_resumes")
      ->Store(stats.reactor_backpressure_resumes);
  metrics->GetCounter("orb.reactor.loop_stalls")
      ->Store(stats.reactor_loop_stalls);
  if (options_.tracer != nullptr) {
    const obs::SpanRing& provisional = options_.tracer->ProvisionalRing();
    metrics->GetCounter("tracer.provisional_recorded")
        ->Store(provisional.Recorded());
    metrics->GetCounter("tracer.provisional_dropped")
        ->Store(provisional.Dropped());
  }
  obs::FlightRecorder& flight = obs::FlightRecorder::Global();
  metrics->GetCounter("flight.recorded")->Store(flight.Recorded());
  metrics->GetCounter("flight.dropped")->Store(flight.Dropped());
  bytes::IoBufPool::Stats pool = bytes::IoBufPool::Global().GetStats();
  metrics->GetCounter("iobuf.pool.hits")->Store(pool.hits);
  metrics->GetCounter("iobuf.pool.misses")->Store(pool.misses);
  metrics->GetCounter("iobuf.pool.recycles")->Store(pool.recycles);
  // Gauges: point-in-time levels.
  metrics->GetGauge("orb.inflight_highwater")
      ->Set(static_cast<int64_t>(stats.inflight_highwater));
  metrics->GetGauge("orb.dispatch_queue_highwater")
      ->Set(static_cast<int64_t>(stats.dispatch_queue_highwater));
  metrics->GetGauge("iobuf.pool.outstanding_bufs")
      ->Set(static_cast<int64_t>(pool.outstanding_bufs));
  metrics->GetGauge("iobuf.pool.outstanding_bytes")
      ->Set(static_cast<int64_t>(pool.outstanding_bytes));
  if (worker_pool_ != nullptr) {
    metrics->GetGauge("orb.workpool.queue_depth")
        ->Set(static_cast<int64_t>(worker_pool_->QueueDepth()));
  }
  // Per-shard connection gauges: the load-balance view (round-robin vs
  // reuseport hashing) a scrape can graph directly.
  metrics->GetGauge("orb.reactor.connections")
      ->Set(static_cast<int64_t>(stats.reactor_connections));
  for (size_t i = 0; i < stats.reactor_shard_connections.size(); ++i) {
    metrics
        ->GetGauge("orb.reactor.shard." + std::to_string(i) + ".connections")
        ->Set(static_cast<int64_t>(stats.reactor_shard_connections[i]));
  }
  size_t open = stats.reactor_connections;
  {
    std::lock_guard lock(client_mutex_);
    open += connections_.size();
  }
  {
    std::lock_guard lock(server_mutex_);
    open += server_comms_.size();
  }
  metrics->GetGauge("orb.open_connections")->Set(static_cast<int64_t>(open));
}

}  // namespace heidi::orb
