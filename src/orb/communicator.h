// ObjectCommunicator (§3.1): the abstraction of a communication channel
// on which individual requests can be demarcated. It binds a ByteChannel
// to a Protocol: the client side runs whole request/reply exchanges
// through it; the server side reads requests and writes replies.
//
// Exchanges are serialized by a per-communicator mutex, so one cached
// connection can be shared by many client threads (replies are matched by
// call id as a protocol check; out-of-order replies are impossible under
// the lock).
#pragma once

#include <memory>
#include <mutex>

#include "net/buffered.h"
#include "net/channel.h"
#include "wire/call.h"
#include "wire/protocol.h"

namespace heidi::orb {

class ObjectCommunicator {
 public:
  ObjectCommunicator(std::unique_ptr<net::ByteChannel> channel,
                     const wire::Protocol* protocol);
  ~ObjectCommunicator();

  ObjectCommunicator(const ObjectCommunicator&) = delete;
  ObjectCommunicator& operator=(const ObjectCommunicator&) = delete;

  // Client: sends `request`, blocks for the matching reply. Throws
  // NetError on transport failure, MarshalError on protocol violations
  // (including a reply whose call id does not match).
  std::unique_ptr<wire::Call> Invoke(const wire::Call& request);

  // Sends without waiting (oneway requests, server replies).
  void Send(const wire::Call& call);

  // Server: blocking read of the next request; nullptr on clean EOF.
  std::unique_ptr<wire::Call> ReadCall();

  void Close();

  const wire::Protocol& Protocol() const { return *protocol_; }
  std::string PeerName() const { return channel_->PeerName(); }

 private:
  std::unique_ptr<net::ByteChannel> channel_;
  net::BufferedReader reader_;
  const wire::Protocol* protocol_;
  std::mutex exchange_mutex_;
};

}  // namespace heidi::orb
