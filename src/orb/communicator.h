// ObjectCommunicator (§3.1): the abstraction of a communication channel
// on which individual requests can be demarcated. It binds a ByteChannel
// to a Protocol: the client side runs request/reply exchanges through it;
// the server side reads requests and writes replies.
//
// Client exchanges are *multiplexed*, not serialized: a CallMux keyed by
// the wire call id lets many threads share one cached connection with any
// number of calls in flight, their replies matched out of order by a
// per-connection demux thread (see callmux.h for the failure policy).
// Server-side use (ReadCall/Send) never starts the demux thread; Send is
// safe from concurrent worker threads (frame writes take the write lock).
#pragma once

#include <future>
#include <memory>

#include "net/buffered.h"
#include "net/channel.h"
#include "orb/callmux.h"
#include "wire/call.h"
#include "wire/protocol.h"

namespace heidi::orb {

class ObjectCommunicator {
 public:
  // `counters` (optional) receives mux statistics; it must outlive the
  // communicator (the orb passes its own).
  ObjectCommunicator(std::unique_ptr<net::ByteChannel> channel,
                     const wire::Protocol* protocol,
                     MuxCounters* counters = nullptr);
  ~ObjectCommunicator();

  ObjectCommunicator(const ObjectCommunicator&) = delete;
  ObjectCommunicator& operator=(const ObjectCommunicator&) = delete;

  // Client: sends `request`, blocks for the matching reply for up to
  // `timeout_ms` (< 0 = forever). Throws TimeoutError when the deadline
  // expires (the connection survives; the late reply is dropped), NetError
  // on transport failure (which fails every pending call on this
  // connection), MarshalError on protocol violations.
  std::unique_ptr<wire::Call> Invoke(const wire::Call& request,
                                     int timeout_ms = -1);

  // Client, asynchronous: registers and sends `request`, returns the
  // reply future. Resolve it with AwaitReply (which owns the deadline /
  // abandon logic); request.CallId() is the correlation key.
  std::future<std::unique_ptr<wire::Call>> SubmitCall(
      const wire::Call& request);
  std::unique_ptr<wire::Call> AwaitReply(
      uint64_t call_id, std::future<std::unique_ptr<wire::Call>>& future,
      int timeout_ms);

  // Sends without waiting (oneway requests, server replies). Thread-safe.
  void Send(const wire::Call& call);

  // Server: blocking read of the next request; nullptr on clean EOF.
  // Never mix with Invoke/SubmitCall on the same communicator — the
  // client side's demux thread owns the read half.
  std::unique_ptr<wire::Call> ReadCall();

  // True once a transport error has condemned the connection; the orb
  // replaces broken cached communicators on the next call.
  bool Broken() const { return mux_->Broken(); }

  void Close();

  const wire::Protocol& Protocol() const { return *protocol_; }
  std::string PeerName() const { return channel_->PeerName(); }

 private:
  std::unique_ptr<net::ByteChannel> channel_;
  net::BufferedReader reader_;
  const wire::Protocol* protocol_;
  std::unique_ptr<CallMux> mux_;
};

}  // namespace heidi::orb
