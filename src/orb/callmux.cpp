#include "orb/callmux.h"

#include <utility>

#include "support/error.h"
#include "support/logging.h"

namespace heidi::orb {

namespace {

void RaiseHighwater(MuxCounters* counters, uint64_t inflight) {
  if (counters == nullptr) return;
  uint64_t seen =
      counters->inflight_highwater.load(std::memory_order_relaxed);
  while (inflight > seen &&
         !counters->inflight_highwater.compare_exchange_weak(
             seen, inflight, std::memory_order_relaxed)) {
  }
}

void Bump(MuxCounters* counters, std::atomic<uint64_t> MuxCounters::*field) {
  if (counters != nullptr) {
    (counters->*field).fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

CallMux::CallMux(net::ByteChannel& channel, net::BufferedReader& reader,
                 const wire::Protocol& protocol, MuxCounters* counters)
    : channel_(channel),
      reader_(reader),
      protocol_(protocol),
      counters_(counters) {}

CallMux::~CallMux() { Stop(); }

void CallMux::Start() {
  std::lock_guard lock(pending_mutex_);
  if (started_) return;
  started_ = true;
  demux_thread_ = std::thread([this] { DemuxLoop(); });
}

void CallMux::Stop() {
  if (demux_thread_.joinable()) demux_thread_.join();
}

std::future<std::unique_ptr<wire::Call>> CallMux::Submit(
    const wire::Call& request) {
  Start();
  std::promise<std::unique_ptr<wire::Call>> promise;
  std::future<std::unique_ptr<wire::Call>> future = promise.get_future();
  uint64_t id = request.CallId();
  {
    std::lock_guard lock(pending_mutex_);
    if (broken_.load(std::memory_order_acquire)) {
      // Nothing of this request was transmitted: a determinate failure,
      // so the retry policy may resend any operation.
      throw ConnectError("connection to " + channel_.PeerName() +
                         " is broken: " + failure_);
    }
    auto [it, inserted] = pending_.emplace(id, std::move(promise));
    if (!inserted) {
      throw MarshalError("duplicate in-flight call id " + std::to_string(id));
    }
    RaiseHighwater(counters_, pending_.size());
  }
  try {
    std::lock_guard lock(write_mutex_);
    protocol_.WriteCall(channel_, request);
  } catch (const HdError& e) {
    // A failed (possibly partial) frame write leaves the peer's stream
    // position unknowable: condemn the connection rather than resync.
    {
      std::lock_guard lock(pending_mutex_);
      pending_.erase(id);
    }
    channel_.Close();  // unblocks the demux thread
    FailAll(e.what());
    throw;
  }
  return future;
}

std::unique_ptr<wire::Call> CallMux::Await(
    uint64_t id, std::future<std::unique_ptr<wire::Call>>& future,
    int timeout_ms) {
  if (timeout_ms >= 0 &&
      future.wait_for(std::chrono::milliseconds(timeout_ms)) ==
          std::future_status::timeout) {
    bool abandoned;
    {
      std::lock_guard lock(pending_mutex_);
      abandoned = pending_.erase(id) > 0;
    }
    if (abandoned) {
      // Only this call dies; the connection (and every other pending
      // call on it) stays live, and the late reply is dropped as stale.
      Bump(counters_, &MuxCounters::timeouts);
      throw TimeoutError("call " + std::to_string(id) + " to " +
                         channel_.PeerName() + " exceeded its " +
                         std::to_string(timeout_ms) + "ms deadline");
    }
    // The reply (or the connection's death) raced the deadline: take it.
  }
  return future.get();
}

void CallMux::SendOneway(const wire::Call& call) {
  if (broken_.load(std::memory_order_acquire)) {
    std::lock_guard lock(pending_mutex_);
    throw ConnectError("connection to " + channel_.PeerName() +
                       " is broken: " + failure_);
  }
  std::lock_guard lock(write_mutex_);
  protocol_.WriteCall(channel_, call);
}

void CallMux::DemuxLoop() {
  while (true) {
    std::unique_ptr<wire::Call> reply;
    try {
      reply = protocol_.ReadCall(reader_);
    } catch (const HdError& e) {
      FailAll(e.what());
      return;
    }
    Bump(counters_, &MuxCounters::wakeups);
    if (reply == nullptr) {
      FailAll("connection to " + channel_.PeerName() +
              " closed while awaiting replies");
      return;
    }
    if (reply->Kind() != wire::CallKind::kReply) {
      channel_.Close();
      FailAll("protocol violation: peer " + channel_.PeerName() +
              " sent a request frame on a client connection");
      return;
    }
    std::promise<std::unique_ptr<wire::Call>> promise;
    bool found = false;
    {
      std::lock_guard lock(pending_mutex_);
      auto it = pending_.find(reply->CallId());
      if (it != pending_.end()) {
        promise = std::move(it->second);
        pending_.erase(it);
        found = true;
      }
    }
    if (!found) {
      // Stale or abandoned id: drain the full frame (already consumed by
      // ReadCall) and resync on the next one instead of dying mid-stream.
      Bump(counters_, &MuxCounters::stale_replies);
      HD_LOG_DEBUG << "dropping stale reply id " << reply->CallId()
                   << " from " << channel_.PeerName();
      continue;
    }
    promise.set_value(std::move(reply));
  }
}

void CallMux::FailAll(const std::string& reason) {
  std::map<uint64_t, std::promise<std::unique_ptr<wire::Call>>> victims;
  {
    std::lock_guard lock(pending_mutex_);
    if (!broken_.load(std::memory_order_relaxed)) {
      failure_ = reason;
      Bump(counters_, &MuxCounters::connections_broken);
    }
    broken_.store(true, std::memory_order_release);
    victims.swap(pending_);
  }
  for (auto& [id, promise] : victims) {
    promise.set_exception(std::make_exception_ptr(
        NetError("call " + std::to_string(id) + " failed: " + reason)));
  }
}

}  // namespace heidi::orb
