// WorkPool: a small fixed pool of dispatch threads. One connection's
// reader thread used to both parse and execute every request, so a
// multiplexed client pipelining N calls still saw them served one at a
// time; handing twoway dispatch to the pool lets pipelined requests on a
// single connection actually overlap (oneways stay on the reader thread
// to preserve their submission order).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace heidi::orb {

class WorkPool {
 public:
  using Task = std::function<void()>;

  // Threads start lazily, on the first Post().
  explicit WorkPool(int threads) : target_threads_(threads) {}
  ~WorkPool() { Stop(); }

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  // Enqueues `task`. Returns false (task not queued) after Stop() — the
  // caller runs it inline or drops it. Tasks must not throw.
  bool Post(Task task);

  // Drains the queue, joins all workers; idempotent. Posting afterwards
  // returns false.
  void Stop();

  int Threads() const { return target_threads_; }

  // Tasks currently queued (not yet picked up) — a point-in-time gauge
  // for the scrape endpoint.
  size_t QueueDepth() const;

  // Observability counters (monotonic; maintained under the pool mutex).
  struct Stats {
    uint64_t posted = 0;           // tasks accepted by Post()
    uint64_t executed = 0;         // tasks completed by a worker
    uint64_t queue_highwater = 0;  // max tasks queued at once
  };
  Stats GetStats() const;

 private:
  void WorkerLoop();

  const int target_threads_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  Stats stats_;
};

}  // namespace heidi::orb
