// Runtime helpers for idlc-generated stub/skeleton code (heidi_cpp
// mapping). Generated code references these by qualified name; they keep
// the templates short and give object-parameter handling one audited
// implementation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/typeinfo.h"

namespace heidi::orb::gen {

// Narrows an unmarshaled object parameter to the expected generated
// interface. nullptr stays nullptr; a type mismatch (a reference to an
// object that does not implement the declared interface) is a marshaling
// error, reported back to the caller as a user exception.
template <typename T>
T* CastParam(const std::shared_ptr<HdObject>& holder, const char* what) {
  if (holder == nullptr) return nullptr;
  T* typed = dynamic_cast<T*>(holder.get());
  if (typed == nullptr) {
    throw MarshalError(std::string("object parameter does not implement ") +
                       what);
  }
  return typed;
}

// Like CastParam, but parks the ownership holder in `retained` so the raw
// pointer a stub returns stays valid. Generated stubs retain returned
// objects for their own lifetime — the Heidi legacy API returns raw
// pointers, so this is the least surprising ownership rule (documented in
// the generated header's comment).
template <typename T>
T* Retain(std::vector<std::shared_ptr<HdObject>>& retained,
          const std::shared_ptr<HdObject>& holder, const char* what) {
  T* typed = CastParam<T>(holder, what);
  if (typed != nullptr) retained.push_back(holder);
  return typed;
}

}  // namespace heidi::orb::gen
