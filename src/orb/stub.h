// HdStub — generic client-side stub functionality (§3.1): "All stubs
// inherit from a base HdStub class which provides the generic stub
// functionality." A generated stub additionally implements the abstract
// C++ interface class and mirrors the IDL inheritance structure.
#pragma once

#include <memory>
#include <string_view>

#include "orb/objref.h"
#include "support/typeinfo.h"
#include "wire/call.h"

namespace heidi::orb {

class Orb;
class ReplyHandle;

class HdStub : public virtual HdObject {
 public:
  HdStub(Orb& orb, ObjectRef ref);
  ~HdStub() override = default;

  const ObjectRef& Ref() const { return ref_; }
  Orb& GetOrb() const { return *orb_; }

 protected:
  // For generated stub hierarchies: HdStub is a virtual base, so only the
  // most-derived stub class initializes it; intermediate stub classes use
  // this default constructor (their initialization is ignored anyway).
  HdStub() = default;

  // Creates a request call addressed at this stub's target.
  std::unique_ptr<wire::Call> NewCall(std::string_view op,
                                      bool oneway = false) const;

  // Sends and waits; checks reply status. Throws RemoteError for a remote
  // user exception, DispatchError for a remote system error, NetError for
  // transport failure, TimeoutError when the call's deadline (the orb's
  // default, or `timeout_ms` if >= 0) expires. Returns the reply
  // positioned at the first result.
  std::unique_ptr<wire::Call> Invoke(std::unique_ptr<wire::Call> call,
                                     int timeout_ms = -1) const;

  // Sends without waiting; the returned handle resolves to the checked
  // reply. Successive async calls pipeline on the shared connection.
  ReplyHandle InvokeAsync(std::unique_ptr<wire::Call> call,
                          int timeout_ms = -1) const;

  // Fire-and-forget for oneway operations.
  void InvokeOneway(std::unique_ptr<wire::Call> call) const;

  Orb* orb_ = nullptr;
  ObjectRef ref_;
};

// Narrows a resolved stub to a concrete generated interface.
template <typename T>
std::shared_ptr<T> NarrowTo(const std::shared_ptr<HdStub>& stub) {
  return std::dynamic_pointer_cast<T>(stub);
}

}  // namespace heidi::orb
