// HdSkeleton — server-side dispatch base (§3.1, Fig 5).
//
// HeidiRMI skeletons do NOT inherit from the abstract interface class;
// they hold the implementation object and *delegate* to it (Fig 2). A
// generated skeleton mirrors the IDL inheritance structure as a skeleton
// class hierarchy (A_skel : S_skel) and its Dispatch first tries its own
// operations, then delegates to each base skeleton in order — the
// recursive dispatch the paper describes.
#pragma once

#include <string>

#include "orb/dispatch.h"
#include "support/typeinfo.h"
#include "wire/call.h"

namespace heidi::orb {

class Orb;

class HdSkeleton {
 public:
  HdSkeleton(Orb& orb, HdObject* impl) : orb_(&orb), impl_(impl) {}
  virtual ~HdSkeleton() = default;

  HdSkeleton(const HdSkeleton&) = delete;
  HdSkeleton& operator=(const HdSkeleton&) = delete;

  // Unmarshals `op`'s parameters from `in`, calls the implementation,
  // marshals results into `out`. Returns false if the operation is not
  // known anywhere in this skeleton hierarchy. Implementation exceptions
  // propagate (the ORB turns them into user-exception replies).
  virtual bool Dispatch(const std::string& op, wire::Call& in,
                        wire::Call& out) = 0;

  HdObject* Impl() const { return impl_; }
  Orb& GetOrb() const { return *orb_; }

 protected:
  // For generated skeleton hierarchies that inherit HdSkeleton virtually
  // (multiple IDL inheritance): only the most-derived skeleton initializes
  // the base; intermediate classes use this default constructor.
  HdSkeleton() = default;

  Orb* orb_ = nullptr;
  HdObject* impl_ = nullptr;
};

}  // namespace heidi::orb
