#include "orb/dispatch.h"

#include <algorithm>

#include "support/error.h"

namespace heidi::orb {

std::string_view DispatchStrategyName(DispatchStrategy strategy) {
  switch (strategy) {
    case DispatchStrategy::kLinear: return "linear";
    case DispatchStrategy::kBinary: return "binary";
    case DispatchStrategy::kHash: return "hash";
  }
  return "?";
}

void DispatchTable::Add(std::string name, Handler handler) {
  if (sealed_) throw HdError("DispatchTable::Add after Seal");
  for (const Entry& e : entries_) {
    if (e.name == name) {
      throw HdError("duplicate dispatch entry '" + name + "'");
    }
  }
  entries_.push_back(Entry{std::move(name), std::move(handler)});
}

void DispatchTable::Seal() {
  if (sealed_) return;
  sealed_ = true;
  if (strategy_ == DispatchStrategy::kBinary) {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.name < b.name; });
  }
  names_.clear();
  for (const Entry& e : entries_) names_.push_back(e.name);
  if (strategy_ == DispatchStrategy::kHash) {
    hash_.reserve(entries_.size());
    for (const Entry& e : entries_) {
      hash_.emplace(std::string_view(e.name), &e.handler);
    }
  }
}

const DispatchTable::Handler* DispatchTable::Find(
    std::string_view name) const {
  if (!sealed_) throw HdError("DispatchTable::Find before Seal");
  switch (strategy_) {
    case DispatchStrategy::kLinear:
      for (const Entry& e : entries_) {
        if (e.name == name) return &e.handler;
      }
      return nullptr;
    case DispatchStrategy::kBinary: {
      auto it = std::lower_bound(
          entries_.begin(), entries_.end(), name,
          [](const Entry& e, std::string_view n) { return e.name < n; });
      if (it != entries_.end() && it->name == name) return &it->handler;
      return nullptr;
    }
    case DispatchStrategy::kHash: {
      auto it = hash_.find(name);
      return it == hash_.end() ? nullptr : it->second;
    }
  }
  return nullptr;
}

}  // namespace heidi::orb
