// RetryPolicy: failure handling as a pluggable transmission policy (the
// §3.1 configurability axis once more — what to do when the wire breaks
// is an application decision, not something baked into stubs).
//
// The failure taxonomy the policy works from:
//   - determinate   (ConnectError): the request provably never left this
//     process. Always safe to retry, for any operation.
//   - indeterminate (NetError mid-call): bytes may have reached the
//     server and the operation may have executed. Only oneway requests,
//     requests marked idempotent (wire::Call::SetIdempotent), or a
//     policy with retry_indeterminate = true are retried.
//   - deadline      (TimeoutError): never retried — the call's time is
//     spent, and PR 1's deadline semantics (fail the call, keep the
//     connection) already apply.
//
// Backoff between attempts is exponential with bounded jitter, and it
// respects the per-call deadline: if the next backoff sleep would
// overrun the deadline, the orb gives up and rethrows the transport
// failure (counted in OrbStats::retry_give_ups).
#pragma once

#include <cstdint>

namespace heidi::orb {

struct RetryPolicy {
  // Total attempts per invocation (first try included); 1 disables
  // retrying entirely.
  int max_attempts = 1;

  // Exponential backoff: attempt k (k >= 1 retries) sleeps
  // initial_backoff_ms * backoff_multiplier^(k-1), capped at
  // max_backoff_ms, plus uniform jitter in [0, jitter_pct% of the delay].
  int initial_backoff_ms = 2;
  double backoff_multiplier = 2.0;
  int max_backoff_ms = 200;
  int jitter_pct = 25;

  // Total retries this orb may spend across all calls (a safety valve
  // against retry storms); < 0 = unlimited.
  int64_t retry_budget = -1;

  // Opt out of the idempotency gate: retry twoways even after an
  // indeterminate failure (at-least-once semantics; the application
  // accepts possible duplicate execution).
  bool retry_indeterminate = false;
};

}  // namespace heidi::orb
