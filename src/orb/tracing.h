// Tracing as a pure-policy attachment (§5): interceptor implementations
// that observe the invocation/dispatch paths through the public hook
// points only — no ORB-core cooperation required. They complement the
// deeper OrbOptions::tracer integration (which owns span timelines and
// stage histograms); attach these when all you want is per-operation
// counters and trace-id-stamped debug logging, or as a worked example of
// how a deployment bolts its own telemetry onto the hooks.
//
// Both interceptors are thread-safe (the registry hot path is lock-free)
// and may share the Tracer attached via OrbOptions.
#pragma once

#include <memory>

#include "obs/tracer.h"
#include "orb/interceptor.h"

namespace heidi::orb {

// Counts requests/replies per operation ("icpt.req.<op>" /
// "icpt.rep.<op>" counters) and, at debug level, logs each call with its
// wire trace context so log lines join up with exported span timelines.
class TracingClientInterceptor : public ClientInterceptor {
 public:
  explicit TracingClientInterceptor(std::shared_ptr<obs::Tracer> tracer);

  void PreInvoke(const ObjectRef& target, const wire::Call& request) override;
  void PostInvoke(const ObjectRef& target, const wire::Call& reply) override;

 private:
  std::shared_ptr<obs::Tracer> tracer_;
};

// Server-side twin: "icpt.dispatch.<op>" counters plus error counting by
// reply status, with the same trace-id debug logging.
class TracingServerInterceptor : public ServerInterceptor {
 public:
  explicit TracingServerInterceptor(std::shared_ptr<obs::Tracer> tracer);

  void PreDispatch(const wire::Call& request) override;
  void PostDispatch(const wire::Call& request,
                    const wire::Call& reply) override;

 private:
  std::shared_ptr<obs::Tracer> tracer_;
};

}  // namespace heidi::orb
