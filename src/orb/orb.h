// The Orb facade: one instance per address space. Owns the bootstrap
// acceptor (Fig 5), the object table, the connection cache, the stub and
// skeleton caches, and the client-side invocation path (Fig 4).
//
// Everything the paper calls configurable is an OrbOptions knob:
//   protocol          — wire protocol by name ("text", "hiop", or any
//                       protocol registered with RegisterProtocol)
//   dispatch          — skeleton dispatch strategy (§2 optimization axis)
//   cache_connections — reuse one connection per endpoint (§3.1)
//   cache_stubs       — one stub per reference string (§3.1)
//   cache_skeletons   — keep lazily-created skeletons alive (§3.1)
//
// Threading model.
//
// Server side, reactor mode (the default): ListenTcp starts a sharded
// epoll reactor (OrbOptions::reactor_shards event-loop threads, default
// one per hardware thread; see net/reactor.h). Each accepted socket is
// made non-blocking and pinned to one shard; that shard's loop reads it
// readiness-driven into a pooled buffer and parses frames incrementally.
// Oneway requests are dispatched inline on the shard loop, so oneways
// from one client execute in submission order. Twoway requests are
// handed to a small shared worker pool (OrbOptions::server_workers), so
// pipelined requests arriving on ONE connection overlap — implementation
// objects must be prepared for concurrent calls even from a single
// client. Replies leave through a per-connection write queue: a
// non-blocking flush on the worker thread in the common case, EPOLLOUT-
// driven from the shard loop when the peer is slow, with high-water
// backpressure that suspends reading from clients who refuse to drain
// replies. Thread count is O(shards + workers + 1 accept thread),
// independent of connection count.
//
// Server side, legacy mode (reactor_shards = 0, or a custom protocol
// without a FrameDecoder): each connection gets a blocking reader thread
// that parses frames; dispatch policy (oneway inline / twoway pooled) is
// the same as above. server_workers = 0 restores the old strictly-per-
// connection-ordered inline dispatch in either mode.
//
// Client side: invocations may come from any thread. A cached connection
// is multiplexed, not serialized: each in-flight call parks on its own
// reply future while a per-connection demux thread matches reply frames
// to callers by wire call id (see callmux.h). Any number of calls — sync
// via Invoke, async via InvokeAsync — share one connection concurrently.
// A transport error fails every call pending on that connection and the
// next invocation reconnects; a deadline expiry (TimeoutError) fails only
// its own call and leaves the connection (and its other pending calls)
// intact.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/channel.h"
#include "net/fault.h"
#include "net/reactor.h"
#include "net/tcp.h"
#include "obs/retention.h"
#include "obs/tracer.h"
#include "orb/callmux.h"
#include "orb/communicator.h"
#include "orb/dispatch.h"
#include "orb/retry.h"
#include "orb/workpool.h"
#include "orb/interceptor.h"
#include "orb/objref.h"
#include "orb/registry.h"
#include "orb/skeleton.h"
#include "orb/stub.h"
#include "support/error.h"
#include "wire/protocol.h"
#include "wire/serializable.h"

namespace heidi {
namespace obs {
class PromHttpServer;
}  // namespace obs
}  // namespace heidi

namespace heidi::orb {

struct OrbOptions {
  std::string protocol = "text";
  DispatchStrategy dispatch = DispatchStrategy::kHash;
  bool cache_connections = true;
  bool cache_stubs = true;
  bool cache_skeletons = true;
  // Transmission policy (the §3.1 configurability axis, extended):
  // default per-call deadline in milliseconds; < 0 waits forever. An
  // expired call throws TimeoutError without condemning the connection.
  // Per-call overrides via the timeout_ms arguments of Invoke/InvokeAsync.
  int call_timeout_ms = -1;
  // Worker threads dispatching twoway requests, shared by all inbound
  // connections; lets calls pipelined on one connection execute
  // concurrently. 0 dispatches inline on each connection's reader thread
  // (strict per-connection ordering, no overlap).
  int server_workers = 4;
  // Event-loop shards serving inbound connections (see the threading
  // model above). -1 picks one per hardware thread; 0 disables the
  // reactor and serves every connection with its own blocking reader
  // thread (the legacy model — also the fallback for custom protocols
  // that do not implement wire::Protocol::NewFrameDecoder).
  int reactor_shards = -1;
  // Sharded accept: give every reactor shard its own SO_REUSEPORT
  // listener so the kernel balances connections across shards and no
  // accept thread exists. Off by default (round-robin assignment from
  // one accept thread preserves exact per-shard balance, which reuseport
  // hashing does not guarantee).
  bool reactor_reuseport = false;
  // Per-connection reply-queue high-water mark, bytes. A client that
  // stops reading replies is suspended (its requests stop being read)
  // once this much reply data is queued; reading resumes when the queue
  // drains below a quarter of this.
  size_t reactor_write_high_water = 4u << 20;
  // TCP socket tuning for inbound (accepted) and outbound (client)
  // connections: Nagle off by default for RPC latency; 0 buffer sizes
  // keep the kernel defaults.
  bool tcp_nodelay = true;
  int tcp_rcvbuf = 0;
  int tcp_sndbuf = 0;
  // Name under which this orb is reachable through the in-process
  // transport ("inproc:<name>:0" bootstrap URLs). Empty = not registered.
  std::string inproc_name;
  // Host written into exported references once ListenTcp is active.
  std::string advertise_host = "127.0.0.1";
  // Failure handling as policy (see retry.h): how many attempts an
  // invocation gets, backoff between them, and whether indeterminate
  // failures may be retried. The default (max_attempts = 1) preserves
  // fail-fast semantics.
  RetryPolicy retry;
  // Fault injection (tests/CI): every outbound connection is wrapped in
  // a FaultyChannel driven by this injector, and connects may be
  // refused. nullptr (the default) disables injection entirely.
  std::shared_ptr<net::FaultInjector> fault_injector;
  // Observability as policy (the same §5 attachability argument as
  // interceptors): when set, the orb instruments its invocation and
  // dispatch paths — per-operation/per-stage latency histograms always
  // on, span timelines per the tracer's sampling mode — and stamps
  // sampled outbound requests (and any request joining an inbound
  // trace) with a wire-propagated TraceContext; sampled-out calls carry
  // no context and pay no wire cost. nullptr (the default) leaves the
  // hot path untouched. Client and server orbs may share one tracer
  // (single merged timeline) or own one each.
  std::shared_ptr<obs::Tracer> tracer;
  // Retention as policy (see obs/retention.h): replaces the tracer's
  // sampling mode when set. MakeTailRetention keeps the spans that
  // matter after the fact — errors, retries, timeouts, injected faults,
  // latency outliers against the live per-op p99 — while healthy calls
  // pass through a cheap provisional ring and are forgotten. Ignored
  // when `tracer` is null.
  std::shared_ptr<obs::RetentionPolicy> retention;
  // OpenMetrics scrape endpoint: >= 0 starts an HTTP/1.0 server on that
  // port (0 = ephemeral, see Orb::MetricsPort) serving GET /metrics in
  // OpenMetrics text exposition and GET /flight as the flight-recorder
  // JSONL. -1 (the default) starts nothing.
  int metrics_listen = -1;
  // Shutdown trace flush: when non-empty (or the HEIDI_TRACE_JSONL_OUT /
  // HEIDI_TRACE_CHROME_OUT environment variables are set), Shutdown()
  // writes the tracer's retained spans to these paths as JSONL / Chrome
  // trace-viewer JSON.
  std::string trace_jsonl_out;
  std::string trace_chrome_out;
};

// Counters exposed for benchmarks and tests (monotonic, best-effort).
struct OrbStats {
  uint64_t connections_opened = 0;
  uint64_t calls_sent = 0;
  uint64_t requests_served = 0;
  uint64_t skeletons_created = 0;
  uint64_t stubs_created = 0;
  // Multiplexer counters, aggregated over all client connections.
  uint64_t inflight_highwater = 0;      // max calls pending at once
  uint64_t calls_timed_out = 0;         // deadlines expired
  uint64_t mux_wakeups = 0;             // demux thread frame wakeups
  uint64_t stale_replies_dropped = 0;   // drained unmatched reply frames
  // Failure/retry counters (the retry policy at work).
  uint64_t connections_broken = 0;      // transport errors condemning a mux
  uint64_t reconnects = 0;              // condemned cache entries replaced
  uint64_t retries = 0;                 // invocation attempts re-sent
  uint64_t retry_give_ups = 0;          // retryable failures abandoned
  uint64_t faults_injected = 0;         // from OrbOptions::fault_injector
  // Observability counters (zero unless OrbOptions::tracer is set).
  uint64_t spans_recorded = 0;          // span timelines kept in the ring
  uint64_t spans_dropped = 0;           // timelines lost to ring contention
  uint64_t dispatch_queue_highwater = 0;  // WorkPool max queued tasks
  // Zero-copy buffer pool (process-global; see support/bytes.h). Hits vs
  // misses say how often a frame's slab came off a free list instead of
  // the heap; bytes_retained is the capacity currently held live by
  // in-flight chains and retained readable calls.
  uint64_t iobuf_pool_hits = 0;
  uint64_t iobuf_pool_misses = 0;
  uint64_t iobuf_bytes_retained = 0;
  // Reactor counters (all zero in legacy thread-per-connection mode).
  uint64_t reactor_connections = 0;           // currently adopted
  uint64_t reactor_epoll_wakeups = 0;
  uint64_t reactor_eventfd_wakeups = 0;
  uint64_t reactor_backpressure_suspends = 0;
  uint64_t reactor_backpressure_resumes = 0;
  uint64_t reactor_loop_stalls = 0;
  std::vector<uint64_t> reactor_shard_connections;  // per-shard live count
};

// Per-invocation observability state threaded through the invoke path
// (internal; public only because ReplyHandle carries it by value for the
// async path). `span` is non-null only for sampled calls; the metrics
// fields are live whenever a tracer is attached.
struct InvokeTrace {
  obs::Tracer* tracer = nullptr;
  std::unique_ptr<obs::Span> span;  // sampled timeline, else nullptr
  int64_t start_ns = 0;             // Invoke/InvokeAsync entry
  std::string operation;            // per-op histogram key at finish
  // Injector fault count when the span began; FinishInvokeTrace flags
  // the span kSpanFlagFaulted if it grew (tail retention keeps it).
  uint64_t faults_before = 0;
};

class Orb;

// Handle to one in-flight asynchronous invocation (Orb::InvokeAsync). The
// request is already on the wire; Get() parks on the reply future until
// the reply arrives or the call's deadline expires, then applies the same
// status checks (and throws the same errors) as the synchronous Invoke.
// One-shot: Get() may be called once. Destroying an un-Get() handle
// abandons the call; the reply is drained and dropped when it arrives.
class ReplyHandle {
 public:
  ReplyHandle(ReplyHandle&&) = default;
  ReplyHandle& operator=(ReplyHandle&&) = default;

  // Throws TimeoutError past the deadline (connection survives),
  // DispatchError for remote system errors, RemoteError for remote user
  // exceptions, NetError on transport failure. Returns the reply
  // positioned at the first result.
  std::unique_ptr<wire::Call> Get();

  uint64_t CallId() const { return call_id_; }

 private:
  friend class Orb;
  ReplyHandle() = default;

  Orb* orb_ = nullptr;
  ObjectRef target_;
  std::shared_ptr<ObjectCommunicator> comm_;
  std::future<std::unique_ptr<wire::Call>> future_;
  uint64_t call_id_ = 0;
  int timeout_ms_ = -1;
  // Observability: the async path moves its whole InvokeTrace into the
  // handle (Get() finishes it); the sync path keeps ownership in Invoke
  // and only lends the sampled span for wait/unmarshal stage timing.
  InvokeTrace trace_;
  obs::Span* borrowed_span_ = nullptr;
};

class Orb {
 public:
  explicit Orb(OrbOptions options = {});
  ~Orb();

  Orb(const Orb&) = delete;
  Orb& operator=(const Orb&) = delete;

  // --- server side ---------------------------------------------------------
  // Opens the bootstrap port (0 = ephemeral) and starts accepting. May be
  // called at most once.
  void ListenTcp(uint16_t port = 0);
  uint16_t TcpPort() const;

  // Serves a raw channel as if accepted on the bootstrap port (used by
  // the in-process transport and by tests).
  void ServeChannel(std::unique_ptr<net::ByteChannel> channel);

  // Registers `impl` and returns its reference; idempotent per object.
  // The caller keeps ownership of `impl`, which must outlive the export.
  // The skeleton is created lazily, on the first incoming call (§3.1).
  ObjectRef ExportObject(HdObject* impl, std::string_view repo_id);
  void UnexportObject(HdObject* impl);
  size_t ExportedCount() const;

  // Stops accepting, closes every connection, joins all threads.
  // Idempotent; also run by the destructor.
  void Shutdown();

  // --- client side ----------------------------------------------------------
  std::shared_ptr<HdStub> Resolve(std::string_view ref_string);
  std::shared_ptr<HdStub> Resolve(const ObjectRef& ref);

  template <typename T>
  std::shared_ptr<T> ResolveAs(std::string_view ref_string) {
    auto narrowed = std::dynamic_pointer_cast<T>(Resolve(ref_string));
    if (narrowed == nullptr) {
      throw RefError("reference does not narrow to the requested interface: " +
                     std::string(ref_string));
    }
    return narrowed;
  }

  // --- invocation plumbing (used by stubs / hand-written callers) ----------
  std::unique_ptr<wire::Call> NewRequest(const ObjectRef& target,
                                         std::string_view op, bool oneway);
  // Sends, waits, checks status. Throws TimeoutError when the deadline
  // expires, DispatchError for remote system errors, RemoteError for
  // remote user exceptions, NetError on transport failure. Returns the
  // reply positioned at the first result. `timeout_ms` < 0 uses the orb's
  // OrbOptions::call_timeout_ms.
  //
  // Transport failures are retried per OrbOptions::retry: the condemned
  // cache entry is dropped, the orb reconnects, backs off (bounded by
  // the call's deadline), and resends — any operation after a
  // determinate failure (ConnectError: the request never left), but only
  // oneway/idempotent ones (wire::Call::SetIdempotent) after an
  // indeterminate one, unless RetryPolicy::retry_indeterminate opts in.
  // An expired deadline (TimeoutError) is never retried.
  std::unique_ptr<wire::Call> Invoke(const ObjectRef& target,
                                     const wire::Call& request,
                                     int timeout_ms = -1);
  // Sends without waiting and returns the handle the reply will arrive
  // on; many InvokeAsync calls to one endpoint pipeline over the same
  // cached connection. Invoke(t, r, ms) == InvokeAsync(t, r, ms).Get().
  // The retry policy covers the connect/submit stage only; once the
  // request is on the wire the returned handle resolves exactly once
  // (reply-stage retry is the synchronous Invoke's job — the async
  // caller keeps the request and decides).
  ReplyHandle InvokeAsync(const ObjectRef& target, const wire::Call& request,
                          int timeout_ms = -1);
  // Fire-and-forget; send failures are retried per OrbOptions::retry
  // (oneways always pass the idempotency gate).
  void InvokeOneway(const ObjectRef& target, const wire::Call& request);

  // --- object parameter passing (§3.1) --------------------------------------
  // Writes an object parameter. incopy=true requests pass-by-value, taken
  // when the object implements HdSerializable (checked through the Heidi
  // dynamic type system); otherwise the object is exported and passed by
  // reference. `repo_id` is the declared parameter interface, used when
  // the dynamic type has no registered factory.
  void PutObject(wire::Call& call, HdObject* obj, std::string_view repo_id,
                 bool incopy = false);

  // Reads an object parameter: nullptr, a by-value copy, the local
  // implementation (when the reference points back into this orb), or a
  // stub. The returned holder keeps the object alive; callers hand the
  // raw pointer to implementation code for the duration of the call.
  std::shared_ptr<HdObject> GetObject(wire::Call& call);

  // --- interceptors (§5 filters/interceptors pattern) ----------------------
  // Interceptors run in registration order (Post* hooks in reverse). The
  // orb shares ownership; attach before traffic flows — attachment is
  // thread-safe, but hooks registered mid-call only affect later calls.
  void AddClientInterceptor(std::shared_ptr<ClientInterceptor> interceptor);
  void AddServerInterceptor(std::shared_ptr<ServerInterceptor> interceptor);

  // --- introspection ---------------------------------------------------------
  const OrbOptions& Options() const { return options_; }
  const wire::Protocol& Protocol() const { return *protocol_; }
  OrbStats Stats() const;
  // "tcp:127.0.0.1:1234" or "inproc:name:0"; throws if neither transport
  // is active.
  std::string MyEndpoint() const;
  // The black-box journal as JSONL (same body the scrape endpoint's
  // /flight route and telnet_debug's `flight` command serve).
  std::string DumpFlightRecorder() const;
  // Bound port of the OpenMetrics endpoint; 0 when metrics_listen < 0.
  uint16_t MetricsPort() const;

 private:
  friend class ReplyHandle;  // completion path shares the invoke plumbing

  struct ObjectEntry {
    HdObject* impl = nullptr;
    std::string repo_id;
    std::unique_ptr<HdSkeleton> skeleton;  // lazily created
  };

  std::shared_ptr<ObjectCommunicator> GetCommunicator(const ObjectRef& ref);
  void DropCachedCommunicator(const std::string& endpoint);
  std::unique_ptr<net::ByteChannel> ConnectTo(const ObjectRef& ref);
  // One connect+submit attempt, no retrying (`timeout_ms` already
  // resolved against the orb default by the caller). `span` (may be
  // null) receives acquire/send stage intervals and is lent to the
  // returned handle for wait/unmarshal timing.
  ReplyHandle InvokeAsyncOnce(const ObjectRef& target,
                              const wire::Call& request, int timeout_ms,
                              obs::Span* span);
  // Decides whether a failed attempt is retried: applies the idempotency
  // gate, the attempt/budget limits, and the deadline-bounded backoff
  // sleep. Returns true after sleeping (caller reattempts) or false
  // (caller rethrows); maintains the retry counters.
  bool PrepareRetry(const wire::Call& request, bool indeterminate,
                    int attempt, bool has_deadline,
                    std::chrono::steady_clock::time_point deadline);
  void HandlerLoop(std::shared_ptr<ObjectCommunicator> comm);
  // `span` (may be null) receives predispatch/exec stage intervals and
  // an error tag when the dispatch fails.
  std::unique_ptr<wire::Call> HandleRequest(wire::Call& request,
                                            obs::Span* span);
  // Reactor on_data callback: parses frames out of conn.Inbound() with
  // the connection's FrameDecoder and dispatches them (oneways inline on
  // the shard loop, twoways on the worker pool with the reply routed
  // back through conn.QueueWrite). Returns false on protocol errors.
  bool OnReactorData(net::ReactorConn& conn);
  // Starts the server span continuing the inbound trace (shared by the
  // legacy HandlerLoop and the reactor path); null when unsampled.
  std::shared_ptr<obs::Span> StartServerSpan(const wire::Call& request,
                                             int64_t t_read);
  // --- observability helpers (no-ops when options_.tracer is null) --------
  // Starts per-invocation trace state: always-on metrics bookkeeping plus
  // a client span when the request's context is sampled.
  InvokeTrace BeginInvokeTrace(const wire::Call& request);
  // Records one failed-or-retried attempt as a kAttempt sub-span sharing
  // the parent's trace id (only sampled calls, and only once retries or
  // failures make the attempt structure interesting).
  void RecordAttemptSpan(InvokeTrace& trace, int attempt,
                         int64_t attempt_start_ns, const char* error);
  // Ends the span (tagging `error` if set) and records the per-operation
  // latency histogram and call/error counters.
  void FinishInvokeTrace(InvokeTrace& trace, const char* error);
  // Maps a reply's wire status to the caller-visible result/exception.
  std::unique_ptr<wire::Call> CheckReplyStatus(
      const ObjectRef& target, std::unique_ptr<wire::Call> reply);
  bool IsLocalEndpoint(const ObjectRef& ref) const;

  OrbOptions options_;
  const wire::Protocol* protocol_;

  // Server state.
  std::unique_ptr<net::TcpAcceptor> acceptor_;
  std::unique_ptr<net::Reactor> reactor_;
  uint16_t listen_port_ = 0;  // bound port (acceptor or reuseport shards)
  std::thread accept_thread_;
  mutable std::mutex server_mutex_;
  bool shutting_down_ = false;
  std::vector<std::thread> handler_threads_;
  std::vector<std::shared_ptr<ObjectCommunicator>> server_comms_;
  std::unique_ptr<WorkPool> worker_pool_;  // twoway dispatch overlap

  // Object table.
  mutable std::mutex table_mutex_;
  std::map<uint64_t, ObjectEntry> objects_;
  std::map<const HdObject*, uint64_t> object_ids_;
  uint64_t next_object_id_ = 1000;

  // Interceptors (copy-on-read under client_mutex_ via shared vectors).
  void RunPreInvoke(const ObjectRef& target, const wire::Call& request);
  void RunPostInvoke(const ObjectRef& target, const wire::Call& reply);
  std::vector<std::shared_ptr<ClientInterceptor>> client_interceptors_;
  std::vector<std::shared_ptr<ServerInterceptor>> server_interceptors_;
  mutable std::mutex interceptor_mutex_;

  // Client state. (Mutable: the scrape path's open-connection gauge
  // counts cache entries from const context.)
  mutable std::mutex client_mutex_;
  std::map<std::string, std::shared_ptr<ObjectCommunicator>> connections_;
  // Per-endpoint connection-establishment locks (see GetCommunicator):
  // one thread connects, concurrent callers for the same endpoint wait
  // and reuse its cached result. Guarded by client_mutex_.
  std::map<std::string, std::shared_ptr<std::mutex>> connect_locks_;
  std::map<std::string, std::shared_ptr<HdStub>> stubs_;
  // Endpoints whose cached connection was condemned by a transport error;
  // the next successful connect to one counts as a reconnect.
  std::set<std::string> pending_reconnect_;
  std::atomic<uint64_t> next_call_id_{1};
  std::atomic<int64_t> retry_budget_left_{0};  // from RetryPolicy, in ctor

  // Stats.
  MuxCounters mux_counters_;  // shared by every client-side communicator
  std::atomic<uint64_t> connections_opened_{0};
  std::atomic<uint64_t> calls_sent_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> skeletons_created_{0};
  std::atomic<uint64_t> stubs_created_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> retry_give_ups_{0};

  // Observability: stage histogram / counter pointers resolved once in
  // the constructor (MetricsRegistry pointers are stable), so the hot
  // path never does a registry lookup for the fixed stage keys. All null
  // when options_.tracer is null.
  obs::LatencyHistogram* stage_client_acquire_ = nullptr;
  obs::LatencyHistogram* stage_client_send_ = nullptr;
  obs::LatencyHistogram* stage_client_wait_ = nullptr;
  obs::LatencyHistogram* stage_client_unmarshal_ = nullptr;
  obs::LatencyHistogram* stage_server_queue_ = nullptr;
  obs::LatencyHistogram* stage_server_exec_ = nullptr;
  obs::LatencyHistogram* stage_server_reply_ = nullptr;
  obs::Counter* ctr_calls_ = nullptr;
  obs::Counter* ctr_call_errors_ = nullptr;
  obs::Counter* ctr_requests_ = nullptr;
  obs::Counter* ctr_request_errors_ = nullptr;

  // Scrape endpoint. The registry the pages render from is the tracer's
  // when one is attached; otherwise own_metrics_ gives the endpoint a
  // registry of its own (counters/gauges only, no latency histograms).
  obs::MetricsRegistry* ScrapeRegistry() const;
  void SyncStatsToMetrics() const;
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  std::unique_ptr<obs::PromHttpServer> metrics_server_;
  std::once_flag trace_flush_once_;
};

}  // namespace heidi::orb
