// The Orb facade: one instance per address space. Owns the bootstrap
// acceptor (Fig 5), the object table, the connection cache, the stub and
// skeleton caches, and the client-side invocation path (Fig 4).
//
// Everything the paper calls configurable is an OrbOptions knob:
//   protocol          — wire protocol by name ("text", "hiop", or any
//                       protocol registered with RegisterProtocol)
//   dispatch          — skeleton dispatch strategy (§2 optimization axis)
//   cache_connections — reuse one connection per endpoint (§3.1)
//   cache_stubs       — one stub per reference string (§3.1)
//   cache_skeletons   — keep lazily-created skeletons alive (§3.1)
//
// Threading model: ListenTcp starts an accept thread; each connection is
// served by its own handler thread (requests on one connection are
// processed in order). Client invocations may come from any thread;
// cached connections serialize exchanges internally. Implementation
// objects must therefore be prepared for concurrent calls arriving on
// different connections — or the application keeps one connection per
// client, as Heidi's non-preemptive model did.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/channel.h"
#include "net/tcp.h"
#include "orb/communicator.h"
#include "orb/dispatch.h"
#include "orb/interceptor.h"
#include "orb/objref.h"
#include "orb/registry.h"
#include "orb/skeleton.h"
#include "orb/stub.h"
#include "support/error.h"
#include "wire/protocol.h"
#include "wire/serializable.h"

namespace heidi::orb {

struct OrbOptions {
  std::string protocol = "text";
  DispatchStrategy dispatch = DispatchStrategy::kHash;
  bool cache_connections = true;
  bool cache_stubs = true;
  bool cache_skeletons = true;
  // Name under which this orb is reachable through the in-process
  // transport ("inproc:<name>:0" bootstrap URLs). Empty = not registered.
  std::string inproc_name;
  // Host written into exported references once ListenTcp is active.
  std::string advertise_host = "127.0.0.1";
};

// Counters exposed for benchmarks and tests (monotonic, best-effort).
struct OrbStats {
  uint64_t connections_opened = 0;
  uint64_t calls_sent = 0;
  uint64_t requests_served = 0;
  uint64_t skeletons_created = 0;
  uint64_t stubs_created = 0;
};

class Orb {
 public:
  explicit Orb(OrbOptions options = {});
  ~Orb();

  Orb(const Orb&) = delete;
  Orb& operator=(const Orb&) = delete;

  // --- server side ---------------------------------------------------------
  // Opens the bootstrap port (0 = ephemeral) and starts accepting. May be
  // called at most once.
  void ListenTcp(uint16_t port = 0);
  uint16_t TcpPort() const;

  // Serves a raw channel as if accepted on the bootstrap port (used by
  // the in-process transport and by tests).
  void ServeChannel(std::unique_ptr<net::ByteChannel> channel);

  // Registers `impl` and returns its reference; idempotent per object.
  // The caller keeps ownership of `impl`, which must outlive the export.
  // The skeleton is created lazily, on the first incoming call (§3.1).
  ObjectRef ExportObject(HdObject* impl, std::string_view repo_id);
  void UnexportObject(HdObject* impl);
  size_t ExportedCount() const;

  // Stops accepting, closes every connection, joins all threads.
  // Idempotent; also run by the destructor.
  void Shutdown();

  // --- client side ----------------------------------------------------------
  std::shared_ptr<HdStub> Resolve(std::string_view ref_string);
  std::shared_ptr<HdStub> Resolve(const ObjectRef& ref);

  template <typename T>
  std::shared_ptr<T> ResolveAs(std::string_view ref_string) {
    auto narrowed = std::dynamic_pointer_cast<T>(Resolve(ref_string));
    if (narrowed == nullptr) {
      throw RefError("reference does not narrow to the requested interface: " +
                     std::string(ref_string));
    }
    return narrowed;
  }

  // --- invocation plumbing (used by stubs / hand-written callers) ----------
  std::unique_ptr<wire::Call> NewRequest(const ObjectRef& target,
                                         std::string_view op, bool oneway);
  // Sends, waits, checks status. Throws DispatchError for remote system
  // errors, RemoteError for remote user exceptions, NetError on transport
  // failure. Returns the reply positioned at the first result.
  std::unique_ptr<wire::Call> Invoke(const ObjectRef& target,
                                     const wire::Call& request);
  void InvokeOneway(const ObjectRef& target, const wire::Call& request);

  // --- object parameter passing (§3.1) --------------------------------------
  // Writes an object parameter. incopy=true requests pass-by-value, taken
  // when the object implements HdSerializable (checked through the Heidi
  // dynamic type system); otherwise the object is exported and passed by
  // reference. `repo_id` is the declared parameter interface, used when
  // the dynamic type has no registered factory.
  void PutObject(wire::Call& call, HdObject* obj, std::string_view repo_id,
                 bool incopy = false);

  // Reads an object parameter: nullptr, a by-value copy, the local
  // implementation (when the reference points back into this orb), or a
  // stub. The returned holder keeps the object alive; callers hand the
  // raw pointer to implementation code for the duration of the call.
  std::shared_ptr<HdObject> GetObject(wire::Call& call);

  // --- interceptors (§5 filters/interceptors pattern) ----------------------
  // Interceptors run in registration order (Post* hooks in reverse). The
  // orb shares ownership; attach before traffic flows — attachment is
  // thread-safe, but hooks registered mid-call only affect later calls.
  void AddClientInterceptor(std::shared_ptr<ClientInterceptor> interceptor);
  void AddServerInterceptor(std::shared_ptr<ServerInterceptor> interceptor);

  // --- introspection ---------------------------------------------------------
  const OrbOptions& Options() const { return options_; }
  const wire::Protocol& Protocol() const { return *protocol_; }
  OrbStats Stats() const;
  // "tcp:127.0.0.1:1234" or "inproc:name:0"; throws if neither transport
  // is active.
  std::string MyEndpoint() const;

 private:
  struct ObjectEntry {
    HdObject* impl = nullptr;
    std::string repo_id;
    std::unique_ptr<HdSkeleton> skeleton;  // lazily created
  };

  std::shared_ptr<ObjectCommunicator> GetCommunicator(const ObjectRef& ref);
  void DropCachedCommunicator(const std::string& endpoint);
  std::unique_ptr<net::ByteChannel> ConnectTo(const ObjectRef& ref);
  void HandlerLoop(std::shared_ptr<ObjectCommunicator> comm);
  std::unique_ptr<wire::Call> HandleRequest(wire::Call& request);
  bool IsLocalEndpoint(const ObjectRef& ref) const;

  OrbOptions options_;
  const wire::Protocol* protocol_;

  // Server state.
  std::unique_ptr<net::TcpAcceptor> acceptor_;
  std::thread accept_thread_;
  mutable std::mutex server_mutex_;
  bool shutting_down_ = false;
  std::vector<std::thread> handler_threads_;
  std::vector<std::shared_ptr<ObjectCommunicator>> server_comms_;

  // Object table.
  mutable std::mutex table_mutex_;
  std::map<uint64_t, ObjectEntry> objects_;
  std::map<const HdObject*, uint64_t> object_ids_;
  uint64_t next_object_id_ = 1000;

  // Interceptors (copy-on-read under client_mutex_ via shared vectors).
  void RunPreInvoke(const ObjectRef& target, const wire::Call& request);
  void RunPostInvoke(const ObjectRef& target, const wire::Call& reply);
  std::vector<std::shared_ptr<ClientInterceptor>> client_interceptors_;
  std::vector<std::shared_ptr<ServerInterceptor>> server_interceptors_;
  mutable std::mutex interceptor_mutex_;

  // Client state.
  std::mutex client_mutex_;
  std::map<std::string, std::shared_ptr<ObjectCommunicator>> connections_;
  std::map<std::string, std::shared_ptr<HdStub>> stubs_;
  std::atomic<uint64_t> next_call_id_{1};

  // Stats.
  std::atomic<uint64_t> connections_opened_{0};
  std::atomic<uint64_t> calls_sent_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> skeletons_created_{0};
  std::atomic<uint64_t> stubs_created_{0};
};

}  // namespace heidi::orb
