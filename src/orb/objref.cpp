#include "orb/objref.h"

#include <cstdlib>

#include "support/error.h"
#include "support/strings.h"

namespace heidi::orb {

std::string ObjectRef::Endpoint() const {
  return protocol + ":" + host + ":" + std::to_string(port);
}

std::string ObjectRef::ToString() const {
  if (IsNil()) return "@nil";
  return "@" + Endpoint() + "#" + std::to_string(object_id) + "#" + repo_id;
}

ObjectRef ObjectRef::Parse(std::string_view text) {
  if (text.empty() || text == "@nil") return Nil();
  if (text[0] != '@') {
    throw RefError("object reference must start with '@': '" +
                   std::string(text) + "'");
  }
  auto parts = str::SplitN(text.substr(1), '#', 3);
  if (parts.size() != 3) {
    throw RefError("object reference needs url#id#type: '" +
                   std::string(text) + "'");
  }
  auto url = str::Split(parts[0], ':');
  if (url.size() != 3 || url[0].empty() || url[1].empty()) {
    throw RefError("malformed bootstrap URL '" + parts[0] + "'");
  }
  ObjectRef ref;
  ref.protocol = url[0];
  ref.host = url[1];
  char* end = nullptr;
  unsigned long port = std::strtoul(url[2].c_str(), &end, 10);
  if (end == url[2].c_str() || *end != '\0' || port > 65535) {
    throw RefError("malformed port '" + url[2] + "'");
  }
  ref.port = static_cast<uint16_t>(port);
  end = nullptr;
  ref.object_id = std::strtoull(parts[1].c_str(), &end, 10);
  if (end == parts[1].c_str() || *end != '\0') {
    throw RefError("malformed object id '" + parts[1] + "'");
  }
  if (parts[2].empty()) {
    throw RefError("object reference missing type information");
  }
  ref.repo_id = parts[2];
  // Parsed refs are the ones calls get addressed at; intern now, while
  // the ref is still private to this thread.
  ref.Intern();
  return ref;
}

}  // namespace heidi::orb
