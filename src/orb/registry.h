// Interface registry: maps repository ids to the factories generated (or
// hand-written) code provides — how the ORB creates "the correct stub and
// skeleton" from the type information in an object reference (§3.1).
//
// Generated code registers its interface with a static RegisterInterface
// object:
//
//   static heidi::orb::RegisterInterface kRegisterA{
//       "IDL:Heidi/A:1.0",
//       [](Orb& orb, HdObject* impl) { return std::make_unique<A_skel>(orb, impl); },
//       [](Orb& orb, ObjectRef ref)  { return std::make_shared<A_stub>(orb, std::move(ref)); },
//       nullptr /* no pass-by-value factory */};
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "orb/objref.h"
#include "support/error.h"
#include "support/typeinfo.h"
#include "wire/call.h"

namespace heidi::orb {

class Orb;
class HdSkeleton;
class HdStub;

using SkelFactory =
    std::function<std::unique_ptr<HdSkeleton>(Orb&, HdObject*)>;
using StubFactory =
    std::function<std::shared_ptr<HdStub>(Orb&, ObjectRef)>;
// Default-constructs an instance for pass-by-value reception; the ORB then
// calls UnmarshalState on it. Null for non-serializable interfaces.
using ValueFactory = std::function<std::shared_ptr<HdObject>()>;

struct InterfaceInfo {
  std::string repo_id;
  SkelFactory make_skel;
  StubFactory make_stub;
  ValueFactory make_value;
};

class InterfaceRegistry {
 public:
  static InterfaceRegistry& Instance();

  // First registration of a repo id wins (mirrors HdTypeRegistry).
  void Register(InterfaceInfo info);
  // nullptr if unknown.
  const InterfaceInfo* Find(std::string_view repo_id) const;
  std::vector<std::string> RepoIds() const;

 private:
  InterfaceRegistry() = default;
  std::vector<InterfaceInfo> infos_;
};

// Static-initialization helper.
struct RegisterInterface {
  RegisterInterface(std::string repo_id, SkelFactory skel, StubFactory stub,
                    ValueFactory value = nullptr) {
    InterfaceRegistry::Instance().Register(
        {std::move(repo_id), std::move(skel), std::move(stub),
         std::move(value)});
  }
};

// --- typed user exceptions ---------------------------------------------------
//
// A skeleton that catches a raises-declared exception marshals its fields
// into the reply payload and throws UserExceptionPending; the ORB turns
// that into a user-exception reply whose error text is the exception's
// repository id. On the client, Orb::Invoke looks the id up here and runs
// the registered thrower, which unmarshals the fields and throws the
// generated exception class. Unknown ids degrade to plain RemoteError —
// typed exceptions are an upgrade, not a protocol change.

// Signals "reply payload holds a marshaled user exception" inside the
// server dispatch path. Generated code throws it; applications never see
// it.
class UserExceptionPending : public HdError {
 public:
  explicit UserExceptionPending(std::string repo_id)
      : HdError("user exception " + repo_id), repo_id_(std::move(repo_id)) {}
  const std::string& RepoId() const { return repo_id_; }

 private:
  std::string repo_id_;
};

// Unmarshals exception fields from the reply and throws the typed
// exception. Must not return normally.
using ExceptionThrower = std::function<void(wire::Call& reply)>;

class ExceptionRegistry {
 public:
  static ExceptionRegistry& Instance();
  // First registration of a repo id wins.
  void Register(std::string repo_id, ExceptionThrower thrower);
  // nullptr if unknown.
  const ExceptionThrower* Find(std::string_view repo_id) const;

 private:
  ExceptionRegistry() = default;
  std::vector<std::pair<std::string, ExceptionThrower>> throwers_;
};

struct RegisterException {
  RegisterException(std::string repo_id, ExceptionThrower thrower) {
    ExceptionRegistry::Instance().Register(std::move(repo_id),
                                           std::move(thrower));
  }
};

}  // namespace heidi::orb
