#include "orb/communicator.h"

#include "support/error.h"

namespace heidi::orb {

ObjectCommunicator::ObjectCommunicator(
    std::unique_ptr<net::ByteChannel> channel, const wire::Protocol* protocol)
    : channel_(std::move(channel)),
      reader_(*channel_),
      protocol_(protocol) {}

ObjectCommunicator::~ObjectCommunicator() { Close(); }

std::unique_ptr<wire::Call> ObjectCommunicator::Invoke(
    const wire::Call& request) {
  std::lock_guard lock(exchange_mutex_);
  protocol_->WriteCall(*channel_, request);
  std::unique_ptr<wire::Call> reply = protocol_->ReadCall(reader_);
  if (reply == nullptr) {
    throw NetError("connection to " + channel_->PeerName() +
                   " closed while awaiting reply");
  }
  if (reply->Kind() != wire::CallKind::kReply) {
    throw MarshalError("expected a reply, got a request frame");
  }
  if (reply->CallId() != request.CallId()) {
    throw MarshalError("reply call id " + std::to_string(reply->CallId()) +
                       " does not match request " +
                       std::to_string(request.CallId()));
  }
  return reply;
}

void ObjectCommunicator::Send(const wire::Call& call) {
  std::lock_guard lock(exchange_mutex_);
  protocol_->WriteCall(*channel_, call);
}

std::unique_ptr<wire::Call> ObjectCommunicator::ReadCall() {
  return protocol_->ReadCall(reader_);
}

void ObjectCommunicator::Close() { channel_->Close(); }

}  // namespace heidi::orb
