#include "orb/communicator.h"

#include "support/error.h"

namespace heidi::orb {

ObjectCommunicator::ObjectCommunicator(
    std::unique_ptr<net::ByteChannel> channel, const wire::Protocol* protocol,
    MuxCounters* counters)
    : channel_(std::move(channel)),
      reader_(*channel_),
      protocol_(protocol),
      mux_(std::make_unique<CallMux>(*channel_, reader_, *protocol_,
                                     counters)) {}

ObjectCommunicator::~ObjectCommunicator() { Close(); }

std::unique_ptr<wire::Call> ObjectCommunicator::Invoke(
    const wire::Call& request, int timeout_ms) {
  std::future<std::unique_ptr<wire::Call>> future = mux_->Submit(request);
  return mux_->Await(request.CallId(), future, timeout_ms);
}

std::future<std::unique_ptr<wire::Call>> ObjectCommunicator::SubmitCall(
    const wire::Call& request) {
  return mux_->Submit(request);
}

std::unique_ptr<wire::Call> ObjectCommunicator::AwaitReply(
    uint64_t call_id, std::future<std::unique_ptr<wire::Call>>& future,
    int timeout_ms) {
  return mux_->Await(call_id, future, timeout_ms);
}

void ObjectCommunicator::Send(const wire::Call& call) {
  mux_->SendOneway(call);
}

std::unique_ptr<wire::Call> ObjectCommunicator::ReadCall() {
  return protocol_->ReadCall(reader_);
}

void ObjectCommunicator::Close() {
  channel_->Close();
  mux_->Stop();  // demux thread (if started) exits on the closed channel
}

}  // namespace heidi::orb
