#include "orb/tracing.h"

#include <utility>

#include "support/error.h"
#include "support/logging.h"

namespace heidi::orb {

TracingClientInterceptor::TracingClientInterceptor(
    std::shared_ptr<obs::Tracer> tracer)
    : tracer_(std::move(tracer)) {
  if (tracer_ == nullptr) {
    throw HdError("TracingClientInterceptor needs a tracer");
  }
}

void TracingClientInterceptor::PreInvoke(const ObjectRef& target,
                                         const wire::Call& request) {
  tracer_->Metrics()
      .GetCounter("icpt.req." + request.Operation())
      ->Add(1);
  if (log::GetLevel() <= log::Level::kDebug) {
    HD_LOG_DEBUG << "invoke " << request.Operation() << " -> "
                 << target.Endpoint() << " trace="
                 << request.Trace().ToString();
  }
}

void TracingClientInterceptor::PostInvoke(const ObjectRef& target,
                                          const wire::Call& reply) {
  tracer_->Metrics().GetCounter("icpt.rep")->Add(1);
  if (reply.Status() != wire::CallStatus::kOk) {
    tracer_->Metrics().GetCounter("icpt.rep.errors")->Add(1);
  }
  if (log::GetLevel() <= log::Level::kDebug) {
    HD_LOG_DEBUG << "reply from " << target.Endpoint() << " status="
                 << static_cast<int>(reply.Status()) << " trace="
                 << reply.Trace().ToString();
  }
}

TracingServerInterceptor::TracingServerInterceptor(
    std::shared_ptr<obs::Tracer> tracer)
    : tracer_(std::move(tracer)) {
  if (tracer_ == nullptr) {
    throw HdError("TracingServerInterceptor needs a tracer");
  }
}

void TracingServerInterceptor::PreDispatch(const wire::Call& request) {
  tracer_->Metrics()
      .GetCounter("icpt.dispatch." + request.Operation())
      ->Add(1);
  if (log::GetLevel() <= log::Level::kDebug) {
    HD_LOG_DEBUG << "dispatch " << request.Operation() << " trace="
                 << request.Trace().ToString();
  }
}

void TracingServerInterceptor::PostDispatch(const wire::Call& request,
                                            const wire::Call& reply) {
  if (reply.Status() != wire::CallStatus::kOk) {
    tracer_->Metrics().GetCounter("icpt.dispatch.errors")->Add(1);
    if (log::GetLevel() <= log::Level::kDebug) {
      HD_LOG_DEBUG << "dispatch " << request.Operation() << " failed: "
                   << reply.ErrorText();
    }
  }
}

}  // namespace heidi::orb
