// Interceptors — the §5 customization pattern the paper compares against
// (Orbix "filters that are triggered in the dispatch path", Visibroker
// "interceptors"): hooks on the invocation and dispatch paths that a
// deployment attaches without touching generated code or the ORB core.
//
// Client side: PreInvoke runs after the request is marshaled, before it
// is sent; PostInvoke runs after the reply arrives (including error
// replies), before status checking. Server side: PreDispatch runs after
// the request is read, before the skeleton; PostDispatch runs after the
// skeleton filled the reply.
//
// Throwing from PreInvoke aborts the call at the client; throwing from
// PreDispatch rejects the request (the client sees a remote error) — the
// filter-style admission control Orbix used them for. Interceptors run
// in registration order (Post* in reverse order), may be attached from
// any thread, and must be thread-safe themselves: calls on different
// connections run them concurrently.
#pragma once

#include <string>

#include "orb/objref.h"
#include "wire/call.h"

namespace heidi::orb {

class ClientInterceptor {
 public:
  virtual ~ClientInterceptor() = default;

  // `request` is fully marshaled; header fields may be inspected. Throw
  // to abort the invocation before anything is sent.
  virtual void PreInvoke(const ObjectRef& target, const wire::Call& request) {
    (void)target;
    (void)request;
  }

  // Runs for every reply, including error replies; for oneway calls it
  // does not run (there is no reply).
  virtual void PostInvoke(const ObjectRef& target, const wire::Call& reply) {
    (void)target;
    (void)reply;
  }
};

class ServerInterceptor {
 public:
  virtual ~ServerInterceptor() = default;

  // Throw to reject the request: the skeleton never runs and the client
  // receives the exception text as a remote error.
  virtual void PreDispatch(const wire::Call& request) { (void)request; }

  // Observes the reply about to be sent (or dropped, for oneway).
  virtual void PostDispatch(const wire::Call& request,
                            const wire::Call& reply) {
    (void)request;
    (void)reply;
  }
};

}  // namespace heidi::orb
