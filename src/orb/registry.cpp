#include "orb/registry.h"

#include <mutex>

namespace heidi::orb {

namespace {
std::mutex& RegistryMutex() {
  static std::mutex m;
  return m;
}
}  // namespace

InterfaceRegistry& InterfaceRegistry::Instance() {
  static InterfaceRegistry registry;
  return registry;
}

void InterfaceRegistry::Register(InterfaceInfo info) {
  std::lock_guard lock(RegistryMutex());
  for (const InterfaceInfo& existing : infos_) {
    if (existing.repo_id == info.repo_id) return;
  }
  infos_.push_back(std::move(info));
}

const InterfaceInfo* InterfaceRegistry::Find(std::string_view repo_id) const {
  std::lock_guard lock(RegistryMutex());
  for (const InterfaceInfo& info : infos_) {
    if (info.repo_id == repo_id) return &info;
  }
  return nullptr;
}

ExceptionRegistry& ExceptionRegistry::Instance() {
  static ExceptionRegistry registry;
  return registry;
}

void ExceptionRegistry::Register(std::string repo_id,
                                 ExceptionThrower thrower) {
  std::lock_guard lock(RegistryMutex());
  for (const auto& [existing, fn] : throwers_) {
    if (existing == repo_id) return;
  }
  throwers_.emplace_back(std::move(repo_id), std::move(thrower));
}

const ExceptionThrower* ExceptionRegistry::Find(
    std::string_view repo_id) const {
  std::lock_guard lock(RegistryMutex());
  for (const auto& [existing, fn] : throwers_) {
    if (existing == repo_id) return &fn;
  }
  return nullptr;
}

std::vector<std::string> InterfaceRegistry::RepoIds() const {
  std::lock_guard lock(RegistryMutex());
  std::vector<std::string> out;
  for (const InterfaceInfo& info : infos_) out.push_back(info.repo_id);
  return out;
}

}  // namespace heidi::orb
