// Heidi dynamic type system.
//
// The paper relies on Heidi's home-grown dynamic type checking in two
// places: deciding whether an implementation object supports
// HdSerializable (so `incopy` parameters can be passed by value), and
// selecting the right stub/skeleton for an object reference's repository
// id. This module reproduces that substrate: every Heidi object derives
// from HdObject and exposes an HdTypeInfo that records its repository id
// and its parent types; IsA() walks the parent graph (multiple inheritance
// supported). A process-wide registry maps repository ids back to types so
// the ORB can build stubs/skeletons from the type name carried in an
// object reference.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace heidi {

class HdTypeInfo {
 public:
  // `repo_id` is an IDL repository id such as "IDL:Heidi/A:1.0";
  // `parents` lists the type infos of all direct bases (may be empty).
  HdTypeInfo(std::string repo_id, std::vector<const HdTypeInfo*> parents);

  const std::string& RepoId() const { return repo_id_; }
  const std::vector<const HdTypeInfo*>& Parents() const { return parents_; }

  // True if this type is `other` or transitively derives from it.
  bool IsA(const HdTypeInfo& other) const;
  // Same check by repository id.
  bool IsA(std::string_view repo_id) const;

  // Local (unscoped) name, e.g. "A" for "IDL:Heidi/A:1.0".
  std::string LocalName() const;

 private:
  std::string repo_id_;
  std::vector<const HdTypeInfo*> parents_;
};

// Process-wide repository-id -> HdTypeInfo registry. HdTypeInfo instances
// are expected to have static storage duration (the HD_*_TYPE macros below
// arrange this); registration happens during static initialization.
class HdTypeRegistry {
 public:
  static HdTypeRegistry& Instance();

  // Registers `info`; re-registering the same repo id is idempotent if the
  // pointer is identical, otherwise the first registration wins.
  void Register(const HdTypeInfo* info);
  // Returns nullptr if the repo id is unknown.
  const HdTypeInfo* Find(std::string_view repo_id) const;
  size_t Size() const;

 private:
  HdTypeRegistry() = default;
  mutable std::vector<const HdTypeInfo*> types_;
};

// Root of all dynamically typed Heidi objects.
class HdObject {
 public:
  virtual ~HdObject() = default;

  // The most-derived dynamic type of this object.
  virtual const HdTypeInfo& DynamicType() const;

  // Dynamic IsA check against a repository id.
  bool IsA(std::string_view repo_id) const {
    return DynamicType().IsA(repo_id);
  }

  // Static type info for HdObject itself ("IDL:Heidi/Object:1.0").
  static const HdTypeInfo& TypeInfo();
};

// Declares static type info inside an *abstract interface* class body
// (generated interface classes carry TypeInfo but leave DynamicType to
// the concrete implementation / stub classes).
#define HD_DECLARE_INTERFACE_TYPE() \
  static const ::heidi::HdTypeInfo& TypeInfo()

#define HD_DEFINE_INTERFACE_TYPE(Cls, repoid, ...)                  \
  const ::heidi::HdTypeInfo& Cls::TypeInfo() {                      \
    static const ::heidi::HdTypeInfo info{(repoid), {__VA_ARGS__}}; \
    static const bool registered = [] {                             \
      ::heidi::HdTypeRegistry::Instance().Register(&info);          \
      return true;                                                  \
    }();                                                            \
    (void)registered;                                               \
    return info;                                                    \
  }

// Declares the dynamic-type hooks inside a class body.
#define HD_DECLARE_TYPE()                                  \
  const ::heidi::HdTypeInfo& DynamicType() const override; \
  static const ::heidi::HdTypeInfo& TypeInfo()

// Defines the hooks for `Cls` with repository id `repoid` and the given
// parent type-info expressions (e.g. &Base::TypeInfo()).
#define HD_DEFINE_TYPE(Cls, repoid, ...)                             \
  const ::heidi::HdTypeInfo& Cls::TypeInfo() {                       \
    static const ::heidi::HdTypeInfo info{(repoid), {__VA_ARGS__}};  \
    static const bool registered = [] {                              \
      ::heidi::HdTypeRegistry::Instance().Register(&info);           \
      return true;                                                   \
    }();                                                             \
    (void)registered;                                                \
    return info;                                                     \
  }                                                                  \
  const ::heidi::HdTypeInfo& Cls::DynamicType() const {              \
    return Cls::TypeInfo();                                          \
  }

}  // namespace heidi
