// HdList / HdListIterator — the Heidi legacy sequence types.
//
// The HeidiRMI mapping maps IDL `sequence<T>` to HdList<T> (Fig 3:
// `typedef HdList<HdS> HdSSequence`). Heidi code iterates with an explicit
// HdListIterator, so both the legacy iteration protocol and standard C++
// range iteration are provided. Internally HdList is a std::vector with the
// historical Heidi surface API preserved.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <utility>
#include <vector>

namespace heidi {

template <typename T>
class HdListIterator;

template <typename T>
class HdList {
 public:
  HdList() = default;
  explicit HdList(size_t n) : items_(n) {}
  HdList(std::initializer_list<T> init) : items_(init) {}

  // Legacy Heidi API ---------------------------------------------------
  void Append(T item) { items_.push_back(std::move(item)); }
  void Prepend(T item) { items_.insert(items_.begin(), std::move(item)); }
  // Removes the first element equal to `item`; returns whether one existed.
  bool Remove(const T& item) {
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (*it == item) {
        items_.erase(it);
        return true;
      }
    }
    return false;
  }
  size_t Size() const { return items_.size(); }
  bool IsEmpty() const { return items_.empty(); }
  void Clear() { items_.clear(); }
  T& At(size_t i) {
    if (i >= items_.size()) throw std::out_of_range("HdList::At");
    return items_[i];
  }
  const T& At(size_t i) const {
    if (i >= items_.size()) throw std::out_of_range("HdList::At");
    return items_[i];
  }

  T& operator[](size_t i) { return items_[i]; }
  const T& operator[](size_t i) const { return items_[i]; }

  friend bool operator==(const HdList& a, const HdList& b) {
    return a.items_ == b.items_;
  }
  friend bool operator!=(const HdList& a, const HdList& b) {
    return !(a == b);
  }

  // Standard C++ iteration ---------------------------------------------
  auto begin() { return items_.begin(); }
  auto end() { return items_.end(); }
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  friend class HdListIterator<T>;
  std::vector<T> items_;
};

// Legacy explicit iterator:
//   for (HdListIterator<int> it(list); it.More(); it.Next()) use(it.Item());
template <typename T>
class HdListIterator {
 public:
  explicit HdListIterator(const HdList<T>& list) : list_(&list), pos_(0) {}

  bool More() const { return pos_ < list_->items_.size(); }
  void Next() { ++pos_; }
  const T& Item() const { return list_->items_[pos_]; }
  void Reset() { pos_ = 0; }

 private:
  const HdList<T>* list_;
  size_t pos_;
};

}  // namespace heidi
