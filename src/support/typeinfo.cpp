#include "support/typeinfo.h"

#include <mutex>

namespace heidi {

HdTypeInfo::HdTypeInfo(std::string repo_id,
                       std::vector<const HdTypeInfo*> parents)
    : repo_id_(std::move(repo_id)), parents_(std::move(parents)) {}

bool HdTypeInfo::IsA(const HdTypeInfo& other) const {
  if (this == &other || repo_id_ == other.repo_id_) return true;
  for (const HdTypeInfo* p : parents_) {
    if (p != nullptr && p->IsA(other)) return true;
  }
  return false;
}

bool HdTypeInfo::IsA(std::string_view repo_id) const {
  if (repo_id_ == repo_id) return true;
  for (const HdTypeInfo* p : parents_) {
    if (p != nullptr && p->IsA(repo_id)) return true;
  }
  return false;
}

std::string HdTypeInfo::LocalName() const {
  // "IDL:Heidi/A:1.0" -> "A". Fall back to the whole id for non-IDL ids.
  size_t colon = repo_id_.rfind(':');
  std::string_view body = repo_id_;
  if (colon != std::string::npos && colon > 4) {
    body = std::string_view(repo_id_).substr(0, colon);
  }
  size_t slash = body.rfind('/');
  if (slash != std::string_view::npos) body = body.substr(slash + 1);
  if (body.substr(0, 4) == "IDL:") body = body.substr(4);
  return std::string(body);
}

namespace {
std::mutex& RegistryMutex() {
  static std::mutex m;
  return m;
}
}  // namespace

HdTypeRegistry& HdTypeRegistry::Instance() {
  static HdTypeRegistry registry;
  return registry;
}

void HdTypeRegistry::Register(const HdTypeInfo* info) {
  if (info == nullptr) return;
  std::lock_guard lock(RegistryMutex());
  for (const HdTypeInfo* t : types_) {
    if (t->RepoId() == info->RepoId()) return;  // first registration wins
  }
  types_.push_back(info);
}

const HdTypeInfo* HdTypeRegistry::Find(std::string_view repo_id) const {
  std::lock_guard lock(RegistryMutex());
  for (const HdTypeInfo* t : types_) {
    if (t->RepoId() == repo_id) return t;
  }
  return nullptr;
}

size_t HdTypeRegistry::Size() const {
  std::lock_guard lock(RegistryMutex());
  return types_.size();
}

const HdTypeInfo& HdObject::TypeInfo() {
  static const HdTypeInfo info{"IDL:Heidi/Object:1.0", {}};
  static const bool registered = [] {
    HdTypeRegistry::Instance().Register(&info);
    return true;
  }();
  (void)registered;
  return info;
}

const HdTypeInfo& HdObject::DynamicType() const { return HdObject::TypeInfo(); }

}  // namespace heidi
