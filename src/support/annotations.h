// Static-safety annotations for the view-lifetime contract (DESIGN.md
// §4g). The runtime hands out non-owning views over dispatch-scoped
// storage (the retained request frame, the dispatch arena); these macros
// teach the compiler the lifetime rules the runtime otherwise only
// enforces with debug poisoning, so an escaping view is a *compile-time*
// diagnostic under clang (-Wdangling, -Wreturn-stack-address,
// -Wdangling-gsl) instead of a runtime 0xDD crash.
//
// Every macro degrades to nothing on compilers without the underlying
// attribute — GCC builds see identical signatures and zero -Wattributes
// noise. The negative-compilation suite (tests/static/) proves the
// clang diagnostics actually fire; cases that need a clang-only
// attribute are skipped on other toolchains.
#pragma once

#if defined(__has_cpp_attribute)

// Binds the returned reference/view to the lifetime of the annotated
// parameter — or, placed after a member function's parameter list, to
// the object itself. `Arena::CopyString` returns a view into the arena:
// annotating `this` makes `return local_arena.CopyString(s);` a
// -Wreturn-stack-address error under clang.
#if __has_cpp_attribute(clang::lifetimebound)
#define HEIDI_LIFETIMEBOUND [[clang::lifetimebound]]
#endif

// Marks a hand-written class type as a non-owning view for clang's
// statement-local dangling analysis (-Wdangling-gsl). HdStringView and
// HdBytesView inherit the behavior for free as std::string_view
// aliases; this macro exists for future view wrappers that are not.
#if __has_cpp_attribute(gsl::Pointer)
#define HEIDI_VIEW_TYPE [[gsl::Pointer(char)]]
#endif

// Tags a generated view-mode parameter for external tooling: the value
// is a window over the request frame and must not be stored past the
// dispatch. clang-tidy / clang-query checks match on the annotation
// string; the compiler itself ignores it.
#if __has_cpp_attribute(clang::annotate)
#define HEIDI_VIEW_PARAM [[clang::annotate("heidi::view_param")]]
#endif

#endif  // defined(__has_cpp_attribute)

#ifndef HEIDI_LIFETIMEBOUND
#define HEIDI_LIFETIMEBOUND
#endif
#ifndef HEIDI_VIEW_TYPE
#define HEIDI_VIEW_TYPE
#endif
#ifndef HEIDI_VIEW_PARAM
#define HEIDI_VIEW_PARAM
#endif

// Discarding these return values is always a bug (a dropped arena
// handle, an ignored view that cost a retain): plain C++17 attribute,
// active on every compiler. The message parameter keeps the diagnostic
// actionable at the call site.
#define HEIDI_NODISCARD(msg) [[nodiscard(msg)]]
