#include "support/bytes.h"

#include <cstring>
#include <thread>

namespace heidi::bytes {

IoBuf::IoBuf(size_t capacity)
    : data_(new char[capacity]), capacity_(capacity), pool_(nullptr) {}

IoBuf::~IoBuf() { delete[] data_; }

void IoBuf::Release() {
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (pool_ != nullptr) {
      pool_->Recycle(this);
    } else {
      delete this;
    }
  }
}

IoBufPool::~IoBufPool() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (IoBuf* buf : shard.free) delete buf;
    shard.free.clear();
  }
}

IoBufPool::Shard& IoBufPool::HomeShard() {
  // Thread-affine shard: a connection's demux/handler thread keeps
  // hitting the slabs it just released — per-connection reuse with no
  // per-connection bookkeeping.
  size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % kShards];
}

IoBuf* IoBufPool::PopFrom(Shard& shard) {
  std::lock_guard lock(shard.mutex);
  if (shard.free.empty()) return nullptr;
  IoBuf* buf = shard.free.back();
  shard.free.pop_back();
  return buf;
}

IoBufPtr IoBufPool::Get(size_t min_capacity) {
  if (min_capacity <= kSlabBytes) {
    size_t home =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
    IoBuf* buf = PopFrom(shards_[home]);
    // Steal before allocating: a producer-consumer flow (one thread
    // Gets, another Releases) would otherwise drain the getter's shard
    // forever while the releaser's shard sits at its cap.
    for (size_t i = 1; buf == nullptr && i < kShards; ++i) {
      buf = PopFrom(shards_[(home + i) % kShards]);
    }
    if (buf != nullptr) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (obs::Counter* c = ctr_hits_.load(std::memory_order_relaxed)) {
        c->Add();
      }
      outstanding_bufs_.fetch_add(1, std::memory_order_relaxed);
      outstanding_bytes_.fetch_add(buf->Capacity(), std::memory_order_relaxed);
      NotePressure();
      buf->size_ = 0;
      buf->refs_.store(1, std::memory_order_relaxed);
      return IoBufPtr::Adopt(buf);
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Counter* c = ctr_misses_.load(std::memory_order_relaxed)) {
    c->Add();
  }
  IoBuf* buf = new IoBuf(min_capacity <= kSlabBytes ? kSlabBytes
                                                    : min_capacity);
  buf->pool_ = this;
  outstanding_bufs_.fetch_add(1, std::memory_order_relaxed);
  outstanding_bytes_.fetch_add(buf->Capacity(), std::memory_order_relaxed);
  NotePressure();
  return IoBufPtr::Adopt(buf);
}

void IoBufPool::NotePressure() {
  PressureHook hook = pressure_hook_.load(std::memory_order_relaxed);
  if (hook == nullptr) return;
  uint64_t bytes = outstanding_bytes_.load(std::memory_order_relaxed);
  // Fire only when a new high-water mark crosses a 256 KiB step: the CAS
  // loop makes each step report once process-wide, so the hook's cost is
  // amortized to zero on a steady workload.
  constexpr uint64_t kStep = 256 * 1024;
  uint64_t seen = outstanding_highwater_.load(std::memory_order_relaxed);
  while (bytes > seen) {
    if (outstanding_highwater_.compare_exchange_weak(
            seen, bytes, std::memory_order_relaxed)) {
      if (bytes / kStep > seen / kStep) {
        hook(bytes, outstanding_bufs_.load(std::memory_order_relaxed));
      }
      return;
    }
  }
}

void IoBufPool::Recycle(IoBuf* buf) {
  outstanding_bufs_.fetch_sub(1, std::memory_order_relaxed);
  outstanding_bytes_.fetch_sub(buf->Capacity(), std::memory_order_relaxed);
  if (buf->Capacity() == kSlabBytes) {
    Shard& shard = HomeShard();
    std::unique_lock lock(shard.mutex);
    if (shard.free.size() < kMaxFreePerShard) {
      shard.free.push_back(buf);
      lock.unlock();
      recycles_.fetch_add(1, std::memory_order_relaxed);
      if (obs::Counter* c = ctr_recycles_.load(std::memory_order_relaxed)) {
        c->Add();
      }
      return;
    }
  }
  delete buf;  // oversize one-off, or the shard is full
}

IoBufPool::Stats IoBufPool::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.recycles = recycles_.load(std::memory_order_relaxed);
  stats.outstanding_bufs = outstanding_bufs_.load(std::memory_order_relaxed);
  stats.outstanding_bytes = outstanding_bytes_.load(std::memory_order_relaxed);
  return stats;
}

void IoBufPool::BindCounters(obs::Counter* hits, obs::Counter* misses,
                             obs::Counter* recycles) {
  ctr_hits_.store(hits, std::memory_order_relaxed);
  ctr_misses_.store(misses, std::memory_order_relaxed);
  ctr_recycles_.store(recycles, std::memory_order_relaxed);
}

IoBufPool& IoBufPool::Global() {
  static IoBufPool* pool = new IoBufPool;  // immortal, see header
  return *pool;
}

void BufferChain::Clear() {
  slices_.clear();
  size_ = 0;
  tail_writable_ = false;
}

IoBuf* BufferChain::WritableTail() {
  if (tail_writable_) {
    IoBuf* tail = slices_.back().buf.get();
    if (tail->Remaining() > 0) return tail;
  }
  IoBufPool& pool = pool_ != nullptr ? *pool_ : IoBufPool::Global();
  IoBufPtr fresh = pool.Get();
  IoBuf* raw = fresh.get();
  slices_.push_back(BufSlice{std::move(fresh), 0, 0});
  tail_writable_ = true;
  return raw;
}

void BufferChain::AppendSlow(const char* src, size_t n) {
  while (n > 0) {
    IoBuf* tail = WritableTail();
    size_t take = std::min(n, tail->Remaining());
    std::memcpy(tail->WritePtr(), src, take);
    tail->Advance(take);
    slices_.back().length += static_cast<uint32_t>(take);
    size_ += take;
    src += take;
    n -= take;
  }
}

void BufferChain::AppendZeros(size_t n) {
  while (n > 0) {
    IoBuf* tail = WritableTail();
    size_t take = std::min(n, tail->Remaining());
    std::memset(tail->WritePtr(), 0, take);
    tail->Advance(take);
    slices_.back().length += static_cast<uint32_t>(take);
    size_ += take;
    n -= take;
  }
}

void BufferChain::AppendChain(const BufferChain& other) {
  for (const BufSlice& slice : other.slices_) {
    if (slice.length == 0) continue;
    slices_.push_back(slice);  // refcount bump, zero bytes copied
    size_ += slice.length;
  }
  tail_writable_ = false;
}

void BufferChain::AppendSlice(const IoBufPtr& buf, size_t offset,
                              size_t length) {
  if (length == 0) return;
  slices_.push_back(BufSlice{buf, static_cast<uint32_t>(offset),
                             static_cast<uint32_t>(length)});
  size_ += length;
  tail_writable_ = false;
}

void BufferChain::SeedWritableTail(IoBufPtr slab) {
  if (!slab || slab->Remaining() == 0) return;
  slices_.push_back(
      BufSlice{std::move(slab), 0, 0});
  slices_.back().offset = static_cast<uint32_t>(slices_.back().buf->Size());
  tail_writable_ = true;
}

void BufferChain::CopyTo(char* out) const {
  for (const BufSlice& slice : slices_) {
    std::memcpy(out, slice.Data(), slice.length);
    out += slice.length;
  }
}

std::string BufferChain::ToString() const {
  std::string out;
  out.resize(size_);
  CopyTo(out.data());
  return out;
}

}  // namespace heidi::bytes
