// Pooled, reference-counted I/O buffers — the zero-copy marshaling
// substrate. The paper's Call abstraction hides the wire representation;
// this layer makes that abstraction cheap: protocols marshal into a
// BufferChain of pooled IoBuf slabs, the channel scatter-gathers the
// chain onto the wire (net::ByteChannel::WritevAll), and inbound frames
// are read into one pooled slab that readable calls retain and hand out
// as std::string_views — a call's bytes are written once and never
// copied again.
//
// Ownership model: an IoBuf is intrusively reference-counted; BufSlice /
// BufferChain / readable Calls hold IoBufPtr references, and the slab
// returns to its pool's free list when the last reference drops. The
// pool is sharded by thread (each demux / handler thread leans on its
// own shard), so a connection's read loop keeps recycling the same slabs
// — per-connection slab reuse without per-connection state.
//
// Thread-safety: IoBufPool is fully thread-safe; a BufferChain (like the
// Call that owns it) is a single-owner object.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "support/annotations.h"

namespace heidi::bytes {

class IoBufPool;
class IoBufPtr;

// One slab of wire bytes. `Size()` is the write high-water mark: the
// exclusive owner of a freshly pooled slab appends at WritePtr() and
// Advances; once slices of the slab are shared (BufferChain::AppendChain,
// a readable Call retaining its frame) the written region is immutable —
// sharers only ever read [0, their slice bounds).
class IoBuf {
 public:
  IoBuf(const IoBuf&) = delete;
  IoBuf& operator=(const IoBuf&) = delete;

  char* Data() HEIDI_LIFETIMEBOUND { return data_; }
  const char* Data() const HEIDI_LIFETIMEBOUND { return data_; }
  size_t Capacity() const { return capacity_; }

  size_t Size() const { return size_; }
  size_t Remaining() const { return capacity_ - size_; }
  char* WritePtr() HEIDI_LIFETIMEBOUND { return data_ + size_; }
  void Advance(size_t n) { size_ += n; }

  // Observability hook (tests assert deferred release of retained
  // frames); the value is stale the moment another thread moves.
  uint32_t RefCount() const { return refs_.load(std::memory_order_relaxed); }

 private:
  friend class IoBufPool;
  friend class IoBufPtr;

  explicit IoBuf(size_t capacity);
  ~IoBuf();

  void Retain() { refs_.fetch_add(1, std::memory_order_relaxed); }
  // Returns the slab to its pool (or frees it) on the last reference.
  void Release();

  char* data_;
  size_t capacity_;
  size_t size_ = 0;
  std::atomic<uint32_t> refs_{1};
  IoBufPool* pool_;
};

// Intrusive smart pointer over IoBuf.
class IoBufPtr {
 public:
  IoBufPtr() = default;
  IoBufPtr(const IoBufPtr& other) : buf_(other.buf_) {
    if (buf_ != nullptr) buf_->Retain();
  }
  IoBufPtr(IoBufPtr&& other) noexcept : buf_(other.buf_) {
    other.buf_ = nullptr;
  }
  IoBufPtr& operator=(IoBufPtr other) noexcept {
    std::swap(buf_, other.buf_);
    return *this;
  }
  ~IoBufPtr() {
    if (buf_ != nullptr) buf_->Release();
  }

  IoBuf* get() const { return buf_; }
  IoBuf* operator->() const { return buf_; }
  IoBuf& operator*() const { return *buf_; }
  explicit operator bool() const { return buf_ != nullptr; }

  void reset() {
    if (buf_ != nullptr) buf_->Release();
    buf_ = nullptr;
  }

  // Takes ownership of an already-counted reference (refcount not bumped).
  static IoBufPtr Adopt(IoBuf* buf) {
    IoBufPtr p;
    p.buf_ = buf;
    return p;
  }

 private:
  IoBuf* buf_ = nullptr;
};

// Sharded free list of fixed-size slabs. Get() pops from the calling
// thread's shard (hit) or allocates (miss); the last IoBufPtr release
// pushes the slab back. Requests larger than kSlabBytes are served by a
// one-off heap slab that is freed, not recycled (counts as a miss) — the
// free list stays homogeneous so any pooled slab satisfies any request.
class IoBufPool {
 public:
  static constexpr size_t kSlabBytes = 16 * 1024;
  static constexpr size_t kShards = 8;
  // Idle-memory bound: a full shard frees instead of recycling.
  static constexpr size_t kMaxFreePerShard = 64;

  IoBufPool() = default;
  ~IoBufPool();
  IoBufPool(const IoBufPool&) = delete;
  IoBufPool& operator=(const IoBufPool&) = delete;

  // Never returns null. The slab's Size() is 0 and the caller is its
  // exclusive owner until it shares references.
  HEIDI_NODISCARD("a dropped slab is an immediate pool round-trip")
  IoBufPtr Get(size_t min_capacity = kSlabBytes);

  struct Stats {
    uint64_t hits = 0;      // Get() served from a free list
    uint64_t misses = 0;    // Get() had to allocate
    uint64_t recycles = 0;  // slabs returned to a free list
    uint64_t outstanding_bufs = 0;   // live slabs (gauge)
    uint64_t outstanding_bytes = 0;  // capacity held by live slabs (gauge)
  };
  Stats GetStats() const;

  // Mirrors the monotonic pool events into registry counters (the
  // gauges stay poll-only via GetStats). Last binding wins; the counter
  // pointers must outlive the pool's traffic (MetricsRegistry entries
  // are immortal, so binding a registry's counters is always safe).
  void BindCounters(obs::Counter* hits, obs::Counter* misses,
                    obs::Counter* recycles);
  // Inline so heidi_support never links against the registry's code.
  void BindMetrics(obs::MetricsRegistry& metrics) {
    BindCounters(metrics.GetCounter("iobuf.pool.hits"),
                 metrics.GetCounter("iobuf.pool.misses"),
                 metrics.GetCounter("iobuf.pool.recycles"));
  }

  // Pressure notification (same function-registration pattern as
  // BindCounters, so heidi_support never links the observer): fires when
  // the outstanding-bytes gauge reaches a new high-water mark that also
  // crosses a 256 KiB step — growth-only and step-gated, so a steady
  // workload emits nothing and a leak emits a breadcrumb trail.
  using PressureHook = void (*)(uint64_t outstanding_bytes,
                                uint64_t outstanding_bufs);
  void BindPressureHook(PressureHook hook) {
    pressure_hook_.store(hook, std::memory_order_relaxed);
  }

  // The process-wide pool every chain and protocol uses by default.
  // Deliberately immortal (never destroyed): slabs may be released from
  // static destructors of arbitrary order.
  static IoBufPool& Global();

 private:
  friend class IoBuf;

  struct alignas(64) Shard {
    std::mutex mutex;
    std::vector<IoBuf*> free;
  };

  Shard& HomeShard();
  IoBuf* PopFrom(Shard& shard);
  void Recycle(IoBuf* buf);
  void NotePressure();

  Shard shards_[kShards];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> recycles_{0};
  std::atomic<uint64_t> outstanding_bufs_{0};
  std::atomic<uint64_t> outstanding_bytes_{0};
  std::atomic<uint64_t> outstanding_highwater_{0};
  std::atomic<obs::Counter*> ctr_hits_{nullptr};
  std::atomic<obs::Counter*> ctr_misses_{nullptr};
  std::atomic<obs::Counter*> ctr_recycles_{nullptr};
  std::atomic<PressureHook> pressure_hook_{nullptr};
};

// A contiguous [offset, offset+length) window of one slab.
struct BufSlice {
  IoBufPtr buf;
  uint32_t offset = 0;
  uint32_t length = 0;

  // The window is only guaranteed while this slice holds its slab
  // reference — tie the pointer/view lifetimes to the slice.
  const char* Data() const HEIDI_LIFETIMEBOUND {
    return buf->Data() + offset;
  }
  std::string_view View() const HEIDI_LIFETIMEBOUND {
    return {Data(), length};
  }
};

// An ordered sequence of slices — the unit protocols marshal into and
// channels gather out of. Append() copies bytes into the chain's own
// tail slab (splitting across slabs as needed); AppendChain/AppendSlice
// share existing slabs by reference without copying a byte.
//
// Chains are move-only: sharing is explicit (AppendChain), never an
// accidental copy.
class BufferChain {
 public:
  BufferChain() = default;
  explicit BufferChain(IoBufPool* pool) : pool_(pool) {}
  BufferChain(const BufferChain&) = delete;
  BufferChain& operator=(const BufferChain&) = delete;
  BufferChain(BufferChain&& other) noexcept { *this = std::move(other); }
  BufferChain& operator=(BufferChain&& other) noexcept {
    slices_ = std::move(other.slices_);
    size_ = other.size_;
    pool_ = other.pool_;
    tail_writable_ = other.tail_writable_;
    other.slices_.clear();
    other.size_ = 0;
    other.tail_writable_ = false;
    return *this;
  }

  size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }
  const std::vector<BufSlice>& Slices() const HEIDI_LIFETIMEBOUND {
    return slices_;
  }

  // Drops every slice reference (slabs with no other holder return to
  // the pool).
  void Clear();

  // Copies `n` bytes into the chain's tail slab(s). The common case — a
  // small primitive landing in the tail slab's free space — is inline;
  // slab turnover and multi-slab splits take the out-of-line path.
  void Append(const void* data, size_t n) {
    if (tail_writable_) {
      IoBuf* tail = slices_.back().buf.get();
      if (n <= tail->Remaining()) {
        std::memcpy(tail->WritePtr(), data, n);
        tail->Advance(n);
        slices_.back().length += static_cast<uint32_t>(n);
        size_ += n;
        return;
      }
    }
    AppendSlow(static_cast<const char*>(data), n);
  }
  void Append(std::string_view s) { Append(s.data(), s.size()); }
  // Appends `n` zero bytes (alignment padding).
  void AppendZeros(size_t n);

  // Shares `other`'s slices by reference — zero bytes copied. The source
  // chain's already-written bytes are immutable from here on (it may
  // still grow past them).
  void AppendChain(const BufferChain& other);
  void AppendSlice(const IoBufPtr& buf, size_t offset, size_t length);

  // Adopts `slab`'s free tail [Size(), Capacity()) as this chain's own
  // append region: subsequent Append()s write there in place instead of
  // pulling a fresh pooled slab. Used by reply staging to reuse the
  // request frame slab an Arena donates back (Arena::DonateTail) — the
  // reply then costs zero pool traffic. Caller guarantees no other
  // writer touches the slab past Size().
  void SeedWritableTail(IoBufPtr slab);

  // Flatten helpers (tests, fault paths, compatibility accessors).
  void CopyTo(char* out) const;
  std::string ToString() const;

 private:
  // A slab this chain may keep appending into, with >= 1 free byte.
  IoBuf* WritableTail();
  void AppendSlow(const char* src, size_t n);

  IoBufPool* pool_ = nullptr;  // nullptr -> IoBufPool::Global()
  std::vector<BufSlice> slices_;
  size_t size_ = 0;
  // True while the last slice is this chain's own append region ending
  // exactly at its slab's high-water mark; shared slices clear it so
  // Append never writes into a slab another chain is also growing.
  bool tail_writable_ = false;
};

}  // namespace heidi::bytes
