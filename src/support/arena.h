// Per-dispatch scratch arena — the server-side half of the zero-copy
// story. A request's frame arrives in one pooled IoBuf slab (DESIGN.md
// §4e); the bytes after the frame are dead capacity for the rest of the
// dispatch. Arena turns that tail into bump-allocated scratch: unescape
// buffers, RetainForView copies, and reply staging come out of the very
// slab the kernel already filled, so a dispatch that fits makes zero
// heap allocations and zero extra pool trips.
//
// Layout of the seed slab during a dispatch:
//
//   [0 ............ frame bytes ............ Size()) [scratch ... Capacity())
//    ^ views handed to the skeleton point here        ^ arena bump region
//
// The arena keeps a private cursor over the scratch region and never
// Advances the slab for its own allocations — only DonateTail() (called
// once, when reply staging adopts the remaining tail) syncs the slab's
// high-water mark forward past the arena's scratch. Overflow beyond the
// seed slab falls back to fresh pooled slabs; a single allocation larger
// than a slab gets a dedicated oversize buffer. Either way Allocate
// never fails and pointers stay stable until Reset()/destruction.
//
// Single-owner, not thread-safe — an Arena lives on one dispatch's
// stack. All memory is released (slabs back to the pool) on Reset() or
// destruction; in debug builds freed scratch is poisoned with 0xDD so an
// escaped view fails loudly instead of silently reading stale bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "support/annotations.h"
#include "support/bytes.h"

namespace heidi::support {

class Arena {
 public:
  // `seed` is typically the request's retained frame slab (may be null:
  // the arena then serves purely from `pool`). `pool` defaults to the
  // process-global IoBuf pool.
  explicit Arena(bytes::IoBufPtr seed = {}, bytes::IoBufPool* pool = nullptr);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Never returns null. `align` must be a power of two. The returned
  // storage lives exactly as long as this arena (until Reset()/dtor) —
  // lifetimebound lets clang flag pointers that outlive it.
  HEIDI_NODISCARD("arena storage leaks its slab space if unused")
  void* Allocate(size_t n,
                 size_t align = alignof(std::max_align_t)) HEIDI_LIFETIMEBOUND;
  HEIDI_NODISCARD("arena storage leaks its slab space if unused")
  char* AllocateChars(size_t n) HEIDI_LIFETIMEBOUND {
    return static_cast<char*>(Allocate(n, 1));
  }

  // Copies `s` into arena storage and returns a view of the copy —
  // the allocation-free twin of RetainForView's heap deque. The view
  // dies with the arena: returning it past the dispatch is the exact
  // escape the 0xDD poisoning catches at runtime, and lifetimebound
  // catches at compile time.
  HEIDI_NODISCARD("the copy exists only to be viewed")
  std::string_view CopyString(std::string_view s) HEIDI_LIFETIMEBOUND;

  // Hands the seed slab's remaining free tail to reply staging: syncs
  // the slab's Size() past this arena's scratch cursor and returns the
  // slab (null if there is no seed, it has no free tail left, or the
  // tail was already donated). After donation the arena stops bumping
  // inside the seed region — later allocations go to overflow slabs —
  // so the chain's append region and the arena never interleave.
  // Dropping the returned slab forfeits the zero-pool-traffic reply
  // path (and the donated region) for this dispatch.
  HEIDI_NODISCARD("dropping the donated tail wastes the seed slab")
  bytes::IoBufPtr DonateTail();

  // Rewinds to empty, dropping overflow/oversize slabs back to the pool
  // and re-opening the seed region (unless it was donated). Outstanding
  // pointers/views become invalid (and poisoned in debug builds).
  void Reset();

  struct Stats {
    uint64_t allocations = 0;          // Allocate() calls served
    uint64_t bytes_allocated = 0;      // sum of rounded request sizes
    uint64_t slab_refills = 0;         // pooled overflow slabs fetched
    uint64_t oversize_allocations = 0; // dedicated > kSlabBytes buffers
    uint64_t resets = 0;
  };
  const Stats& GetStats() const { return stats_; }

  bool HasSeed() const { return static_cast<bool>(seed_); }
  bool TailDonated() const { return donated_; }

  // Process-wide notification for oversize allocations (> one slab) —
  // function-registration so heidi_support never links the observer.
  // Oversize requests defeat the recycling pool entirely, so each one is
  // a pressure breadcrumb worth journaling.
  using OversizeHook = void (*)(uint64_t bytes);
  static void SetOversizeHook(OversizeHook hook);

 private:
  struct Region {
    char* base = nullptr;
    size_t cursor = 0;
    size_t capacity = 0;
  };

  void* BumpFrom(Region& region, size_t n, size_t align);
  void PoisonScratch();

  bytes::IoBufPool* pool_;
  bytes::IoBufPtr seed_;
  Region seed_region_;   // the seed slab's free tail (empty if no seed)
  Region active_;        // current overflow slab's region
  std::vector<bytes::IoBufPtr> overflow_;
  bool donated_ = false;
  Stats stats_;
};

}  // namespace heidi::support
