#include "support/arena.h"

#include <atomic>
#include <cstring>

namespace heidi::support {

namespace {
constexpr size_t kSlab = bytes::IoBufPool::kSlabBytes;

std::atomic<Arena::OversizeHook> g_oversize_hook{nullptr};

#ifndef NDEBUG
void Poison(char* base, size_t from, size_t to) {
  if (base != nullptr && to > from) std::memset(base + from, 0xDD, to - from);
}
#endif
}  // namespace

Arena::Arena(bytes::IoBufPtr seed, bytes::IoBufPool* pool)
    : pool_(pool != nullptr ? pool : &bytes::IoBufPool::Global()),
      seed_(std::move(seed)) {
  if (seed_) {
    seed_region_.base = seed_->WritePtr();
    seed_region_.capacity = seed_->Remaining();
  }
}

Arena::~Arena() {
#ifndef NDEBUG
  PoisonScratch();
#endif
}

void* Arena::BumpFrom(Region& region, size_t n, size_t align) {
  if (region.base == nullptr) return nullptr;
  // Align the pointer, not the offset: the seed region starts right
  // after the frame bytes, at an arbitrary address.
  uintptr_t raw = reinterpret_cast<uintptr_t>(region.base) + region.cursor;
  uintptr_t aligned = (raw + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
  size_t start = aligned - reinterpret_cast<uintptr_t>(region.base);
  if (start + n > region.capacity) return nullptr;
  region.cursor = start + n;
  return region.base + start;
}

void* Arena::Allocate(size_t n, size_t align) {
  if (n == 0) n = 1;
  stats_.allocations++;
  stats_.bytes_allocated += n;
  // Oversize: a dedicated buffer the pool frees (not recycles) on
  // release. Kept on the overflow list so lifetime matches the arena.
  if (n + align > kSlab) {
    stats_.oversize_allocations++;
    if (OversizeHook hook = g_oversize_hook.load(std::memory_order_relaxed)) {
      hook(n);
    }
    bytes::IoBufPtr big = pool_->Get(n + align);
    char* base = big->Data();
    overflow_.push_back(std::move(big));
    uintptr_t raw = reinterpret_cast<uintptr_t>(base);
    uintptr_t aligned =
        (raw + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
    return base + (aligned - raw);
  }
  if (!donated_) {
    if (void* p = BumpFrom(seed_region_, n, align)) return p;
  }
  if (void* p = BumpFrom(active_, n, align)) return p;
  // Exhaustion fallback: pull a fresh pooled slab and bump there.
  stats_.slab_refills++;
  bytes::IoBufPtr fresh = pool_->Get();
  active_.base = fresh->Data();
  active_.cursor = 0;
  active_.capacity = fresh->Capacity();
  overflow_.push_back(std::move(fresh));
  return BumpFrom(active_, n, align);
}

std::string_view Arena::CopyString(std::string_view s) {
  char* out = AllocateChars(s.size());
  std::memcpy(out, s.data(), s.size());
  return {out, s.size()};
}

bytes::IoBufPtr Arena::DonateTail() {
  if (!seed_ || donated_) return {};
  // Close the seed region: everything the arena bump-allocated becomes
  // part of the slab's written prefix, and the chain owns what's left.
  seed_->Advance(seed_region_.cursor);
  donated_ = true;
  if (seed_->Remaining() == 0) return {};
  return seed_;
}

void Arena::Reset() {
#ifndef NDEBUG
  PoisonScratch();
#endif
  overflow_.clear();
  active_ = Region{};
  if (!donated_) seed_region_.cursor = 0;
  stats_.resets++;
}

void Arena::SetOversizeHook(OversizeHook hook) {
  g_oversize_hook.store(hook, std::memory_order_relaxed);
}

void Arena::PoisonScratch() {
#ifndef NDEBUG
  if (!donated_) Poison(seed_region_.base, 0, seed_region_.cursor);
  Poison(active_.base, 0, active_.cursor);
  for (bytes::IoBufPtr& slab : overflow_) {
    if (slab.get() != nullptr && active_.base != slab->Data()) {
      Poison(slab->Data(), 0, slab->Capacity());
    }
  }
#endif
}

}  // namespace heidi::support
