// XBool — the Heidi legacy boolean type the paper's custom mapping targets.
//
// The HeidiRMI IDL->C++ mapping maps IDL `boolean` to XBool instead of
// CORBA::Boolean (Table 1, Fig 3 in the paper). Heidi predates widespread
// reliable `bool` support, so XBool is an enum-like integral wrapper with
// the constants XTrue / XFalse; it converts implicitly to and from `bool`
// so that modern call sites stay natural.
#pragma once

namespace heidi {

class XBool {
 public:
  constexpr XBool() : value_(0) {}
  constexpr XBool(bool b) : value_(b ? 1 : 0) {}  // NOLINT: implicit by design

  constexpr operator bool() const { return value_ != 0; }  // NOLINT

  friend constexpr bool operator==(XBool a, XBool b) {
    return (a.value_ != 0) == (b.value_ != 0);
  }
  friend constexpr bool operator!=(XBool a, XBool b) { return !(a == b); }

 private:
  int value_;
};

inline constexpr XBool XTrue{true};
inline constexpr XBool XFalse{false};

}  // namespace heidi
