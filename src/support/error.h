// Exception hierarchy for the HeidiRMI reproduction.
//
// Every subsystem throws a subclass of HdError; catching HdError at a
// subsystem boundary is always sufficient. Exceptions carry a plain what()
// message; subsystem-specific context (source positions, operation names)
// is folded into the message at the throw site.
#pragma once

#include <stdexcept>
#include <string>

namespace heidi {

// Root of all errors raised by this library.
class HdError : public std::runtime_error {
 public:
  explicit HdError(const std::string& msg) : std::runtime_error(msg) {}
};

// IDL source could not be lexed/parsed/resolved.
class ParseError : public HdError {
 public:
  explicit ParseError(const std::string& msg) : HdError(msg) {}
};

// A template could not be compiled or executed.
class TemplateError : public HdError {
 public:
  explicit TemplateError(const std::string& msg) : HdError(msg) {}
};

// A Call could not be encoded or decoded (bad frame, type mismatch,
// truncated data, value out of range for the wire representation).
class MarshalError : public HdError {
 public:
  explicit MarshalError(const std::string& msg) : HdError(msg) {}
};

// Transport-level failure: connect/accept/read/write on a channel.
class NetError : public HdError {
 public:
  explicit NetError(const std::string& msg) : HdError(msg) {}
};

// Transport failure *before any byte of a request left the process*:
// connecting failed, the connector refused, or a send was attempted on a
// connection already condemned by an earlier error. The distinction
// matters to the retry policy: a ConnectError is provably determinate
// (the remote side cannot have executed anything), so any operation may
// be retried; a plain NetError mid-call is indeterminate and only
// oneway/idempotent operations pass the retry gate.
class ConnectError : public NetError {
 public:
  explicit ConnectError(const std::string& msg) : NetError(msg) {}
};

// A deadline expired before the operation completed: a poll-based read
// ran out of time, or an invocation exceeded its per-call deadline. A
// subclass of NetError so transport-level catch sites keep working, but
// callers that care (the invocation path) must catch it *first*: a
// timeout abandons one call, it does not condemn the connection.
class TimeoutError : public NetError {
 public:
  explicit TimeoutError(const std::string& msg) : NetError(msg) {}
};

// A request reached a server but could not be routed: unknown object id,
// unknown operation, or a skeleton chain that rejected the call.
class DispatchError : public HdError {
 public:
  explicit DispatchError(const std::string& msg) : HdError(msg) {}
};

// An object reference string could not be parsed, or refers to an
// incompatible type.
class RefError : public HdError {
 public:
  explicit RefError(const std::string& msg) : HdError(msg) {}
};

// The remote side reported a failure while executing the call. The message
// is the remote exception text relayed through the reply.
class RemoteError : public HdError {
 public:
  explicit RemoteError(const std::string& msg) : HdError(msg) {}
};

}  // namespace heidi
