#include "support/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace heidi::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::mutex g_mutex;

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void SetLevel(Level level) { g_level.store(level, std::memory_order_relaxed); }
Level GetLevel() { return g_level.load(std::memory_order_relaxed); }

void Log(Level level, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[heidi %s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace heidi::log
