#include "support/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

namespace heidi::log {

namespace {

// The compiled-in default; HEIDI_LOG (read once, below) can override it
// until the first explicit SetLevel call.
std::atomic<Level> g_level{Level::kWarn};
std::atomic<bool> g_level_pinned{false};  // SetLevel beats the env var
std::mutex g_mutex;
Sink g_sink;  // under g_mutex; empty = default stderr sink

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

bool ParseLevel(const char* name, Level* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "debug") == 0) *out = Level::kDebug;
  else if (std::strcmp(name, "info") == 0) *out = Level::kInfo;
  else if (std::strcmp(name, "warn") == 0) *out = Level::kWarn;
  else if (std::strcmp(name, "error") == 0) *out = Level::kError;
  else if (std::strcmp(name, "off") == 0) *out = Level::kOff;
  else return false;
  return true;
}

// One-time lazy read of HEIDI_LOG; losing to a concurrent SetLevel is
// fine (explicit configuration wins).
void ApplyEnvOnce() {
  static const bool applied = [] {
    Level level;
    if (ParseLevel(std::getenv("HEIDI_LOG"), &level) &&
        !g_level_pinned.load(std::memory_order_relaxed)) {
      g_level.store(level, std::memory_order_relaxed);
    }
    return true;
  }();
  (void)applied;
}

// Monotonic seconds since the first log statement of the process — small
// numbers that line up with the tracer's steady-clock span timestamps.
double UptimeSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Small per-thread ordinal (1, 2, 3, ...) — readable where native thread
// ids are not.
int ThreadOrdinal() {
  static std::atomic<int> next{1};
  thread_local int ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

void SetLevel(Level level) {
  g_level_pinned.store(true, std::memory_order_relaxed);
  g_level.store(level, std::memory_order_relaxed);
}

Level GetLevel() {
  ApplyEnvOnce();
  return g_level.load(std::memory_order_relaxed);
}

void SetSink(Sink sink) {
  std::lock_guard lock(g_mutex);
  g_sink = std::move(sink);
}

void Log(Level level, const std::string& msg) {
  ApplyEnvOnce();
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[heidi %.6f t=%d %s] ",
                UptimeSeconds(), ThreadOrdinal(), LevelName(level));
  std::lock_guard lock(g_mutex);
  if (g_sink) {
    g_sink(level, prefix + msg);
    return;
  }
  std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}

}  // namespace heidi::log
