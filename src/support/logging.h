// Minimal leveled logger used by the runtime for diagnostics.
//
// Logging defaults to kWarn so tests and benchmarks stay quiet; examples
// raise it to kInfo, and the HEIDI_LOG environment variable overrides the
// compiled-in default at first use (debug|info|warn|error|off). Each line
// carries a monotonic timestamp (seconds since the process's first log
// statement) and a small per-thread ordinal:
//   [heidi 12.345678 t=3 INFO] message
//
// Thread-safe: each Log() call writes one complete line. The sink is
// pluggable (SetSink) so embedders and tests can capture the stream; the
// default sink writes to stderr.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace heidi::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded. SetLevel wins over
// the HEIDI_LOG environment variable (which is read once, lazily).
void SetLevel(Level level);
Level GetLevel();

// Receives one fully formatted line (no trailing newline) per Log() call.
// The formatted prefix is already applied; `level` is passed so sinks can
// route by severity. Pass nullptr to restore the default stderr sink.
// Sinks run under the logger's mutex: they must not log re-entrantly.
using Sink = std::function<void(Level level, const std::string& line)>;
void SetSink(Sink sink);

// Writes `msg` as a single line to the sink if `level` passes the threshold.
void Log(Level level, const std::string& msg);

namespace internal {
// Builds the message lazily: operator<< chains accumulate into a stream and
// the destructor emits the line.
class LineLogger {
 public:
  explicit LineLogger(Level level) : level_(level) {}
  ~LineLogger() { Log(level_, stream_.str()); }
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;

  template <typename T>
  LineLogger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace heidi::log

#define HD_LOG_DEBUG ::heidi::log::internal::LineLogger(::heidi::log::Level::kDebug)
#define HD_LOG_INFO ::heidi::log::internal::LineLogger(::heidi::log::Level::kInfo)
#define HD_LOG_WARN ::heidi::log::internal::LineLogger(::heidi::log::Level::kWarn)
#define HD_LOG_ERROR ::heidi::log::internal::LineLogger(::heidi::log::Level::kError)
