// Minimal leveled logger used by the runtime for diagnostics.
//
// Logging defaults to kWarn so tests and benchmarks stay quiet; examples
// raise it to kInfo. Thread-safe: each Log() call writes one complete line.
#pragma once

#include <sstream>
#include <string>

namespace heidi::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded.
void SetLevel(Level level);
Level GetLevel();

// Writes `msg` as a single line to stderr if `level` passes the threshold.
void Log(Level level, const std::string& msg);

namespace internal {
// Builds the message lazily: operator<< chains accumulate into a stream and
// the destructor emits the line.
class LineLogger {
 public:
  explicit LineLogger(Level level) : level_(level) {}
  ~LineLogger() { Log(level_, stream_.str()); }
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;

  template <typename T>
  LineLogger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace heidi::log

#define HD_LOG_DEBUG ::heidi::log::internal::LineLogger(::heidi::log::Level::kDebug)
#define HD_LOG_INFO ::heidi::log::internal::LineLogger(::heidi::log::Level::kInfo)
#define HD_LOG_WARN ::heidi::log::internal::LineLogger(::heidi::log::Level::kWarn)
#define HD_LOG_ERROR ::heidi::log::internal::LineLogger(::heidi::log::Level::kError)
