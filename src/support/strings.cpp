#include "support/strings.h"

#include <cctype>

#include "support/error.h"

namespace heidi::str {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitN(std::string_view s, char sep,
                                size_t max_parts) {
  std::vector<std::string> out;
  size_t start = 0;
  while (out.size() + 1 < max_parts) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) break;
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  out.emplace_back(s.substr(start));
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  std::string out;
  if (from.empty()) return std::string(s);
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_'))
    return false;
  for (char c : s.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_'))
      return false;
  }
  return true;
}

namespace {
constexpr char kHex[] = "0123456789ABCDEF";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

bool NeedsEscape(char c) {
  return c == '\n' || c == '\r' || c == ' ' || c == '%' || c == '\0';
}
}  // namespace

std::string EscapeToken(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (NeedsEscape(c)) {
      unsigned char u = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeToken(std::string_view s) {
  std::string out;
  out.resize(s.size());
  out.resize(UnescapeTokenInto(s, out.data()));
  return out;
}

size_t UnescapeTokenInto(std::string_view s, char* out) {
  char* w = out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      *w++ = s[i];
      continue;
    }
    if (i + 2 >= s.size()) throw MarshalError("truncated %-escape in token");
    int hi = HexValue(s[i + 1]);
    int lo = HexValue(s[i + 2]);
    if (hi < 0 || lo < 0) throw MarshalError("malformed %-escape in token");
    *w++ = static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return static_cast<size_t>(w - out);
}

}  // namespace heidi::str
