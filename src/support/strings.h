// Small string utilities shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace heidi::str {

// Splits `s` on every occurrence of `sep`. Adjacent separators produce empty
// elements; an empty input yields a single empty element.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits on `sep` at most `max_parts - 1` times; the final element receives
// the unsplit remainder. `max_parts` must be >= 1.
std::vector<std::string> SplitN(std::string_view s, char sep, size_t max_parts);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

// True if `s` is a valid C-style identifier ([A-Za-z_][A-Za-z0-9_]*).
bool IsIdentifier(std::string_view s);

// Percent-style escaping used by the text wire protocol: bytes that would
// break request demarcation (newline, carriage return, space, '%') are
// rewritten as %XX. Unescape reverses it; malformed escapes throw
// MarshalError.
std::string EscapeToken(std::string_view s);
std::string UnescapeToken(std::string_view s);

// Unescapes into caller-provided storage (at least `s.size()` bytes —
// unescaping never grows) and returns the unescaped length. Lets the
// text protocol unescape straight into a dispatch arena instead of a
// heap std::string.
size_t UnescapeTokenInto(std::string_view s, char* out);

}  // namespace heidi::str
