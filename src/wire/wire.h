// Umbrella header for the wire layer: Call, protocols, serializable.
#pragma once

#include "wire/binary.h"        // IWYU pragma: export
#include "wire/call.h"          // IWYU pragma: export
#include "wire/protocol.h"      // IWYU pragma: export
#include "wire/serializable.h"  // IWYU pragma: export
#include "wire/text.h"          // IWYU pragma: export
