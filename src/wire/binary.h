// HIOP — the binary CDR-style protocol (the "minimal, real-time ORBs
// based on IIOP" direction of §6). Encoding rules follow GIOP/CDR in
// spirit: little-endian fixed-width primitives aligned to their natural
// size relative to the start of the payload; strings are a u32 length
// (including NUL) + bytes + NUL; group markers are implicit (Begin/End
// are no-ops). Framing (magic, version, message type, length) is handled
// by the protocol layer in protocol.cpp.
//
// Zero-copy shape: a writable call marshals into a pooled BufferChain
// that WriteCall scatter-gathers onto the wire; a readable call is a
// view over the retained inbound frame slab (one pooled allocation per
// frame, shared by head and payload), and GetStringView/GetBytesView
// return views straight into it.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "support/bytes.h"
#include "wire/call.h"

namespace heidi::wire {

class BinaryCall final : public Call {
 public:
  // Writable, empty call.
  BinaryCall() = default;
  // Readable call over an owned copy of a decoded payload
  // (compatibility path: tests, hand-built frames).
  explicit BinaryCall(std::string payload)
      : owned_(std::move(payload)), view_(owned_), readable_(true) {}
  // Readable call viewing [offset, offset+length) of a retained frame
  // slab — the zero-copy path ReadCall uses. The call keeps the slab
  // alive; views handed out by Get*View share its lifetime.
  BinaryCall(bytes::IoBufPtr frame, size_t offset, size_t length)
      : frame_(std::move(frame)),
        view_(frame_->Data() + offset, length),
        readable_(true) {}

  void PutBoolean(bool v) override;
  void PutChar(char v) override;
  void PutOctet(uint8_t v) override;
  void PutShort(int16_t v) override;
  void PutUShort(uint16_t v) override;
  void PutLong(int32_t v) override;
  void PutULong(uint32_t v) override;
  void PutLongLong(int64_t v) override;
  void PutULongLong(uint64_t v) override;
  void PutFloat(float v) override;
  void PutDouble(double v) override;
  void PutString(std::string_view v) override;
  void PutBytes(std::string_view bytes) override;

  bool GetBoolean() override;
  char GetChar() override;
  uint8_t GetOctet() override;
  int16_t GetShort() override;
  uint16_t GetUShort() override;
  int32_t GetLong() override;
  uint32_t GetULong() override;
  int64_t GetLongLong() override;
  uint64_t GetULongLong() override;
  float GetFloat() override;
  double GetDouble() override;
  std::string GetString() override;
  std::string GetBytes() override;
  std::string_view GetStringView() HEIDI_LIFETIMEBOUND override;
  std::string_view GetBytesView() HEIDI_LIFETIMEBOUND override;

  void Begin(std::string_view label) override;
  void End() override;

  bool HasMore() const override {
    return readable_ ? cursor_ < view_.size() : chain_.Size() > 0;
  }
  size_t PayloadSize() const override {
    return readable_ ? view_.size() : chain_.Size();
  }

  // The pooled frame slab a zero-copy readable call retains (the seed
  // for the dispatch arena); null for writable/owned calls — and null
  // when the slab is shared (see SetFrameShared).
  bytes::IoBufPtr RetainedFrame() const override {
    return frame_shared_ ? bytes::IoBufPtr{} : frame_;
  }

  // Marks the frame slab as shared with the connection's receive buffer
  // (reactor pipelining: other frames, or bytes still to be recv()ed,
  // live in the same slab). Views stay valid — the call retains the
  // slab either way — but the slab's free tail must not seed a dispatch
  // arena, which would hand out memory the reactor is still writing to.
  void SetFrameShared() { frame_shared_ = true; }

  // Debug lifetime assertion: poisons the readable decode window so any
  // view that escaped its dispatch reads 0xDD instead of stale data.
  // (Only the request payload window is poisoned — a staged reply
  // sharing the slab lives past the window and is untouched.)
  void InvalidateViews() override;

  // Rewinds a writable call for reuse (benchmarks, pooled replies):
  // drops the staged chain but keeps the slice vector's capacity, so a
  // steady-state re-marshal allocates nothing.
  void ResetWritable();

  // The marshaled payload chain of a writable call (WriteCall appends it
  // to the frame without copying).
  const bytes::BufferChain& Chain() const { return chain_; }

  // Flattened payload bytes (tests, diagnostics, re-reading).
  std::string Payload() const {
    return readable_ ? std::string(view_) : chain_.ToString();
  }

 private:
  void Align(size_t n);
  // First Put on a writable call: if a dispatch arena with a seed slab
  // is attached, adopt the request frame's free tail as the chain's
  // append region — the reply then stages into the same slab the
  // request arrived in (zero pool traffic, zero heap).
  void EnsureStaged();
  void PutRaw(const void* data, size_t n);
  void GetRaw(void* data, size_t n, const char* what);
  std::string_view TakeStringView();
  std::string_view TakeBytesView();

  template <typename T>
  void PutPrim(T v) {
    Align(sizeof(T));
    PutRaw(&v, sizeof(T));
  }
  template <typename T>
  T GetPrim(const char* what) {
    Align(sizeof(T));
    T v;
    GetRaw(&v, sizeof(T), what);
    return v;
  }

  bytes::BufferChain chain_;   // writable: marshal target
  bytes::IoBufPtr frame_;      // readable: retained frame slab (may be null)
  bool frame_shared_ = false;  // slab shared with the receive buffer
  std::string owned_;          // readable: owned copy (compat ctor)
  std::string_view view_;      // readable: the decode window
  size_t cursor_ = 0;
  bool readable_ = false;
  bool staged_ = false;  // writable: arena tail adoption attempted
};

}  // namespace heidi::wire
