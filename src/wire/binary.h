// HIOP — the binary CDR-style protocol (the "minimal, real-time ORBs
// based on IIOP" direction of §6). Encoding rules follow GIOP/CDR in
// spirit: little-endian fixed-width primitives aligned to their natural
// size relative to the start of the payload; strings are a u32 length
// (including NUL) + bytes + NUL; group markers are implicit (Begin/End
// are no-ops). Framing (magic, version, message type, length) is handled
// by the protocol layer in protocol.cpp.
#pragma once

#include <memory>
#include <string>

#include "wire/call.h"

namespace heidi::wire {

class BinaryCall final : public Call {
 public:
  // Writable, empty call.
  BinaryCall() = default;
  // Readable call over a decoded payload.
  explicit BinaryCall(std::string payload)
      : buffer_(std::move(payload)), readable_(true) {}

  void PutBoolean(bool v) override;
  void PutChar(char v) override;
  void PutOctet(uint8_t v) override;
  void PutShort(int16_t v) override;
  void PutUShort(uint16_t v) override;
  void PutLong(int32_t v) override;
  void PutULong(uint32_t v) override;
  void PutLongLong(int64_t v) override;
  void PutULongLong(uint64_t v) override;
  void PutFloat(float v) override;
  void PutDouble(double v) override;
  void PutString(std::string_view v) override;
  void PutBytes(std::string_view bytes) override;

  bool GetBoolean() override;
  char GetChar() override;
  uint8_t GetOctet() override;
  int16_t GetShort() override;
  uint16_t GetUShort() override;
  int32_t GetLong() override;
  uint32_t GetULong() override;
  int64_t GetLongLong() override;
  uint64_t GetULongLong() override;
  float GetFloat() override;
  double GetDouble() override;
  std::string GetString() override;
  std::string GetBytes() override;

  void Begin(std::string_view label) override;
  void End() override;

  bool HasMore() const override { return cursor_ < buffer_.size(); }
  size_t PayloadSize() const override { return buffer_.size(); }

  const std::string& Payload() const { return buffer_; }

 private:
  void Align(size_t n);
  void PutRaw(const void* data, size_t n);
  void GetRaw(void* data, size_t n, const char* what);

  template <typename T>
  void PutPrim(T v) {
    Align(sizeof(T));
    PutRaw(&v, sizeof(T));
  }
  template <typename T>
  T GetPrim(const char* what) {
    Align(sizeof(T));
    T v;
    GetRaw(&v, sizeof(T), what);
    return v;
  }

  std::string buffer_;
  size_t cursor_ = 0;
  bool readable_ = false;
};

}  // namespace heidi::wire
