// Protocol: frames Calls over a ByteChannel and demarcates individual
// requests (the ObjectCommunicator responsibility split of §3.1 — the
// communicator owns the channel, the protocol owns the encoding).
//
// Two implementations ship:
//   "text" — the HeidiRMI newline-terminated ASCII protocol (§3.1), also
//            usable by a human over telnet (§4.2);
//   "hiop" — the binary CDR-style protocol (framing: "HIOP" magic,
//            version, message type, section lengths).
//
// The registry makes the ORB protocol a configuration string, which is the
// paper's "customizing the ORB protocol" axis; applications can register
// their own Protocol the same way.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/buffered.h"
#include "net/channel.h"
#include "wire/call.h"

namespace heidi::wire {

class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string_view Name() const = 0;

  // A new writable Call in this protocol's encoding.
  virtual std::unique_ptr<Call> NewCall() const = 0;

  // Frames and sends `call` (header + payload). Throws NetError /
  // MarshalError.
  virtual void WriteCall(net::ByteChannel& channel, const Call& call) const = 0;

  // Reads one framed call; returns nullptr on clean EOF. Throws on
  // malformed frames or mid-frame EOF.
  virtual std::unique_ptr<Call> ReadCall(net::BufferedReader& reader) const = 0;
};

// Global protocol registry. "text" and "hiop" are pre-registered;
// RegisterProtocol adds custom protocols (name must be new).
const Protocol* FindProtocol(std::string_view name);
void RegisterProtocol(const Protocol* protocol);
std::vector<std::string> ProtocolNames();

}  // namespace heidi::wire
