// Protocol: frames Calls over a ByteChannel and demarcates individual
// requests (the ObjectCommunicator responsibility split of §3.1 — the
// communicator owns the channel, the protocol owns the encoding).
//
// Two implementations ship:
//   "text" — the HeidiRMI newline-terminated ASCII protocol (§3.1), also
//            usable by a human over telnet (§4.2);
//   "hiop" — the binary CDR-style protocol (framing: "HIOP" magic,
//            version, message type, section lengths).
//
// The registry makes the ORB protocol a configuration string, which is the
// paper's "customizing the ORB protocol" axis; applications can register
// their own Protocol the same way.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/buffered.h"
#include "net/channel.h"
#include "net/inbound.h"
#include "support/bytes.h"
#include "wire/call.h"

namespace heidi::wire {

// Incremental, resumable frame assembly for readiness-driven serving.
// Where ReadCall blocks inside ReadExact until a whole frame arrives, a
// FrameDecoder is fed whatever fragments epoll delivers: TryParseFrame
// either consumes one complete frame from the buffer or returns nullptr
// ("need more bytes") after reserving contiguous space for what it can
// already see it needs. One decoder instance per connection — it carries
// cross-fragment state (e.g. a pending trace header line).
class FrameDecoder {
 public:
  virtual ~FrameDecoder() = default;

  // Returns the next complete Call parsed out of `in` (consuming its
  // bytes), or nullptr when the buffer does not yet hold a full frame.
  // Throws MarshalError on malformed input — the connection is then
  // unrecoverable, exactly as for ReadCall.
  virtual std::unique_ptr<Call> TryParseFrame(net::IncomingBuffer& in) = 0;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string_view Name() const = 0;

  // A new writable Call in this protocol's encoding.
  virtual std::unique_ptr<Call> NewCall() const = 0;

  // Frames and sends `call` (header + payload). Throws NetError /
  // MarshalError.
  virtual void WriteCall(net::ByteChannel& channel, const Call& call) const = 0;

  // Reads one framed call; returns nullptr on clean EOF. Throws on
  // malformed frames or mid-frame EOF.
  virtual std::unique_ptr<Call> ReadCall(net::BufferedReader& reader) const = 0;

  // Appends the framed encoding of `call` to `out` without touching a
  // channel — the reactor's reply path, where frames go through a
  // per-connection write queue instead of a blocking WritevAll. The
  // appended slices may reference the call's marshaled slabs by
  // refcount, so `out` stays valid after the call is destroyed.
  // Protocols that support reactor serving implement this alongside
  // NewFrameDecoder; the default throws.
  virtual void EncodeCall(bytes::BufferChain& out, const Call& call) const;

  // A fresh per-connection incremental decoder, or nullptr when the
  // protocol only supports the blocking ReadCall path (the default —
  // custom registered protocols keep working: the orb serves them with
  // the legacy thread-per-connection loop).
  virtual std::unique_ptr<FrameDecoder> NewFrameDecoder() const {
    return nullptr;
  }
};

// Global protocol registry. "text" and "hiop" are pre-registered;
// RegisterProtocol adds custom protocols (name must be new).
const Protocol* FindProtocol(std::string_view name);
void RegisterProtocol(const Protocol* protocol);
std::vector<std::string> ProtocolNames();

}  // namespace heidi::wire
