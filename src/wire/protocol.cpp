#include "wire/protocol.h"

#include <cstring>
#include <mutex>

#include "support/bytes.h"
#include "support/error.h"
#include "support/strings.h"
#include "wire/binary.h"
#include "wire/text.h"

namespace heidi::wire {

void Protocol::EncodeCall(bytes::BufferChain& out, const Call& call) const {
  (void)out;
  (void)call;
  // Only protocols that opt into reactor serving (NewFrameDecoder)
  // need chain encoding; the blocking WriteCall path never lands here.
  throw MarshalError("protocol '" + std::string(Name()) +
                     "' does not support chain encoding");
}

// ---------------------------------------------------------------------------
// Text protocol
//
// Line grammar (one request/reply per newline-terminated line):
//   REQ <id> <O|W> <target> <operation> <payload tokens...>
//   REP <id> <OK|SYS|USR|TMO> <error> <payload tokens...>
//
// Trace propagation: a call carrying a trace context is preceded by one
//   trace: <32 hex trace>-<16 hex span>-<16 hex parent>-<2 hex flags>
// header line that applies to the immediately following REQ/REP line
// (both lines go out in a single write, so the framing stays atomic per
// call). Peers without the feature simply never send the line; readers
// that predate it never see it from old peers — the field is additive.

namespace {

constexpr size_t kMaxTextLine = 64u << 20;  // mirrors HIOP's frame cap

// Renders (or reuses) the cached frame line for `call`. Caller holds
// text->EncodeMutex(); the reference stays valid while it does.
const std::string& EnsureTextEncoding(const TextCall* text,
                                      const Call& call) {
  if (!text->EncodingValidFor(call.Revision())) {
    std::string line;
    if (call.Trace().Valid()) {
      line = "trace: " + call.Trace().ToString() + "\n";
    }
    if (call.Kind() == CallKind::kRequest) {
      line += "REQ " + std::to_string(call.CallId()) + " " +
              (call.Oneway() ? "O" : "W") + " " +
              str::EscapeToken(call.Target()) + " " +
              str::EscapeToken(call.Operation());
    } else {
      const char* status = call.Status() == CallStatus::kOk          ? "OK"
                           : call.Status() == CallStatus::kSystemError ? "SYS"
                           : call.Status() == CallStatus::kTimeout     ? "TMO"
                                                                       : "USR";
      line += "REP " + std::to_string(call.CallId()) + " " + status + " " +
              str::EscapeToken(call.ErrorText());
    }
    for (const std::string& token : text->Tokens()) {
      line.push_back(' ');
      line += token;
    }
    line.push_back('\n');
    text->StoreEncoding(std::move(line), call.Revision());
  }
  return text->Encoding();
}

// Parses one REQ/REP line (newline and any \r already stripped; trace
// header lines are the caller's business). Throws MarshalError.
std::unique_ptr<Call> ParseTextCallLine(const std::string& line,
                                        const obs::TraceContext& trace) {
  std::vector<std::string> fields = str::Split(line, ' ');
  if (fields.empty() || fields[0].empty()) {
    throw MarshalError("empty request line");
  }
  const std::string& verb = fields[0];
  if (verb == "REQ") {
    if (fields.size() < 5) throw MarshalError("short REQ line");
    auto call = std::make_unique<TextCall>(std::vector<std::string>(
        fields.begin() + 5, fields.end()));
    call->SetKind(CallKind::kRequest);
    call->SetCallId(std::strtoull(fields[1].c_str(), nullptr, 10));
    if (fields[2] != "O" && fields[2] != "W") {
      throw MarshalError("malformed oneway flag '" + fields[2] + "'");
    }
    call->SetOneway(fields[2] == "O");
    call->SetTarget(str::UnescapeToken(fields[3]));
    call->SetOperation(str::UnescapeToken(fields[4]));
    call->SetTrace(trace);
    return call;
  }
  if (verb == "REP") {
    if (fields.size() < 4) throw MarshalError("short REP line");
    auto call = std::make_unique<TextCall>(std::vector<std::string>(
        fields.begin() + 4, fields.end()));
    call->SetKind(CallKind::kReply);
    call->SetCallId(std::strtoull(fields[1].c_str(), nullptr, 10));
    if (fields[2] == "OK") {
      call->SetStatus(CallStatus::kOk);
    } else if (fields[2] == "SYS") {
      call->SetStatus(CallStatus::kSystemError);
    } else if (fields[2] == "USR") {
      call->SetStatus(CallStatus::kUserException);
    } else if (fields[2] == "TMO") {
      call->SetStatus(CallStatus::kTimeout);
    } else {
      throw MarshalError("malformed reply status '" + fields[2] + "'");
    }
    call->SetErrorText(str::UnescapeToken(fields[3]));
    call->SetTrace(trace);
    return call;
  }
  throw MarshalError("unknown protocol verb '" + verb + "'");
}

// Incremental text framing: scan the receive buffer for the newline
// delimiter; a pending "trace:" header is decoder state carried across
// fragments (the header and its call line may arrive in different
// reads).
class TextFrameDecoder final : public FrameDecoder {
 public:
  std::unique_ptr<Call> TryParseFrame(net::IncomingBuffer& in) override {
    for (;;) {
      std::string_view view = in.View();
      size_t nl = view.find('\n');
      if (nl == std::string_view::npos) {
        if (view.size() > kMaxTextLine) {
          throw MarshalError("request line exceeds 64 MiB cap");
        }
        // No delimiter yet: pre-grow the contiguous window so a giant
        // line drip-fed byte-by-byte stays amortized O(n) (doubling),
        // then wait for more bytes.
        in.Reserve(view.size() * 2 + 1024);
        return nullptr;
      }
      std::string line(view.substr(0, nl));
      in.Consume(nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.rfind("trace: ", 0) == 0) {
        if (!obs::TraceContext::Parse(
                std::string_view(line).substr(7), &pending_trace_)) {
          throw MarshalError("malformed trace header '" + line + "'");
        }
        continue;  // the call this context belongs to is the next line
      }
      std::unique_ptr<Call> call = ParseTextCallLine(line, pending_trace_);
      pending_trace_ = obs::TraceContext();
      return call;
    }
  }

 private:
  obs::TraceContext pending_trace_;
};

class TextProtocol final : public Protocol {
 public:
  std::string_view Name() const override { return "text"; }

  std::unique_ptr<Call> NewCall() const override {
    return std::make_unique<TextCall>();
  }

  void WriteCall(net::ByteChannel& channel, const Call& call) const override {
    const auto* text = dynamic_cast<const TextCall*>(&call);
    if (text == nullptr) {
      throw MarshalError("text protocol given a non-text Call");
    }
    // The rendered frame is cached on the call keyed by its revision:
    // an unchanged call (a retry resending the same request, a reply
    // relayed twice) skips the whole rebuild. The lock is held across
    // the channel write so a concurrently re-rendered frame can never
    // be freed out from under WriteAll.
    std::lock_guard lock(text->EncodeMutex());
    const std::string& line = EnsureTextEncoding(text, call);
    channel.WriteAll(line.data(), line.size());
  }

  void EncodeCall(bytes::BufferChain& out, const Call& call) const override {
    const auto* text = dynamic_cast<const TextCall*>(&call);
    if (text == nullptr) {
      throw MarshalError("text protocol given a non-text Call");
    }
    // Append copies the bytes into the chain's own tail slab: a queued
    // reply must own its bytes (the call, and its cached encoding, die
    // when the dispatch returns; the write queue drains later).
    std::lock_guard lock(text->EncodeMutex());
    out.Append(EnsureTextEncoding(text, call));
  }

  std::unique_ptr<FrameDecoder> NewFrameDecoder() const override {
    return std::make_unique<TextFrameDecoder>();
  }

  std::unique_ptr<Call> ReadCall(net::BufferedReader& reader) const override {
    std::string line;
    obs::TraceContext trace;
    // A "trace:" header line, when present, precedes its call line.
    for (;;) {
      // 64 MiB line cap, mirroring HIOP's frame cap: a corrupted stream
      // that lost its newline must not buffer unboundedly.
      if (!reader.ReadLine(line, kMaxTextLine)) return nullptr;
      // Telnet clients send \r\n (§4.2's human-typed requests).
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.rfind("trace: ", 0) == 0) {
        if (!obs::TraceContext::Parse(
                std::string_view(line).substr(7), &trace)) {
          throw MarshalError("malformed trace header '" + line + "'");
        }
        continue;  // the call this context belongs to is the next line
      }
      break;
    }
    return ParseTextCallLine(line, trace);
  }
};

// ---------------------------------------------------------------------------
// HIOP binary protocol
//
// Frame: "HIOP" | u8 version(1) | u8 msgtype (1=request, 2=reply) |
//        u8 flags | u8 reserved | u32 head_len | u32 payload_len |
//        head | payload.
// Head and payload are independent CDR sections (alignment restarts at 0).
//
// The flags byte was one of two always-zero reserved bytes through
// version 1; bit 0 now means "a trace service-context follows the
// standard head fields" (4 x u64 ids + 1 bool, CDR-encoded in the head
// section). Frames from peers that predate the field carry flags = 0 and
// decode exactly as before — the extension is additive. Unknown flag
// bits still fail the frame: they would change the head layout in ways
// this decoder cannot skip.

constexpr char kMagic[4] = {'H', 'I', 'O', 'P'};
constexpr uint8_t kVersion = 1;
constexpr uint8_t kFlagTrace = 0x01;  // head carries a trace context
constexpr uint8_t kKnownFlags = kFlagTrace;
constexpr size_t kHiopHeaderLen = 16;

struct HiopHeader {
  uint8_t msgtype = 0;
  uint8_t flags = 0;
  uint32_t head_len = 0;
  uint32_t payload_len = 0;
  size_t BodyLen() const {
    return static_cast<size_t>(head_len) + payload_len;
  }
};

// Validates the fixed 16-byte frame header. Throws MarshalError before
// any of the (untrusted) lengths are acted on.
HiopHeader ParseHiopHeader(const char* header) {
  if (std::memcmp(header, kMagic, 4) != 0) {
    throw MarshalError("bad HIOP magic");
  }
  if (static_cast<uint8_t>(header[4]) != kVersion) {
    throw MarshalError("unsupported HIOP version");
  }
  HiopHeader hdr;
  hdr.msgtype = static_cast<uint8_t>(header[5]);
  if (hdr.msgtype != 1 && hdr.msgtype != 2) {
    throw MarshalError("unknown HIOP message type");
  }
  hdr.flags = static_cast<uint8_t>(header[6]);
  // Unknown flag bits would change the head layout; the trailing
  // reserved byte is still always zero — anything else means the
  // stream is corrupt. Fail the frame before trusting its lengths.
  if ((hdr.flags & ~kKnownFlags) != 0 || header[7] != 0) {
    throw MarshalError("corrupt HIOP header (reserved bits set)");
  }
  std::memcpy(&hdr.head_len, header + 8, 4);
  std::memcpy(&hdr.payload_len, header + 12, 4);
  // 64 MiB frame cap: a corrupted length must not OOM the server.
  if (hdr.head_len > (1u << 20) || hdr.payload_len > (64u << 20)) {
    throw MarshalError("HIOP frame too large");
  }
  return hdr;
}

// Decodes the frame body at `body_off` within `slab` into a readable
// call (a view over the slab — no bytes copied). Shared by the blocking
// reader (body_off 0 of a dedicated slab) and the incremental decoder
// (body at an arbitrary offset of the connection's receive slab).
std::unique_ptr<BinaryCall> DecodeHiopBody(const HiopHeader& hdr,
                                           const bytes::IoBufPtr& slab,
                                           size_t body_off) {
  BinaryCall head(slab, body_off, hdr.head_len);
  auto call = std::make_unique<BinaryCall>(slab, body_off + hdr.head_len,
                                           hdr.payload_len);
  call->SetCallId(head.GetULongLong());
  if (hdr.msgtype == 1) {
    call->SetKind(CallKind::kRequest);
    call->SetOneway(head.GetBoolean());
    call->SetTarget(head.GetString());
    call->SetOperation(head.GetString());
  } else {
    call->SetKind(CallKind::kReply);
    uint8_t status = head.GetOctet();
    if (status > 3) throw MarshalError("malformed reply status");
    call->SetStatus(static_cast<CallStatus>(status));
    call->SetErrorText(head.GetString());
  }
  if ((hdr.flags & kFlagTrace) != 0) {
    obs::TraceContext trace;
    trace.trace_hi = head.GetULongLong();
    trace.trace_lo = head.GetULongLong();
    trace.span_id = head.GetULongLong();
    trace.parent_span_id = head.GetULongLong();
    trace.sampled = head.GetBoolean();
    call->SetTrace(trace);
  }
  return call;
}

// Frames `call` into `out`: 16-byte header by copy, then the head and
// payload sections appended BY REFERENCE — the marshaled bytes are never
// assembled contiguously, and the refcounted slabs keep them alive for
// as long as `out` does (a queued reactor reply outlives its Call).
void BuildHiopFrame(bytes::BufferChain& out, const Call& call) {
  const auto* bin = dynamic_cast<const BinaryCall*>(&call);
  if (bin == nullptr) {
    throw MarshalError("hiop protocol given a non-binary Call");
  }
  BinaryCall head;
  head.PutULongLong(call.CallId());
  if (call.Kind() == CallKind::kRequest) {
    head.PutBoolean(call.Oneway());
    head.PutString(call.Target());
    head.PutString(call.Operation());
  } else {
    head.PutOctet(static_cast<uint8_t>(call.Status()));
    head.PutString(call.ErrorText());
  }
  uint8_t flags = 0;
  if (call.Trace().Valid()) {
    flags |= kFlagTrace;
    const obs::TraceContext& trace = call.Trace();
    head.PutULongLong(trace.trace_hi);
    head.PutULongLong(trace.trace_lo);
    head.PutULongLong(trace.span_id);
    head.PutULongLong(trace.parent_span_id);
    head.PutBoolean(trace.sampled);
  }
  char header[kHiopHeaderLen];
  std::memcpy(header, kMagic, 4);
  header[4] = static_cast<char>(kVersion);
  header[5] = call.Kind() == CallKind::kRequest ? 1 : 2;
  header[6] = static_cast<char>(flags);
  header[7] = '\0';
  uint32_t head_len = static_cast<uint32_t>(head.PayloadSize());
  uint32_t payload_len = static_cast<uint32_t>(bin->PayloadSize());
  std::memcpy(header + 8, &head_len, 4);
  std::memcpy(header + 12, &payload_len, 4);

  out.Append(header, sizeof header);
  out.AppendChain(head.Chain());
  out.AppendChain(bin->Chain());
}

// Incremental HIOP framing over the connection's receive slab: once the
// whole frame is present, the decoded call is a view at the frame's
// offset within that very slab — the same zero-copy unmarshal as the
// blocking path, without the per-frame dedicated slab.
class HiopFrameDecoder final : public FrameDecoder {
 public:
  std::unique_ptr<Call> TryParseFrame(net::IncomingBuffer& in) override {
    if (in.Available() < kHiopHeaderLen) {
      in.Reserve(kHiopHeaderLen);
      return nullptr;
    }
    HiopHeader hdr = ParseHiopHeader(in.Data());
    size_t frame_len = kHiopHeaderLen + hdr.BodyLen();
    if (in.Available() < frame_len) {
      // The header told us exactly how much contiguous room the frame
      // needs; reserve it once so no further rolls happen mid-frame.
      in.Reserve(frame_len);
      return nullptr;
    }
    size_t body_off = in.Pos() + kHiopHeaderLen;
    bytes::IoBufPtr slab = in.Slab();
    in.Consume(frame_len);
    std::unique_ptr<BinaryCall> call = DecodeHiopBody(hdr, slab, body_off);
    // Arena-donation gate: only the frame that fully drained the buffer
    // may hand its slab's free tail to a dispatch arena (the buffer
    // rolls to a fresh slab). Otherwise the slab still backs unparsed
    // bytes or upcoming recv()s and must stay shared.
    if (!in.TakeSlabIfDrained()) call->SetFrameShared();
    return call;
  }
};

class HiopProtocol final : public Protocol {
 public:
  std::string_view Name() const override { return "hiop"; }

  std::unique_ptr<Call> NewCall() const override {
    return std::make_unique<BinaryCall>();
  }

  void WriteCall(net::ByteChannel& channel, const Call& call) const override {
    // Scatter-gather framing: WritevAll hands the chain's slices to the
    // kernel as-is (see BuildHiopFrame).
    bytes::BufferChain frame;
    BuildHiopFrame(frame, call);
    channel.WritevAll(frame);
  }

  void EncodeCall(bytes::BufferChain& out, const Call& call) const override {
    BuildHiopFrame(out, call);
  }

  std::unique_ptr<FrameDecoder> NewFrameDecoder() const override {
    return std::make_unique<HiopFrameDecoder>();
  }

  std::unique_ptr<Call> ReadCall(net::BufferedReader& reader) const override {
    char header[kHiopHeaderLen];
    if (!reader.ReadExact(header, sizeof header)) return nullptr;
    HiopHeader hdr = ParseHiopHeader(header);
    // One pooled slab holds the whole frame body; the head decoder and
    // the returned call are views into it (the call retains the slab, so
    // Get*View results stay valid for the call's lifetime). The frame
    // header already promised these bytes, so EOF here is mid-frame.
    size_t total = hdr.BodyLen();
    bytes::IoBufPtr slab =
        bytes::IoBufPool::Global().Get(total > 0 ? total : 1);
    if (total != 0 && !reader.ReadExact(slab->Data(), total)) {
      throw NetError("connection closed mid-frame");
    }
    // Mark the frame bytes written: Size() is where a dispatch arena
    // seeded from this slab starts its scratch region.
    slab->Advance(total);
    return DecodeHiopBody(hdr, slab, 0);
  }
};

// ---------------------------------------------------------------------------
// Registry

std::mutex& RegistryMutex() {
  static std::mutex m;
  return m;
}

std::vector<const Protocol*>& Registry() {
  static std::vector<const Protocol*> protocols = [] {
    static TextProtocol text;
    static HiopProtocol hiop;
    return std::vector<const Protocol*>{&text, &hiop};
  }();
  return protocols;
}

}  // namespace

const Protocol* FindProtocol(std::string_view name) {
  std::lock_guard lock(RegistryMutex());
  for (const Protocol* p : Registry()) {
    if (p->Name() == name) return p;
  }
  return nullptr;
}

void RegisterProtocol(const Protocol* protocol) {
  if (protocol == nullptr) return;
  std::lock_guard lock(RegistryMutex());
  for (const Protocol* p : Registry()) {
    if (p->Name() == protocol->Name()) {
      throw HdError("protocol '" + std::string(protocol->Name()) +
                    "' already registered");
    }
  }
  Registry().push_back(protocol);
}

std::vector<std::string> ProtocolNames() {
  std::lock_guard lock(RegistryMutex());
  std::vector<std::string> out;
  for (const Protocol* p : Registry()) out.emplace_back(p->Name());
  return out;
}

}  // namespace heidi::wire
