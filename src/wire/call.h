// The Call abstraction (§3.1, Fig 4/5): a remote method call being
// assembled or decoded. A Call provides marshal/unmarshal functions for
// all primitive data types plus begin/end structuring functions so that
// composite types (structs, sequences, by-value objects) can be
// represented — exactly the surface the paper describes.
//
// A Call instance is either *writable* (created empty, Put* used) or
// *readable* (decoded off the wire, Get* used). Begin/End are dual-mode:
// they emit group markers when writing and consume/verify them when
// reading, so generated marshaling code has the same shape on both sides.
//
// Wire widths follow IDL: long is 32-bit on the wire regardless of the
// C++ `long` width; Put/Get use fixed-width types.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>

#include "obs/trace.h"
#include "support/annotations.h"
#include "support/arena.h"
#include "support/bytes.h"

namespace heidi::wire {

enum class CallKind : uint8_t { kRequest, kReply };

enum class CallStatus : uint8_t {
  kOk = 0,
  kSystemError = 1,    // transport/dispatch failure (unknown object/op, ...)
  kUserException = 2,  // the remote implementation raised an IDL exception
  kTimeout = 3,        // the call's deadline expired (or the connection is
                       // dying and pending calls are being failed); both
                       // protocols frame it so intermediaries can relay it
};

class Call {
 public:
  virtual ~Call() = default;

  // --- header ------------------------------------------------------------
  CallKind Kind() const { return kind_; }
  void SetKind(CallKind kind) {
    kind_ = kind;
    Touch();
  }

  uint64_t CallId() const { return call_id_; }
  void SetCallId(uint64_t id) {
    call_id_ = id;
    Touch();
  }

  // Stringified object reference of the target (the Call header, §3.1).
  const std::string& Target() const {
    return target_shared_ != nullptr ? *target_shared_ : target_;
  }
  void SetTarget(std::string target) {
    target_ = std::move(target);
    target_shared_.reset();
    Touch();
  }
  // Interned form: the orb passes ObjectRef::ToStringShared() here so
  // every request to one target shares a single immortal string instead
  // of copying "@tcp:host:port#id#repoid" per call.
  void SetTarget(std::shared_ptr<const std::string> target) {
    target_shared_ = std::move(target);
    target_.clear();
    Touch();
  }

  const std::string& Operation() const {
    return operation_shared_ != nullptr ? *operation_shared_ : operation_;
  }
  void SetOperation(std::string op) {
    operation_ = std::move(op);
    operation_shared_.reset();
    Touch();
  }
  void SetOperation(std::shared_ptr<const std::string> op) {
    operation_shared_ = std::move(op);
    operation_.clear();
    Touch();
  }

  bool Oneway() const { return oneway_; }
  void SetOneway(bool oneway) {
    oneway_ = oneway;
    Touch();
  }

  CallStatus Status() const { return status_; }
  void SetStatus(CallStatus status) {
    status_ = status;
    Touch();
  }

  // Client-side transmission hint, never marshaled: marks the operation
  // safe to re-execute, so the retry policy may resend the request after
  // an *indeterminate* transport failure (one where the server may have
  // already executed it). Oneways are implicitly retryable.
  bool Idempotent() const { return idempotent_; }
  void SetIdempotent(bool idempotent) { idempotent_ = idempotent; }

  // Error/exception text for non-kOk replies.
  const std::string& ErrorText() const { return error_text_; }
  void SetErrorText(std::string text) {
    error_text_ = std::move(text);
    Touch();
  }

  // Trace context carried alongside the call header and propagated on the
  // wire by both protocols (a "trace:" header line in text, a flagged
  // service-context field in HIOP). An invalid (all-zero) context means
  // the peer sent none — old peers interoperate unchanged.
  const obs::TraceContext& Trace() const { return trace_; }
  void SetTrace(const obs::TraceContext& ctx) {
    trace_ = ctx;
    Touch();
  }

  // Mutation counter over everything a protocol encodes (header fields
  // and — via subclass Touch() calls — payload). Encode caches key on
  // it: a WriteCall of an unchanged call (a retry resending the same
  // request) can reuse previously rendered bytes.
  uint64_t Revision() const { return revision_; }

  // Local-only creation timestamp (obs::NowNs), never marshaled: set by
  // Orb::NewRequest when a tracer is attached so the invocation path can
  // report marshal time (NewRequest -> Invoke) as a span stage. 0 = unset.
  int64_t BornNs() const { return born_ns_; }
  void SetBornNs(int64_t ns) { born_ns_ = ns; }

  // --- marshaling (writable calls) ----------------------------------------
  virtual void PutBoolean(bool v) = 0;
  virtual void PutChar(char v) = 0;
  virtual void PutOctet(uint8_t v) = 0;
  virtual void PutShort(int16_t v) = 0;
  virtual void PutUShort(uint16_t v) = 0;
  virtual void PutLong(int32_t v) = 0;
  virtual void PutULong(uint32_t v) = 0;
  virtual void PutLongLong(int64_t v) = 0;
  virtual void PutULongLong(uint64_t v) = 0;
  virtual void PutFloat(float v) = 0;
  virtual void PutDouble(double v) = 0;
  virtual void PutString(std::string_view v) = 0;
  // Enums travel as their member index.
  virtual void PutEnum(int32_t v) { PutLong(v); }
  // Bulk octets (length-prefixed) — the USC-style fast path (§2).
  virtual void PutBytes(std::string_view bytes) = 0;

  // --- unmarshaling (readable calls); throw MarshalError on mismatch ------
  virtual bool GetBoolean() = 0;
  virtual char GetChar() = 0;
  virtual uint8_t GetOctet() = 0;
  virtual int16_t GetShort() = 0;
  virtual uint16_t GetUShort() = 0;
  virtual int32_t GetLong() = 0;
  virtual uint32_t GetULong() = 0;
  virtual int64_t GetLongLong() = 0;
  virtual uint64_t GetULongLong() = 0;
  virtual float GetFloat() = 0;
  virtual double GetDouble() = 0;
  virtual std::string GetString() = 0;
  virtual int32_t GetEnum() { return GetLong(); }
  virtual std::string GetBytes() = 0;

  // Zero-copy reads: the returned view stays valid for the life of this
  // call (it points into the retained inbound frame, or into storage the
  // call keeps). The copying GetString/GetBytes remain the compatibility
  // surface; these are the fast path. The base implementations fall back
  // to copy-and-retain so custom Call subclasses inherit correct —
  // merely not zero-copy — behavior. The views die with this call (or
  // with the dispatch arena, whichever ends first): lifetimebound makes
  // clang reject views taken from a temporary or returned past a local
  // call, and nodiscard catches a view whose retain was paid for nothing.
  HEIDI_NODISCARD("an unconsumed view still pays its retain")
  virtual std::string_view GetStringView() HEIDI_LIFETIMEBOUND {
    return RetainForView(GetString());
  }
  HEIDI_NODISCARD("an unconsumed view still pays its retain")
  virtual std::string_view GetBytesView() HEIDI_LIFETIMEBOUND {
    return RetainForView(GetBytes());
  }

  // --- structuring ---------------------------------------------------------
  // Writing: open/close a named group. Reading: consume and verify the
  // matching markers (text protocol); no-ops on self-delimiting encodings.
  virtual void Begin(std::string_view label) = 0;
  virtual void End() = 0;

  // Sequence lengths (convention: PutLength before the elements).
  void PutLength(uint32_t n) { PutULong(n); }
  uint32_t GetLength() { return GetULong(); }

  // True if a readable call has unconsumed payload (diagnostics/tests).
  virtual bool HasMore() const = 0;

  // Approximate encoded payload size in bytes (benchmarks).
  virtual size_t PayloadSize() const = 0;

  // --- dispatch arena ------------------------------------------------------
  // The server attaches one per-dispatch scratch arena to both the
  // request and the reply call for the duration of a dispatch; decode
  // scratch (unescape buffers, RetainForView copies) and reply staging
  // then bump-allocate from it instead of the heap. The arena is stack-
  // owned by the dispatch loop — it must be detached (AttachArena(nullptr))
  // before the dispatch returns. Null = heap behavior, unchanged.
  void AttachArena(support::Arena* arena) { arena_ = arena; }
  support::Arena* GetArena() const { return arena_; }

  // The pooled slab holding this (readable) call's inbound frame, if the
  // protocol retained one — the seed for the dispatch arena. Default:
  // none (writable calls, owned-copy decodes).
  virtual bytes::IoBufPtr RetainedFrame() const { return {}; }

  // Debug lifetime assertion hook: poisons every byte a Get*View of this
  // call may have handed out, so a view that escaped its dispatch reads
  // 0xDD garbage (and fails tests) instead of silently working until the
  // slab is recycled. No-op in release builds and for owning decodes.
  virtual void InvalidateViews() {}

 protected:
  // Subclasses call this whenever encoded payload changes (Put*), so
  // Revision() covers the full wire image.
  void Touch() { ++revision_; }

  // Stashes a decoded value on the call so a view of it can outlive the
  // decode step. With a dispatch arena attached the copy lands in arena
  // scratch (freed wholesale when the dispatch ends); otherwise storage
  // is a lazily created deque — calls that never hand out a fallback
  // view pay nothing.
  std::string_view RetainForView(std::string value) HEIDI_LIFETIMEBOUND {
    if (arena_ != nullptr) return arena_->CopyString(value);
    if (retained_ == nullptr) {
      retained_ = std::make_unique<std::deque<std::string>>();
    }
    retained_->push_back(std::move(value));
    return retained_->back();
  }

 private:
  CallKind kind_ = CallKind::kRequest;
  uint64_t call_id_ = 0;
  std::string target_;
  std::shared_ptr<const std::string> target_shared_;
  std::string operation_;
  std::shared_ptr<const std::string> operation_shared_;
  bool oneway_ = false;
  bool idempotent_ = false;
  CallStatus status_ = CallStatus::kOk;
  std::string error_text_;
  obs::TraceContext trace_;
  int64_t born_ns_ = 0;
  uint64_t revision_ = 0;
  support::Arena* arena_ = nullptr;  // borrowed, dispatch-scoped
  // Deque: stable addresses across growth (views point into elements).
  std::unique_ptr<std::deque<std::string>> retained_;
};

}  // namespace heidi::wire
