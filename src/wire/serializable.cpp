#include "wire/serializable.h"

namespace heidi::wire {

const HdTypeInfo& HdSerializable::TypeInfo() {
  static const HdTypeInfo info{std::string(kRepoId), {}};
  static const bool registered = [] {
    HdTypeRegistry::Instance().Register(&info);
    return true;
  }();
  (void)registered;
  return info;
}

}  // namespace heidi::wire
