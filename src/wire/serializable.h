// HdSerializable — the marshaling interface an object implements to be
// eligible for pass-by-value (`incopy`, §3.1).
//
// Whether a particular object actually implements it is determined the
// way the paper describes: first through Heidi's dynamic type check
// (obj->IsA(HdSerializable::kRepoId)), then the C++-level cross-cast. The
// semantics match Java RMI's Serializable-but-not-Remote parameters: the
// receiving side reconstructs a fresh copy from the marshaled state.
#pragma once

#include <string_view>

#include "support/typeinfo.h"
#include "wire/call.h"

namespace heidi::wire {

class HdSerializable {
 public:
  static constexpr std::string_view kRepoId = "IDL:Heidi/Serializable:1.0";

  // Type-info node serializable classes list among their parents, so the
  // dynamic-type check obj->IsA(kRepoId) sees through to it.
  static const HdTypeInfo& TypeInfo();

  virtual ~HdSerializable() = default;

  // Writes this object's state into `call` (between the value group's
  // Begin/End, which the ORB emits).
  virtual void MarshalState(Call& call) const = 0;

  // Restores state from `call`; the instance was default-constructed by
  // the value factory registered for its repository id.
  virtual void UnmarshalState(Call& call) = 0;
};

}  // namespace heidi::wire
