// The HeidiRMI text protocol (§3.1): each request or reply is one
// newline-terminated line of ASCII. Fields are space-separated,
// %-escaped tokens; every payload token carries a one-character type tag
// so a human reading (or typing!) the stream can follow it — the paper's
// §4.2 telnet-debugging story depends on this legibility.
//
// Line grammar:
//   REQ <id> <O|W> <target> <operation> <payload tokens...>
//   REP <id> <OK|SYS|USR|TMO> <error> <payload tokens...>
// <id> is the correlation field: a multiplexed connection matches REP
// lines to outstanding REQ lines by it, in any order.
// Payload tokens:
//   b:T b:F      boolean            i:-42   signed integers (all widths)
//   u:42         unsigned integers  f:1.5   float/double (%.17g)
//   c:a          char               o:255   octet
//   s:hello%20x  string             e:2     enum (member index)
//   y:<bytes>    bulk octets        [:<label>  ]   group begin/end
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "wire/call.h"

namespace heidi::wire {

class TextCall final : public Call {
 public:
  // Writable, empty call.
  TextCall() = default;
  // Readable call over decoded payload tokens (header set by the caller).
  explicit TextCall(std::vector<std::string> tokens)
      : tokens_(std::move(tokens)), readable_(true) {}

  void PutBoolean(bool v) override;
  void PutChar(char v) override;
  void PutOctet(uint8_t v) override;
  void PutShort(int16_t v) override;
  void PutUShort(uint16_t v) override;
  void PutLong(int32_t v) override;
  void PutULong(uint32_t v) override;
  void PutLongLong(int64_t v) override;
  void PutULongLong(uint64_t v) override;
  void PutFloat(float v) override;
  void PutDouble(double v) override;
  void PutString(std::string_view v) override;
  void PutBytes(std::string_view bytes) override;

  bool GetBoolean() override;
  char GetChar() override;
  uint8_t GetOctet() override;
  int16_t GetShort() override;
  uint16_t GetUShort() override;
  int32_t GetLong() override;
  uint32_t GetULong() override;
  int64_t GetLongLong() override;
  uint64_t GetULongLong() override;
  float GetFloat() override;
  double GetDouble() override;
  std::string GetString() override;
  std::string GetBytes() override;
  // Unescaped tokens are viewed in place (zero-copy); tokens containing
  // a '%' escape are decoded once and retained on the call.
  std::string_view GetStringView() HEIDI_LIFETIMEBOUND override;
  std::string_view GetBytesView() HEIDI_LIFETIMEBOUND override;

  void Begin(std::string_view label) override;
  void End() override;

  bool HasMore() const override { return cursor_ < tokens_.size(); }
  size_t PayloadSize() const override;

  // Debug lifetime assertion: poisons the readable token storage that
  // in-place Get*View views point into, so a view that escaped its
  // dispatch reads 0xDD garbage instead of silently stale bytes.
  void InvalidateViews() override;

  const std::vector<std::string>& Tokens() const { return tokens_; }

  // --- encode cache (used by the text protocol's WriteCall) --------------
  // WriteCall renders the full wire frame (optional trace header line +
  // call line) once and stores it here keyed on Revision(); an unchanged
  // call — e.g. a retry resending the same request — reuses the bytes
  // instead of rebuilding the line. The mutex also serializes the odd
  // case of one call being written to two channels at once.
  std::mutex& EncodeMutex() const { return encode_mutex_; }
  bool EncodingValidFor(uint64_t revision) const {
    return encode_valid_ && encoded_revision_ == revision;
  }
  const std::string& Encoding() const { return encoded_; }
  void StoreEncoding(std::string encoded, uint64_t revision) const {
    encoded_ = std::move(encoded);
    encoded_revision_ = revision;
    encode_valid_ = true;
  }

 private:
  void PutToken(char tag, std::string_view body);
  // Validates the next token's tag and advances past it.
  const std::string& NextToken(char tag, const char* what);
  // Consumes the next token, checking its tag.
  std::string TakeToken(char tag, const char* what);
  std::string_view TakeTokenView(char tag, const char* what);
  int64_t TakeSigned(int64_t min, int64_t max, const char* what);
  uint64_t TakeUnsigned(uint64_t max, const char* what);

  std::vector<std::string> tokens_;
  size_t cursor_ = 0;
  bool readable_ = false;

  mutable std::mutex encode_mutex_;
  mutable std::string encoded_;
  mutable uint64_t encoded_revision_ = 0;
  mutable bool encode_valid_ = false;
};

}  // namespace heidi::wire
