#include "wire/text.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/error.h"
#include "support/strings.h"

namespace heidi::wire {

namespace {

[[noreturn]] void FailType(const char* what, const std::string& got) {
  throw MarshalError(std::string("expected ") + what + ", got token '" + got +
                     "'");
}

}  // namespace

void TextCall::PutToken(char tag, std::string_view body) {
  if (readable_) throw MarshalError("Put on a readable call");
  std::string token(1, tag);
  token.push_back(':');
  token += str::EscapeToken(body);
  tokens_.push_back(std::move(token));
  Touch();  // payload changed: any cached encoding is stale
}

const std::string& TextCall::NextToken(char tag, const char* what) {
  if (!readable_) throw MarshalError("Get on a writable call");
  if (cursor_ >= tokens_.size()) {
    throw MarshalError(std::string("call payload exhausted reading ") + what);
  }
  const std::string& token = tokens_[cursor_];
  if (token.size() < 2 || token[0] != tag || token[1] != ':') {
    FailType(what, token);
  }
  ++cursor_;
  return token;
}

std::string TextCall::TakeToken(char tag, const char* what) {
  const std::string& token = NextToken(tag, what);
  return str::UnescapeToken(std::string_view(token).substr(2));
}

std::string_view TextCall::TakeTokenView(char tag, const char* what) {
  const std::string& token = NextToken(tag, what);
  std::string_view body = std::string_view(token).substr(2);
  // No escapes: the stored token IS the value — view it in place
  // (tokens_ is append-only while readable, so the address is stable).
  if (body.find('%') == std::string_view::npos) return body;
  // Escaped: unescape into the dispatch arena when one is attached
  // (unescaping never grows, so body.size() bytes always suffice);
  // otherwise fall back to a retained heap copy.
  if (support::Arena* arena = GetArena()) {
    char* out = arena->AllocateChars(body.size());
    return {out, str::UnescapeTokenInto(body, out)};
  }
  return RetainForView(str::UnescapeToken(body));
}

int64_t TextCall::TakeSigned(int64_t min, int64_t max, const char* what) {
  std::string body = TakeToken('i', what);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(body.c_str(), &end, 10);
  if (errno != 0 || end == body.c_str() || *end != '\0') {
    throw MarshalError(std::string("malformed integer for ") + what + ": '" +
                       body + "'");
  }
  if (v < min || v > max) {
    throw MarshalError(std::string("integer out of range for ") + what +
                       ": " + body);
  }
  return v;
}

uint64_t TextCall::TakeUnsigned(uint64_t max, const char* what) {
  std::string body = TakeToken('u', what);
  errno = 0;
  char* end = nullptr;
  if (!body.empty() && body[0] == '-') {
    throw MarshalError(std::string("negative value for ") + what);
  }
  unsigned long long v = std::strtoull(body.c_str(), &end, 10);
  if (errno != 0 || end == body.c_str() || *end != '\0') {
    throw MarshalError(std::string("malformed integer for ") + what + ": '" +
                       body + "'");
  }
  if (v > max) {
    throw MarshalError(std::string("integer out of range for ") + what +
                       ": " + body);
  }
  return v;
}

void TextCall::PutBoolean(bool v) { PutToken('b', v ? "T" : "F"); }
void TextCall::PutChar(char v) { PutToken('c', std::string_view(&v, 1)); }
void TextCall::PutOctet(uint8_t v) { PutToken('o', std::to_string(v)); }
void TextCall::PutShort(int16_t v) { PutToken('i', std::to_string(v)); }
void TextCall::PutUShort(uint16_t v) { PutToken('u', std::to_string(v)); }
void TextCall::PutLong(int32_t v) { PutToken('i', std::to_string(v)); }
void TextCall::PutULong(uint32_t v) { PutToken('u', std::to_string(v)); }
void TextCall::PutLongLong(int64_t v) { PutToken('i', std::to_string(v)); }
void TextCall::PutULongLong(uint64_t v) { PutToken('u', std::to_string(v)); }

void TextCall::PutFloat(float v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(v));
  PutToken('f', buf);
}

void TextCall::PutDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  PutToken('f', buf);
}

void TextCall::PutString(std::string_view v) { PutToken('s', v); }
void TextCall::PutBytes(std::string_view bytes) { PutToken('y', bytes); }

bool TextCall::GetBoolean() {
  std::string body = TakeToken('b', "boolean");
  if (body == "T") return true;
  if (body == "F") return false;
  throw MarshalError("malformed boolean token '" + body + "'");
}

char TextCall::GetChar() {
  std::string body = TakeToken('c', "char");
  if (body.size() != 1) throw MarshalError("malformed char token");
  return body[0];
}

uint8_t TextCall::GetOctet() {
  std::string body = TakeToken('o', "octet");
  errno = 0;
  char* end = nullptr;
  unsigned long v = std::strtoul(body.c_str(), &end, 10);
  if (errno != 0 || end == body.c_str() || *end != '\0' || v > 255) {
    throw MarshalError("malformed octet token '" + body + "'");
  }
  return static_cast<uint8_t>(v);
}

int16_t TextCall::GetShort() {
  return static_cast<int16_t>(TakeSigned(INT16_MIN, INT16_MAX, "short"));
}
uint16_t TextCall::GetUShort() {
  return static_cast<uint16_t>(TakeUnsigned(UINT16_MAX, "unsigned short"));
}
int32_t TextCall::GetLong() {
  return static_cast<int32_t>(TakeSigned(INT32_MIN, INT32_MAX, "long"));
}
uint32_t TextCall::GetULong() {
  return static_cast<uint32_t>(TakeUnsigned(UINT32_MAX, "unsigned long"));
}
int64_t TextCall::GetLongLong() {
  return TakeSigned(INT64_MIN, INT64_MAX, "long long");
}
uint64_t TextCall::GetULongLong() {
  return TakeUnsigned(UINT64_MAX, "unsigned long long");
}

float TextCall::GetFloat() {
  std::string body = TakeToken('f', "float");
  errno = 0;
  char* end = nullptr;
  float v = std::strtof(body.c_str(), &end);
  if (end == body.c_str() || *end != '\0') {
    throw MarshalError("malformed float token '" + body + "'");
  }
  return v;
}

double TextCall::GetDouble() {
  std::string body = TakeToken('f', "double");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(body.c_str(), &end);
  if (end == body.c_str() || *end != '\0') {
    throw MarshalError("malformed double token '" + body + "'");
  }
  return v;
}

std::string TextCall::GetString() { return TakeToken('s', "string"); }
std::string TextCall::GetBytes() { return TakeToken('y', "bytes"); }

std::string_view TextCall::GetStringView() {
  return TakeTokenView('s', "string");
}
std::string_view TextCall::GetBytesView() {
  return TakeTokenView('y', "bytes");
}

void TextCall::Begin(std::string_view label) {
  if (readable_) {
    std::string got = TakeToken('[', "group begin");
    if (got != label) {
      throw MarshalError("group mismatch: expected begin '" +
                         std::string(label) + "', got '" + got + "'");
    }
  } else {
    PutToken('[', label);
  }
}

void TextCall::End() {
  if (readable_) {
    if (cursor_ >= tokens_.size() || tokens_[cursor_] != "]") {
      throw MarshalError("expected group end");
    }
    ++cursor_;
  } else {
    tokens_.push_back("]");
    Touch();
  }
}

void TextCall::InvalidateViews() {
#ifndef NDEBUG
  if (!readable_) return;
  for (std::string& t : tokens_) {
    if (t.size() > 2) std::memset(t.data() + 2, 0xDD, t.size() - 2);
  }
#endif
}

size_t TextCall::PayloadSize() const {
  size_t total = 0;
  for (const std::string& t : tokens_) total += t.size() + 1;
  return total;
}

}  // namespace heidi::wire
