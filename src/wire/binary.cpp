#include "wire/binary.h"

#include <cstring>

#include "support/error.h"

namespace heidi::wire {

// This implementation assumes a little-endian host (x86/ARM in practice);
// a big-endian port would byte-swap in PutPrim/GetPrim. CDR's
// receiver-makes-right negotiation is out of scope.

void BinaryCall::Align(size_t n) {
  if (readable_) {
    size_t aligned = (cursor_ + n - 1) & ~(n - 1);
    if (aligned > buffer_.size()) {
      throw MarshalError("payload exhausted during alignment");
    }
    cursor_ = aligned;
  } else {
    while (buffer_.size() % n != 0) buffer_.push_back('\0');
  }
}

void BinaryCall::PutRaw(const void* data, size_t n) {
  if (readable_) throw MarshalError("Put on a readable call");
  buffer_.append(static_cast<const char*>(data), n);
}

void BinaryCall::GetRaw(void* data, size_t n, const char* what) {
  if (!readable_) throw MarshalError("Get on a writable call");
  if (cursor_ + n > buffer_.size()) {
    throw MarshalError(std::string("payload exhausted reading ") + what);
  }
  std::memcpy(data, buffer_.data() + cursor_, n);
  cursor_ += n;
}

void BinaryCall::PutBoolean(bool v) { PutPrim<uint8_t>(v ? 1 : 0); }
void BinaryCall::PutChar(char v) { PutPrim<char>(v); }
void BinaryCall::PutOctet(uint8_t v) { PutPrim<uint8_t>(v); }
void BinaryCall::PutShort(int16_t v) { PutPrim<int16_t>(v); }
void BinaryCall::PutUShort(uint16_t v) { PutPrim<uint16_t>(v); }
void BinaryCall::PutLong(int32_t v) { PutPrim<int32_t>(v); }
void BinaryCall::PutULong(uint32_t v) { PutPrim<uint32_t>(v); }
void BinaryCall::PutLongLong(int64_t v) { PutPrim<int64_t>(v); }
void BinaryCall::PutULongLong(uint64_t v) { PutPrim<uint64_t>(v); }
void BinaryCall::PutFloat(float v) { PutPrim<float>(v); }
void BinaryCall::PutDouble(double v) { PutPrim<double>(v); }

void BinaryCall::PutString(std::string_view v) {
  PutPrim<uint32_t>(static_cast<uint32_t>(v.size() + 1));
  PutRaw(v.data(), v.size());
  PutRaw("\0", 1);
}

void BinaryCall::PutBytes(std::string_view bytes) {
  PutPrim<uint32_t>(static_cast<uint32_t>(bytes.size()));
  PutRaw(bytes.data(), bytes.size());
}

bool BinaryCall::GetBoolean() {
  uint8_t v = GetPrim<uint8_t>("boolean");
  if (v > 1) throw MarshalError("malformed boolean");
  return v != 0;
}
char BinaryCall::GetChar() { return GetPrim<char>("char"); }
uint8_t BinaryCall::GetOctet() { return GetPrim<uint8_t>("octet"); }
int16_t BinaryCall::GetShort() { return GetPrim<int16_t>("short"); }
uint16_t BinaryCall::GetUShort() { return GetPrim<uint16_t>("ushort"); }
int32_t BinaryCall::GetLong() { return GetPrim<int32_t>("long"); }
uint32_t BinaryCall::GetULong() { return GetPrim<uint32_t>("ulong"); }
int64_t BinaryCall::GetLongLong() { return GetPrim<int64_t>("longlong"); }
uint64_t BinaryCall::GetULongLong() {
  return GetPrim<uint64_t>("ulonglong");
}
float BinaryCall::GetFloat() { return GetPrim<float>("float"); }
double BinaryCall::GetDouble() { return GetPrim<double>("double"); }

std::string BinaryCall::GetString() {
  uint32_t len = GetPrim<uint32_t>("string length");
  if (len == 0) throw MarshalError("malformed string (zero length)");
  if (cursor_ + len > buffer_.size()) {
    throw MarshalError("payload exhausted reading string");
  }
  std::string out(buffer_.data() + cursor_, len - 1);
  if (buffer_[cursor_ + len - 1] != '\0') {
    throw MarshalError("string not NUL-terminated");
  }
  cursor_ += len;
  return out;
}

std::string BinaryCall::GetBytes() {
  uint32_t len = GetPrim<uint32_t>("bytes length");
  if (cursor_ + len > buffer_.size()) {
    throw MarshalError("payload exhausted reading bytes");
  }
  std::string out(buffer_.data() + cursor_, len);
  cursor_ += len;
  return out;
}

void BinaryCall::Begin(std::string_view) {}
void BinaryCall::End() {}

}  // namespace heidi::wire
