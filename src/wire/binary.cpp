#include "wire/binary.h"

#include <cstring>

#include "support/error.h"

namespace heidi::wire {

// This implementation assumes a little-endian host (x86/ARM in practice);
// a big-endian port would byte-swap in PutPrim/GetPrim. CDR's
// receiver-makes-right negotiation is out of scope.

void BinaryCall::Align(size_t n) {
  if (readable_) {
    size_t aligned = (cursor_ + n - 1) & ~(n - 1);
    if (aligned > view_.size()) {
      throw MarshalError("payload exhausted during alignment");
    }
    cursor_ = aligned;
  } else {
    // CDR alignments are powers of two; mask instead of dividing.
    size_t misaligned = chain_.Size() & (n - 1);
    if (misaligned != 0) chain_.AppendZeros(n - misaligned);
  }
}

void BinaryCall::EnsureStaged() {
  staged_ = true;
  support::Arena* arena = GetArena();
  if (arena == nullptr) return;
  // DonateTail() is one-shot: the arena stops bumping in the seed slab
  // once the chain owns its tail, so scratch and reply bytes never
  // interleave.
  chain_.SeedWritableTail(arena->DonateTail());
}

void BinaryCall::PutRaw(const void* data, size_t n) {
  if (readable_) throw MarshalError("Put on a readable call");
  if (!staged_) EnsureStaged();
  chain_.Append(data, n);
  Touch();
}

void BinaryCall::GetRaw(void* data, size_t n, const char* what) {
  if (!readable_) throw MarshalError("Get on a writable call");
  if (cursor_ + n > view_.size()) {
    throw MarshalError(std::string("payload exhausted reading ") + what);
  }
  std::memcpy(data, view_.data() + cursor_, n);
  cursor_ += n;
}

void BinaryCall::PutBoolean(bool v) { PutPrim<uint8_t>(v ? 1 : 0); }
void BinaryCall::PutChar(char v) { PutPrim<char>(v); }
void BinaryCall::PutOctet(uint8_t v) { PutPrim<uint8_t>(v); }
void BinaryCall::PutShort(int16_t v) { PutPrim<int16_t>(v); }
void BinaryCall::PutUShort(uint16_t v) { PutPrim<uint16_t>(v); }
void BinaryCall::PutLong(int32_t v) { PutPrim<int32_t>(v); }
void BinaryCall::PutULong(uint32_t v) { PutPrim<uint32_t>(v); }
void BinaryCall::PutLongLong(int64_t v) { PutPrim<int64_t>(v); }
void BinaryCall::PutULongLong(uint64_t v) { PutPrim<uint64_t>(v); }
void BinaryCall::PutFloat(float v) { PutPrim<float>(v); }
void BinaryCall::PutDouble(double v) { PutPrim<double>(v); }

void BinaryCall::PutString(std::string_view v) {
  PutPrim<uint32_t>(static_cast<uint32_t>(v.size() + 1));
  PutRaw(v.data(), v.size());
  PutRaw("\0", 1);
}

void BinaryCall::PutBytes(std::string_view bytes) {
  PutPrim<uint32_t>(static_cast<uint32_t>(bytes.size()));
  PutRaw(bytes.data(), bytes.size());
}

bool BinaryCall::GetBoolean() {
  uint8_t v = GetPrim<uint8_t>("boolean");
  if (v > 1) throw MarshalError("malformed boolean");
  return v != 0;
}
char BinaryCall::GetChar() { return GetPrim<char>("char"); }
uint8_t BinaryCall::GetOctet() { return GetPrim<uint8_t>("octet"); }
int16_t BinaryCall::GetShort() { return GetPrim<int16_t>("short"); }
uint16_t BinaryCall::GetUShort() { return GetPrim<uint16_t>("ushort"); }
int32_t BinaryCall::GetLong() { return GetPrim<int32_t>("long"); }
uint32_t BinaryCall::GetULong() { return GetPrim<uint32_t>("ulong"); }
int64_t BinaryCall::GetLongLong() { return GetPrim<int64_t>("longlong"); }
uint64_t BinaryCall::GetULongLong() {
  return GetPrim<uint64_t>("ulonglong");
}
float BinaryCall::GetFloat() { return GetPrim<float>("float"); }
double BinaryCall::GetDouble() { return GetPrim<double>("double"); }

std::string_view BinaryCall::TakeStringView() {
  uint32_t len = GetPrim<uint32_t>("string length");
  if (len == 0) throw MarshalError("malformed string (zero length)");
  if (cursor_ + len > view_.size()) {
    throw MarshalError("payload exhausted reading string");
  }
  std::string_view out(view_.data() + cursor_, len - 1);
  if (view_[cursor_ + len - 1] != '\0') {
    throw MarshalError("string not NUL-terminated");
  }
  cursor_ += len;
  return out;
}

std::string_view BinaryCall::TakeBytesView() {
  uint32_t len = GetPrim<uint32_t>("bytes length");
  if (cursor_ + len > view_.size()) {
    throw MarshalError("payload exhausted reading bytes");
  }
  std::string_view out(view_.data() + cursor_, len);
  cursor_ += len;
  return out;
}

std::string BinaryCall::GetString() { return std::string(TakeStringView()); }
std::string BinaryCall::GetBytes() { return std::string(TakeBytesView()); }

// The views point into the retained frame slab (or the owned copy), so
// they share the call's lifetime — no retention copy needed.
std::string_view BinaryCall::GetStringView() { return TakeStringView(); }
std::string_view BinaryCall::GetBytesView() { return TakeBytesView(); }

void BinaryCall::Begin(std::string_view) {}
void BinaryCall::End() {}

void BinaryCall::InvalidateViews() {
#ifndef NDEBUG
  // Poison only the decode window of a frame-backed readable call: the
  // frame slab may also be carrying staged reply bytes past the window.
  if (readable_ && frame_ && !view_.empty()) {
    std::memset(const_cast<char*>(view_.data()), 0xDD, view_.size());
  }
#endif
}

void BinaryCall::ResetWritable() {
  if (readable_) throw MarshalError("ResetWritable on a readable call");
  chain_.Clear();
  staged_ = false;
  Touch();
}

}  // namespace heidi::wire
