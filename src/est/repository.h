// Interface Repository (paper §5): OmniBroker's compiler kept an abstract
// representation of parsed IDL in a possibly-persistent global Interface
// Repository so a distributed development environment could query
// interfaces without re-parsing; the paper suggests storing the EST there
// directly. This module is that suggestion, built: a store of ESTs keyed
// by source name, with lookup of any named entity by repository id, and
// persistence through the EST's external representation.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "est/node.h"

namespace heidi::est {

class InterfaceRepository {
 public:
  InterfaceRepository() = default;

  InterfaceRepository(const InterfaceRepository&) = delete;
  InterfaceRepository& operator=(const InterfaceRepository&) = delete;

  // Adds (or replaces) the EST of one translation unit, keyed by the
  // root's sourceName property. Returns the stored root.
  const Node& Add(std::unique_ptr<Node> root);

  // Parses + resolves + builds and adds in one step.
  const Node& AddSource(std::string_view idl_source,
                        std::string source_name);

  size_t SourceCount() const { return sources_.size(); }
  std::vector<std::string> SourceNames() const;

  // Root EST of one source; nullptr if unknown.
  const Node* FindSource(std::string_view source_name) const;

  // Looks a declaration node up by repository id across every stored
  // source ("IDL:Heidi/A:1.0" -> its Interface node). Searches
  // interfaces, enums, aliases, structs, exceptions and consts. Returns
  // nullptr if unknown. Later-added sources win on collisions.
  const Node* FindByRepoId(std::string_view repo_id) const;

  // All interface nodes across all sources (the IR query the OmniBroker
  // code generator ran per interface).
  std::vector<const Node*> AllInterfaces() const;

  // --- persistence (the "possibly persistent" IR) -------------------------
  // One text blob containing every source's EST; Load replaces the
  // current contents. Throws ParseError on malformed input.
  std::string Save() const;
  void Load(std::string_view text);

 private:
  void IndexSource(const Node& root);

  std::map<std::string, std::unique_ptr<Node>> sources_;
  std::map<std::string, const Node*> by_repo_id_;
};

}  // namespace heidi::est
