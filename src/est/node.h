// Enhanced Syntax Tree (EST) — the paper's central compiler data structure
// (§4, Fig 7/8).
//
// An EST node is a property bag (ordered key/value string pairs) plus a set
// of *named child lists*. Unlike a raw parse tree, children are grouped by
// kind into lists ("methodList", "attributeList", "paramList", ...), so a
// template's @foreach can exhaustively enumerate all elements of one kind
// regardless of how members were interleaved in the IDL source.
//
// Property values and names are plain strings: the EST is deliberately
// language-neutral so the same tree can drive C++, Java, and tcl templates.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace heidi::est {

class Node {
 public:
  Node(std::string kind, std::string name)
      : kind_(std::move(kind)), name_(std::move(name)) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& Kind() const { return kind_; }
  const std::string& Name() const { return name_; }

  // --- properties (insertion-ordered; duplicate keys overwrite) ----------
  void SetProp(std::string_view key, std::string_view value);
  // nullptr if absent.
  const std::string* FindProp(std::string_view key) const;
  // `fallback` if absent.
  std::string GetProp(std::string_view key,
                      std::string_view fallback = "") const;
  bool HasProp(std::string_view key) const { return FindProp(key) != nullptr; }
  const std::vector<std::pair<std::string, std::string>>& Props() const {
    return props_;
  }

  // --- named child lists (insertion-ordered) ------------------------------
  // Creates the list if absent; returns the new child.
  Node& AddChild(std::string_view list, std::unique_ptr<Node> child);
  Node& NewChild(std::string_view list, std::string kind, std::string name);
  // nullptr if no such list.
  const std::vector<std::unique_ptr<Node>>* FindList(
      std::string_view list) const;
  std::vector<std::string> ListNames() const;
  bool HasList(std::string_view list) const {
    return FindList(list) != nullptr;
  }
  // Total node count in this subtree (including this node).
  size_t TreeSize() const;

  // Deep structural equality (kind, name, props, lists, recursively).
  friend bool DeepEquals(const Node& a, const Node& b);

  // Deep copy.
  std::unique_ptr<Node> Clone() const;

 private:
  std::string kind_;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> props_;
  std::vector<std::pair<std::string, std::vector<std::unique_ptr<Node>>>>
      lists_;
};

bool DeepEquals(const Node& a, const Node& b);

}  // namespace heidi::est
