// EST external representation.
//
// The paper's prototype emitted a Perl program that rebuilds the EST inside
// the interpreter (Fig 8); evaluating that program was the hand-off between
// the parse stage and the code-generation stage. We reproduce the same
// hand-off with a line-oriented textual encoding:
//
//   EST 1                      header with format version
//   N <kind> <name>            open node
//   P <key> <value>            property of the open node
//   L <listname>               open child list
//   ...nested N/P/L/E/X...
//   E                          close list
//   X                          close node
//
// Fields are space-separated; kind/name/key/value are %-escaped with
// str::EscapeToken so arbitrary characters round-trip. Deserialize()
// rebuilds a structurally identical tree (DeepEquals holds), which
// bench_codegen uses to compare "re-parse external EST" vs "rebuild
// in-process" — the trade-off §4.1 discusses.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "est/node.h"

namespace heidi::est {

std::string Serialize(const Node& root);

// Throws ParseError on malformed input.
std::unique_ptr<Node> Deserialize(std::string_view text);

}  // namespace heidi::est
