#include "est/repository.h"

#include "est/builder.h"
#include "est/serialize.h"
#include "idl/sema.h"
#include "support/error.h"
#include "support/strings.h"

namespace heidi::est {

namespace {
// Lists whose elements carry a repoId worth indexing.
constexpr const char* kIndexedLists[] = {
    "interfaceList", "externalList",  "enumList",  "aliasList",
    "structList",    "unionList",     "exceptionList", "constList",
};
}  // namespace

const Node& InterfaceRepository::Add(std::unique_ptr<Node> root) {
  std::string name = root->GetProp("sourceName");
  if (name.empty()) {
    throw HdError("cannot store an EST without a sourceName");
  }
  const Node* raw = root.get();
  sources_[name] = std::move(root);
  // Rebuild the id index: replacement may have removed entries.
  by_repo_id_.clear();
  for (const auto& [source, node] : sources_) IndexSource(*node);
  return *raw;
}

const Node& InterfaceRepository::AddSource(std::string_view idl_source,
                                           std::string source_name) {
  idl::Specification spec =
      idl::ParseAndResolve(idl_source, std::move(source_name));
  return Add(BuildEst(spec));
}

std::vector<std::string> InterfaceRepository::SourceNames() const {
  std::vector<std::string> out;
  for (const auto& [name, node] : sources_) out.push_back(name);
  return out;
}

const Node* InterfaceRepository::FindSource(
    std::string_view source_name) const {
  auto it = sources_.find(std::string(source_name));
  return it == sources_.end() ? nullptr : it->second.get();
}

void InterfaceRepository::IndexSource(const Node& root) {
  for (const char* list : kIndexedLists) {
    const auto* nodes = root.FindList(list);
    if (nodes == nullptr) continue;
    for (const auto& node : *nodes) {
      std::string repo_id = node->GetProp("repoId");
      if (!repo_id.empty()) by_repo_id_[repo_id] = node.get();
    }
  }
}

const Node* InterfaceRepository::FindByRepoId(std::string_view repo_id) const {
  auto it = by_repo_id_.find(std::string(repo_id));
  return it == by_repo_id_.end() ? nullptr : it->second;
}

std::vector<const Node*> InterfaceRepository::AllInterfaces() const {
  std::vector<const Node*> out;
  for (const auto& [name, root] : sources_) {
    const auto* interfaces = root->FindList("interfaceList");
    if (interfaces == nullptr) continue;
    for (const auto& node : *interfaces) out.push_back(node.get());
  }
  return out;
}

// Persistence format: a count line, then per source a header line with the
// escaped source name followed by its EST blob delimited by a sentinel.
std::string InterfaceRepository::Save() const {
  std::string out = "IR 1 " + std::to_string(sources_.size()) + "\n";
  for (const auto& [name, root] : sources_) {
    out += "SOURCE " + str::EscapeToken(name) + "\n";
    out += Serialize(*root);
    out += "ENDSOURCE\n";
  }
  return out;
}

void InterfaceRepository::Load(std::string_view text) {
  std::map<std::string, std::unique_ptr<Node>> loaded;
  size_t pos = 0;
  auto next_line = [&]() -> std::string_view {
    size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    return line;
  };

  std::string_view header = next_line();
  auto fields = str::Split(header, ' ');
  if (fields.size() != 3 || fields[0] != "IR" || fields[1] != "1") {
    throw ParseError("malformed interface repository header");
  }
  while (pos < text.size()) {
    std::string_view line = next_line();
    if (str::Trim(line).empty()) continue;
    if (!str::StartsWith(line, "SOURCE ")) {
      throw ParseError("expected SOURCE line in interface repository");
    }
    std::string name = str::UnescapeToken(line.substr(7));
    size_t end = text.find("\nENDSOURCE\n", pos);
    if (end == std::string_view::npos) {
      throw ParseError("unterminated SOURCE block for '" + name + "'");
    }
    std::string_view blob = text.substr(pos, end + 1 - pos);
    loaded[name] = Deserialize(blob);
    pos = end + std::string_view("\nENDSOURCE\n").size();
  }

  sources_ = std::move(loaded);
  by_repo_id_.clear();
  for (const auto& [source, node] : sources_) IndexSource(*node);
}

}  // namespace heidi::est
