#include "est/serialize.h"

#include <sstream>
#include <vector>

#include "support/error.h"
#include "support/strings.h"

namespace heidi::est {

namespace {

void SerializeNode(const Node& node, std::string& out) {
  out += "N " + str::EscapeToken(node.Kind()) + " " +
         str::EscapeToken(node.Name()) + "\n";
  for (const auto& [key, value] : node.Props()) {
    out += "P " + str::EscapeToken(key) + " " + str::EscapeToken(value) + "\n";
  }
  for (const std::string& list : node.ListNames()) {
    out += "L " + str::EscapeToken(list) + "\n";
    for (const auto& child : *node.FindList(list)) {
      SerializeNode(*child, out);
    }
    out += "E\n";
  }
  out += "X\n";
}

}  // namespace

std::string Serialize(const Node& root) {
  std::string out = "EST 1\n";
  SerializeNode(root, out);
  return out;
}

namespace {

class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  // Returns false at end of input; skips blank lines.
  bool NextLine(std::vector<std::string>& fields) {
    while (pos_ < text_.size()) {
      size_t eol = text_.find('\n', pos_);
      std::string_view line = eol == std::string_view::npos
                                  ? text_.substr(pos_)
                                  : text_.substr(pos_, eol - pos_);
      pos_ = eol == std::string_view::npos ? text_.size() : eol + 1;
      ++line_no_;
      if (str::Trim(line).empty()) continue;
      fields = str::Split(line, ' ');
      return true;
    }
    return false;
  }

  [[noreturn]] void Fail(const std::string& msg) const {
    throw ParseError("EST line " + std::to_string(line_no_) + ": " + msg);
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int line_no_ = 0;
};

}  // namespace

std::unique_ptr<Node> Deserialize(std::string_view text) {
  Reader reader(text);
  std::vector<std::string> fields;
  if (!reader.NextLine(fields) || fields.size() != 2 || fields[0] != "EST") {
    reader.Fail("missing 'EST <version>' header");
  }
  if (fields[1] != "1") reader.Fail("unsupported EST version " + fields[1]);

  std::unique_ptr<Node> root;
  // Stack of (node, open list name). An entry's list name is empty while
  // reading the node's props and set while inside an L...E block.
  struct Frame {
    Node* node;
    std::string open_list;
  };
  std::vector<Frame> stack;

  while (reader.NextLine(fields)) {
    const std::string& op = fields[0];
    if (op == "N") {
      if (fields.size() != 3) reader.Fail("N needs kind and name");
      auto node = std::make_unique<Node>(str::UnescapeToken(fields[1]),
                                         str::UnescapeToken(fields[2]));
      Node* raw = node.get();
      if (stack.empty()) {
        if (root != nullptr) reader.Fail("multiple root nodes");
        root = std::move(node);
      } else {
        Frame& top = stack.back();
        if (top.open_list.empty()) {
          reader.Fail("node outside of a list");
        }
        top.node->AddChild(top.open_list, std::move(node));
      }
      stack.push_back({raw, ""});
    } else if (op == "P") {
      if (fields.size() != 3) reader.Fail("P needs key and value");
      if (stack.empty() || !stack.back().open_list.empty()) {
        reader.Fail("property outside of a node");
      }
      stack.back().node->SetProp(str::UnescapeToken(fields[1]),
                                 str::UnescapeToken(fields[2]));
    } else if (op == "L") {
      if (fields.size() != 2) reader.Fail("L needs a list name");
      if (stack.empty() || !stack.back().open_list.empty()) {
        reader.Fail("list opened in wrong position");
      }
      stack.back().open_list = str::UnescapeToken(fields[1]);
    } else if (op == "E") {
      if (stack.empty() || stack.back().open_list.empty()) {
        reader.Fail("E without open list");
      }
      stack.back().open_list.clear();
    } else if (op == "X") {
      if (stack.empty()) reader.Fail("X without open node");
      if (!stack.back().open_list.empty()) {
        reader.Fail("X with unclosed list '" + stack.back().open_list + "'");
      }
      stack.pop_back();
    } else {
      reader.Fail("unknown opcode '" + op + "'");
    }
  }
  if (!stack.empty()) reader.Fail("unterminated node at end of input");
  if (root == nullptr) reader.Fail("empty EST");
  return root;
}

}  // namespace heidi::est
