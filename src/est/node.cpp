#include "est/node.h"

namespace heidi::est {

void Node::SetProp(std::string_view key, std::string_view value) {
  for (auto& [k, v] : props_) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  props_.emplace_back(std::string(key), std::string(value));
}

const std::string* Node::FindProp(std::string_view key) const {
  for (const auto& [k, v] : props_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Node::GetProp(std::string_view key,
                          std::string_view fallback) const {
  const std::string* v = FindProp(key);
  return v != nullptr ? *v : std::string(fallback);
}

Node& Node::AddChild(std::string_view list, std::unique_ptr<Node> child) {
  for (auto& [name, nodes] : lists_) {
    if (name == list) {
      nodes.push_back(std::move(child));
      return *nodes.back();
    }
  }
  lists_.emplace_back(std::string(list),
                      std::vector<std::unique_ptr<Node>>{});
  lists_.back().second.push_back(std::move(child));
  return *lists_.back().second.back();
}

Node& Node::NewChild(std::string_view list, std::string kind,
                     std::string name) {
  return AddChild(list,
                  std::make_unique<Node>(std::move(kind), std::move(name)));
}

const std::vector<std::unique_ptr<Node>>* Node::FindList(
    std::string_view list) const {
  for (const auto& [name, nodes] : lists_) {
    if (name == list) return &nodes;
  }
  return nullptr;
}

std::vector<std::string> Node::ListNames() const {
  std::vector<std::string> out;
  out.reserve(lists_.size());
  for (const auto& [name, nodes] : lists_) out.push_back(name);
  return out;
}

size_t Node::TreeSize() const {
  size_t total = 1;
  for (const auto& [name, nodes] : lists_) {
    for (const auto& n : nodes) total += n->TreeSize();
  }
  return total;
}

bool DeepEquals(const Node& a, const Node& b) {
  if (a.kind_ != b.kind_ || a.name_ != b.name_) return false;
  if (a.props_ != b.props_) return false;
  if (a.lists_.size() != b.lists_.size()) return false;
  for (size_t i = 0; i < a.lists_.size(); ++i) {
    if (a.lists_[i].first != b.lists_[i].first) return false;
    const auto& an = a.lists_[i].second;
    const auto& bn = b.lists_[i].second;
    if (an.size() != bn.size()) return false;
    for (size_t j = 0; j < an.size(); ++j) {
      if (!DeepEquals(*an[j], *bn[j])) return false;
    }
  }
  return true;
}

std::unique_ptr<Node> Node::Clone() const {
  auto copy = std::make_unique<Node>(kind_, name_);
  copy->props_ = props_;
  for (const auto& [name, nodes] : lists_) {
    for (const auto& n : nodes) copy->AddChild(name, n->Clone());
  }
  return copy;
}

}  // namespace heidi::est
