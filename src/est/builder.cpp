#include "est/builder.h"

#include <cstdio>
#include <set>

#include "idl/sema.h"
#include "support/strings.h"

namespace heidi::est {

using idl::Decl;
using idl::DeclKind;
using idl::InterfaceDecl;
using idl::Literal;
using idl::PrimKind;
using idl::TypeRef;

std::string SpellType(const TypeRef& type) {
  switch (type.kind) {
    case TypeRef::Kind::kPrimitive:
      if (type.prim == PrimKind::kString && type.string_bound != 0) {
        return "string<" + std::to_string(type.string_bound) + ">";
      }
      return std::string(idl::PrimName(type.prim));
    case TypeRef::Kind::kNamed:
      if (type.resolved != nullptr) return type.resolved->ScopedName();
      return type.name;
    case TypeRef::Kind::kSequence: {
      std::string out = "sequence<" + SpellType(*type.element);
      if (type.bound != 0) out += "," + std::to_string(type.bound);
      out += ">";
      return out;
    }
  }
  return "void";
}

std::string SpellLiteral(const Literal& lit) {
  switch (lit.kind) {
    case Literal::Kind::kNone:
      return "";
    case Literal::Kind::kInt:
      return std::to_string(lit.int_value);
    case Literal::Kind::kFloat: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%g", lit.float_value);
      return buf;
    }
    case Literal::Kind::kBool:
      return lit.bool_value ? "TRUE" : "FALSE";
    case Literal::Kind::kString: {
      std::string out = "\"";
      for (char c : lit.text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out.push_back(c);
        }
      }
      out += "\"";
      return out;
    }
    case Literal::Kind::kChar: {
      std::string body;
      char c = lit.text.empty() ? '\0' : lit.text[0];
      switch (c) {
        case '\'': body = "\\'"; break;
        case '\\': body = "\\\\"; break;
        case '\n': body = "\\n"; break;
        case '\t': body = "\\t"; break;
        case '\0': body = "\\0"; break;
        default: body = std::string(1, c);
      }
      return "'" + body + "'";
    }
    case Literal::Kind::kScoped:
      // Sema normalized enum-member defaults to the unscoped member name;
      // const references stay as written.
      return lit.text;
  }
  return "";
}

namespace {

class Builder {
 public:
  explicit Builder(const idl::Specification& spec) : spec_(spec) {}

  std::unique_ptr<Node> Build() {
    auto root = std::make_unique<Node>("Root", spec_.source_name);
    root->SetProp("sourceName", spec_.source_name);
    root->SetProp("pragmaPrefix", spec_.pragma_prefix);
    root_ = root.get();
    for (const auto& d : spec_.decls) AddDecl(*root, *d);
    return root;
  }

 private:
  // Fills the tag/typeName/IsVariable triple that every typed node carries
  // (Fig 8's "type"/"typeName"/"IsVariable" properties).
  static void SetTypeProps(Node& node, const TypeRef& type) {
    node.SetProp("type", idl::TypeTag(type));
    node.SetProp("typeName", idl::TypeFlatName(type));
    node.SetProp("IsVariable", idl::IsVariableType(type) ? "true" : "false");
    node.SetProp("typeRepoId",
                 type.kind == TypeRef::Kind::kNamed && type.resolved != nullptr
                     ? type.resolved->repo_id
                     : "");
  }

  static void SetCommonProps(Node& node, const Decl& decl,
                             std::string_view scoped_key) {
    node.SetProp("name", decl.name);
    node.SetProp(scoped_key, decl.ScopedName());
    node.SetProp("flatName", decl.FlatName());
    node.SetProp("repoId", decl.repo_id);
  }

  // Adds `decl` both to `parent`'s direct list and (for non-modules) to the
  // flattened Root lists. Modules recurse.
  void AddDecl(Node& parent, const Decl& decl) {
    switch (decl.decl_kind) {
      case DeclKind::kModule: {
        const auto& mod = static_cast<const idl::ModuleDecl&>(decl);
        Node& n = parent.NewChild("moduleList", "Module", decl.name);
        SetCommonProps(n, decl, "moduleName");
        for (const auto& d : mod.decls) AddDecl(n, *d);
        break;
      }
      case DeclKind::kInterface:
        BuildInterface(parent, static_cast<const InterfaceDecl&>(decl));
        break;
      case DeclKind::kForwardInterface: {
        // A forward declaration whose definition appears in this file
        // produces no node (the definition is what templates see). A
        // forward-only *external* interface gets an ExternalInterface
        // node so stub/skeleton generators can still learn its
        // repository id (Fig 3 passes sequence<S> with external S).
        const auto& fwd = static_cast<const idl::ForwardInterfaceDecl&>(decl);
        if (fwd.definition == nullptr) {
          Node* n = &parent.NewChild("externalList", "ExternalInterface",
                                     decl.name);
          SetCommonProps(*n, decl, "interfaceName");
          Mirror(parent, "externalList", *n);
        }
        break;
      }
      case DeclKind::kEnum: {
        const auto& en = static_cast<const idl::EnumDecl&>(decl);
        Node* n = &parent.NewChild("enumList", "Enum", decl.name);
        SetCommonProps(*n, decl, "enumName");
        n->SetProp("members", str::Join(en.members, ","));
        for (const auto& m : en.members) {
          Node& mem = n->NewChild("memberList", "EnumMember", m);
          mem.SetProp("name", m);
          mem.SetProp("memberName", m);
        }
        Mirror(parent, "enumList", *n);
        break;
      }
      case DeclKind::kStruct: {
        const auto& st = static_cast<const idl::StructDecl&>(decl);
        Node* n = &parent.NewChild("structList", "Struct", decl.name);
        SetCommonProps(*n, decl, "structName");
        n->SetProp("IsVariable", VariableFields(st.fields) ? "true" : "false");
        AddFields(*n, st.fields);
        Mirror(parent, "structList", *n);
        break;
      }
      case DeclKind::kUnion: {
        const auto& un = static_cast<const idl::UnionDecl&>(decl);
        Node* n = &parent.NewChild("unionList", "Union", decl.name);
        SetCommonProps(*n, decl, "unionName");
        n->SetProp("discriminatorType", SpellType(un.discriminator));
        bool variable = false;
        for (const auto& arm : un.cases) {
          variable = variable || idl::IsVariableType(arm.type);
        }
        n->SetProp("IsVariable", variable ? "true" : "false");
        for (const auto& arm : un.cases) {
          Node& cn = n->NewChild("caseList", "Case", arm.name);
          cn.SetProp("name", arm.name);
          cn.SetProp("caseName", arm.name);
          cn.SetProp("caseType", SpellType(arm.type));
          SetTypeProps(cn, arm.type);
          std::vector<std::string> labels;
          for (const auto& label : arm.labels) {
            labels.push_back(SpellLiteral(label));
          }
          cn.SetProp("labels", str::Join(labels, ","));
          cn.SetProp("isDefault", arm.is_default ? "true" : "");
        }
        Mirror(parent, "unionList", *n);
        break;
      }
      case DeclKind::kException: {
        const auto& ex = static_cast<const idl::ExceptionDecl&>(decl);
        Node* n = &parent.NewChild("exceptionList", "Exception", decl.name);
        SetCommonProps(*n, decl, "exceptionName");
        n->SetProp("IsVariable", VariableFields(ex.fields) ? "true" : "false");
        AddFields(*n, ex.fields);
        Mirror(parent, "exceptionList", *n);
        break;
      }
      case DeclKind::kTypedef: {
        const auto& td = static_cast<const idl::TypedefDecl&>(decl);
        Node* n = &parent.NewChild("aliasList", "Alias", decl.name);
        SetCommonProps(*n, decl, "aliasName");
        n->SetProp("aliasType", SpellType(td.type));
        SetTypeProps(*n, td.type);
        if (td.type.kind == TypeRef::Kind::kSequence) {
          Node& seq = n->NewChild("sequenceList", "Sequence", "");
          SetTypeProps(seq, *td.type.element);
          seq.SetProp("elementType", SpellType(*td.type.element));
          seq.SetProp("bound", std::to_string(td.type.bound));
          seq.SetProp("IsVariable", "true");
        }
        Mirror(parent, "aliasList", *n);
        break;
      }
      case DeclKind::kConst: {
        const auto& cd = static_cast<const idl::ConstDecl&>(decl);
        Node* n = &parent.NewChild("constList", "Const", decl.name);
        SetCommonProps(*n, decl, "constName");
        n->SetProp("constType", SpellType(cd.type));
        SetTypeProps(*n, cd.type);
        n->SetProp("constValue", SpellLiteral(cd.value));
        Mirror(parent, "constList", *n);
        break;
      }
    }
  }

  // Mirrors a node built under a module/interface into the flattened Root
  // list of the same name. Root-direct declarations need no mirror.
  void Mirror(Node& parent, std::string_view list, const Node& node) {
    if (&parent == root_) return;
    root_->AddChild(list, node.Clone());
  }

  static bool VariableFields(const std::vector<idl::StructField>& fields) {
    for (const auto& f : fields) {
      if (idl::IsVariableType(f.type)) return true;
    }
    return false;
  }

  static void AddFields(Node& parent,
                        const std::vector<idl::StructField>& fields) {
    for (const auto& f : fields) {
      Node& n = parent.NewChild("fieldList", "Field", f.name);
      n.SetProp("name", f.name);
      n.SetProp("fieldName", f.name);
      n.SetProp("fieldType", SpellType(f.type));
      SetTypeProps(n, f.type);
    }
  }

  static void FillOperation(Node& n, const idl::OperationDecl& op) {
    n.SetProp("name", op.name);
    n.SetProp("methodName", op.name);
    n.SetProp("returnType", SpellType(op.return_type));
    SetTypeProps(n, op.return_type);
    n.SetProp("oneway", op.oneway ? "true" : "");
    n.SetProp("raises", str::Join(op.raises, ","));
    // raisesList: one node per resolved raises entry, embedding the
    // exception's fields so stub/skeleton templates can marshal them
    // without a cross-tree lookup.
    for (const idl::Decl* ex_decl : op.raises_resolved) {
      const auto& ex = static_cast<const idl::ExceptionDecl&>(*ex_decl);
      Node& rn = n.NewChild("raisesList", "Raises", ex.name);
      rn.SetProp("name", ex.name);
      rn.SetProp("raisesName", ex.ScopedName());
      rn.SetProp("flatName", ex.FlatName());
      rn.SetProp("repoId", ex.repo_id);
      AddFields(rn, ex.fields);
    }
    for (const auto& p : op.params) {
      Node& pn = n.NewChild("paramList", "Param", p.name);
      pn.SetProp("name", p.name);
      pn.SetProp("paramName", p.name);
      pn.SetProp("paramType", SpellType(p.type));
      SetTypeProps(pn, p.type);
      pn.SetProp("direction", std::string(idl::ParamDirName(p.direction)));
      pn.SetProp("defaultParam", SpellLiteral(p.default_value));
    }
  }

  static void FillAttribute(Node& n, const idl::AttributeDecl& at) {
    n.SetProp("name", at.name);
    n.SetProp("attributeName", at.name);
    n.SetProp("attributeType", SpellType(at.type));
    SetTypeProps(n, at.type);
    n.SetProp("attributeQualifier", at.readonly ? "readonly" : "");
  }

  void BuildInterface(Node& parent, const InterfaceDecl& iface) {
    Node* n = &parent.NewChild("interfaceList", "Interface", iface.name);
    SetCommonProps(*n, iface, "interfaceName");
    n->SetProp("Parent",
               iface.bases.empty() ? "" : iface.bases.front()->FlatName());
    n->SetProp("hasBases", iface.bases.empty() ? "" : "true");

    for (const Decl* base : iface.bases) {
      Node& bn = n->NewChild("inheritedList", "Inherited", base->name);
      bn.SetProp("name", base->name);
      bn.SetProp("inheritedName", base->ScopedName());
      bn.SetProp("flatName", base->FlatName());
      bn.SetProp("repoId", base->repo_id);
      bn.SetProp("external",
                 base->decl_kind == DeclKind::kForwardInterface ? "true" : "");
    }

    for (const auto& op : iface.operations) {
      Node& on = n->NewChild("methodList", "Operation", op.name);
      FillOperation(on, op);
    }
    for (const auto& at : iface.attributes) {
      Node& an = n->NewChild("attributeList", "Attribute", at.name);
      FillAttribute(an, at);
    }

    // allMethodList / allAttributeList: inherited first (depth-first in
    // base declaration order, visiting each interface once), then own.
    std::vector<const InterfaceDecl*> order;
    std::set<const InterfaceDecl*> seen;
    CollectTransitiveBases(iface, order, seen);
    order.push_back(&iface);
    for (const auto* source : order) {
      for (const auto& op : source->operations) {
        Node& on = n->NewChild("allMethodList", "Operation", op.name);
        FillOperation(on, op);
        on.SetProp("definedIn", source->FlatName());
      }
      for (const auto& at : source->attributes) {
        Node& an = n->NewChild("allAttributeList", "Attribute", at.name);
        FillAttribute(an, at);
        an.SetProp("definedIn", source->FlatName());
      }
    }

    for (const auto& d : iface.nested) AddDecl(*n, *d);
    // Nested declarations were added to the interface node's own lists by
    // AddDecl (which also mirrors to Root when parent != root; here parent
    // of nested is the interface node, so Mirror already handled Root).

    Mirror(parent, "interfaceList", *n);
  }

  // Transitive *defined* bases; external forward-only bases have unknown
  // members and contribute nothing to allMethodList.
  void CollectTransitiveBases(const InterfaceDecl& iface,
                              std::vector<const InterfaceDecl*>& order,
                              std::set<const InterfaceDecl*>& seen) {
    for (const Decl* base_decl : iface.bases) {
      if (base_decl->decl_kind != DeclKind::kInterface) continue;
      const auto* base = static_cast<const InterfaceDecl*>(base_decl);
      if (!seen.insert(base).second) continue;
      CollectTransitiveBases(*base, order, seen);
      order.push_back(base);
    }
  }

  const idl::Specification& spec_;
  Node* root_ = nullptr;
};

}  // namespace

std::unique_ptr<Node> BuildEst(const idl::Specification& spec) {
  return Builder(spec).Build();
}

}  // namespace heidi::est
