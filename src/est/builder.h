// EST builder: turns a resolved idl::Specification into the Enhanced
// Syntax Tree that templates walk (§4.1, Fig 7/8).
//
// ============================ EST SCHEMA =================================
// Root (kind "Root", name = source file name)
//   props: sourceName, pragmaPrefix
//   lists:
//     moduleList     — top-level modules (Module nodes, direct children)
//     interfaceList  — ALL interfaces, flattened recursively, source order
//     enumList, aliasList, structList, exceptionList, constList — likewise
//
// Module (kind "Module")
//   props: name, moduleName (scoped, "Outer::Inner"), flatName, repoId
//   lists: moduleList / interfaceList / enumList / aliasList / structList /
//          exceptionList / constList — *direct* children only
//
// Interface (kind "Interface")
//   props: name, interfaceName (scoped, "Heidi::A"), flatName ("Heidi_A"),
//          repoId ("IDL:Heidi/A:1.0"), Parent (flat name of first base, ""
//          if none — Fig 8 compatibility), hasBases ("true"/"")
//   lists:
//     inheritedList — one node per *direct* base (kind "Inherited";
//         props: name, inheritedName (scoped), flatName, repoId)
//     methodList    — own operations, source order (Operation nodes)
//     attributeList — own attributes, source order (Attribute nodes)
//     allMethodList / allAttributeList — inherited members first
//         (depth-first in base order, deduplicated), then own; each node
//         carries definedIn = flat name of the declaring interface
//     nestedList    — types declared inside the interface (also flattened
//         into the Root lists)
//
// Operation (kind "Operation")
//   props: name, methodName, returnType (IDL spelling, see below),
//          type (return type tag), typeName (flat name if named, else ""),
//          IsVariable ("true"/"false"), oneway ("true"/""),
//          raises (comma-joined scoped names, "" if none)
//   lists: paramList (Param nodes)
//
// Param (kind "Param")
//   props: name, paramName, paramType (IDL spelling), type (tag),
//          typeName, IsVariable, direction (in/out/inout/incopy),
//          defaultParam (IDL spelling of the default value, "" if none)
//
// Attribute (kind "Attribute")
//   props: name, attributeName, attributeType (spelling), type (tag),
//          typeName, IsVariable, attributeQualifier ("readonly"/"")
//
// Enum (kind "Enum")
//   props: name, enumName (scoped), flatName, repoId,
//          members (comma-joined member names — Fig 8 compatibility)
//   lists: memberList (kind "EnumMember"; props: name, memberName)
//
// Alias (kind "Alias")
//   props: name, aliasName (scoped), flatName, repoId,
//          aliasType (spelling of the aliased type), type (tag of aliased
//          type — Fig 8 shows AddProp("type","sequence")), typeName,
//          IsVariable
//   lists: sequenceList — present iff the aliased type is a sequence; one
//     node (kind "Sequence"; props: type (element tag), typeName (element
//     flat name — Fig 8), elementType (element spelling), bound ("0" for
//     unbounded), IsVariable ("true"))
//
// Union (kind "Union")
//   props: name, unionName (scoped), flatName, repoId,
//          discriminatorType (spelling), IsVariable
//   lists: caseList (kind "Case"; props: name, caseName, caseType, type,
//          typeName, IsVariable, labels (comma-joined label spellings),
//          isDefault ("true"/""))
//
// Struct (kind "Struct") / Exception (kind "Exception")
//   props: name, structName/exceptionName (scoped), flatName, repoId,
//          IsVariable
//   lists: fieldList (kind "Field"; props: name, fieldName, fieldType,
//          type, typeName, IsVariable)
//
// Const (kind "Const")
//   props: name, constName (scoped), flatName, repoId, constType
//          (spelling), type (tag), typeName, constValue (spelling)
//
// Type spellings are canonical IDL with scoped names: "void", "boolean",
// "unsigned long", "string", "string<16>", "Heidi::A",
// "sequence<Heidi::S>", "sequence<long,8>". Value spellings: integers in
// decimal, floats via %g, TRUE/FALSE, quoted strings, 'c' chars, enum
// members by unscoped member name (as Fig 3's `q(HdStatus s = Start)`).
// =========================================================================
#pragma once

#include <memory>

#include "est/node.h"
#include "idl/ast.h"

namespace heidi::est {

// Builds the EST for a parsed-and-resolved specification. The returned
// tree is self-contained (owns all strings; `spec` may be destroyed).
std::unique_ptr<Node> BuildEst(const idl::Specification& spec);

// Canonical IDL spelling of a (resolved) type — exposed for tests and for
// tooling that wants to print types the way the EST does.
std::string SpellType(const idl::TypeRef& type);

// Canonical spelling of a literal (default values, const values).
std::string SpellLiteral(const idl::Literal& lit);

}  // namespace heidi::est
