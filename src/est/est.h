// Umbrella header for the EST: node structure, builder, serialization.
#pragma once

#include "est/builder.h"    // IWYU pragma: export
#include "est/node.h"       // IWYU pragma: export
#include "est/repository.h"  // IWYU pragma: export
#include "est/serialize.h"   // IWYU pragma: export
