// MetricsRegistry — named counters and latency histograms with a
// lock-free hot path. The registry is a fixed-size, insert-only,
// open-addressed hash table of heap-allocated entries: readers (every
// call on the invocation path) probe with acquire loads only; writers
// (the first call for a new key) install entries with CAS. Entries are
// never removed, so a pointer returned once is valid for the registry's
// lifetime — callers cache it and skip the probe entirely.
//
// Key budget: kSlots names per registry. An overflowing insert lands on
// the shared "(overflow)" entry instead of failing, and the overflow is
// visible in Render() — bounded memory beats silent growth on a server
// fed hostile operation names.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/histogram.h"

namespace heidi::obs {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class MetricsRegistry {
 public:
  static constexpr size_t kSlots = 512;  // power of two (mask probing)

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create. Never returns nullptr; the returned pointer is stable
  // for the registry's lifetime (cache it on hot paths).
  LatencyHistogram* Histogram(std::string_view key);
  Counter* GetCounter(std::string_view key);

  // Human-readable dump: one line per metric, sorted by key —
  //   <key>  count=N p50=… p90=… p99=… max=… mean=…   (histograms, ns)
  //   <key>  N                                        (counters)
  std::string Render() const;
  // Machine-readable dump: {"counters":{...},"histograms":{key:{...}}}.
  std::string RenderJson() const;

 private:
  struct Entry {
    std::string key;
    LatencyHistogram histogram;
    Counter counter;
  };

  Entry* Lookup(std::string_view key);

  std::atomic<Entry*> slots_[kSlots] = {};
  Entry overflow_;  // shared sink once the table is full
};

}  // namespace heidi::obs
