// MetricsRegistry — named counters and latency histograms with a
// lock-free hot path. The registry is a fixed-size, insert-only,
// open-addressed hash table of heap-allocated entries: readers (every
// call on the invocation path) probe with acquire loads only; writers
// (the first call for a new key) install entries with CAS. Entries are
// never removed, so a pointer returned once is valid for the registry's
// lifetime — callers cache it and skip the probe entirely.
//
// Key budget: kSlots names per registry. An overflowing insert lands on
// the shared "(overflow)" entry instead of failing, and the overflow is
// visible in Render() — bounded memory beats silent growth on a server
// fed hostile operation names.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/histogram.h"

namespace heidi::obs {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  // Scrape-time mirror of an externally maintained monotonic value
  // (OrbStats fields): overwrite, don't accumulate. Callers own the
  // monotonicity guarantee.
  void Store(uint64_t v) { value_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A point-in-time signed level (pool occupancy, queue depth, open
// connections). Rendered only once touched, so the registry's many
// never-set gauges stay invisible.
class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    touched_.store(true, std::memory_order_relaxed);
  }
  void Add(int64_t n) {
    value_.fetch_add(n, std::memory_order_relaxed);
    touched_.store(true, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  bool Touched() const { return touched_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<bool> touched_{false};
};

class MetricsRegistry {
 public:
  static constexpr size_t kSlots = 512;  // power of two (mask probing)

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create. Never returns nullptr; the returned pointer is stable
  // for the registry's lifetime (cache it on hot paths).
  LatencyHistogram* Histogram(std::string_view key);
  Counter* GetCounter(std::string_view key);
  Gauge* GetGauge(std::string_view key);

  // Human-readable dump: one line per metric, sorted by key —
  //   <key>  count=N p50=… p90=… p99=… max=… mean=…   (histograms, ns)
  //   <key>  N                                        (counters/gauges)
  std::string Render() const;
  // Machine-readable dump: {"counters":{...},"gauges":{...},
  // "histograms":{key:{...}}}.
  std::string RenderJson() const;
  // OpenMetrics text exposition (version 1.0.0): counters as `_total`,
  // gauges, histograms as cumulative `le` buckets + `_sum`/`_count`,
  // terminated by `# EOF`. Keys are sanitized ([^a-zA-Z0-9_] -> '_') and
  // prefixed `heidi_`. Histogram values are exposed in seconds (the
  // Prometheus convention) although recorded in ns.
  std::string RenderOpenMetrics() const;

  // The content-type an OpenMetrics scrape response must carry.
  static const char* OpenMetricsContentType();

 private:
  struct Entry {
    std::string key;
    LatencyHistogram histogram;
    Counter counter;
    Gauge gauge;
  };

  Entry* Lookup(std::string_view key);

  std::atomic<Entry*> slots_[kSlots] = {};
  Entry overflow_;  // shared sink once the table is full
};

}  // namespace heidi::obs
