// TraceContext — the wire-propagated identity of one distributed
// invocation (the observability layer's analogue of the paper's §3.1
// "Call header": data every hop must relay without understanding it).
//
// A context names one *trace* (128-bit id shared by every span the
// invocation touches, across processes), one *span* (the 64-bit id of
// the hop that sent it), the sender's parent span, and a sampled flag
// that tells downstream hops whether to record timelines for this call.
// Both wire protocols carry it version-tolerantly (see wire/protocol.cpp)
// so peers built before this field existed still interoperate.
//
// The textual form is fixed so the text protocol (and a human on telnet)
// can read it:  <32 hex trace>-<16 hex span>-<16 hex parent>-<2 hex flags>
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace heidi::obs {

struct TraceContext {
  uint64_t trace_hi = 0;        // 128-bit trace id, big half
  uint64_t trace_lo = 0;        //                  little half
  uint64_t span_id = 0;         // the sending hop's span
  uint64_t parent_span_id = 0;  // the sending hop's parent (0 = root)
  bool sampled = false;         // downstream hops record timelines iff set

  // A context with a zero trace id is "absent" — the call was made by a
  // peer without (or with disabled) tracing.
  bool Valid() const { return (trace_hi | trace_lo) != 0; }

  // "a1b2...-c3d4...-e5f6...-01"; empty string for an invalid context.
  std::string ToString() const;

  // Parses the textual form; returns false (and leaves *out untouched)
  // on malformed input. Accepts unknown flag bits (forward tolerance).
  static bool Parse(std::string_view text, TraceContext* out);

  bool operator==(const TraceContext&) const = default;
};

// Fresh random ids (thread-local PRNG seeded once per thread; never 0).
uint64_t NewSpanId();
TraceContext NewRootContext(bool sampled);

// Derives the context a child hop should send: same trace, the child's
// fresh span id, parent = the sender's span, sampled inherited.
TraceContext ChildContext(const TraceContext& parent);

// --- ambient context ---------------------------------------------------------
// The server dispatch path installs the inbound request's context for the
// duration of the skeleton call, so *nested* invocations made by the
// implementation join the same trace (multi-hop end-to-end tracing).
const TraceContext& CurrentContext();

class ScopedContext {
 public:
  explicit ScopedContext(const TraceContext& ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  TraceContext saved_;
};

// Monotonic nanoseconds used for every span/stage timestamp (one clock so
// client and server timelines line up within a process; across processes
// Perfetto aligns per-track).
int64_t NowNs();

}  // namespace heidi::obs
