#include "obs/histogram.h"

#include <algorithm>

namespace heidi::obs {

uint64_t LatencyHistogram::Percentile(double pct) const {
  uint64_t total = Count();
  if (total == 0) return 0;
  pct = std::clamp(pct, 0.0, 100.0);
  if (pct >= 100.0) return Max();
  // Rank of the sample we want, 1-based: ceil(pct/100 * total), at least 1.
  uint64_t rank = static_cast<uint64_t>(pct / 100.0 * static_cast<double>(total));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    seen += n;
    if (seen >= rank) {
      uint64_t lo = BucketLow(i);
      uint64_t hi = BucketHigh(i);
      // Midpoint, clamped so the top (open-ended) bucket reports its
      // observed max rather than an astronomical midpoint.
      if (i == kBucketCount - 1) return std::max(lo, Max());
      return lo + (hi - lo) / 2;
    }
  }
  return Max();  // unreachable unless racing with writers; best effort
}

}  // namespace heidi::obs
