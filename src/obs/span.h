// Span records and the bounded ring they land in.
//
// A SpanRecord is one completed hop of a traced invocation: the client
// side of a call, the server side of a call, or one retry attempt inside
// a client call. Each record carries up to kMaxStages named sub-intervals
// (marshal/send/wait/… on the client, queue/exec/reply/… on the server)
// so a timeline answers "where did this call spend its time" without a
// record per stage.
//
// SpanRing is the capture buffer: sharded, bounded, overwrite-oldest.
// Writers pick a shard by span id and *try* its lock; a contended shard
// drops the record and counts the drop instead of blocking the invocation
// path — recording telemetry must never add latency to the traffic it
// observes. Readers (exporters, the telnet `trace` command) lock shards
// one at a time and snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace heidi::obs {

enum class SpanKind : uint8_t { kClient, kServer, kAttempt };

const char* SpanKindName(SpanKind kind);

// Anomaly flags a span accumulates while live — the tail-retention
// signals that aren't derivable from the record itself at commit time.
enum SpanFlags : uint8_t {
  kSpanFlagRetried = 1 << 0,   // at least one retry attempt happened
  kSpanFlagTimedOut = 1 << 1,  // the call's deadline expired
  kSpanFlagFaulted = 1 << 2,   // an injected fault fired during the call
};

struct StageRecord {
  const char* name;  // static string (stage names are compile-time)
  int64_t start_ns;
  int64_t end_ns;
};

struct SpanRecord {
  static constexpr int kMaxStages = 8;

  TraceContext ctx;  // span_id = this record's own id
  SpanKind kind = SpanKind::kClient;
  std::string operation;
  std::string error;  // empty = success; else the error tag
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  uint64_t thread_id = 0;  // small per-thread ordinal, for trace lanes
  uint8_t flags = 0;       // SpanFlags bits
  int stage_count = 0;
  StageRecord stages[kMaxStages];

  SpanRecord() = default;
  // A record is moved several times between creation and its ring slot
  // (span -> commit -> ring); copying only the stages actually used keeps
  // each move at ~a cache line instead of the full 256-byte stage array.
  // Moved-from stages past stage_count are never read (stage_count gates).
  SpanRecord(SpanRecord&& other) noexcept
      : ctx(other.ctx),
        kind(other.kind),
        operation(std::move(other.operation)),
        error(std::move(other.error)),
        start_ns(other.start_ns),
        end_ns(other.end_ns),
        thread_id(other.thread_id),
        flags(other.flags),
        stage_count(other.stage_count) {
    for (int i = 0; i < stage_count; ++i) stages[i] = other.stages[i];
  }
  SpanRecord& operator=(SpanRecord&& other) noexcept {
    ctx = other.ctx;
    kind = other.kind;
    operation = std::move(other.operation);
    error = std::move(other.error);
    start_ns = other.start_ns;
    end_ns = other.end_ns;
    thread_id = other.thread_id;
    flags = other.flags;
    stage_count = other.stage_count;
    for (int i = 0; i < stage_count; ++i) stages[i] = other.stages[i];
    return *this;
  }
  // Snapshot/export paths copy records wholesale; the default memberwise
  // copy is correct (and cold).
  SpanRecord(const SpanRecord&) = default;
  SpanRecord& operator=(const SpanRecord&) = default;

  bool HasFlag(SpanFlags flag) const { return (flags & flag) != 0; }

  void AddStage(const char* name, int64_t start_ns_, int64_t end_ns_) {
    if (stage_count < kMaxStages) {
      stages[stage_count++] = StageRecord{name, start_ns_, end_ns_};
    }
  }
};

// Small per-thread ordinal (1, 2, 3, …) — stabler across runs than the
// platform thread id, and compact in trace lanes.
uint64_t ThreadOrdinal();

class SpanRing {
 public:
  // `capacity` total records, split across `shards` (both rounded up to
  // at least one record per shard).
  explicit SpanRing(size_t capacity = 4096, size_t shards = 8);
  ~SpanRing();
  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  // Non-blocking: try-locks the record's shard; on contention the record
  // is dropped and counted. A full shard overwrites its oldest record
  // (the ring keeps the *newest* history, which is what `trace <n>` and
  // post-mortem exports want).
  void Record(SpanRecord&& record);

  // Same semantics, but the caller picks the shard (the provisional ring
  // shards by committing thread so each worker overwrites only its own
  // recent history and writers almost never contend).
  void RecordSharded(size_t shard_hint, SpanRecord&& record);

  uint64_t Recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t Dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t Capacity() const { return shards_.size() * per_shard_; }

  // All retained records, oldest-first by start timestamp.
  std::vector<SpanRecord> Snapshot() const;

  // Test hook: runs `fn` while shard `shard_index % shards` is locked, so
  // a concurrent Record() into that shard deterministically takes the
  // drop path (see tests/obs/spanring_test.cpp).
  void WithShardLockedForTest(size_t shard_index,
                              const std::function<void()>& fn);

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<SpanRecord> records;  // ring storage
    size_t next = 0;                  // next write position
    size_t size = 0;                  // valid records (<= per_shard_)
  };

  std::vector<Shard> shards_;
  size_t per_shard_;
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace heidi::obs
