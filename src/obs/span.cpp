#include "obs/span.h"

#include <algorithm>

namespace heidi::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kClient: return "client";
    case SpanKind::kServer: return "server";
    case SpanKind::kAttempt: return "attempt";
  }
  return "?";
}

uint64_t ThreadOrdinal() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

SpanRing::SpanRing(size_t capacity, size_t shards)
    : shards_(std::max<size_t>(shards, 1)),
      per_shard_(std::max<size_t>(capacity / std::max<size_t>(shards, 1), 1)) {
  for (Shard& shard : shards_) shard.records.resize(per_shard_);
}

SpanRing::~SpanRing() = default;

void SpanRing::Record(SpanRecord&& record) {
  RecordSharded(record.ctx.span_id, std::move(record));
}

void SpanRing::RecordSharded(size_t shard_hint, SpanRecord&& record) {
  Shard& shard = shards_[shard_hint % shards_.size()];
  std::unique_lock lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shard.records[shard.next] = std::move(record);
  shard.next = (shard.next + 1) % per_shard_;
  if (shard.size < per_shard_) ++shard.size;
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> SpanRing::Snapshot() const {
  std::vector<SpanRecord> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    out.insert(out.end(), shard.records.begin(),
               shard.records.begin() + static_cast<ptrdiff_t>(shard.size));
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

void SpanRing::WithShardLockedForTest(size_t shard_index,
                                      const std::function<void()>& fn) {
  Shard& shard = shards_[shard_index % shards_.size()];
  std::lock_guard lock(shard.mutex);
  fn();
}

}  // namespace heidi::obs
