// LatencyHistogram — fixed-size log-linear latency histogram, the
// always-on half of the observability layer. Designed so Record() is
// cheap enough to leave enabled in production: one bit-scan, one index
// computation, four relaxed atomic RMWs, no locks, no allocation.
//
// Bucketing is HDR-style log-linear: values below 2^kSubBits land in
// exact unit buckets; above that, each power-of-two octave is split into
// 2^kSubBits linear sub-buckets, giving a constant ~12.5% relative error
// (kSubBits = 3) across the full range [0, ~17 minutes in ns].
// Percentile extraction walks the fixed bucket array and reports the
// bucket midpoint — see tests/obs/histogram_test.cpp for the exact
// boundary math this relies on.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace heidi::obs {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;  // 8 linear sub-buckets per octave
  static constexpr int kSubCount = 1 << kSubBits;
  // Octaves above the linear region; bucket count covers values up to
  // 2^(kSubBits + kOctaves) - 1 ns, everything larger clamps to the top.
  static constexpr int kOctaves = 37;  // ~2^40 ns ≈ 18 minutes
  static constexpr int kBucketCount = kSubCount * (kOctaves + 1);

  LatencyHistogram() = default;

  // Maps a value to its bucket index (pure function, exposed for tests).
  static int BucketIndex(uint64_t v) {
    if (v < kSubCount) return static_cast<int>(v);
    int exp = 63 - std::countl_zero(v);          // highest set bit
    int octave = exp - kSubBits + 1;             // 1-based above linear
    if (octave > kOctaves) {                     // clamp oversize values
      octave = kOctaves;
      return kBucketCount - 1;
    }
    int sub = static_cast<int>((v >> (exp - kSubBits)) & (kSubCount - 1));
    return octave * kSubCount + sub;
  }

  // Smallest value mapping to bucket `idx` (inclusive lower bound).
  static uint64_t BucketLow(int idx) {
    if (idx < kSubCount) return static_cast<uint64_t>(idx);
    int octave = idx / kSubCount;
    int sub = idx % kSubCount;
    int exp = octave + kSubBits - 1;
    return (uint64_t{1} << exp) +
           (static_cast<uint64_t>(sub) << (exp - kSubBits));
  }

  // Largest value mapping to bucket `idx`.
  static uint64_t BucketHigh(int idx) {
    if (idx < kSubCount) return static_cast<uint64_t>(idx);
    if (idx == kBucketCount - 1) return UINT64_MAX;
    return BucketLow(idx + 1) - 1;
  }

  void Record(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t Mean() const {
    uint64_t n = Count();
    return n == 0 ? 0 : Sum() / n;
  }

  // Value v such that ~`pct`% of recorded samples are <= v (bucket
  // midpoint of the bucket holding the pct-th sample; Max() for pct=100).
  // `pct` in [0, 100]. Returns 0 on an empty histogram.
  uint64_t Percentile(double pct) const;

  uint64_t BucketCountAt(int idx) const {
    return buckets_[idx].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBucketCount] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace heidi::obs
