// RetentionPolicy — the runtime-swappable policy deciding which span
// timelines the tracer keeps (RAFDA's policy/mechanism split applied to
// observability, the way orb/ applies it to transmission and mapping).
//
// Two decision points:
//
//   * SampleHead() — before the call: should this root call carry a
//     *propagating* (wire-visible) trace context? Head policies
//     (always/never/1-in-N) answer here and keep everything they sample.
//   * KeepTail(signals) — after the call: given what actually happened
//     (error, retry, timeout, injected fault, latency vs the operation's
//     own history), is this span worth promoting to the retained ring?
//     Tail policies answer *here*; their SampleHead() says no, so healthy
//     sampled-out calls never pay wire bytes, yet RecordProvisional()
//     makes the tracer record every call locally and ask at completion.
//
// The tail policy's latency criterion is derived online: a span is kept
// when its latency exceeds the operation's current p99 × multiplier
// (with a floor so cold histograms don't flag everything). Thresholds
// are cached per histogram and refreshed every ~refresh_every
// completions, so the hot path never walks histogram buckets.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "obs/histogram.h"

namespace heidi::obs {

// What the tracer knows about a span at completion time.
struct TailSignals {
  std::string_view operation;
  uint64_t latency_ns = 0;
  bool errored = false;    // non-empty error tag
  bool retried = false;    // kFlagRetried
  bool timed_out = false;  // kFlagTimedOut
  bool faulted = false;    // kFlagFaulted (injected fault fired in window)
  // The operation's own latency history (op.<name> / srv.<name>), null if
  // the registry has no entry yet.
  const LatencyHistogram* history = nullptr;
};

class RetentionPolicy {
 public:
  virtual ~RetentionPolicy() = default;

  virtual const char* Name() const = 0;

  // Head decision for a new root call: propagate a sampled context?
  virtual bool SampleHead() = 0;

  // True if the tracer should record *every* call provisionally and ask
  // KeepTail at completion (tail policies); false restores pure head
  // sampling (the decision was final at SampleHead).
  virtual bool RecordProvisional() const = 0;

  // Tail decision: promote this completed span to the retained ring?
  // Only consulted when RecordProvisional() is true, for spans that were
  // not head-sampled.
  virtual bool KeepTail(const TailSignals& signals) = 0;
};

// Degenerate head policies — always/never/1-in-N as before, expressed in
// the same interface so OrbOptions carries exactly one knob.
std::shared_ptr<RetentionPolicy> MakeAlwaysRetention();
std::shared_ptr<RetentionPolicy> MakeNeverRetention();
std::shared_ptr<RetentionPolicy> MakeRatioRetention(uint32_t every);

struct TailRetentionOptions {
  // Latency threshold = max(current p99 × p99_multiplier, floor_ns).
  double p99_multiplier = 2.0;
  uint64_t floor_ns = 1'000'000;  // 1 ms — cold histograms flag nothing
  // Below this many samples the histogram is too cold to trust; only the
  // floor applies.
  uint64_t min_history = 100;
  // Recompute a cached per-operation threshold after this many KeepTail
  // consultations of it (the p99 walk is ~300 buckets — fine at 1/64).
  uint32_t refresh_every = 64;
  // Keep 1-in-N healthy calls as a baseline corpus (0 = none).
  uint32_t healthy_every = 0;
};

std::shared_ptr<RetentionPolicy> MakeTailRetention(
    TailRetentionOptions options = {});

}  // namespace heidi::obs
