#include "obs/retention.h"

#include <atomic>

namespace heidi::obs {

namespace {

// --- head policies ----------------------------------------------------------
// SampleHead decides everything; RecordProvisional is false so the tracer
// keeps (or skips) spans at creation exactly as before this layer existed.

class AlwaysRetention : public RetentionPolicy {
 public:
  const char* Name() const override { return "always"; }
  bool SampleHead() override { return true; }
  bool RecordProvisional() const override { return false; }
  bool KeepTail(const TailSignals&) override { return true; }
};

class NeverRetention : public RetentionPolicy {
 public:
  const char* Name() const override { return "never"; }
  bool SampleHead() override { return false; }
  bool RecordProvisional() const override { return false; }
  bool KeepTail(const TailSignals&) override { return false; }
};

class RatioRetention : public RetentionPolicy {
 public:
  explicit RatioRetention(uint32_t every) : every_(every == 0 ? 1 : every) {}
  const char* Name() const override { return "ratio"; }
  bool SampleHead() override {
    return counter_.fetch_add(1, std::memory_order_relaxed) % every_ == 0;
  }
  bool RecordProvisional() const override { return false; }
  bool KeepTail(const TailSignals&) override { return true; }

 private:
  const uint32_t every_;
  std::atomic<uint64_t> counter_{0};
};

// --- tail policy ------------------------------------------------------------

// Per-histogram cached latency threshold. Keyed by the histogram pointer
// (MetricsRegistry entries are immortal, so the key never dangles); a
// fixed open-addressed table sized like the registry, insert-only, fully
// lock-free. `countdown` ticks down per consultation and triggers a p99
// recompute at zero — one bucket walk per refresh_every completions per
// operation, never on the common path.
class TailRetention : public RetentionPolicy {
 public:
  explicit TailRetention(TailRetentionOptions options) : options_(options) {
    if (options_.refresh_every == 0) options_.refresh_every = 1;
  }

  const char* Name() const override { return "tail"; }

  // Tail retention deliberately propagates no head-sampled context:
  // healthy calls stay off the wire; anomalies are promoted locally.
  bool SampleHead() override { return false; }
  bool RecordProvisional() const override { return true; }

  bool KeepTail(const TailSignals& s) override {
    if (s.errored || s.retried || s.timed_out || s.faulted) return true;
    if (s.latency_ns >= LatencyThreshold(s.history)) return true;
    if (options_.healthy_every != 0 &&
        healthy_counter_.fetch_add(1, std::memory_order_relaxed) %
                options_.healthy_every ==
            0) {
      return true;
    }
    return false;
  }

  // Exposed for tests: the threshold currently applied to `history`.
  uint64_t LatencyThreshold(const LatencyHistogram* history) {
    if (history == nullptr) return options_.floor_ns;
    Slot& slot = FindSlot(history);
    if (slot.countdown.fetch_sub(1, std::memory_order_relaxed) <= 1) {
      slot.countdown.store(static_cast<int64_t>(options_.refresh_every),
                           std::memory_order_relaxed);
      slot.threshold.store(ComputeThreshold(*history),
                           std::memory_order_relaxed);
    }
    return slot.threshold.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kSlots = 512;  // power of two, matches registry

  struct Slot {
    std::atomic<const LatencyHistogram*> key{nullptr};
    std::atomic<uint64_t> threshold{0};
    std::atomic<int64_t> countdown{0};
  };

  uint64_t ComputeThreshold(const LatencyHistogram& h) const {
    if (h.Count() < options_.min_history) return options_.floor_ns;
    uint64_t scaled = static_cast<uint64_t>(
        static_cast<double>(h.Percentile(99)) * options_.p99_multiplier);
    return scaled > options_.floor_ns ? scaled : options_.floor_ns;
  }

  Slot& FindSlot(const LatencyHistogram* history) {
    size_t idx = (reinterpret_cast<uintptr_t>(history) >> 4) & (kSlots - 1);
    for (size_t probes = 0; probes < kSlots; ++probes) {
      const LatencyHistogram* key =
          slots_[idx].key.load(std::memory_order_acquire);
      if (key == history) return slots_[idx];
      if (key == nullptr) {
        const LatencyHistogram* expected = nullptr;
        if (slots_[idx].key.compare_exchange_strong(
                expected, history, std::memory_order_acq_rel)) {
          return slots_[idx];
        }
        if (expected == history) return slots_[idx];
      }
      idx = (idx + 1) & (kSlots - 1);
    }
    return overflow_;  // table full: shared threshold, still correct-ish
  }

  TailRetentionOptions options_;
  Slot slots_[kSlots];
  Slot overflow_;
  std::atomic<uint64_t> healthy_counter_{0};
};

}  // namespace

std::shared_ptr<RetentionPolicy> MakeAlwaysRetention() {
  return std::make_shared<AlwaysRetention>();
}

std::shared_ptr<RetentionPolicy> MakeNeverRetention() {
  return std::make_shared<NeverRetention>();
}

std::shared_ptr<RetentionPolicy> MakeRatioRetention(uint32_t every) {
  return std::make_shared<RatioRetention>(every);
}

std::shared_ptr<RetentionPolicy> MakeTailRetention(
    TailRetentionOptions options) {
  return std::make_shared<TailRetention>(options);
}

}  // namespace heidi::obs
