// PromHttpServer — a deliberately tiny HTTP/1.0 scrape endpoint so any
// pull-based collector (Prometheus, a curl in CI) can read this
// process's metrics without telnet_debug's human-oriented framing. One
// accept thread, one request per connection, close after response: a
// scrape every few seconds is the design load, so the simplest correct
// server wins over a real HTTP stack.
//
// Routes are registered as (path -> page callback); the callback renders
// the body at scrape time (e.g. Orb syncs OrbStats into its registry and
// calls RenderOpenMetrics). Unknown paths get 404; anything that is not
// a GET gets 405.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace heidi::obs {

class PromHttpServer {
 public:
  struct Page {
    // Body renderer, called per scrape on the serving thread.
    std::function<std::string()> render;
    std::string content_type = "text/plain; charset=utf-8";
  };

  // Binds immediately (port 0 = ephemeral, see Port()); serving starts
  // at Start(). Throws NetError if the port is taken.
  explicit PromHttpServer(uint16_t port = 0);
  ~PromHttpServer();
  PromHttpServer(const PromHttpServer&) = delete;
  PromHttpServer& operator=(const PromHttpServer&) = delete;

  // Path must start with '/'. Register before Start().
  void Handle(std::string path, Page page);

  void Start();
  // Idempotent; joins the accept thread.
  void Stop();

  uint16_t Port() const;

 private:
  void ServeLoop();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace heidi::obs
