#include "obs/flight.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/span.h"
#include "obs/trace.h"

namespace heidi::obs {

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kNone: return "none";
    case FlightEventType::kConnOpened: return "conn_opened";
    case FlightEventType::kConnAccepted: return "conn_accepted";
    case FlightEventType::kConnBroken: return "conn_broken";
    case FlightEventType::kReconnect: return "reconnect";
    case FlightEventType::kRetry: return "retry";
    case FlightEventType::kRetryGiveUp: return "retry_give_up";
    case FlightEventType::kFaultInjected: return "fault_injected";
    case FlightEventType::kQueueHighWater: return "queue_high_water";
    case FlightEventType::kPoolPressure: return "pool_pressure";
    case FlightEventType::kArenaOversize: return "arena_oversize";
    case FlightEventType::kListen: return "listen";
    case FlightEventType::kShutdown: return "shutdown";
    case FlightEventType::kFatalSignal: return "fatal_signal";
    case FlightEventType::kBackpressure: return "backpressure";
    case FlightEventType::kLoopStall: return "loop_stall";
  }
  return "?";
}

FlightRecorder::FlightRecorder(size_t capacity, size_t shards)
    : shards_(std::max<size_t>(shards, 1)),
      per_shard_(std::max<size_t>(capacity / std::max<size_t>(shards, 1), 1)) {
  for (Shard& shard : shards_) shard.events.resize(per_shard_);
}

void FlightRecorder::Record(FlightEventType type, uint64_t a, uint64_t b,
                            std::string_view detail) {
  Shard& shard = shards_[ThreadOrdinal() % shards_.size()];
  std::unique_lock lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  FlightEvent& ev = shard.events[shard.next];
  shard.next = (shard.next + 1) % per_shard_;
  ev.ts_ns = NowNs();
  ev.thread = static_cast<uint32_t>(ThreadOrdinal());
  ev.type = type;
  ev.a = a;
  ev.b = b;
  size_t n = std::min(detail.size(), sizeof(ev.detail) - 1);
  std::memcpy(ev.detail, detail.data(), n);
  ev.detail[n] = '\0';
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const FlightEvent& ev : shard.events) {
      if (ev.ts_ns != 0) out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.ts_ns < y.ts_ns;
            });
  return out;
}

namespace {

// Control bytes and quotes in `detail` would break the JSON line; they
// only arrive from error texts, so flattening to '.' loses nothing.
void AppendJsonSafe(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    bool bad = c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20;
    out.push_back(bad ? '.' : c);
  }
}

}  // namespace

std::string FlightRecorder::DumpJsonl() const {
  std::string out;
  for (const FlightEvent& ev : Snapshot()) {
    out += "{\"ts_ns\":" + std::to_string(ev.ts_ns);
    out += ",\"thread\":" + std::to_string(ev.thread);
    out += ",\"type\":\"";
    out += FlightEventTypeName(ev.type);
    out += "\",\"a\":" + std::to_string(ev.a);
    out += ",\"b\":" + std::to_string(ev.b);
    out += ",\"detail\":\"";
    AppendJsonSafe(out, ev.detail);
    out += "\"}\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Async-signal-safe dump

namespace {

// write(2) the whole buffer, retrying short writes; EINTR-safe.
size_t WriteFully(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::write(fd, data + done, n - done);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      break;
    }
    done += static_cast<size_t>(w);
  }
  return done;
}

// Decimal formatting into a caller's buffer — snprintf is not on the
// async-signal-safe list. Returns chars written.
size_t FormatU64(char* buf, uint64_t v) {
  char tmp[20];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

size_t FormatI64(char* buf, int64_t v) {
  if (v < 0) {
    buf[0] = '-';
    return 1 + FormatU64(buf + 1, static_cast<uint64_t>(-v));
  }
  return FormatU64(buf, static_cast<uint64_t>(v));
}

struct LineBuf {
  char data[256];
  size_t len = 0;
  void Str(const char* s) {
    while (*s != '\0' && len < sizeof(data)) data[len++] = *s++;
  }
  void U64(uint64_t v) {
    if (len + 20 <= sizeof(data)) len += FormatU64(data + len, v);
  }
  void I64(int64_t v) {
    if (len + 21 <= sizeof(data)) len += FormatI64(data + len, v);
  }
  void SafeStr(const char* s, size_t max) {
    for (size_t i = 0; i < max && s[i] != '\0' && len < sizeof(data); ++i) {
      char c = s[i];
      bool bad = c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20;
      data[len++] = bad ? '.' : c;
    }
  }
};

}  // namespace

size_t FlightRecorder::DumpToFdSignalSafe(int fd) const {
  size_t written = 0;
  // Raw, lockless walk: the process is crashing; a torn event is better
  // than a deadlock on a mutex the crashing thread may hold.
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < shard.events.size(); ++i) {
      const FlightEvent& ev = shard.events[i];
      if (ev.ts_ns == 0) continue;
      LineBuf line;
      line.Str("{\"ts_ns\":");
      line.I64(ev.ts_ns);
      line.Str(",\"thread\":");
      line.U64(ev.thread);
      line.Str(",\"type\":\"");
      line.Str(FlightEventTypeName(ev.type));
      line.Str("\",\"a\":");
      line.U64(ev.a);
      line.Str(",\"b\":");
      line.U64(ev.b);
      line.Str(",\"detail\":\"");
      line.SafeStr(ev.detail, sizeof(ev.detail));
      line.Str("\"}\n");
      written += WriteFully(fd, line.data, line.len);
    }
  }
  return written;
}

FlightRecorder& FlightRecorder::Global() {
  // Immortal: subsystems record events from static destructors of
  // arbitrary order, and the signal handler must never race teardown.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

// ---------------------------------------------------------------------------
// Fatal-signal dump

namespace {

// Fixed at install time; the handler must not touch std::string.
char g_dump_path[512] = {};

void FlightFatalSignalHandler(int signo) {
  FlightRecorder& recorder = FlightRecorder::Global();
  // Journal the signal itself, then dump. Record() try-locks: if the
  // crashing thread holds the shard lock the event drops, but the dump
  // below still proceeds locklessly.
  recorder.Record(FlightEventType::kFatalSignal,
                  static_cast<uint64_t>(signo));
  int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    recorder.DumpToFdSignalSafe(fd);
    ::close(fd);
  }
  // SA_RESETHAND restored default disposition; re-raise so the process
  // dies with the real signal (core dumps, wait status intact).
  ::raise(signo);
}

}  // namespace

void InstallFatalSignalDump(const std::string& path) {
  static std::once_flag once;
  std::call_once(once, [&path] {
    size_t n = std::min(path.size(), sizeof(g_dump_path) - 1);
    std::memcpy(g_dump_path, path.data(), n);
    g_dump_path[n] = '\0';
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = &FlightFatalSignalHandler;
    action.sa_flags = SA_RESETHAND;
    sigemptyset(&action.sa_mask);
    for (int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
      ::sigaction(signo, &action, nullptr);
    }
  });
}

}  // namespace heidi::obs
