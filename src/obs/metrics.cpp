#include "obs/metrics.h"

#include <algorithm>
#include <functional>
#include <vector>

namespace heidi::obs {

namespace {

// One escape pass is enough for the keys and values we emit (operation
// names, stage names); quotes/backslashes/control bytes are the only
// characters that could break the JSON framing.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

MetricsRegistry::MetricsRegistry() { overflow_.key = "(overflow)"; }

MetricsRegistry::~MetricsRegistry() {
  for (auto& slot : slots_) delete slot.load(std::memory_order_relaxed);
}

MetricsRegistry::Entry* MetricsRegistry::Lookup(std::string_view key) {
  size_t hash = std::hash<std::string_view>{}(key);
  size_t idx = hash & (kSlots - 1);
  // Bounded probe: a full table (or a pathological cluster) falls back to
  // the shared overflow entry rather than looping or allocating.
  for (size_t probes = 0; probes < kSlots; ++probes) {
    Entry* entry = slots_[idx].load(std::memory_order_acquire);
    if (entry == nullptr) {
      auto* fresh = new Entry();
      fresh->key = std::string(key);
      Entry* expected = nullptr;
      if (slots_[idx].compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel)) {
        return fresh;
      }
      delete fresh;
      entry = expected;  // somebody else installed this slot; inspect it
    }
    if (entry->key == key) return entry;
    idx = (idx + 1) & (kSlots - 1);
  }
  return &overflow_;
}

LatencyHistogram* MetricsRegistry::Histogram(std::string_view key) {
  return &Lookup(key)->histogram;
}

Counter* MetricsRegistry::GetCounter(std::string_view key) {
  return &Lookup(key)->counter;
}

std::string MetricsRegistry::Render() const {
  std::vector<const Entry*> entries;
  for (const auto& slot : slots_) {
    const Entry* e = slot.load(std::memory_order_acquire);
    if (e != nullptr) entries.push_back(e);
  }
  if (overflow_.counter.Value() != 0 || overflow_.histogram.Count() != 0) {
    entries.push_back(&overflow_);
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry* a, const Entry* b) { return a->key < b->key; });
  std::string out;
  for (const Entry* e : entries) {
    const LatencyHistogram& h = e->histogram;
    if (h.Count() != 0) {
      out += e->key;
      out += "  count=" + std::to_string(h.Count());
      out += " p50=" + std::to_string(h.Percentile(50)) + "ns";
      out += " p90=" + std::to_string(h.Percentile(90)) + "ns";
      out += " p99=" + std::to_string(h.Percentile(99)) + "ns";
      out += " max=" + std::to_string(h.Max()) + "ns";
      out += " mean=" + std::to_string(h.Mean()) + "ns";
      out.push_back('\n');
    }
    if (e->counter.Value() != 0) {
      out += e->key;
      out += "  " + std::to_string(e->counter.Value());
      out.push_back('\n');
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::vector<const Entry*> entries;
  for (const auto& slot : slots_) {
    const Entry* e = slot.load(std::memory_order_acquire);
    if (e != nullptr) entries.push_back(e);
  }
  if (overflow_.counter.Value() != 0 || overflow_.histogram.Count() != 0) {
    entries.push_back(&overflow_);
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry* a, const Entry* b) { return a->key < b->key; });
  std::string counters = "{";
  std::string histograms = "{";
  bool first_counter = true;
  bool first_histogram = true;
  for (const Entry* e : entries) {
    if (e->counter.Value() != 0) {
      if (!first_counter) counters.push_back(',');
      first_counter = false;
      counters += "\"" + JsonEscape(e->key) +
                  "\":" + std::to_string(e->counter.Value());
    }
    const LatencyHistogram& h = e->histogram;
    if (h.Count() != 0) {
      if (!first_histogram) histograms.push_back(',');
      first_histogram = false;
      histograms += "\"" + JsonEscape(e->key) + "\":{";
      histograms += "\"count\":" + std::to_string(h.Count());
      histograms += ",\"p50_ns\":" + std::to_string(h.Percentile(50));
      histograms += ",\"p90_ns\":" + std::to_string(h.Percentile(90));
      histograms += ",\"p99_ns\":" + std::to_string(h.Percentile(99));
      histograms += ",\"max_ns\":" + std::to_string(h.Max());
      histograms += ",\"mean_ns\":" + std::to_string(h.Mean());
      histograms.push_back('}');
    }
  }
  counters.push_back('}');
  histograms.push_back('}');
  return "{\"counters\":" + counters + ",\"histograms\":" + histograms + "}";
}

}  // namespace heidi::obs
