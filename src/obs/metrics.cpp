#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

namespace heidi::obs {

namespace {

// One escape pass is enough for the keys and values we emit (operation
// names, stage names); quotes/backslashes/control bytes are the only
// characters that could break the JSON framing.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

MetricsRegistry::MetricsRegistry() { overflow_.key = "(overflow)"; }

MetricsRegistry::~MetricsRegistry() {
  for (auto& slot : slots_) delete slot.load(std::memory_order_relaxed);
}

MetricsRegistry::Entry* MetricsRegistry::Lookup(std::string_view key) {
  size_t hash = std::hash<std::string_view>{}(key);
  size_t idx = hash & (kSlots - 1);
  // Bounded probe: a full table (or a pathological cluster) falls back to
  // the shared overflow entry rather than looping or allocating.
  for (size_t probes = 0; probes < kSlots; ++probes) {
    Entry* entry = slots_[idx].load(std::memory_order_acquire);
    if (entry == nullptr) {
      auto* fresh = new Entry();
      fresh->key = std::string(key);
      Entry* expected = nullptr;
      if (slots_[idx].compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel)) {
        return fresh;
      }
      delete fresh;
      entry = expected;  // somebody else installed this slot; inspect it
    }
    if (entry->key == key) return entry;
    idx = (idx + 1) & (kSlots - 1);
  }
  return &overflow_;
}

LatencyHistogram* MetricsRegistry::Histogram(std::string_view key) {
  return &Lookup(key)->histogram;
}

Counter* MetricsRegistry::GetCounter(std::string_view key) {
  return &Lookup(key)->counter;
}

Gauge* MetricsRegistry::GetGauge(std::string_view key) {
  return &Lookup(key)->gauge;
}

std::string MetricsRegistry::Render() const {
  std::vector<const Entry*> entries;
  for (const auto& slot : slots_) {
    const Entry* e = slot.load(std::memory_order_acquire);
    if (e != nullptr) entries.push_back(e);
  }
  if (overflow_.counter.Value() != 0 || overflow_.histogram.Count() != 0) {
    entries.push_back(&overflow_);
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry* a, const Entry* b) { return a->key < b->key; });
  std::string out;
  for (const Entry* e : entries) {
    const LatencyHistogram& h = e->histogram;
    if (h.Count() != 0) {
      out += e->key;
      out += "  count=" + std::to_string(h.Count());
      out += " p50=" + std::to_string(h.Percentile(50)) + "ns";
      out += " p90=" + std::to_string(h.Percentile(90)) + "ns";
      out += " p99=" + std::to_string(h.Percentile(99)) + "ns";
      out += " max=" + std::to_string(h.Max()) + "ns";
      out += " mean=" + std::to_string(h.Mean()) + "ns";
      out.push_back('\n');
    }
    if (e->counter.Value() != 0) {
      out += e->key;
      out += "  " + std::to_string(e->counter.Value());
      out.push_back('\n');
    }
    if (e->gauge.Touched()) {
      out += e->key;
      out += "  " + std::to_string(e->gauge.Value());
      out.push_back('\n');
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::vector<const Entry*> entries;
  for (const auto& slot : slots_) {
    const Entry* e = slot.load(std::memory_order_acquire);
    if (e != nullptr) entries.push_back(e);
  }
  if (overflow_.counter.Value() != 0 || overflow_.histogram.Count() != 0) {
    entries.push_back(&overflow_);
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry* a, const Entry* b) { return a->key < b->key; });
  std::string counters = "{";
  std::string gauges = "{";
  std::string histograms = "{";
  bool first_counter = true;
  bool first_gauge = true;
  bool first_histogram = true;
  for (const Entry* e : entries) {
    if (e->counter.Value() != 0) {
      if (!first_counter) counters.push_back(',');
      first_counter = false;
      counters += "\"" + JsonEscape(e->key) +
                  "\":" + std::to_string(e->counter.Value());
    }
    if (e->gauge.Touched()) {
      if (!first_gauge) gauges.push_back(',');
      first_gauge = false;
      gauges +=
          "\"" + JsonEscape(e->key) + "\":" + std::to_string(e->gauge.Value());
    }
    const LatencyHistogram& h = e->histogram;
    if (h.Count() != 0) {
      if (!first_histogram) histograms.push_back(',');
      first_histogram = false;
      histograms += "\"" + JsonEscape(e->key) + "\":{";
      histograms += "\"count\":" + std::to_string(h.Count());
      histograms += ",\"p50_ns\":" + std::to_string(h.Percentile(50));
      histograms += ",\"p90_ns\":" + std::to_string(h.Percentile(90));
      histograms += ",\"p99_ns\":" + std::to_string(h.Percentile(99));
      histograms += ",\"max_ns\":" + std::to_string(h.Max());
      histograms += ",\"mean_ns\":" + std::to_string(h.Mean());
      histograms.push_back('}');
    }
  }
  counters.push_back('}');
  gauges.push_back('}');
  histograms.push_back('}');
  return "{\"counters\":" + counters + ",\"gauges\":" + gauges +
         ",\"histograms\":" + histograms + "}";
}

// ---------------------------------------------------------------------------
// OpenMetrics text exposition

namespace {

// Prometheus metric-name alphabet; everything else flattens to '_'. The
// fixed prefix both namespaces the process and guarantees names never
// start with a digit.
std::string SanitizeMetricName(std::string_view key) {
  std::string out = "heidi_";
  out.reserve(out.size() + key.size());
  for (char c : key) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

// Seconds with enough digits to round-trip ns; trailing-zero trimming is
// not required by the exposition format.
std::string SecondsFromNs(uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9f", static_cast<double>(ns) / 1e9);
  return buf;
}

// Cumulative `le` boundaries for exported histograms, in nanoseconds.
// Decades from 1us to 10s cover every latency this ORB produces; the
// native log-linear buckets are folded into them (a sample counts toward
// the first boundary at or above its bucket's upper edge).
constexpr uint64_t kLeBoundsNs[] = {
    1'000,          10'000,        100'000,        1'000'000,
    10'000'000,     100'000'000,   1'000'000'000,  10'000'000'000,
};

const char* kLeLabels[] = {
    "1e-06", "1e-05", "0.0001", "0.001", "0.01", "0.1", "1", "10",
};

}  // namespace

std::string MetricsRegistry::RenderOpenMetrics() const {
  std::vector<const Entry*> entries;
  for (const auto& slot : slots_) {
    const Entry* e = slot.load(std::memory_order_acquire);
    if (e != nullptr) entries.push_back(e);
  }
  if (overflow_.counter.Value() != 0 || overflow_.histogram.Count() != 0) {
    entries.push_back(&overflow_);
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry* a, const Entry* b) { return a->key < b->key; });
  std::string out;
  for (const Entry* e : entries) {
    std::string name = SanitizeMetricName(e->key);
    if (e->counter.Value() != 0) {
      out += "# TYPE " + name + " counter\n";
      out += name + "_total " + std::to_string(e->counter.Value()) + "\n";
    }
    if (e->gauge.Touched()) {
      out += "# TYPE " + name + " gauge\n";
      out += name + " " + std::to_string(e->gauge.Value()) + "\n";
    }
    const LatencyHistogram& h = e->histogram;
    if (h.Count() != 0) {
      // A name can't be both a counter/gauge and a histogram family in
      // one exposition; suffix the histogram if the key is overloaded.
      std::string hname =
          (e->counter.Value() != 0 || e->gauge.Touched()) ? name + "_seconds"
                                                          : name;
      out += "# TYPE " + hname + " histogram\n";
      // Fold native buckets into the fixed boundaries, cumulatively.
      constexpr int kBounds =
          static_cast<int>(sizeof(kLeBoundsNs) / sizeof(kLeBoundsNs[0]));
      uint64_t cumulative[kBounds] = {};
      uint64_t total = 0;
      for (int idx = 0; idx < LatencyHistogram::kBucketCount; ++idx) {
        uint64_t n = h.BucketCountAt(idx);
        if (n == 0) continue;
        total += n;
        uint64_t high = LatencyHistogram::BucketHigh(idx);
        for (int b = 0; b < kBounds; ++b) {
          if (high <= kLeBoundsNs[b]) cumulative[b] += n;
        }
      }
      for (int b = 0; b < kBounds; ++b) {
        out += hname + "_bucket{le=\"" + kLeLabels[b] +
               "\"} " + std::to_string(cumulative[b]) + "\n";
      }
      out += hname + "_bucket{le=\"+Inf\"} " + std::to_string(total) + "\n";
      out += hname + "_sum " + SecondsFromNs(h.Sum()) + "\n";
      out += hname + "_count " + std::to_string(total) + "\n";
    }
  }
  out += "# EOF\n";
  return out;
}

const char* MetricsRegistry::OpenMetricsContentType() {
  return "application/openmetrics-text; version=1.0.0; charset=utf-8";
}

}  // namespace heidi::obs
