// FlightRecorder — the black-box event journal. Where SpanRing answers
// "where did this call spend its time", the flight recorder answers
// "what was the *process* doing just before things went wrong": a
// bounded, lock-sharded ring of fixed-size binary events fed by the rare
// but load-bearing transitions — connection lifecycle, retries and
// give-ups, injected faults, workpool queue high-water marks, pool and
// arena pressure. Recording one event is a try-lock and a 64-byte store;
// a contended shard drops and counts, never blocks.
//
// Two dump paths:
//   * DumpJsonl() — the cooperative path (telnet_debug `flight`,
//     Orb::DumpFlightRecorder): locks shard-at-a-time, sorts by time,
//     renders one JSON object per line.
//   * DumpToFdSignalSafe(fd) — the postmortem path: no locks, no
//     allocation, hand-rolled formatting, write(2) only, so
//     InstallFatalSignalDump can call it from a SIGSEGV handler and the
//     journal survives the crash it explains.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace heidi::obs {

enum class FlightEventType : uint16_t {
  kNone = 0,
  kConnOpened = 1,     // a=generation, detail=peer
  kConnAccepted = 2,   // detail=peer
  kConnBroken = 3,     // a=pending calls failed, detail=why
  kReconnect = 4,      // detail=target host:port
  kRetry = 5,          // a=attempt, detail=operation
  kRetryGiveUp = 6,    // a=attempts used, detail=operation
  kFaultInjected = 7,  // a=total faults so far, detail=kind
  kQueueHighWater = 8, // a=new high-water depth
  kPoolPressure = 9,   // a=outstanding bytes, b=outstanding bufs
  kArenaOversize = 10, // a=request bytes
  kListen = 11,        // a=port
  kShutdown = 12,
  kFatalSignal = 13,   // a=signo
  kBackpressure = 14,  // a=queued reply bytes, b=reactor shard
  kLoopStall = 15,     // a=loop iteration ns, b=reactor shard
};

const char* FlightEventTypeName(FlightEventType type);

// One fixed-size journal entry; 64 bytes so a shard's ring is a flat,
// cache-line-aligned array a signal handler can walk raw.
struct FlightEvent {
  int64_t ts_ns = 0;  // obs::NowNs; 0 = slot never written
  uint32_t thread = 0;
  FlightEventType type = FlightEventType::kNone;
  uint16_t reserved = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  char detail[32] = {};  // NUL-terminated, truncated
};
static_assert(sizeof(FlightEvent) == 64);

class FlightRecorder {
 public:
  // `capacity` total events split across `shards` (each rounded up to at
  // least one).
  explicit FlightRecorder(size_t capacity = 4096, size_t shards = 16);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(FlightEventType type, uint64_t a = 0, uint64_t b = 0,
              std::string_view detail = {});

  uint64_t Recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t Dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Cooperative snapshot, oldest-first.
  std::vector<FlightEvent> Snapshot() const;
  // One JSON object per line, oldest-first, e.g.
  //   {"ts_ns":123,"thread":2,"type":"conn_broken","a":1,"b":0,
  //    "detail":"read: injected"}
  std::string DumpJsonl() const;

  // Async-signal-safe best-effort dump: walks the rings without locking
  // (torn events possible — acceptable in a crashing process), formats
  // with stack buffers, emits via write(2). Returns bytes written.
  size_t DumpToFdSignalSafe(int fd) const;

  // The process-wide recorder every subsystem feeds. Immortal.
  static FlightRecorder& Global();

 private:
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::vector<FlightEvent> events;  // ring storage
    size_t next = 0;
  };

  std::vector<Shard> shards_;
  size_t per_shard_;
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
};

// Installs handlers for SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL that append
// a kFatalSignal event and dump FlightRecorder::Global() to `path`
// before re-raising with default disposition (so the exit status still
// reflects the crash). Idempotent; the path is fixed at first install.
void InstallFatalSignalDump(const std::string& path);

}  // namespace heidi::obs
