#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <random>

namespace heidi::obs {

namespace {

uint64_t Rand64() {
  // random_device seeds once per thread; the counter guarantees distinct
  // values even on platforms with a weak random_device.
  thread_local std::mt19937_64 rng = [] {
    std::random_device rd;
    uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd() ^
                    static_cast<uint64_t>(
                        std::chrono::steady_clock::now().time_since_epoch().count());
    return std::mt19937_64(seed);
  }();
  return rng();
}

void PutHex64(std::string& out, uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  out += buf;
}

bool ParseHex(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t v = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

thread_local TraceContext g_current;

}  // namespace

std::string TraceContext::ToString() const {
  if (!Valid()) return "";
  std::string out;
  out.reserve(32 + 1 + 16 + 1 + 16 + 1 + 2);
  PutHex64(out, trace_hi);
  PutHex64(out, trace_lo);
  out.push_back('-');
  PutHex64(out, span_id);
  out.push_back('-');
  PutHex64(out, parent_span_id);
  out.push_back('-');
  char flags[3];
  std::snprintf(flags, sizeof flags, "%02x", sampled ? 1 : 0);
  out += flags;
  return out;
}

bool TraceContext::Parse(std::string_view text, TraceContext* out) {
  // <32 hex>-<16 hex>-<16 hex>-<2 hex>
  if (text.size() != 32 + 1 + 16 + 1 + 16 + 1 + 2) return false;
  if (text[32] != '-' || text[49] != '-' || text[66] != '-') return false;
  TraceContext ctx;
  uint64_t flags = 0;
  if (!ParseHex(text.substr(0, 16), &ctx.trace_hi) ||
      !ParseHex(text.substr(16, 16), &ctx.trace_lo) ||
      !ParseHex(text.substr(33, 16), &ctx.span_id) ||
      !ParseHex(text.substr(50, 16), &ctx.parent_span_id) ||
      !ParseHex(text.substr(67, 2), &flags)) {
    return false;
  }
  ctx.sampled = (flags & 1) != 0;
  if (!ctx.Valid()) return false;
  *out = ctx;
  return true;
}

uint64_t NewSpanId() {
  uint64_t id;
  do {
    id = Rand64();
  } while (id == 0);
  return id;
}

TraceContext NewRootContext(bool sampled) {
  TraceContext ctx;
  do {
    ctx.trace_hi = Rand64();
    ctx.trace_lo = Rand64();
  } while ((ctx.trace_hi | ctx.trace_lo) == 0);
  ctx.span_id = NewSpanId();
  ctx.parent_span_id = 0;
  ctx.sampled = sampled;
  return ctx;
}

TraceContext ChildContext(const TraceContext& parent) {
  TraceContext ctx = parent;
  ctx.parent_span_id = parent.span_id;
  ctx.span_id = NewSpanId();
  return ctx;
}

const TraceContext& CurrentContext() { return g_current; }

ScopedContext::ScopedContext(const TraceContext& ctx) : saved_(g_current) {
  g_current = ctx;
}

ScopedContext::~ScopedContext() { g_current = saved_; }

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace heidi::obs
