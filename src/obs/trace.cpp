#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <random>

namespace heidi::obs {

namespace {

uint64_t Rand64() {
  // random_device seeds once per thread; the counter guarantees distinct
  // values even on platforms with a weak random_device.
  thread_local std::mt19937_64 rng = [] {
    std::random_device rd;
    uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd() ^
                    static_cast<uint64_t>(
                        std::chrono::steady_clock::now().time_since_epoch().count());
    return std::mt19937_64(seed);
  }();
  return rng();
}

void PutHex64(std::string& out, uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  out += buf;
}

bool ParseHex(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t v = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

thread_local TraceContext g_current;

}  // namespace

std::string TraceContext::ToString() const {
  if (!Valid()) return "";
  std::string out;
  out.reserve(32 + 1 + 16 + 1 + 16 + 1 + 2);
  PutHex64(out, trace_hi);
  PutHex64(out, trace_lo);
  out.push_back('-');
  PutHex64(out, span_id);
  out.push_back('-');
  PutHex64(out, parent_span_id);
  out.push_back('-');
  char flags[3];
  std::snprintf(flags, sizeof flags, "%02x", sampled ? 1 : 0);
  out += flags;
  return out;
}

bool TraceContext::Parse(std::string_view text, TraceContext* out) {
  // <32 hex>-<16 hex>-<16 hex>-<2 hex>
  if (text.size() != 32 + 1 + 16 + 1 + 16 + 1 + 2) return false;
  if (text[32] != '-' || text[49] != '-' || text[66] != '-') return false;
  TraceContext ctx;
  uint64_t flags = 0;
  if (!ParseHex(text.substr(0, 16), &ctx.trace_hi) ||
      !ParseHex(text.substr(16, 16), &ctx.trace_lo) ||
      !ParseHex(text.substr(33, 16), &ctx.span_id) ||
      !ParseHex(text.substr(50, 16), &ctx.parent_span_id) ||
      !ParseHex(text.substr(67, 2), &flags)) {
    return false;
  }
  ctx.sampled = (flags & 1) != 0;
  if (!ctx.Valid()) return false;
  *out = ctx;
  return true;
}

uint64_t NewSpanId() {
  uint64_t id;
  do {
    id = Rand64();
  } while (id == 0);
  return id;
}

TraceContext NewRootContext(bool sampled) {
  TraceContext ctx;
  do {
    ctx.trace_hi = Rand64();
    ctx.trace_lo = Rand64();
  } while ((ctx.trace_hi | ctx.trace_lo) == 0);
  ctx.span_id = NewSpanId();
  ctx.parent_span_id = 0;
  ctx.sampled = sampled;
  return ctx;
}

TraceContext ChildContext(const TraceContext& parent) {
  TraceContext ctx = parent;
  ctx.parent_span_id = parent.span_id;
  ctx.span_id = NewSpanId();
  return ctx;
}

const TraceContext& CurrentContext() { return g_current; }

ScopedContext::ScopedContext(const TraceContext& ctx) : saved_(g_current) {
  g_current = ctx;
}

ScopedContext::~ScopedContext() { g_current = saved_; }

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#if defined(__x86_64__)

// Timestamps are the single largest per-call cost of always-on telemetry
// (a traced invocation takes ~a dozen of them), so NowNs self-calibrates
// onto the invariant TSC: after a short warm-up window measured against
// the steady clock, a timestamp is one rdtsc (~8ns) plus a fixed-point
// multiply instead of a vDSO clock read (~35ns). All obs timestamps come
// from this one function, so client/server timelines stay mutually
// consistent; absolute drift against the steady clock is bounded by the
// calibration error (~1e-4 relative) and irrelevant to durations.
bool TscIsInvariant() {
  // CPUID leaf 0x80000007, EDX bit 8: TSC runs at a constant rate across
  // P-states and deep C-states. Without it (old parts, some VMs) stay on
  // the steady clock.
  uint32_t eax, ebx, ecx, edx;
  asm volatile("cpuid"
               : "=a"(eax), "=b"(ebx), "=c"(ecx), "=d"(edx)
               : "a"(0x80000000u));
  if (eax < 0x80000007u) return false;
  asm volatile("cpuid"
               : "=a"(eax), "=b"(ebx), "=c"(ecx), "=d"(edx)
               : "a"(0x80000007u));
  return (edx & (1u << 8)) != 0;
}

uint64_t Rdtsc() {
  uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

struct TscClock {
  int64_t base_ns = 0;
  uint64_t base_tsc = 0;
  // ns per tick in 32.32 fixed point; 0 until calibrated, -1 when the
  // TSC is unusable and every call takes the slow path.
  std::atomic<int64_t> ns_per_tick_q32{0};
  std::once_flag init_once;
  std::mutex calibrate_mutex;
};

TscClock g_tsc;

constexpr int64_t kCalibrateWindowNs = 2'000'000;  // 2ms of real history

int64_t TscNowNs() {
  int64_t rate = g_tsc.ns_per_tick_q32.load(std::memory_order_acquire);
  if (rate > 0) {
    auto ticks = static_cast<int64_t>(Rdtsc() - g_tsc.base_tsc);
    return g_tsc.base_ns +
           static_cast<int64_t>(
               (static_cast<__int128>(ticks) * rate) >> 32);
  }
  std::call_once(g_tsc.init_once, [] {
    if (!TscIsInvariant()) {
      g_tsc.ns_per_tick_q32.store(-1, std::memory_order_release);
      return;
    }
    g_tsc.base_ns = SteadyNowNs();
    g_tsc.base_tsc = Rdtsc();
  });
  int64_t now = SteadyNowNs();
  if (rate == 0 &&
      g_tsc.ns_per_tick_q32.load(std::memory_order_relaxed) == 0 &&
      now - g_tsc.base_ns >= kCalibrateWindowNs) {
    // Enough wall time since init for a stable rate; first thread here
    // publishes it. Continuity at the switchover is exact: the fast path
    // reproduces `now` for the calibrating tsc sample by construction.
    std::lock_guard lock(g_tsc.calibrate_mutex);
    if (g_tsc.ns_per_tick_q32.load(std::memory_order_relaxed) == 0) {
      uint64_t tsc = Rdtsc();
      now = SteadyNowNs();
      auto ticks = static_cast<int64_t>(tsc - g_tsc.base_tsc);
      if (ticks > 0) {
        auto q32 = static_cast<int64_t>(
            (static_cast<__int128>(now - g_tsc.base_ns) << 32) / ticks);
        if (q32 > 0) {
          g_tsc.ns_per_tick_q32.store(q32, std::memory_order_release);
        }
      }
    }
  }
  return now;
}

#endif  // __x86_64__

}  // namespace

int64_t NowNs() {
#if defined(__x86_64__)
  return TscNowNs();
#else
  return SteadyNowNs();
#endif
}

}  // namespace heidi::obs
