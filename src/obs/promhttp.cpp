#include "obs/promhttp.h"

#include <map>
#include <mutex>

#include "net/channel.h"
#include "net/tcp.h"
#include "support/error.h"
#include "support/logging.h"

namespace heidi::obs {

struct PromHttpServer::Impl {
  net::TcpAcceptor acceptor;
  std::map<std::string, Page> pages;
  std::thread server;
  std::mutex stop_mutex;
  bool started = false;
  bool stopped = false;

  explicit Impl(uint16_t port) : acceptor(port) {}
};

PromHttpServer::PromHttpServer(uint16_t port)
    : impl_(std::make_unique<Impl>(port)) {}

PromHttpServer::~PromHttpServer() { Stop(); }

void PromHttpServer::Handle(std::string path, Page page) {
  impl_->pages[std::move(path)] = std::move(page);
}

uint16_t PromHttpServer::Port() const { return impl_->acceptor.Port(); }

void PromHttpServer::Start() {
  if (impl_->started) return;
  impl_->started = true;
  impl_->server = std::thread([this] { ServeLoop(); });
}

void PromHttpServer::Stop() {
  {
    std::lock_guard lock(impl_->stop_mutex);
    if (impl_->stopped) return;
    impl_->stopped = true;
  }
  impl_->acceptor.Close();  // unblocks Accept()
  if (impl_->server.joinable()) impl_->server.join();
}

namespace {

// Reads up to the end of the request head ("\r\n\r\n") or a sane size
// cap; a scraper's GET fits in one segment, so this is one Read in
// practice. Returns the first line (the request line), or empty on a
// malformed/oversized request.
std::string ReadRequestLine(net::ByteChannel& channel) {
  std::string head;
  char buf[1024];
  while (head.size() < 8192 && head.find("\r\n\r\n") == std::string::npos) {
    // Scrapers send the whole request promptly; a peer that dribbles
    // slower than this is not a scraper.
    if (!channel.WaitReadable(2000)) return {};
    size_t n = channel.Read(buf, sizeof buf);
    if (n == 0) break;
    head.append(buf, n);
  }
  size_t eol = head.find("\r\n");
  if (eol == std::string::npos) eol = head.find('\n');
  if (eol == std::string::npos) return {};
  return head.substr(0, eol);
}

void WriteResponse(net::ByteChannel& channel, const char* status,
                   const std::string& content_type, const std::string& body) {
  std::string response = "HTTP/1.0 ";
  response += status;
  response += "\r\nContent-Type: " + content_type;
  response += "\r\nContent-Length: " + std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  channel.WriteAll(response.data(), response.size());
}

}  // namespace

void PromHttpServer::ServeLoop() {
  for (;;) {
    std::unique_ptr<net::ByteChannel> channel;
    try {
      channel = impl_->acceptor.Accept();
    } catch (const NetError&) {
      return;
    }
    if (channel == nullptr) return;  // Stop() closed the acceptor
    try {
      std::string request = ReadRequestLine(*channel);
      // "GET /metrics HTTP/1.x" — method, path, anything after.
      size_t sp1 = request.find(' ');
      size_t sp2 = request.find(' ', sp1 + 1);
      if (sp1 == std::string::npos) {
        WriteResponse(*channel, "400 Bad Request",
                      "text/plain; charset=utf-8", "bad request\n");
      } else if (request.substr(0, sp1) != "GET") {
        WriteResponse(*channel, "405 Method Not Allowed",
                      "text/plain; charset=utf-8", "GET only\n");
      } else {
        std::string path = sp2 == std::string::npos
                               ? request.substr(sp1 + 1)
                               : request.substr(sp1 + 1, sp2 - sp1 - 1);
        // Scrapers may append query params; route on the bare path.
        size_t query = path.find('?');
        if (query != std::string::npos) path.resize(query);
        auto it = impl_->pages.find(path);
        if (it == impl_->pages.end()) {
          WriteResponse(*channel, "404 Not Found",
                        "text/plain; charset=utf-8", "not found\n");
        } else {
          WriteResponse(*channel, "200 OK", it->second.content_type,
                        it->second.render());
        }
      }
    } catch (const std::exception& e) {
      // One broken scrape must not take the endpoint down.
      HD_LOG_DEBUG << "promhttp: request failed: " << e.what();
    }
    channel->Close();
  }
}

}  // namespace heidi::obs
