// Tracer — the attachable observability policy (ISSUE/§5: filters and
// interceptors exist so a deployment can bolt cross-cutting concerns onto
// the ORB without touching generated code; a tracer is exactly such a
// concern). One Tracer owns:
//
//   * a sampling decision (always / never / 1-in-N) for span *timelines*,
//   * the bounded SpanRing sampled timelines land in,
//   * an always-on MetricsRegistry (per-operation and per-stage latency
//     histograms + counters) that records every call whether sampled or
//     not — cheap enough to leave enabled (see obs/metrics.h).
//
// Attach via OrbOptions::tracer (instruments the ORB core's invocation
// and dispatch paths) and/or via the shipped Tracing*Interceptor classes
// in orb/tracing.h (pure-policy attachment, no core hooks).
//
// Exports: JSONL (one span object per line) and Chrome trace_event JSON —
// the latter opens directly in chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/retention.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace heidi::obs {

enum class SampleMode : uint8_t {
  kNever,   // metrics only, no span timelines
  kAlways,  // every root call records a timeline
  kRatio,   // 1-in-N root calls record a timeline
};

struct TracerOptions {
  SampleMode mode = SampleMode::kAlways;
  uint32_t sample_every = 64;  // the N of 1-in-N (kRatio only)
  size_t ring_capacity = 4096;
  size_t ring_shards = 8;
  // Overrides `mode` when set: the retention policy owns both the head
  // decision and (for tail policies) the post-completion keep decision.
  // Null derives the matching degenerate policy from `mode`.
  std::shared_ptr<RetentionPolicy> retention = nullptr;
  // The provisional ring tail policies spill un-promoted spans into
  // (recent history of *all* calls, per-thread sharded).
  size_t provisional_capacity = 2048;
  size_t provisional_shards = 16;
};

class Tracer;

// Span-set exporters, usable on merged snapshots from several tracers
// (e.g. client + server rings combined into one timeline).
std::string SpansToJsonl(const std::vector<SpanRecord>& spans);
std::string SpansToChromeTrace(const std::vector<SpanRecord>& spans);

// Best-effort file write used by the exporters' callers; logs on failure.
bool WriteStringToFile(const std::string& path, std::string_view content);

// A live span under construction. Created by Tracer::StartSpan, finished
// by End() (or the destructor, which tags an un-ended span "abandoned").
// Not thread-safe: a span belongs to the call it describes, and exactly
// one thread works on a call at a time at each stage boundary.
class Span {
 public:
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Spans churn twice per traced call (client + server); a per-thread
  // freelist makes this a pointer pop instead of a malloc (tracer.cpp).
  static void* operator new(size_t size);
  static void operator delete(void* ptr);

  const TraceContext& Context() const { return record_.ctx; }

  // Backdates the span's start, e.g. to a request's creation timestamp so
  // marshal time that happened before StartSpan is on the timeline.
  void SetStart(int64_t start_ns) { record_.start_ns = start_ns; }

  // Appends a completed stage [start_ns, now).
  void AddStage(const char* name, int64_t start_ns) {
    record_.AddStage(name, start_ns, NowNs());
  }
  void AddStageInterval(const char* name, int64_t start_ns, int64_t end_ns) {
    record_.AddStage(name, start_ns, end_ns);
  }

  void SetError(std::string_view what) { record_.error = what; }

  // Tags an anomaly observed while the span was live (retry, timeout,
  // injected fault) — the tail-retention promotion signals.
  void SetFlag(SpanFlags flag) { record_.flags |= flag; }
  uint8_t Flags() const { return record_.flags; }

  // Commit-time hint: the per-operation latency histogram the invocation
  // path already looked up to record this call, so the tail policy does
  // not probe the registry a second time. Optional.
  void SetHistoryHint(const LatencyHistogram* history) {
    history_hint_ = history;
  }

  // Stamps the end time and commits the record to the tracer's ring.
  // Idempotent; later calls are no-ops. The second form takes an end
  // timestamp the caller already read for its own stage accounting.
  void End() { End(NowNs()); }
  void End(int64_t end_ns);

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanRecord record)
      : tracer_(tracer), record_(std::move(record)) {}

  Tracer* tracer_;
  SpanRecord record_;
  const LatencyHistogram* history_hint_ = nullptr;
  bool ended_ = false;
};

class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  const TracerOptions& Options() const { return options_; }

  // The sampling decision for a new *root* call (non-root hops inherit
  // the inbound context's sampled flag instead of asking). Delegates to
  // the retention policy's head decision.
  bool SampleNext();

  // True when the retention policy wants every call recorded provisionally
  // and judged at completion — the ORB then creates local (unsampled,
  // non-propagating) spans even for calls SampleNext declined.
  bool RecordsAllCalls() const {
    return policy_.load(std::memory_order_acquire)->RecordProvisional();
  }

  // Swaps the retention policy at runtime (RAFDA-style: policy changes
  // without touching the recording mechanism). Thread-safe; in-flight
  // spans commit under whichever policy is installed when they end.
  void SetRetention(std::shared_ptr<RetentionPolicy> policy);
  RetentionPolicy& Retention() const {
    return *policy_.load(std::memory_order_acquire);
  }

  // Starts a span whose identity is `ctx` (ctx.span_id is the new span's
  // own id). The caller owns the span; End() commits it. The second form
  // takes the caller's own start timestamp — one clock read fewer when
  // the invocation path already took one for its stage accounting.
  std::unique_ptr<Span> StartSpan(SpanKind kind, std::string_view operation,
                                  const TraceContext& ctx);
  std::unique_ptr<Span> StartSpan(SpanKind kind, std::string_view operation,
                                  const TraceContext& ctx, int64_t start_ns);

  MetricsRegistry& Metrics() { return metrics_; }
  const MetricsRegistry& Metrics() const { return metrics_; }
  SpanRing& Ring() { return ring_; }
  const SpanRing& Ring() const { return ring_; }
  // Un-promoted provisional spans (tail policies only) — the "everything
  // that happened recently" ring, distinct from the retained ring.
  SpanRing& ProvisionalRing() { return provisional_; }
  const SpanRing& ProvisionalRing() const { return provisional_; }

  std::vector<SpanRecord> Snapshot() const { return ring_.Snapshot(); }

  std::string ExportJsonl() const { return SpansToJsonl(Snapshot()); }
  std::string ExportChromeTrace() const {
    return SpansToChromeTrace(Snapshot());
  }
  // Writes the Chrome trace_event JSON to `path`; false on I/O failure
  // (logged, never thrown — telemetry must not fail the application).
  bool WriteChromeTrace(const std::string& path) const;

 private:
  friend class Span;
  void Commit(SpanRecord&& record, const LatencyHistogram* history_hint);

  TracerOptions options_;
  MetricsRegistry metrics_;
  SpanRing ring_;
  SpanRing provisional_;
  // Hot-path policy access is a raw atomic load; SetRetention parks the
  // previous policies in owners_ so a loaded pointer never dangles.
  std::atomic<RetentionPolicy*> policy_;
  std::mutex policy_mutex_;
  std::vector<std::shared_ptr<RetentionPolicy>> owners_;
};

}  // namespace heidi::obs
