#include "obs/tracer.h"

#include <cinttypes>
#include <cstdio>

#include "support/logging.h"

namespace heidi::obs {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string Hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

std::string TraceIdHex(const TraceContext& ctx) {
  return Hex64(ctx.trace_hi) + Hex64(ctx.trace_lo);
}

// Microsecond timestamp with ns precision kept as decimals (the Chrome
// trace_event "ts"/"dur" unit is microseconds).
std::string Micros(int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  return buf;
}

// Lanes: client-side spans under pid 1, server-side under pid 2, so a
// loopback trace shows the two halves as separate "processes" even when
// both orbs share one address space.
int LanePid(SpanKind kind) { return kind == SpanKind::kServer ? 2 : 1; }

void AppendChromeEvent(std::string& out, bool& first, std::string_view name,
                       std::string_view cat, int pid, uint64_t tid,
                       int64_t start_ns, int64_t end_ns,
                       const std::string& args_json) {
  if (!first) out += ",\n";
  first = false;
  out += "{\"name\":\"" + std::string(JsonEscape(name)) + "\",\"cat\":\"" +
         std::string(cat) + "\",\"ph\":\"X\",\"ts\":" + Micros(start_ns) +
         ",\"dur\":" + Micros(end_ns > start_ns ? end_ns - start_ns : 0) +
         ",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid) + ",\"args\":" + args_json + "}";
}

}  // namespace

// ---------------------------------------------------------------------------
// Span

namespace {

// Per-thread freelist backing Span::operator new/delete. Tail retention
// allocates and frees two spans per call, so the allocation must not be
// a malloc on the invocation path. Blocks migrate freely between threads
// (every block is exactly sizeof(Span)); whatever a thread still holds
// at exit is released by the thread_local destructor.
struct SpanFreeBlock {
  SpanFreeBlock* next;
};

struct SpanFreeList {
  SpanFreeBlock* head = nullptr;
  int count = 0;
  static constexpr int kMax = 64;
  ~SpanFreeList() {
    while (head != nullptr) {
      SpanFreeBlock* next = head->next;
      ::operator delete(head);
      head = next;
    }
  }
};

thread_local SpanFreeList g_span_free;

}  // namespace

void* Span::operator new(size_t size) {
  if (size == sizeof(Span) && g_span_free.head != nullptr) {
    SpanFreeBlock* block = g_span_free.head;
    g_span_free.head = block->next;
    --g_span_free.count;
    return block;
  }
  return ::operator new(size);
}

void Span::operator delete(void* ptr) {
  if (ptr == nullptr) return;
  if (g_span_free.count < SpanFreeList::kMax) {
    auto* block = static_cast<SpanFreeBlock*>(ptr);
    block->next = g_span_free.head;
    g_span_free.head = block;
    ++g_span_free.count;
    return;
  }
  ::operator delete(ptr);
}

Span::~Span() {
  if (!ended_) {
    if (record_.error.empty()) record_.error = "abandoned";
    End();
  }
}

void Span::End(int64_t end_ns) {
  if (ended_) return;
  ended_ = true;
  record_.end_ns = end_ns;
  tracer_->Commit(std::move(record_), history_hint_);
}

// ---------------------------------------------------------------------------
// Tracer

namespace {

// The degenerate policy matching a legacy SampleMode knob.
std::shared_ptr<RetentionPolicy> PolicyFromMode(const TracerOptions& options) {
  switch (options.mode) {
    case SampleMode::kNever: return MakeNeverRetention();
    case SampleMode::kAlways: return MakeAlwaysRetention();
    case SampleMode::kRatio: return MakeRatioRetention(options.sample_every);
  }
  return MakeAlwaysRetention();
}

}  // namespace

Tracer::Tracer(TracerOptions options)
    : options_(options),
      ring_(options.ring_capacity, options.ring_shards),
      provisional_(options.provisional_capacity, options.provisional_shards) {
  std::shared_ptr<RetentionPolicy> policy =
      options_.retention != nullptr ? options_.retention
                                    : PolicyFromMode(options_);
  policy_.store(policy.get(), std::memory_order_release);
  owners_.push_back(std::move(policy));
}

bool Tracer::SampleNext() {
  return policy_.load(std::memory_order_acquire)->SampleHead();
}

void Tracer::SetRetention(std::shared_ptr<RetentionPolicy> policy) {
  if (policy == nullptr) policy = PolicyFromMode(options_);
  std::lock_guard lock(policy_mutex_);
  policy_.store(policy.get(), std::memory_order_release);
  owners_.push_back(std::move(policy));  // old policies stay alive: a
  // racing Commit may still hold the previous raw pointer.
}

std::unique_ptr<Span> Tracer::StartSpan(SpanKind kind,
                                        std::string_view operation,
                                        const TraceContext& ctx) {
  return StartSpan(kind, operation, ctx, NowNs());
}

std::unique_ptr<Span> Tracer::StartSpan(SpanKind kind,
                                        std::string_view operation,
                                        const TraceContext& ctx,
                                        int64_t start_ns) {
  SpanRecord record;
  record.ctx = ctx;
  record.kind = kind;
  record.operation = std::string(operation);
  record.start_ns = start_ns;
  record.thread_id = ThreadOrdinal();
  return std::unique_ptr<Span>(new Span(this, std::move(record)));
}

void Tracer::Commit(SpanRecord&& record, const LatencyHistogram* history_hint) {
  RetentionPolicy* policy = policy_.load(std::memory_order_acquire);
  // Head policies decided at StartSpan time; everything that reaches
  // Commit was meant to be kept. Attempt spans only exist because
  // something went wrong (retry or error) — always worth retaining.
  if (!policy->RecordProvisional() || record.kind == SpanKind::kAttempt) {
    ring_.Record(std::move(record));
    return;
  }
  // Tail mode: judge the completed span. The operation histogram was
  // updated by the invocation path *before* End(), so the history the
  // policy consults includes this very call.
  TailSignals signals;
  signals.operation = record.operation;
  int64_t latency = record.end_ns - record.start_ns;
  signals.latency_ns = latency > 0 ? static_cast<uint64_t>(latency) : 0;
  signals.errored = !record.error.empty();
  signals.retried = record.HasFlag(kSpanFlagRetried);
  signals.timed_out = record.HasFlag(kSpanFlagTimedOut);
  signals.faulted = record.HasFlag(kSpanFlagFaulted);
  if (history_hint != nullptr) {
    signals.history = history_hint;
  } else {
    // "op.add" fits in SSO, so this key costs no allocation for sane names.
    std::string key = record.kind == SpanKind::kServer ? "srv." : "op.";
    key += record.operation;
    signals.history = metrics_.Histogram(key);
  }
  if (policy->KeepTail(signals)) {
    ring_.Record(std::move(record));
  } else {
    provisional_.RecordSharded(ThreadOrdinal(), std::move(record));
  }
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  return WriteStringToFile(path, ExportChromeTrace());
}

// ---------------------------------------------------------------------------
// Exporters

std::string SpansToJsonl(const std::vector<SpanRecord>& spans) {
  std::string out;
  for (const SpanRecord& span : spans) {
    out += "{\"trace_id\":\"" + TraceIdHex(span.ctx) + "\"";
    out += ",\"span_id\":\"" + Hex64(span.ctx.span_id) + "\"";
    out += ",\"parent_span_id\":\"" + Hex64(span.ctx.parent_span_id) + "\"";
    out += ",\"kind\":\"" + std::string(SpanKindName(span.kind)) + "\"";
    out += ",\"operation\":\"" + JsonEscape(span.operation) + "\"";
    out += ",\"start_ns\":" + std::to_string(span.start_ns);
    out += ",\"end_ns\":" + std::to_string(span.end_ns);
    out += ",\"thread\":" + std::to_string(span.thread_id);
    if (span.flags != 0) {
      out += ",\"flags\":" + std::to_string(span.flags);
    }
    if (!span.error.empty()) {
      out += ",\"error\":\"" + JsonEscape(span.error) + "\"";
    }
    out += ",\"stages\":[";
    for (int i = 0; i < span.stage_count; ++i) {
      if (i != 0) out.push_back(',');
      const StageRecord& stage = span.stages[i];
      out += "{\"name\":\"" + std::string(stage.name) + "\"";
      out += ",\"start_ns\":" + std::to_string(stage.start_ns);
      out += ",\"end_ns\":" + std::to_string(stage.end_ns) + "}";
    }
    out += "]}\n";
  }
  return out;
}

std::string SpansToChromeTrace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  // Lane labels so Perfetto shows "client" / "server" instead of pids.
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"client\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
      "\"args\":{\"name\":\"server\"}}";
  first = false;
  for (const SpanRecord& span : spans) {
    std::string args = "{\"trace_id\":\"" + TraceIdHex(span.ctx) +
                       "\",\"span_id\":\"" + Hex64(span.ctx.span_id) +
                       "\",\"parent_span_id\":\"" +
                       Hex64(span.ctx.parent_span_id) + "\"";
    if (!span.error.empty()) {
      args += ",\"error\":\"" + JsonEscape(span.error) + "\"";
    }
    args += "}";
    std::string name =
        std::string(SpanKindName(span.kind)) + " " + span.operation;
    int pid = LanePid(span.kind);
    AppendChromeEvent(out, first, name, SpanKindName(span.kind), pid,
                      span.thread_id, span.start_ns, span.end_ns, args);
    for (int i = 0; i < span.stage_count; ++i) {
      const StageRecord& stage = span.stages[i];
      AppendChromeEvent(out, first, stage.name, "stage", pid, span.thread_id,
                        stage.start_ns, stage.end_ns,
                        "{\"span_id\":\"" + Hex64(span.ctx.span_id) + "\"}");
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool WriteStringToFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    HD_LOG_WARN << "obs: cannot open '" << path << "' for writing";
    return false;
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int rc = std::fclose(f);
  if (written != content.size() || rc != 0) {
    HD_LOG_WARN << "obs: short write to '" << path << "'";
    return false;
  }
  HD_LOG_DEBUG << "obs: wrote " << content.size() << " bytes to " << path;
  return true;
}

}  // namespace heidi::obs
