#include "obs/tracer.h"

#include <cinttypes>
#include <cstdio>

#include "support/logging.h"

namespace heidi::obs {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string Hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

std::string TraceIdHex(const TraceContext& ctx) {
  return Hex64(ctx.trace_hi) + Hex64(ctx.trace_lo);
}

// Microsecond timestamp with ns precision kept as decimals (the Chrome
// trace_event "ts"/"dur" unit is microseconds).
std::string Micros(int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  return buf;
}

// Lanes: client-side spans under pid 1, server-side under pid 2, so a
// loopback trace shows the two halves as separate "processes" even when
// both orbs share one address space.
int LanePid(SpanKind kind) { return kind == SpanKind::kServer ? 2 : 1; }

void AppendChromeEvent(std::string& out, bool& first, std::string_view name,
                       std::string_view cat, int pid, uint64_t tid,
                       int64_t start_ns, int64_t end_ns,
                       const std::string& args_json) {
  if (!first) out += ",\n";
  first = false;
  out += "{\"name\":\"" + std::string(JsonEscape(name)) + "\",\"cat\":\"" +
         std::string(cat) + "\",\"ph\":\"X\",\"ts\":" + Micros(start_ns) +
         ",\"dur\":" + Micros(end_ns > start_ns ? end_ns - start_ns : 0) +
         ",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid) + ",\"args\":" + args_json + "}";
}

}  // namespace

// ---------------------------------------------------------------------------
// Span

Span::~Span() {
  if (!ended_) {
    if (record_.error.empty()) record_.error = "abandoned";
    End();
  }
}

void Span::End() {
  if (ended_) return;
  ended_ = true;
  record_.end_ns = NowNs();
  tracer_->Commit(std::move(record_));
}

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer(TracerOptions options)
    : options_(options),
      ring_(options.ring_capacity, options.ring_shards) {}

bool Tracer::SampleNext() {
  switch (options_.mode) {
    case SampleMode::kNever: return false;
    case SampleMode::kAlways: return true;
    case SampleMode::kRatio: {
      uint32_t every = options_.sample_every == 0 ? 1 : options_.sample_every;
      return sample_counter_.fetch_add(1, std::memory_order_relaxed) %
                 every ==
             0;
    }
  }
  return false;
}

std::unique_ptr<Span> Tracer::StartSpan(SpanKind kind,
                                        std::string_view operation,
                                        const TraceContext& ctx) {
  SpanRecord record;
  record.ctx = ctx;
  record.kind = kind;
  record.operation = std::string(operation);
  record.start_ns = NowNs();
  record.thread_id = ThreadOrdinal();
  return std::unique_ptr<Span>(new Span(this, std::move(record)));
}

void Tracer::Commit(SpanRecord&& record) { ring_.Record(std::move(record)); }

bool Tracer::WriteChromeTrace(const std::string& path) const {
  return WriteStringToFile(path, ExportChromeTrace());
}

// ---------------------------------------------------------------------------
// Exporters

std::string SpansToJsonl(const std::vector<SpanRecord>& spans) {
  std::string out;
  for (const SpanRecord& span : spans) {
    out += "{\"trace_id\":\"" + TraceIdHex(span.ctx) + "\"";
    out += ",\"span_id\":\"" + Hex64(span.ctx.span_id) + "\"";
    out += ",\"parent_span_id\":\"" + Hex64(span.ctx.parent_span_id) + "\"";
    out += ",\"kind\":\"" + std::string(SpanKindName(span.kind)) + "\"";
    out += ",\"operation\":\"" + JsonEscape(span.operation) + "\"";
    out += ",\"start_ns\":" + std::to_string(span.start_ns);
    out += ",\"end_ns\":" + std::to_string(span.end_ns);
    out += ",\"thread\":" + std::to_string(span.thread_id);
    if (!span.error.empty()) {
      out += ",\"error\":\"" + JsonEscape(span.error) + "\"";
    }
    out += ",\"stages\":[";
    for (int i = 0; i < span.stage_count; ++i) {
      if (i != 0) out.push_back(',');
      const StageRecord& stage = span.stages[i];
      out += "{\"name\":\"" + std::string(stage.name) + "\"";
      out += ",\"start_ns\":" + std::to_string(stage.start_ns);
      out += ",\"end_ns\":" + std::to_string(stage.end_ns) + "}";
    }
    out += "]}\n";
  }
  return out;
}

std::string SpansToChromeTrace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  // Lane labels so Perfetto shows "client" / "server" instead of pids.
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"client\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
      "\"args\":{\"name\":\"server\"}}";
  first = false;
  for (const SpanRecord& span : spans) {
    std::string args = "{\"trace_id\":\"" + TraceIdHex(span.ctx) +
                       "\",\"span_id\":\"" + Hex64(span.ctx.span_id) +
                       "\",\"parent_span_id\":\"" +
                       Hex64(span.ctx.parent_span_id) + "\"";
    if (!span.error.empty()) {
      args += ",\"error\":\"" + JsonEscape(span.error) + "\"";
    }
    args += "}";
    std::string name =
        std::string(SpanKindName(span.kind)) + " " + span.operation;
    int pid = LanePid(span.kind);
    AppendChromeEvent(out, first, name, SpanKindName(span.kind), pid,
                      span.thread_id, span.start_ns, span.end_ns, args);
    for (int i = 0; i < span.stage_count; ++i) {
      const StageRecord& stage = span.stages[i];
      AppendChromeEvent(out, first, stage.name, "stage", pid, span.thread_id,
                        stage.start_ns, stage.end_ns,
                        "{\"span_id\":\"" + Hex64(span.ctx.span_id) + "\"}");
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool WriteStringToFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    HD_LOG_WARN << "obs: cannot open '" << path << "' for writing";
    return false;
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int rc = std::fclose(f);
  if (written != content.size() || rc != 0) {
    HD_LOG_WARN << "obs: short write to '" << path << "'";
    return false;
  }
  HD_LOG_DEBUG << "obs: wrote " << content.size() << " bytes to " << path;
  return true;
}

}  // namespace heidi::obs
