// C++ statement generators for the heidi_cpp stub/skeleton templates.
//
// Fig 9's template language is deliberately simple: line substitution,
// loops, conditionals. Marshaling statements, however, depend on the full
// type of each parameter (primitive vs enum vs object reference vs
// sequence-of-X, in vs incopy vs out), which would take an unreadable
// @if cascade per parameter. Jeeves solved this the same way we do: map
// functions are arbitrary host-language code, so a single `-map`/@map
// call can produce the entire statement.
//
// Each generator receives the IDL *type spelling* as its value and pulls
// the rest (paramName, direction, typeRepoId) from the current EST node.
// Multi-statement results separate lines with "\n    " so they indent
// correctly inside a 4-space template context. All functions throw
// TemplateError for constructs the generator does not support (struct
// parameters, nested sequences, objref/sequence out-parameters).
//
// Registered names (all under CPPGen:: plus CPP::MapParamType):
//   CPP::MapParamType   — parameter signature type (direction-aware:
//                         out/inout primitives become T&)
//   CPPGen::PutParam    — stub: marshal a parameter into *hd_call
//   CPPGen::GetOutParam — stub: read back an out/inout value from *hd_reply
//   CPPGen::CaptureResult — stub: declare hd_result from *hd_reply
//   CPPGen::PutAttrValue / CPPGen::GetAttrValue — attribute setter value
//   CPPGen::SkelGetParam— skeleton: declare + unmarshal local hd_p_<name>
//   CPPGen::SkelArg     — skeleton: argument expression for the impl call
//   CPPGen::SkelPutOut  — skeleton: marshal out/inout local into hd_out
//   CPPGen::SkelPutResult — skeleton: marshal hd_result into hd_out
#pragma once

#include <string>

#include "tmpl/mapfuncs.h"

namespace heidi::tmpl {

// Adds the generator functions to `reg` (called by MapRegistry::Builtins).
void RegisterCppGen(MapRegistry& reg);

}  // namespace heidi::tmpl
