// Template language: compiled representation and compiler (§4, Fig 9).
//
// A template is line-oriented. Lines starting with '@' are directives;
// every other line is literal output with ${var} substitutions. The
// directive set reproduces the paper's Fig 9 language:
//
//   @foreach <list> [-ifMore '<sep>'] [-map <attr> <Func>]...   ... @end [<list>]
//       Iterates the named child list of the current EST node (absent list
//       = zero iterations). Inside the body the element node's properties
//       become variables. Each -map rewrites variable <attr> through map
//       function <Func>; -ifMore binds ${ifMore} to <sep> on every
//       iteration except the last (and "" on the last).
//       Loop specials: ${index} (0-based), ${index1}, ${isFirst},
//       ${isLast} ("true"/"").
//   @if <operand> (==|!=) <operand>  ...  [@else ...]  @fi
//       Operands are ${var} references or (possibly quoted) literals.
//   @openfile <path>
//       Redirects subsequent output to a new file (path is substituted).
//   @set <var> <value>
//       Binds a variable in the current scope (value is substituted).
//   @map <var> <Func> [<source-var>]
//       Binds <var> = Func(${source-var}), source defaulting to <var>.
//   @include <file>
//       Splices another template file at compile time (resolved relative
//       to the including file's directory).
//   @// comment — discarded.
//
// Escapes: a line starting with '@@' emits a literal '@' line; '$$' in
// literal text emits a single '$'.
//
// Compilation is the paper's *first* code-generation step (§4.1): the
// template text becomes an executable TemplateProgram once, which can then
// be run against many ESTs — bench_codegen measures exactly this reuse.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace heidi::tmpl {

// A substituted string: alternating literal pieces and variable references.
struct Segment {
  enum class Kind : uint8_t { kLiteral, kVar } kind;
  std::string text;  // literal text, or variable name
};

using SegmentList = std::vector<Segment>;

struct Op;
using Body = std::vector<Op>;

struct ForeachOpts {
  std::string list;
  std::string if_more_sep;
  bool has_if_more = false;
  // Applied in order: var = func(var).
  std::vector<std::pair<std::string, std::string>> maps;
};

struct Condition {
  SegmentList lhs;
  SegmentList rhs;
  bool negated = false;  // true for '!='
};

struct Op {
  enum class Kind : uint8_t {
    kText,      // segments (one output line, newline appended)
    kForeach,   // opts + body
    kIf,        // cond + body (then) + else_body
    kOpenFile,  // segments = path
    kSet,       // var + segments
    kMap,       // var, func, source_var
  } kind;

  SegmentList segments;
  ForeachOpts foreach_opts;
  Body body;
  Body else_body;
  Condition cond;
  std::string var;
  std::string func;
  std::string source_var;
  int line = 0;  // template line for error messages
};

class TemplateProgram {
 public:
  TemplateProgram(std::string name, Body body)
      : name_(std::move(name)), body_(std::move(body)) {}

  const std::string& Name() const { return name_; }
  const Body& Ops() const { return body_; }

  // Number of ops in the whole program (recursively) — used by benchmarks
  // and sanity tests.
  size_t OpCount() const;

 private:
  std::string name_;
  Body body_;
};

// Compiles template text. `name` appears in diagnostics. `include_dir` is
// the directory used to resolve @include (empty disables @include).
// Throws TemplateError with <name>:<line> positions.
TemplateProgram CompileTemplate(std::string_view text, std::string name,
                                std::string include_dir = "");

// Reads and compiles a template file; @include resolves relative to it.
TemplateProgram CompileTemplateFile(const std::string& path);

// Parses a ${...}-bearing string into segments (exposed for tests).
SegmentList ParseSegments(std::string_view text, const std::string& context);

}  // namespace heidi::tmpl
