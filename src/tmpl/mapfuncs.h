// Map functions — the pluggable name/type translation hooks a template
// invokes with `-map <attr> <Func>` (Fig 9 uses CPP::MapClassName and
// CPP::MapType). A map function receives the property's string value plus
// a MapContext giving it the current EST node, the EST root, and a type
// index over all named types, so it can translate full IDL type spellings
// ("sequence<Heidi::S>") into target-language types ("HdList<HdS>*").
//
// Builtin families:
//   generic — Ident, Upper, Lower, Capitalize, Flat (:: -> _)
//   CPP::   — the HeidiRMI custom C++ mapping of §3 (Hd prefix, XBool,
//             HdList, HdString; objrefs and variable aliases as pointers)
//   CORBA:: — the CORBA-prescribed C++ mapping of Table 1 (CORBA::Long,
//             A_ptr object references, const-& variable types)
//   Java::  — the experimental HeidiRMI IDL-Java mapping of §4.2
//   Tcl::   — the tcl mapping of Fig 10 (names only; tcl is untyped)
//
// User code can register additional functions on a MapRegistry before
// running the interpreter, which is how a downstream application plugs its
// own naming conventions in without touching the compiler (the paper's
// whole point).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "est/node.h"

namespace heidi::tmpl {

// What a named IDL type is, as far as a mapping needs to know.
struct TypeEntry {
  std::string tag;        // "objref", "enum", "struct", "exception", "alias"
  std::string flat_name;  // "Heidi_A"
  std::string repo_id;    // "IDL:Heidi/A:1.0"
  bool is_variable = false;
  std::string alias_type;  // for aliases: spelling of the aliased type
};

// Index over every named type in an EST, keyed by scoped name ("Heidi::A")
// and by flat name ("Heidi_A").
class TypeIndex {
 public:
  // Scans the flattened Root lists.
  explicit TypeIndex(const est::Node& root);

  // nullptr if unknown.
  const TypeEntry* Find(std::string_view name) const;

 private:
  std::map<std::string, TypeEntry, std::less<>> entries_;
};

struct MapContext {
  const est::Node* node = nullptr;  // current loop node ("" props available)
  const est::Node* root = nullptr;
  const TypeIndex* types = nullptr;
  // The caller-supplied ExecOptions::globals (idlc flags like
  // "viewInterfaces"), so map functions can honor per-run mapping
  // configuration. May be null (direct calls outside the interpreter).
  const std::map<std::string, std::string>* globals = nullptr;
};

using MapFn = std::function<std::string(const std::string&, const MapContext&)>;

class MapRegistry {
 public:
  // A registry pre-populated with all builtin families.
  static MapRegistry Builtins();

  void Register(std::string name, MapFn fn);
  // nullptr if unknown.
  const MapFn* Find(std::string_view name) const;

 private:
  std::map<std::string, MapFn, std::less<>> fns_;
};

// The mapping logic behind CPP::MapType etc., exposed directly so the
// runtime and tests can translate spellings without a template:
std::string HeidiMapClassName(std::string_view scoped);
std::string HeidiMapType(std::string_view spelling, const MapContext& ctx);
// Element position inside HdList<...>: like HeidiMapType but by value
// (Fig 3 stores HdList<HdS>, not HdList<HdS*>). Registered as
// CPP::MapElemType.
std::string HeidiMapElemType(std::string_view spelling,
                             const MapContext& ctx);
std::string CorbaMapType(std::string_view spelling, const MapContext& ctx);
std::string JavaMapType(std::string_view spelling, const MapContext& ctx);

// Marshal-method suffix for a type spelling, shared by every stub/skeleton
// template ("long" -> "Long" so templates emit insertLong/PutLong; enums ->
// "Enum", interfaces -> "Object", sequences -> "Sequence", structs ->
// "Struct", aliases resolve through the index). Registered as
// Wire::MapCallKind.
std::string WireCallKind(std::string_view spelling, const MapContext& ctx);

}  // namespace heidi::tmpl
