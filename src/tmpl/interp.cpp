#include "tmpl/interp.h"

#include <filesystem>
#include <fstream>

#include "support/error.h"

namespace heidi::tmpl {

// ---------------------------------------------------------------------------
// Sinks

void StringSink::Open(const std::string& path) { current_ = path; }

void StringSink::Write(std::string_view text) { files_[current_] += text; }

const std::string& StringSink::File(const std::string& path) const {
  static const std::string kEmpty;
  auto it = files_.find(path);
  return it == files_.end() ? kEmpty : it->second;
}

std::vector<std::string> StringSink::FileNames() const {
  std::vector<std::string> out;
  for (const auto& [name, content] : files_) out.push_back(name);
  return out;
}

FileSink::FileSink(std::string root_dir) : root_(std::move(root_dir)) {}

FileSink::~FileSink() {
  try {
    Flush();
  } catch (...) {
    // Destructors must not throw; a failed final flush is reported by the
    // next explicit operation in normal flows.
  }
}

void FileSink::Flush() {
  if (current_path_.empty() && buffer_.empty()) return;
  std::filesystem::path path(root_);
  path /= current_path_.empty() ? "template.out" : current_path_;
  std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  if (!out) throw TemplateError("cannot write " + path.string());
  out << buffer_;
  written_.push_back(path.string());
  buffer_.clear();
}

void FileSink::Open(const std::string& path) {
  Flush();
  current_path_ = path;
}

void FileSink::Write(std::string_view text) { buffer_ += text; }

// ---------------------------------------------------------------------------
// Interpreter

namespace {

struct Frame {
  const est::Node* node = nullptr;
  std::map<std::string, std::string> locals;
};

class Interp {
 public:
  Interp(const TemplateProgram& program, const est::Node& root,
         const MapRegistry& maps, OutputSink& sink,
         const ExecOptions& options)
      : program_(program), maps_(maps), sink_(sink), index_(root) {
    Frame bottom;
    bottom.node = &root;
    bottom.locals = options.globals;
    stack_.push_back(std::move(bottom));
    root_ = &root;
    globals_ = &options.globals;
  }

  void Run() { RunBody(program_.Ops()); }

 private:
  [[noreturn]] void Fail(int line, const std::string& msg) const {
    throw TemplateError(program_.Name() + ":" + std::to_string(line) + ": " +
                        msg);
  }

  const std::string* Lookup(std::string_view var) const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      auto local = it->locals.find(std::string(var));
      if (local != it->locals.end()) return &local->second;
      if (it->node != nullptr) {
        const std::string* prop = it->node->FindProp(var);
        if (prop != nullptr) return prop;
      }
    }
    return nullptr;
  }

  std::string Eval(const SegmentList& segments, int line) const {
    std::string out;
    for (const Segment& seg : segments) {
      if (seg.kind == Segment::Kind::kLiteral) {
        out += seg.text;
      } else {
        const std::string* value = Lookup(seg.text);
        if (value == nullptr) {
          Fail(line, "unknown variable '${" + seg.text + "}'");
        }
        out += *value;
      }
    }
    return out;
  }

  MapContext Context() const {
    MapContext ctx;
    ctx.node = stack_.back().node;
    ctx.root = root_;
    ctx.types = &index_;
    ctx.globals = globals_;
    return ctx;
  }

  std::string ApplyMap(const std::string& func, const std::string& value,
                       int line) const {
    const MapFn* fn = maps_.Find(func);
    if (fn == nullptr) Fail(line, "unknown map function '" + func + "'");
    return (*fn)(value, Context());
  }

  void RunBody(const Body& body) {
    for (const Op& op : body) RunOp(op);
  }

  void RunOp(const Op& op) {
    switch (op.kind) {
      case Op::Kind::kText: {
        std::string text = Eval(op.segments, op.line);
        text.push_back('\n');
        sink_.Write(text);
        return;
      }
      case Op::Kind::kOpenFile:
        sink_.Open(Eval(op.segments, op.line));
        return;
      case Op::Kind::kSet: {
        // Assignment semantics: rebind an existing local (innermost frame
        // that has one) so accumulator patterns work across loop
        // iterations; otherwise create in the current frame.
        std::string value = Eval(op.segments, op.line);
        for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
          auto local = it->locals.find(op.var);
          if (local != it->locals.end()) {
            local->second = std::move(value);
            return;
          }
        }
        stack_.back().locals[op.var] = std::move(value);
        return;
      }
      case Op::Kind::kMap: {
        const std::string* source = Lookup(op.source_var);
        if (source == nullptr) {
          Fail(op.line, "unknown variable '${" + op.source_var + "}'");
        }
        // Copy before ApplyMap: the map may rebind the same variable.
        std::string value = *source;
        stack_.back().locals[op.var] = ApplyMap(op.func, value, op.line);
        return;
      }
      case Op::Kind::kIf: {
        std::string lhs = Eval(op.cond.lhs, op.line);
        std::string rhs = Eval(op.cond.rhs, op.line);
        bool equal = lhs == rhs;
        RunBody(equal != op.cond.negated ? op.body : op.else_body);
        return;
      }
      case Op::Kind::kForeach:
        RunForeach(op);
        return;
    }
  }

  void RunForeach(const Op& op) {
    // The list is looked up on the nearest enclosing node that has it —
    // normally the current node; falling outward lets a nested template
    // fragment iterate an outer node's list (e.g. root's enumList from
    // inside an interface loop).
    const std::vector<std::unique_ptr<est::Node>>* list = nullptr;
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->node != nullptr && it->node->HasList(op.foreach_opts.list)) {
        list = it->node->FindList(op.foreach_opts.list);
        break;
      }
    }
    if (list == nullptr) return;  // absent list: zero iterations

    const size_t count = list->size();
    for (size_t i = 0; i < count; ++i) {
      Frame frame;
      frame.node = (*list)[i].get();
      frame.locals["index"] = std::to_string(i);
      frame.locals["index1"] = std::to_string(i + 1);
      frame.locals["isFirst"] = i == 0 ? "true" : "";
      frame.locals["isLast"] = i + 1 == count ? "true" : "";
      if (op.foreach_opts.has_if_more) {
        frame.locals["ifMore"] =
            i + 1 == count ? "" : op.foreach_opts.if_more_sep;
      }
      stack_.push_back(std::move(frame));
      for (const auto& [attr, func] : op.foreach_opts.maps) {
        const std::string* value = Lookup(attr);
        if (value == nullptr) {
          Fail(op.line, "-map: node has no property '" + attr + "'");
        }
        std::string copy = *value;
        stack_.back().locals[attr] = ApplyMap(func, copy, op.line);
      }
      RunBody(op.body);
      stack_.pop_back();
    }
  }

  const TemplateProgram& program_;
  const MapRegistry& maps_;
  OutputSink& sink_;
  TypeIndex index_;
  const est::Node* root_ = nullptr;
  const std::map<std::string, std::string>* globals_ = nullptr;
  std::vector<Frame> stack_;
};

}  // namespace

void Execute(const TemplateProgram& program, const est::Node& root,
             const MapRegistry& maps, OutputSink& sink,
             const ExecOptions& options) {
  Interp interp(program, root, maps, sink, options);
  interp.Run();
}

std::string ExecuteToString(const TemplateProgram& program,
                            const est::Node& root, const MapRegistry& maps,
                            const ExecOptions& options) {
  StringSink sink;
  Execute(program, root, maps, sink, options);
  return sink.File("");
}

}  // namespace heidi::tmpl
