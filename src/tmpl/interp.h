// Template interpreter — the paper's *second* code-generation step: runs a
// compiled TemplateProgram against an EST, writing generated code through
// an OutputSink (§4.1).
//
// Scoping: execution maintains a stack of frames. The bottom frame holds
// the EST root; each @foreach iteration pushes a frame for the element
// node. Variable lookup resolves, innermost first: frame-local bindings
// (@set, @map, -map, loop specials), then the frame node's properties,
// then outer frames. Unknown variables are an error — the EST builder sets
// every schema property (possibly to ""), so a miss means a typo.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "est/node.h"
#include "tmpl/mapfuncs.h"
#include "tmpl/program.h"

namespace heidi::tmpl {

// Receives generated output. @openfile calls Open; text accumulates into
// the current file (or the anonymous default stream before any Open).
class OutputSink {
 public:
  virtual ~OutputSink() = default;
  virtual void Open(const std::string& path) = 0;
  virtual void Write(std::string_view text) = 0;
};

// Collects output in memory: one buffer per opened file plus a default
// buffer for text emitted before the first @openfile.
class StringSink : public OutputSink {
 public:
  void Open(const std::string& path) override;
  void Write(std::string_view text) override;

  // Contents of a named file ("" for the default stream). Empty string if
  // never opened.
  const std::string& File(const std::string& path) const;
  std::vector<std::string> FileNames() const;

 private:
  std::map<std::string, std::string> files_;
  std::string current_;
};

// Writes files under a root directory, creating parent directories.
// Throws TemplateError on I/O failure.
class FileSink : public OutputSink {
 public:
  explicit FileSink(std::string root_dir);
  ~FileSink() override;
  void Open(const std::string& path) override;
  void Write(std::string_view text) override;

  const std::vector<std::string>& WrittenPaths() const { return written_; }

 private:
  void Flush();
  std::string root_;
  std::string current_path_;
  std::string buffer_;
  std::vector<std::string> written_;
};

struct ExecOptions {
  // Extra global variables visible from the outermost scope.
  std::map<std::string, std::string> globals;
};

// Runs `program` against the EST rooted at `root`. Throws TemplateError
// (with template:line positions) on unknown variables, lists used where a
// node was expected, or unknown map functions.
void Execute(const TemplateProgram& program, const est::Node& root,
             const MapRegistry& maps, OutputSink& sink,
             const ExecOptions& options = {});

// Convenience: execute and return the default-stream output (templates
// that never @openfile). Multi-file templates should use StringSink
// directly.
std::string ExecuteToString(const TemplateProgram& program,
                            const est::Node& root, const MapRegistry& maps,
                            const ExecOptions& options = {});

}  // namespace heidi::tmpl
