// Internal helpers for interpreting canonical IDL type spellings
// ("sequence<Heidi::S,4>", "unsigned long", "string<16>"). Shared by the
// builtin map functions (mapfuncs.cpp) and the C++ statement generators
// (cppgen.cpp).
#pragma once

#include <string>
#include <string_view>

namespace heidi::tmpl::spelling {

inline std::string LastComponent(std::string_view scoped) {
  size_t pos = scoped.rfind("::");
  return std::string(pos == std::string_view::npos ? scoped
                                                   : scoped.substr(pos + 2));
}

inline bool IsSequence(std::string_view s) {
  return s.substr(0, 9) == "sequence<";
}

inline bool IsString(std::string_view s) {
  return s == "string" || s.substr(0, 7) == "string<";
}

// "sequence<X,N>" -> "X" (bound dropped; nested brackets respected).
inline std::string SequenceElement(std::string_view s) {
  std::string_view body = s.substr(9, s.size() - 10);
  int depth = 0;
  size_t comma = std::string_view::npos;
  for (size_t i = 0; i < body.size(); ++i) {
    if (body[i] == '<') ++depth;
    if (body[i] == '>') --depth;
    if (body[i] == ',' && depth == 0) {
      comma = i;
      break;
    }
  }
  return std::string(comma == std::string_view::npos ? body
                                                     : body.substr(0, comma));
}

// Maps primitive spellings to a target language's types; empty if the
// spelling is not primitive. The three arguments customize the types that
// differ between mappings.
inline std::string MapPrimitive(std::string_view s, const char* boolean_type,
                                const char* octet_type,
                                const char* string_type) {
  if (s == "void") return "void";
  if (s == "boolean") return boolean_type;
  if (s == "char") return "char";
  if (s == "octet") return octet_type;
  if (s == "short") return "short";
  if (s == "unsigned short") return "unsigned short";
  if (s == "long") return "long";
  if (s == "unsigned long") return "unsigned long";
  if (s == "long long") return "long long";
  if (s == "unsigned long long") return "unsigned long long";
  if (s == "float") return "float";
  if (s == "double") return "double";
  if (IsString(s)) return string_type;
  return "";
}

}  // namespace heidi::tmpl::spelling
