#include <fstream>
#include <sstream>

#include "support/error.h"
#include "support/strings.h"
#include "tmpl/program.h"

namespace heidi::tmpl {

namespace {

size_t CountOps(const Body& body) {
  size_t n = 0;
  for (const Op& op : body) {
    n += 1 + CountOps(op.body) + CountOps(op.else_body);
  }
  return n;
}

[[noreturn]] void Fail(const std::string& name, int line,
                       const std::string& msg) {
  throw TemplateError(name + ":" + std::to_string(line) + ": " + msg);
}

// Splits a directive argument string into words, honouring single and
// double quotes ('a b' is one word; quotes are stripped).
std::vector<std::string> SplitArgs(const std::string& name, int line,
                                   std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    if (i >= text.size()) break;
    std::string word;
    if (text[i] == '\'' || text[i] == '"') {
      char quote = text[i++];
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == quote) {
          closed = true;
          ++i;
          break;
        }
        word.push_back(text[i++]);
      }
      if (!closed) Fail(name, line, "unterminated quote in directive");
      out.push_back(word);  // may legitimately be empty ('')
      continue;
    }
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') {
      word.push_back(text[i++]);
    }
    out.push_back(word);
  }
  return out;
}

class Compiler {
 public:
  Compiler(std::string_view text, std::string name, std::string include_dir)
      : name_(std::move(name)), include_dir_(std::move(include_dir)) {
    size_t start = 0;
    int line_no = 1;
    while (start <= text.size()) {
      size_t eol = text.find('\n', start);
      std::string_view line = eol == std::string_view::npos
                                  ? text.substr(start)
                                  : text.substr(start, eol - start);
      // A trailing newline produces a final empty fragment; drop it (it is
      // not an extra empty output line).
      if (eol == std::string_view::npos && line.empty() &&
          start == text.size() && start != 0) {
        break;
      }
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      lines_.emplace_back(std::string(line), line_no);
      if (eol == std::string_view::npos) break;
      start = eol + 1;
      ++line_no;
    }
  }

  TemplateProgram Compile() {
    Body body = CompileBody(/*terminators=*/{});
    if (pos_ != lines_.size()) {
      Fail(name_, lines_[pos_].second,
           "unexpected '" + lines_[pos_].first + "'");
    }
    return TemplateProgram(name_, std::move(body));
  }

 private:
  // Compiles until one of `terminators` ("@end", "@else", "@fi") is the
  // next directive word; the terminator line is left for the caller.
  Body CompileBody(const std::vector<std::string>& terminators) {
    Body body;
    while (pos_ < lines_.size()) {
      const auto& [line, line_no] = lines_[pos_];
      std::string_view trimmed = str::Trim(line);
      if (str::StartsWith(trimmed, "@") && !str::StartsWith(trimmed, "@@")) {
        std::string word = FirstWord(trimmed);
        for (const std::string& t : terminators) {
          if (word == t) return body;
        }
        CompileDirective(body, std::string(trimmed), line_no);
      } else {
        Op op;
        op.kind = Op::Kind::kText;
        op.line = line_no;
        std::string content(line);
        // '@@' escape: emit the rest of the line starting at the '@'.
        std::string_view t = str::Trim(content);
        if (str::StartsWith(t, "@@")) {
          size_t at = content.find("@@");
          content.erase(at, 1);
        }
        op.segments = ParseSegments(
            content, name_ + ":" + std::to_string(line_no));
        body.push_back(std::move(op));
        ++pos_;
      }
    }
    if (!terminators.empty()) {
      Fail(name_, lines_.empty() ? 0 : lines_.back().second,
           "missing " + str::Join(terminators, " or "));
    }
    return body;
  }

  static std::string FirstWord(std::string_view line) {
    size_t end = line.find_first_of(" \t");
    return std::string(end == std::string_view::npos ? line
                                                     : line.substr(0, end));
  }

  void CompileDirective(Body& body, const std::string& line, int line_no) {
    std::string word = FirstWord(line);
    std::string rest =
        word.size() < line.size() ? line.substr(word.size() + 1) : "";

    if (word == "@//") {
      ++pos_;
      return;
    }
    if (word == "@foreach") {
      CompileForeach(body, rest, line_no);
      return;
    }
    if (word == "@if") {
      CompileIf(body, rest, line_no);
      return;
    }
    if (word == "@openfile") {
      Op op;
      op.kind = Op::Kind::kOpenFile;
      op.line = line_no;
      op.segments = ParseSegments(std::string(str::Trim(rest)),
                                  name_ + ":" + std::to_string(line_no));
      if (op.segments.empty()) Fail(name_, line_no, "@openfile needs a path");
      body.push_back(std::move(op));
      ++pos_;
      return;
    }
    if (word == "@set") {
      auto args = SplitArgs(name_, line_no, rest);
      if (args.size() < 1) Fail(name_, line_no, "@set needs <var> [<value>]");
      Op op;
      op.kind = Op::Kind::kSet;
      op.line = line_no;
      op.var = args[0];
      std::string value = args.size() > 1 ? args[1] : "";
      op.segments =
          ParseSegments(value, name_ + ":" + std::to_string(line_no));
      body.push_back(std::move(op));
      ++pos_;
      return;
    }
    if (word == "@map") {
      auto args = SplitArgs(name_, line_no, rest);
      if (args.size() != 2 && args.size() != 3) {
        Fail(name_, line_no, "@map needs <var> <Func> [<source-var>]");
      }
      Op op;
      op.kind = Op::Kind::kMap;
      op.line = line_no;
      op.var = args[0];
      op.func = args[1];
      op.source_var = args.size() == 3 ? args[2] : args[0];
      body.push_back(std::move(op));
      ++pos_;
      return;
    }
    if (word == "@include") {
      auto args = SplitArgs(name_, line_no, rest);
      if (args.size() != 1) Fail(name_, line_no, "@include needs a file");
      if (include_dir_.empty()) {
        Fail(name_, line_no, "@include is not available in this context");
      }
      std::string path = include_dir_ + "/" + args[0];
      std::ifstream in(path);
      if (!in) Fail(name_, line_no, "@include: cannot open " + path);
      std::stringstream ss;
      ss << in.rdbuf();
      TemplateProgram sub =
          CompileTemplate(ss.str(), args[0], include_dir_);
      for (const Op& op : sub.Ops()) body.push_back(op);
      ++pos_;
      return;
    }
    if (word == "@end" || word == "@else" || word == "@fi") {
      Fail(name_, line_no, "unmatched '" + word + "'");
    }
    Fail(name_, line_no, "unknown directive '" + word + "'");
  }

  void CompileForeach(Body& body, const std::string& rest, int line_no) {
    auto args = SplitArgs(name_, line_no, rest);
    if (args.empty()) Fail(name_, line_no, "@foreach needs a list name");
    Op op;
    op.kind = Op::Kind::kForeach;
    op.line = line_no;
    op.foreach_opts.list = args[0];
    size_t i = 1;
    while (i < args.size()) {
      if (args[i] == "-ifMore") {
        if (i + 1 >= args.size()) {
          Fail(name_, line_no, "-ifMore needs a separator");
        }
        op.foreach_opts.has_if_more = true;
        op.foreach_opts.if_more_sep = args[i + 1];
        i += 2;
      } else if (args[i] == "-map") {
        if (i + 2 >= args.size()) {
          Fail(name_, line_no, "-map needs <attr> <Func>");
        }
        op.foreach_opts.maps.emplace_back(args[i + 1], args[i + 2]);
        i += 3;
      } else {
        Fail(name_, line_no, "unknown @foreach option '" + args[i] + "'");
      }
    }
    ++pos_;  // consume @foreach line
    op.body = CompileBody({"@end"});
    // Consume the @end line; verify the optional list name matches.
    const auto& [end_line, end_no] = lines_[pos_];
    auto end_args =
        SplitArgs(name_, end_no, std::string(str::Trim(end_line)).substr(4));
    if (!end_args.empty() && end_args[0] != op.foreach_opts.list) {
      Fail(name_, end_no,
           "@end " + end_args[0] + " does not match @foreach " +
               op.foreach_opts.list);
    }
    ++pos_;
    body.push_back(std::move(op));
  }

  void CompileIf(Body& body, const std::string& rest, int line_no) {
    Op op;
    op.kind = Op::Kind::kIf;
    op.line = line_no;
    // Condition grammar: <operand> (==|!=) <operand>.
    auto args = SplitArgs(name_, line_no, rest);
    if (args.size() != 3 || (args[1] != "==" && args[1] != "!=")) {
      Fail(name_, line_no,
           "@if condition must be '<operand> ==|!= <operand>'");
    }
    std::string ctx = name_ + ":" + std::to_string(line_no);
    op.cond.lhs = ParseSegments(args[0], ctx);
    op.cond.rhs = ParseSegments(args[2], ctx);
    op.cond.negated = args[1] == "!=";
    ++pos_;  // consume @if line
    op.body = CompileBody({"@else", "@fi"});
    const std::string else_or_fi =
        FirstWord(str::Trim(lines_[pos_].first));
    if (else_or_fi == "@else") {
      ++pos_;
      op.else_body = CompileBody({"@fi"});
    }
    ++pos_;  // consume @fi
    body.push_back(std::move(op));
  }

  std::string name_;
  std::string include_dir_;
  std::vector<std::pair<std::string, int>> lines_;
  size_t pos_ = 0;
};

}  // namespace

SegmentList ParseSegments(std::string_view text, const std::string& context) {
  SegmentList out;
  std::string literal;
  size_t i = 0;
  auto flush = [&] {
    if (!literal.empty()) {
      out.push_back({Segment::Kind::kLiteral, literal});
      literal.clear();
    }
  };
  while (i < text.size()) {
    if (text[i] == '$' && i + 1 < text.size() && text[i + 1] == '$') {
      literal.push_back('$');
      i += 2;
      continue;
    }
    if (text[i] == '$' && i + 1 < text.size() && text[i + 1] == '{') {
      size_t close = text.find('}', i + 2);
      if (close == std::string_view::npos) {
        throw TemplateError(context + ": unterminated ${...}");
      }
      std::string var(text.substr(i + 2, close - i - 2));
      if (var.empty()) throw TemplateError(context + ": empty ${}");
      flush();
      out.push_back({Segment::Kind::kVar, std::move(var)});
      i = close + 1;
      continue;
    }
    literal.push_back(text[i++]);
  }
  flush();
  return out;
}

size_t TemplateProgram::OpCount() const { return CountOps(body_); }

TemplateProgram CompileTemplate(std::string_view text, std::string name,
                                std::string include_dir) {
  Compiler compiler(text, std::move(name), std::move(include_dir));
  return compiler.Compile();
}

TemplateProgram CompileTemplateFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TemplateError("cannot open template file " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string dir = ".";
  size_t slash = path.rfind('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);
  return CompileTemplate(ss.str(), path, dir);
}

}  // namespace heidi::tmpl
