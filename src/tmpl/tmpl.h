// Umbrella header for the template engine: program/compiler, interpreter,
// map-function registry.
#pragma once

#include "tmpl/interp.h"    // IWYU pragma: export
#include "tmpl/mapfuncs.h"  // IWYU pragma: export
#include "tmpl/program.h"   // IWYU pragma: export
