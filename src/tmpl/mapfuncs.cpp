#include "tmpl/mapfuncs.h"

#include <cctype>

#include "support/error.h"
#include "support/strings.h"
#include "tmpl/cppgen.h"
#include "tmpl/spelling.h"

namespace heidi::tmpl {

namespace {

// Adds every node of `list` under `root` to the index with tag `tag`,
// keyed by its scoped-name property `scoped_key`.
void IndexList(const est::Node& root, std::map<std::string, TypeEntry,
                                               std::less<>>& entries,
               std::string_view list, std::string_view scoped_key,
               std::string_view tag) {
  const auto* nodes = root.FindList(list);
  if (nodes == nullptr) return;
  for (const auto& n : *nodes) {
    TypeEntry entry;
    entry.tag = std::string(tag);
    entry.flat_name = n->GetProp("flatName");
    entry.repo_id = n->GetProp("repoId");
    entry.is_variable = n->GetProp("IsVariable") == "true";
    entry.alias_type = n->GetProp("aliasType");
    entries[n->GetProp(scoped_key)] = entry;
    entries[entry.flat_name] = entry;
  }
}

}  // namespace

TypeIndex::TypeIndex(const est::Node& root) {
  IndexList(root, entries_, "interfaceList", "interfaceName", "objref");
  IndexList(root, entries_, "externalList", "interfaceName", "objref");
  IndexList(root, entries_, "enumList", "enumName", "enum");
  IndexList(root, entries_, "structList", "structName", "struct");
  IndexList(root, entries_, "unionList", "unionName", "union");
  IndexList(root, entries_, "exceptionList", "exceptionName", "exception");
  IndexList(root, entries_, "aliasList", "aliasName", "alias");
}

const TypeEntry* TypeIndex::Find(std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

void MapRegistry::Register(std::string name, MapFn fn) {
  fns_[std::move(name)] = std::move(fn);
}

const MapFn* MapRegistry::Find(std::string_view name) const {
  auto it = fns_.find(name);
  return it == fns_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Shared spelling helpers (see tmpl/spelling.h)

using spelling::IsSequence;
using spelling::IsString;
using spelling::LastComponent;
using spelling::MapPrimitive;
using spelling::SequenceElement;

namespace {
bool IsSequenceSpelling(std::string_view s) { return IsSequence(s); }
bool IsStringSpelling(std::string_view s) { return IsString(s); }
}  // namespace

// ---------------------------------------------------------------------------
// HeidiRMI C++ mapping (§3, Fig 3)

std::string HeidiMapClassName(std::string_view scoped) {
  if (scoped.empty()) return "";
  std::string last = LastComponent(scoped);
  if (str::StartsWith(last, "Hd")) return last;  // already a Heidi name
  return "Hd" + last;
}

std::string HeidiMapElemType(std::string_view spelling,
                             const MapContext& ctx) {
  if (IsSequenceSpelling(spelling)) {
    return "HdList<" + HeidiMapElemType(SequenceElement(spelling), ctx) + ">";
  }
  std::string prim = MapPrimitive(spelling, "XBool", "unsigned char",
                                  "HdString");
  if (!prim.empty()) return prim;
  // Object references are stored as pointers (interface classes are
  // abstract). The paper's Fig 3 prints HdList<HdS>, which cannot
  // compile for an abstract HdS — a documented deviation (EXPERIMENTS.md).
  const TypeEntry* entry =
      ctx.types != nullptr ? ctx.types->Find(spelling) : nullptr;
  std::string cls = HeidiMapClassName(spelling);
  if (entry == nullptr || entry->tag == "objref") return cls + "*";
  return cls;
}

std::string HeidiMapType(std::string_view spelling, const MapContext& ctx) {
  std::string prim =
      MapPrimitive(spelling, "XBool", "unsigned char", "HdString");
  if (!prim.empty()) return prim;
  if (IsSequenceSpelling(spelling)) {
    return "HdList<" + HeidiMapElemType(SequenceElement(spelling), ctx) +
           ">*";
  }
  const TypeEntry* entry =
      ctx.types != nullptr ? ctx.types->Find(spelling) : nullptr;
  std::string cls = HeidiMapClassName(spelling);
  if (entry == nullptr) return cls + "*";  // assume object reference
  if (entry->tag == "enum") return cls;
  if (entry->tag == "alias") return entry->is_variable ? cls + "*" : cls;
  // objref, struct, exception: variable entities are passed as pointers in
  // Heidi (Fig 3: f(HdA*), t(HdSSequence*)).
  return cls + "*";
}

// ---------------------------------------------------------------------------
// CORBA-prescribed C++ mapping (Table 1, Fig 1)

std::string CorbaMapType(std::string_view spelling, const MapContext& ctx) {
  if (spelling == "void") return "void";
  if (spelling == "boolean") return "CORBA::Boolean";
  if (spelling == "char") return "CORBA::Char";
  if (spelling == "octet") return "CORBA::Octet";
  if (spelling == "short") return "CORBA::Short";
  if (spelling == "unsigned short") return "CORBA::UShort";
  if (spelling == "long") return "CORBA::Long";
  if (spelling == "unsigned long") return "CORBA::ULong";
  if (spelling == "long long") return "CORBA::LongLong";
  if (spelling == "unsigned long long") return "CORBA::ULongLong";
  if (spelling == "float") return "CORBA::Float";
  if (spelling == "double") return "CORBA::Double";
  if (IsStringSpelling(spelling)) return "const char*";
  if (IsSequenceSpelling(spelling)) {
    // CORBA requires sequences to be typedef'd; anonymous ones only appear
    // in our extended usage. Map through the generated sequence class name.
    return "const " +
           str::ReplaceAll(std::string(spelling), "::", "_") + "&";
  }
  const TypeEntry* entry =
      ctx.types != nullptr ? ctx.types->Find(spelling) : nullptr;
  std::string scoped(spelling);
  if (entry == nullptr) return scoped + "_ptr";
  if (entry->tag == "objref") return scoped + "_ptr";
  if (entry->tag == "enum") return scoped;
  if (entry->tag == "alias") {
    return entry->is_variable ? "const " + scoped + "&" : scoped;
  }
  return "const " + scoped + "&";  // struct/exception in-params
}

// ---------------------------------------------------------------------------
// HeidiRMI experimental Java mapping (§4.2; no default parameters)

std::string JavaMapType(std::string_view spelling, const MapContext& ctx) {
  if (spelling == "void") return "void";
  if (spelling == "boolean") return "boolean";
  if (spelling == "char") return "char";
  if (spelling == "octet") return "byte";
  if (spelling == "short" || spelling == "unsigned short") return "short";
  if (spelling == "long" || spelling == "unsigned long") return "int";
  if (spelling == "long long" || spelling == "unsigned long long")
    return "long";
  if (spelling == "float") return "float";
  if (spelling == "double") return "double";
  if (IsStringSpelling(spelling)) return "String";
  if (IsSequenceSpelling(spelling)) {
    return JavaMapType(SequenceElement(spelling), ctx) + "[]";
  }
  const TypeEntry* entry =
      ctx.types != nullptr ? ctx.types->Find(spelling) : nullptr;
  if (entry != nullptr && entry->tag == "enum") {
    return "int";  // pre-Java-5 enum mapping, as HeidiRMI-era code used
  }
  if (entry != nullptr && entry->tag == "alias") {
    return JavaMapType(entry->alias_type, ctx);
  }
  return LastComponent(spelling);
}

// ---------------------------------------------------------------------------
// Wire marshal-method suffixes

std::string WireCallKind(std::string_view spelling, const MapContext& ctx) {
  if (spelling == "void") return "Void";
  if (spelling == "boolean") return "Boolean";
  if (spelling == "char") return "Char";
  if (spelling == "octet") return "Octet";
  if (spelling == "short") return "Short";
  if (spelling == "unsigned short") return "UShort";
  if (spelling == "long") return "Long";
  if (spelling == "unsigned long") return "ULong";
  if (spelling == "long long") return "LongLong";
  if (spelling == "unsigned long long") return "ULongLong";
  if (spelling == "float") return "Float";
  if (spelling == "double") return "Double";
  if (IsStringSpelling(spelling)) return "String";
  if (IsSequenceSpelling(spelling)) return "Sequence";
  const TypeEntry* entry =
      ctx.types != nullptr ? ctx.types->Find(spelling) : nullptr;
  if (entry == nullptr) return "Object";  // external interface
  if (entry->tag == "enum") return "Enum";
  if (entry->tag == "objref") return "Object";
  if (entry->tag == "alias") return WireCallKind(entry->alias_type, ctx);
  return "Struct";
}

// ---------------------------------------------------------------------------
// Registry

MapRegistry MapRegistry::Builtins() {
  MapRegistry reg;

  // Generic helpers.
  reg.Register("Ident",
               [](const std::string& v, const MapContext&) { return v; });
  reg.Register("Upper", [](const std::string& v, const MapContext&) {
    return str::ToUpper(v);
  });
  reg.Register("Lower", [](const std::string& v, const MapContext&) {
    return str::ToLower(v);
  });
  reg.Register("Capitalize", [](const std::string& v, const MapContext&) {
    std::string out = v;
    if (!out.empty())
      out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
    return out;
  });
  reg.Register("Flat", [](const std::string& v, const MapContext&) {
    return str::ReplaceAll(v, "::", "_");
  });

  // HeidiRMI C++ mapping.
  reg.Register("CPP::MapClassName",
               [](const std::string& v, const MapContext&) {
                 return HeidiMapClassName(v);
               });
  reg.Register("CPP::MapType",
               [](const std::string& v, const MapContext& ctx) {
                 return HeidiMapType(v, ctx);
               });
  reg.Register("CPP::MapReturnType",
               [](const std::string& v, const MapContext& ctx) {
                 return HeidiMapType(v, ctx);
               });
  reg.Register("CPP::MapElemType",
               [](const std::string& v, const MapContext& ctx) {
                 return HeidiMapElemType(v, ctx);
               });
  reg.Register("CPP::MapLiteral",
               [](const std::string& v, const MapContext&) -> std::string {
                 if (v == "TRUE") return "XTrue";
                 if (v == "FALSE") return "XFalse";
                 return v;
               });
  reg.Register("CPP::Capitalize", *reg.Find("Capitalize"));

  // CORBA-prescribed C++ mapping.
  reg.Register("CORBA::MapClassName",
               [](const std::string& v, const MapContext&) { return v; });
  reg.Register("CORBA::MapType",
               [](const std::string& v, const MapContext& ctx) {
                 return CorbaMapType(v, ctx);
               });
  reg.Register("CORBA::MapReturnType",
               [](const std::string& v, const MapContext& ctx) {
                 // Return values are never const-&; strip in-param wrapping.
                 std::string t = CorbaMapType(v, ctx);
                 if (str::StartsWith(t, "const ") && str::EndsWith(t, "&")) {
                   return t.substr(6, t.size() - 7);
                 }
                 if (t == "const char*") return std::string("char*");
                 return t;
               });
  reg.Register("CORBA::MapLiteral",
               [](const std::string& v, const MapContext&) -> std::string {
                 if (v == "TRUE") return "true";
                 if (v == "FALSE") return "false";
                 return v;
               });

  // Java mapping.
  reg.Register("Java::MapClassName",
               [](const std::string& v, const MapContext&) {
                 return LastComponent(v);
               });
  reg.Register("Java::MapType",
               [](const std::string& v, const MapContext& ctx) {
                 return JavaMapType(v, ctx);
               });
  reg.Register("Java::MapReturnType", *reg.Find("Java::MapType"));
  reg.Register("Java::MapLiteral",
               [](const std::string& v, const MapContext&) -> std::string {
                 if (v == "TRUE") return "true";
                 if (v == "FALSE") return "false";
                 return v;
               });

  // Wire marshal-method suffixes.
  reg.Register("Wire::MapCallKind",
               [](const std::string& v, const MapContext& ctx) {
                 return WireCallKind(v, ctx);
               });

  // Tcl mapping: names only (tcl is untyped).
  reg.Register("Tcl::MapClassName",
               [](const std::string& v, const MapContext&) {
                 return LastComponent(v);
               });

  // C++ stub/skeleton statement generators (tmpl/cppgen.h).
  RegisterCppGen(reg);

  return reg;
}

}  // namespace heidi::tmpl
